# Build and verification entry points. `make check` is the full gate:
# vet, build, race-enabled tests, and a one-iteration pass over every
# benchmark so the instrumented hot paths stay compiling and runnable.

GO ?= go

.PHONY: all build test vet bench race fuzz check clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

fuzz:
	$(GO) test -fuzz=FuzzTrace -fuzztime=20s -run=FuzzTrace ./internal/trace/

check: vet build race bench

clean:
	$(GO) clean ./...
