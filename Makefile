# Build and verification entry points. `make check` is the full gate:
# vet, build, race-enabled tests, the cross-validation suite, and a
# one-iteration pass over every benchmark so the instrumented hot paths
# stay compiling and runnable.

GO ?= go

.PHONY: all build test vet bench bench-advisor bench-search race fuzz crossval crossval-search check clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs every benchmark once for compile/run coverage, then the
# full-scale sweep comparison at the default 1M refs -- legacy
# three-pass arrangement vs the fused engine at one worker and at full
# pool width with set sharding, plus a cold-record/warm-replay
# trace-cache pair -- recording every series in BENCH_sweep.json.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...
	BENCH_SWEEP_JSON=$(CURDIR)/BENCH_sweep.json $(GO) test -run TestSweepBenchArtifact -count=1 -v ./internal/experiments/

# bench-advisor fires the chaos harness's seeded client storm at the
# advisor daemon over the real pipeline and records BENCH_advisor.json
# (p50/p99 latency, req/s, shed rate, cache hit rate). The harness's
# correctness gate applies: any 200 that is not byte-identical to a
# direct run fails the target.
bench-advisor:
	BENCH_ADVISOR_JSON=$(CURDIR)/BENCH_advisor.json $(GO) test -run TestBenchAdvisorArtifact -count=1 -v ./internal/chaos/

# bench-search times exhaustive-vs-pruned pricing of the big (>=1M
# triple) design space with the same model and records configs/sec for
# both strategies in BENCH_search.json. Ranking identity is asserted
# inside the test; the speedup itself is reported, not gated (the
# acceptance floor is 10x, judged from the artifact).
bench-search:
	BENCH_SEARCH_JSON=$(CURDIR)/BENCH_search.json $(GO) test -run TestSearchBenchArtifact -count=1 -v ./internal/experiments/

fuzz:
	$(GO) test -fuzz=FuzzTrace -fuzztime=20s -run=FuzzTrace ./internal/trace/
	$(GO) test -fuzz=FuzzTraceCacheRoundTrip -fuzztime=20s -run=FuzzTraceCacheRoundTrip ./internal/tracecache/

# crossval pins the single-pass stack simulators and the fused sweep
# engine to their direct-simulation oracles, under the race detector:
# any divergence between the optimized paths and brute force fails here.
crossval:
	$(GO) test -race -count=1 \
		-run 'CrossValidat|AgreesWithDirect|MatchesLegacy|MatchesSerial|TestTee|TestBatched|TestRefMeter' \
		./internal/cheetah/ ./internal/experiments/ ./internal/trace/

# crossval-search pins the pruned branch-and-bound search to the
# exhaustive oracle, under the race detector: byte-identical top-K on
# the paper's Table 5 grid (Table 6 and Table 7 settings, measured
# models) and on ~200 randomized small spaces. Any divergence between
# the pruned and exhaustive rankings fails here.
crossval-search:
	$(GO) test -race -count=1 \
		-run 'TestPrunedMatchesExhaustive|TestSearchCrossValidation|TestTieBreakDeterministic|TestPrunedAccountingInvariant' \
		./internal/search/ ./internal/experiments/

check: vet build race crossval crossval-search bench

clean:
	$(GO) clean ./...
