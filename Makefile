# Build and verification entry points. `make check` is the full gate:
# vet, build, race-enabled tests, and a one-iteration pass over every
# benchmark so the instrumented hot paths stay compiling and runnable.

GO ?= go

.PHONY: all build test vet bench race check clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

check: vet build race bench

clean:
	$(GO) clean ./...
