// Package onchip is a reproduction of Nagle, Uhlig, Mudge & Sechrest,
// "Optimal Allocation of On-chip Memory for Multiple-API Operating
// Systems" (ISCA 1994): an MQF-style die-area model, cache/TLB/write-
// buffer simulators, a behavioral model of the Ultrix and Mach 3.0
// operating systems running the paper's benchmark suite, Monster-style
// stall attribution, Tapeworm-style kernel-based TLB simulation, and the
// cost/benefit search over the on-chip memory design space.
//
// See README.md for an overview, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-versus-measured results.
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation; cmd/memalloc renders them interactively.
package onchip
