package onchip

// One benchmark per table and figure of the paper's evaluation: each
// regenerates the corresponding artifact end-to-end (workload generation,
// simulation, model evaluation, rendering). Run with
//
//	go test -bench=. -benchmem
//
// The per-iteration reference budget is kept moderate so the whole
// harness completes in minutes; cmd/memalloc runs the same experiments
// at larger scale.

import (
	"testing"

	"onchip/internal/experiments"
)

// benchRefs is the per-workload simulation budget used by the
// benchmarks.
const benchRefs = 400_000

func runExperiment(b *testing.B, id string, refs int) {
	b.Helper()
	opt := experiments.Options{Refs: refs}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, opt)
		if err != nil {
			b.Fatal(err)
		}
		if res.Text == "" {
			b.Fatalf("%s produced no output", id)
		}
	}
}

// BenchmarkTable1 regenerates the processor survey with model pricing.
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1", benchRefs) }

// BenchmarkTable3 regenerates the mpeg_play stall comparison
// (user-only vs Ultrix vs Mach).
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3", benchRefs) }

// BenchmarkTable4 regenerates the full-suite stall breakdown.
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4", benchRefs/2) }

// BenchmarkFig3 regenerates the CPI-components chart.
func BenchmarkFig3(b *testing.B) { runExperiment(b, "fig3", benchRefs/2) }

// BenchmarkFig4 regenerates the TLB area curves.
func BenchmarkFig4(b *testing.B) { runExperiment(b, "fig4", benchRefs) }

// BenchmarkFig5 regenerates the set-associative vs fully-associative
// TLB cost ratios.
func BenchmarkFig5(b *testing.B) { runExperiment(b, "fig5", benchRefs) }

// BenchmarkFig6 regenerates the cache area curves.
func BenchmarkFig6(b *testing.B) { runExperiment(b, "fig6", benchRefs) }

// BenchmarkFig7 regenerates the TLB service-time curve (Tapeworm over
// the suite under Mach).
func BenchmarkFig7(b *testing.B) { runExperiment(b, "fig7", benchRefs) }

// BenchmarkFig8 regenerates the set-associative TLB comparison on
// video_play.
func BenchmarkFig8(b *testing.B) { runExperiment(b, "fig8", benchRefs) }

// BenchmarkFig9 regenerates the I-cache size x line-size sweep for both
// operating systems.
func BenchmarkFig9(b *testing.B) { runExperiment(b, "fig9", benchRefs/2) }

// BenchmarkFig10 regenerates the I-cache associativity sweep.
func BenchmarkFig10(b *testing.B) { runExperiment(b, "fig10", benchRefs/2) }

// BenchmarkTable6 regenerates the full cost/benefit search: design-space
// sweeps under Mach plus enumeration and ranking.
func BenchmarkTable6(b *testing.B) { runExperiment(b, "table6", benchRefs/2) }

// BenchmarkTable7 regenerates the associativity-restricted search.
func BenchmarkTable7(b *testing.B) { runExperiment(b, "table7", benchRefs/2) }

// BenchmarkPaths regenerates the service-invocation path-length table.
func BenchmarkPaths(b *testing.B) { runExperiment(b, "paths", benchRefs) }

// BenchmarkSampling regenerates the trace-sampling accuracy check.
func BenchmarkSampling(b *testing.B) { runExperiment(b, "sampling", 800_000) }

// BenchmarkExtATime regenerates the access-time-constrained search (the
// paper's proposed extension).
func BenchmarkExtATime(b *testing.B) { runExperiment(b, "ext-atime", benchRefs/2) }

// BenchmarkExtOOL regenerates the out-of-line threshold sweep.
func BenchmarkExtOOL(b *testing.B) { runExperiment(b, "ext-ool", benchRefs) }

// BenchmarkExtServers regenerates the server-decomposition comparison.
func BenchmarkExtServers(b *testing.B) { runExperiment(b, "ext-servers", benchRefs) }

// BenchmarkExtWPolicy regenerates the write-policy comparison.
func BenchmarkExtWPolicy(b *testing.B) { runExperiment(b, "ext-wpolicy", benchRefs) }

// BenchmarkFig9D regenerates the D-cache miss-ratio sweep (section 5.3 text).
func BenchmarkFig9D(b *testing.B) { runExperiment(b, "fig9d", benchRefs/2) }

// BenchmarkExtMulti regenerates the multiprogramming-interference
// comparison.
func BenchmarkExtMulti(b *testing.B) { runExperiment(b, "ext-multi", benchRefs) }

// BenchmarkExtUnified regenerates the split-vs-unified comparison.
func BenchmarkExtUnified(b *testing.B) { runExperiment(b, "ext-unified", benchRefs) }

// BenchmarkExtL2 regenerates the second-level-cache comparison.
func BenchmarkExtL2(b *testing.B) { runExperiment(b, "ext-l2", benchRefs/2) }

// BenchmarkExtPrefetch regenerates the prefetch-vs-line-size comparison.
func BenchmarkExtPrefetch(b *testing.B) { runExperiment(b, "ext-prefetch", benchRefs/2) }

// BenchmarkExtWBuf regenerates the write-buffer depth sweep.
func BenchmarkExtWBuf(b *testing.B) { runExperiment(b, "ext-wbuf", benchRefs/2) }

// BenchmarkExtMultiAPI regenerates the shared-vs-per-application API
// server comparison.
func BenchmarkExtMultiAPI(b *testing.B) { runExperiment(b, "ext-multiapi", benchRefs) }
