// Command monster runs the Monster-style hardware-monitoring analysis:
// a workload executes on DECstation 3100 memory parameters and every
// stall cycle is attributed to its cause, reproducing rows of the
// paper's Tables 3 and 4.
//
// Usage:
//
//	monster -workload mpeg_play -refs 2000000          # Ultrix, Mach and user-only
//	monster -suite                                     # all workloads (Table 4)
package main

import (
	"flag"
	"fmt"
	"os"

	"onchip/internal/machine"
	"onchip/internal/monitor"
	"onchip/internal/osmodel"
	"onchip/internal/workload"
)

func main() {
	wl := flag.String("workload", "mpeg_play", "workload name")
	refs := flag.Int("refs", 2_000_000, "references to simulate per run")
	suite := flag.Bool("suite", false, "run the whole suite under both OSes (Table 4)")
	flag.Parse()

	cfg := machine.DECstation3100()
	if *suite {
		for _, v := range []osmodel.Variant{osmodel.Ultrix, osmodel.Mach} {
			for _, row := range monitor.MeasureSuite(v, workload.All(), *refs, cfg) {
				printRow(row)
			}
		}
		return
	}

	spec, err := workload.ByName(*wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "monster:", err)
		os.Exit(1)
	}
	printRow(monitor.MeasureUserOnly(spec, *refs, cfg))
	printRow(monitor.Measure(osmodel.Ultrix, spec, *refs, cfg))
	printRow(monitor.Measure(osmodel.Mach, spec, *refs, cfg))
}

func printRow(r monitor.Row) {
	fmt.Printf("%-11s %-7s %s\n", r.Workload, r.OS, r.Breakdown)
	if r.Gen.Instrs > 0 {
		fmt.Printf("%-11s %-7s time split: app %.0f%% kernel %.0f%% bsd %.0f%% x %.0f%% (%d calls)\n",
			"", "", r.Gen.AppPct(), r.Gen.KernelPct(), r.Gen.BSDPct(), r.Gen.XPct(), r.Gen.Calls)
	}
}
