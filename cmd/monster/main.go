// Command monster runs the Monster-style hardware-monitoring analysis:
// a workload executes on DECstation 3100 memory parameters and every
// stall cycle is attributed to its cause, reproducing rows of the
// paper's Tables 3 and 4.
//
// Usage:
//
//	monster -workload mpeg_play -refs 2000000          # Ultrix, Mach and user-only
//	monster -suite                                     # all workloads (Table 4)
//	monster -suite -metrics run.jsonl -serve :6060     # with the observability plane
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"onchip/internal/lifecycle"
	"onchip/internal/machine"
	"onchip/internal/monitor"
	"onchip/internal/obs"
	"onchip/internal/osmodel"
	"onchip/internal/spans"
	"onchip/internal/telemetry"
	"onchip/internal/workload"
)

func main() {
	wl := flag.String("workload", "mpeg_play", "workload name")
	refs := flag.Int("refs", 2_000_000, "references to simulate per run")
	suite := flag.Bool("suite", false, "run the whole suite under both OSes (Table 4)")
	metricsFile := flag.String("metrics", "", "write run manifest and metrics as JSONL to this file")
	serveAddr := flag.String("serve", "", "serve live observability endpoints on this address (e.g. :6060)")
	spansFile := flag.String("spans", "", "write execution spans as Chrome trace-event JSON to this file (Perfetto-loadable)")
	profSpan := flag.String("prof-span", "", "capture a CPU profile bracketed by the first span with this name (e.g. suite.Mach)")
	profSpanOut := flag.String("prof-span-out", "", "CPU profile output path for -prof-span (default span_<name>.pprof)")
	flag.Parse()

	ctx, stopSignals := lifecycle.Notify(context.Background(), "monster", nil)
	defer stopSignals()

	start := time.Now()
	cfg := machine.DECstation3100()
	var reg *telemetry.Registry
	if *metricsFile != "" || *serveAddr != "" {
		reg = telemetry.NewRegistry()
		cfg.Metrics = reg
	}
	spanTr, drainSpans, err := spans.Setup(ctx, "monster", *spansFile, *profSpan, *profSpanOut, *serveAddr != "")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer drainSpans()
	spanTr.SetMetrics(reg)
	man := &telemetry.Manifest{
		Command:   "monster",
		Args:      os.Args[1:],
		Start:     start.Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Labels:    map[string]string{"workload": *wl, "suite": fmt.Sprint(*suite)},
	}
	if *serveAddr != "" {
		cfg.Tracer = telemetry.NewTracer(telemetry.DefaultTracerDepth)
		srv := obs.New(obs.Config{
			Registry: reg,
			Tracer:   cfg.Tracer,
			Manifest: man,
			KindName: machine.KindName,
			CompName: machine.CompName,
			Spans:    spanTr,
		})
		bound, err := srv.Start(*serveAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "monster: serve:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "monster: observability plane on http://%s/\n", bound)
	}

	// Cancellation is checked between measurements: each row that was
	// fully measured before the interrupt is printed, then the metrics
	// snapshot below still covers everything printed.
	interrupted := false
	lane := spanTr.Lane("main")
	if *suite {
		for _, v := range []osmodel.Variant{osmodel.Ultrix, osmodel.Mach} {
			span := lane.Start("suite." + v.String())
			rows, err := monitor.MeasureSuiteContext(ctx, v, workload.All(), *refs, cfg)
			span.End()
			for _, row := range rows {
				printRow(row)
			}
			if err != nil {
				interrupted = true
				break
			}
		}
	} else {
		spec, err := workload.ByName(*wl)
		if err != nil {
			fmt.Fprintln(os.Stderr, "monster:", err)
			os.Exit(1)
		}
		measure := []struct {
			span string
			run  func() monitor.Row
		}{
			{"measure.user-only", func() monitor.Row { return monitor.MeasureUserOnly(spec, *refs, cfg) }},
			{"measure.Ultrix", func() monitor.Row { return monitor.Measure(osmodel.Ultrix, spec, *refs, cfg) }},
			{"measure.Mach", func() monitor.Row { return monitor.Measure(osmodel.Mach, spec, *refs, cfg) }},
		}
		for _, m := range measure {
			if ctx.Err() != nil {
				interrupted = true
				break
			}
			span := lane.Start(m.span)
			row := m.run()
			span.End()
			printRow(row)
		}
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "monster: interrupted; rows above are complete measurements")
	}

	if *metricsFile != "" {
		f, err := os.Create(*metricsFile)
		if err == nil {
			err = telemetry.WriteJSONL(f, man, reg.Snapshot())
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "monster:", err)
			os.Exit(1)
		}
	}
	if interrupted {
		drainSpans() // os.Exit skips defers; the trace still lands
		os.Exit(lifecycle.InterruptExit)
	}
}

func printRow(r monitor.Row) {
	fmt.Printf("%-11s %-7s %s\n", r.Workload, r.OS, r.Breakdown)
	if r.Gen.Instrs > 0 {
		fmt.Printf("%-11s %-7s time split: app %.0f%% kernel %.0f%% bsd %.0f%% x %.0f%% (%d calls)\n",
			"", "", r.Gen.AppPct(), r.Gen.KernelPct(), r.Gen.BSDPct(), r.Gen.XPct(), r.Gen.Calls)
	}
}
