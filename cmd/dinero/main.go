// Command dinero is a classic trace-driven memory-system simulator in
// the style of DineroIII/cache2000: it replays a binary trace file
// (produced by cmd/tracegen) against a configurable cache/TLB/write-
// buffer hierarchy and prints miss statistics and the CPI breakdown.
//
// Usage:
//
//	tracegen -workload mpeg_play -os Mach -refs 2000000 -o mpeg.octr
//	dinero -i mpeg.octr -isize 8192 -iline 4 -iassoc 1 \
//	       -dsize 8192 -dline 4 -dassoc 2 -tlb 64 -tlbassoc 0
//
// Associativity 0 means fully associative. -unified merges the two
// caches into one (sized by the -i flags).
//
// Robustness: -skip-corrupt steps over malformed trace records
// (counted and reported) instead of aborting; -retries N retries
// transient read errors with exponential backoff; the -fault-* flags
// deterministically inject read faults to exercise those paths; and
// SIGINT/SIGTERM stops the replay at the next record boundary, with
// statistics and metrics covering the replayed prefix (exit 130).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"onchip/internal/area"
	"onchip/internal/cache"
	"onchip/internal/faultinject"
	"onchip/internal/lifecycle"
	"onchip/internal/machine"
	"onchip/internal/obs"
	"onchip/internal/spans"
	"onchip/internal/telemetry"
	"onchip/internal/tlb"
	"onchip/internal/trace"
	"onchip/internal/wbuf"
)

func main() {
	in := flag.String("i", "", "input trace file (required)")
	isize := flag.Int("isize", 8192, "I-cache capacity in bytes")
	iline := flag.Int("iline", 4, "I-cache line size in words")
	iassoc := flag.Int("iassoc", 1, "I-cache associativity (0 = fully associative)")
	dsize := flag.Int("dsize", 8192, "D-cache capacity in bytes")
	dline := flag.Int("dline", 4, "D-cache line size in words")
	dassoc := flag.Int("dassoc", 1, "D-cache associativity (0 = fully associative)")
	dwb := flag.Bool("dwriteback", false, "write-back D-cache (default write-through)")
	unified := flag.Bool("unified", false, "single unified cache (uses the -i flags)")
	tlbEntries := flag.Int("tlb", 64, "TLB entries")
	tlbAssoc := flag.Int("tlbassoc", 0, "TLB associativity (0 = fully associative)")
	wbEntries := flag.Int("wb", 4, "write buffer entries")
	metricsFile := flag.String("metrics", "", "write run manifest and metrics as JSONL to this file")
	serveAddr := flag.String("serve", "", "serve live observability endpoints on this address (e.g. :6060)")
	spansFile := flag.String("spans", "", "write execution spans as Chrome trace-event JSON to this file (Perfetto-loadable)")
	profSpan := flag.String("prof-span", "", "capture a CPU profile bracketed by the first span with this name (e.g. trace.replay)")
	profSpanOut := flag.String("prof-span-out", "", "CPU profile output path for -prof-span (default span_<name>.pprof)")
	skipCorrupt := flag.Bool("skip-corrupt", false, "skip corrupt trace records (counted and reported) instead of aborting")
	retries := flag.Int("retries", 0, "retry transient read errors up to N times with exponential backoff")
	faultSeed := flag.Int64("fault-seed", 1, "fault-injection PRNG seed (deterministic schedule)")
	faultIOProb := flag.Float64("fault-io-prob", 0, "probability a read fails with a transient I/O error")
	faultCorruptProb := flag.Float64("fault-corrupt-prob", 0, "probability a read corrupts one byte of the stream")
	faultTruncProb := flag.Float64("fault-trunc-prob", 0, "probability a read truncates the stream")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	cfg := machine.Config{
		ICache:  cache.Config{CacheConfig: area.CacheConfig{CapacityBytes: *isize, LineWords: *iline, Assoc: *iassoc}},
		DCache:  cache.Config{CacheConfig: area.CacheConfig{CapacityBytes: *dsize, LineWords: *dline, Assoc: *dassoc}, WriteBack: *dwb},
		TLB:     tlb.Config{TLBConfig: area.TLBConfig{Entries: *tlbEntries, Assoc: *tlbAssoc}},
		WB:      wbuf.Config{Entries: *wbEntries, WriteCycles: 5},
		Unified: *unified,
	}

	ctx, stopSignals := lifecycle.Notify(context.Background(), "dinero", nil)
	defer stopSignals()

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dinero:", err)
		os.Exit(1)
	}
	defer f.Close()

	// The read path composes: file -> fault injector (when enabled) ->
	// transient-error retrier (when -retries > 0) -> trace decoder.
	inj := faultinject.New(faultinject.Config{
		Seed:         *faultSeed,
		IOErrProb:    *faultIOProb,
		CorruptProb:  *faultCorruptProb,
		TruncateProb: *faultTruncProb,
	})
	var stream io.Reader = f
	stream = inj.Reader(stream)
	if *retries > 0 {
		p := faultinject.DefaultRetryPolicy()
		p.Attempts = *retries + 1
		stream = faultinject.RetryReader(stream, p)
	}
	r, err := trace.NewReader(stream)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dinero:", err)
		os.Exit(1)
	}
	r.SkipCorrupt = *skipCorrupt

	start := time.Now()
	if *metricsFile != "" || *serveAddr != "" {
		cfg.Metrics = telemetry.NewRegistry()
		inj.Describe(cfg.Metrics, "faults")
		corrupts := cfg.Metrics.Counter("trace.corrupt_records", "corrupt trace records encountered")
		r.OnCorrupt = func(*trace.CorruptError) { corrupts.Inc() }
	}
	spanTr, drainSpans, err := spans.Setup(ctx, "dinero", *spansFile, *profSpan, *profSpanOut, *serveAddr != "")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer drainSpans()
	spanTr.SetMetrics(cfg.Metrics)
	man := &telemetry.Manifest{
		Command:   "dinero",
		Args:      os.Args[1:],
		Start:     start.Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Labels:    map[string]string{"trace": *in},
	}
	if *serveAddr != "" {
		cfg.Tracer = telemetry.NewTracer(telemetry.DefaultTracerDepth)
		srv := obs.New(obs.Config{
			Registry: cfg.Metrics,
			Tracer:   cfg.Tracer,
			Manifest: man,
			KindName: machine.KindName,
			CompName: machine.CompName,
			Spans:    spanTr,
		})
		bound, err := srv.Start(*serveAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dinero: serve:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "dinero: observability plane on http://%s/\n", bound)
	}
	m, err := machine.NewE(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dinero:", err)
		os.Exit(2)
	}
	replaySpan := spanTr.Lane("main").Start("trace.replay")
	n, err := r.DrainContext(ctx, m)
	replaySpan.End()
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		var ce *trace.CorruptError
		if errors.As(err, &ce) {
			fmt.Fprintf(os.Stderr, "dinero: %v (rerun with -skip-corrupt to skip bad records)\n", ce)
		} else {
			fmt.Fprintln(os.Stderr, "dinero:", err)
		}
		os.Exit(1)
	}
	// Flush and report even when interrupted: the counters below are
	// exact for the prefix of the trace that was replayed.
	m.FlushMetrics()
	if interrupted {
		fmt.Fprintf(os.Stderr, "dinero: interrupted; statistics cover the first %d references\n", n)
	}
	if c := r.Corrupt(); c > 0 {
		fmt.Fprintf(os.Stderr, "dinero: skipped %d corrupt record(s)\n", c)
	}

	fmt.Printf("trace: %s (%d references, %d instructions)\n\n", *in, n, m.Instructions())
	printCache := "I-cache"
	if *unified {
		printCache = "unified cache"
	}
	is := m.ICache().Stats()
	fmt.Printf("%-14s %v\n", printCache+":", cfg.ICache.CacheConfig)
	fmt.Printf("  accesses %12d   misses %10d   miss ratio %.4f\n", is.Accesses(), is.Misses(), is.MissRatio())
	if !*unified {
		ds := m.DCache().Stats()
		fmt.Printf("%-14s %v (write-back: %v)\n", "D-cache:", cfg.DCache.CacheConfig, *dwb)
		fmt.Printf("  accesses %12d   misses %10d   miss ratio %.4f   writebacks %d\n",
			ds.Accesses(), ds.Misses(), ds.MissRatio(), ds.Writebacks)
	}
	ts := m.TLB().TLB().Stats()
	svc := m.TLB().Service()
	fmt.Printf("%-14s %v\n", "TLB:", cfg.TLB.TLBConfig)
	fmt.Printf("  probes   %12d   misses %10d   miss ratio %.5f\n", ts.Probes, ts.Misses, ts.MissRatio())
	fmt.Printf("  service: user %d, kernel %d, first-touch %d (%.0f cycles total)\n",
		svc.Count[tlb.UserMiss], svc.Count[tlb.KernelMiss], svc.Count[tlb.OtherMiss], float64(svc.TotalCycles()))
	fmt.Printf("\n%v\n", m.Breakdown())
	fmt.Printf("simulated time at %.2f MHz: %.3f s\n", machine.ClockHz/1e6, m.Breakdown().Seconds())

	if *metricsFile != "" {
		f, err := os.Create(*metricsFile)
		if err == nil {
			err = telemetry.WriteJSONL(f, man, cfg.Metrics.Snapshot())
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "dinero:", err)
			os.Exit(1)
		}
	}
	if interrupted {
		drainSpans() // os.Exit skips defers; the trace still lands
		os.Exit(lifecycle.InterruptExit)
	}
}
