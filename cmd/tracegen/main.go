// Command tracegen generates and inspects binary memory-reference
// traces from the OS/workload behavioral model -- the reproduction's
// stand-in for the paper's Monster-captured DECstation traces.
//
// Usage:
//
//	tracegen -workload mpeg_play -os Mach -refs 1000000 -o trace.octr
//	tracegen -stat trace.octr
package main

import (
	"flag"
	"fmt"
	"os"

	"onchip/internal/osmodel"
	"onchip/internal/trace"
	"onchip/internal/workload"
)

func main() {
	wl := flag.String("workload", "mpeg_play", "workload name (see -list)")
	osName := flag.String("os", "Mach", "operating system: Ultrix or Mach")
	refs := flag.Int("refs", 1_000_000, "references to generate")
	out := flag.String("o", "", "output trace file (default stdout summary only)")
	stat := flag.String("stat", "", "inspect an existing trace file instead of generating")
	list := flag.Bool("list", false, "list workload names")
	flag.Parse()

	if *list {
		for _, n := range workload.Names() {
			fmt.Println(n)
		}
		return
	}
	if *stat != "" {
		if err := statFile(*stat); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}
	if err := generate(*wl, *osName, *refs, *out); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func variant(name string) (osmodel.Variant, error) {
	switch name {
	case "Ultrix", "ultrix":
		return osmodel.Ultrix, nil
	case "Mach", "mach":
		return osmodel.Mach, nil
	}
	return 0, fmt.Errorf("unknown OS %q (want Ultrix or Mach)", name)
}

func generate(wl, osName string, refs int, out string) error {
	spec, err := workload.ByName(wl)
	if err != nil {
		return err
	}
	v, err := variant(osName)
	if err != nil {
		return err
	}
	var counter trace.Counter
	sinks := trace.Tee{&counter}
	var w *trace.Writer
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w, err = trace.NewWriter(f)
		if err != nil {
			return err
		}
		sinks = append(sinks, w)
	}
	gen := osmodel.NewSystem(v, spec).Run(refs, sinks)
	if w != nil {
		if err := w.Flush(); err != nil {
			return err
		}
	}
	fmt.Printf("%s under %s: %d refs (%d ifetch, %d load, %d store), %d instrs, %d OS calls\n",
		spec.Name, v, counter.Total,
		counter.ByKind[trace.IFetch], counter.ByKind[trace.Load], counter.ByKind[trace.Store],
		gen.Instrs, gen.Calls)
	fmt.Printf("time split: app %.0f%%, kernel %.0f%%, bsd %.0f%%, x %.0f%%\n",
		gen.AppPct(), gen.KernelPct(), gen.BSDPct(), gen.XPct())
	return nil
}

func statFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var c trace.Counter
	n, err := r.Drain(&c)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d records (%d ifetch, %d load, %d store; %d user, %d kernel)\n",
		path, n, c.ByKind[trace.IFetch], c.ByKind[trace.Load], c.ByKind[trace.Store],
		c.ByMode[trace.User], c.ByMode[trace.Kernel])
	return nil
}
