// Command tracegen generates and inspects binary memory-reference
// traces from the OS/workload behavioral model -- the reproduction's
// stand-in for the paper's Monster-captured DECstation traces.
//
// Usage:
//
//	tracegen -workload mpeg_play -os Mach -refs 1000000 -o trace.octr
//	tracegen -stat trace.octr
//
// With -trace-cache DIR the generated stream is recorded to (or, when
// already present, replayed from) the same compressed content-addressed
// cache that memalloc -trace-cache uses; a warm run skips the
// behavioral model entirely.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"onchip/internal/lifecycle"
	"onchip/internal/obs"
	"onchip/internal/osmodel"
	"onchip/internal/spans"
	"onchip/internal/telemetry"
	"onchip/internal/trace"
	"onchip/internal/tracecache"
	"onchip/internal/workload"
)

func main() {
	wl := flag.String("workload", "mpeg_play", "workload name (see -list)")
	osName := flag.String("os", "Mach", "operating system: Ultrix or Mach")
	refs := flag.Int("refs", 1_000_000, "references to generate")
	out := flag.String("o", "", "output trace file (default stdout summary only)")
	stat := flag.String("stat", "", "inspect an existing trace file instead of generating")
	traceCacheDir := flag.String("trace-cache", "", "compressed content-addressed stream cache directory (shared with memalloc -trace-cache): replay on a hit, record on a miss")
	skipCorrupt := flag.Bool("skip-corrupt", false, "with -stat: skip corrupt records (counted) instead of aborting")
	list := flag.Bool("list", false, "list workload names")
	metricsFile := flag.String("metrics", "", "write run manifest and metrics as JSONL to this file")
	serveAddr := flag.String("serve", "", "serve live observability endpoints on this address (e.g. :6060)")
	spansFile := flag.String("spans", "", "write execution spans as Chrome trace-event JSON to this file (Perfetto-loadable)")
	profSpan := flag.String("prof-span", "", "capture a CPU profile bracketed by the first span with this name (e.g. generate)")
	profSpanOut := flag.String("prof-span-out", "", "CPU profile output path for -prof-span (default span_<name>.pprof)")
	flag.Parse()

	if *list {
		for _, n := range workload.Names() {
			fmt.Println(n)
		}
		return
	}
	if *stat != "" {
		if err := statFile(*stat, *skipCorrupt); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}

	ctx, stopSignals := lifecycle.Notify(context.Background(), "tracegen", nil)
	defer stopSignals()

	start := time.Now()
	var reg *telemetry.Registry
	if *metricsFile != "" || *serveAddr != "" {
		reg = telemetry.NewRegistry()
	}
	spanTr, drainSpans, err := spans.Setup(ctx, "tracegen", *spansFile, *profSpan, *profSpanOut, *serveAddr != "")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer drainSpans()
	spanTr.SetMetrics(reg)
	man := &telemetry.Manifest{
		Command:   "tracegen",
		Args:      os.Args[1:],
		Start:     start.Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Labels:    map[string]string{"workload": *wl, "os": *osName},
	}
	if *serveAddr != "" {
		srv := obs.New(obs.Config{Registry: reg, Manifest: man, Spans: spanTr})
		bound, err := srv.Start(*serveAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen: serve:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "tracegen: observability plane on http://%s/\n", bound)
	}
	genErr := generate(ctx, *wl, *osName, *refs, *out, *traceCacheDir, reg, spanTr.Lane("main"))
	interrupted := errors.Is(genErr, context.Canceled)
	if genErr != nil && !interrupted {
		fmt.Fprintln(os.Stderr, "tracegen:", genErr)
		os.Exit(1)
	}
	// The metrics snapshot is still written after an interrupt: it
	// covers exactly the records that made it into the (valid) partial
	// trace file.
	if *metricsFile != "" {
		f, err := os.Create(*metricsFile)
		if err == nil {
			err = telemetry.WriteJSONL(f, man, reg.Snapshot())
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
	}
	if interrupted {
		drainSpans() // os.Exit skips defers; the trace still lands
		os.Exit(lifecycle.InterruptExit)
	}
}

func variant(name string) (osmodel.Variant, error) {
	switch name {
	case "Ultrix", "ultrix":
		return osmodel.Ultrix, nil
	case "Mach", "mach":
		return osmodel.Mach, nil
	}
	return 0, fmt.Errorf("unknown OS %q (want Ultrix or Mach)", name)
}

// genChunk is how many references each System.Run slice generates
// between cancellation checks; Run continues from where the previous
// slice stopped, so chunking does not change the generated stream.
const genChunk = 1 << 20

func generate(ctx context.Context, wl, osName string, refs int, out, cacheDir string, reg *telemetry.Registry, lane *spans.Lane) error {
	spec, err := workload.ByName(wl)
	if err != nil {
		return err
	}
	v, err := variant(osName)
	if err != nil {
		return err
	}
	var counter trace.Counter
	// Publish the live counts pull-style so a -serve scrape watches the
	// generation advance; the per-service-class OS counters come from
	// SetMetrics below.
	reg.CounterFunc("tracegen.references", "trace records generated",
		func() uint64 { return counter.Total })

	// openSinks (re)creates the delivery chain. Recreating truncates the
	// output file, so a corrupt-cache fallback regenerates from a clean
	// slate instead of appending to a half-replayed trace.
	var f *os.File
	var w *trace.Writer
	openSinks := func() (trace.Tee, error) {
		counter = trace.Counter{}
		sinks := trace.Tee{&counter}
		if out == "" {
			return sinks, nil
		}
		if f != nil {
			f.Close()
		}
		var err error
		if f, err = os.Create(out); err != nil {
			return nil, err
		}
		if w, err = trace.NewWriter(f); err != nil {
			return nil, err
		}
		return append(sinks, w), nil
	}
	defer func() {
		if f != nil {
			f.Close()
		}
	}()

	var cache *tracecache.Cache
	var key tracecache.Key
	if cacheDir != "" {
		if cache, err = tracecache.Open(cacheDir); err != nil {
			return err
		}
		cache.Describe(reg)
		cache.SetLogWriter(os.Stderr)
		// The same address the model-building sweep uses, so tracegen and
		// memalloc -trace-cache share entries for equal (workload, OS,
		// refs) runs.
		key = tracecache.Key{Workload: spec.Name, OS: v.String(), Seed: spec.Seed,
			Refs: refs, Model: fmt.Sprintf("%+v", spec)}
		if entry := cache.OpenEntry(key); entry != nil {
			sinks, err := openSinks()
			if err != nil {
				entry.Close()
				return err
			}
			err = replayEntry(ctx, entry, sinks, lane)
			entry.Close()
			switch {
			case err == nil:
				if w != nil {
					if err := w.Flush(); err != nil {
						return err
					}
				}
				fmt.Printf("%s under %s: %d refs replayed from cache (%d ifetch, %d load, %d store)\n",
					spec.Name, v, counter.Total,
					counter.ByKind[trace.IFetch], counter.ByKind[trace.Load], counter.ByKind[trace.Store])
				return nil
			case errors.Is(err, tracecache.ErrCorrupt):
				fmt.Fprintf(os.Stderr, "tracegen: corrupt cache entry for %s/%s, regenerating: %v\n", spec.Name, v, err)
				cache.Evict(key)
			default:
				return err
			}
		}
	}

	sinks, err := openSinks()
	if err != nil {
		return err
	}
	var rec *tracecache.Writer
	if cache != nil {
		if rec, err = cache.NewWriter(key); err != nil {
			return err
		}
		defer rec.Abort()
		sinks = append(sinks, rec)
	}
	sys := osmodel.NewSystem(v, spec)
	sys.SetMetrics(reg)
	var gen osmodel.GenStats
	interrupted := false
	span := lane.Start("generate")
	for done := 0; done < refs; {
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		n := refs - done
		if n > genChunk {
			n = genChunk
		}
		chunk := lane.Start("generate.chunk")
		gen = sys.Run(n, sinks)
		chunk.End()
		done += n
	}
	span.End()
	// Flush even on interrupt so the partial trace file is well-formed
	// and replayable (the header is written up front; records are
	// fixed-width, so any flushed prefix parses cleanly).
	if w != nil {
		if err := w.Flush(); err != nil {
			return err
		}
	}
	if interrupted {
		// A partial recording never commits: the deferred Abort drops it.
		fmt.Fprintf(os.Stderr, "tracegen: interrupted after %d of %d refs; partial trace is valid\n",
			counter.Total, refs)
		return ctx.Err()
	}
	if rec != nil {
		if err := rec.Commit(); err != nil {
			return err
		}
	}
	fmt.Printf("%s under %s: %d refs (%d ifetch, %d load, %d store), %d instrs, %d OS calls\n",
		spec.Name, v, counter.Total,
		counter.ByKind[trace.IFetch], counter.ByKind[trace.Load], counter.ByKind[trace.Store],
		gen.Instrs, gen.Calls)
	fmt.Printf("time split: app %.0f%%, kernel %.0f%%, bsd %.0f%%, x %.0f%%\n",
		gen.AppPct(), gen.KernelPct(), gen.BSDPct(), gen.XPct())
	return nil
}

// replayEntry streams every recorded segment of a cache entry into the
// sinks. Entries recorded by the sweep carry its three phase segments;
// their concatenation is the same full stream tracegen generates.
func replayEntry(ctx context.Context, entry *tracecache.Entry, sinks trace.Sink, lane *spans.Lane) error {
	span := lane.Start("replay")
	defer span.End()
	for {
		_, last, err := entry.ReplaySegment(ctx, sinks)
		if err != nil {
			return err
		}
		if last {
			return nil
		}
	}
}

func statFile(path string, skipCorrupt bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	r.SkipCorrupt = skipCorrupt
	var c trace.Counter
	n, err := r.Drain(&c)
	if err != nil {
		var ce *trace.CorruptError
		if errors.As(err, &ce) {
			return fmt.Errorf("%w (rerun with -skip-corrupt to skip bad records)", ce)
		}
		return err
	}
	fmt.Printf("%s: %d records (%d ifetch, %d load, %d store; %d user, %d kernel)\n",
		path, n, c.ByKind[trace.IFetch], c.ByKind[trace.Load], c.ByKind[trace.Store],
		c.ByMode[trace.User], c.ByMode[trace.Kernel])
	if skipped := r.Corrupt(); skipped > 0 {
		fmt.Printf("  skipped %d corrupt record(s)\n", skipped)
	}
	return nil
}
