// Command tracegen generates and inspects binary memory-reference
// traces from the OS/workload behavioral model -- the reproduction's
// stand-in for the paper's Monster-captured DECstation traces.
//
// Usage:
//
//	tracegen -workload mpeg_play -os Mach -refs 1000000 -o trace.octr
//	tracegen -stat trace.octr
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"onchip/internal/obs"
	"onchip/internal/osmodel"
	"onchip/internal/telemetry"
	"onchip/internal/trace"
	"onchip/internal/workload"
)

func main() {
	wl := flag.String("workload", "mpeg_play", "workload name (see -list)")
	osName := flag.String("os", "Mach", "operating system: Ultrix or Mach")
	refs := flag.Int("refs", 1_000_000, "references to generate")
	out := flag.String("o", "", "output trace file (default stdout summary only)")
	stat := flag.String("stat", "", "inspect an existing trace file instead of generating")
	list := flag.Bool("list", false, "list workload names")
	metricsFile := flag.String("metrics", "", "write run manifest and metrics as JSONL to this file")
	serveAddr := flag.String("serve", "", "serve live observability endpoints on this address (e.g. :6060)")
	flag.Parse()

	if *list {
		for _, n := range workload.Names() {
			fmt.Println(n)
		}
		return
	}
	if *stat != "" {
		if err := statFile(*stat); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}

	start := time.Now()
	var reg *telemetry.Registry
	if *metricsFile != "" || *serveAddr != "" {
		reg = telemetry.NewRegistry()
	}
	man := &telemetry.Manifest{
		Command:   "tracegen",
		Args:      os.Args[1:],
		Start:     start.Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Labels:    map[string]string{"workload": *wl, "os": *osName},
	}
	if *serveAddr != "" {
		srv := obs.New(obs.Config{Registry: reg, Manifest: man})
		bound, err := srv.Start(*serveAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen: serve:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "tracegen: observability plane on http://%s/\n", bound)
	}
	if err := generate(*wl, *osName, *refs, *out, reg); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	if *metricsFile != "" {
		f, err := os.Create(*metricsFile)
		if err == nil {
			err = telemetry.WriteJSONL(f, man, reg.Snapshot())
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
	}
}

func variant(name string) (osmodel.Variant, error) {
	switch name {
	case "Ultrix", "ultrix":
		return osmodel.Ultrix, nil
	case "Mach", "mach":
		return osmodel.Mach, nil
	}
	return 0, fmt.Errorf("unknown OS %q (want Ultrix or Mach)", name)
}

func generate(wl, osName string, refs int, out string, reg *telemetry.Registry) error {
	spec, err := workload.ByName(wl)
	if err != nil {
		return err
	}
	v, err := variant(osName)
	if err != nil {
		return err
	}
	var counter trace.Counter
	// Publish the live counts pull-style so a -serve scrape watches the
	// generation advance; the per-service-class OS counters come from
	// SetMetrics below.
	reg.CounterFunc("tracegen.references", "trace records generated",
		func() uint64 { return counter.Total })
	sinks := trace.Tee{&counter}
	var w *trace.Writer
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w, err = trace.NewWriter(f)
		if err != nil {
			return err
		}
		sinks = append(sinks, w)
	}
	sys := osmodel.NewSystem(v, spec)
	sys.SetMetrics(reg)
	gen := sys.Run(refs, sinks)
	if w != nil {
		if err := w.Flush(); err != nil {
			return err
		}
	}
	fmt.Printf("%s under %s: %d refs (%d ifetch, %d load, %d store), %d instrs, %d OS calls\n",
		spec.Name, v, counter.Total,
		counter.ByKind[trace.IFetch], counter.ByKind[trace.Load], counter.ByKind[trace.Store],
		gen.Instrs, gen.Calls)
	fmt.Printf("time split: app %.0f%%, kernel %.0f%%, bsd %.0f%%, x %.0f%%\n",
		gen.AppPct(), gen.KernelPct(), gen.BSDPct(), gen.XPct())
	return nil
}

func statFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var c trace.Counter
	n, err := r.Drain(&c)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d records (%d ifetch, %d load, %d store; %d user, %d kernel)\n",
		path, n, c.ByKind[trace.IFetch], c.ByKind[trace.Load], c.ByKind[trace.Store],
		c.ByMode[trace.User], c.ByMode[trace.Kernel])
	return nil
}
