// Command advisor serves ranked on-chip memory allocations over HTTP:
// POST /advise with an area budget, OS personality (Mach or Ultrix),
// workload mix and reference count, and it answers the Table 6/7-style
// question -- the optimal TLB/I-cache/D-cache split under that budget
// -- as deterministic JSON.
//
// The daemon hardens the request lifecycle end to end (DESIGN.md
// section 14):
//
//   - every computation runs under -timeout via context cancellation
//     threaded through the sweep and search layers (504 on expiry)
//   - a bounded worker pool (-workers) with a bounded admission queue
//     (-queue) sheds overload with 429 + Retry-After
//   - identical concurrent requests collapse onto one computation
//     (singleflight on the FNV-64a request signature) and a bounded
//     LRU (-cache-entries) answers repeats byte-identically
//   - a circuit breaker around the -trace-cache store trips to live
//     regeneration after repeated corruption, probing again after
//     -breaker-cooldown
//   - worker panics answer 500 without taking the daemon down
//   - GET /healthz reports liveness, GET /readyz readiness (503 while
//     draining); GET /obs/metrics etc. expose the telemetry plane
//   - SIGINT/SIGTERM drains gracefully: admission stops, in-flight
//     work finishes up to -drain-timeout, aborted requests are
//     checkpointed to -drain-checkpoint, and the process exits 130;
//     a second signal aborts immediately (128+signal)
//
// The HTTP server itself is the hardened obs configuration: header,
// read, write and idle timeouts plus header and body size limits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"onchip/internal/advisor"
	"onchip/internal/faultinject"
	"onchip/internal/lifecycle"
	"onchip/internal/obs"
	"onchip/internal/telemetry"
	"onchip/internal/tracecache"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "localhost:8091", "listen address")
	workers := flag.Int("workers", 2, "concurrent sweep computations")
	queue := flag.Int("queue", 0, "admission queue depth beyond the workers (0 = 2x workers); a full queue sheds with 429")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request computation deadline (504 on expiry)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain wait for in-flight work on SIGINT/SIGTERM")
	drainCheckpoint := flag.String("drain-checkpoint", "", "write aborted in-flight requests to this JSON file when the drain deadline hits")
	cacheEntries := flag.Int("cache-entries", 64, "bounded LRU of rendered responses (byte-identical repeats)")
	maxRefs := flag.Int("max-refs", 50_000_000, "largest per-workload reference count one request may demand")
	traceCacheDir := flag.String("trace-cache", "", "trace-cache directory (warm runs replay recorded reference streams; corrupt entries fall back to regeneration)")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive trace-cache corruptions that open the breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 30*time.Second, "open-breaker period before a probe request")
	faultSeed := flag.Int64("fault-seed", 1, "fault-injection PRNG seed (deterministic schedule)")
	faultPanicProb := flag.Float64("fault-panic-prob", 0, "probability a sweep worker panics, per workload attempt (chaos testing)")
	faultRetries := flag.Int("fault-retries", 2, "times a failed workload sweep is retried before the request errors")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "advisor: unexpected arguments %q\n", flag.Args())
		return 2
	}

	// First signal cancels ctx (drain begins); a second signal aborts
	// via lifecycle with 128+signal.
	ctx, stopSignals := lifecycle.Notify(context.Background(), "advisor", nil)
	defer stopSignals()

	reg := telemetry.NewRegistry()
	cfg := advisor.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		RequestTimeout:   *timeout,
		DrainTimeout:     *drainTimeout,
		CheckpointPath:   *drainCheckpoint,
		CacheEntries:     *cacheEntries,
		MaxRefs:          *maxRefs,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		Metrics:          reg,
		Logw:             os.Stderr,
	}
	if *faultPanicProb > 0 {
		cfg.FaultInjector = faultinject.New(faultinject.Config{Seed: *faultSeed, PanicProb: *faultPanicProb})
		cfg.FaultInjector.Describe(reg, "faults")
		cfg.FaultRetries = *faultRetries
	}
	if *traceCacheDir != "" {
		tc, err := tracecache.Open(*traceCacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "advisor:", err)
			return 1
		}
		tc.Describe(reg)
		tc.SetLogWriter(os.Stderr)
		cfg.TraceCache = tc
	}
	// Jobs run under the server's own base context, not the signal
	// context: the first signal must stop admission and let in-flight
	// work finish (Drain below), not cancel it outright.
	srv := advisor.New(cfg)

	obsSrv := obs.New(obs.Config{Registry: reg})
	obsSrv.StartSampler()
	defer obsSrv.Close()

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.Handle("/obs/", http.StripPrefix("/obs", obsSrv.Handler()))
	httpSrv := obs.NewHTTPServer(mux)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "advisor:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "advisor: listening on http://%s/ (POST /advise; /healthz /readyz /obs/metrics)\n", ln.Addr())
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "advisor: serve:", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: the listener stays open so late requests get a
	// clean 503 + Retry-After while in-flight work finishes; then the
	// HTTP server shuts down and the process exits with the
	// signal-shutdown status.
	if err := srv.Drain(); err != nil {
		fmt.Fprintln(os.Stderr, "advisor:", err)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "advisor: shutdown:", err)
	}
	return lifecycle.InterruptExit
}
