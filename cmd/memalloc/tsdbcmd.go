package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"onchip/internal/report"
	"onchip/internal/tsdb"
)

// runTsdb implements `memalloc tsdb <ls|export|trend>`: the CLI over
// the durable time-series store that runs with -tsdb persist. `trend`
// is the longitudinal replacement for pairwise `memalloc compare`: it
// fits a regression line per metric across N stored runs and exits
// non-zero on sustained drift, so CI gates on the fleet, not a pair.
func runTsdb(args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, `usage: memalloc tsdb ls [-dir DIR] [-run ID]
       memalloc tsdb export [-dir DIR] [-run ID] [-res raw|10s|1m] [-from MS] [-to MS] [-format json|csv] <metric>
       memalloc tsdb trend [-dir DIR] [-last N] [-threshold F] [-min-r2 F] [-match SUBSTR] [-include-wallclock]`)
		return 2
	}
	switch args[0] {
	case "ls":
		return runTsdbLs(args[1:])
	case "export":
		return runTsdbExport(args[1:])
	case "trend":
		return runTsdbTrend(args[1:])
	}
	fmt.Fprintf(os.Stderr, "memalloc: unknown tsdb subcommand %q (want ls, export or trend)\n", args[0])
	return 2
}

// runTsdbLs lists the stored runs, or one run's metrics with -run.
func runTsdbLs(args []string) int {
	fs := flag.NewFlagSet("memalloc tsdb ls", flag.ExitOnError)
	dir := fs.String("dir", "tsdb", "time-series store root directory")
	run := fs.String("run", "", "list this run's metrics instead of the run catalog")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: memalloc tsdb ls [-dir DIR] [-run ID]

Lists the runs stored under the tsdb root (written by running with
-tsdb DIR), or with -run, one run's stored metrics.`)
		fs.PrintDefaults()
	}
	fs.Parse(args)
	db := tsdb.Open(*dir)
	if *run != "" {
		metrics, err := db.Metrics(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memalloc:", err)
			return 2
		}
		t := report.NewTable("Stored metrics: "+*run, "Metric", "Kind")
		for _, m := range metrics {
			t.Row(m.Name, m.Kind)
		}
		fmt.Print(t.String())
		return 0
	}
	runs, err := db.Runs()
	if err != nil {
		fmt.Fprintln(os.Stderr, "memalloc:", err)
		return 2
	}
	if len(runs) == 0 {
		fmt.Printf("no stored runs under %s (run with -tsdb %s to persist series)\n", *dir, *dir)
		return 0
	}
	t := report.NewTable("Stored runs: "+*dir, "Run", "Command", "Start", "Metrics")
	for _, r := range runs {
		n := ""
		if metrics, err := db.Metrics(r.RunID); err == nil {
			n = fmt.Sprint(len(metrics))
		}
		t.Row(r.RunID, r.Command, r.Start, n)
	}
	fmt.Print(t.String())
	return 0
}

// runTsdbExport dumps one metric's stored series, reproducing after
// process exit exactly what /query serves live.
func runTsdbExport(args []string) int {
	fs := flag.NewFlagSet("memalloc tsdb export", flag.ExitOnError)
	dir := fs.String("dir", "tsdb", "time-series store root directory")
	run := fs.String("run", "", "run to export (default: the newest stored run)")
	resName := fs.String("res", "raw", "resolution tier: raw, 10s or 1m")
	from := fs.Int64("from", 0, "keep points at or after this unix millisecond")
	to := fs.Int64("to", 0, "keep points at or before this unix millisecond (0 = unbounded)")
	format := fs.String("format", "json", "output format: json or csv")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: memalloc tsdb export [-dir DIR] [-run ID] [-res raw|10s|1m] [-from MS] [-to MS] [-format json|csv] <metric>

Writes one stored series to stdout. JSON output matches the /query
endpoint; CSV has a unix_ms,count,min,max,sum,mean header row.`)
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	res, err := tsdb.ParseRes(*resName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memalloc:", err)
		return 2
	}
	db := tsdb.Open(*dir)
	runID := *run
	if runID == "" {
		runs, err := db.Runs()
		if err != nil || len(runs) == 0 {
			fmt.Fprintf(os.Stderr, "memalloc: no stored runs under %s\n", *dir)
			return 2
		}
		runID = runs[len(runs)-1].RunID
	}
	series, err := db.Query(runID, fs.Arg(0), res, *from, *to)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memalloc:", err)
		return 2
	}
	switch *format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(series)
	case "csv":
		fmt.Println("unix_ms,count,min,max,sum,mean")
		for _, p := range series.Points {
			fmt.Printf("%d,%d,%g,%g,%g,%g\n", p.UnixMs, p.Count, p.Min, p.Max, p.Sum, p.Mean())
		}
	default:
		fmt.Fprintf(os.Stderr, "memalloc: unknown format %q (want json or csv)\n", *format)
		return 2
	}
	if series.Truncated {
		fmt.Fprintln(os.Stderr, "memalloc: warning: a shard ended in a torn block (crashed run); series is the clean prefix")
	}
	return 0
}

// runTsdbTrend fits per-metric regression lines across stored runs and
// gates on sustained drift.
func runTsdbTrend(args []string) int {
	fs := flag.NewFlagSet("memalloc tsdb trend", flag.ExitOnError)
	dir := fs.String("dir", "tsdb", "time-series store root directory")
	last := fs.Int("last", 0, "fit over only the newest N runs (0 = all)")
	threshold := fs.Float64("threshold", 0.01, "relative per-run slope beyond which a metric counts as drifting")
	minR2 := fs.Float64("min-r2", 0.5, "minimum R^2 for a drift to count as sustained rather than noise")
	match := fs.String("match", "", "only fit metrics containing this substring")
	wallclock := fs.Bool("include-wallclock", false, "also fit *_seconds* wall-clock metrics (excluded by default, like memalloc compare)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: memalloc tsdb trend [-dir DIR] [-last N] [-threshold F] [-min-r2 F] [-match SUBSTR] [-include-wallclock]

Fits a least-squares line through each metric's per-run scalar (final
value for counters, run mean for gauges and histograms) across the
stored runs, oldest to newest. Exits 0 when no metric shows sustained
drift, 1 when any does (relative slope > threshold with R^2 >= min-r2
over at least 3 runs), 2 on usage or read errors -- the longitudinal
successor to pairwise "memalloc compare" for CI gating.`)
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 0 {
		fs.Usage()
		return 2
	}
	trends, err := tsdb.Open(*dir).TrendAll(tsdb.TrendOptions{
		LastN:            *last,
		Match:            *match,
		IncludeWallClock: *wallclock,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "memalloc:", err)
		return 2
	}
	if len(trends) == 0 {
		fmt.Println("no metric stored in every selected run; nothing to fit")
		return 0
	}
	drifting := 0
	t := report.NewTable(
		fmt.Sprintf("Trend over %d runs (threshold %.3g%%/run, min R^2 %.2g)",
			len(trends[0].Runs), 100**threshold, *minR2),
		"Metric", "Kind", "Per-run slope", "Rel/run", "R^2", "Drift")
	for _, tr := range trends {
		mark := ""
		if tr.Drifting(*threshold, *minR2) {
			drifting++
			mark = "DRIFTING"
		}
		t.Row(tr.Metric, tr.Kind,
			fmt.Sprintf("%+.6g", tr.Slope),
			fmt.Sprintf("%+.3f%%", 100*tr.Rel*signOf(tr.Slope)),
			fmt.Sprintf("%.3f", tr.R2), mark)
	}
	fmt.Print(t.String())
	if drifting > 0 {
		fmt.Printf("\n%d metric(s) show sustained drift beyond %.3g%%/run\n", drifting, 100**threshold)
		return 1
	}
	fmt.Printf("\nno sustained drift across %d runs\n", len(trends[0].Runs))
	return 0
}

func signOf(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}
