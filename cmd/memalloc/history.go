package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"time"

	"onchip/internal/experiments"
	"onchip/internal/lifecycle"
	"onchip/internal/obs"
	"onchip/internal/search"
	"onchip/internal/telemetry"
	"onchip/internal/tracecache"
	"onchip/internal/tsdb"
)

// runHistory implements `memalloc history`: run experiments with
// metrics forced on and persist the end-of-run snapshot as
// BENCH_<runid>.json, building the run-over-run record that
// `memalloc compare` diffs.
func runHistory(args []string, globalRefs int) int {
	fs := flag.NewFlagSet("memalloc history", flag.ExitOnError)
	refs := fs.Int("refs", globalRefs, "simulated references per workload run (0 = experiment default)")
	dir := fs.String("dir", ".", "directory for the snapshot file")
	out := fs.String("o", "", "exact output path (overrides -dir and the BENCH_<runid>.json name)")
	tsdbDir := fs.String("tsdb", "", "also persist sampled metric series to this time-series store root")
	traceCacheDir := fs.String("trace-cache", "", "cache generated workload reference streams under this directory (warm runs replay instead of regenerating)")
	shards := fs.Int("shards", 0, "set shards per sweep simulator group (power of two; 0 = automatic; never changes results)")
	searchStrategy := fs.String("search", "exhaustive", "design-space search strategy for the allocation experiments: exhaustive or pruned (byte-identical top-10)")
	spacePreset := fs.String("space", "table5", "design space for the allocation experiments: table5 (the paper's grid) or big (>=1M triples, power-law miss model off-grid)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: memalloc history [-refs N] [-dir DIR | -o FILE] [-tsdb DIR] [-trace-cache DIR] [-shards N] [-search S] [-space P] <experiment>... | all

Runs the experiments with metrics collection on and persists the
end-of-run telemetry snapshot as BENCH_<runid>.json, for later
regression checks with "memalloc compare". With -tsdb, the sampled
metric series are also persisted to the durable time-series store, so
one invocation feeds both "memalloc compare" and "memalloc tsdb trend".
-trace-cache and -shards speed the sweeps up without changing any
simulation result (compare warm-vs-cold snapshots with
-ignore 'tracecache\..*'). -search pruned keeps the allocation
rankings byte-identical too; compare a pruned vs an exhaustive run
with -ignore 'search\.configs_' (the strategies price and keep
different counts; the pruned-only search.pruned_*/search.bound_*
gauges are excluded automatically).`)
		fs.PrintDefaults()
	}
	fs.Parse(args)
	ids, code := resolveExperiments(fs.Args())
	if code >= 0 {
		return code
	}

	ctx, stopSignals := lifecycle.Notify(context.Background(), "memalloc history", nil)
	defer stopSignals()

	start := time.Now()
	reg := telemetry.NewRegistry()
	opt := experiments.Options{
		Refs: *refs, Metrics: reg, Context: ctx, Shards: *shards,
		SearchStrategy: *searchStrategy, SpacePreset: *spacePreset,
	}
	if *traceCacheDir != "" {
		tc, err := tracecache.Open(*traceCacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memalloc:", err)
			return 1
		}
		tc.Describe(reg)
		opt.TraceCache = tc
	}
	runID := obs.RunID("memalloc", start)
	flushTsdb := func() {}
	if *tsdbDir != "" {
		man := &telemetry.Manifest{
			Command:   "memalloc history",
			Args:      args,
			Start:     start.Format(time.RFC3339),
			GoVersion: runtime.Version(),
			Labels:    map[string]string{"experiments": fmt.Sprint(ids)},
		}
		app, err := tsdb.Create(*tsdbDir, runID, tsdb.Meta{
			Command:   man.Command,
			Args:      man.Args,
			Start:     man.Start,
			GoVersion: man.GoVersion,
			Labels:    man.Labels,
		}, tsdb.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "memalloc:", err)
			return 1
		}
		srv := obs.New(obs.Config{Registry: reg, Manifest: man, TSDB: app, TSDBRoot: *tsdbDir})
		srv.StartSampler()
		// Stop the sampler, then drain the appender. Triggered explicitly
		// before the snapshot is written (so CI archives a consistent
		// BENCH+shard pair), by a signal, or -- at the latest -- on return.
		flushTsdb = lifecycle.OnShutdown(ctx, "memalloc history: tsdb", nil, func() error {
			srv.Close()
			return app.Close()
		})
		defer flushTsdb()
	}
	for _, id := range ids {
		t0 := time.Now()
		res, err := experiments.Run(id, opt)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				// A partial snapshot would gate CI on half a run; drop it.
				fmt.Fprintf(os.Stderr, "memalloc: history interrupted during %s; no snapshot written\n", id)
				return lifecycle.InterruptExit
			}
			fmt.Fprintln(os.Stderr, "memalloc:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "memalloc: history: %s done (%.1fs)\n", res.ID, time.Since(t0).Seconds())
	}

	flushTsdb()
	path := *out
	if path == "" {
		path = filepath.Join(*dir, obs.RunFileName(runID))
	}
	run := obs.Run{
		Manifest: &telemetry.Manifest{
			Command:   "memalloc history",
			Args:      args,
			Start:     start.Format(time.RFC3339),
			GoVersion: runtime.Version(),
			Labels:    map[string]string{"experiments": fmt.Sprint(ids)},
		},
		Metrics: reg.Snapshot(),
	}
	if err := obs.WriteRunFile(path, run); err != nil {
		fmt.Fprintln(os.Stderr, "memalloc:", err)
		return 1
	}
	fmt.Println(path)
	return 0
}

// runCompare implements `memalloc compare`: diff two persisted run
// snapshots and exit non-zero when any metric moved beyond the
// threshold, so CI can gate on simulator regressions.
func runCompare(args []string) int {
	fs := flag.NewFlagSet("memalloc compare", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.01, "relative change beyond which a metric is flagged")
	ignore := fs.String("ignore", "", "regexp of metric names to exclude from the diff (e.g. 'sweep\\.workers|tracecache\\..*' when comparing runs that legitimately differ in execution arrangement)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: memalloc compare [-threshold F] [-ignore REGEX] <a.json> <b.json>

Diffs two run snapshots written by "memalloc history" (or -metrics
converted runs). Exits 0 when every counter, histogram and the derived
CPI agree within the threshold, 1 when any metric regressed or is
missing from one run, 2 on usage or read errors (so CI can tell a
regression from a missing or unreadable run file). -ignore drops
matching metric names entirely, so execution-arrangement metrics (pool
width, shard count, trace-cache hit counters) do not fail a
determinism gate that only the simulation results should gate.`)
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	var ignoreRE *regexp.Regexp
	if *ignore != "" {
		re, err := regexp.Compile(*ignore)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memalloc: -ignore:", err)
			return 2
		}
		ignoreRE = re
	}
	a, err := readRunFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "memalloc:", err)
		return 2
	}
	b, err := readRunFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "memalloc:", err)
		return 2
	}
	deltas := obs.Compare(a, b, *threshold)
	if ignoreRE != nil {
		kept := deltas[:0]
		for _, d := range deltas {
			if !ignoreRE.MatchString(d.Metric) {
				kept = append(kept, d)
			}
		}
		deltas = kept
	}
	if len(deltas) == 0 {
		fmt.Printf("%s and %s agree: no metric moved more than %.3g%%\n",
			fs.Arg(0), fs.Arg(1), 100**threshold)
		return 0
	}
	fmt.Print(obs.FormatDeltas(deltas))
	fmt.Printf("\n%d metric(s) beyond the %.3g%% threshold\n", len(deltas), 100**threshold)
	return 1
}

// readRunFile loads a snapshot, turning a bare open error on a missing
// file into a message that names the path and lists the run files that
// DO exist next to it -- the usual failure is a typoed BENCH_<runid>
// name, so show the alternatives instead of an errno.
func readRunFile(path string) (obs.Run, error) {
	run, err := obs.ReadRunFile(path)
	if err == nil || !errors.Is(err, fs.ErrNotExist) {
		return run, err
	}
	dir := filepath.Dir(path)
	candidates, _ := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	msg := fmt.Sprintf("run file not found: %s", path)
	if len(candidates) > 0 {
		msg += fmt.Sprintf(" (run files in %s: %v)", dir, candidates)
	} else {
		msg += fmt.Sprintf(" (no BENCH_*.json run files in %s; create one with \"memalloc history\")", dir)
	}
	return run, errors.New(msg)
}

// runCheckpointInfo implements `memalloc checkpoint <file>`: validate a
// sweep checkpoint (header, version, checksum) and summarize how much of
// the enumeration it covers.
func runCheckpointInfo(args []string) int {
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: memalloc checkpoint <file>")
		return 2
	}
	cp, err := search.LoadCheckpoint(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "memalloc:", err)
		return 2
	}
	fmt.Printf("%s: valid checkpoint (version %d)\n", args[0], cp.Version)
	fmt.Printf("  sweep:      %s\n", cp.Label)
	fmt.Printf("  space sig:  %s\n", cp.SpaceSig)
	fmt.Printf("  progress:   %d outer pairs done, %d combinations priced\n", cp.PairsDone, cp.Priced)
	fmt.Printf("  kept:       %d allocations within budget\n", len(cp.Kept))
	return 0
}

// resolveExperiments expands and validates experiment arguments shared
// by the main run path and the history subcommand. It returns the ids
// and -1, or a nil list with the exit code to return.
func resolveExperiments(args []string) ([]string, int) {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "memalloc: no experiments given (run \"memalloc list\" for the catalog)")
		return nil, 2
	}
	if args[0] == "all" {
		if len(args) > 1 {
			fmt.Fprintf(os.Stderr, "memalloc: \"all\" takes no further arguments (got %q)\n", args[1:])
			return nil, 2
		}
		return experiments.IDs(), -1
	}
	// Validate every id up front so a typo after valid ids fails fast,
	// names the offender, and runs nothing.
	for _, id := range args {
		if experiments.Title(id) == "" {
			fmt.Fprintf(os.Stderr, "memalloc: unknown experiment %q (run \"memalloc list\" for the catalog)\n", id)
			return nil, 2
		}
	}
	return args, -1
}
