// Command memalloc reproduces the tables and figures of Nagle, Uhlig,
// Mudge & Sechrest, "Optimal Allocation of On-chip Memory for
// Multiple-API Operating Systems" (ISCA 1994).
//
// Usage:
//
//	memalloc [-refs N] list
//	memalloc [flags] <experiment> [<experiment> ...]
//	memalloc [flags] all
//
// Experiments are named after the paper's artifacts (table1, table3,
// table4, table6, table7, fig3..fig10) plus the methodology checks
// (paths, sampling). -refs controls the simulated references per
// workload/OS run; larger is slower and less noisy.
//
// Observability flags (all off by default; the default output is
// byte-identical to an uninstrumented run):
//
//	-metrics FILE   write a JSONL run manifest plus every collected
//	                metric (one JSON object per line) to FILE
//	-trace FILE     capture the machine's stall-event window (a
//	                Monster-style logic-analyzer ring) and dump it as
//	                JSONL to FILE
//	-progress       stream live progress lines to stderr: measurements
//	                as they finish, sweep and search progress with ETA
//	-pprof ADDR     serve net/http/pprof on ADDR (e.g. localhost:6060)
//	                for the duration of the run
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"time"

	"onchip/internal/experiments"
	"onchip/internal/machine"
	"onchip/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	refs := flag.Int("refs", 0, "simulated references per workload run (0 = experiment default)")
	metricsFile := flag.String("metrics", "", "write run manifest and metrics as JSONL to this file")
	traceFile := flag.String("trace", "", "write the machine stall-event window as JSONL to this file")
	progress := flag.Bool("progress", false, "stream live progress lines to stderr")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		return 2
	}
	if args[0] == "list" {
		if len(args) > 1 {
			fmt.Fprintf(os.Stderr, "memalloc: \"list\" takes no further arguments (got %q)\n", args[1:])
			return 2
		}
		for _, id := range experiments.IDs() {
			fmt.Printf("  %-9s %s\n", id, experiments.Title(id))
		}
		return 0
	}
	ids := args
	if args[0] == "all" {
		if len(args) > 1 {
			fmt.Fprintf(os.Stderr, "memalloc: \"all\" takes no further arguments (got %q)\n", args[1:])
			return 2
		}
		ids = experiments.IDs()
	} else {
		// Validate every id up front so a typo after valid ids fails
		// fast, names the offender, and runs nothing.
		for _, id := range ids {
			if experiments.Title(id) == "" {
				fmt.Fprintf(os.Stderr, "memalloc: unknown experiment %q (run \"memalloc list\" for the catalog)\n", id)
				return 2
			}
		}
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "memalloc: pprof:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "memalloc: pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}

	opt := experiments.Options{Refs: *refs}
	if *metricsFile != "" {
		opt.Metrics = telemetry.NewRegistry()
	}
	if *traceFile != "" {
		opt.Tracer = telemetry.NewTracer(telemetry.DefaultTracerDepth)
	}
	if *progress {
		opt.Progress = os.Stderr
	}

	start := time.Now()
	failed := false
	for _, id := range ids {
		t0 := time.Now()
		res, err := experiments.Run(id, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memalloc:", err)
			failed = true
			continue
		}
		fmt.Printf("=== %s: %s (%.1fs)\n\n%s\n", res.ID, res.Title, time.Since(t0).Seconds(), res.Text)
		for _, n := range res.Notes {
			fmt.Printf("  note: %s\n", n)
		}
		fmt.Println()
	}

	if opt.Metrics != nil {
		m := &telemetry.Manifest{
			Command:   "memalloc",
			Args:      os.Args[1:],
			Start:     start.Format(time.RFC3339),
			GoVersion: runtime.Version(),
			Labels:    map[string]string{"experiments": fmt.Sprint(ids)},
		}
		if err := writeMetrics(*metricsFile, m, opt.Metrics.Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "memalloc:", err)
			failed = true
		}
	}
	if opt.Tracer != nil {
		if err := writeTrace(*traceFile, opt.Tracer); err != nil {
			fmt.Fprintln(os.Stderr, "memalloc:", err)
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}

func writeMetrics(path string, m *telemetry.Manifest, metrics []telemetry.Metric) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteJSONL(f, m, metrics); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeTrace(path string, tr *telemetry.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := machine.WriteTrace(f, tr); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: memalloc [flags] list | all | <experiment>...

Reproduces the evaluation of "Optimal Allocation of On-chip Memory for
Multiple-API Operating Systems" (ISCA 1994). Run "memalloc list" for the
experiment catalog.
`)
	flag.PrintDefaults()
}
