// Command memalloc reproduces the tables and figures of Nagle, Uhlig,
// Mudge & Sechrest, "Optimal Allocation of On-chip Memory for
// Multiple-API Operating Systems" (ISCA 1994).
//
// Usage:
//
//	memalloc [-refs N] list
//	memalloc [-refs N] <experiment> [<experiment> ...]
//	memalloc [-refs N] all
//
// Experiments are named after the paper's artifacts (table1, table3,
// table4, table6, table7, fig3..fig10) plus the methodology checks
// (paths, sampling). -refs controls the simulated references per
// workload/OS run; larger is slower and less noisy.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"onchip/internal/experiments"
)

func main() {
	refs := flag.Int("refs", 0, "simulated references per workload run (0 = experiment default)")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if args[0] == "list" {
		for _, id := range experiments.IDs() {
			fmt.Printf("  %-9s %s\n", id, experiments.Title(id))
		}
		return
	}
	ids := args
	if args[0] == "all" {
		ids = experiments.IDs()
	}

	opt := experiments.Options{Refs: *refs}
	failed := false
	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memalloc:", err)
			failed = true
			continue
		}
		fmt.Printf("=== %s: %s (%.1fs)\n\n%s\n", res.ID, res.Title, time.Since(start).Seconds(), res.Text)
		for _, n := range res.Notes {
			fmt.Printf("  note: %s\n", n)
		}
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: memalloc [-refs N] list | all | <experiment>...

Reproduces the evaluation of "Optimal Allocation of On-chip Memory for
Multiple-API Operating Systems" (ISCA 1994). Run "memalloc list" for the
experiment catalog.
`)
	flag.PrintDefaults()
}
