// Command memalloc reproduces the tables and figures of Nagle, Uhlig,
// Mudge & Sechrest, "Optimal Allocation of On-chip Memory for
// Multiple-API Operating Systems" (ISCA 1994).
//
// Usage:
//
//	memalloc [-refs N] list
//	memalloc [flags] <experiment> [<experiment> ...]
//	memalloc [flags] all
//
// Experiments are named after the paper's artifacts (table1, table3,
// table4, table6, table7, fig3..fig10) plus the methodology checks
// (paths, sampling). -refs controls the simulated references per
// workload/OS run; larger is slower and less noisy.
//
// Design-space search flags (allocation experiments table6/table7):
//
//	-search STRATEGY  "exhaustive" (default) prices every TLB x
//	                  I-cache x D-cache triple; "pruned" runs the
//	                  Pareto/branch-and-bound engine, which reports a
//	                  byte-identical top-10 while pricing a small
//	                  fraction of the space (not compatible with
//	                  -checkpoint/-resume)
//	-space PRESET     "table5" (default) is the paper's grid; "big" is
//	                  the >=1M-triple production space -- the simulators
//	                  still sweep only the Table 5 grid, and off-grid
//	                  configurations are priced by a power-law miss
//	                  model fitted to the sweep output
//
// Observability flags (all off by default; the default output is
// byte-identical to an uninstrumented run):
//
//	-metrics FILE   write a JSONL run manifest plus every collected
//	                metric (one JSON object per line) to FILE
//	-trace FILE     capture the machine's stall-event window (a
//	                Monster-style logic-analyzer ring) and dump it as
//	                JSONL to FILE
//	-progress       stream live progress lines to stderr: measurements
//	                as they finish, sweep and search progress with ETA
//	-pprof ADDR     serve net/http/pprof on ADDR (e.g. localhost:6060)
//	                for the duration of the run
//	-serve ADDR     serve the live observability plane on ADDR for the
//	                duration of the run: GET /metrics (Prometheus),
//	                /snapshot (JSON), /events (SSE tail of the stall-
//	                event ring), /sweep (enumeration progress),
//	                /series (sampled metric time series, with a
//	                ?since=<unix_ms> cursor) and /query (the durable
//	                time-series store, live and historical runs)
//	-tsdb DIR       persist the sampled metric series to an embedded
//	                on-disk time-series store under DIR (checksummed
//	                append-only shards, raw + 10s + 1m rollup tiers);
//	                query later with "memalloc tsdb" or a fresh
//	                process's /query endpoint
//	-spans FILE     record hierarchical execution spans (per-workload
//	                generation phases, per-worker sweep jobs, search,
//	                checkpoint and tsdb writes) and write them as Chrome
//	                trace-event JSON to FILE on exit; load the file in
//	                Perfetto (ui.perfetto.dev) or chrome://tracing. With
//	                -serve, GET /spans reports the live summary.
//	-prof-span NAME capture a CPU profile bracketed exactly by the first
//	                span named NAME (-prof-span-out sets the .pprof path)
//
// Performance flags (neither ever changes experiment output):
//
//	-trace-cache DIR  cache generated workload reference streams under
//	                  DIR (compressed, content-addressed, checksummed);
//	                  a warm run replays the recorded stream instead of
//	                  regenerating it, a corrupt entry falls back to
//	                  regeneration
//	-shards N         set shards per sweep simulator group (power of
//	                  two, 0 = automatic from the worker count)
//
// Fault tolerance (see DESIGN.md "Fault tolerance"):
//
//	-checkpoint FILE  persist design-space sweep state to FILE
//	                  periodically (atomic rename, checksummed)
//	-resume FILE      resume an interrupted sweep from FILE; the final
//	                  ranking is identical to an uninterrupted run
//	-fault-seed N, -fault-panic-prob P, -fault-retries N
//	                  deterministically inject sweep-worker panics and
//	                  control how often a failed workload sweep is
//	                  retried before being excluded from the model
//
// SIGINT/SIGTERM cancels the run gracefully: the sweep checkpoints,
// telemetry flushes, partial results are written, and the process exits
// with status 130. A second signal aborts immediately.
//
// Run history (see EXPERIMENTS.md "Live monitoring"):
//
//	memalloc history [-refs N] [-o FILE] [-tsdb DIR] <experiment>...
//	                persist the end-of-run metric snapshot as
//	                BENCH_<runid>.json (and, with -tsdb, the sampled
//	                series)
//	memalloc compare [-threshold F] [-ignore REGEX] <a.json> <b.json>
//	                diff two snapshots; non-zero exit on regression
//	                (-ignore drops execution-arrangement metrics from
//	                determinism gates)
//	memalloc tsdb ls|export|trend
//	                inspect the durable time-series store: list stored
//	                runs and metrics, export one series (json/csv), or
//	                fit per-metric regressions across N runs and exit
//	                non-zero on sustained drift
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"time"

	"onchip/internal/experiments"
	"onchip/internal/faultinject"
	"onchip/internal/lifecycle"
	"onchip/internal/machine"
	"onchip/internal/obs"
	"onchip/internal/spans"
	"onchip/internal/telemetry"
	"onchip/internal/tracecache"
	"onchip/internal/tsdb"
)

func main() {
	os.Exit(run())
}

func run() int {
	refs := flag.Int("refs", 0, "simulated references per workload run (0 = experiment default)")
	searchStrategy := flag.String("search", "exhaustive", "design-space search strategy for the allocation experiments: exhaustive prices every triple; pruned runs the Pareto/branch-and-bound engine (byte-identical top-10)")
	spacePreset := flag.String("space", "table5", "design space for the allocation experiments: table5 (the paper's grid) or big (>=1M triples; off-grid configurations priced by the power-law miss model)")
	metricsFile := flag.String("metrics", "", "write run manifest and metrics as JSONL to this file")
	traceFile := flag.String("trace", "", "write the machine stall-event window as JSONL to this file")
	progress := flag.Bool("progress", false, "stream live progress lines to stderr")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	serveAddr := flag.String("serve", "", "serve live observability endpoints on this address (e.g. :6060)")
	tsdbDir := flag.String("tsdb", "", "persist sampled metric series to this durable time-series store root (query with /query or \"memalloc tsdb\")")
	spansFile := flag.String("spans", "", "write the run's execution spans as Chrome trace-event JSON to this file (load in Perfetto or chrome://tracing)")
	profSpan := flag.String("prof-span", "", "capture a CPU profile bracketed by the first span with this name (e.g. sweep.model, search.enumerate)")
	profSpanOut := flag.String("prof-span-out", "", "CPU profile output path for -prof-span (default span_<name>.pprof)")
	checkpoint := flag.String("checkpoint", "", "persist design-space sweep state to this file (atomic, checksummed)")
	resume := flag.String("resume", "", "resume a design-space sweep from this checkpoint file (implies -checkpoint to the same file)")
	traceCacheDir := flag.String("trace-cache", "", "cache generated workload reference streams (compressed, content-addressed) under this directory; warm runs replay instead of regenerating")
	shards := flag.Int("shards", 0, "set shards per sweep simulator group (power of two; 0 = automatic from the worker count; never changes results)")
	faultSeed := flag.Int64("fault-seed", 1, "fault-injection PRNG seed (deterministic schedule)")
	faultPanicProb := flag.Float64("fault-panic-prob", 0, "probability a sweep worker panics, per workload attempt (testing the recovery path)")
	faultRetries := flag.Int("fault-retries", 2, "times a failed workload sweep is retried before being excluded from the model")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		return 2
	}
	switch args[0] {
	case "list":
		if len(args) > 1 {
			fmt.Fprintf(os.Stderr, "memalloc: \"list\" takes no further arguments (got %q)\n", args[1:])
			return 2
		}
		for _, id := range experiments.IDs() {
			fmt.Printf("  %-9s %s\n", id, experiments.Title(id))
		}
		return 0
	case "history":
		return runHistory(args[1:], *refs)
	case "compare":
		return runCompare(args[1:])
	case "checkpoint":
		return runCheckpointInfo(args[1:])
	case "tsdb":
		return runTsdb(args[1:])
	}
	ids, code := resolveExperiments(args)
	if code >= 0 {
		return code
	}
	if *resume != "" && len(ids) > 1 {
		fmt.Fprintln(os.Stderr, "memalloc: -resume applies to a single experiment (a checkpoint is bound to one sweep)")
		return 2
	}

	// Shutdown contract: the first SIGINT/SIGTERM cancels ctx -- the
	// sweep persists a checkpoint (when -checkpoint/-resume is set),
	// telemetry is flushed, and the -metrics/-trace files are still
	// written below; a second signal aborts immediately.
	ctx, stopSignals := lifecycle.Notify(context.Background(), "memalloc", nil)
	defer stopSignals()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "memalloc: pprof:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "memalloc: pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}

	opt := experiments.Options{Refs: *refs, Context: ctx}
	opt.SearchStrategy = *searchStrategy
	opt.SpacePreset = *spacePreset
	opt.CheckpointPath = *checkpoint
	opt.ResumePath = *resume
	if *resume != "" && opt.CheckpointPath == "" {
		// Keep checkpointing where we resumed from, so a resumed run
		// that is itself interrupted stays resumable.
		opt.CheckpointPath = *resume
	}
	opt.FaultInjector = faultinject.New(faultinject.Config{Seed: *faultSeed, PanicProb: *faultPanicProb})
	opt.FaultRetries = *faultRetries
	opt.Shards = *shards
	if *metricsFile != "" || *serveAddr != "" || *tsdbDir != "" {
		opt.Metrics = telemetry.NewRegistry()
		opt.FaultInjector.Describe(opt.Metrics, "faults")
	}
	if *traceCacheDir != "" {
		tc, err := tracecache.Open(*traceCacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memalloc:", err)
			return 1
		}
		tc.Describe(opt.Metrics)
		tc.SetLogWriter(os.Stderr) // corrupt entries log their content address
		opt.TraceCache = tc
	}
	if *traceFile != "" || *serveAddr != "" {
		opt.Tracer = telemetry.NewTracer(telemetry.DefaultTracerDepth)
	}
	if *progress {
		opt.Progress = os.Stderr
	}
	spanTr, drainSpans, err := spans.Setup(ctx, "memalloc", *spansFile, *profSpan, *profSpanOut, *serveAddr != "")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer drainSpans()
	opt.Spans = spanTr
	spanTr.SetMetrics(opt.Metrics) // span durations persist via /metrics and the tsdb

	start := time.Now()
	man := &telemetry.Manifest{
		Command:   "memalloc",
		Args:      os.Args[1:],
		Start:     start.Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Labels:    map[string]string{"experiments": fmt.Sprint(ids)},
	}
	var tsdbApp *tsdb.Appender
	if *tsdbDir != "" {
		app, err := tsdb.Create(*tsdbDir, obs.RunID("memalloc", start), tsdb.Meta{
			Command:   man.Command,
			Args:      man.Args,
			Start:     man.Start,
			GoVersion: man.GoVersion,
			Labels:    man.Labels,
		}, tsdb.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "memalloc:", err)
			return 1
		}
		tsdbApp = app
		app.SetSpans(spanTr.Lane("tsdb"))
		// Flush-on-shutdown: a signal drains the appender's buffer and
		// finalizes rollup windows the moment the context cancels, and
		// the deferred trigger covers the normal exit (after the obs
		// sampler below has stopped, so nothing appends past the drain).
		flushTsdb := lifecycle.OnShutdown(ctx, "memalloc: tsdb", nil, app.Close)
		defer flushTsdb()
	}
	if *serveAddr != "" || tsdbApp != nil {
		srv := obs.New(obs.Config{
			Registry: opt.Metrics,
			Tracer:   opt.Tracer,
			Manifest: man,
			KindName: machine.KindName,
			CompName: machine.CompName,
			TSDB:     tsdbApp,
			TSDBRoot: *tsdbDir,
			Spans:    spanTr,
		})
		if *serveAddr != "" {
			bound, err := srv.Start(*serveAddr)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memalloc: serve:", err)
				return 1
			}
			fmt.Fprintf(os.Stderr, "memalloc: observability plane on http://%s/\n", bound)
		} else {
			// -tsdb without -serve still samples: the series persists
			// even when nothing is watching live.
			srv.StartSampler()
		}
		defer srv.Close()
		opt.SweepObserver = srv.ObserveSweep
		opt.CheckpointObserver = srv.ObserveCheckpoint
	}
	failed := false
	interrupted := false
	mainLane := spanTr.Lane("main")
	for _, id := range ids {
		t0 := time.Now()
		expSpan := mainLane.Start("experiment." + id)
		res, err := experiments.Run(id, opt)
		expSpan.End()
		if err != nil {
			if errors.Is(err, context.Canceled) {
				interrupted = true
				fmt.Fprintf(os.Stderr, "memalloc: %s interrupted", id)
				if opt.CheckpointPath != "" {
					fmt.Fprintf(os.Stderr, "; resume with -resume %s", opt.CheckpointPath)
				}
				fmt.Fprintln(os.Stderr)
				break
			}
			fmt.Fprintln(os.Stderr, "memalloc:", err)
			failed = true
			continue
		}
		fmt.Printf("=== %s: %s (%.1fs)\n\n%s\n", res.ID, res.Title, time.Since(t0).Seconds(), res.Text)
		for _, n := range res.Notes {
			fmt.Printf("  note: %s\n", n)
		}
		fmt.Println()
	}

	// Partial results still land on disk after an interrupt: the metric
	// snapshot reflects everything flushed before cancellation, and the
	// trace file holds the captured event window.
	if *metricsFile != "" {
		if err := writeMetrics(*metricsFile, man, opt.Metrics.Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "memalloc:", err)
			failed = true
		}
	}
	if *traceFile != "" {
		if err := writeTrace(*traceFile, opt.Tracer); err != nil {
			fmt.Fprintln(os.Stderr, "memalloc:", err)
			failed = true
		}
	}
	if interrupted {
		return lifecycle.InterruptExit
	}
	if failed {
		return 1
	}
	return 0
}

func writeMetrics(path string, m *telemetry.Manifest, metrics []telemetry.Metric) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteJSONL(f, m, metrics); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeTrace(path string, tr *telemetry.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := machine.WriteTrace(f, tr); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: memalloc [flags] list | all | <experiment>...
       memalloc history [-refs N] [-dir DIR | -o FILE] [-tsdb DIR] <experiment>... | all
       memalloc compare [-threshold F] [-ignore REGEX] <a.json> <b.json>
       memalloc tsdb ls|export|trend [flags]

Reproduces the evaluation of "Optimal Allocation of On-chip Memory for
Multiple-API Operating Systems" (ISCA 1994). Run "memalloc list" for the
experiment catalog. "history" persists an end-of-run metric snapshot as
BENCH_<runid>.json; "compare" diffs two snapshots and exits non-zero on
regression. "-tsdb DIR" persists sampled metric series to an embedded
on-disk time-series store; "memalloc tsdb" lists, exports and fits
longitudinal drift regressions over the stored runs.

Fault tolerance: SIGINT/SIGTERM shuts down gracefully -- the design-
space sweep persists a -checkpoint file, telemetry flushes, and partial
results are written -- and "-resume FILE" continues an interrupted
sweep, reproducing the uninterrupted ranking exactly (exit status 130
marks an interrupted run). The -fault-* flags deterministically inject
sweep-worker faults to exercise the recovery paths.
`)
	flag.PrintDefaults()
}
