// Command tapeworm runs kernel-based TLB simulation: one workload run
// drives any number of alternative TLB configurations simultaneously
// from the hardware TLB's miss events, the method behind the paper's
// Figures 7 and 8.
//
// Usage:
//
//	tapeworm -workload video_play -os Mach -refs 2000000
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"onchip/internal/area"
	"onchip/internal/lifecycle"
	"onchip/internal/machine"
	"onchip/internal/obs"
	"onchip/internal/osmodel"
	"onchip/internal/spans"
	"onchip/internal/tapeworm"
	"onchip/internal/telemetry"
	"onchip/internal/tlb"
	"onchip/internal/trace"
	"onchip/internal/workload"
)

// genChunk is how many references each System.Generate slice produces
// between cancellation checks; generation resumes where the previous
// slice stopped, so chunking does not change the reference stream.
const genChunk = 1 << 20

// generateCtx runs sys.Generate in genChunk slices, polling ctx between
// slices. It reports whether the full n references were generated.
func generateCtx(ctx context.Context, sys *osmodel.System, n int, sink trace.Sink) bool {
	for done := 0; done < n; {
		if ctx.Err() != nil {
			return false
		}
		c := n - done
		if c > genChunk {
			c = genChunk
		}
		sys.Generate(c, sink)
		done += c
	}
	return true
}

func main() {
	wl := flag.String("workload", "video_play", "workload name")
	osName := flag.String("os", "Mach", "operating system: Ultrix or Mach")
	refs := flag.Int("refs", 2_000_000, "references to simulate")
	metricsFile := flag.String("metrics", "", "write run manifest and metrics as JSONL to this file")
	serveAddr := flag.String("serve", "", "serve live observability endpoints on this address (e.g. :6060)")
	spansFile := flag.String("spans", "", "write execution spans as Chrome trace-event JSON to this file (Perfetto-loadable)")
	profSpan := flag.String("prof-span", "", "capture a CPU profile bracketed by the first span with this name (e.g. generate.measure)")
	profSpanOut := flag.String("prof-span-out", "", "CPU profile output path for -prof-span (default span_<name>.pprof)")
	flag.Parse()

	spec, err := workload.ByName(*wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tapeworm:", err)
		os.Exit(1)
	}
	var v osmodel.Variant
	switch *osName {
	case "Ultrix", "ultrix":
		v = osmodel.Ultrix
	case "Mach", "mach":
		v = osmodel.Mach
	default:
		fmt.Fprintf(os.Stderr, "tapeworm: unknown OS %q\n", *osName)
		os.Exit(1)
	}

	// The Table 5 TLB design space plus the small fully-associative
	// sizes of Figure 7.
	var configs []tlb.Config
	for _, n := range []int{32, 64, 128, 256, 512} {
		configs = append(configs, tlb.Config{TLBConfig: area.TLBConfig{Entries: n, Assoc: area.FullyAssociative}})
	}
	for _, a := range []int{1, 2, 4, 8} {
		for _, n := range []int{64, 128, 256, 512} {
			configs = append(configs, tlb.Config{TLBConfig: area.TLBConfig{Entries: n, Assoc: a}})
		}
	}

	ctx, stopSignals := lifecycle.Notify(context.Background(), "tapeworm", nil)
	defer stopSignals()

	start := time.Now()
	hw := tlb.NewManaged(tlb.R2000(), tlb.DefaultCosts())
	var reg *telemetry.Registry
	if *metricsFile != "" || *serveAddr != "" {
		reg = telemetry.NewRegistry()
		hw.Describe(reg, "tapeworm.hw_tlb")
	}
	spanTr, drainSpans, err := spans.Setup(ctx, "tapeworm", *spansFile, *profSpan, *profSpanOut, *serveAddr != "")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer drainSpans()
	spanTr.SetMetrics(reg)
	man := &telemetry.Manifest{
		Command:   "tapeworm",
		Args:      os.Args[1:],
		Start:     start.Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Labels:    map[string]string{"workload": spec.Name, "os": v.String()},
	}
	if *serveAddr != "" {
		srv := obs.New(obs.Config{Registry: reg, Manifest: man, Spans: spanTr})
		bound, err := srv.Start(*serveAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tapeworm: serve:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "tapeworm: observability plane on http://%s/\n", bound)
	}
	tw := tapeworm.Attach(hw, configs...)
	instrC := reg.Counter("tapeworm.instructions", "instructions in the measured window")
	reg.Counter("tapeworm.configs", "TLB configurations simulated simultaneously").
		Add(uint64(len(configs)))
	var instrs uint64
	measuring := false
	sink := trace.SinkFunc(func(r trace.Ref) {
		if r.Kind == trace.IFetch {
			instrs++
			if measuring {
				instrC.Inc() // live view of the measured window only
			}
		}
		hw.Translate(r.Addr, r.ASID)
	})
	sys := osmodel.NewSystem(v, spec)
	lane := spanTr.Lane("main")
	warm := lane.Start("generate.warmup")
	interrupted := !generateCtx(ctx, sys, *refs/3, sink) // warm-up
	warm.End()
	if !interrupted {
		hw.ResetService()
		tw.ResetServices()
		instrs = 0
		measuring = true
		meas := lane.Start("generate.measure")
		interrupted = !generateCtx(ctx, sys, *refs, sink)
		meas.End()
	}
	if instrs == 0 {
		// Interrupted before the measured window opened: there is
		// nothing meaningful to scale or print.
		fmt.Fprintln(os.Stderr, "tapeworm: interrupted during warm-up; no measurements")
		drainSpans() // os.Exit skips defers; the trace still lands
		os.Exit(lifecycle.InterruptExit)
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "tapeworm: interrupted; results below cover the %d instructions measured so far\n", instrs)
	}

	scale := float64(spec.FullRunInstrs) / float64(instrs)
	fmt.Printf("%s under %v: %d instructions simulated, scaled x%.0f to the full run\n\n",
		spec.Name, v, instrs, scale)
	fmt.Printf("%-28s %10s %10s %10s %12s\n", "TLB", "user", "kernel", "other", "seconds")
	for _, r := range tw.Results() {
		secs := float64(r.Service.TotalCycles()) * scale / machine.ClockHz
		fmt.Printf("%-28s %10d %10d %10d %12.2f\n",
			r.Config.TLBConfig.String(),
			r.Service.Count[tlb.UserMiss], r.Service.Count[tlb.KernelMiss], r.Service.Count[tlb.OtherMiss],
			secs)
	}

	if *metricsFile != "" {
		f, err := os.Create(*metricsFile)
		if err == nil {
			err = telemetry.WriteJSONL(f, man, reg.Snapshot())
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "tapeworm:", err)
			os.Exit(1)
		}
	}
	if interrupted {
		drainSpans() // os.Exit skips defers; the trace still lands
		os.Exit(lifecycle.InterruptExit)
	}
}
