// Package testutil provides the fuzzy floating-point assertions the
// package tests share: almost every number this repo checks is a
// simulated or modeled quantity compared against a paper figure or an
// analytic value, so "equal" almost always means "within tolerance".
package testutil

import (
	"math"
	"testing"
)

// defaultEpsilon is the relative slack ApproxEqual allows: tight enough
// to catch any algorithmic difference, loose enough to absorb the
// rounding of a reordered float sum.
const defaultEpsilon = 1e-9

// ApproxEqual fails t unless got and want agree to within a tiny
// relative epsilon. Use it where the values should match analytically
// and only accumulated rounding may differ.
func ApproxEqual(t testing.TB, name string, got, want float64) {
	t.Helper()
	Within(t, name, got, want, defaultEpsilon)
}

// Within fails t unless |got-want| <= tol*|want| (relative tolerance).
// A zero want falls back to an absolute comparison against tol, since a
// relative error against zero is meaningless.
func Within(t testing.TB, name string, got, want, tol float64) {
	t.Helper()
	if got == want {
		return
	}
	if want == 0 {
		if math.Abs(got) > tol {
			t.Errorf("%s = %g, want 0 (+/- %g)", name, got, tol)
		}
		return
	}
	rel := math.Abs(got-want) / math.Abs(want)
	if math.IsNaN(rel) || rel > tol {
		t.Errorf("%s = %g, want %g (+/- %.3g%%); off by %.3g%%", name, got, want, tol*100, rel*100)
	}
}

// WithinAbs fails t unless |got-want| <= abs (absolute tolerance). Use
// it where the scale of the values is known and small, e.g. ratios and
// probabilities.
func WithinAbs(t testing.TB, name string, got, want, abs float64) {
	t.Helper()
	if got == want {
		return
	}
	d := math.Abs(got - want)
	if math.IsNaN(d) || d > abs {
		t.Errorf("%s = %g, want %g (+/- %g); off by %g", name, got, want, abs, d)
	}
}
