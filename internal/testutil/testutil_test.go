package testutil

import (
	"math"
	"testing"
)

// recorder counts Errorf calls without failing the real test.
type recorder struct {
	testing.TB
	failures int
}

func (r *recorder) Helper()                       {}
func (r *recorder) Errorf(string, ...interface{}) { r.failures++ }

func TestWithinAccepts(t *testing.T) {
	cases := []struct{ got, want, tol float64 }{
		{100, 100, 0},      // exact equality needs no tolerance
		{102, 100, 0.05},   // within 5%
		{98, 100, 0.05},    // low side
		{0, 0, 0},          // both zero
		{1e-12, 0, 1e-9},   // zero want: absolute fallback
		{-102, -100, 0.05}, // negative values use |want|
		{1e18, 1.000001e18, 1e-5},
	}
	for _, c := range cases {
		r := &recorder{TB: t}
		Within(r, "x", c.got, c.want, c.tol)
		if r.failures != 0 {
			t.Errorf("Within(%g, %g, %g) failed, want pass", c.got, c.want, c.tol)
		}
	}
}

func TestWithinRejects(t *testing.T) {
	cases := []struct{ got, want, tol float64 }{
		{106, 100, 0.05},
		{94, 100, 0.05},
		{1, 0, 0.5}, // zero want, outside absolute slack
		{math.NaN(), 100, 0.5},
	}
	for _, c := range cases {
		r := &recorder{TB: t}
		Within(r, "x", c.got, c.want, c.tol)
		if r.failures != 1 {
			t.Errorf("Within(%g, %g, %g) passed, want failure", c.got, c.want, c.tol)
		}
	}
}

func TestWithinAbs(t *testing.T) {
	r := &recorder{TB: t}
	WithinAbs(r, "x", 0.1000000001, 0.1, 1e-6)
	WithinAbs(r, "x", 0.5, 0.5, 0)
	if r.failures != 0 {
		t.Errorf("WithinAbs accepted-case failures = %d, want 0", r.failures)
	}
	r = &recorder{TB: t}
	WithinAbs(r, "x", 0.2, 0.1, 1e-6)
	WithinAbs(r, "x", math.NaN(), 0.1, 1e-6)
	if r.failures != 2 {
		t.Errorf("WithinAbs rejected-case failures = %d, want 2", r.failures)
	}
}

func TestApproxEqual(t *testing.T) {
	// Ten additions of 0.1: analytically 1.0, off by an ulp or two.
	sum := 0.0
	for i := 0; i < 10; i++ {
		sum += 0.1
	}
	r := &recorder{TB: t}
	ApproxEqual(r, "sum", sum, 1.0)
	if r.failures != 0 {
		t.Errorf("ApproxEqual(%g, 1.0) failed, want pass", sum)
	}
	r = &recorder{TB: t}
	ApproxEqual(r, "sum", 1.001, 1.0)
	if r.failures != 1 {
		t.Error("ApproxEqual(1.001, 1.0) passed, want failure")
	}
}
