package tsdb

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

func TestResRoundTrip(t *testing.T) {
	for _, res := range Tiers {
		got, err := ParseRes(res.String())
		if err != nil || got != res {
			t.Errorf("ParseRes(%q) = %v, %v", res.String(), got, err)
		}
	}
	if _, err := ParseRes("5s"); err == nil {
		t.Error("unknown resolution must error")
	}
	if Raw.WindowMs() != 0 || R10s.WindowMs() != 10_000 || R1m.WindowMs() != 60_000 {
		t.Error("window widths changed")
	}
}

func randomPoints(rng *rand.Rand, n int, res Res) []Point {
	pts := make([]Point, n)
	ts := int64(1_700_000_000_000)
	for i := range pts {
		ts += rng.Int63n(5000)
		v := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(12)-3))
		if res == Raw {
			pts[i] = rawPoint(ts, v)
			continue
		}
		lo, hi := v-rng.Float64(), v+rng.Float64()
		count := uint64(1 + rng.Intn(40))
		pts[i] = Point{UnixMs: ts, Count: count, Min: lo, Max: hi, Sum: v * float64(count)}
	}
	return pts
}

func TestBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, res := range Tiers {
		var enc []byte
		var want []Point
		for b := 0; b < 5; b++ { // several blocks in one stream
			pts := randomPoints(rng, 1+rng.Intn(50), res)
			enc = appendBlock(enc, res, pts)
			want = append(want, pts...)
		}
		got, truncated, err := decodeBlocks(nil, res, enc)
		if err != nil || truncated {
			t.Fatalf("%s: decode err=%v truncated=%v", res, err, truncated)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: round trip mismatch: got %d points, want %d", res, len(got), len(want))
		}
	}
}

// TestDecodeTornTail truncates an encoded stream at every possible byte
// boundary: the decoder must never panic or error, and must return
// exactly the points of the whole blocks before the cut.
func TestDecodeTornTail(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var enc []byte
	var blockEnds []int
	var want []Point
	perBlock := [][]Point{}
	for b := 0; b < 4; b++ {
		pts := randomPoints(rng, 3+rng.Intn(10), Raw)
		enc = appendBlock(enc, Raw, pts)
		blockEnds = append(blockEnds, len(enc))
		perBlock = append(perBlock, pts)
		want = append(want, pts...)
	}
	for cut := 0; cut <= len(enc); cut++ {
		got, truncated, err := decodeBlocks(nil, Raw, enc[:cut])
		if err != nil {
			t.Fatalf("cut %d: err = %v", cut, err)
		}
		var expect []Point
		for i, end := range blockEnds {
			if cut >= end {
				expect = append(expect, perBlock[i]...)
			}
		}
		// truncated is reported exactly when the cut leaves a partial
		// block behind, i.e. the cut is not a block boundary.
		wantTrunc := cut != 0
		for _, end := range blockEnds {
			if cut == end {
				wantTrunc = false
			}
		}
		if truncated != wantTrunc {
			t.Fatalf("cut %d: truncated = %v, want %v", cut, truncated, wantTrunc)
		}
		if !reflect.DeepEqual(got, expect) {
			t.Fatalf("cut %d: got %d points, want %d", cut, len(got), len(expect))
		}
	}
}

// TestDecodeCorruptBlock flips one byte inside a block payload: the
// checksum must catch it and the decoder must stop cleanly before it.
func TestDecodeCorruptBlock(t *testing.T) {
	pts := randomPoints(rand.New(rand.NewSource(3)), 20, R10s)
	enc := appendBlock(nil, R10s, pts[:10])
	firstLen := len(enc)
	enc = appendBlock(enc, R10s, pts[10:])
	enc[firstLen+8] ^= 0xFF // inside the second block's payload
	got, truncated, err := decodeBlocks(nil, R10s, enc)
	if err != nil || !truncated {
		t.Fatalf("decode err=%v truncated=%v, want clean truncation", err, truncated)
	}
	if !reflect.DeepEqual(got, pts[:10]) {
		t.Fatalf("got %d points, want the 10 before the corrupt block", len(got))
	}
}

func TestSegmentHeaderRoundTrip(t *testing.T) {
	hdr := segmentHeader(R1m, "gauge", "sweep.depth")
	res, kind, metric, rest, err := parseSegmentHeader(append([]byte(hdr), 0xAB))
	if err != nil || res != R1m || kind != "gauge" || metric != "sweep.depth" ||
		len(rest) != 1 || rest[0] != 0xAB {
		t.Fatalf("parse = %v %q %q %v %v", res, kind, metric, rest, err)
	}
	if _, _, _, _, err := parseSegmentHeader([]byte("BOGUS 1 raw counter x\n")); err == nil {
		t.Error("bad magic must error")
	}
	if _, _, _, _, err := parseSegmentHeader([]byte("OTSD 99 raw counter x\n")); err == nil {
		t.Error("future version must error")
	}
	if _, _, _, _, err := parseSegmentHeader([]byte("no newline")); err == nil {
		t.Error("headerless data must error")
	}
}

func TestClockMonotonic(t *testing.T) {
	var c Clock
	t0 := time.UnixMilli(10_000)
	if ms := c.UnixMs(t0); ms != 10_000 {
		t.Fatalf("first sample ms = %d", ms)
	}
	if ms := c.UnixMs(t0.Add(250 * time.Millisecond)); ms != 10_250 {
		t.Fatalf("advance ms = %d", ms)
	}
	// A wall-clock step backwards must clamp, not go out of order.
	if ms := c.UnixMs(t0.Add(-time.Hour)); ms != 10_250 {
		t.Fatalf("backward step ms = %d, want clamp at 10250", ms)
	}
	if ms := c.UnixMs(t0.Add(time.Second)); ms != 11_000 {
		t.Fatalf("recovery ms = %d", ms)
	}
}
