package tsdb

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ErrNoSeries marks a query for a (run, metric, tier) with no stored
// shard: an unknown metric, or a rollup tier whose first window never
// completed before the run ended or crashed.
var ErrNoSeries = errors.New("no stored series")

// MetaSchemaVersion is the MANIFEST.json schema this package writes.
// Readers accept 0 (legacy, no field) through the current version and
// reject newer files rather than misreading them.
const MetaSchemaVersion = 1

const metaFileName = "MANIFEST.json"

// Meta identifies one stored run: the mirror of telemetry.Manifest
// persisted next to the run's shards.
type Meta struct {
	Schema    int               `json:"schema"`
	RunID     string            `json:"run_id"`
	Command   string            `json:"command,omitempty"`
	Args      []string          `json:"args,omitempty"`
	Start     string            `json:"start,omitempty"` // RFC 3339
	GoVersion string            `json:"go_version,omitempty"`
	Labels    map[string]string `json:"labels,omitempty"`
}

func writeMeta(path string, m Meta) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("tsdb: encoding manifest: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("tsdb: writing manifest: %w", err)
	}
	return nil
}

func readMeta(path string) (Meta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Meta{}, err
	}
	var m Meta
	if err := json.Unmarshal(data, &m); err != nil {
		return Meta{}, fmt.Errorf("tsdb: %s: %w", path, err)
	}
	if m.Schema > MetaSchemaVersion {
		return Meta{}, fmt.Errorf("tsdb: %s: manifest schema %d is newer than this binary supports (%d)",
			path, m.Schema, MetaSchemaVersion)
	}
	return m, nil
}

// DB reads a store root written by one or more Appenders. Opening is
// free -- every method hits the filesystem directly, so a DB always
// sees the latest flushed state, including shards a still-running
// process is appending to.
type DB struct {
	root string
}

// Open returns a reader over the store rooted at dir. The directory
// need not exist yet (a store with no runs is empty, not an error).
func Open(root string) *DB { return &DB{root: root} }

// Root returns the store's root directory.
func (db *DB) Root() string { return db.root }

// Runs lists the stored runs, oldest first (run IDs sort by their
// leading UTC timestamp). Directories without a readable manifest are
// skipped: a concurrent Create may not have written one yet.
func (db *DB) Runs() ([]Meta, error) {
	entries, err := os.ReadDir(db.root)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("tsdb: listing runs: %w", err)
	}
	var runs []Meta
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		m, err := readMeta(filepath.Join(db.root, e.Name(), metaFileName))
		if err != nil {
			continue
		}
		if m.RunID == "" {
			m.RunID = e.Name()
		}
		runs = append(runs, m)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].RunID < runs[j].RunID })
	return runs, nil
}

// MetricInfo names one stored series of a run.
type MetricInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "counter", "gauge" or "histogram"
}

// Metrics lists the metrics a run stored, sorted by name. Names come
// from the segment headers, not the (sanitized) file names.
func (db *DB) Metrics(runID string) ([]MetricInfo, error) {
	dir := filepath.Join(db.root, runID, Raw.String())
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tsdb: run %s: %w", runID, err)
	}
	seen := make(map[string]bool)
	var out []MetricInfo
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".tsd") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		_, kind, metric, _, err := parseSegmentHeader(data)
		if err != nil || seen[metric] {
			continue
		}
		seen[metric] = true
		out = append(out, MetricInfo{Name: metric, Kind: kind})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Series is one query result: a metric's stored points at one tier.
type Series struct {
	RunID  string  `json:"run_id"`
	Metric string  `json:"metric"`
	Kind   string  `json:"kind"`
	Res    string  `json:"res"`
	Points []Point `json:"points"`
	// Truncated reports that a segment ended in a torn block (crash
	// mid-append); the points before the tear are still served.
	Truncated bool `json:"truncated,omitempty"`
}

// Query reads one metric's points at the given tier, keeping those with
// fromMs <= UnixMs and (toMs == 0 or UnixMs <= toMs). Segments are read
// in rotation order; a torn tail block in any segment marks the series
// Truncated but is not an error.
func (db *DB) Query(runID, metric string, res Res, fromMs, toMs int64) (Series, error) {
	s := Series{RunID: runID, Metric: metric, Res: res.String()}
	dir := filepath.Join(db.root, runID, res.String())
	pattern := filepath.Join(dir, sanitizeMetric(metric)+".*.tsd")
	segs, err := filepath.Glob(pattern)
	if err != nil {
		return s, fmt.Errorf("tsdb: query: %w", err)
	}
	if len(segs) == 0 {
		return s, fmt.Errorf("tsdb: run %s has no %s shard for metric %q: %w", runID, res, metric, ErrNoSeries)
	}
	sort.Strings(segs) // zero-padded seq numbers sort correctly
	var pts []Point
	for _, seg := range segs {
		data, err := os.ReadFile(seg)
		if err != nil {
			return s, fmt.Errorf("tsdb: query: %w", err)
		}
		segRes, kind, name, rest, err := parseSegmentHeader(data)
		if err != nil {
			return s, fmt.Errorf("tsdb: %s: %w", seg, err)
		}
		if segRes != res || name != metric {
			continue // sanitized-name collision with another metric
		}
		s.Kind = kind
		var torn bool
		if pts, torn, err = decodeBlocks(pts, res, rest); err != nil {
			return s, fmt.Errorf("tsdb: %s: %w", seg, err)
		}
		s.Truncated = s.Truncated || torn
	}
	s.Points = filterRange(pts, fromMs, toMs)
	return s, nil
}

// filterRange keeps points in [fromMs, toMs]; toMs 0 means unbounded.
func filterRange(pts []Point, fromMs, toMs int64) []Point {
	if fromMs == 0 && toMs == 0 {
		return pts
	}
	out := pts[:0]
	for _, p := range pts {
		if p.UnixMs < fromMs || (toMs != 0 && p.UnixMs > toMs) {
			continue
		}
		out = append(out, p)
	}
	return out
}

// Scalar reduces a run's series to the single value trend regression
// uses: the final sample for counters (they are cumulative, so the last
// value is the run total) and the sample mean for gauges and histogram
// means. It prefers the raw tier and falls back to coarser tiers when
// raw was retired.
func (db *DB) Scalar(runID, metric string) (float64, error) {
	var lastErr error
	for _, res := range Tiers {
		s, err := db.Query(runID, metric, res, 0, 0)
		if err != nil {
			lastErr = err
			continue
		}
		if len(s.Points) == 0 {
			lastErr = fmt.Errorf("tsdb: run %s metric %q: empty series", runID, metric)
			continue
		}
		if s.Kind == "counter" {
			last := s.Points[len(s.Points)-1]
			return last.Max, nil // == value for raw; window max for rollups
		}
		var sum float64
		var n uint64
		for _, p := range s.Points {
			sum += p.Sum
			n += p.Count
		}
		if n == 0 {
			return 0, fmt.Errorf("tsdb: run %s metric %q: no observations", runID, metric)
		}
		return sum / float64(n), nil
	}
	return math.NaN(), lastErr
}
