package tsdb

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"onchip/internal/telemetry"
)

// manual returns an appender with the background flusher disabled, so
// tests control exactly when batches hit disk.
func manual(t *testing.T, opts Options) (*Appender, string) {
	t.Helper()
	root := t.TempDir()
	opts.FlushEvery = -1
	a, err := Create(root, "20260808T000000Z-test", Meta{Command: "test"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a, root
}

func sampleMetrics(v float64) []telemetry.Metric {
	return []telemetry.Metric{
		{Name: "machine.cycles", Type: "counter", Value: v * 10},
		{Name: "sweep.depth", Type: "gauge", Value: v},
	}
}

// appendRamp feeds n samples at the given period starting at t0, with
// values off, off+1, ...
func appendRamp(a *Appender, t0 time.Time, period time.Duration, n, off int) {
	for i := 0; i < n; i++ {
		a.Append(t0.Add(time.Duration(i)*period), sampleMetrics(float64(off+i)))
	}
}

func TestAppendFlushQueryRoundTrip(t *testing.T) {
	a, root := manual(t, Options{})
	t0 := time.UnixMilli(1_000_000)
	appendRamp(a, t0, 250*time.Millisecond, 100, 0) // 25 s: crosses 10 s windows
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	appendRamp(a, t0.Add(25*time.Second), 250*time.Millisecond, 100, 0)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	db := Open(root)
	runs, err := db.Runs()
	if err != nil || len(runs) != 1 {
		t.Fatalf("Runs = %+v, %v", runs, err)
	}
	if runs[0].RunID != "20260808T000000Z-test" || runs[0].Schema != MetaSchemaVersion {
		t.Errorf("run meta = %+v", runs[0])
	}
	metrics, err := db.Metrics(runs[0].RunID)
	if err != nil {
		t.Fatal(err)
	}
	want := []MetricInfo{{"machine.cycles", "counter"}, {"sweep.depth", "gauge"}}
	if !reflect.DeepEqual(metrics, want) {
		t.Fatalf("Metrics = %+v", metrics)
	}

	s, err := db.Query(runs[0].RunID, "sweep.depth", Raw, 0, 0)
	if err != nil || s.Truncated {
		t.Fatalf("raw query: %+v, %v", s, err)
	}
	if len(s.Points) != 200 || s.Kind != "gauge" {
		t.Fatalf("raw points = %d kind=%q, want 200 gauge", len(s.Points), s.Kind)
	}
	for i, p := range s.Points {
		wantMs := int64(1_000_000) + int64(i)*250
		if p.UnixMs != wantMs || p.Sum != float64(i%100) || p.Count != 1 {
			t.Fatalf("point %d = %+v", i, p)
		}
	}

	// Rollups must equal a from-scratch recompute over the raw points.
	for _, res := range []Res{R10s, R1m} {
		got, err := db.Query(runs[0].RunID, "sweep.depth", res, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := recomputeRollup(s.Points, res, true); !reflect.DeepEqual(got.Points, want) {
			t.Fatalf("%s rollup:\ngot  %+v\nwant %+v", res, got.Points, want)
		}
	}

	// Range filtering keeps [from, to] inclusive; to=0 is unbounded.
	ranged, err := db.Query(runs[0].RunID, "sweep.depth", Raw, 1_000_500, 1_001_000)
	if err != nil || len(ranged.Points) != 3 {
		t.Fatalf("ranged = %d points, %v, want 3", len(ranged.Points), err)
	}
	tail, err := db.Query(runs[0].RunID, "sweep.depth", Raw, 1_000_000+49*250, 0)
	if err != nil || len(tail.Points) != 200-49 {
		t.Fatalf("tail = %d points, %v", len(tail.Points), err)
	}
}

// recomputeRollup is the from-scratch oracle for the flush-time rollup
// path: aggregate raw points into res windows; includePartial emits the
// final open window (what Close does).
func recomputeRollup(raw []Point, res Res, includePartial bool) []Point {
	window := res.WindowMs()
	var out []Point
	var acc Point
	for _, p := range raw {
		start := p.UnixMs - p.UnixMs%window
		if acc.Count > 0 && start != acc.UnixMs {
			out = append(out, acc)
			acc = Point{}
		}
		if acc.Count == 0 {
			acc = Point{UnixMs: start, Count: 1, Min: p.Min, Max: p.Max, Sum: p.Sum}
			continue
		}
		acc.Count++
		acc.Sum += p.Sum
		if p.Min < acc.Min {
			acc.Min = p.Min
		}
		if p.Max > acc.Max {
			acc.Max = p.Max
		}
	}
	if includePartial && acc.Count > 0 {
		out = append(out, acc)
	}
	return out
}

// TestSegmentRotation forces a tiny segment threshold and checks the
// shard rotates into several files whose concatenation is the series.
func TestSegmentRotation(t *testing.T) {
	a, root := manual(t, Options{SegmentBytes: 256})
	t0 := time.UnixMilli(0)
	for i := 0; i < 50; i++ {
		a.Append(t0.Add(time.Duration(i)*time.Second), sampleMetrics(float64(i)))
		if i%5 == 4 {
			if err := a.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(a.Dir(), "raw", "sweep.depth.*.tsd"))
	if len(segs) < 2 {
		t.Fatalf("segments = %v, want rotation into several files", segs)
	}
	s, err := Open(root).Query("20260808T000000Z-test", "sweep.depth", Raw, 0, 0)
	if err != nil || s.Truncated || len(s.Points) != 50 {
		t.Fatalf("query across segments: %d points truncated=%v err=%v", len(s.Points), s.Truncated, err)
	}
	for i, p := range s.Points {
		if p.Sum != float64(i) {
			t.Fatalf("point %d = %+v after rotation", i, p)
		}
	}
}

func TestBoundedBufferDrops(t *testing.T) {
	a, _ := manual(t, Options{BufferLimit: 5})
	t0 := time.Now()
	for i := 0; i < 10; i++ {
		a.Append(t0.Add(time.Duration(i)*time.Millisecond), sampleMetrics(1))
	}
	// 10 appends x 2 metrics = 20 samples against a 5-sample bound.
	if d := a.Dropped(); d != 15 {
		t.Fatalf("Dropped = %d, want 15", d)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if a.Dropped() != 15 {
		t.Error("flush must not change the dropped count")
	}
}

func TestAppenderNilAndClosed(t *testing.T) {
	var nilA *Appender
	nilA.Append(time.Now(), sampleMetrics(1)) // must not panic
	if err := nilA.Close(); err != nil {
		t.Fatal(err)
	}
	a, root := manual(t, Options{})
	a.Append(time.UnixMilli(1000), sampleMetrics(1))
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	a.Append(time.UnixMilli(2000), sampleMetrics(2)) // dropped silently
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := Open(root).Query("20260808T000000Z-test", "sweep.depth", Raw, 0, 0)
	if err != nil || len(s.Points) != 1 {
		t.Fatalf("post-close append leaked: %d points, %v", len(s.Points), err)
	}
}

// TestBackgroundFlusher exercises the ticker path end to end: samples
// appended while the flusher runs become readable without Close.
func TestBackgroundFlusher(t *testing.T) {
	root := t.TempDir()
	a, err := Create(root, "r", Meta{}, Options{FlushEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	appendRamp(a, time.Now(), time.Millisecond, 10, 0)
	deadline := time.Now().Add(5 * time.Second)
	for {
		s, err := Open(root).Query("r", "sweep.depth", Raw, 0, 0)
		if err == nil && len(s.Points) == 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background flusher never persisted: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCrashMidFlush simulates a kill during an append: after writing
// several flushed batches, the active raw segment is truncated at an
// arbitrary mid-block offset (what a crash mid-write leaves). Reopening
// must (a) surface no torn block -- the decoded series is a clean
// prefix -- and (b) leave the stored rollups consistent with a
// from-scratch recompute over the surviving raw points.
func TestCrashMidFlush(t *testing.T) {
	a, root := manual(t, Options{})
	t0 := time.UnixMilli(5_000)
	for batch := 0; batch < 6; batch++ {
		appendRamp(a, t0.Add(time.Duration(batch)*20*250*time.Millisecond), 250*time.Millisecond, 20, batch*20)
		if err := a.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	// Kill: no Close. Tear the last bytes off the active raw segment.
	rawSeg := filepath.Join(a.Dir(), "raw", "sweep.depth.00000.tsd")
	fi, err := os.Stat(rawSeg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(rawSeg, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	db := Open(root)
	s, err := db.Query("20260808T000000Z-test", "sweep.depth", Raw, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Truncated {
		t.Error("torn tail must be reported as Truncated")
	}
	// The surviving series is the clean prefix: the five whole blocks.
	if len(s.Points) != 100 {
		t.Fatalf("surviving raw points = %d, want the 100 from whole blocks", len(s.Points))
	}
	for i, p := range s.Points {
		if p.UnixMs != 5_000+int64(i)*250 || p.Sum != float64(i) {
			t.Fatalf("surviving point %d = %+v", i, p)
		}
	}

	// Stored rollups hold only windows that completed before the kill:
	// they must be a prefix of the recompute over surviving raw points,
	// matching exactly window for window.
	for _, res := range []Res{R10s, R1m} {
		got, err := db.Query("20260808T000000Z-test", "sweep.depth", res, 0, 0)
		if err != nil && !errors.Is(err, ErrNoSeries) {
			// A tier whose first window never completed before the kill
			// legitimately has no shard yet; anything else is a bug.
			t.Fatal(err)
		}
		oracle := recomputeRollup(s.Points, res, true)
		if len(got.Points) > len(oracle) {
			t.Fatalf("%s: stored %d windows, recompute has %d", res, len(got.Points), len(oracle))
		}
		for i, p := range got.Points {
			if !reflect.DeepEqual(p, oracle[i]) {
				t.Fatalf("%s window %d: stored %+v, recompute %+v", res, i, p, oracle[i])
			}
		}
	}
}
