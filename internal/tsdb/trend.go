package tsdb

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"onchip/internal/telemetry"
)

// Trend is the least-squares regression of one metric's per-run scalar
// across a sequence of stored runs -- the longitudinal generalization
// of the pairwise `memalloc compare`: instead of asking "did these two
// runs differ", it asks "is this metric drifting across the fleet".
type Trend struct {
	Metric string `json:"metric"`
	Kind   string `json:"kind"`
	// Runs and Values are the per-run scalars the line was fit to, in
	// run order (Values[i] belongs to Runs[i]).
	Runs   []string  `json:"runs"`
	Values []float64 `json:"values"`
	// Slope is the fitted change per run; Intercept the fitted value at
	// the first run.
	Slope     float64 `json:"slope"`
	Intercept float64 `json:"intercept"`
	// Rel is |Slope| normalized by the mean |value|: a per-run relative
	// drift rate, comparable across metrics of any magnitude.
	Rel float64 `json:"rel"`
	// R2 is the regression's coefficient of determination: how much of
	// the run-to-run variance the line explains. Sustained drift has
	// both a large Rel and a large R2; noise has a small R2.
	R2 float64 `json:"r2"`
}

// Drifting reports whether the trend is a sustained drift: relative
// slope beyond threshold with the line explaining at least minR2 of the
// variance. Fewer than 3 runs never count as sustained.
func (t Trend) Drifting(threshold, minR2 float64) bool {
	return len(t.Runs) >= 3 && t.Rel > threshold && t.R2 >= minR2
}

// TrendMetric fits a regression line through metric's scalar in each of
// the given runs, in order.
func (db *DB) TrendMetric(metric string, runIDs []string) (Trend, error) {
	t := Trend{Metric: metric}
	for _, id := range runIDs {
		v, err := db.Scalar(id, metric)
		if err != nil {
			return t, err
		}
		t.Runs = append(t.Runs, id)
		t.Values = append(t.Values, v)
	}
	if s, err := db.Query(runIDs[0], metric, Raw, 0, 0); err == nil {
		t.Kind = s.Kind
	}
	t.fit()
	return t, nil
}

// fit computes the least-squares line over x = 0..n-1.
func (t *Trend) fit() {
	n := float64(len(t.Values))
	if n < 2 {
		t.R2 = 0
		return
	}
	var sx, sy, sxx, sxy float64
	for i, y := range t.Values {
		x := float64(i)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	t.Slope = (n*sxy - sx*sy) / den
	t.Intercept = (sy - t.Slope*sx) / n
	meanY := sy / n
	var ssTot, ssRes, meanAbs float64
	for i, y := range t.Values {
		fitted := t.Intercept + t.Slope*float64(i)
		ssTot += (y - meanY) * (y - meanY)
		ssRes += (y - fitted) * (y - fitted)
		meanAbs += math.Abs(y)
	}
	meanAbs /= n
	if meanAbs > 0 {
		t.Rel = math.Abs(t.Slope) / meanAbs
	} else if t.Slope != 0 {
		t.Rel = math.Inf(1)
	}
	switch {
	case ssTot > 0:
		t.R2 = 1 - ssRes/ssTot
	case t.Slope == 0:
		t.R2 = 1 // constant series, perfectly explained
	default:
		t.R2 = 0
	}
}

// TrendOptions select which runs and metrics TrendAll fits.
type TrendOptions struct {
	// LastN keeps only the newest N runs; 0 keeps all.
	LastN int
	// Match keeps metrics containing the substring; empty keeps all.
	Match string
	// IncludeWallClock also fits wall-clock metrics (per
	// telemetry.IsWallClock: *_seconds* timings and span.* duration
	// folds), which `memalloc compare` excludes as machine-dependent;
	// off by default so trend gating inherits the same determinism
	// contract.
	IncludeWallClock bool
}

// TrendAll fits every metric stored in all of the selected runs (a
// metric missing from some run is a presence question for `memalloc
// compare`, not a trend) and returns the fits sorted by descending
// relative drift. It errors when fewer than 2 selected runs exist.
func (db *DB) TrendAll(opts TrendOptions) ([]Trend, error) {
	runs, err := db.Runs()
	if err != nil {
		return nil, err
	}
	if opts.LastN > 0 && len(runs) > opts.LastN {
		runs = runs[len(runs)-opts.LastN:]
	}
	if len(runs) < 2 {
		return nil, fmt.Errorf("tsdb: trend needs at least 2 stored runs, have %d", len(runs))
	}
	ids := make([]string, len(runs))
	inAll := make(map[string]int)
	for i, r := range runs {
		ids[i] = r.RunID
		metrics, err := db.Metrics(r.RunID)
		if err != nil {
			return nil, err
		}
		for _, m := range metrics {
			inAll[m.Name]++
		}
	}
	var names []string
	for name, n := range inAll {
		if n != len(runs) {
			continue
		}
		if !opts.IncludeWallClock && telemetry.IsWallClock(name) {
			continue
		}
		if telemetry.IsSearchStrategy(name) {
			// Pruned-search arrangement counters drift whenever the
			// stored runs mix strategies; like `memalloc compare`, the
			// gate only judges result metrics.
			continue
		}
		if opts.Match != "" && !strings.Contains(name, opts.Match) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Trend, 0, len(names))
	for _, name := range names {
		t, err := db.TrendMetric(name, ids)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Rel > out[j].Rel })
	return out, nil
}
