package tsdb

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"onchip/internal/spans"
	"onchip/internal/telemetry"
)

// Clock converts sample instants to run-relative monotonic unix
// milliseconds: the first instant pins the wall clock, every later one
// advances by the *monotonic* difference from it, and the result never
// decreases. Wall-clock steps (NTP slew, manual adjustment) therefore
// cannot produce out-of-order timestamps within a run. The zero Clock
// is ready to use; it is not safe for concurrent use (each owner keeps
// its own behind its own lock).
type Clock struct {
	started bool
	base    time.Time // first instant, with monotonic reading when the caller's had one
	baseMs  int64     // wall unix ms of base
	last    int64     // last emitted ms (clamp floor)
}

// UnixMs returns the run-relative monotonic timestamp for now.
func (c *Clock) UnixMs(now time.Time) int64 {
	if !c.started {
		c.started = true
		c.base = now
		c.baseMs = now.UnixMilli()
		c.last = c.baseMs
		return c.baseMs
	}
	ms := c.baseMs + now.Sub(c.base).Milliseconds()
	if ms < c.last {
		ms = c.last
	}
	c.last = ms
	return ms
}

// Options tune an Appender; the zero value selects the defaults.
type Options struct {
	// FlushEvery is the batching interval of the background flusher:
	// buffered samples are encoded and appended to the shard files this
	// often. 0 selects 2 s; negative disables the background flusher
	// (the owner calls Flush/Close itself -- tests do).
	FlushEvery time.Duration
	// BufferLimit bounds the samples held between flushes; appends
	// beyond it are dropped and counted rather than growing without
	// bound when the disk stalls. 0 selects 65536.
	BufferLimit int
	// SegmentBytes is the size past which a shard's active segment is
	// synced, closed and rotated to a fresh numbered file. 0 selects
	// 1 MiB.
	SegmentBytes int64
}

func (o *Options) setDefaults() {
	if o.FlushEvery == 0 {
		o.FlushEvery = 2 * time.Second
	}
	if o.BufferLimit <= 0 {
		o.BufferLimit = 65536
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
}

// sample is one buffered (metric, instant, value) observation.
type sample struct {
	ms    int64
	name  string
	kind  string
	value float64
}

// tierState is the write-side state of one metric at one tier: the
// active segment file plus, for rollup tiers, the accumulating window.
type tierState struct {
	f       *os.File
	seq     int
	written int64
	// rollup accumulator; acc.Count == 0 means no open window.
	acc Point
}

// shard is the write-side state of one metric across all tiers.
type shard struct {
	name  string
	kind  string
	tiers [len(resWindowMs)]tierState
}

// Appender is the write path of the store: a bounded in-memory sample
// buffer fed by the obs sampler, drained on a flush interval into
// checksummed blocks, with raw samples simultaneously rolled up into
// the 10 s and 1 m tiers as their windows complete. Append, Flush and
// Close are safe for concurrent use; Close drains everything buffered
// and finalizes partial rollup windows (the lifecycle flush-on-shutdown
// hook calls it).
type Appender struct {
	dir  string
	opts Options

	mu      sync.Mutex // guards buf, clock, dropped, closed
	clock   Clock
	buf     []sample
	dropped uint64
	closed  bool

	ioMu   sync.Mutex // serializes flushes; guards shards and files
	shards map[string]*shard

	stop      chan struct{}
	flusherWG sync.WaitGroup

	// flushLane, when set, records one span per periodic flush; atomic
	// because SetSpans may race with a flusher already ticking.
	flushLane atomic.Pointer[spans.Lane]
}

// SetSpans gives the periodic flusher a span lane: each interval flush
// records a "tsdb.flush" span there, so traces show when the durable
// store's I/O happens relative to the sweep. Only the flusher goroutine
// uses the lane (lanes are single-goroutine); explicit Flush and Close
// calls stay unrecorded. Safe on a nil Appender or nil lane.
func (a *Appender) SetSpans(lane *spans.Lane) {
	if a == nil {
		return
	}
	a.flushLane.Store(lane)
}

// Create opens a new run directory under root and returns its Appender.
// The run's MANIFEST.json is written immediately, so the run is
// discoverable (if empty) even before the first flush.
func Create(root, runID string, meta Meta, opts Options) (*Appender, error) {
	opts.setDefaults()
	dir := filepath.Join(root, runID)
	for _, res := range Tiers {
		if err := os.MkdirAll(filepath.Join(dir, res.String()), 0o755); err != nil {
			return nil, fmt.Errorf("tsdb: creating run dir: %w", err)
		}
	}
	meta.Schema = MetaSchemaVersion
	meta.RunID = runID
	if err := writeMeta(filepath.Join(dir, metaFileName), meta); err != nil {
		return nil, err
	}
	a := &Appender{
		dir:    dir,
		opts:   opts,
		shards: make(map[string]*shard),
		stop:   make(chan struct{}),
	}
	if opts.FlushEvery > 0 {
		a.flusherWG.Add(1)
		go a.flushLoop()
	}
	return a, nil
}

// Dir returns the run directory the appender writes to.
func (a *Appender) Dir() string { return a.dir }

// Dropped returns how many samples the bounded buffer has discarded.
func (a *Appender) Dropped() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dropped
}

// Append buffers one sample per metric at the given instant. The
// instant passes through the run-relative monotonic Clock, so stored
// timestamps are strictly non-decreasing regardless of wall-clock
// steps. Appends after Close are dropped. A nil Appender is a no-op,
// so callers thread it unconditionally like a telemetry instrument.
func (a *Appender) Append(now time.Time, metrics []telemetry.Metric) {
	if a == nil || len(metrics) == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return
	}
	ms := a.clock.UnixMs(now)
	for i, m := range metrics {
		if len(a.buf) >= a.opts.BufferLimit {
			a.dropped += uint64(len(metrics) - i)
			break
		}
		a.buf = append(a.buf, sample{ms: ms, name: m.Name, kind: m.Type, value: m.Value})
	}
}

func (a *Appender) flushLoop() {
	defer a.flusherWG.Done()
	tick := time.NewTicker(a.opts.FlushEvery)
	defer tick.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-tick.C:
			span := a.flushLane.Load().Start("tsdb.flush")
			a.Flush()
			span.End()
		}
	}
}

// Flush drains the buffer to disk: one raw block per metric with the
// samples accumulated since the last flush, plus rollup blocks for any
// 10 s / 1 m windows those samples completed. It is what the flusher
// calls on its interval, and what live /query calls so reads observe
// everything appended so far.
func (a *Appender) Flush() error {
	a.mu.Lock()
	batch := a.buf
	a.buf = nil
	a.mu.Unlock()
	a.ioMu.Lock()
	defer a.ioMu.Unlock()
	return a.writeBatch(batch, false)
}

// Close drains the buffer, finalizes every open rollup window, syncs
// and closes the shard files. Safe to call more than once; appends
// after Close are dropped.
func (a *Appender) Close() error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	batch := a.buf
	a.buf = nil
	a.mu.Unlock()
	close(a.stop)
	a.flusherWG.Wait()

	a.ioMu.Lock()
	defer a.ioMu.Unlock()
	err := a.writeBatch(batch, true)
	for _, sh := range a.shards {
		for t := range sh.tiers {
			ts := &sh.tiers[t]
			if ts.f != nil {
				if e := ts.f.Sync(); e != nil && err == nil {
					err = e
				}
				if e := ts.f.Close(); e != nil && err == nil {
					err = e
				}
				ts.f = nil
			}
		}
	}
	return err
}

// writeBatch appends the batch's raw points and rollups. When final is
// set, open rollup windows are flushed even though incomplete (end of
// run truncates the last window rather than losing it). Caller holds
// ioMu.
func (a *Appender) writeBatch(batch []sample, final bool) error {
	// Group the time-ordered batch by metric, preserving order.
	perMetric := make(map[string][]Point)
	var order []string
	for _, s := range batch {
		sh := a.shards[s.name]
		if sh == nil {
			sh = &shard{name: s.name, kind: s.kind}
			a.shards[s.name] = sh
		}
		if _, seen := perMetric[s.name]; !seen {
			order = append(order, s.name)
		}
		perMetric[s.name] = append(perMetric[s.name], rawPoint(s.ms, s.value))
	}
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, name := range order {
		sh := a.shards[name]
		pts := perMetric[name]
		keep(a.appendTier(sh, Raw, pts))
		for _, res := range Tiers[1:] {
			keep(a.rollup(sh, res, pts, false))
		}
	}
	if final {
		for _, sh := range a.shards {
			for _, res := range Tiers[1:] {
				keep(a.rollup(sh, res, nil, true))
			}
		}
	}
	return firstErr
}

// rollup feeds raw points through the tier's window accumulator,
// appending a rollup point for each window that completes; final
// flushes the open window regardless.
func (a *Appender) rollup(sh *shard, res Res, pts []Point, final bool) error {
	ts := &sh.tiers[res]
	window := res.WindowMs()
	var done []Point
	for _, p := range pts {
		start := p.UnixMs - p.UnixMs%window
		if ts.acc.Count > 0 && start != ts.acc.UnixMs {
			done = append(done, ts.acc)
			ts.acc = Point{}
		}
		if ts.acc.Count == 0 {
			ts.acc = Point{UnixMs: start, Count: 1, Min: p.Min, Max: p.Max, Sum: p.Sum}
			continue
		}
		ts.acc.Count++
		ts.acc.Sum += p.Sum
		if p.Min < ts.acc.Min {
			ts.acc.Min = p.Min
		}
		if p.Max > ts.acc.Max {
			ts.acc.Max = p.Max
		}
	}
	if final && ts.acc.Count > 0 {
		done = append(done, ts.acc)
		ts.acc = Point{}
	}
	if len(done) == 0 {
		return nil
	}
	return a.appendTier(sh, res, done)
}

// appendTier encodes pts as one block on the tier's active segment,
// rotating the segment first when it is over the size threshold.
func (a *Appender) appendTier(sh *shard, res Res, pts []Point) error {
	if len(pts) == 0 {
		return nil
	}
	ts := &sh.tiers[res]
	if ts.f != nil && ts.written >= a.opts.SegmentBytes {
		// Rotate: the old segment is complete and fully durable before
		// the new one exists, so readers always see whole blocks.
		if err := ts.f.Sync(); err != nil {
			return fmt.Errorf("tsdb: rotating %s/%s: %w", res, sh.name, err)
		}
		if err := ts.f.Close(); err != nil {
			return fmt.Errorf("tsdb: rotating %s/%s: %w", res, sh.name, err)
		}
		ts.f, ts.seq, ts.written = nil, ts.seq+1, 0
	}
	if ts.f == nil {
		path := filepath.Join(a.dir, res.String(), segmentFileName(sh.name, ts.seq))
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("tsdb: opening segment: %w", err)
		}
		hdr := segmentHeader(res, sh.kind, sh.name)
		if _, err := f.WriteString(hdr); err != nil {
			f.Close()
			return fmt.Errorf("tsdb: writing segment header: %w", err)
		}
		ts.f, ts.written = f, int64(len(hdr))
	}
	block := appendBlock(nil, res, pts)
	n, err := ts.f.Write(block)
	ts.written += int64(n)
	if err != nil {
		return fmt.Errorf("tsdb: appending block to %s/%s: %w", res, sh.name, err)
	}
	return nil
}

// segmentFileName renders the on-disk name of a metric's numbered
// segment; metric names pass through sanitizeMetric so they are safe as
// file names (the header keeps the authoritative name).
func segmentFileName(metric string, seq int) string {
	return fmt.Sprintf("%s.%05d.tsd", sanitizeMetric(metric), seq)
}

// sanitizeMetric maps a metric name to a file-name-safe form.
func sanitizeMetric(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '_'
	}, name)
}
