package tsdb

import (
	"math"
	"testing"
	"time"

	"onchip/internal/telemetry"
)

// writeRun stores one synthetic run: a cumulative counter ending at
// total, a gauge hovering at level, and a wall-clock gauge that trend
// gating must ignore.
func writeRun(t *testing.T, root, runID string, total, level float64) {
	t.Helper()
	a, err := Create(root, runID, Meta{Command: "test"}, Options{FlushEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.UnixMilli(1_000)
	for i := 0; i < 10; i++ {
		frac := float64(i+1) / 10
		a.Append(t0.Add(time.Duration(i)*time.Second), []telemetry.Metric{
			{Name: "machine.cycles", Type: "counter", Value: total * frac},
			{Name: "sweep.depth", Type: "gauge", Value: level},
			{Name: "sweep.stage_seconds.model", Type: "gauge", Value: level * 100},
		})
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestScalar(t *testing.T) {
	root := t.TempDir()
	writeRun(t, root, "r1", 5000, 2.5)
	db := Open(root)
	if v, err := db.Scalar("r1", "machine.cycles"); err != nil || v != 5000 {
		t.Errorf("counter scalar = %g, %v, want final value 5000", v, err)
	}
	if v, err := db.Scalar("r1", "sweep.depth"); err != nil || v != 2.5 {
		t.Errorf("gauge scalar = %g, %v, want mean 2.5", v, err)
	}
	if _, err := db.Scalar("r1", "nope"); err == nil {
		t.Error("unknown metric must error")
	}
}

// TestTrendDetectsInjectedDrift grows the counter 5% per run while the
// gauge stays flat: trend must flag exactly the drifting metric, with
// the right slope sign and a near-perfect fit.
func TestTrendDetectsInjectedDrift(t *testing.T) {
	root := t.TempDir()
	for i, id := range []string{"r1", "r2", "r3", "r4", "r5"} {
		writeRun(t, root, id, 1000*(1+0.05*float64(i)), 3.0)
	}
	trends, err := Open(root).TrendAll(TrendOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(trends) != 2 {
		t.Fatalf("trends = %+v, want cycles and depth only (no *_seconds*)", trends)
	}
	byName := map[string]Trend{}
	for _, tr := range trends {
		byName[tr.Metric] = tr
	}
	cyc := byName["machine.cycles"]
	if len(cyc.Runs) != 5 || cyc.Slope < 49 || cyc.Slope > 51 {
		t.Errorf("cycles trend = %+v, want slope ~50/run", cyc)
	}
	if cyc.R2 < 0.999 || !cyc.Drifting(0.01, 0.5) {
		t.Errorf("cycles drift not flagged: %+v", cyc)
	}
	depth := byName["sweep.depth"]
	if depth.Slope != 0 || depth.Drifting(0.001, 0.5) {
		t.Errorf("flat gauge flagged as drifting: %+v", depth)
	}
	// Sorted by descending relative drift.
	if trends[0].Metric != "machine.cycles" {
		t.Errorf("sort order: %+v", trends)
	}
}

func TestTrendOptions(t *testing.T) {
	root := t.TempDir()
	// Two noisy early runs, then three flat ones: LastN=3 must see no
	// drift where the full window does.
	for i, total := range []float64{500, 3000, 1000, 1000, 1000} {
		writeRun(t, root, []string{"r1", "r2", "r3", "r4", "r5"}[i], total, 1)
	}
	db := Open(root)
	all, err := db.TrendAll(TrendOptions{Match: "cycles"})
	if err != nil || len(all) != 1 {
		t.Fatalf("match filter: %+v, %v", all, err)
	}
	last3, err := db.TrendAll(TrendOptions{LastN: 3, Match: "cycles"})
	if err != nil {
		t.Fatal(err)
	}
	if tr := last3[0]; tr.Slope != 0 || len(tr.Runs) != 3 || tr.Runs[0] != "r3" {
		t.Errorf("LastN trend = %+v, want flat over r3..r5", tr)
	}
	wall, err := db.TrendAll(TrendOptions{IncludeWallClock: true})
	if err != nil {
		t.Fatal(err)
	}
	var saw bool
	for _, tr := range wall {
		saw = saw || tr.Metric == "sweep.stage_seconds.model"
	}
	if !saw {
		t.Error("IncludeWallClock must surface *_seconds* metrics")
	}
	if _, err := Open(t.TempDir()).TrendAll(TrendOptions{}); err == nil {
		t.Error("trend over an empty store must error")
	}
}

func TestTrendFitEdgeCases(t *testing.T) {
	tr := Trend{Values: []float64{0, 0, 0}, Runs: []string{"a", "b", "c"}}
	tr.fit()
	if tr.Slope != 0 || tr.Rel != 0 || tr.R2 != 1 {
		t.Errorf("all-zero fit = %+v", tr)
	}
	tr = Trend{Values: []float64{1, 2}, Runs: []string{"a", "b"}}
	tr.fit()
	if tr.Slope != 1 || tr.Drifting(0, 0) {
		t.Errorf("two runs must fit but never count as sustained: %+v", tr)
	}
	// Rel normalizes by mean |y| (2/3 here), not the mean (0), so a
	// sign-crossing drift still gets a finite, large relative rate.
	tr = Trend{Values: []float64{-1, 0, 1}, Runs: []string{"a", "b", "c"}}
	tr.fit()
	if tr.Slope != 1 || math.Abs(tr.Rel-1.5) > 1e-12 || !tr.Drifting(1, 0.9) {
		t.Errorf("zero-mean fit = %+v", tr)
	}
}
