// Package tsdb is the durable half of the observability plane: an
// embedded, append-only, on-disk time-series store. Where internal/obs
// keeps a fixed-capacity in-memory window that dies with the process --
// the same flaw as the paper's Monster monitor, whose history vanished
// when the logic-analyzer probe disconnected -- this package persists
// every sampled metric series across runs, so `memalloc tsdb trend` can
// do longitudinal regression tracking over a fleet of runs instead of
// diffing two snapshots.
//
// Layout: one directory per run under the store root, one shard file
// per metric per resolution tier inside it, plus a MANIFEST.json
// identifying the run:
//
//	<root>/<runid>/MANIFEST.json
//	<root>/<runid>/<tier>/<metric>.<seq>.tsd
//
// Tiers are "raw" (every sample), "10s" and "1m" (rollups with
// min/max/sum/count per window, written as raw windows complete, so old
// data shrinks instead of disappearing).
//
// Shard files follow the checkpoint discipline of
// internal/search/checkpoint.go scaled to a stream: a one-line header
// naming the format, then self-delimiting blocks, each carrying its own
// length and CRC32. A block is the atomic unit of appending -- a crash
// mid-write tears at most the final block of the active segment, and
// the checksum makes the torn tail detectable and discardable on open.
// Segments rotate at a size threshold: the active file is synced and
// closed, and a new numbered segment is created, so long runs never
// re-copy old data and a reader sees only whole, verified blocks.
//
// Inside a block, points are delta-encoded: timestamps as zig-zag
// varint deltas, values as varint-encoded XORs of consecutive float64
// bit patterns (the Gorilla/zenodb trick: successive samples of the
// same metric share exponent and mantissa prefixes, so the XOR is
// mostly zero bytes and the varint collapses it).
package tsdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// FormatVersion is the shard-file format version, written in every
// segment header and checked on open.
const FormatVersion = 1

// segMagic opens every segment file: "OTSD <version> <tier> <kind>
// <metric>\n" followed by blocks. Tier is the resolution name; kind is
// the metric type ("counter", "gauge", "histogram") so readers can pick
// a per-run scalar without consulting the registry; the metric name is
// authoritative (file names are a sanitized rendering of it).
const segMagic = "OTSD"

// Res is a resolution tier of the store.
type Res int

const (
	// Raw keeps every sample the obs sampler takes.
	Raw Res = iota
	// R10s rolls samples up into 10-second min/max/sum/count windows.
	R10s
	// R1m rolls samples up into 1-minute windows.
	R1m
)

// resWindowMs are the rollup window widths; Raw has no window.
var resWindowMs = [...]int64{0, 10_000, 60_000}

// String returns the tier's directory name.
func (r Res) String() string {
	switch r {
	case Raw:
		return "raw"
	case R10s:
		return "10s"
	case R1m:
		return "1m"
	}
	return fmt.Sprintf("res(%d)", int(r))
}

// WindowMs returns the rollup window in milliseconds (0 for Raw).
func (r Res) WindowMs() int64 { return resWindowMs[r] }

// Tiers lists every resolution, coarsest last.
var Tiers = []Res{Raw, R10s, R1m}

// ParseRes parses a tier name as used in URLs and the CLI.
func ParseRes(s string) (Res, error) {
	for _, r := range Tiers {
		if r.String() == s {
			return r, nil
		}
	}
	return 0, fmt.Errorf("tsdb: unknown resolution %q (want raw, 10s or 1m)", s)
}

// Point is one stored sample or rollup window. Raw points have Count 1
// and Min == Max == Sum == the sampled value; rollup points aggregate
// every raw sample whose timestamp fell in [UnixMs, UnixMs+window).
type Point struct {
	UnixMs int64   `json:"t"`
	Count  uint64  `json:"n"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Sum    float64 `json:"sum"`
}

// Mean returns the window mean (the value itself for raw points).
func (p Point) Mean() float64 {
	if p.Count == 0 {
		return 0
	}
	return p.Sum / float64(p.Count)
}

// rawPoint makes the Point for a single sample.
func rawPoint(ms int64, v float64) Point {
	return Point{UnixMs: ms, Count: 1, Min: v, Max: v, Sum: v}
}

// segmentHeader renders the one-line header opening a segment file.
func segmentHeader(res Res, kind, metric string) string {
	return fmt.Sprintf("%s %d %s %s %s\n", segMagic, FormatVersion, res, kind, metric)
}

// parseSegmentHeader consumes the header line from data and returns the
// tier, the metric kind and name, and the remaining bytes.
func parseSegmentHeader(data []byte) (res Res, kind, metric string, rest []byte, err error) {
	i := 0
	for i < len(data) && data[i] != '\n' {
		i++
	}
	if i == len(data) {
		return 0, "", "", nil, fmt.Errorf("tsdb: not a shard file (no header line)")
	}
	var version int
	var resName string
	n, err := fmt.Sscanf(string(data[:i]), segMagic+" %d %s %s %s", &version, &resName, &kind, &metric)
	if err != nil || n != 4 {
		return 0, "", "", nil, fmt.Errorf("tsdb: not a shard file (bad header)")
	}
	if version != FormatVersion {
		return 0, "", "", nil, fmt.Errorf("tsdb: unsupported shard format version %d (want %d)", version, FormatVersion)
	}
	if res, err = ParseRes(resName); err != nil {
		return 0, "", "", nil, err
	}
	return res, kind, metric, data[i+1:], nil
}

// A block is length-prefixed and checksummed:
//
//	uvarint  payload length
//	uint32   CRC32 (IEEE) of the payload, little-endian
//	payload  delta-encoded points
//
// The payload starts with a uvarint point count, then per-point fields.
// Raw payloads carry (ts, value) streams; rollup payloads additionally
// carry count/min/max with Sum in the value stream's place... see
// appendBlock.

// appendBlock encodes pts as one block and appends it to dst. Raw
// blocks store only timestamp+value per point; rollup blocks store the
// full aggregate. Points must be in ascending UnixMs order.
func appendBlock(dst []byte, res Res, pts []Point) []byte {
	var payload []byte
	payload = binary.AppendUvarint(payload, uint64(len(pts)))
	prevTs := int64(0)
	prevBits := [3]uint64{} // value/min/max XOR chains
	for _, p := range pts {
		payload = binary.AppendVarint(payload, p.UnixMs-prevTs)
		prevTs = p.UnixMs
		payload = appendXorFloat(payload, &prevBits[0], p.Sum)
		if res != Raw {
			payload = binary.AppendUvarint(payload, p.Count)
			payload = appendXorFloat(payload, &prevBits[1], p.Min)
			payload = appendXorFloat(payload, &prevBits[2], p.Max)
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// appendXorFloat varint-encodes v's bits XOR the previous value's bits
// and advances the chain.
func appendXorFloat(dst []byte, prev *uint64, v float64) []byte {
	bits := math.Float64bits(v)
	dst = binary.AppendUvarint(dst, bits^*prev)
	*prev = bits
	return dst
}

// decodeBlocks appends every point from the verified blocks in data to
// dst. A torn or corrupt tail -- short length prefix, truncated
// payload, or checksum mismatch -- ends the scan cleanly: the points
// decoded so far are returned with truncated=true, never an error,
// because a crash mid-append legitimately leaves one (the issue the
// per-block CRC exists to contain). A decode error *inside* a verified
// payload, by contrast, means real corruption and is reported.
func decodeBlocks(dst []Point, res Res, data []byte) (pts []Point, truncated bool, err error) {
	for len(data) > 0 {
		plen, n := binary.Uvarint(data)
		if n <= 0 || plen > uint64(len(data)) || uint64(len(data)-n) < plen+4 {
			return dst, true, nil
		}
		data = data[n:]
		sum := binary.LittleEndian.Uint32(data)
		payload := data[4 : 4+plen]
		data = data[4+plen:]
		if crc32.ChecksumIEEE(payload) != sum {
			return dst, true, nil
		}
		if dst, err = decodePayload(dst, res, payload); err != nil {
			return dst, false, err
		}
	}
	return dst, false, nil
}

// decodePayload decodes one verified block payload.
func decodePayload(dst []Point, res Res, payload []byte) ([]Point, error) {
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return dst, fmt.Errorf("tsdb: bad block payload (point count)")
	}
	payload = payload[n:]
	prevTs := int64(0)
	prevBits := [3]uint64{}
	readVar := func() (int64, bool) {
		v, n := binary.Varint(payload)
		if n <= 0 {
			return 0, false
		}
		payload = payload[n:]
		return v, true
	}
	readUvar := func() (uint64, bool) {
		v, n := binary.Uvarint(payload)
		if n <= 0 {
			return 0, false
		}
		payload = payload[n:]
		return v, true
	}
	readFloat := func(chain *uint64) (float64, bool) {
		x, ok := readUvar()
		if !ok {
			return 0, false
		}
		*chain ^= x
		return math.Float64frombits(*chain), true
	}
	for i := uint64(0); i < count; i++ {
		var p Point
		dt, ok := readVar()
		if !ok {
			return dst, fmt.Errorf("tsdb: bad block payload (timestamp)")
		}
		prevTs += dt
		p.UnixMs = prevTs
		if p.Sum, ok = readFloat(&prevBits[0]); !ok {
			return dst, fmt.Errorf("tsdb: bad block payload (value)")
		}
		if res == Raw {
			p.Count, p.Min, p.Max = 1, p.Sum, p.Sum
		} else {
			if p.Count, ok = readUvar(); !ok {
				return dst, fmt.Errorf("tsdb: bad block payload (count)")
			}
			if p.Min, ok = readFloat(&prevBits[1]); !ok {
				return dst, fmt.Errorf("tsdb: bad block payload (min)")
			}
			if p.Max, ok = readFloat(&prevBits[2]); !ok {
				return dst, fmt.Errorf("tsdb: bad block payload (max)")
			}
		}
		dst = append(dst, p)
	}
	if len(payload) != 0 {
		return dst, fmt.Errorf("tsdb: bad block payload (%d trailing bytes)", len(payload))
	}
	return dst, nil
}
