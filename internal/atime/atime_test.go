package atime

import (
	"testing"
	"testing/quick"

	"onchip/internal/area"
)

func cacheCfg(capBytes, line, assoc int) area.CacheConfig {
	return area.CacheConfig{CapacityBytes: capBytes, LineWords: line, Assoc: assoc}
}

// Calibration anchors: early-90s 0.8-micron SRAM access times.
func TestCalibrationAnchors(t *testing.T) {
	m := Default()
	t8dm := m.CacheAccessNS(cacheCfg(8<<10, 4, 1))
	if t8dm < 5 || t8dm > 9 {
		t.Errorf("8-KB DM access = %.1f ns, want ~7", t8dm)
	}
	t32x8 := m.CacheAccessNS(cacheCfg(32<<10, 4, 8))
	if t32x8 < 9 || t32x8 > 15 {
		t.Errorf("32-KB 8-way access = %.1f ns, want ~12", t32x8)
	}
}

// The motivating trade-offs: associativity and capacity cost time.
func TestAssociativityCostsTime(t *testing.T) {
	m := Default()
	prev := 0.0
	for _, a := range []int{1, 2, 4, 8} {
		got := m.CacheAccessNS(cacheCfg(16<<10, 4, a))
		if got <= prev {
			t.Errorf("%d-way access %.2f ns not slower than %d-way %.2f ns", a, got, a/2, prev)
		}
		prev = got
	}
}

func TestCapacityCostsTime(t *testing.T) {
	m := Default()
	prev := 0.0
	for capKB := 2; capKB <= 64; capKB *= 2 {
		got := m.CacheAccessNS(cacheCfg(capKB<<10, 4, 1))
		if got <= prev {
			t.Errorf("%d-KB access %.2f ns not slower than smaller cache", capKB, got)
		}
		prev = got
	}
}

// "Large fully-associative TLBs are difficult to build and can have
// excessively long access times" (section 5.2): the FA curve must grow
// faster than the set-associative one.
func TestLargeFATLBsAreSlow(t *testing.T) {
	m := Default()
	fa512 := m.TLBAccessNS(area.TLBConfig{Entries: 512, Assoc: area.FullyAssociative})
	sa512 := m.TLBAccessNS(area.TLBConfig{Entries: 512, Assoc: 8})
	if fa512 <= sa512 {
		t.Errorf("512-entry FA %.2f ns should be slower than 8-way %.2f ns", fa512, sa512)
	}
	fa64 := m.TLBAccessNS(area.TLBConfig{Entries: 64, Assoc: area.FullyAssociative})
	if fa512 <= fa64 {
		t.Error("FA access time must grow with entries")
	}
	// A 64-entry FA TLB (the R2000's) must be buildable at the era's
	// cycle times.
	if fa64 > 8 {
		t.Errorf("64-entry FA TLB = %.1f ns, too slow for a 60-ns machine", fa64)
	}
}

func TestFitsCycle(t *testing.T) {
	m := Default()
	tlbCfg := area.TLBConfig{Entries: 512, Assoc: 8}
	small := cacheCfg(8<<10, 4, 1)
	big := cacheCfg(32<<10, 4, 8)
	if !m.FitsCycle(20, tlbCfg, small, small) {
		t.Error("everything fits a 20-ns cycle")
	}
	if m.FitsCycle(8, tlbCfg, big, big) {
		t.Error("a 32-KB 8-way cache cannot fit an 8-ns cycle")
	}
}

// Property: access time is positive and finite for every valid config.
func TestQuickPositive(t *testing.T) {
	m := Default()
	f := func(capExp, lineExp, assocExp uint8) bool {
		c := cacheCfg(1<<(11+capExp%6), 1<<(lineExp%6), 1<<(assocExp%4))
		if c.Validate() != nil {
			return true
		}
		ns := m.CacheAccessNS(c)
		return ns > 0 && ns < 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	m := Default()
	for name, f := range map[string]func(){
		"cache": func() { m.CacheAccessNS(cacheCfg(3000, 4, 1)) },
		"tlb":   func() { m.TLBAccessNS(area.TLBConfig{Entries: 48, Assoc: 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
