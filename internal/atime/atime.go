// Package atime is an analytical access-time model for on-chip SRAM
// structures in the style of Wada, Rajan and Przybylski, "An analytical
// access time model for on-chip cache memories" (IEEE JSSC 27(8), 1992)
// -- the model the paper names as the way to extend its cost/benefit
// analysis with a timing dimension ("we did not consider the impact of
// size and associativity on memory access times in a rigorous fashion.
// An accurate access-time model, such as that developed by Wada et al.,
// could be used to add another dimension to this style of cost/benefit
// analysis", Section 6).
//
// The model composes the classic critical path of an SRAM access:
//
//	address decoder -> wordline -> bitline -> sense amplifier ->
//	(tag comparator -> way select) -> data out
//
// with terms that scale the way Wada's RC analysis does: decoder delay
// grows with the logarithm of the row count (fan-in of the decode tree),
// wordline delay with the column count (RC of the polysilicon line),
// bitline delay with the row count (cell drain loading), and
// set-associative organizations add a comparator and a way-select
// multiplexer. Fully-associative structures replace decode+compare with
// a CAM match whose delay grows with the entry count.
//
// Constants are calibrated to early-1990s 0.8-micron CMOS, the
// technology generation of the paper's Table 1 processors: an 8-KB
// direct-mapped cache comes out near 7 ns and a 32-KB 8-way near 12 ns,
// matching the era's published SRAM access times. As with the area
// model, designers would substitute constants for their own process.
package atime

import (
	"math"

	"onchip/internal/area"
)

// Model holds the delay constants, all in nanoseconds.
type Model struct {
	// DecoderBase and DecoderPerBit form the row-decode delay:
	// DecoderBase + DecoderPerBit * log2(rows).
	DecoderBase   float64
	DecoderPerBit float64
	// WordlinePerCol is the wordline RC slope per column driven.
	WordlinePerCol float64
	// BitlinePerRow is the bitline discharge slope per row of loading.
	BitlinePerRow float64
	// Sense is the sense-amplifier resolution time.
	Sense float64
	// Compare is the tag comparator delay (set-associative only).
	Compare float64
	// WaySelectPerBit is the way-select mux delay per log2(ways).
	WaySelectPerBit float64
	// MatchBase and MatchPerBit form the CAM match delay of
	// fully-associative structures: MatchBase + MatchPerBit *
	// log2(entries).
	MatchBase   float64
	MatchPerBit float64
	// BankRows is the sub-banking limit: arrays taller than this are
	// split into banks (Wada's array partitioning), each access paying
	// BankSelectPerBit * log2(banks) for the bank decoder/mux instead
	// of an ever-longer bitline.
	BankRows         int
	BankSelectPerBit float64
	// Output is the output-driver delay, common to every organization.
	Output float64
}

// Default returns constants calibrated for 0.8-micron CMOS (see the
// package comment).
func Default() Model {
	return Model{
		DecoderBase:      0.8,
		DecoderPerBit:    0.25,
		WordlinePerCol:   0.004,
		BitlinePerRow:    0.006,
		Sense:            1.2,
		Compare:          1.1,
		WaySelectPerBit:  0.9,
		MatchBase:        1.6,
		MatchPerBit:      0.45,
		BankRows:         256,
		BankSelectPerBit: 0.3,
		Output:           0.7,
	}
}

// CacheAccessNS returns the access time of the cache configuration in
// nanoseconds. It panics on invalid configurations; validate untrusted
// input first.
func (m Model) CacheAccessNS(c area.CacheConfig) float64 {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	lineBits := c.LineWords * area.WordBytes * 8
	tag := c.TagBits()
	if c.Assoc == area.FullyAssociative {
		entries := c.Lines()
		rows, bankDelay := m.banked(entries)
		return m.MatchBase + m.MatchPerBit*log2f(entries) + bankDelay +
			m.WordlinePerCol*float64(lineBits) +
			m.BitlinePerRow*float64(rows) +
			m.Sense + m.Output
	}
	rows := c.Sets()
	cols := c.Assoc * (lineBits + tag)
	rows, bankDelay := m.banked(rows)
	t := m.DecoderBase + m.DecoderPerBit*log2f(rows) + bankDelay +
		m.WordlinePerCol*float64(cols) +
		m.BitlinePerRow*float64(rows) +
		m.Sense + m.Output
	if c.Assoc > 1 {
		t += m.Compare + m.WaySelectPerBit*log2f(c.Assoc)
	}
	return t
}

// banked splits an over-tall array into sub-banks, returning the
// per-bank row count and the bank-select delay.
func (m Model) banked(rows int) (int, float64) {
	if m.BankRows <= 0 || rows <= m.BankRows {
		return rows, 0
	}
	banks := rows / m.BankRows
	return m.BankRows, m.BankSelectPerBit * log2f(banks)
}

// TLBAccessNS returns the access time of the TLB configuration in
// nanoseconds.
func (m Model) TLBAccessNS(t area.TLBConfig) float64 {
	if err := t.Validate(); err != nil {
		panic(err)
	}
	const entryBits = 56 // tag + valid + data, as in the area model
	if t.Assoc == area.FullyAssociative {
		return m.MatchBase + m.MatchPerBit*log2f(t.Entries) +
			m.WordlinePerCol*32 + // data array read-out
			m.BitlinePerRow*float64(t.Entries) +
			m.Sense + m.Output
	}
	rows := t.Sets()
	cols := t.Assoc * entryBits
	rows, bankDelay := m.banked(rows)
	d := m.DecoderBase + m.DecoderPerBit*log2f(rows) + bankDelay +
		m.WordlinePerCol*float64(cols) +
		m.BitlinePerRow*float64(rows) +
		m.Sense + m.Output
	if t.Assoc > 1 {
		d += m.Compare + m.WaySelectPerBit*log2f(t.Assoc)
	}
	return d
}

// FitsCycle reports whether every structure in the allocation can be
// accessed within the given cycle time (the caches and the TLB are
// probed in parallel on a MIPS-style pipeline, so the slowest structure
// sets the constraint).
func (m Model) FitsCycle(cycleNS float64, tlbCfg area.TLBConfig, icache, dcache area.CacheConfig) bool {
	return m.CacheAccessNS(icache) <= cycleNS &&
		m.CacheAccessNS(dcache) <= cycleNS &&
		m.TLBAccessNS(tlbCfg) <= cycleNS
}

func log2f(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Log2(float64(n))
}
