// Package osmodel is a behavioral model of the two operating systems the
// paper measures -- Ultrix (single-API, services in the kernel) and Mach
// 3.0 (multiple-API, services in user-level servers reached by RPC) --
// executing the paper's workload suite and emitting the full memory
// reference stream, operating-system activity included.
//
// It substitutes for the paper's hardware-captured DECstation traces by
// modeling the mechanisms the paper identifies as responsible for the
// differences between the two systems (Section 4): the <100-instruction
// Ultrix system-call round trip versus Mach's ~1000-instruction call and
// ~850-instruction return paths through the emulation library, the
// kernel IPC path and the BSD server; services and buffer caches moving
// from unmapped kernel segments into mapped user-level address spaces;
// extra address spaces and page tables; and out-of-line VM transfer for
// large messages. Cache and TLB behaviour differences between Ultrix and
// Mach then *emerge* from the simulated reference streams rather than
// being programmed in.
package osmodel

import (
	"fmt"

	"onchip/internal/telemetry"
	"onchip/internal/trace"
	"onchip/internal/vm"
)

// Variant selects the modeled operating system.
type Variant uint8

const (
	// Ultrix models the single-API system: services in the kernel.
	Ultrix Variant = iota
	// Mach models the multiple-API system: emulation library, RPC
	// through the kernel, user-level BSD and X servers.
	Mach
)

func (v Variant) String() string {
	if v == Mach {
		return "Mach"
	}
	return "Ultrix"
}

// WorkloadSpec parameterizes one benchmark: its compute/OS mix, code and
// data footprints, display traffic, and nominal full-run length.
type WorkloadSpec struct {
	Name string
	Seed uint64

	// ComputeInstrs is the mean user instruction count between OS
	// calls.
	ComputeInstrs int
	// TextBytes is the application code footprint; HotLoopBytes the
	// inner compute kernel revisited most of the time; ColdCodePct the
	// percentage of compute phases that take a cold path through the
	// full text instead.
	TextBytes    int
	HotLoopBytes int
	ColdCodePct  int
	// DataBytes is the heap footprint, HotDataBytes its hot subset,
	// BufBytes the streaming I/O buffer region.
	DataBytes    int
	HotDataBytes int
	BufBytes     int

	// Calls is the OS service mix.
	Calls []CallMix
	// FrameBytes, when non-zero, is the display payload pushed to the
	// X server every CallsPerFrame OS calls.
	FrameBytes    int
	CallsPerFrame int

	// ExecEvery, when non-zero, overlays the task with a fresh address
	// space every that-many OS calls (mab's compile phases). exec is
	// scheduled rather than drawn from the mix because its rate is far
	// below the per-call service rates.
	ExecEvery int

	// OtherCPI is the non-memory stall density (integer/FP interlocks)
	// of the application, in cycles per instruction; it feeds the
	// machine model's "Other" CPI category.
	OtherCPI float64

	// FullRunInstrs is the nominal instruction count of the complete
	// benchmark on the DECstation (the paper tuned inputs to 100-200
	// seconds); experiments scale simulated service times by
	// FullRunInstrs / simulated instructions to report absolute
	// seconds.
	FullRunInstrs uint64
}

// Validate checks the spec for the fields the driver divides by.
func (w WorkloadSpec) Validate() error {
	if w.ComputeInstrs <= 0 {
		return fmt.Errorf("osmodel: %s: ComputeInstrs must be positive", w.Name)
	}
	if w.HotLoopBytes <= 0 || w.TextBytes < w.HotLoopBytes {
		return fmt.Errorf("osmodel: %s: need 0 < HotLoopBytes <= TextBytes", w.Name)
	}
	if w.DataBytes <= 0 || w.HotDataBytes <= 0 {
		return fmt.Errorf("osmodel: %s: data footprints must be positive", w.Name)
	}
	if len(w.Calls) == 0 {
		return fmt.Errorf("osmodel: %s: empty call mix", w.Name)
	}
	if w.FrameBytes > 0 && w.CallsPerFrame <= 0 {
		return fmt.Errorf("osmodel: %s: FrameBytes without CallsPerFrame", w.Name)
	}
	return nil
}

// Fixed ASIDs for the core processes; exec() recycles the range above.
const (
	asidApp   = 1
	asidX     = 2
	asidBSD   = 3
	asidPager = 4
	asidExec0 = 5 // first recycled ASID for exec()
	asidMax   = 63
)

// quantumInstrs is the clock-interrupt interval in instructions
// (~256 Hz at DECstation speed).
const quantumInstrs = 50000

// GenStats summarizes where a generated stream spent its time.
type GenStats struct {
	Refs         uint64
	Instrs       uint64
	AppInstrs    uint64
	KernelInstrs uint64
	BSDInstrs    uint64
	XInstrs      uint64
	Calls        uint64
	Frames       uint64
}

// IsServerASID reports whether asid belongs to a user-level OS server
// (the X server, an API server, or the name server) rather than an
// application task. The ASIDs 11/21/31 are the per-application API
// servers of the NewMultiAPI configuration.
func IsServerASID(asid uint8) bool {
	switch asid {
	case asidX, asidBSD, asidPager, 11, 21, 31:
		return true
	}
	return false
}

// Pct returns part/whole as a percentage.
func pct(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// AppPct returns the percentage of instructions in the application task.
func (g GenStats) AppPct() float64 { return pct(g.AppInstrs, g.Instrs) }

// KernelPct returns the percentage of instructions in kernel mode.
func (g GenStats) KernelPct() float64 { return pct(g.KernelInstrs, g.Instrs) }

// BSDPct returns the percentage of instructions in the BSD server.
func (g GenStats) BSDPct() float64 { return pct(g.BSDInstrs, g.Instrs) }

// XPct returns the percentage of instructions in the X server.
func (g GenStats) XPct() float64 { return pct(g.XInstrs, g.Instrs) }

// System is one simulated machine: an OS variant running one workload.
type System struct {
	variant Variant
	spec    WorkloadSpec

	kern *kernelLayout
	app  *Process
	xsrv *Process
	bsd  *Process // Mach only

	em  *Emitter
	rng *rng

	// Service hosting: kernel regions under Ultrix, BSD server regions
	// under Mach.
	host serviceHost

	// Data-traffic cursors.
	mbufCur   cursor // Ultrix network buffers
	kmsgCur   cursor // Mach in-transit messages
	xbufCur   cursor // X server receive buffer
	sharedCur cursor // Mach out-of-line mapped windows (app side)

	kmix   DataMix // kernel stack/static data traffic
	ipcMix DataMix // Mach IPC path traffic (port tables in kseg2)

	nextExecASID uint8
	execLo       uint8
	execHi       uint8
	callCount    uint64
	frameCount   uint64
	pendingX     int // bytes queued for the X server
	lastTick     uint64

	// oolBytes is the Mach out-of-line transfer threshold; payloads
	// strictly larger move by remapping instead of copying.
	oolBytes int
	// nameServer, when non-nil, models Black et al.'s decomposition of
	// the monolithic BSD server: file-system calls first resolve
	// through a separate small-granularity name/authentication server.
	nameServer *Process

	// Telemetry (nil no-ops unless SetMetrics is called): per-service-
	// class invocation and reference counts.
	metricsOn bool
	svcCalls  [nServices]*telemetry.Counter
	svcRefs   [nServices]*telemetry.Counter
}

// cursor streams through a region, wrapping.
type cursor struct {
	reg Region
	off uint32
}

func (c *cursor) next(n uint32) uint32 {
	if c.reg.Size == 0 {
		return c.reg.Base
	}
	if c.off+n > c.reg.Size {
		c.off = 0
	}
	a := c.reg.Base + c.off
	c.off += n
	return a
}

// NewSystem builds a system for the variant and workload. It panics on
// an invalid spec; validate untrusted specs first.
func NewSystem(v Variant, spec WorkloadSpec) *System {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	s := &System{
		variant:      v,
		spec:         spec,
		kern:         newKernelLayout(),
		rng:          newRNG(spec.Seed),
		nextExecASID: asidExec0,
		execLo:       asidExec0,
		execHi:       asidMax,
		oolBytes:     oolThreshold,
	}
	s.app = newProcess(spec.Name, asidApp, uint32(spec.TextBytes), uint32(spec.HotLoopBytes),
		uint32(spec.DataBytes), uint32(spec.BufBytes))
	s.xsrv = newProcess("Xserver", asidX, 256<<10, 1<<10, 512<<10, 1<<20)
	s.xbufCur = cursor{reg: s.xsrv.Buf}

	kGen := &WorkingSetGen{Base: s.kern.kdata.Base, HotBytes: 4 << 10,
		ColdBytes: s.kern.kdata.Size - 4<<10, HotPct: 92}
	s.kmix = DefaultMix(MixGen{A: StackGen{SP: s.kern.kstack.End() - 64}, APct: 45, B: kGen})

	switch v {
	case Ultrix:
		// Services and the buffer cache live in the kernel: code in
		// kseg0 (unmapped), buffers in kseg0 data.
		s.host = serviceHost{
			fsCode:   s.kern.fsCode,
			sockCode: s.kern.sockCode,
			bufCache: s.kern.bufCache,
			mix:      s.kmix,
		}
		s.mbufCur = cursor{reg: s.kern.mbufs}
	case Mach:
		// Services live in the user-level BSD server: its code and
		// buffer cache are mapped pages in a separate address space.
		s.bsd = newProcess("bsd_server", asidBSD, 1536<<10, 4<<10, 1<<20, 64<<20)
		s.app.Emul = Region{Base: vm.EmulatorBase, Size: 48 << 10}
		s.host = serviceHost{
			fsCode:   Region{Base: s.bsd.Text.Base + 64<<10, Size: 48 << 10},
			sockCode: Region{Base: s.bsd.Text.Base + 128<<10, Size: 32 << 10},
			bufCache: s.bsd.Buf,
			mix:      s.bsd.dataMix(4 << 10),
		}
		s.kmsgCur = cursor{reg: s.kern.kmsgBuf}
		s.sharedCur = cursor{reg: Region{Base: vm.SharedMapBase, Size: 8 << 20}}
		ipcGen := &WorkingSetGen{Base: s.kern.portTable.Base, HotBytes: 2 << 10,
			ColdBytes: s.kern.portTable.Size - 2<<10, HotPct: 96}
		s.ipcMix = DataMix{LoadPct: 25, StorePct: 10,
			Gen: MixGen{A: StackGen{SP: s.kern.kstack.End() - 64}, APct: 40, B: ipcGen}}
	default:
		panic(fmt.Sprintf("osmodel: unknown variant %d", v))
	}
	return s
}

// Variant returns the modeled operating system.
func (s *System) Variant() Variant { return s.variant }

// SetOOLThreshold overrides the Mach out-of-line transfer threshold in
// bytes: payloads strictly larger move by VM remapping rather than
// copying. Setting it very large disables out-of-line transfer (all
// copies); setting it to 0 forces remapping for every payload -- the
// "more aggressive virtual memory sharing" of Section 4.3, which the
// paper predicts "is likely to shift misses from the I-cache to the
// TLB". Must be called before Generate.
func (s *System) SetOOLThreshold(bytes int) { s.oolBytes = bytes }

// EnableDecomposedServers splits the monolithic BSD server in the style
// of Black et al. (cited in Section 4.1): file-system services first
// resolve through a separate small-granularity name/authentication
// server in its own address space, adding another RPC hop per call.
// Mach only; must be called before Generate.
func (s *System) EnableDecomposedServers() {
	if s.variant != Mach {
		panic("osmodel: decomposed servers are a Mach restructuring")
	}
	s.nameServer = newProcess("name_server", asidPager, 128<<10, 2<<10, 128<<10, 0)
}

// SetMetrics attaches a telemetry registry: every OS service class gets
// an invocation counter and a counter of the memory references its
// invocations emitted (invocation path, service body and payload
// traffic included). Safe to call with nil (telemetry stays off). Must
// be called before Run/Generate for complete counts.
func (s *System) SetMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.metricsOn = true
	for svc := SvcRead; svc < nServices; svc++ {
		s.svcCalls[svc] = reg.Counter("os.calls."+svc.String(), "invocations of the service")
		s.svcRefs[svc] = reg.Counter("os.refs."+svc.String(), "references emitted serving the call")
	}
}

// Spec returns the workload specification.
func (s *System) Spec() WorkloadSpec { return s.spec }

// AppASID returns the application's current address-space identifier
// (exec() changes it).
func (s *System) AppASID() uint8 { return s.app.ASID }

// Generate implements trace.Generator: run the workload until at least
// n references have been emitted into sink and return the number
// actually emitted in this call. Each call continues the same system
// state, so a long stream can be produced in slices.
func (s *System) Generate(n int, sink trace.Sink) int {
	before := uint64(0)
	if s.em != nil {
		before = s.em.Emitted()
	}
	s.Run(n, sink)
	return int(s.em.Emitted() - before)
}

// Run is Generate plus the generation statistics snapshot.
func (s *System) Run(n int, sink trace.Sink) GenStats {
	if s.em == nil {
		s.em = NewEmitter(sink, s.spec.Seed|1)
	} else {
		s.em.SetSink(sink)
	}
	target := s.em.Emitted() + uint64(n)
	for s.em.Emitted() < target {
		s.computePhase()
		s.maybeTick()
		call := s.drawCall()
		if s.spec.ExecEvery > 0 && s.callCount%uint64(s.spec.ExecEvery) == uint64(s.spec.ExecEvery)-1 {
			call = Call{Svc: SvcExec}
		}
		s.invoke(call)
		s.callCount++
		if s.spec.FrameBytes > 0 && s.callCount%uint64(s.spec.CallsPerFrame) == 0 {
			s.displayFrame()
		}
		s.maybeTick()
	}
	// Deliver any buffered tail so the sink is complete before the
	// caller inspects it (or hands the next slice to a different sink).
	s.em.Flush()
	return s.statsSnapshot()
}

func (s *System) statsSnapshot() GenStats {
	by := s.em.InstrsByASID()
	g := GenStats{
		Refs:         s.em.Emitted(),
		Instrs:       s.em.Instructions(),
		KernelInstrs: s.em.KernelInstrs(),
		XInstrs:      by[asidX],
		Calls:        s.callCount,
		Frames:       s.frameCount,
	}
	if s.bsd != nil {
		g.BSDInstrs = by[asidBSD]
	}
	// The application may have changed ASID across exec()s; sum all
	// non-server user ASIDs.
	for asid, c := range by {
		if asid != asidX && asid != asidBSD && asid != asidPager {
			g.AppInstrs += c
		}
	}
	return g
}

// computePhase runs the application's user-level work between OS calls.
func (s *System) computePhase() {
	s.em.SetContext(s.app.ASID, trace.User)
	instrs := s.spec.ComputeInstrs/2 + s.rng.intn(s.spec.ComputeInstrs)
	mix := s.app.dataMix(uint32(s.spec.HotDataBytes))
	if s.rng.chance(s.spec.ColdCodePct) {
		// Cold path: wander through the full program text.
		s.em.Walk(s.app.Text.Base, s.app.Text.Size, uint32(s.rng.intn(int(s.app.Text.Size))), instrs, mix)
		return
	}
	body := int(s.app.HotLoop.Size) / 4
	iters := instrs / body
	if iters < 1 {
		iters = 1
	}
	s.em.Loop(s.app.HotLoop.Base, body, iters, mix)
}

// pathVariant rotates among three code-path variants per call: real
// service code has multiple branches and helper paths, so the dynamic
// footprint over a window of calls is several times one path's length.
func (s *System) pathVariant() uint32 {
	return uint32(s.callCount%3) * 8192
}

// drawCall picks the next OS call from the weighted mix.
func (s *System) drawCall() Call {
	total := 0
	for _, c := range s.spec.Calls {
		total += c.Weight
	}
	pick := s.rng.intn(total)
	for _, c := range s.spec.Calls {
		if pick < c.Weight {
			return c.Call
		}
		pick -= c.Weight
	}
	return s.spec.Calls[len(s.spec.Calls)-1].Call
}

// invoke dispatches a call through the variant's invocation path.
// Outbound payloads (writes, socket sends) are first produced by the
// application: a store burst filling the buffer, which is where much of
// the paper's write-buffer pressure comes from.
func (s *System) invoke(c Call) {
	if !s.metricsOn {
		s.dispatch(c)
		return
	}
	before := s.em.Emitted()
	s.dispatch(c)
	s.svcCalls[c.Svc].Inc()
	s.svcRefs[c.Svc].Add(s.em.Emitted() - before)
}

func (s *System) dispatch(c Call) {
	if c.Bytes > 0 && (c.Svc == SvcWrite || c.Svc == SvcSockSend) {
		s.appProduce(c.Bytes)
	}
	switch s.variant {
	case Ultrix:
		s.ultrixSyscall(c)
	case Mach:
		s.machSyscall(c)
	}
}

// appProduce models the application filling an output buffer: a tight
// store loop (decode output, file content) with one store per couple of
// instructions.
func (s *System) appProduce(bytes int) {
	s.em.SetContext(s.app.ASID, trace.User)
	dst := s.app.PeekBufPage(uint32(bytes))
	words := bytes / 4
	loop := s.app.HotLoop.Base + s.app.HotLoop.Size/2
	for w := 0; w < words; w++ {
		body := uint32(w%4) * 12
		s.em.IFetch(loop + body)
		s.em.IFetch(loop + body + 4)
		s.em.IFetch(loop + body + 8)
		s.em.Store(dst + uint32(w*4))
	}
}

// maybeTick delivers the clock interrupt when a quantum has elapsed.
func (s *System) maybeTick() {
	if s.em.Instructions()-s.lastTick < quantumInstrs {
		return
	}
	s.lastTick = s.em.Instructions()
	asid, mode := s.em.Context()
	s.em.SetContext(asid, trace.Kernel)
	s.em.Seq(s.kern.clockCode.Base, 250, s.kmix)
	// Every fourth tick the scheduler runs its queues.
	if (s.lastTick/quantumInstrs)%4 == 0 {
		s.em.Seq(s.kern.schedCode.Base, 150, s.kmix)
	}
	s.em.SetContext(asid, mode)
}

// contextSwitch models the kernel switch path onto another process.
func (s *System) contextSwitch(to *Process) {
	asid, _ := s.em.Context()
	s.em.SetContext(asid, trace.Kernel) // switch code runs in kernel mode
	s.em.Seq(s.kern.schedCode.Base, 120, s.kmix)
	s.em.SetContext(to.ASID, trace.User)
}

// displayFrame pushes FrameBytes of rendered output to the X server and
// lets it consume the traffic.
func (s *System) displayFrame() {
	s.frameCount++
	bytes := s.spec.FrameBytes
	s.invoke(Call{Svc: SvcSockSend, Bytes: bytes})
	s.pendingX += bytes
	s.runXServer()
}

// runXServer consumes queued display bytes: protocol handling plus a
// render loop that reads the request data and stores pixels to the
// uncached framebuffer in kseg1.
func (s *System) runXServer() {
	if s.pendingX == 0 {
		return
	}
	bytes := s.pendingX
	s.pendingX = 0
	s.contextSwitch(s.xsrv)
	// Protocol dispatch in the X server's text.
	s.em.Walk(s.xsrv.Text.Base, s.xsrv.Text.Size, uint32(s.frameCount%4)*2048,
		800, s.xsrv.dataMix(4<<10))
	// Render: read the received data, write the framebuffer.
	src := s.xbufCur.next(uint32(bytes))
	fb := s.kern.framebuf.Base + uint32(s.rng.intn(int(s.kern.framebuf.Size/2)))&^3
	s.em.Copy(s.xsrv.HotLoop.Base, fb, src, bytes)
	// Switch back to the application.
	s.em.SetContext(s.xsrv.ASID, trace.Kernel)
	s.em.Seq(s.kern.schedCode.Base, 120, s.kmix)
	s.em.SetContext(s.app.ASID, trace.User)
}
