package osmodel

import (
	"fmt"

	"onchip/internal/trace"
)

// Multi time-slices several workloads on one simulated machine, the
// multiprogramming the paper's traces contain ("the sample traces
// include multiprogramming and operating system references", Section 3).
// Each workload runs in its own application address space; the X server,
// the BSD server and the kernel are shared, exactly as on a real system.
// Interleaving adds the cache and TLB interference between processes
// that the paper's Table 3 shows user-only simulation missing.
type Multi struct {
	systems []*System
	// QuantumRefs is the scheduling slice in references (~a few
	// timer ticks).
	QuantumRefs int
	next        int
}

// multiSlots place each co-scheduled application in a distinct ASID
// range so exec() pools do not collide. Each slot also reserves an
// address space for a per-application API server (used by NewMultiAPI).
var multiSlots = []struct{ app, apiServer, execLo, execHi uint8 }{
	{asidApp, asidBSD, 40, 45},
	{10, 11, 46, 51},
	{20, 21, 52, 57},
	{30, 31, 58, 63},
}

// NewMulti builds a multiprogrammed system running the given workloads
// under one OS variant. All workloads share one API server (under Mach,
// one BSD server serves every task, as in the paper's measurements). It
// panics if more than four workloads are given or any spec is invalid.
func NewMulti(v Variant, specs ...WorkloadSpec) *Multi {
	return newMulti(v, false, specs)
}

// NewMultiAPI builds the configuration the paper's title is about but
// its testbed could not run: each workload talks to its *own* API server
// in its own address space (the BSD, DOS, MacOS and VMS servers of the
// paper's Figure 1). Compared with NewMulti, the only change is that the
// server code and data no longer share an address space across
// applications -- the per-server work is identical. Mach only.
func NewMultiAPI(v Variant, specs ...WorkloadSpec) *Multi {
	if v != Mach {
		panic("osmodel: multiple API servers are a Mach (multi-API) structure")
	}
	return newMulti(v, true, specs)
}

func newMulti(v Variant, perAppServer bool, specs []WorkloadSpec) *Multi {
	if len(specs) == 0 || len(specs) > len(multiSlots) {
		panic(fmt.Sprintf("osmodel: NewMulti supports 1-%d workloads, got %d", len(multiSlots), len(specs)))
	}
	m := &Multi{QuantumRefs: 30_000}
	for i, spec := range specs {
		sys := NewSystem(v, spec)
		slot := multiSlots[i]
		sys.app.ASID = slot.app
		sys.execLo, sys.execHi = slot.execLo, slot.execHi
		sys.nextExecASID = slot.execLo
		if perAppServer && sys.bsd != nil {
			sys.bsd.ASID = slot.apiServer
		}
		m.systems = append(m.systems, sys)
	}
	return m
}

// Generate implements trace.Generator: round-robin quanta across the
// workloads until at least n references have been emitted.
func (m *Multi) Generate(n int, sink trace.Sink) int {
	emitted := 0
	for emitted < n {
		sys := m.systems[m.next]
		m.next = (m.next + 1) % len(m.systems)
		emitted += sys.Generate(m.QuantumRefs, sink)
	}
	return emitted
}

// Stats returns the per-workload generation statistics.
func (m *Multi) Stats() []GenStats {
	out := make([]GenStats, len(m.systems))
	for i, sys := range m.systems {
		out[i] = sys.statsSnapshot()
	}
	return out
}
