package osmodel

import (
	"testing"

	"onchip/internal/trace"
	"onchip/internal/vm"
)

// bigPayloadSpec issues reads large enough to cross the default
// out-of-line threshold.
func bigPayloadSpec() WorkloadSpec {
	w := testSpec()
	w.Calls = []CallMix{{Call: Call{Svc: SvcRead, Bytes: 16 * 1024}, Weight: 1}}
	w.FrameBytes = 0
	return w
}

func countSharedRefs(sys *System, refs int) (shared, kmsg uint64) {
	sys.Generate(refs, trace.SinkFunc(func(r trace.Ref) {
		if !r.Data() {
			return
		}
		switch {
		case r.Addr >= vm.SharedMapBase && r.Addr < vm.EmulatorBase:
			shared++
		case vm.SegmentOf(r.Addr) == vm.Kseg2 && r.Addr >= vm.PageTableBase+0x10000000:
			kmsg++
		}
	}))
	return
}

func TestOOLThresholdControlsTransferPath(t *testing.T) {
	// Default threshold: 16-KB reads move out-of-line -> shared-window
	// references appear.
	def := NewSystem(Mach, bigPayloadSpec())
	sharedDef, _ := countSharedRefs(def, 150_000)
	if sharedDef == 0 {
		t.Error("large reads should touch out-of-line shared windows by default")
	}
	// Threshold raised above the payload: everything copies, no shared
	// windows.
	copyAll := NewSystem(Mach, bigPayloadSpec())
	copyAll.SetOOLThreshold(1 << 30)
	sharedCopy, _ := countSharedRefs(copyAll, 150_000)
	if sharedCopy != 0 {
		t.Errorf("copy-all still produced %d shared-window refs", sharedCopy)
	}
}

func TestDecomposedServersAddNameServer(t *testing.T) {
	spec := testSpec()
	plain := NewSystem(Mach, spec)
	plainStats := plain.Run(150_000, trace.Discard)

	dec := NewSystem(Mach, spec)
	dec.EnableDecomposedServers()
	var nameServerInstrs uint64
	dec.Generate(150_000, trace.SinkFunc(func(r trace.Ref) {
		if r.Kind == trace.IFetch && r.ASID == asidPager && r.Mode == trace.User {
			nameServerInstrs++
		}
	}))
	if nameServerInstrs == 0 {
		t.Fatal("decomposed system never ran the name server")
	}
	decStats := dec.statsSnapshot()
	// The extra hops lengthen the per-call OS path.
	plainOS := float64(plainStats.Instrs-plainStats.AppInstrs) / float64(plainStats.Calls)
	decOS := float64(decStats.Instrs-decStats.AppInstrs) / float64(decStats.Calls)
	if decOS <= plainOS {
		t.Errorf("decomposed OS path %.0f instrs/call <= monolithic %.0f", decOS, plainOS)
	}
}

func TestDecomposedServersUltrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("decomposed servers under Ultrix must panic")
		}
	}()
	NewSystem(Ultrix, testSpec()).EnableDecomposedServers()
}
