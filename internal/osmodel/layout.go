package osmodel

import "onchip/internal/vm"

// Region is a contiguous range of virtual memory.
type Region struct {
	Base uint32
	Size uint32
}

// End returns the first address past the region.
func (r Region) End() uint32 { return r.Base + r.Size }

// kernelLayout places the kernel's code and data. Both Ultrix and Mach
// run their kernels in kseg0 (unmapped, cached), which is why Ultrix --
// whose services all live in the kernel -- shows almost no TLB stalls in
// the paper's Table 3. Dynamically-allocated kernel data lives in kseg2
// (mapped): page tables for both systems, plus IPC ports, message
// kmsg buffers and VM objects for Mach, whose kernel allocates far more
// mapped memory. kseg1 holds the memory-mapped I/O and framebuffer
// region (uncached, no TLB, no cache).
type kernelLayout struct {
	// kseg0 code regions.
	trapEntry Region // exception vector + save/restore
	dispatch  Region // syscall demux tables and stubs
	fsCode    Region // 4.3BSD file-system service code
	sockCode  Region // socket / network service code
	vmCode    Region // VM fault handling, pager interface
	procCode  Region // fork/exec/exit/wait
	ipcCode   Region // Mach message send/receive paths
	schedCode Region // context switch, run queue
	clockCode Region // hardclock interrupt handler

	// kseg0 data.
	kstack   Region // kernel stacks
	kdata    Region // statically allocated kernel data
	bufCache Region // Ultrix block buffer cache (in-kernel)
	mbufs    Region // network buffers

	// kseg2 (mapped) data.
	procTable Region // process/thread structures
	portTable Region // Mach port name space
	kmsgBuf   Region // Mach in-transit message bodies
	vmObjects Region // Mach VM objects / memory objects

	// kseg1: framebuffer (uncached, unmapped).
	framebuf Region
}

func newKernelLayout() *kernelLayout {
	// Code sizes are denominated in bytes (4 bytes per instruction) and
	// chosen to match the scale of a 4.3BSD-derived kernel: individual
	// services are a few KB of hot path each.
	const kb = 1024
	code := uint32(vm.Kseg0Base)
	alloc := func(size uint32) Region {
		r := Region{Base: code, Size: size}
		code += size
		return r
	}
	l := &kernelLayout{
		trapEntry: alloc(2 * kb),
		dispatch:  alloc(4 * kb),
		fsCode:    alloc(48 * kb),
		sockCode:  alloc(32 * kb),
		vmCode:    alloc(32 * kb),
		procCode:  alloc(24 * kb),
		ipcCode:   alloc(24 * kb),
		schedCode: alloc(8 * kb),
		clockCode: alloc(2 * kb),
	}
	data := uint32(vm.Kseg0Base + 8<<20) // kernel data well above code
	dalloc := func(size uint32) Region {
		r := Region{Base: data, Size: size}
		data += size
		return r
	}
	l.kstack = dalloc(64 * kb)
	l.kdata = dalloc(512 * kb)
	// The buffer cache streams file pages; a large VA window models
	// page-cache turnover (evicted pages re-enter as fresh pages), so
	// the first-touch rate is stationary over long runs.
	l.bufCache = dalloc(64 << 20)
	l.mbufs = dalloc(64 * kb) // mbuf pool recycles quickly

	// Mapped kernel data in kseg2, above the linear page tables.
	mapped := uint32(vm.PageTableBase + 0x10000000)
	malloc := func(size uint32) Region {
		r := Region{Base: mapped, Size: size}
		mapped += size
		return r
	}
	// These pools are recycled LIFO in the real kernels, so their hot
	// footprints are small even under load.
	l.procTable = malloc(32 * kb)
	l.portTable = malloc(16 * kb)
	l.kmsgBuf = malloc(8 * kb)
	l.vmObjects = malloc(32 * kb)

	l.framebuf = Region{Base: vm.Kseg1Base + 1<<20, Size: 2 << 20}
	return l
}

// Process models one user-level address space: an application, the Mach
// BSD server, the X display server, or the Mach default pager.
type Process struct {
	Name string
	ASID uint8

	Text  Region // program text
	Data  Region // heap / working set
	Buf   Region // I/O staging buffers (read targets, frame buffers)
	Stack uint32 // initial stack pointer

	// Emul is the Mach emulation library mapping (zero for others).
	Emul Region

	// hot/cold code split: HotLoop is the innermost compute kernel,
	// walked repeatedly; the rest of Text is colder code.
	HotLoop Region

	// bufCursor implements streaming through Buf page by page.
	bufCursor uint32
}

// newProcess lays out a process with the given footprints.
func newProcess(name string, asid uint8, textBytes, hotBytes, dataBytes, bufBytes uint32) *Process {
	p := &Process{
		Name:  name,
		ASID:  asid,
		Text:  Region{Base: vm.UserTextBase, Size: textBytes},
		Data:  Region{Base: vm.UserDataBase, Size: dataBytes},
		Buf:   Region{Base: vm.UserDataBase + 0x04000000, Size: bufBytes},
		Stack: vm.UserStackTop,
	}
	if hotBytes > textBytes {
		hotBytes = textBytes
	}
	p.HotLoop = Region{Base: p.Text.Base, Size: hotBytes}
	return p
}

// NextBufPage advances the streaming buffer cursor by n bytes and
// returns the starting address, wrapping at the end of the region. It
// models sequential I/O: each call touches fresh pages until the region
// recycles, the access pattern behind both IOzone's file streaming and
// video_play's uncompressed frames.
func (p *Process) NextBufPage(n uint32) uint32 {
	if p.Buf.Size == 0 {
		return p.Buf.Base
	}
	if p.bufCursor+n > p.Buf.Size {
		p.bufCursor = 0
	}
	addr := p.Buf.Base + p.bufCursor
	p.bufCursor += n
	return addr
}

// PeekBufPage returns the address NextBufPage would return for n bytes,
// without advancing the cursor. Producers write a payload here and the
// consuming service call then claims the same bytes with NextBufPage.
func (p *Process) PeekBufPage(n uint32) uint32 {
	if p.Buf.Size == 0 {
		return p.Buf.Base
	}
	if p.bufCursor+n > p.Buf.Size {
		return p.Buf.Base
	}
	return p.Buf.Base + p.bufCursor
}

// stackGen returns the process's stack traffic generator.
func (p *Process) stackGen() AddrGen { return StackGen{SP: p.Stack} }

// wsGen returns the process's heap working-set generator: hot fraction
// of Data absorbs most references.
func (p *Process) wsGen(hotBytes uint32) AddrGen {
	if hotBytes == 0 || hotBytes > p.Data.Size {
		hotBytes = p.Data.Size
	}
	return &WorkingSetGen{
		Base:      p.Data.Base,
		HotBytes:  hotBytes,
		ColdBytes: p.Data.Size - hotBytes,
		HotPct:    96,
	}
}

// dataMix returns the default load/store mix over stack and heap.
func (p *Process) dataMix(hotBytes uint32) DataMix {
	return DefaultMix(MixGen{A: p.stackGen(), APct: 40, B: p.wsGen(hotBytes)})
}
