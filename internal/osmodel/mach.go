package osmodel

import (
	"onchip/internal/trace"
	"onchip/internal/vm"
)

// Mach service invocation (Figure 2, right). A UNIX system call is (1)
// trapped by the kernel, (2) bounced back to the emulation library
// mapped into the task, which (3) marshals the arguments into an RPC and
// sends the message through the kernel to (4) the BSD server, which
// unpacks and performs the service; the reply travels (5) back through
// the kernel to (6) the emulation library, which (7) returns to the
// task. The paper measures the call path (1-4) at about 1000
// instructions and the return path (5-7) at about 850.
const (
	machTrapInstrs    = 30  // (1) kernel trap, emulated-syscall detection
	machBounceInstrs  = 40  // (2) redirect to the emulation library
	machMarshalInstrs = 300 // (3) emulation library: argument marshaling
	machSendInstrs    = 400 // (3->4) kernel IPC send: port lookup, copy, handoff
	machUnpackInstrs  = 200 // (4) BSD server RPC stub: unpack
	machReplyInstrs   = 250 // (5) BSD server: marshal reply, send
	machRecvInstrs    = 350 // (5->6) kernel IPC receive path back to the task
	machReturn2Instrs = 150 // (6-7) emulation library: unpack, return
	machSwitchInstrs  = 120 // scheduler handoff between address spaces
)

// MachCallPathInstrs is the modeled instruction count of the Mach
// service call path, steps (1)-(4).
const MachCallPathInstrs = machTrapInstrs + machBounceInstrs + machMarshalInstrs +
	machSendInstrs + machUnpackInstrs

// MachReturnPathInstrs is the modeled instruction count of the Mach
// return path, steps (5)-(7).
const MachReturnPathInstrs = machReplyInstrs + machRecvInstrs + machReturn2Instrs

func (s *System) machSyscall(c Call) {
	em := s.em
	app := s.app

	// (1) Trap: the kernel detects a syscall that requires emulation.
	em.SetContext(app.ASID, trace.Kernel)
	em.Seq(s.kern.trapEntry.Base, machTrapInstrs, s.kmix)
	// (2) Bounce back into the emulation library, still in the task's
	// address space but now in user mode.
	em.Seq(s.kern.dispatch.Base+2048, machBounceInstrs, s.kmix)
	em.SetContext(app.ASID, trace.User)

	// (3) The emulation library marshals arguments into a message in
	// the task's address space.
	msgBuf := app.Emul.End() - 4096
	emulMix := DataMix{LoadPct: 18, StorePct: 14,
		Gen: MixGen{A: app.stackGen(), APct: 50, B: &WorkingSetGen{Base: msgBuf, HotBytes: 1024, HotPct: 100}}}
	em.Walk(app.Emul.Base, app.Emul.Size-4096, uint32(c.Svc)*512+s.pathVariant(), machMarshalInstrs, emulMix)

	// msg_send trap: the kernel IPC path moves the message to the BSD
	// server. Only outbound payloads (writes, socket sends) travel in
	// the request; small ones are copied through a kernel message
	// buffer, large ones move out-of-line by remapping.
	em.SetContext(app.ASID, trace.Kernel)
	em.Seq(s.kern.ipcCode.Base, machSendInstrs, s.ipcMix)
	var oolWindow uint32
	if outbound(c.Svc) && c.Bytes > 0 {
		if c.Bytes <= s.oolBytes {
			em.Copy(s.kern.ipcCode.Base+4096, s.kmsgCur.next(uint32(c.Bytes)),
				app.NextBufPage(uint32(c.Bytes)), c.Bytes)
		} else {
			s.oolTransfer(app, c.Bytes)
			oolWindow = s.sharedCur.next(uint32(c.Bytes))
		}
	}
	// Handoff-schedule onto the BSD server.
	em.Seq(s.kern.schedCode.Base, machSwitchInstrs, s.kmix)
	em.SetContext(s.bsd.ASID, trace.User)

	// (4) BSD server: unpack and perform the service. Under the
	// decomposed-server restructuring, file-system services first
	// resolve through the name/authentication server -- one more RPC
	// hop through the kernel and one more address space.
	em.Walk(s.bsd.Text.Base, 32<<10, uint32(c.Svc)*1024+s.pathVariant(), machUnpackInstrs, s.host.mix)
	if s.nameServer != nil && isFSService(c.Svc) {
		s.nameServerHop(c)
	}
	s.machServiceBody(c, oolWindow)

	// (5) Reply: marshal in the server, send back through the kernel.
	em.Walk(s.bsd.Text.Base+32<<10, 32<<10, uint32(c.Svc)*1024+s.pathVariant(), machReplyInstrs, s.host.mix)
	em.SetContext(s.bsd.ASID, trace.Kernel)
	em.Seq(s.kern.ipcCode.Base+s.kern.ipcCode.Size/2, machRecvInstrs, s.ipcMix)
	em.Seq(s.kern.schedCode.Base, machSwitchInstrs, s.kmix)

	// (6-7) Emulation library unpacks the reply and returns to the
	// task; small results are copied into the task's buffer.
	em.SetContext(app.ASID, trace.User)
	em.Walk(app.Emul.Base, app.Emul.Size-4096, uint32(c.Svc)*512+16384+s.pathVariant(), machReturn2Instrs, emulMix)
	if c.Svc == SvcRead && c.Bytes > 0 && c.Bytes <= oolThreshold {
		em.Copy(app.Emul.Base+1024, app.NextBufPage(uint32(c.Bytes)),
			s.kmsgCur.next(uint32(c.Bytes)), c.Bytes)
	}
}

// machServiceBody performs the service inside the BSD server. The body
// code is the same 4.3BSD-derived logic as under Ultrix (the host
// regions point into the server's text), but it runs in user mode on
// mapped pages, and bulk data moves between the server's buffer cache
// and message buffers rather than directly to the user.
func (s *System) machServiceBody(c Call, oolWindow uint32) {
	em := s.em
	h := &s.host
	entry := uint32(c.Svc)*4096 + s.pathVariant() // per-service path + branch variant
	switch c.Svc {
	case SvcRead:
		em.Walk(h.fsCode.Base, h.fsCode.Size, entry, fsMetaInstrs, h.mix)
		if c.Bytes > s.oolBytes {
			// Large read: the reply moves the buffer-cache pages
			// out-of-line; the kernel does the VM bookkeeping and the
			// task faults the pages in lazily on first use.
			s.oolTransfer(s.bsd, c.Bytes)
			window := s.sharedCur.next(uint32(c.Bytes))
			s.clientTouch(s.app, window, c.Bytes)
		} else if c.Bytes > 0 {
			em.Copy(h.fsCode.Base+1024, s.kmsgCur.next(uint32(c.Bytes)),
				h.cachePage(uint32(c.Bytes)), c.Bytes)
		}
	case SvcWrite:
		em.Walk(h.fsCode.Base, h.fsCode.Size, entry, fsMetaInstrs, h.mix)
		src := s.kmsgCur.next(uint32(c.Bytes))
		if c.Bytes > s.oolBytes {
			src = oolWindow
		}
		em.Copy(h.fsCode.Base+2048, h.cachePage(uint32(c.Bytes)), src, c.Bytes)
	case SvcSockSend:
		// Socket traffic to the X server: protocol processing in the
		// server, delivery into the X server's receive buffer via a
		// second IPC hop.
		em.Walk(h.sockCode.Base, h.sockCode.Size, entry, sockInstrs(c.Bytes), h.mix)
		src := s.kmsgCur.next(uint32(c.Bytes))
		if c.Bytes > s.oolBytes {
			src = oolWindow
		}
		em.Copy(h.sockCode.Base+1024, s.xbufCur.next(uint32(c.Bytes)), src, c.Bytes)
		em.SetContext(s.bsd.ASID, trace.Kernel)
		em.Seq(s.kern.ipcCode.Base, machSendInstrs/2, s.ipcMix)
		em.SetContext(s.bsd.ASID, trace.User)
	case SvcSockRecv:
		em.Walk(h.sockCode.Base, h.sockCode.Size, entry, sockInstrs(c.Bytes), h.mix)
		em.Copy(h.sockCode.Base+2048, s.kmsgCur.next(uint32(c.Bytes)),
			s.bsd.NextBufPage(uint32(c.Bytes)), c.Bytes)
	case SvcStat:
		em.Walk(h.fsCode.Base, h.fsCode.Size, entry, statInstrs, h.mix)
	case SvcOpenClose:
		em.Walk(h.fsCode.Base, h.fsCode.Size, entry, openCloseInstrs, h.mix)
	case SvcIoctl:
		em.Walk(h.sockCode.Base, h.sockCode.Size, entry, ioctlInstrs, h.mix)
	case SvcBrk:
		// VM calls go to the Mach kernel directly.
		s.vmGrow(s.app, brkInstrs, 2)
	case SvcExec:
		s.exec(s.app)
	case SvcSelect:
		em.Walk(h.sockCode.Base, h.sockCode.Size, entry, selectInstrs, h.mix)
	}
}

// isFSService reports whether the service consults the file name space.
func isFSService(svc Service) bool {
	switch svc {
	case SvcRead, SvcWrite, SvcStat, SvcOpenClose, SvcExec:
		return true
	}
	return false
}

// nameServerHop models the extra RPC from the BSD server to the
// small-granularity name server: a short kernel IPC round trip plus a
// lookup in the name server's own mapped address space.
func (s *System) nameServerHop(c Call) {
	em := s.em
	em.SetContext(s.bsd.ASID, trace.Kernel)
	em.Seq(s.kern.ipcCode.Base, machSendInstrs/2, s.ipcMix)
	em.Seq(s.kern.schedCode.Base, machSwitchInstrs, s.kmix)
	em.SetContext(s.nameServer.ASID, trace.User)
	em.Walk(s.nameServer.Text.Base, s.nameServer.Text.Size,
		uint32(c.Svc)*2048+s.pathVariant(), 400, s.nameServer.dataMix(4<<10))
	em.SetContext(s.nameServer.ASID, trace.Kernel)
	em.Seq(s.kern.ipcCode.Base+s.kern.ipcCode.Size/2, machRecvInstrs/2, s.ipcMix)
	em.Seq(s.kern.schedCode.Base, machSwitchInstrs, s.kmix)
	em.SetContext(s.bsd.ASID, trace.User)
}

// oolTransfer models Mach's out-of-line data path for large messages:
// no copy, but VM bookkeeping in the kernel (mapped vm_object state in
// kseg2) and page-table updates for the receiver's new mapping. This is
// the mechanism the paper notes "is likely to shift misses from the
// I-cache to the TLB" (section 4.3).
func (s *System) oolTransfer(from *Process, bytes int) {
	em := s.em
	vmMix := DataMix{LoadPct: 25, StorePct: 15,
		Gen: &WorkingSetGen{Base: s.kern.vmObjects.Base, HotBytes: 2 << 10,
			ColdBytes: s.kern.vmObjects.Size - 2<<10, HotPct: 92}}
	em.Seq(s.kern.vmCode.Base+8192, 350, vmMix)
	pages := (bytes + vm.PageSize - 1) / vm.PageSize
	for i := 0; i < pages; i++ {
		em.Store(pteAddrFor(from.ASID, uint32(vm.SharedMapBase+i*vm.PageSize)))
	}
}

// clientTouch has the client lazily touch freshly mapped out-of-line
// pages: one reference per page. The data was moved by remapping, not
// copying, so the client pays translation and fault costs per page
// rather than per-word copy costs -- the paper's "shift misses from the
// I-cache to the TLB".
func (s *System) clientTouch(client *Process, window uint32, bytes int) {
	em := s.em
	asid, mode := em.Context()
	em.SetContext(client.ASID, trace.User)
	pages := (bytes + vm.PageSize - 1) / vm.PageSize
	for i := 0; i < pages; i++ {
		em.IFetch(client.Emul.Base + 2048 + uint32(i%8)*4)
		em.Load(window + uint32(i*vm.PageSize))
	}
	em.SetContext(asid, mode)
}

// pteAddrFor returns the kseg2 PTE address backing addr in asid's page
// table.
func pteAddrFor(asid uint8, addr uint32) uint32 {
	return vm.PTEAddr(asid, vm.VPN(addr))
}
