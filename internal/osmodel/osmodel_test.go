package osmodel

import (
	"testing"

	"onchip/internal/trace"
	"onchip/internal/vm"
)

// testSpec is a small workload used throughout the package tests.
func testSpec() WorkloadSpec {
	return WorkloadSpec{
		Name:          "test",
		Seed:          42,
		ComputeInstrs: 2000,
		TextBytes:     64 << 10,
		HotLoopBytes:  2 << 10,
		ColdCodePct:   5,
		DataBytes:     128 << 10,
		HotDataBytes:  4 << 10,
		BufBytes:      64 << 10,
		Calls: []CallMix{
			{Call: Call{Svc: SvcRead, Bytes: 2048}, Weight: 3},
			{Call: Call{Svc: SvcWrite, Bytes: 2048}, Weight: 2},
			{Call: Call{Svc: SvcStat}, Weight: 1},
		},
		FrameBytes:    4096,
		CallsPerFrame: 4,
		OtherCPI:      0.1,
		FullRunInstrs: 1e8,
	}
}

func TestSpecValidate(t *testing.T) {
	good := testSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []func(*WorkloadSpec){
		func(w *WorkloadSpec) { w.ComputeInstrs = 0 },
		func(w *WorkloadSpec) { w.HotLoopBytes = 0 },
		func(w *WorkloadSpec) { w.HotLoopBytes = w.TextBytes + 1 },
		func(w *WorkloadSpec) { w.DataBytes = 0 },
		func(w *WorkloadSpec) { w.Calls = nil },
		func(w *WorkloadSpec) { w.CallsPerFrame = 0 },
	}
	for i, mutate := range bad {
		w := testSpec()
		mutate(&w)
		if err := w.Validate(); err == nil {
			t.Errorf("mutation %d: invalid spec accepted", i)
		}
	}
}

func TestGenerateProducesRequestedVolume(t *testing.T) {
	for _, v := range []Variant{Ultrix, Mach} {
		var c trace.Counter
		sys := NewSystem(v, testSpec())
		n := sys.Generate(100_000, &c)
		if n < 100_000 {
			t.Errorf("%v: generated %d refs, want >= 100000", v, n)
		}
		if uint64(n) != c.Total {
			t.Errorf("%v: reported %d, sink saw %d", v, n, c.Total)
		}
		if c.Instructions() == 0 || c.ByKind[trace.Load] == 0 || c.ByKind[trace.Store] == 0 {
			t.Errorf("%v: stream missing a reference kind: %+v", v, c.ByKind)
		}
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	run := func() []trace.Ref {
		var refs []trace.Ref
		NewSystem(Mach, testSpec()).Generate(20_000, trace.SinkFunc(func(r trace.Ref) {
			refs = append(refs, r)
		}))
		return refs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("ref %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGenerateContinuesAcrossCalls(t *testing.T) {
	sys := NewSystem(Ultrix, testSpec())
	var all []trace.Ref
	sink := trace.SinkFunc(func(r trace.Ref) { all = append(all, r) })
	sys.Generate(10_000, sink)
	first := len(all)
	sys.Generate(10_000, sink)
	if len(all) <= first {
		t.Error("second Generate produced nothing")
	}
}

// The structural difference between the systems: Mach streams must
// include user-level BSD server activity and a distinct emulation
// library region; Ultrix streams must not.
func TestMachUsesServerAndEmulator(t *testing.T) {
	seenBSD := false
	seenEmul := false
	NewSystem(Mach, testSpec()).Generate(200_000, trace.SinkFunc(func(r trace.Ref) {
		if r.ASID == asidBSD && r.Mode == trace.User {
			seenBSD = true
		}
		if r.Addr >= vm.EmulatorBase && r.Addr < vm.EmulatorBase+0x10000 {
			seenEmul = true
		}
	}))
	if !seenBSD {
		t.Error("Mach stream has no BSD server references")
	}
	if !seenEmul {
		t.Error("Mach stream has no emulation library references")
	}

	NewSystem(Ultrix, testSpec()).Generate(200_000, trace.SinkFunc(func(r trace.Ref) {
		if r.ASID == asidBSD && r.Mode == trace.User {
			t.Fatal("Ultrix stream contains BSD server references")
		}
	}))
}

// Mach's invocation path must be an order of magnitude longer than
// Ultrix's (the paper: <100 versus ~1000 + ~850 instructions).
func TestInvocationPathLengths(t *testing.T) {
	if UltrixInvocationInstrs >= 100 {
		t.Errorf("Ultrix invocation = %d instructions, paper says < 100", UltrixInvocationInstrs)
	}
	if MachCallPathInstrs < 800 || MachCallPathInstrs > 1200 {
		t.Errorf("Mach call path = %d instructions, paper says ~1000", MachCallPathInstrs)
	}
	if MachReturnPathInstrs < 650 || MachReturnPathInstrs > 1050 {
		t.Errorf("Mach return path = %d instructions, paper says ~850", MachReturnPathInstrs)
	}
}

// Per-call kernel+server overhead measured from the generated streams:
// Mach must execute far more non-application instructions per OS call.
func TestMachOverheadPerCall(t *testing.T) {
	measure := func(v Variant) float64 {
		sys := NewSystem(v, testSpec())
		g := sys.Run(300_000, trace.Discard)
		os := g.Instrs - g.AppInstrs
		return float64(os) / float64(g.Calls)
	}
	// The shared 4.3BSD service bodies dominate both systems' per-call
	// OS work; Mach's RPC machinery adds roughly the ~1850-instruction
	// invocation paths on top.
	ult, mach := measure(Ultrix), measure(Mach)
	if mach < 1.5*ult {
		t.Errorf("OS instructions per call: Mach %.0f, Ultrix %.0f; want Mach substantially higher", mach, ult)
	}
}

func TestGenStatsPercentages(t *testing.T) {
	sys := NewSystem(Mach, testSpec())
	g := sys.Run(200_000, trace.Discard)
	sum := g.AppPct() + g.KernelPct() + g.BSDPct() + g.XPct()
	if sum < 99 || sum > 101 {
		t.Errorf("context percentages sum to %.1f, want ~100", sum)
	}
	if g.Calls == 0 || g.Frames == 0 {
		t.Errorf("stats missing activity: %+v", g)
	}
}

func TestExecRollsASID(t *testing.T) {
	spec := testSpec()
	spec.ExecEvery = 5
	sys := NewSystem(Mach, spec)
	before := sys.AppASID()
	sys.Generate(400_000, trace.Discard)
	if sys.AppASID() == before {
		t.Error("exec never changed the application ASID")
	}
}

func TestIsServerASID(t *testing.T) {
	if !IsServerASID(asidX) || !IsServerASID(asidBSD) || !IsServerASID(asidPager) {
		t.Error("server ASIDs not recognized")
	}
	if IsServerASID(asidApp) || IsServerASID(asidExec0) {
		t.Error("application ASIDs misclassified as servers")
	}
}

func TestUnknownVariantPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown variant")
		}
	}()
	NewSystem(Variant(9), testSpec())
}

func TestInvalidSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid spec")
		}
	}()
	spec := testSpec()
	spec.Calls = nil
	NewSystem(Ultrix, spec)
}

// Kernel-mode references must come from kernel segments or user space
// (copyin/copyout); user-mode instruction fetches must never target
// kernel segments.
func TestModeSegmentConsistency(t *testing.T) {
	NewSystem(Mach, testSpec()).Generate(200_000, trace.SinkFunc(func(r trace.Ref) {
		if r.Kind == trace.IFetch && r.Mode == trace.User && vm.KernelAddr(r.Addr) {
			t.Fatalf("user-mode ifetch from kernel segment: %v", r)
		}
	}))
}

func TestEmitterPrimitives(t *testing.T) {
	var refs []trace.Ref
	e := NewEmitter(trace.SinkFunc(func(r trace.Ref) { refs = append(refs, r) }), 1)
	e.SetContext(3, trace.Kernel)
	e.Seq(0x80000000, 10, DataMix{})
	if len(refs) != 10 {
		t.Fatalf("Seq emitted %d refs, want 10", len(refs))
	}
	for i, r := range refs {
		if r.Kind != trace.IFetch || r.Addr != 0x80000000+uint32(i*4) || r.ASID != 3 || r.Mode != trace.Kernel {
			t.Fatalf("ref %d = %v", i, r)
		}
	}

	refs = refs[:0]
	e.Copy(0x80001000, 0x2000, 0x1000, 64)
	// 16 words: 2 ifetches + 1 load + 1 store each.
	var c trace.Counter
	for _, r := range refs {
		c.Ref(r)
	}
	if c.ByKind[trace.IFetch] != 32 || c.ByKind[trace.Load] != 16 || c.ByKind[trace.Store] != 16 {
		t.Errorf("copy mix = %v", c.ByKind)
	}

	refs = refs[:0]
	e.Loop(0x400000, 8, 5, DataMix{})
	if len(refs) != 40 {
		t.Errorf("Loop emitted %d refs, want 40", len(refs))
	}
}

func TestWalkStaysInRegion(t *testing.T) {
	e := NewEmitter(trace.SinkFunc(func(r trace.Ref) {
		if r.Kind == trace.IFetch && (r.Addr < 0x400000 || r.Addr >= 0x400000+8192) {
			t.Fatalf("walk escaped region: %08x", r.Addr)
		}
	}), 7)
	e.Walk(0x400000, 8192, 12345, 5000, DataMix{})
}

func TestWorkingSetGenBounds(t *testing.T) {
	g := &WorkingSetGen{Base: 0x1000, HotBytes: 4096, ColdBytes: 8192, HotPct: 50}
	r := newRNG(3)
	for i := 0; i < 5000; i++ {
		a := g.Next(r, false)
		if a < 0x1000 || a >= 0x1000+4096+8192+64 {
			t.Fatalf("address %08x outside working set", a)
		}
	}
}

func TestRegionAndCursor(t *testing.T) {
	r := Region{Base: 0x1000, Size: 0x100}
	if r.End() != 0x1100 {
		t.Errorf("End = %#x", r.End())
	}
	c := cursor{reg: r}
	a := c.next(0x80)
	b := c.next(0x80)
	w := c.next(0x80) // wraps
	if a != 0x1000 || b != 0x1080 || w != 0x1000 {
		t.Errorf("cursor sequence = %#x %#x %#x", a, b, w)
	}
	var empty cursor
	if empty.next(16) != 0 {
		t.Error("empty cursor should return base 0")
	}
}

func TestProcessBufPaging(t *testing.T) {
	p := newProcess("p", 9, 4096, 1024, 8192, 8192)
	peek := p.PeekBufPage(4096)
	got := p.NextBufPage(4096)
	if peek != got {
		t.Errorf("peek %#x != next %#x", peek, got)
	}
	second := p.NextBufPage(4096)
	if second == got {
		t.Error("cursor did not advance")
	}
	wrapped := p.NextBufPage(4096)
	if wrapped != got {
		t.Errorf("cursor did not wrap: %#x, want %#x", wrapped, got)
	}
}

func TestVariantString(t *testing.T) {
	if Ultrix.String() != "Ultrix" || Mach.String() != "Mach" {
		t.Error("variant strings wrong")
	}
}

func TestServiceString(t *testing.T) {
	if SvcRead.String() != "read" || SvcExec.String() != "exec" {
		t.Error("service strings wrong")
	}
	if Service(200).String() == "" {
		t.Error("unknown service should still render")
	}
}
