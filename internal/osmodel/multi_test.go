package osmodel

import (
	"testing"

	"onchip/internal/trace"
)

func TestMultiGeneratesAllWorkloads(t *testing.T) {
	m := NewMulti(Mach, testSpec(), testSpec())
	seen := map[uint8]bool{}
	m.Generate(200_000, trace.SinkFunc(func(r trace.Ref) {
		if r.Mode == trace.User && !IsServerASID(r.ASID) {
			seen[r.ASID] = true
		}
	}))
	if !seen[multiSlots[0].app] || !seen[multiSlots[1].app] {
		t.Errorf("expected both application ASIDs in the stream, saw %v", seen)
	}
	stats := m.Stats()
	if len(stats) != 2 || stats[0].Instrs == 0 || stats[1].Instrs == 0 {
		t.Errorf("per-workload stats incomplete: %+v", stats)
	}
}

func TestMultiRoundRobinIsFair(t *testing.T) {
	m := NewMulti(Ultrix, testSpec(), testSpec())
	m.Generate(400_000, trace.Discard)
	s := m.Stats()
	a, b := float64(s[0].Refs), float64(s[1].Refs)
	if a/b > 1.3 || b/a > 1.3 {
		t.Errorf("unfair scheduling: %v vs %v refs", a, b)
	}
}

func TestMultiExecPoolsDisjoint(t *testing.T) {
	spec := testSpec()
	spec.ExecEvery = 3
	m := NewMulti(Mach, spec, spec)
	asids := map[uint8]int{} // asid -> workload slot
	m.Generate(600_000, trace.SinkFunc(func(r trace.Ref) {}))
	for i, sys := range m.systems {
		a := sys.AppASID()
		if slot, dup := asids[a]; dup {
			t.Fatalf("workloads %d and %d share ASID %d after exec", slot, i, a)
		}
		asids[a] = i
		if a != multiSlots[i].app && (a < multiSlots[i].execLo || a > multiSlots[i].execHi) {
			t.Errorf("workload %d ASID %d outside its slot", i, a)
		}
	}
}

func TestMultiLimits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero workloads")
		}
	}()
	NewMulti(Mach)
}

// Interference: a workload sharing the machine suffers more cache misses
// than running alone (measured on a small I-cache fed by the combined
// stream versus the solo stream, same per-workload volume).
func TestMultiInterference(t *testing.T) {
	countMisses := func(gen trace.Generator, refs int) (misses, instrs uint64) {
		// direct-mapped filter: 4096 lines of 16 bytes (64 KB), large
		// enough that one workload mostly fits and two do not
		var tags [4096]uint64
		gen.Generate(refs, trace.SinkFunc(func(r trace.Ref) {
			if r.Kind != trace.IFetch {
				return
			}
			instrs++
			block := uint64(r.ASID)<<32 | uint64(r.Addr>>4)
			set := block & 4095
			if tags[set] != block+1 {
				tags[set] = block + 1
				misses++
			}
		}))
		return
	}
	specA := testSpec()
	specB := testSpec()
	specB.Seed = 0xbee
	soloM, soloN := countMisses(NewSystem(Mach, specA), 200_000)
	multiM, multiN := countMisses(NewMulti(Mach, specA, specB), 400_000)
	solo := float64(soloM) / float64(soloN)
	multi := float64(multiM) / float64(multiN)
	if multi <= solo {
		t.Errorf("multiprogrammed miss ratio %.4f <= solo %.4f; interference missing", multi, solo)
	}
}

func TestMultiAPIUsesDistinctServers(t *testing.T) {
	spec := testSpec()
	m := NewMultiAPI(Mach, spec, spec)
	servers := map[uint8]bool{}
	m.Generate(300_000, trace.SinkFunc(func(r trace.Ref) {
		if r.Mode == trace.User && IsServerASID(r.ASID) && r.ASID != asidX {
			servers[r.ASID] = true
		}
	}))
	if len(servers) < 2 {
		t.Errorf("expected two API server address spaces, saw %v", servers)
	}
	// The shared-server configuration must use exactly one.
	shared := NewMulti(Mach, spec, spec)
	servers = map[uint8]bool{}
	shared.Generate(300_000, trace.SinkFunc(func(r trace.Ref) {
		if r.Mode == trace.User && IsServerASID(r.ASID) && r.ASID != asidX {
			servers[r.ASID] = true
		}
	}))
	if len(servers) != 1 {
		t.Errorf("shared configuration used %v server spaces, want 1", servers)
	}
}

func TestMultiAPIUltrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMultiAPI under Ultrix must panic")
		}
	}()
	NewMultiAPI(Ultrix, testSpec())
}
