package osmodel

import (
	"testing"

	"onchip/internal/trace"
)

// BenchmarkGenerate measures raw reference-stream generation throughput;
// the paper quotes kernel-based simulation at >6M refs/sec versus 20-150k
// for trace-driven tools, so generation must not be the bottleneck.
func BenchmarkGenerate(b *testing.B) {
	for _, v := range []Variant{Ultrix, Mach} {
		b.Run(v.String(), func(b *testing.B) {
			sys := NewSystem(v, testSpec())
			b.ResetTimer()
			sys.Generate(b.N, trace.Discard)
		})
	}
}
