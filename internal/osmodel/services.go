package osmodel

import "fmt"

// Service identifies an operating-system service used by the workloads.
// Both operating systems implement the same services with the same
// 4.3BSD-derived service bodies (the paper notes the two systems share
// service code ancestry); they differ in the invocation path.
type Service uint8

const (
	// SvcRead is a file read (IOzone, mab, mpeg_play input).
	SvcRead Service = iota
	// SvcWrite is a file write.
	SvcWrite
	// SvcSockSend sends bytes on a socket (X protocol traffic).
	SvcSockSend
	// SvcSockRecv receives from a socket (X replies/events).
	SvcSockRecv
	// SvcStat is a file-attribute lookup (mab's tree walks).
	SvcStat
	// SvcOpenClose is an open/close pair.
	SvcOpenClose
	// SvcIoctl is a small control operation.
	SvcIoctl
	// SvcBrk grows the heap (page-table updates).
	SvcBrk
	// SvcExec overlays the process with a fresh address space (mab's
	// compile phases); it recycles the ASID pool and leaves the caches
	// and TLB cold for the new image.
	SvcExec
	// SvcSelect is a descriptor wait (X clients).
	SvcSelect
	nServices
)

func (s Service) String() string {
	names := [...]string{"read", "write", "sock_send", "sock_recv", "stat",
		"open_close", "ioctl", "brk", "exec", "select"}
	if int(s) < len(names) {
		return names[s]
	}
	return fmt.Sprintf("Service(%d)", uint8(s))
}

// Call is one OS service invocation with its payload size.
type Call struct {
	Svc   Service
	Bytes int // payload moved, for data-bearing services
}

// CallMix is a weighted service mix; the workload driver draws calls
// from it.
type CallMix struct {
	Call   Call
	Weight int
}

// instruction-path budgets for the service bodies, in instructions.
// These are shared between Ultrix and Mach ("differences with respect to
// this service code are minor because both systems are derived from the
// same 4.2 BSD code", section 4.1).
const (
	fsMetaInstrs    = 500 // name lookup, inode handling per read/write
	statInstrs      = 350
	openCloseInstrs = 900
	ioctlInstrs     = 250
	brkInstrs       = 400
	execInstrs      = 2500
	selectInstrs    = 300
	sockPathInstrs  = 450 // protocol processing per send/recv
)

// outbound reports whether a service carries its payload in the request
// (client to server) rather than in the reply.
func outbound(svc Service) bool { return svc == SvcWrite || svc == SvcSockSend }

// sockInstrs scales socket protocol processing with the payload:
// checksums, mbuf chaining and X protocol handling cost instructions per
// byte on top of the fixed path.
func sockInstrs(bytes int) int { return sockPathInstrs + bytes/16 }

// oolThreshold is the payload size above which Mach IPC switches from
// in-line message copy to out-of-line virtual-memory transfer
// ("out-of-line (virtual memory) transfers for the expensive case of
// large messages", section 4.3).
const oolThreshold = 8 * 1024

// serviceHost describes where a service body runs: in the kernel
// (Ultrix) or inside the user-level BSD server (Mach). The code regions
// and buffer cache move with it; that relocation is the paper's central
// mechanism, since code and data that run unmapped and shared in Ultrix
// become mapped, per-address-space state in Mach.
type serviceHost struct {
	fsCode   Region
	sockCode Region
	bufCache Region // file buffer cache pages
	mix      DataMix
	// cursor streams through the buffer cache for sequential I/O.
	cursor uint32
}

// cachePage returns the next n bytes of buffer-cache source data,
// streaming sequentially and wrapping.
func (h *serviceHost) cachePage(n uint32) uint32 {
	if h.bufCache.Size == 0 {
		return h.bufCache.Base
	}
	if h.cursor+n > h.bufCache.Size {
		h.cursor = 0
	}
	a := h.bufCache.Base + h.cursor
	h.cursor += n
	return a
}
