package osmodel

import (
	"onchip/internal/trace"
)

// rng is a small xorshift64* generator. The emitter draws a random
// number per emitted instruction, so this must be cheap and, unlike
// math/rand, allocation-free and trivially seedable per run.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// chance returns true with probability pct/100.
func (r *rng) chance(pct int) bool {
	return r.intn(100) < pct
}

// AddrGen produces data addresses for the reference mix of a code
// sequence.
type AddrGen interface {
	Next(r *rng, store bool) uint32
}

// StackGen models stack traffic: accesses within a small window below
// the stack pointer.
type StackGen struct {
	SP uint32
}

// Next implements AddrGen.
func (g StackGen) Next(r *rng, store bool) uint32 {
	return g.SP - uint32(r.intn(64))*4
}

// WorkingSetGen models heap traffic with both temporal and spatial
// locality: a hot subset absorbs most references, the remainder spread
// over a cold region, and consecutive references walk short sequential
// runs (array traversals) rather than independent random words -- the
// spatial locality that makes multi-word cache lines effective for data.
type WorkingSetGen struct {
	Base      uint32
	HotBytes  uint32
	ColdBytes uint32
	HotPct    int // percentage of references that go to the hot subset

	pos uint32 // current run position
	run int    // words left in the current sequential run
}

// Next implements AddrGen.
func (g *WorkingSetGen) Next(r *rng, store bool) uint32 {
	if g.run > 0 {
		g.run--
		g.pos += 4
		return g.pos
	}
	g.run = 3 + r.intn(10) // runs of 4-13 words
	if g.ColdBytes == 0 || r.chance(g.HotPct) {
		g.pos = g.Base + uint32(r.intn(int(g.HotBytes)))&^3
	} else {
		g.pos = g.Base + g.HotBytes + uint32(r.intn(int(g.ColdBytes)))&^3
	}
	return g.pos
}

// MixGen splits references between two generators.
type MixGen struct {
	A, B AddrGen
	APct int // percentage routed to A
}

// Next implements AddrGen.
func (g MixGen) Next(r *rng, store bool) uint32 {
	if r.chance(g.APct) {
		return g.A.Next(r, store)
	}
	return g.B.Next(r, store)
}

// DataMix describes how many data references a stretch of code issues:
// LoadPct/StorePct are per-instruction percentages (MIPS integer code
// averages roughly 20% loads, 10% stores).
type DataMix struct {
	LoadPct  int
	StorePct int
	Gen      AddrGen
}

// DefaultMix is the generic instruction mix used for OS and application
// code when nothing more specific applies.
func DefaultMix(gen AddrGen) DataMix {
	return DataMix{LoadPct: 20, StorePct: 10, Gen: gen}
}

// emitBatch is the emitter's internal buffer size for batch-capable
// sinks: large enough to amortize the per-batch dispatch and the sweep
// engine's fan-out, small enough to stay cache-resident (1024 refs =
// 8 KB).
const emitBatch = 1024

// Emitter turns code-walk primitives into a reference stream. It tracks
// the current address-space identifier and privilege mode, and counts
// references so the driver can stop at a target length.
//
// When the sink implements trace.BatchSink, references are buffered and
// delivered in batches of emitBatch (plus a flush at the end of each
// Run slice), amortizing interface dispatch; the sequence each sink
// observes is identical to the unbatched path.
type Emitter struct {
	sink  trace.Sink
	batch trace.BatchSink // non-nil iff sink implements BatchSink
	buf   []trace.Ref
	rng   *rng

	asid uint8
	mode trace.Mode

	emitted uint64
	instrs  uint64
	// perASIDInstrs records where execution time goes, for the
	// user/kernel/server time-split calibration (Section 4 of the
	// paper: mpeg_play spends 40% in the task, 25% kernel, 30% BSD
	// server, 5% X server).
	perASIDInstrs map[uint8]uint64
	kernelInstrs  uint64
}

// NewEmitter builds an emitter over sink with a deterministic seed.
func NewEmitter(sink trace.Sink, seed uint64) *Emitter {
	e := &Emitter{rng: newRNG(seed), perASIDInstrs: make(map[uint8]uint64)}
	e.SetSink(sink)
	return e
}

// SetSink redirects the stream to a new sink, flushing any buffered
// references to the old one first so each sink sees a clean cut.
func (e *Emitter) SetSink(sink trace.Sink) {
	e.Flush()
	e.sink = sink
	if b, ok := sink.(trace.BatchSink); ok {
		e.batch = b
		if e.buf == nil {
			e.buf = make([]trace.Ref, 0, emitBatch)
		}
	} else {
		e.batch = nil
	}
}

// Flush delivers any buffered references to the sink. Generators call
// it at the end of each Run slice so the sink is complete when
// Generate returns.
func (e *Emitter) Flush() {
	if len(e.buf) > 0 {
		e.batch.Refs(e.buf)
		e.buf = e.buf[:0]
	}
}

// Emitted returns the number of references emitted so far.
func (e *Emitter) Emitted() uint64 { return e.emitted }

// Instructions returns the number of instruction fetches emitted.
func (e *Emitter) Instructions() uint64 { return e.instrs }

// InstrsByASID exposes the per-address-space instruction counts.
func (e *Emitter) InstrsByASID() map[uint8]uint64 { return e.perASIDInstrs }

// KernelInstrs returns instructions executed in kernel mode.
func (e *Emitter) KernelInstrs() uint64 { return e.kernelInstrs }

// SetContext switches the current ASID and mode (a context switch or
// privilege transition).
func (e *Emitter) SetContext(asid uint8, mode trace.Mode) {
	e.asid = asid
	e.mode = mode
}

// Context returns the current ASID and mode.
func (e *Emitter) Context() (uint8, trace.Mode) { return e.asid, e.mode }

func (e *Emitter) emit(kind trace.Kind, addr uint32) {
	r := trace.Ref{Addr: addr, ASID: e.asid, Kind: kind, Mode: e.mode}
	if e.batch != nil {
		e.buf = append(e.buf, r)
		if len(e.buf) == cap(e.buf) {
			e.batch.Refs(e.buf)
			e.buf = e.buf[:0]
		}
	} else {
		e.sink.Ref(r)
	}
	e.emitted++
}

// IFetch emits one instruction fetch.
func (e *Emitter) IFetch(addr uint32) {
	e.emit(trace.IFetch, addr)
	e.instrs++
	if e.mode == trace.Kernel {
		e.kernelInstrs++
	} else {
		e.perASIDInstrs[e.asid]++
	}
}

// Load emits one data read.
func (e *Emitter) Load(addr uint32) { e.emit(trace.Load, addr) }

// Store emits one data write.
func (e *Emitter) Store(addr uint32) { e.emit(trace.Store, addr) }

// Seq walks `instrs` sequential instructions starting at base, issuing
// data references per mix. It models straight-line code: service
// invocation paths, dispatch code, handler bodies.
func (e *Emitter) Seq(base uint32, instrs int, mix DataMix) {
	pc := base
	for i := 0; i < instrs; i++ {
		e.IFetch(pc)
		pc += 4
		if mix.Gen != nil {
			p := e.rng.intn(100)
			if p < mix.LoadPct {
				e.Load(mix.Gen.Next(e.rng, false))
			} else if p < mix.LoadPct+mix.StorePct {
				e.Store(mix.Gen.Next(e.rng, true))
			}
		}
	}
}

// Loop executes a loop body of bodyInstrs instructions iters times,
// starting at base. It models hot compute kernels: the instruction
// stream revisits the same small code footprint.
func (e *Emitter) Loop(base uint32, bodyInstrs, iters int, mix DataMix) {
	for i := 0; i < iters; i++ {
		e.Seq(base, bodyInstrs, mix)
	}
}

// Copy models a word-copy loop moving n bytes from src to dst: per word,
// two loop instructions, one load and one store. This is the bcopy at
// the heart of read/write system calls, IPC message transfer, and
// frame-buffer updates.
func (e *Emitter) Copy(loopPC, dst, src uint32, n int) {
	words := (n + 3) / 4
	for w := 0; w < words; w++ {
		off := uint32(w * 4)
		body := uint32(w%4) * 8 // 8-instruction loop body, revisited
		e.IFetch(loopPC + body)
		e.Load(src + off)
		e.IFetch(loopPC + body + 4)
		e.Store(dst + off)
	}
}

// Walk models executing real code through a region of regionBytes
// starting at base: short sequential runs of 6-14 instructions separated
// by taken branches that hop forward within the neighborhood of the
// current position (calls, loop exits, error checks). Real instruction
// streams branch every 5-10 instructions, which is what limits the
// usable I-cache line size -- the paper's CPI plots turn up at 16-word
// lines because fetching beyond the next branch target wastes refill
// cycles. The offset parameter selects the entry point (callers pin it
// per service so repeated invocations re-execute the same path).
func (e *Emitter) Walk(base uint32, regionBytes uint32, offset uint32, instrs int, mix DataMix) {
	if regionBytes == 0 {
		return
	}
	pc := base + offset%regionBytes&^3
	run := 0
	for i := 0; i < instrs; i++ {
		if run == 0 {
			run = 6 + e.rng.intn(9)
			if i > 0 {
				// Taken branch: hop 1-16 lines ahead (forward-biased,
				// like fall-through-with-calls code), wrapping within
				// the region.
				pc += uint32(32 + e.rng.intn(16)*32)
			}
			for pc >= base+regionBytes {
				pc -= regionBytes
			}
		}
		run--
		e.IFetch(pc)
		pc += 4
		if pc >= base+regionBytes {
			pc = base
		}
		if mix.Gen != nil {
			p := e.rng.intn(100)
			if p < mix.LoadPct {
				e.Load(mix.Gen.Next(e.rng, false))
			} else if p < mix.LoadPct+mix.StorePct {
				e.Store(mix.Gen.Next(e.rng, true))
			}
		}
	}
}
