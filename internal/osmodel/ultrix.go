package osmodel

import "onchip/internal/trace"

// Ultrix service invocation (Figure 2, left): a single kernel trap (a)
// reaches the service code directly; the return (b) copies results back
// into the user address space and resumes on the user stack. The
// round-trip invocation overhead -- excluding the service body -- is
// under 100 instructions, matching the paper's measurement.
const (
	ultrixTrapInstrs     = 25
	ultrixDispatchInstrs = 30
	ultrixReturnInstrs   = 25
)

// UltrixInvocationInstrs is the modeled round-trip call/return overhead
// of an Ultrix system call, excluding the service body.
const UltrixInvocationInstrs = ultrixTrapInstrs + ultrixDispatchInstrs + ultrixReturnInstrs

func (s *System) ultrixSyscall(c Call) {
	em := s.em
	// (a) Trap into the kernel. Kernel code runs unmapped in kseg0.
	em.SetContext(s.app.ASID, trace.Kernel)
	em.Seq(s.kern.trapEntry.Base, ultrixTrapInstrs, s.kmix)
	em.Seq(s.kern.dispatch.Base+uint32(c.Svc)*256, ultrixDispatchInstrs, s.kmix)

	// The service body executes in the kernel with direct access to
	// the user address space (copyin/copyout touch user pages under the
	// caller's ASID).
	s.serviceBody(c, s.app)

	// (b) Return to the user task.
	em.Seq(s.kern.trapEntry.Base+s.kern.trapEntry.Size/2, ultrixReturnInstrs, s.kmix)
	em.SetContext(s.app.ASID, trace.User)
}

// serviceBody runs the 4.3BSD-derived service code. Under Ultrix it is
// called in kernel mode with the kernel's code regions and buffer cache;
// under Mach the same body runs inside the BSD server with the host
// regions pointing into the server's mapped address space (see
// NewSystem). `client` is the process whose buffers the data-bearing
// services copy into or out of.
func (s *System) serviceBody(c Call, client *Process) {
	em := s.em
	h := &s.host
	// Each service enters its handler at a fixed offset: repeated calls
	// to the same service re-execute the same code path, which a large
	// cache captures while a small on-chip cache is overrun.
	entry := uint32(c.Svc)*4096 + s.pathVariant()
	switch c.Svc {
	case SvcRead:
		em.Walk(h.fsCode.Base, h.fsCode.Size, entry, fsMetaInstrs, h.mix)
		// Copy from the buffer cache into the client's buffer.
		dst := client.NextBufPage(uint32(c.Bytes))
		em.Copy(h.fsCode.Base+1024, dst, h.cachePage(uint32(c.Bytes)), c.Bytes)
	case SvcWrite:
		em.Walk(h.fsCode.Base, h.fsCode.Size, entry, fsMetaInstrs, h.mix)
		src := client.NextBufPage(uint32(c.Bytes))
		em.Copy(h.fsCode.Base+2048, h.cachePage(uint32(c.Bytes)), src, c.Bytes)
	case SvcSockSend:
		em.Walk(h.sockCode.Base, h.sockCode.Size, entry, sockInstrs(c.Bytes), h.mix)
		src := client.NextBufPage(uint32(c.Bytes))
		// Under Ultrix the payload lands in kernel mbufs and the X
		// server picks it up from there; under Mach the socket layer
		// delivers it through IPC (handled by the Mach path before
		// this body is reached), so here it lands in the X server's
		// receive buffer.
		dst := s.xbufDst(uint32(c.Bytes))
		em.Copy(h.sockCode.Base+1024, dst, src, c.Bytes)
	case SvcSockRecv:
		em.Walk(h.sockCode.Base, h.sockCode.Size, entry, sockInstrs(c.Bytes), h.mix)
		dst := client.NextBufPage(uint32(c.Bytes))
		em.Copy(h.sockCode.Base+2048, dst, s.mbufCur.next(uint32(c.Bytes)), c.Bytes)
	case SvcStat:
		em.Walk(h.fsCode.Base, h.fsCode.Size, entry, statInstrs, h.mix)
	case SvcOpenClose:
		em.Walk(h.fsCode.Base, h.fsCode.Size, entry, openCloseInstrs, h.mix)
	case SvcIoctl:
		em.Walk(h.sockCode.Base, h.sockCode.Size, entry, ioctlInstrs, h.mix)
	case SvcBrk:
		// Heap growth: VM code plus page-table updates in kseg2.
		s.vmGrow(client, brkInstrs, 2)
	case SvcExec:
		s.exec(client)
	case SvcSelect:
		em.Walk(h.sockCode.Base, h.sockCode.Size, entry, selectInstrs, h.mix)
	}
}

// xbufDst returns where socket send payloads land: kernel mbufs under
// Ultrix (the X server reads them from there at kernel speed), the X
// server's receive buffer under Mach (delivered by IPC).
func (s *System) xbufDst(n uint32) uint32 {
	if s.variant == Ultrix {
		return s.mbufCur.next(n)
	}
	return s.xbufCur.next(n)
}

// vmGrow models VM allocation on behalf of client: fault/allocation code
// in the kernel plus stores to the client's page-table pages in kseg2.
func (s *System) vmGrow(client *Process, instrs, pages int) {
	em := s.em
	asid, mode := em.Context()
	em.SetContext(client.ASID, trace.Kernel)
	em.Seq(s.kern.vmCode.Base+uint32(s.rng.intn(int(s.kern.vmCode.Size/2)))&^3, instrs, s.kmix)
	// Touch the new pages' PTEs (kseg2 page-table stores) and the new
	// pages themselves (first touches).
	for i := 0; i < pages; i++ {
		page := client.NextBufPage(4096)
		em.Store(pteAddrFor(client.ASID, page))
		em.SetContext(client.ASID, trace.User)
		em.Store(page)
		em.SetContext(client.ASID, trace.Kernel)
	}
	em.SetContext(asid, mode)
}

// exec overlays the client with a fresh address space: the paper's mab
// workload does this constantly through its compile phases. The new
// image gets a fresh ASID, which leaves TLB and cache contents of the
// old image behind as dead entries.
func (s *System) exec(client *Process) {
	em := s.em
	em.Seq(s.kern.procCode.Base, execInstrs/2, s.kmix)
	s.vmGrow(client, execInstrs/2, 4)
	asid := s.nextExecASID
	s.nextExecASID++
	if s.nextExecASID > s.execHi {
		s.nextExecASID = s.execLo
	}
	client.ASID = asid
	client.bufCursor = 0
	em.SetContext(asid, trace.Kernel)
}
