// Package workload defines the paper's benchmark suite (Table 2) as
// parameterized synthetic programs for the osmodel behavioral simulator:
// IOzone, jpeg_play, mab, mpeg_play, ousterhout and video_play. The
// parameters -- compute burst length, code and data footprints, service
// mix, display traffic -- are calibrated so that the simulated reference
// streams reproduce the measured behaviour bands of the paper (Tables 3
// and 4, Figures 3 and 7-10); see EXPERIMENTS.md for the comparison.
package workload

import (
	"fmt"
	"sort"

	"onchip/internal/osmodel"
)

const kb = 1024

// fullRun is the event-preserving full-run scale. The paper tuned
// inputs so each benchmark ran 100-200 seconds on the 16.67-MHz
// DECstation (roughly 1.2 billion instructions at CPI ~2). The synthetic
// workloads here are time-compressed about 5x -- they perform the same
// OS interactions per benchmark but with ~5x less user compute between
// them, so that a few million simulated references exercise a
// representative slice. Scaling simulated event rates by fullRun =
// 1.2G/5 therefore reproduces the *total* OS event counts (and hence
// absolute service seconds) of the real runs.
const fullRun = 250_000_000

// IOzone: sequential file I/O, writing then reading a 10-MB file.
// Dominated by large read/write system calls streaming through a
// multi-megabyte buffer; almost no user compute.
func IOzone() osmodel.WorkloadSpec {
	return osmodel.WorkloadSpec{
		Name:          "IOzone",
		Seed:          0x10b5,
		ComputeInstrs: 3500,
		TextBytes:     64 * kb,
		HotLoopBytes:  2 * kb,
		ColdCodePct:   2,
		DataBytes:     1 << 20,
		HotDataBytes:  4 * kb,
		BufBytes:      64 * kb,
		Calls: []osmodel.CallMix{
			{Call: osmodel.Call{Svc: osmodel.SvcWrite, Bytes: 4 * kb}, Weight: 5},
			{Call: osmodel.Call{Svc: osmodel.SvcRead, Bytes: 4 * kb}, Weight: 5},
			{Call: osmodel.Call{Svc: osmodel.SvcOpenClose}, Weight: 1},
		},
		OtherCPI:      0.09,
		FullRunInstrs: fullRun,
	}
}

// JPEGPlay: xloadimage displaying four JPEG images. Mostly user-level
// decode compute with a small hot kernel; light file input and modest
// display traffic.
func JPEGPlay() osmodel.WorkloadSpec {
	return osmodel.WorkloadSpec{
		Name:          "jpeg_play",
		Seed:          0x19e6,
		ComputeInstrs: 25000,
		TextBytes:     128 * kb,
		HotLoopBytes:  4 * kb,
		ColdCodePct:   1,
		DataBytes:     1 << 20,
		HotDataBytes:  4 * kb,
		BufBytes:      64 * kb,
		Calls: []osmodel.CallMix{
			{Call: osmodel.Call{Svc: osmodel.SvcRead, Bytes: 2 * kb}, Weight: 3},
			{Call: osmodel.Call{Svc: osmodel.SvcIoctl}, Weight: 1},
			{Call: osmodel.Call{Svc: osmodel.SvcSelect}, Weight: 1},
		},
		FrameBytes:    8 * kb,
		CallsPerFrame: 8,
		OtherCPI:      0.13,
		FullRunInstrs: fullRun,
	}
}

// MAB: Ousterhout's Modified Andrew Benchmark -- directory tree
// operations, file copies and compile phases. Heavy stat/open traffic,
// a large cold code footprint (the compiler), and exec()s that roll the
// address space over.
func MAB() osmodel.WorkloadSpec {
	return osmodel.WorkloadSpec{
		Name:          "mab",
		Seed:          0x3ab,
		ComputeInstrs: 4000,
		TextBytes:     512 * kb,
		HotLoopBytes:  4 * kb,
		ColdCodePct:   3,
		DataBytes:     1 << 20,
		HotDataBytes:  4 * kb,
		BufBytes:      64 * kb,
		Calls: []osmodel.CallMix{
			{Call: osmodel.Call{Svc: osmodel.SvcStat}, Weight: 6},
			{Call: osmodel.Call{Svc: osmodel.SvcOpenClose}, Weight: 4},
			{Call: osmodel.Call{Svc: osmodel.SvcRead, Bytes: 2 * kb}, Weight: 5},
			{Call: osmodel.Call{Svc: osmodel.SvcWrite, Bytes: 4 * kb}, Weight: 4},
			{Call: osmodel.Call{Svc: osmodel.SvcBrk}, Weight: 2},
		},
		ExecEvery:     300,
		OtherCPI:      0.05,
		FullRunInstrs: fullRun,
	}
}

// MPEGPlay: Berkeley mpeg_play decoding and displaying 610 frames.
// Decode compute (DCT kernels) interleaved with compressed-stream reads
// and decoded-frame pushes to the X server.
func MPEGPlay() osmodel.WorkloadSpec {
	return osmodel.WorkloadSpec{
		Name:          "mpeg_play",
		Seed:          0x9e6,
		ComputeInstrs: 14000,
		TextBytes:     256 * kb,
		HotLoopBytes:  8 * kb,
		ColdCodePct:   2,
		DataBytes:     1 << 20,
		HotDataBytes:  4 * kb,
		BufBytes:      64 * kb,
		Calls: []osmodel.CallMix{
			{Call: osmodel.Call{Svc: osmodel.SvcRead, Bytes: 2 * kb}, Weight: 3},
			{Call: osmodel.Call{Svc: osmodel.SvcSelect}, Weight: 1},
		},
		FrameBytes:    8 * kb,
		CallsPerFrame: 2,
		OtherCPI:      0.16,
		FullRunInstrs: fullRun,
	}
}

// Ousterhout: the OS benchmark suite -- very high system-call rates,
// almost no compute between calls, and large kernel data movement.
func Ousterhout() osmodel.WorkloadSpec {
	return osmodel.WorkloadSpec{
		Name:          "ousterhout",
		Seed:          0x0057,
		ComputeInstrs: 1500,
		TextBytes:     64 * kb,
		HotLoopBytes:  2 * kb,
		ColdCodePct:   2,
		DataBytes:     4 << 20,
		HotDataBytes:  4 * kb,
		BufBytes:      64 * kb,
		Calls: []osmodel.CallMix{
			{Call: osmodel.Call{Svc: osmodel.SvcRead, Bytes: 2 * kb}, Weight: 4},
			{Call: osmodel.Call{Svc: osmodel.SvcWrite, Bytes: 2 * kb}, Weight: 4},
			{Call: osmodel.Call{Svc: osmodel.SvcOpenClose}, Weight: 2},
			{Call: osmodel.Call{Svc: osmodel.SvcStat}, Weight: 2},
			{Call: osmodel.Call{Svc: osmodel.SvcSelect}, Weight: 1},
			{Call: osmodel.Call{Svc: osmodel.SvcBrk}, Weight: 1},
		},
		OtherCPI:      0.04,
		FullRunInstrs: fullRun,
	}
}

// VideoPlay: mpeg_play modified to display 610 *uncompressed* frames --
// the paper's most memory-intensive workload: huge streaming file reads
// (out-of-line transfers under Mach) and full-size frame pushes to X.
func VideoPlay() osmodel.WorkloadSpec {
	return osmodel.WorkloadSpec{
		Name:          "video_play",
		Seed:          0x51d0,
		ComputeInstrs: 6000,
		TextBytes:     256 * kb,
		HotLoopBytes:  4 * kb,
		ColdCodePct:   6,
		DataBytes:     1 << 20,
		HotDataBytes:  4 * kb,
		BufBytes:      64 * kb,
		Calls: []osmodel.CallMix{
			{Call: osmodel.Call{Svc: osmodel.SvcRead, Bytes: 16 * kb}, Weight: 2},
			{Call: osmodel.Call{Svc: osmodel.SvcSelect}, Weight: 1},
		},
		FrameBytes:    16 * kb,
		CallsPerFrame: 1,
		OtherCPI:      0.04,
		FullRunInstrs: fullRun,
	}
}

// All returns the full suite in the paper's Table 2 order.
func All() []osmodel.WorkloadSpec {
	return []osmodel.WorkloadSpec{
		IOzone(), JPEGPlay(), MAB(), MPEGPlay(), Ousterhout(), VideoPlay(),
	}
}

// ByName returns the named workload, or an error listing valid names.
func ByName(name string) (osmodel.WorkloadSpec, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return osmodel.WorkloadSpec{}, fmt.Errorf("workload: unknown %q (have %v)", name, Names())
}

// Names returns the sorted workload names.
func Names() []string {
	var ns []string
	for _, w := range All() {
		ns = append(ns, w.Name)
	}
	sort.Strings(ns)
	return ns
}
