package workload

import (
	"testing"

	"onchip/internal/osmodel"
	"onchip/internal/trace"
)

func TestAllSpecsValidate(t *testing.T) {
	specs := All()
	if len(specs) != 6 {
		t.Fatalf("suite has %d workloads, want 6 (Table 2)", len(specs))
	}
	for _, w := range specs {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if w.FullRunInstrs == 0 {
			t.Errorf("%s: missing full-run scale", w.Name)
		}
		if w.Seed == 0 {
			t.Errorf("%s: missing deterministic seed", w.Name)
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("mpeg_play")
	if err != nil || w.Name != "mpeg_play" {
		t.Errorf("ByName(mpeg_play) = %v, %v", w.Name, err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	ns := Names()
	want := []string{"IOzone", "jpeg_play", "mab", "mpeg_play", "ousterhout", "video_play"}
	if len(ns) != len(want) {
		t.Fatalf("Names() = %v", ns)
	}
	for i := range want {
		if ns[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, ns[i], want[i])
		}
	}
}

// Every workload must actually generate under both operating systems.
func TestSpecsGenerate(t *testing.T) {
	for _, w := range All() {
		for _, v := range []osmodel.Variant{osmodel.Ultrix, osmodel.Mach} {
			var c trace.Counter
			osmodel.NewSystem(v, w).Generate(30_000, &c)
			if c.Total < 30_000 {
				t.Errorf("%s under %v generated only %d refs", w.Name, v, c.Total)
			}
		}
	}
}

// Character checks tying the specs to the paper's workload descriptions.
func TestWorkloadCharacter(t *testing.T) {
	run := func(spec osmodel.WorkloadSpec) osmodel.GenStats {
		return osmodel.NewSystem(osmodel.Ultrix, spec).Run(200_000, trace.Discard)
	}
	// ousterhout is the syscall-rate extreme; jpeg_play the compute
	// extreme.
	oust := run(Ousterhout())
	jpeg := run(JPEGPlay())
	oustRate := float64(oust.Calls) / float64(oust.Instrs)
	jpegRate := float64(jpeg.Calls) / float64(jpeg.Instrs)
	if oustRate < 5*jpegRate {
		t.Errorf("ousterhout call rate %.2g should dwarf jpeg_play's %.2g", oustRate, jpegRate)
	}
	// The video workloads push frames; IOzone does not.
	if run(VideoPlay()).Frames == 0 {
		t.Error("video_play generated no display frames")
	}
	if run(IOzone()).Frames != 0 {
		t.Error("IOzone should not touch the display")
	}
	// mab execs.
	if MAB().ExecEvery == 0 {
		t.Error("mab must roll address spaces via exec")
	}
}

// video_play's large reads must cross Mach's out-of-line threshold;
// mpeg_play's must not (it reads a compressed stream).
func TestPayloadRegimes(t *testing.T) {
	maxBytes := func(spec osmodel.WorkloadSpec) int {
		m := 0
		for _, c := range spec.Calls {
			if c.Call.Bytes > m {
				m = c.Call.Bytes
			}
		}
		return m
	}
	if maxBytes(VideoPlay()) <= 8*1024 {
		t.Error("video_play reads must exceed the 8-KB out-of-line threshold")
	}
	if maxBytes(MPEGPlay()) > 8*1024 {
		t.Error("mpeg_play reads should stay in-line (compressed stream)")
	}
}
