package telemetry

import "strings"

// IsWallClock reports whether a metric name measures wall-clock time
// and is therefore expected to differ between otherwise identical runs.
// The obs run-file comparator and the tsdb trend gate both exclude
// these names from determinism checks; keeping the predicate here means
// the two gates can never drift apart.
//
// Two families qualify: any name containing "_seconds" (the
// sweep.stage_seconds.* stage timers and friends) and every span-fold
// metric published under the "span." prefix by the spans tracer, whose
// histogram names end in "_us" rather than "_seconds".
func IsWallClock(name string) bool {
	return strings.Contains(name, "_seconds") || strings.HasPrefix(name, "span.")
}

// IsSearchStrategy reports whether a metric name describes the search
// strategy's execution arrangement rather than its result: the pruned
// engine's frontier and branch-and-bound accounting (search.pruned_*,
// search.bound_*). These counts are deterministic for a given strategy
// but legitimately differ between a pruned and an exhaustive run of the
// SAME experiment -- whose rankings are byte-identical -- so the
// determinism gates exclude them alongside the wall-clock family.
func IsSearchStrategy(name string) bool {
	return strings.HasPrefix(name, "search.pruned_") || strings.HasPrefix(name, "search.bound_")
}
