package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"onchip/internal/report"
)

// Manifest identifies a run: which command produced the metrics, with
// what arguments, when, on which toolchain. It is the first line of a
// JSONL metrics dump so a file is self-describing.
type Manifest struct {
	Command   string            `json:"command"`
	Args      []string          `json:"args,omitempty"`
	Start     string            `json:"start,omitempty"` // RFC 3339
	GoVersion string            `json:"go_version,omitempty"`
	Labels    map[string]string `json:"labels,omitempty"`
}

// WriteJSONL emits the manifest (when non-nil) followed by one metric
// per line, each a standalone JSON object. Every line carries a "type"
// field: "manifest" for the header line, then the metric's own type
// ("counter", "gauge" or "histogram"). Metrics should come from
// Registry.Snapshot and are emitted in the given (sorted) order.
func WriteJSONL(w io.Writer, m *Manifest, metrics []Metric) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if m != nil {
		raw, err := json.Marshal(m)
		if err != nil {
			return err
		}
		line := []byte(`{"type":"manifest"}`)
		if len(raw) > 2 {
			line = append(append([]byte(`{"type":"manifest",`), raw[1:len(raw)-1]...), '}')
		}
		if err := enc.Encode(json.RawMessage(line)); err != nil {
			return err
		}
	}
	for i := range metrics {
		if err := enc.Encode(metrics[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// MetricsTable renders a metric snapshot as an aligned plain-text table
// via the repo's standard renderer, for the human-readable end of the
// sink pair.
func MetricsTable(title string, metrics []Metric) string {
	t := report.NewTable(title, "Metric", "Type", "Value", "Detail")
	for _, m := range metrics {
		detail := ""
		switch m.Type {
		case "gauge":
			detail = fmt.Sprintf("max %g", m.Max)
		case "histogram":
			detail = fmt.Sprintf("n=%d mean=%.1f", m.Count, m.Value)
		}
		value := fmt.Sprintf("%g", m.Value)
		if m.Type == "histogram" {
			value = fmt.Sprintf("%d", m.Sum)
		}
		t.Row(m.Name, m.Type, value, detail)
	}
	return t.String()
}
