package telemetry

import "testing"

func TestIsWallClock(t *testing.T) {
	for name, want := range map[string]bool{
		"sweep.stage_seconds.model": true,
		"span.checkpoint.write_us":  true,
		"sweep.workloads_done":      false,
		"search.configs_priced":     false,
	} {
		if got := IsWallClock(name); got != want {
			t.Errorf("IsWallClock(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestIsSearchStrategy(t *testing.T) {
	for name, want := range map[string]bool{
		"search.pruned_total_triples":    true,
		"search.pruned_frontier_triples": true,
		"search.bound_cpi_triples":       true,
		"search.bound_budget_triples":    true,
		// Result metrics stay under the determinism gates.
		"search.configs_priced":      false,
		"search.configs_kept":        false,
		"search.checkpoints_written": false,
		"sweep.references":           false,
	} {
		if got := IsSearchStrategy(name); got != want {
			t.Errorf("IsSearchStrategy(%q) = %v, want %v", name, got, want)
		}
	}
}
