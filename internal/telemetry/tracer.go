package telemetry

import (
	"bufio"
	"fmt"
	"io"
)

// Event is one machine-level occurrence: a reference that was charged
// stall cycles to a component. The numeric Kind and Comp codes belong to
// the producer (package machine); the producer supplies name functions
// when dumping.
type Event struct {
	Seq    uint64 // position in the whole run, 0-based
	Kind   uint8  // reference kind (trace.Kind)
	Addr   uint32 // virtual address of the reference
	ASID   uint8  // address space
	Comp   uint8  // component charged
	Cycles uint32 // stall cycles charged
}

// Probe receives fine-grained events from instrumented code. *Tracer
// implements it; Nop is the no-op default for call sites that want an
// always-valid interface value instead of a nil check.
type Probe interface {
	Event(Event)
}

// Nop is the no-op Probe.
type Nop struct{}

// Event implements Probe by discarding the event.
func (Nop) Event(Event) {}

// Tracer is a bounded event ring: it keeps the most recent events,
// mirroring the paper's Monster setup, whose logic analyzer captured a
// 128K-entry window of machine transactions at the CPU pins for
// post-mortem inspection. The nil *Tracer is a valid no-op instrument.
// Not safe for concurrent recorders.
type Tracer struct {
	buf []Event
	n   uint64 // events ever recorded
}

// DefaultTracerDepth matches Monster's 128K-entry logic-analyzer buffer.
const DefaultTracerDepth = 128 << 10

// NewTracer returns a ring holding the last depth events; depth <= 0
// selects DefaultTracerDepth.
func NewTracer(depth int) *Tracer {
	if depth <= 0 {
		depth = DefaultTracerDepth
	}
	return &Tracer{buf: make([]Event, 0, depth)}
}

// Record appends an event, evicting the oldest once the ring is full.
func (t *Tracer) Record(ev Event) {
	if t == nil {
		return
	}
	ev.Seq = t.n
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.n%uint64(cap(t.buf))] = ev
	}
	t.n++
}

// Event implements Probe.
func (t *Tracer) Event(ev Event) { t.Record(ev) }

// Total returns the number of events ever recorded (including evicted
// ones).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.n
}

// Len returns the number of events currently held.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Events returns the captured window, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil || len(t.buf) == 0 {
		return nil
	}
	out := make([]Event, 0, len(t.buf))
	if len(t.buf) < cap(t.buf) {
		return append(out, t.buf...)
	}
	head := int(t.n % uint64(cap(t.buf))) // oldest entry
	out = append(out, t.buf[head:]...)
	return append(out, t.buf[:head]...)
}

// WriteJSONL dumps the captured window as JSONL, one event per line,
// oldest first. kindName and compName translate the producer's numeric
// codes; nil funcs emit the raw numbers.
func (t *Tracer) WriteJSONL(w io.Writer, kindName, compName func(uint8) string) error {
	bw := bufio.NewWriter(w)
	for _, ev := range t.Events() {
		kind, comp := fmt.Sprintf("%d", ev.Kind), fmt.Sprintf("%d", ev.Comp)
		if kindName != nil {
			kind = kindName(ev.Kind)
		}
		if compName != nil {
			comp = compName(ev.Comp)
		}
		// Hand-rolled for speed and stable field order; values are
		// numbers and name-function strings (no escaping needed for the
		// producers in this repo).
		if _, err := fmt.Fprintf(bw, `{"type":"event","seq":%d,"kind":%q,"addr":"0x%08x","asid":%d,"comp":%q,"cycles":%d}`+"\n",
			ev.Seq, kind, ev.Addr, ev.ASID, comp, ev.Cycles); err != nil {
			return err
		}
	}
	return bw.Flush()
}
