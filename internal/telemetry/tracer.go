package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// Event is one machine-level occurrence: a reference that was charged
// stall cycles to a component. The numeric Kind and Comp codes belong to
// the producer (package machine); the producer supplies name functions
// when dumping.
type Event struct {
	Seq    uint64 // position in the whole run, 0-based
	Kind   uint8  // reference kind (trace.Kind)
	Addr   uint32 // virtual address of the reference
	ASID   uint8  // address space
	Comp   uint8  // component charged
	Cycles uint32 // stall cycles charged
}

// AppendJSON appends the event as a single JSON object (no trailing
// newline) to dst and returns the extended slice. kindName and compName
// translate the producer's numeric codes; nil funcs emit the raw
// numbers. Hand-rolled for speed and stable field order; values are
// numbers and name-function strings (no escaping needed for the
// producers in this repo).
func (ev Event) AppendJSON(dst []byte, kindName, compName func(uint8) string) []byte {
	kind, comp := strconv.Itoa(int(ev.Kind)), strconv.Itoa(int(ev.Comp))
	if kindName != nil {
		kind = kindName(ev.Kind)
	}
	if compName != nil {
		comp = compName(ev.Comp)
	}
	return fmt.Appendf(dst, `{"type":"event","seq":%d,"kind":%q,"addr":"0x%08x","asid":%d,"comp":%q,"cycles":%d}`,
		ev.Seq, kind, ev.Addr, ev.ASID, comp, ev.Cycles)
}

// Probe receives fine-grained events from instrumented code. *Tracer
// implements it; Nop is the no-op default for call sites that want an
// always-valid interface value instead of a nil check.
type Probe interface {
	Event(Event)
}

// Nop is the no-op Probe.
type Nop struct{}

// Event implements Probe by discarding the event.
func (Nop) Event(Event) {}

// Tracer is a bounded event ring: it keeps the most recent events,
// mirroring the paper's Monster setup, whose logic analyzer captured a
// 128K-entry window of machine transactions at the CPU pins for
// post-mortem inspection. The nil *Tracer is a valid no-op instrument.
// Safe for one recorder plus any number of concurrent readers (the live
// observability server tails the ring while the machine fills it).
type Tracer struct {
	mu  sync.Mutex
	buf []Event
	n   uint64 // events ever recorded
}

// DefaultTracerDepth matches Monster's 128K-entry logic-analyzer buffer.
const DefaultTracerDepth = 128 << 10

// NewTracer returns a ring holding the last depth events; depth <= 0
// selects DefaultTracerDepth.
func NewTracer(depth int) *Tracer {
	if depth <= 0 {
		depth = DefaultTracerDepth
	}
	return &Tracer{buf: make([]Event, 0, depth)}
}

// Record appends an event, evicting the oldest once the ring is full.
func (t *Tracer) Record(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	ev.Seq = t.n
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.n%uint64(cap(t.buf))] = ev
	}
	t.n++
	t.mu.Unlock()
}

// Event implements Probe.
func (t *Tracer) Event(ev Event) { t.Record(ev) }

// Total returns the number of events ever recorded (including evicted
// ones).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Len returns the number of events currently held.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Events returns the captured window, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.eventsLocked()
}

func (t *Tracer) eventsLocked() []Event {
	if len(t.buf) == 0 {
		return nil
	}
	out := make([]Event, 0, len(t.buf))
	if len(t.buf) < cap(t.buf) {
		return append(out, t.buf...)
	}
	head := int(t.n % uint64(cap(t.buf))) // oldest entry
	out = append(out, t.buf[head:]...)
	return append(out, t.buf[:head]...)
}

// EventsSince returns the events with Seq >= since that are still in
// the window, oldest first, plus the sequence number to pass on the
// next call. Events that were evicted before the call are silently
// skipped (the tail resumes at the oldest survivor), so a slow reader
// loses data but never stalls the recorder.
func (t *Tracer) EventsSince(since uint64) ([]Event, uint64) {
	if t == nil {
		return nil, since
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n <= since {
		return nil, t.n
	}
	evs := t.eventsLocked()
	// evs is sorted by Seq; skip the prefix below since.
	lo := 0
	for lo < len(evs) && evs[lo].Seq < since {
		lo++
	}
	return evs[lo:], t.n
}

// WriteJSONL dumps the captured window as JSONL, one event per line,
// oldest first. kindName and compName translate the producer's numeric
// codes; nil funcs emit the raw numbers. Safe to call while a recorder
// is still appending: the dump is of a consistent point-in-time copy of
// the window.
func (t *Tracer) WriteJSONL(w io.Writer, kindName, compName func(uint8) string) error {
	bw := bufio.NewWriter(w)
	var line []byte
	for _, ev := range t.Events() {
		line = append(ev.AppendJSON(line[:0], kindName, compName), '\n')
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}
