package telemetry

import (
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"machine.stall_cycles.tlb", "machine_stall_cycles_tlb"},
		{"sweep.references", "sweep_references"},
		{"already_legal:name", "already_legal:name"},
		{"9starts.with-digit", "_starts_with_digit"}, // leading digit illegal
		{"weird chars!", "weird_chars_"},
		{"", ""},
	}
	for _, c := range cases {
		if got := PromName(c.in); got != c.want {
			t.Errorf("PromName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestWritePrometheusGolden pins the exposition format byte-for-byte:
// counter and gauge sample lines, the gauge's _max companion, and the
// histogram's cumulative buckets over the log2 upper edges with the
// +Inf terminator, _sum and _count.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("machine.cycles", "machine cycles").Add(1234)
	g := r.Gauge("sweep.depth", "")
	g.Set(7)
	g.Set(3)
	h := r.Histogram("tlb.miss_cost", "cycles per TLB miss")
	for _, v := range []uint64{0, 1, 1, 6, 7, 13, 400} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# HELP machine_cycles machine cycles
# TYPE machine_cycles counter
machine_cycles 1234
# TYPE sweep_depth gauge
sweep_depth 3
# TYPE sweep_depth_max gauge
sweep_depth_max 7
# HELP tlb_miss_cost cycles per TLB miss
# TYPE tlb_miss_cost histogram
tlb_miss_cost_bucket{le="0"} 1
tlb_miss_cost_bucket{le="1"} 3
tlb_miss_cost_bucket{le="7"} 5
tlb_miss_cost_bucket{le="15"} 6
tlb_miss_cost_bucket{le="511"} 7
tlb_miss_cost_bucket{le="+Inf"} 7
tlb_miss_cost_sum 428
tlb_miss_cost_count 7
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
