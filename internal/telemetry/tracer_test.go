package telemetry

import (
	"io"
	"sync"
	"testing"
)

// TestTracerWraparoundFullDepth pushes past the full Monster-sized
// window (128K events) and checks the ring holds exactly the newest
// DefaultTracerDepth events in order.
func TestTracerWraparoundFullDepth(t *testing.T) {
	const extra = 1000
	tr := NewTracer(0) // DefaultTracerDepth
	total := uint64(DefaultTracerDepth + extra)
	for i := uint64(0); i < total; i++ {
		tr.Record(Event{Cycles: uint32(i)})
	}
	if tr.Total() != total {
		t.Fatalf("Total = %d, want %d", tr.Total(), total)
	}
	if tr.Len() != DefaultTracerDepth {
		t.Fatalf("Len = %d, want %d", tr.Len(), DefaultTracerDepth)
	}
	evs := tr.Events()
	if len(evs) != DefaultTracerDepth {
		t.Fatalf("len(Events) = %d, want %d", len(evs), DefaultTracerDepth)
	}
	if evs[0].Seq != extra {
		t.Errorf("oldest Seq = %d, want %d (first %d evicted)", evs[0].Seq, extra, extra)
	}
	if last := evs[len(evs)-1].Seq; last != total-1 {
		t.Errorf("newest Seq = %d, want %d", last, total-1)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("gap in window at %d: %d after %d", i, evs[i].Seq, evs[i-1].Seq)
		}
	}
}

func TestTracerEventsSince(t *testing.T) {
	tr := NewTracer(4)
	evs, next := tr.EventsSince(0)
	if len(evs) != 0 || next != 0 {
		t.Fatalf("empty ring: got %d events, next %d", len(evs), next)
	}
	for i := 0; i < 10; i++ {
		tr.Record(Event{})
	}
	// Seqs 0..5 evicted; a reader asking from 0 resumes at the oldest
	// survivor instead of stalling.
	evs, next = tr.EventsSince(0)
	if len(evs) != 4 || evs[0].Seq != 6 || next != 10 {
		t.Fatalf("after wrap: %d events from %d, next %d; want 4 from 6, next 10", len(evs), evs[0].Seq, next)
	}
	// Tail is caught up: nothing new.
	evs, next = tr.EventsSince(next)
	if len(evs) != 0 || next != 10 {
		t.Fatalf("caught up: got %d events, next %d", len(evs), next)
	}
	tr.Record(Event{})
	evs, next = tr.EventsSince(next)
	if len(evs) != 1 || evs[0].Seq != 10 || next != 11 {
		t.Fatalf("incremental: got %d events, next %d", len(evs), next)
	}
}

// TestConcurrentRecordAndDump exercises the full concurrent surface the
// live observability server creates -- a simulation recording events and
// observing histograms while HTTP handlers snapshot, render and tail --
// and relies on the -race run in `make check` to prove it safe.
func TestConcurrentRecordAndDump(t *testing.T) {
	tr := NewTracer(256)
	r := NewRegistry()
	man := &Manifest{Command: "test"}
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() { // the simulation: one recorder
		defer wg.Done()
		h := r.Histogram("cost", "")
		c := r.Counter("refs", "")
		for i := 0; i < 20000; i++ {
			tr.Record(Event{Cycles: uint32(i)})
			h.Observe(uint64(i % 100))
			c.Inc()
		}
		close(stop)
	}()
	for i := 0; i < 4; i++ { // the serving side: concurrent readers
		wg.Add(1)
		go func() {
			defer wg.Done()
			var since uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				var evs []Event
				evs, since = tr.EventsSince(since)
				var line []byte
				for _, ev := range evs {
					line = ev.AppendJSON(line[:0], nil, nil)
				}
				tr.WriteJSONL(io.Discard, nil, nil)
				snap := r.Snapshot()
				WriteJSONL(io.Discard, man, snap)
				WritePrometheus(io.Discard, snap)
				MetricsTable("t", snap)
			}
		}()
	}
	wg.Wait()

	if got := tr.Total(); got != 20000 {
		t.Errorf("Total = %d, want 20000", got)
	}
	snap := r.Snapshot()
	for _, m := range snap {
		switch m.Name {
		case "refs":
			if m.Value != 20000 {
				t.Errorf("refs = %g, want 20000", m.Value)
			}
		case "cost":
			if m.Count != 20000 {
				t.Errorf("cost count = %d, want 20000", m.Count)
			}
		}
	}
}
