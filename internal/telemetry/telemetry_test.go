package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "")
	r.CounterFunc("cf", "", func() uint64 { return 1 })
	c.Inc()
	c.Add(5)
	g.Set(3)
	h.Observe(7)
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || h.Count() != 0 {
		t.Error("nil instruments must stay zero")
	}
	if got := r.Snapshot(); got != nil {
		t.Errorf("nil registry Snapshot = %v, want nil", got)
	}
	var tr *Tracer
	tr.Record(Event{Cycles: 1})
	if tr.Total() != 0 || tr.Len() != 0 || tr.Events() != nil {
		t.Error("nil tracer must record nothing")
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("refs", "references")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Errorf("counter = %d, want 10", c.Value())
	}
	if c2 := r.Counter("refs", "references"); c2 != c {
		t.Error("get-or-create must return the same counter")
	}
	g := r.Gauge("depth", "")
	g.Set(4)
	g.Set(2)
	if g.Value() != 2 || g.Max() != 4 {
		t.Errorf("gauge value/max = %g/%g, want 2/4", g.Value(), g.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("cost", "")
	for _, v := range []uint64{0, 1, 1, 6, 7, 13, 400} {
		h.Observe(v)
	}
	if h.Count() != 7 || h.Sum() != 428 {
		t.Fatalf("count/sum = %d/%d, want 7/428", h.Count(), h.Sum())
	}
	want := []Bucket{
		{Lo: 0, Hi: 0, Count: 1},  // 0
		{Lo: 1, Hi: 1, Count: 2},  // 1, 1
		{Lo: 4, Hi: 7, Count: 2},  // 6, 7
		{Lo: 8, Hi: 15, Count: 1}, // 13
		{Lo: 256, Hi: 511, Count: 1},
	}
	got := h.Buckets()
	if len(got) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if q := h.Quantile(0.5); q != 7 {
		t.Errorf("p50 = %d, want 7 (bucket upper edge)", q)
	}
	if q := h.Quantile(1); q != 511 {
		t.Errorf("p100 = %d, want 511", q)
	}
}

func TestRegistryTypeClash(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("registering x as a gauge after a counter should panic")
		}
	}()
	r.Gauge("x", "")
}

func TestCounterFuncSumsAcrossOwners(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("cache.misses", "", func() uint64 { return 3 })
	r.CounterFunc("cache.misses", "", func() uint64 { return 4 })
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Value != 7 {
		t.Fatalf("snapshot = %+v, want one metric with value 7", snap)
	}
}

func TestSnapshotSortedAndConcurrentSafe(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared", "").Inc()
			}
		}()
	}
	wg.Wait()
	r.Gauge("a.gauge", "")
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Name != "a.gauge" || snap[1].Name != "shared" {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
	if snap[1].Value != 8000 {
		t.Errorf("shared counter = %g, want 8000", snap[1].Value)
	}
}

// TestSnapshotAppendReusesCapacity pins the sampler contract: passing
// the previous slice back truncated keeps its backing array, and the
// appended metrics match a fresh Snapshot.
func TestSnapshotAppendReusesCapacity(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "").Add(3)
	r.Gauge("g", "").Set(1.5)
	var nilReg *Registry
	if got := nilReg.SnapshotAppend(nil); got != nil {
		t.Errorf("nil registry SnapshotAppend = %v", got)
	}
	buf := r.SnapshotAppend(nil)
	if len(buf) != 2 || buf[0].Name != "c" || buf[1].Name != "g" {
		t.Fatalf("first append = %+v", buf)
	}
	first := &buf[0]
	r.Counter("c", "").Add(4)
	buf = r.SnapshotAppend(buf[:0])
	if len(buf) != 2 || buf[0].Value != 7 {
		t.Fatalf("second append = %+v", buf)
	}
	if &buf[0] != first {
		t.Error("SnapshotAppend reallocated despite sufficient capacity")
	}
	// Appending after existing elements sorts only the added tail.
	buf = append(buf[:0], Metric{Name: "zzz"})
	buf = r.SnapshotAppend(buf)
	if len(buf) != 3 || buf[0].Name != "zzz" || buf[1].Name != "c" || buf[2].Name != "g" {
		t.Fatalf("prefix preserved append = %+v", buf)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 7; i++ {
		tr.Record(Event{Cycles: uint32(i)})
	}
	if tr.Total() != 7 || tr.Len() != 4 {
		t.Fatalf("total/len = %d/%d, want 7/4", tr.Total(), tr.Len())
	}
	evs := tr.Events()
	for i, ev := range evs {
		if want := uint64(3 + i); ev.Seq != want || ev.Cycles != uint32(want) {
			t.Errorf("event %d = seq %d cycles %d, want %d", i, ev.Seq, ev.Cycles, want)
		}
	}
}

func TestWriteJSONLParseable(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "a counter").Add(2)
	r.Histogram("h", "").Observe(5)
	var buf bytes.Buffer
	man := &Manifest{Command: "test", Args: []string{"x"}, Labels: map[string]string{"os": "Mach"}}
	if err := WriteJSONL(&buf, man, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	wantTypes := []string{"manifest", "counter", "histogram"}
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", i, err, line)
		}
		if obj["type"] != wantTypes[i] {
			t.Errorf("line %d type = %v, want %s", i, obj["type"], wantTypes[i])
		}
	}
}

func TestTracerWriteJSONLParseable(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Event{Kind: 1, Addr: 0x1000, ASID: 2, Comp: 0, Cycles: 20})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf, func(k uint8) string { return "load" }, func(c uint8) string { return "TLB" }); err != nil {
		t.Fatal(err)
	}
	var obj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("event line not valid JSON: %v\n%s", err, buf.String())
	}
	if obj["kind"] != "load" || obj["comp"] != "TLB" || obj["cycles"] != float64(20) {
		t.Errorf("event fields wrong: %v", obj)
	}
}

func TestNopProbe(t *testing.T) {
	var p Probe = Nop{}
	p.Event(Event{}) // must not panic
	p = NewTracer(1)
	p.Event(Event{Cycles: 9})
	if p.(*Tracer).Total() != 1 {
		t.Error("tracer should implement Probe")
	}
}
