// Package telemetry is the reproduction's observability layer: typed
// counters, gauges and log2-bucketed histograms collected in a Registry,
// a bounded event ring (Tracer) that mirrors Monster's logic-analyzer
// capture window, and sinks that emit a run manifest plus final metrics
// as JSONL or a human-readable table.
//
// The package is designed so instrumented code pays ~zero cost when
// telemetry is off: every instrument is nil-safe (methods on a nil
// *Counter, *Gauge, *Histogram or *Tracer are no-ops), and a nil
// *Registry hands out nil instruments. Hot paths therefore thread probes
// unconditionally and the disabled path reduces to an inlined nil check.
//
// Instruments use atomic updates, so a single instrument may be shared
// across goroutines (the design-space sweep runs workloads concurrently,
// and the live observability server snapshots the registry while
// simulators are still observing). Histogram snapshots taken mid-run are
// per-word consistent rather than globally consistent: each bucket,
// count and sum is read atomically, but a concurrent Observe may land
// between reads. The discrepancy is at most the few in-flight
// observations and vanishes at end of run.
package telemetry

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. The nil *Counter is
// a valid no-op instrument.
type Counter struct {
	v    uint64
	name string
	help string
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	atomic.AddUint64(&c.v, n)
}

// Value returns the current count (zero for the nil instrument).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return atomic.LoadUint64(&c.v)
}

// Gauge is a last-value instrument that also tracks the maximum it has
// been set to. The nil *Gauge is a valid no-op instrument.
type Gauge struct {
	v    uint64 // float64 bits
	max  uint64 // float64 bits
	name string
	help string
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	bv := math.Float64bits(v)
	atomic.StoreUint64(&g.v, bv)
	for {
		old := atomic.LoadUint64(&g.max)
		if math.Float64frombits(old) >= v {
			return
		}
		if atomic.CompareAndSwapUint64(&g.max, old, bv) {
			return
		}
	}
}

// Add accumulates delta into the gauge (and its running maximum). It is
// what concurrent contributors use for additive quantities published as
// a gauge -- the per-stage wall-clock seconds of the sweep, summed
// across workload goroutines.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := atomic.LoadUint64(&g.v)
		v := math.Float64frombits(old) + delta
		if atomic.CompareAndSwapUint64(&g.v, old, math.Float64bits(v)) {
			for {
				om := atomic.LoadUint64(&g.max)
				if math.Float64frombits(om) >= v ||
					atomic.CompareAndSwapUint64(&g.max, om, math.Float64bits(v)) {
					return
				}
			}
		}
	}
}

// Value returns the last value set.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&g.v))
}

// Max returns the largest value ever set.
func (g *Gauge) Max() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&g.max))
}

// nHistBuckets covers bits.Len64 of any uint64: bucket i holds values v
// with bits.Len64(v) == i, i.e. bucket 0 is exactly 0, bucket i>0 is
// [2^(i-1), 2^i).
const nHistBuckets = 65

// Histogram accumulates a distribution in log2 buckets: cheap enough for
// per-miss observation, coarse enough to need no configuration. The nil
// *Histogram is a valid no-op instrument. Updates are atomic, so a
// histogram may be observed by one goroutine while another snapshots it.
type Histogram struct {
	count   uint64
	sum     uint64
	buckets [nHistBuckets]uint64
	name    string
	help    string
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	atomic.AddUint64(&h.count, 1)
	atomic.AddUint64(&h.sum, v)
	atomic.AddUint64(&h.buckets[bits.Len64(v)], 1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return atomic.LoadUint64(&h.count)
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return atomic.LoadUint64(&h.sum)
}

// Mean returns the mean observed value.
func (h *Histogram) Mean() float64 {
	count := h.Count()
	if count == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(count)
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1): the
// inclusive upper edge of the log2 bucket holding that rank.
func (h *Histogram) Quantile(q float64) uint64 {
	count := h.Count()
	if count == 0 {
		return 0
	}
	rank := uint64(q * float64(count-1))
	var seen uint64
	for i := range h.buckets {
		n := atomic.LoadUint64(&h.buckets[i])
		seen += n
		if n > 0 && seen > rank {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return 1<<63 - 1
}

// Bucket is one non-empty log2 bucket of a histogram snapshot: Count
// observations in [Lo, Hi].
type Bucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// Buckets returns the non-empty buckets in ascending order.
func (h *Histogram) Buckets() []Bucket {
	if h == nil {
		return nil
	}
	var out []Bucket
	for i := range h.buckets {
		n := atomic.LoadUint64(&h.buckets[i])
		if n == 0 {
			continue
		}
		b := Bucket{Count: n}
		if i > 0 {
			b.Lo = 1 << uint(i-1)
			b.Hi = 1<<uint(i) - 1
		}
		out = append(out, b)
	}
	return out
}

// Metric is a point-in-time snapshot of one instrument, shaped for
// encoding/json.
type Metric struct {
	Name    string   `json:"name"`
	Type    string   `json:"type"` // "counter", "gauge" or "histogram"
	Help    string   `json:"help,omitempty"`
	Value   float64  `json:"value"`
	Max     float64  `json:"max,omitempty"`     // gauges
	Count   uint64   `json:"count,omitempty"`   // histograms
	Sum     uint64   `json:"sum,omitempty"`     // histograms
	Buckets []Bucket `json:"buckets,omitempty"` // histograms
}

// Registry collects instruments by name. The nil *Registry is valid and
// hands out nil (no-op) instruments, so code can register probes
// unconditionally. Instruments are get-or-create: asking twice for the
// same name and type returns the same instrument, so repeated runs
// accumulate.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]*funcMetric
}

// funcMetric is a pull-style metric: the callbacks are evaluated at
// snapshot time and summed, so several owners (one simulator per
// workload, say) can publish under one name.
type funcMetric struct {
	typ  string
	help string
	fns  []func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter returns the counter registered under name, creating it if
// needed. A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkType(name, "counter")
	if c, ok := r.counters[name]; ok {
		return c
	}
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkType(name, "gauge")
	if g, ok := r.gauges[name]; ok {
		return g
	}
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkType(name, "histogram")
	if h, ok := r.hists[name]; ok {
		return h
	}
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	h := &Histogram{name: name, help: help}
	r.hists[name] = h
	return h
}

// CounterFunc registers a pull-style counter evaluated at snapshot time.
// Registering several functions under one name sums them, which lets
// every simulator in a sweep publish its existing Stats under one
// series. Safe to call on a nil registry.
func (r *Registry) CounterFunc(name, help string, f func() uint64) {
	r.addFunc(name, "counter", help, func() float64 { return float64(f()) })
}

// GaugeFunc registers a pull-style gauge evaluated (and summed) at
// snapshot time. Safe to call on a nil registry.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.addFunc(name, "gauge", help, f)
}

func (r *Registry) addFunc(name, typ, help string, f func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkType(name, "func "+typ)
	if r.funcs == nil {
		r.funcs = make(map[string]*funcMetric)
	}
	fm, ok := r.funcs[name]
	if !ok {
		fm = &funcMetric{typ: typ, help: help}
		r.funcs[name] = fm
	} else if fm.typ != typ {
		panic(fmt.Sprintf("telemetry: %q registered as both %s and %s", name, fm.typ, typ))
	}
	fm.fns = append(fm.fns, f)
}

// checkType panics if name is already registered with a different
// instrument kind. Callers hold r.mu.
func (r *Registry) checkType(name, typ string) {
	have := ""
	if _, ok := r.counters[name]; ok {
		have = "counter"
	} else if _, ok := r.gauges[name]; ok {
		have = "gauge"
	} else if _, ok := r.hists[name]; ok {
		have = "histogram"
	} else if fm, ok := r.funcs[name]; ok {
		have = "func " + fm.typ
	}
	if have != "" && have != typ {
		panic(fmt.Sprintf("telemetry: %q registered as both %s and %s", name, have, typ))
	}
}

// Snapshot returns all metrics sorted by name, for deterministic output.
func (r *Registry) Snapshot() []Metric {
	return r.SnapshotAppend(nil)
}

// SnapshotAppend appends all metrics, sorted by name, to dst and
// returns the extended slice. Periodic samplers (the obs series
// sampler, the tsdb write path) pass their previous slice truncated to
// zero length so a steady-state scrape allocates nothing beyond what
// the histogram bucket slices need.
func (r *Registry) SnapshotAppend(dst []Metric) []Metric {
	if r == nil {
		return dst
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	start := len(dst)
	out := dst
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Type: "counter", Help: c.help, Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Type: "gauge", Help: g.help, Value: g.Value(), Max: g.Max()})
	}
	for name, h := range r.hists {
		out = append(out, Metric{
			Name: name, Type: "histogram", Help: h.help,
			Value: h.Mean(), Count: h.Count(), Sum: h.Sum(), Buckets: h.Buckets(),
		})
	}
	for name, fm := range r.funcs {
		var sum float64
		for _, f := range fm.fns {
			sum += f()
		}
		out = append(out, Metric{Name: name, Type: fm.typ, Help: fm.help, Value: sum})
	}
	added := out[start:]
	sort.Slice(added, func(i, j int) bool { return added[i].Name < added[j].Name })
	return out
}
