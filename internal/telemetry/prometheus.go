package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// PromName sanitizes a registry metric name into the Prometheus
// exposition charset [a-zA-Z_:][a-zA-Z0-9_:]*: the dotted names used
// throughout this repo ("machine.stall_cycles.tlb") become underscore
// form ("machine_stall_cycles_tlb"), and any other illegal rune is
// likewise replaced with '_'.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		legal := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if legal {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders a metric snapshot (from Registry.Snapshot) in
// the Prometheus text exposition format, suitable for serving at
// GET /metrics. Counters and gauges emit one sample each (gauges add a
// <name>_max companion series for the running maximum); histograms emit
// cumulative <name>_bucket{le="..."} samples over the log2 bucket upper
// edges plus <name>_sum and <name>_count, mirroring the native
// histogram convention.
func WritePrometheus(w io.Writer, metrics []Metric) error {
	bw := bufio.NewWriter(w)
	for _, m := range metrics {
		name := PromName(m.Name)
		if m.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, m.Help)
		}
		switch m.Type {
		case "histogram":
			fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
			var cum uint64
			for _, b := range m.Buckets {
				cum += b.Count
				fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", name, b.Hi, cum)
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, m.Count)
			fmt.Fprintf(bw, "%s_sum %d\n", name, m.Sum)
			fmt.Fprintf(bw, "%s_count %d\n", name, m.Count)
		case "gauge":
			fmt.Fprintf(bw, "# TYPE %s gauge\n", name)
			fmt.Fprintf(bw, "%s %v\n", name, m.Value)
			fmt.Fprintf(bw, "# TYPE %s_max gauge\n", name)
			fmt.Fprintf(bw, "%s_max %v\n", name, m.Max)
		default: // "counter"
			fmt.Fprintf(bw, "# TYPE %s counter\n", name)
			fmt.Fprintf(bw, "%s %v\n", name, m.Value)
		}
	}
	return bw.Flush()
}
