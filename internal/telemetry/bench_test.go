package telemetry

import "testing"

// The nil-instrument benchmarks document the off-path cost that
// instrumented hot loops pay: an inlined nil check, fractions of a
// nanosecond per probe.

func BenchmarkCounterAddNil(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Add(uint64(i))
	}
}

func BenchmarkCounterAddLive(b *testing.B) {
	c := NewRegistry().Counter("c", "")
	for i := 0; i < b.N; i++ {
		c.Add(uint64(i))
	}
}

func BenchmarkHistogramObserveNil(b *testing.B) {
	var h *Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

func BenchmarkHistogramObserveLive(b *testing.B) {
	h := NewRegistry().Histogram("h", "")
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

func BenchmarkTracerRecordLive(b *testing.B) {
	tr := NewTracer(DefaultTracerDepth)
	for i := 0; i < b.N; i++ {
		tr.Record(Event{Kind: 1, Addr: uint32(i), Cycles: 7})
	}
}
