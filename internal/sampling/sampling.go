// Package sampling implements the trace-sampling methodology of the
// paper's Section 3, following Laha et al. (IEEE ToC 1988) and Martonosi
// et al. (SIGMETRICS 1993): instead of simulating a complete address
// trace, collect N samples of K references each at random intervals,
// estimate the miss ratio from the samples, and bound the error. The
// paper used 50 samples of 120-200 thousand references per workload and
// validated the estimator against complete traces to under 10% error;
// the package's tests repeat that validation against this repository's
// synthetic workloads.
//
// Cold-start bias is handled as in the paper: each sample's leading
// fraction primes the simulated structure and is excluded from the
// estimate, which works because on-chip caches are small relative to the
// sample length.
package sampling

import (
	"fmt"

	"onchip/internal/stats"
	"onchip/internal/trace"
)

// Plan describes a sampling schedule.
type Plan struct {
	// Samples is the number of trace windows to collect. The paper
	// used 50; Laha et al. report 35 usually suffices, Martonosi et
	// al. recommend up to 100 for low-miss-ratio workloads.
	Samples int
	// WindowRefs is the length of each sample window in references
	// (120k-200k in the paper).
	WindowRefs int
	// GapRefs is the mean number of references skipped between
	// windows; the actual gap is randomized uniformly in
	// [GapRefs/2, 3*GapRefs/2) to avoid phase-locking with periodic
	// workload behaviour.
	GapRefs int
	// WarmFrac1000 is the per-mille fraction of each window used to
	// prime the structure before counting (cold-start handling). Zero
	// selects 200 (20%).
	WarmFrac1000 int
	// Seed randomizes the gaps.
	Seed uint64
}

// DefaultPlan returns the paper's schedule: 50 samples of 160k
// references.
func DefaultPlan() Plan {
	return Plan{Samples: 50, WindowRefs: 160_000, GapRefs: 400_000, Seed: 0x5a317}
}

// Validate reports whether the plan is well-formed.
func (p Plan) Validate() error {
	if p.Samples <= 0 || p.WindowRefs <= 0 || p.GapRefs < 0 {
		return fmt.Errorf("sampling: plan %+v: counts must be positive", p)
	}
	return nil
}

func (p Plan) warmRefs() int {
	w := p.WarmFrac1000
	if w == 0 {
		w = 200
	}
	return p.WindowRefs * w / 1000
}

// Target is a simulated structure whose miss ratio is being estimated.
// The cache and TLB simulators are adapted to this interface by the
// experiment harnesses.
type Target interface {
	// Ref processes one reference.
	Ref(trace.Ref)
	// Counting toggles statistics collection (off during gaps and
	// warm-up). Implementations keep structure state across both
	// phases.
	Counting(bool)
	// SampleDone is called at the end of each sample window; the
	// return value is the window's miss-ratio estimate.
	SampleDone() float64
}

// Estimate holds the result of a sampled simulation.
type Estimate struct {
	// Mean is the across-sample mean miss ratio, the estimator of the
	// paper's methodology.
	Mean float64
	// RelErr95 is the 95% confidence half-width relative to the mean.
	RelErr95 float64
	// Samples is the number of windows actually completed.
	Samples int
	// RefsSeen is the total number of references generated, including
	// skipped gaps.
	RefsSeen uint64
}

func (e Estimate) String() string {
	return fmt.Sprintf("miss ratio %.4f +/- %.1f%% (n=%d)", e.Mean, e.RelErr95*100, e.Samples)
}

// Run drives gen through the sampling plan against target and returns
// the estimate. The generator is consumed incrementally: windows are
// simulated with counting enabled (after warm-up), gaps are skipped
// without simulation -- the same structural shortcut as hardware trace
// sampling, where the logic analyzer's buffer limits what is captured.
func Run(p Plan, gen trace.Generator, target Target) (Estimate, error) {
	if err := p.Validate(); err != nil {
		return Estimate{}, err
	}
	rng := p.Seed
	nextGap := func() int {
		// xorshift64*
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		if p.GapRefs == 0 {
			return 0
		}
		return p.GapRefs/2 + int((rng*0x2545f4914f6cdd1d)%uint64(p.GapRefs))
	}

	var agg stats.Sample
	var total uint64
	warm := p.warmRefs()
	for i := 0; i < p.Samples; i++ {
		// Gap: references pass without simulation.
		gap := nextGap()
		total += uint64(gen.Generate(gap, trace.Discard))

		// Warm-up: simulate without counting.
		target.Counting(false)
		total += uint64(gen.Generate(warm, trace.SinkFunc(target.Ref)))

		// Measured window.
		target.Counting(true)
		total += uint64(gen.Generate(p.WindowRefs-warm, trace.SinkFunc(target.Ref)))
		agg.Add(target.SampleDone())
	}
	return Estimate{
		Mean:     agg.Mean(),
		RelErr95: agg.RelErr95(),
		Samples:  agg.N(),
		RefsSeen: total,
	}, nil
}

// CacheTarget adapts a cache-like simulator with hit/miss counting to
// the Target interface. Access must return true on hit.
type CacheTarget struct {
	Access   func(r trace.Ref) (hit, counted bool)
	counting bool
	hits     uint64
	misses   uint64
}

// Ref implements Target.
func (c *CacheTarget) Ref(r trace.Ref) {
	hit, counted := c.Access(r)
	if !c.counting || !counted {
		return
	}
	if hit {
		c.hits++
	} else {
		c.misses++
	}
}

// Counting implements Target.
func (c *CacheTarget) Counting(on bool) { c.counting = on }

// SampleDone implements Target.
func (c *CacheTarget) SampleDone() float64 {
	ratio := 0.0
	if t := c.hits + c.misses; t > 0 {
		ratio = float64(c.misses) / float64(t)
	}
	c.hits, c.misses = 0, 0
	return ratio
}
