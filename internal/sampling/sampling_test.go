package sampling

import (
	"testing"

	"onchip/internal/area"
	"onchip/internal/cache"
	"onchip/internal/osmodel"
	"onchip/internal/trace"
	"onchip/internal/vm"
)

// fixedRatioGen emits a deterministic stream whose I-miss ratio is known
// by construction: a loop that alternates hot and one-touch code.
type fixedRatioGen struct {
	pc   uint32
	step int
}

func (g *fixedRatioGen) Generate(n int, sink trace.Sink) int {
	for i := 0; i < n; i++ {
		var addr uint32
		if g.step%4 == 0 {
			// One-touch cold code: always a fresh line.
			g.pc += 64
			addr = 0x80000000 + g.pc
		} else {
			addr = 0x90000000 + uint32(g.step%4)*4
		}
		g.step++
		sink.Ref(trace.Ref{Addr: addr, Kind: trace.IFetch, Mode: trace.Kernel})
	}
	return n
}

func icacheTarget(capBytes int) (*cache.Cache, *CacheTarget) {
	c := cache.New(cache.Config{CacheConfig: area.CacheConfig{CapacityBytes: capBytes, LineWords: 4, Assoc: 1}})
	return c, &CacheTarget{Access: func(r trace.Ref) (bool, bool) {
		if r.Kind != trace.IFetch {
			return false, false
		}
		return c.Access(vm.CacheKey(r.Addr, r.ASID), false), true
	}}
}

func TestPlanValidate(t *testing.T) {
	if err := DefaultPlan().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Plan{
		{Samples: 0, WindowRefs: 10},
		{Samples: 5, WindowRefs: 0},
		{Samples: 5, WindowRefs: 10, GapRefs: -1},
	}
	for _, p := range bad {
		if p.Validate() == nil {
			t.Errorf("plan %+v accepted", p)
		}
	}
	if _, err := Run(bad[0], &fixedRatioGen{}, &CacheTarget{Access: func(trace.Ref) (bool, bool) { return true, true }}); err == nil {
		t.Error("Run accepted an invalid plan")
	}
}

func TestEstimateMatchesConstructedRatio(t *testing.T) {
	// The generator misses exactly one reference in four (fresh 16-byte
	// line every 4th fetch, hot loop otherwise).
	_, target := icacheTarget(1 << 10)
	est, err := Run(Plan{Samples: 30, WindowRefs: 4000, GapRefs: 8000, Seed: 9}, &fixedRatioGen{}, target)
	if err != nil {
		t.Fatal(err)
	}
	if est.Mean < 0.22 || est.Mean > 0.28 {
		t.Errorf("estimated miss ratio %.4f, want ~0.25", est.Mean)
	}
	if est.Samples != 30 {
		t.Errorf("samples = %d", est.Samples)
	}
	if est.RefsSeen == 0 {
		t.Error("RefsSeen not tracked")
	}
	if est.String() == "" {
		t.Error("empty estimate string")
	}
}

// The paper's validation: sampled estimates agree with full-trace
// simulation to under 10% on the real workload streams.
func TestSamplingAccuracyOnWorkload(t *testing.T) {
	spec := osmodel.WorkloadSpec{
		Name:          "t",
		Seed:          7,
		ComputeInstrs: 3000,
		TextBytes:     64 << 10,
		HotLoopBytes:  2 << 10,
		ColdCodePct:   5,
		DataBytes:     128 << 10,
		HotDataBytes:  4 << 10,
		BufBytes:      64 << 10,
		Calls: []osmodel.CallMix{
			{Call: osmodel.Call{Svc: osmodel.SvcRead, Bytes: 2048}, Weight: 1},
			{Call: osmodel.Call{Svc: osmodel.SvcStat}, Weight: 1},
		},
	}
	_, target := icacheTarget(8 << 10)
	est, err := Run(Plan{Samples: 50, WindowRefs: 20_000, GapRefs: 30_000, Seed: 0x5a317},
		osmodel.NewSystem(osmodel.Mach, spec), target)
	if err != nil {
		t.Fatal(err)
	}

	full, fullTarget := icacheTarget(8 << 10)
	osmodel.NewSystem(osmodel.Mach, spec).Generate(2_500_000, trace.SinkFunc(fullTarget.Ref))
	fullTarget.Counting(true)
	osmodel.NewSystem(osmodel.Mach, spec).Generate(500_000, trace.SinkFunc(func(r trace.Ref) {
		fullTarget.Ref(r)
	}))
	_ = full
	ref := fullTarget.SampleDone()

	rel := est.Mean/ref - 1
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.10 {
		t.Errorf("sampled %.4f vs full %.4f: %.1f%% apart (paper bound: 10%%)", est.Mean, ref, rel*100)
	}
}

func TestCacheTargetCounting(t *testing.T) {
	hits := 0
	target := &CacheTarget{Access: func(trace.Ref) (bool, bool) {
		hits++
		return hits%2 == 0, true
	}}
	// Not counting: refs pass through but are not tallied.
	target.Counting(false)
	target.Ref(trace.Ref{})
	target.Ref(trace.Ref{})
	if got := target.SampleDone(); got != 0 {
		t.Errorf("uncounted sample ratio = %f", got)
	}
	// Counting: 50% misses.
	target.Counting(true)
	for i := 0; i < 10; i++ {
		target.Ref(trace.Ref{})
	}
	if got := target.SampleDone(); got != 0.5 {
		t.Errorf("ratio = %f, want 0.5", got)
	}
	// SampleDone resets the window.
	if got := target.SampleDone(); got != 0 {
		t.Errorf("ratio after reset = %f", got)
	}
}

func TestWarmupExcluded(t *testing.T) {
	// A target that records whether any counted access arrives during
	// the first (warm-up) fraction.
	seen := 0
	counted := 0
	target := &CacheTarget{Access: func(trace.Ref) (bool, bool) {
		seen++
		return true, true
	}}
	plan := Plan{Samples: 2, WindowRefs: 1000, GapRefs: 0, WarmFrac1000: 500, Seed: 1}
	gen := &fixedRatioGen{}
	if _, err := Run(plan, gen, target); err != nil {
		t.Fatal(err)
	}
	_ = counted
	if seen != 2000 {
		t.Errorf("target saw %d refs, want 2000 (both windows, warm-up included)", seen)
	}
}
