// Package wbuf models the write buffer of a write-through memory system
// like the DECstation 3100's: stores enter a small FIFO that retires one
// entry per memory write time, and the CPU stalls only when the buffer is
// full. Write-buffer stalls are one of the five CPI components the
// paper's Monster measurements attribute (Tables 3 and 4).
package wbuf

import (
	"fmt"

	"onchip/internal/telemetry"
)

// Config describes a write buffer.
type Config struct {
	// Entries is the buffer depth. The DECstation 3100 used a 4-entry
	// buffer.
	Entries int
	// WriteCycles is the memory write time per entry, in CPU cycles.
	WriteCycles int
}

// DECstation3100 returns the write-buffer parameters used for
// validation runs: 4 entries, 5-cycle memory writes.
func DECstation3100() Config { return Config{Entries: 4, WriteCycles: 5} }

// Buffer simulates the write buffer. Time is supplied by the caller as
// an absolute cycle count that must be non-decreasing across calls.
type Buffer struct {
	cfg Config
	// retire[i] is the cycle at which queued entry i leaves the buffer.
	retire []uint64
	stalls uint64
	writes uint64

	// Optional telemetry (nil-safe no-ops when unset): occupancy is the
	// queue depth seen by each arriving store, retireDelay the cycles
	// from enqueue to retirement.
	occupancy   *telemetry.Histogram
	retireDelay *telemetry.Histogram
}

// New returns a Buffer for cfg; it panics on non-positive parameters.
// Callers holding untrusted configurations should use NewE instead.
func New(cfg Config) *Buffer {
	b, err := NewE(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// NewE returns a Buffer for cfg, returning an error on non-positive
// parameters instead of panicking.
func NewE(cfg Config) (*Buffer, error) {
	if cfg.Entries <= 0 || cfg.WriteCycles <= 0 {
		return nil, fmt.Errorf("wbuf: entries (%d) and write cycles (%d) must be positive",
			cfg.Entries, cfg.WriteCycles)
	}
	return &Buffer{cfg: cfg, retire: make([]uint64, 0, cfg.Entries)}, nil
}

// Write enqueues one store issued at cycle now and returns the number of
// cycles the CPU stalls waiting for buffer space (zero when the buffer
// has a free entry).
func (b *Buffer) Write(now uint64) uint64 {
	b.writes++
	b.drain(now)
	b.occupancy.Observe(uint64(len(b.retire)))
	var stall uint64
	if len(b.retire) == b.cfg.Entries {
		// Full: wait for the oldest entry to retire.
		stall = b.retire[0] - now
		now = b.retire[0]
		b.drain(now)
	}
	// The memory port is serial: a new write starts after the previous
	// one finishes, never before `now`.
	start := now
	if n := len(b.retire); n > 0 && b.retire[n-1] > start {
		start = b.retire[n-1]
	}
	retireAt := start + uint64(b.cfg.WriteCycles)
	b.retire = append(b.retire, retireAt)
	b.retireDelay.Observe(retireAt - now)
	b.stalls += stall
	return stall
}

// Describe attaches occupancy and retire-delay histograms under prefix
// (e.g. "machine.wbuf") and publishes the buffer's counters. Safe to
// call with a nil registry (the histograms stay nil no-ops).
func (b *Buffer) Describe(reg *telemetry.Registry, prefix string) {
	if reg != nil {
		b.occupancy = reg.Histogram(prefix+".occupancy", "queue depth seen by arriving stores")
		b.retireDelay = reg.Histogram(prefix+".retire_delay_cycles", "cycles from enqueue to retirement")
	}
	reg.CounterFunc(prefix+".writes", "stores buffered", func() uint64 { return b.writes })
	reg.CounterFunc(prefix+".stall_cycles", "full-buffer stall cycles", func() uint64 { return b.stalls })
}

// Depth returns the number of entries currently queued, without
// draining; the machine model publishes it as a gauge after each store.
func (b *Buffer) Depth() int { return len(b.retire) }

// drain removes entries that have retired by cycle now.
func (b *Buffer) drain(now uint64) {
	i := 0
	for i < len(b.retire) && b.retire[i] <= now {
		i++
	}
	if i > 0 {
		b.retire = b.retire[:copy(b.retire, b.retire[i:])]
	}
}

// Pending returns the number of entries still queued at cycle now.
func (b *Buffer) Pending(now uint64) int {
	b.drain(now)
	return len(b.retire)
}

// StallCycles returns total CPU stall cycles charged so far.
func (b *Buffer) StallCycles() uint64 { return b.stalls }

// Writes returns the number of stores buffered so far.
func (b *Buffer) Writes() uint64 { return b.writes }

// Reset clears the buffer and counters.
func (b *Buffer) Reset() {
	b.retire = b.retire[:0]
	b.stalls = 0
	b.writes = 0
}
