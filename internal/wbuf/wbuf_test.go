package wbuf

import (
	"testing"
	"testing/quick"
)

func TestNoStallWhenSpace(t *testing.T) {
	b := New(Config{Entries: 4, WriteCycles: 6})
	for i := 0; i < 4; i++ {
		if s := b.Write(0); s != 0 {
			t.Errorf("write %d stalled %d cycles with free entries", i, s)
		}
	}
	if b.Pending(0) != 4 {
		t.Errorf("pending = %d, want 4", b.Pending(0))
	}
}

func TestStallWhenFull(t *testing.T) {
	b := New(Config{Entries: 2, WriteCycles: 10})
	b.Write(0) // retires at 10
	b.Write(0) // retires at 20
	// Third back-to-back write must wait for the first to retire.
	if s := b.Write(0); s != 10 {
		t.Errorf("stall = %d, want 10", s)
	}
	if b.StallCycles() != 10 || b.Writes() != 3 {
		t.Errorf("totals: stalls=%d writes=%d", b.StallCycles(), b.Writes())
	}
}

func TestDrainOverTime(t *testing.T) {
	b := New(Config{Entries: 2, WriteCycles: 10})
	b.Write(0)
	b.Write(0)
	// By cycle 25 both entries have retired; no stall.
	if s := b.Write(25); s != 0 {
		t.Errorf("stall after drain = %d, want 0", s)
	}
}

func TestSerialMemoryPort(t *testing.T) {
	b := New(Config{Entries: 4, WriteCycles: 10})
	b.Write(0) // starts 0, retires 10
	b.Write(0) // must start at 10, retires 20
	b.Write(0) // retires 30
	b.Write(0) // retires 40
	if s := b.Write(0); s != 10 {
		t.Errorf("stall = %d, want 10 (oldest retires at cycle 10)", s)
	}
}

func TestWellSpacedWritesNeverStall(t *testing.T) {
	b := New(Config{Entries: 4, WriteCycles: 6})
	now := uint64(0)
	for i := 0; i < 100; i++ {
		if s := b.Write(now); s != 0 {
			t.Fatalf("write %d at %d stalled %d", i, now, s)
		}
		now += 6 // exactly the drain rate
	}
}

func TestReset(t *testing.T) {
	b := New(Config{Entries: 1, WriteCycles: 5})
	b.Write(0)
	b.Write(0)
	b.Reset()
	if b.StallCycles() != 0 || b.Writes() != 0 || b.Pending(0) != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestDECstation3100Defaults(t *testing.T) {
	c := DECstation3100()
	if c.Entries != 4 || c.WriteCycles != 5 {
		t.Errorf("DECstation3100() = %+v", c)
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{Entries: 0, WriteCycles: 6})
}

// Property: when the caller advances time by the stalls it is charged
// (as the machine model does), pending never exceeds capacity and no
// single write stalls longer than one memory write time.
func TestQuickInvariants(t *testing.T) {
	f := func(gaps []uint8) bool {
		b := New(Config{Entries: 3, WriteCycles: 7})
		now := uint64(0)
		for _, g := range gaps {
			now += uint64(g % 16)
			stall := b.Write(now)
			if stall > 7 {
				return false
			}
			now += stall
			if b.Pending(now) > 3 {
				return false
			}
		}
		return b.StallCycles() <= b.Writes()*7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
