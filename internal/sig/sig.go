// Package sig provides the content-signature idiom shared across the
// repository: an FNV-64a hash accumulated over a sequence of values,
// rendered as a fixed-width hex string. The search checkpoint's space
// signature, and the advisor's request signatures are all instances --
// two inputs hash equal exactly when every accumulated value formats
// equal, so a signature binds derived state (a checkpoint, a cached
// result) to the exact inputs that produced it.
package sig

import (
	"fmt"
	"hash"
	"hash/fnv"
)

// Hash accumulates values into an FNV-64a signature. The zero value is
// not usable; call New.
type Hash struct {
	h hash.Hash64
}

// New returns an empty signature hash.
func New() *Hash {
	return &Hash{h: fnv.New64a()}
}

// Put folds each value into the signature, formatted with %v and
// terminated by '|' so adjacent values cannot collide by
// concatenation ("ab","c" hashes differently from "a","bc").
func (s *Hash) Put(vs ...any) {
	for _, v := range vs {
		fmt.Fprintf(s.h, "%v|", v)
	}
}

// Putf folds one fmt-formatted value into the signature, for callers
// whose fingerprint needs a specific rendering (e.g. "%+v" of a spec
// struct). The same '|' terminator is appended.
func (s *Hash) Putf(format string, args ...any) {
	fmt.Fprintf(s.h, format+"|", args...)
}

// Sum64 returns the accumulated 64-bit signature.
func (s *Hash) Sum64() uint64 { return s.h.Sum64() }

// String renders the signature as 16 lower-case hex digits, the
// on-disk and on-wire form used throughout the repository.
func (s *Hash) String() string { return fmt.Sprintf("%016x", s.h.Sum64()) }

// Of is the one-shot convenience: the signature of the given values.
func Of(vs ...any) string {
	s := New()
	s.Put(vs...)
	return s.String()
}
