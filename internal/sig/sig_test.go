package sig

import (
	"fmt"
	"hash/fnv"
	"testing"
)

func TestMatchesRawFNV(t *testing.T) {
	// The signature must be exactly FNV-64a over "%v|" renderings: the
	// search checkpoint format predates this package and persisted
	// signatures must keep verifying.
	h := fnv.New64a()
	fmt.Fprintf(h, "%v|%v|%v|", "budget", 250000.0, 42)
	want := fmt.Sprintf("%016x", h.Sum64())

	s := New()
	s.Put("budget", 250000.0, 42)
	if got := s.String(); got != want {
		t.Fatalf("signature %s, want raw-FNV %s", got, want)
	}
	if got := Of("budget", 250000.0, 42); got != want {
		t.Fatalf("Of = %s, want %s", got, want)
	}
}

func TestSeparatorPreventsConcatenationCollisions(t *testing.T) {
	if Of("ab", "c") == Of("a", "bc") {
		t.Fatal(`Of("ab","c") collides with Of("a","bc")`)
	}
}

func TestPutfFormats(t *testing.T) {
	type spec struct{ Name string }
	a, b := New(), New()
	a.Putf("%+v", spec{Name: "x"})
	b.Put(spec{Name: "x"}) // %v of a struct omits field names
	if a.String() == b.String() {
		t.Fatal("plus-v and v renderings should differ for a named-field struct")
	}
	if a.Sum64() == 0 {
		t.Fatal("Sum64 returned zero for non-empty input")
	}
}

func TestOrderAndValueSensitivity(t *testing.T) {
	base := Of("Mach", 4000, 2)
	for _, other := range []string{
		Of("Mach", 4000, 4),
		Of("Ultrix", 4000, 2),
		Of(4000, "Mach", 2),
	} {
		if other == base {
			t.Fatalf("distinct inputs collided at %s", base)
		}
	}
	if Of("Mach", 4000, 2) != base {
		t.Fatal("identical inputs must produce identical signatures")
	}
}
