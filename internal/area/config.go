// Package area implements a structural die-area model for on-chip memory
// structures (caches and TLBs) in the style of Mulder, Quach and Flynn
// (MQF), "An area model for on-chip memories and its application", IEEE
// JSSC 26(2), 1991.
//
// Areas are expressed in register-bit equivalents (rbe): the area of a
// one-bit storage cell in a register file. SRAM and CAM cells are
// fractions or multiples of an rbe, and array overhead (sense amplifiers,
// precharge, wordline drivers, decoders, comparators and control) is
// charged per column, per row, and per way.
//
// The original MQF default parameters are not publicly archived, so the
// model constants used here are calibrated against the quantitative
// anchors published in Nagle et al., "Optimal Allocation of On-chip
// Memory for Multiple-API Operating Systems" (ISCA 1994): the Table 6 and
// Table 7 configuration totals, the 19,000-rbe 512-entry 8-way TLB, the
// fully-associative/set-associative cost crossover at 64 entries, the 3x
// cost ratio of an 8-way versus direct-mapped 16-entry TLB, and the ~37%
// saving from 8-word cache lines. See DESIGN.md section 5.
package area

import "fmt"

// WordBytes is the machine word size assumed throughout the model. The
// paper reports all line sizes in 4-byte words.
const WordBytes = 4

// FullyAssociative is the sentinel associativity value denoting a
// fully-associative structure (CAM tags, no set index).
const FullyAssociative = 0

// CacheConfig describes a cache organization to be priced.
type CacheConfig struct {
	// CapacityBytes is the total data capacity (excluding tags).
	CapacityBytes int
	// LineWords is the line size in 4-byte words.
	LineWords int
	// Assoc is the set associativity; 1 means direct-mapped.
	// FullyAssociative (0) prices a CAM-tagged fully-associative cache.
	Assoc int
	// AddressBits is the width of the address used to form tags.
	// Zero selects the default of 32.
	AddressBits int
	// StatusBits is the number of per-line status bits (valid, dirty,
	// ...). Zero selects the default of 2.
	StatusBits int
}

// TLBConfig describes a TLB organization to be priced.
type TLBConfig struct {
	// Entries is the total number of translation entries.
	Entries int
	// Assoc is the set associativity; FullyAssociative (0) denotes a
	// CAM-tagged fully-associative TLB; 1 means direct-mapped.
	Assoc int
	// VABits is the virtual address width. Zero selects 32.
	VABits int
	// PageBits is log2 of the page size. Zero selects 12 (4-KB pages).
	PageBits int
	// ASIDBits is the width of the address-space identifier stored with
	// each tag. Zero selects 6 (64 ASIDs, as on the MIPS R2000).
	ASIDBits int
	// DataBits is the payload width per entry (PFN plus permission and
	// attribute flags). Zero selects 32.
	DataBits int
}

// Validate reports whether the configuration is well-formed: a
// power-of-two line size, a capacity that is a whole number of lines,
// and an associativity that yields a power-of-two set count (needed for
// index extraction). The associativity itself may be any positive count
// -- real designs include 3-, 5- and 12-way structures (Table 1 of the
// paper) -- or FullyAssociative.
func (c CacheConfig) Validate() error {
	if c.LineWords <= 0 || !isPow2(c.LineWords) {
		return fmt.Errorf("area: cache line %d words is not a positive power of two", c.LineWords)
	}
	lineBytes := c.LineWords * WordBytes
	if c.CapacityBytes < lineBytes || c.CapacityBytes%lineBytes != 0 {
		return fmt.Errorf("area: cache capacity %dB is not a whole number of %d-byte lines", c.CapacityBytes, lineBytes)
	}
	if c.Assoc < 0 {
		return fmt.Errorf("area: cache associativity %d is negative", c.Assoc)
	}
	if c.Assoc > 0 {
		lines := c.CapacityBytes / lineBytes
		if lines%c.Assoc != 0 || !isPow2(lines/c.Assoc) {
			return fmt.Errorf("area: %d lines with associativity %d does not give a power-of-two set count", lines, c.Assoc)
		}
	}
	return nil
}

// Lines returns the number of cache lines implied by the configuration.
func (c CacheConfig) Lines() int { return c.CapacityBytes / (c.LineWords * WordBytes) }

// Sets returns the number of sets (lines / associativity); for a
// fully-associative cache it returns 1.
func (c CacheConfig) Sets() int {
	if c.Assoc == FullyAssociative {
		return 1
	}
	return c.Lines() / c.Assoc
}

func (c CacheConfig) addressBits() int { return defaultInt(c.AddressBits, 32) }
func (c CacheConfig) statusBits() int  { return defaultInt(c.StatusBits, 2) }

// TagBits returns the number of address tag bits per line (excluding
// status bits).
func (c CacheConfig) TagBits() int {
	offset := log2(c.LineWords * WordBytes)
	index := 0
	if c.Assoc != FullyAssociative {
		index = log2(c.Sets())
	}
	return c.addressBits() - index - offset
}

func (c CacheConfig) String() string {
	switch {
	case c.Assoc == FullyAssociative:
		return fmt.Sprintf("%s, %d-word, fully-assoc", fmtKB(c.CapacityBytes), c.LineWords)
	default:
		return fmt.Sprintf("%s, %d-word, %d-way", fmtKB(c.CapacityBytes), c.LineWords, c.Assoc)
	}
}

// Validate reports whether the TLB configuration is well-formed: the
// entry count must be a whole number of ways per set with a power-of-two
// set count. Associativity may be any positive count (the MIPS TFP used
// a 3-way TLB) or FullyAssociative.
func (t TLBConfig) Validate() error {
	if t.Entries <= 0 {
		return fmt.Errorf("area: TLB entry count %d is not positive", t.Entries)
	}
	if t.Assoc < 0 {
		return fmt.Errorf("area: TLB associativity %d is negative", t.Assoc)
	}
	if t.Assoc > 0 {
		if t.Entries%t.Assoc != 0 || !isPow2(t.Entries/t.Assoc) {
			return fmt.Errorf("area: %d entries with associativity %d does not give a power-of-two set count", t.Entries, t.Assoc)
		}
	}
	return nil
}

// Sets returns the number of TLB sets; 1 for fully-associative.
func (t TLBConfig) Sets() int {
	if t.Assoc == FullyAssociative {
		return 1
	}
	return t.Entries / t.Assoc
}

func (t TLBConfig) vaBits() int   { return defaultInt(t.VABits, 32) }
func (t TLBConfig) pageBits() int { return defaultInt(t.PageBits, 12) }
func (t TLBConfig) asidBits() int { return defaultInt(t.ASIDBits, 6) }
func (t TLBConfig) dataBits() int { return defaultInt(t.DataBits, 32) }

// TagBits returns the number of tag bits per TLB entry: the virtual page
// number bits not consumed by the set index, plus the ASID.
func (t TLBConfig) TagBits() int {
	vpn := t.vaBits() - t.pageBits()
	if t.Assoc != FullyAssociative {
		vpn -= log2(t.Sets())
	}
	return vpn + t.asidBits()
}

func (t TLBConfig) String() string {
	if t.Assoc == FullyAssociative {
		return fmt.Sprintf("%d-entry fully-assoc TLB", t.Entries)
	}
	return fmt.Sprintf("%d-entry %d-way TLB", t.Entries, t.Assoc)
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// log2 returns the base-2 logarithm of a power of two.
func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

func defaultInt(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

func fmtKB(bytes int) string {
	if bytes >= 1024 && bytes%1024 == 0 {
		return fmt.Sprintf("%d-KB", bytes/1024)
	}
	return fmt.Sprintf("%d-B", bytes)
}
