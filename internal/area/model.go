package area

import "fmt"

// Model holds the rbe cost constants of the structural area model. A
// memory array is priced as
//
//	cells + column overhead + row overhead + comparators + control
//
// where cells are SRAM bits (data, tags, status, replacement state) or
// CAM bits (tags of fully-associative structures), column overhead
// charges sense amplifiers/precharge/column muxes per physical bit line,
// row overhead charges wordline drivers and decoder slices per row, and
// comparators are charged per tag bit per way for set-associative
// organizations (fully-associative tags embed their comparators in the
// CAM cells and instead pay a per-entry match-line charge).
type Model struct {
	// CellSRAM is the area of a six-transistor SRAM cell, in rbe.
	CellSRAM float64
	// CellCAM is the area of a content-addressable (match-capable)
	// cell, in rbe.
	CellCAM float64
	// ColOverhead is the per-column charge for sense amplifier,
	// precharge and column-mux circuitry, in rbe.
	ColOverhead float64
	// RowOverhead is the per-row charge for the wordline driver and the
	// decoder slice, in rbe.
	RowOverhead float64
	// CmpPerTagBit is the per-bit comparator charge, applied once per
	// way of a set-associative structure, in rbe.
	CmpPerTagBit float64
	// MatchPerEntryLog is the match-line and priority-encoder charge of
	// a fully-associative structure, in rbe per entry per log2(entries).
	// The superlinear growth reflects the longer, more heavily loaded
	// match lines and the wider priority encoder of larger CAMs, and is
	// what makes full associativity cheaper than 4-/8-way set
	// associativity below 64 entries but ~2x more expensive at 512
	// (the Figure 4/5 crossover).
	MatchPerEntryLog float64
	// FixedCache and FixedTLB are small fixed control-logic charges.
	FixedCache float64
	FixedTLB   float64
}

// Default returns the model constants calibrated against the quantitative
// anchors of Nagle et al. (ISCA 1994); see the package comment and
// DESIGN.md section 5. With these constants every Table 6/7 configuration
// total reproduces within about 0.5%.
//
// The constants are *jointly* calibrated: the FA/SA crossover at 64
// entries holds by a margin of only a few rbe, so changing any one
// constant requires re-deriving the others against the full anchor set in
// model_test.go.
func Default() Model {
	return Model{
		CellSRAM:         0.6,
		CellCAM:          1.12,
		ColOverhead:      3.2,
		RowOverhead:      1.1,
		CmpPerTagBit:     4.0,
		MatchPerEntryLog: 3.1,
		FixedCache:       0,
		FixedTLB:         200,
	}
}

// Geometry describes the physical organization the model derived for a
// configuration. It is exposed for tests, documentation and reporting.
type Geometry struct {
	Rows       int // wordlines
	Cols       int // bit lines (data + tag + status + replacement state)
	SRAMBits   int // total SRAM storage bits
	CAMBits    int // total CAM storage bits (fully-associative tags)
	TagBits    int // tag width per line/entry, excluding status
	StatusBits int // status bits per line/entry (valid, dirty, ...)
	LRUBits    int // replacement-state bits per line/entry
	Ways       int // comparator count (0 for fully-associative)
}

// CacheArea returns the die area of the cache configuration in rbe.
// It panics if the configuration is invalid; use CacheConfig.Validate to
// check untrusted input first.
func (m Model) CacheArea(c CacheConfig) float64 {
	a, _ := m.CacheAreaGeometry(c)
	return a
}

// CacheAreaGeometry returns the area in rbe together with the derived
// physical geometry.
func (m Model) CacheAreaGeometry(c CacheConfig) (float64, Geometry) {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	lineBits := c.LineWords * WordBytes * 8
	lines := c.Lines()
	tag := c.TagBits()
	status := c.statusBits()
	lru := lruBits(c.Assoc)

	if c.Assoc == FullyAssociative {
		g := Geometry{
			Rows:       lines,
			Cols:       lineBits + status + lru,
			SRAMBits:   lines * (lineBits + status + lru),
			CAMBits:    lines * tag,
			TagBits:    tag,
			StatusBits: status,
			LRUBits:    lru,
		}
		a := m.CellSRAM*float64(g.SRAMBits) +
			m.CellCAM*float64(g.CAMBits) +
			m.matchArea(lines) +
			m.ColOverhead*float64(g.Cols) +
			m.RowOverhead*float64(g.Rows) +
			m.FixedCache
		return a, g
	}

	sets := c.Sets()
	perLine := lineBits + tag + status + lru
	g := Geometry{
		Rows:       sets,
		Cols:       c.Assoc * perLine,
		SRAMBits:   lines * perLine,
		TagBits:    tag,
		StatusBits: status,
		LRUBits:    lru,
		Ways:       c.Assoc,
	}
	a := m.CellSRAM*float64(g.SRAMBits) +
		m.ColOverhead*float64(g.Cols) +
		m.RowOverhead*float64(g.Rows) +
		m.CmpPerTagBit*float64(tag*c.Assoc) +
		m.FixedCache
	return a, g
}

// TLBArea returns the die area of the TLB configuration in rbe. It panics
// if the configuration is invalid; use TLBConfig.Validate for untrusted
// input.
func (m Model) TLBArea(t TLBConfig) float64 {
	a, _ := m.TLBAreaGeometry(t)
	return a
}

// TLBAreaGeometry returns the area in rbe together with the derived
// physical geometry.
func (m Model) TLBAreaGeometry(t TLBConfig) (float64, Geometry) {
	if err := t.Validate(); err != nil {
		panic(err)
	}
	tag := t.TagBits()
	data := t.dataBits()
	const valid = 1
	lru := lruBits(t.Assoc)

	if t.Assoc == FullyAssociative {
		g := Geometry{
			Rows:       t.Entries,
			Cols:       data,
			SRAMBits:   t.Entries * data,
			CAMBits:    t.Entries * (tag + valid),
			TagBits:    tag,
			StatusBits: valid,
		}
		a := m.CellSRAM*float64(g.SRAMBits) +
			m.CellCAM*float64(g.CAMBits) +
			m.matchArea(t.Entries) +
			m.ColOverhead*float64(g.Cols) +
			m.RowOverhead*float64(g.Rows) +
			m.FixedTLB
		return a, g
	}

	sets := t.Sets()
	perEntry := tag + valid + lru + data
	g := Geometry{
		Rows:       sets,
		Cols:       t.Assoc * perEntry,
		SRAMBits:   t.Entries * perEntry,
		TagBits:    tag,
		StatusBits: valid,
		LRUBits:    lru,
		Ways:       t.Assoc,
	}
	a := m.CellSRAM*float64(g.SRAMBits) +
		m.ColOverhead*float64(g.Cols) +
		m.RowOverhead*float64(g.Rows) +
		m.CmpPerTagBit*float64(tag*t.Assoc) +
		m.FixedTLB
	return a, g
}

// matchArea returns the match-line and priority-encoder overhead of a
// fully-associative structure with n entries.
func (m Model) matchArea(n int) float64 {
	return m.MatchPerEntryLog * float64(n) * float64(log2(n))
}

// lruBits returns the per-line replacement-state budget: log2(assoc) bits
// for set-associative structures, none for direct-mapped or
// fully-associative ones (the latter keep replacement state in the
// match/encoder logic already charged per entry).
func lruBits(assoc int) int {
	if assoc <= 1 {
		return 0
	}
	return log2(assoc)
}

// BudgetRBE is the on-chip memory area budget used throughout the paper's
// Section 5.4 analysis.
const BudgetRBE = 250_000

// TotalArea prices a full on-chip memory complement: one TLB, one I-cache
// and one D-cache.
func (m Model) TotalArea(tlb TLBConfig, icache, dcache CacheConfig) float64 {
	return m.TLBArea(tlb) + m.CacheArea(icache) + m.CacheArea(dcache)
}

// FitsBudget reports whether the configuration triple fits within the
// given rbe budget.
func (m Model) FitsBudget(budget float64, tlb TLBConfig, icache, dcache CacheConfig) bool {
	return m.TotalArea(tlb, icache, dcache) <= budget
}

// WriteBufferArea prices an n-entry write buffer, one of the "other
// architectural structures" the paper's Section 6 proposes costing. Each
// entry holds a ~30-bit address in match-capable (CAM) cells -- loads
// must be checked against buffered stores -- a 32-bit data word in SRAM,
// and drain/valid control.
func (m Model) WriteBufferArea(entries int) float64 {
	if entries <= 0 {
		return 0
	}
	const addrBits, dataBits, ctrlBits = 30, 32, 4
	return m.CellCAM*float64(entries*addrBits) +
		m.CellSRAM*float64(entries*(dataBits+ctrlBits)) +
		m.matchArea(entries) +
		m.ColOverhead*float64(dataBits) +
		m.RowOverhead*float64(entries) +
		100 // drain sequencer
}

func (g Geometry) String() string {
	return fmt.Sprintf("%d rows x %d cols, %d SRAM bits, %d CAM bits, tag %d", g.Rows, g.Cols, g.SRAMBits, g.CAMBits, g.TagBits)
}
