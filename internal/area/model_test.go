package area

import (
	"testing"
	"testing/quick"

	"onchip/internal/testutil"
)

// The paper states a 512-entry, 8-way set-associative TLB costs "just
// 19,000 rbes" (section 5.4).
func TestTLBAnchor512Entry8Way(t *testing.T) {
	m := Default()
	got := m.TLBArea(TLBConfig{Entries: 512, Assoc: 8})
	testutil.Within(t, "TLB(512,8-way)", got, 19000, 0.05)
}

// "For approximately the same cost, designers can choose either a
// 256-entry, fully-associative TLB or a 512-entry, 8-way TLB" (sec 5.1).
func TestTLBAnchorFA256EqualsSA512(t *testing.T) {
	m := Default()
	fa := m.TLBArea(TLBConfig{Entries: 256, Assoc: FullyAssociative})
	sa := m.TLBArea(TLBConfig{Entries: 512, Assoc: 8})
	if r := fa / sa; r < 0.85 || r > 1.15 {
		t.Errorf("FA-256 / SA-512x8 cost ratio = %.2f, want ~1.0", r)
	}
}

// "A 16-entry, 8-way set-associative TLB requires 3 times the area of a
// 16-entry, direct-mapped TLB" (section 5.1).
func TestTLBAnchor16Entry8WayVsDM(t *testing.T) {
	m := Default()
	dm := m.TLBArea(TLBConfig{Entries: 16, Assoc: 1})
	sa8 := m.TLBArea(TLBConfig{Entries: 16, Assoc: 8})
	if r := sa8 / dm; r < 2.5 || r > 4.0 {
		t.Errorf("16-entry 8-way/DM area ratio = %.2f, want ~3", r)
	}
}

// "Direct-mapped TLBs are always smaller than fully-associative TLBs.
// However, for small TLBs (< 64 entries), fully-associativity costs less
// than 4- or 8-way set-associativity. For TLBs with 64 or more entries,
// the opposite is true." (section 5.1)
func TestTLBFullyAssociativeCrossover(t *testing.T) {
	m := Default()
	for _, entries := range []int{16, 32, 64, 128, 256, 512} {
		fa := m.TLBArea(TLBConfig{Entries: entries, Assoc: FullyAssociative})
		dm := m.TLBArea(TLBConfig{Entries: entries, Assoc: 1})
		if dm >= fa {
			t.Errorf("%d entries: DM area %.0f >= FA area %.0f; DM should always be smaller", entries, dm, fa)
		}
		sa8 := m.TLBArea(TLBConfig{Entries: entries, Assoc: 8})
		sa4 := m.TLBArea(TLBConfig{Entries: entries, Assoc: 4})
		if entries < 64 {
			if fa >= sa8 || fa >= sa4 {
				t.Errorf("%d entries: FA %.0f should be cheaper than 4-way %.0f and 8-way %.0f", entries, fa, sa4, sa8)
			}
		} else if fa <= sa8 {
			t.Errorf("%d entries: FA %.0f should cost more than 8-way %.0f", entries, fa, sa8)
		}
	}
	// "... a fully-associative TLB requires twice as much area as a 4- or
	// 8-way, set-associative TLB" -- the ratio should approach 2 at the
	// large end of the range.
	fa := m.TLBArea(TLBConfig{Entries: 512, Assoc: FullyAssociative})
	sa := m.TLBArea(TLBConfig{Entries: 512, Assoc: 8})
	if r := fa / sa; r < 1.7 || r > 2.4 {
		t.Errorf("512-entry FA/8-way ratio = %.2f, want ~2", r)
	}
}

// "Larger line sizes reduce the cost of a cache by as much as 37% when
// moving from a 1-word line to an 8-word line size" (section 5.1).
func TestCacheLineSizeSaving(t *testing.T) {
	m := Default()
	maxSaving := 0.0
	for _, capKB := range []int{2, 4, 8, 16, 32, 64} {
		one := m.CacheArea(CacheConfig{CapacityBytes: capKB * 1024, LineWords: 1, Assoc: 1})
		eight := m.CacheArea(CacheConfig{CapacityBytes: capKB * 1024, LineWords: 8, Assoc: 1})
		saving := 1 - eight/one
		if saving > maxSaving {
			maxSaving = saving
		}
	}
	if maxSaving < 0.30 || maxSaving > 0.42 {
		t.Errorf("max 1-word -> 8-word saving = %.1f%%, want ~37%%", maxSaving*100)
	}
}

// "Associativity (not pictured) has a much smaller impact on die area"
// than line size (section 5.1).
func TestCacheAssociativityImpactSmall(t *testing.T) {
	m := Default()
	dm := m.CacheArea(CacheConfig{CapacityBytes: 16 * 1024, LineWords: 4, Assoc: 1})
	sa8 := m.CacheArea(CacheConfig{CapacityBytes: 16 * 1024, LineWords: 4, Assoc: 8})
	if r := sa8 / dm; r > 1.25 {
		t.Errorf("16-KB cache 8-way/DM area ratio = %.2f, want modest (< 1.25)", r)
	}
}

// Table 6 and Table 7 configuration totals. The model constants were
// calibrated against these; each must reproduce within 2%.
func TestPaperConfigurationTotals(t *testing.T) {
	m := Default()
	tlb512x8 := TLBConfig{Entries: 512, Assoc: 8}
	cases := []struct {
		name     string
		tlb      TLBConfig
		i, d     CacheConfig
		wantRBEs float64
	}{
		{"table6 row1", tlb512x8,
			CacheConfig{CapacityBytes: 16 * 1024, LineWords: 8, Assoc: 8},
			CacheConfig{CapacityBytes: 8 * 1024, LineWords: 8, Assoc: 8}, 163438},
		{"table6 row4", tlb512x8,
			CacheConfig{CapacityBytes: 32 * 1024, LineWords: 16, Assoc: 8},
			CacheConfig{CapacityBytes: 8 * 1024, LineWords: 8, Assoc: 8}, 249089},
		{"table6 row6", tlb512x8,
			CacheConfig{CapacityBytes: 32 * 1024, LineWords: 8, Assoc: 4},
			CacheConfig{CapacityBytes: 8 * 1024, LineWords: 8, Assoc: 8}, 243502},
		{"table6 row10", tlb512x8,
			CacheConfig{CapacityBytes: 16 * 1024, LineWords: 16, Assoc: 8},
			CacheConfig{CapacityBytes: 8 * 1024, LineWords: 8, Assoc: 8}, 167815},
		{"table7 rank1", tlb512x8,
			CacheConfig{CapacityBytes: 32 * 1024, LineWords: 8, Assoc: 2},
			CacheConfig{CapacityBytes: 8 * 1024, LineWords: 4, Assoc: 2}, 239259},
		{"table7 rank13", tlb512x8,
			CacheConfig{CapacityBytes: 32 * 1024, LineWords: 16, Assoc: 2},
			CacheConfig{CapacityBytes: 8 * 1024, LineWords: 8, Assoc: 2}, 232040},
		{"table7 rank77", tlb512x8,
			CacheConfig{CapacityBytes: 16 * 1024, LineWords: 8, Assoc: 2},
			CacheConfig{CapacityBytes: 16 * 1024, LineWords: 2, Assoc: 2}, 212442},
		{"table7 rank99", tlb512x8,
			CacheConfig{CapacityBytes: 16 * 1024, LineWords: 8, Assoc: 2},
			CacheConfig{CapacityBytes: 8 * 1024, LineWords: 8, Assoc: 2}, 151875},
		{"table7 rank59", TLBConfig{Entries: 64, Assoc: FullyAssociative},
			CacheConfig{CapacityBytes: 32 * 1024, LineWords: 8, Assoc: 2},
			CacheConfig{CapacityBytes: 8 * 1024, LineWords: 4, Assoc: 2}, 225438},
		{"table7 rank1529", TLBConfig{Entries: 64, Assoc: 4},
			CacheConfig{CapacityBytes: 8 * 1024, LineWords: 1, Assoc: 1},
			CacheConfig{CapacityBytes: 16 * 1024, LineWords: 2, Assoc: 1}, 176909},
	}
	for _, c := range cases {
		got := m.TotalArea(c.tlb, c.i, c.d)
		testutil.Within(t, c.name, got, c.wantRBEs, 0.02)
	}
}

func TestCacheValidate(t *testing.T) {
	bad := []CacheConfig{
		{CapacityBytes: 0, LineWords: 4, Assoc: 1},
		{CapacityBytes: 3000, LineWords: 4, Assoc: 1},
		{CapacityBytes: 8192, LineWords: 3, Assoc: 1},
		{CapacityBytes: 8192, LineWords: 4, Assoc: 3},
		{CapacityBytes: 8192, LineWords: 4, Assoc: -1},
		{CapacityBytes: 64, LineWords: 32, Assoc: 1}, // capacity < one line
		{CapacityBytes: 128, LineWords: 8, Assoc: 8}, // assoc > lines
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
	good := []CacheConfig{
		{CapacityBytes: 2048, LineWords: 1, Assoc: 1},
		{CapacityBytes: 32 * 1024, LineWords: 32, Assoc: 8},
		{CapacityBytes: 4096, LineWords: 4, Assoc: FullyAssociative},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}
}

func TestTLBValidate(t *testing.T) {
	bad := []TLBConfig{
		{Entries: 0, Assoc: 1},
		{Entries: 48, Assoc: 1},
		{Entries: 64, Assoc: 3},
		{Entries: 4, Assoc: 8},
		{Entries: 64, Assoc: -2},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
	if err := (TLBConfig{Entries: 64, Assoc: FullyAssociative}).Validate(); err != nil {
		t.Errorf("FA TLB should validate: %v", err)
	}
}

func TestCacheGeometryConsistency(t *testing.T) {
	m := Default()
	c := CacheConfig{CapacityBytes: 8 * 1024, LineWords: 4, Assoc: 2}
	_, g := m.CacheAreaGeometry(c)
	if g.Rows != c.Sets() {
		t.Errorf("rows = %d, want sets = %d", g.Rows, c.Sets())
	}
	wantCols := c.Assoc * (c.LineWords*WordBytes*8 + g.TagBits + g.StatusBits + g.LRUBits)
	if g.Cols != wantCols {
		t.Errorf("cols = %d, want %d", g.Cols, wantCols)
	}
	if g.SRAMBits != g.Rows*g.Cols {
		t.Errorf("SRAM bits %d != rows*cols %d", g.SRAMBits, g.Rows*g.Cols)
	}
}

func TestTagBits(t *testing.T) {
	// 8-KB direct-mapped cache with 4-word (16-byte) lines: 512 sets,
	// 4 offset bits, 9 index bits -> 19 tag bits on a 32-bit address.
	c := CacheConfig{CapacityBytes: 8 * 1024, LineWords: 4, Assoc: 1}
	if got := c.TagBits(); got != 19 {
		t.Errorf("TagBits = %d, want 19", got)
	}
	// Fully-associative: no index bits consumed.
	c.Assoc = FullyAssociative
	if got := c.TagBits(); got != 28 {
		t.Errorf("FA TagBits = %d, want 28", got)
	}
	// 512-entry 8-way TLB: 64 sets, 20-bit VPN -> 14 VPN tag bits + 6
	// ASID bits = 20.
	tl := TLBConfig{Entries: 512, Assoc: 8}
	if got := tl.TagBits(); got != 20 {
		t.Errorf("TLB TagBits = %d, want 20", got)
	}
}

// Property: cache area is strictly monotone in capacity for fixed line
// size and associativity.
func TestCacheAreaMonotoneInCapacity(t *testing.T) {
	m := Default()
	for _, line := range []int{1, 2, 4, 8, 16, 32} {
		for _, assoc := range []int{1, 2, 4, 8} {
			prev := 0.0
			for capKB := 2; capKB <= 64; capKB *= 2 {
				c := CacheConfig{CapacityBytes: capKB * 1024, LineWords: line, Assoc: assoc}
				if c.Validate() != nil {
					continue
				}
				a := m.CacheArea(c)
				if a <= prev {
					t.Errorf("area not monotone: %v = %.0f, previous %.0f", c, a, prev)
				}
				prev = a
			}
		}
	}
}

// Property: TLB area is strictly monotone in entry count for fixed
// associativity.
func TestTLBAreaMonotoneInEntries(t *testing.T) {
	m := Default()
	for _, assoc := range []int{FullyAssociative, 1, 2, 4, 8} {
		prev := 0.0
		for entries := 16; entries <= 512; entries *= 2 {
			c := TLBConfig{Entries: entries, Assoc: assoc}
			if c.Validate() != nil {
				continue
			}
			a := m.TLBArea(c)
			if a <= prev {
				t.Errorf("area not monotone: %v = %.0f, previous %.0f", c, a, prev)
			}
			prev = a
		}
	}
}

// Property (testing/quick): for any valid power-of-two geometry, area is
// positive and tag bits amortize -- doubling the line size never
// increases total SRAM bits.
func TestCacheAreaQuickProperties(t *testing.T) {
	m := Default()
	f := func(capExp, lineExp, assocExp uint8) bool {
		capKB := 1 << (1 + capExp%6) // 2..64 KB
		line := 1 << (lineExp % 6)   // 1..32 words
		assoc := 1 << (assocExp % 4) // 1..8
		c := CacheConfig{CapacityBytes: capKB * 1024, LineWords: line, Assoc: assoc}
		if c.Validate() != nil {
			return true
		}
		a, g := m.CacheAreaGeometry(c)
		if a <= 0 || g.SRAMBits <= c.CapacityBytes*8 {
			return false // must at least hold the data bits plus tags
		}
		if line < 32 {
			c2 := c
			c2.LineWords = line * 2
			if c2.Validate() == nil {
				_, g2 := m.CacheAreaGeometry(c2)
				if g2.SRAMBits > g.SRAMBits {
					return false // tag amortization: fewer total bits with longer lines
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): TLB area is positive and FA is never cheaper
// than direct-mapped at the same entry count.
func TestTLBAreaQuickProperties(t *testing.T) {
	m := Default()
	f := func(entExp, assocExp uint8) bool {
		entries := 1 << (4 + entExp%6) // 16..512
		assoc := 1 << (assocExp % 4)   // 1..8
		c := TLBConfig{Entries: entries, Assoc: assoc}
		if c.Validate() != nil {
			return true
		}
		sa := m.TLBArea(c)
		fa := m.TLBArea(TLBConfig{Entries: entries, Assoc: FullyAssociative})
		dm := m.TLBArea(TLBConfig{Entries: entries, Assoc: 1})
		return sa > 0 && fa > dm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBudgetHelpers(t *testing.T) {
	m := Default()
	tlb := TLBConfig{Entries: 512, Assoc: 8}
	ic := CacheConfig{CapacityBytes: 16 * 1024, LineWords: 8, Assoc: 8}
	dc := CacheConfig{CapacityBytes: 8 * 1024, LineWords: 8, Assoc: 8}
	if !m.FitsBudget(BudgetRBE, tlb, ic, dc) {
		t.Errorf("table6 row1 config should fit the 250k budget (area=%.0f)", m.TotalArea(tlb, ic, dc))
	}
	big := CacheConfig{CapacityBytes: 64 * 1024, LineWords: 1, Assoc: 8}
	if m.FitsBudget(BudgetRBE, tlb, big, big) {
		t.Error("two 64-KB 1-word-line caches should not fit the 250k budget")
	}
}

func TestStringForms(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{CacheConfig{CapacityBytes: 16 * 1024, LineWords: 8, Assoc: 2}.String(), "16-KB, 8-word, 2-way"},
		{CacheConfig{CapacityBytes: 4096, LineWords: 4, Assoc: FullyAssociative}.String(), "4-KB, 4-word, fully-assoc"},
		{TLBConfig{Entries: 64, Assoc: FullyAssociative}.String(), "64-entry fully-assoc TLB"},
		{TLBConfig{Entries: 512, Assoc: 8}.String(), "512-entry 8-way TLB"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}

func TestWriteBufferArea(t *testing.T) {
	m := Default()
	if m.WriteBufferArea(0) != 0 {
		t.Error("zero entries should cost nothing")
	}
	prev := 0.0
	for _, n := range []int{1, 2, 4, 8, 16} {
		a := m.WriteBufferArea(n)
		if a <= prev {
			t.Errorf("%d entries: area %.0f not above %d entries", n, a, n/2)
		}
		prev = a
	}
	// Write buffers are tiny next to caches: a deep 16-entry buffer
	// still costs under a tenth of a 2-KB cache.
	if m.WriteBufferArea(16) > m.CacheArea(CacheConfig{CapacityBytes: 2048, LineWords: 4, Assoc: 1})/8 {
		t.Error("write buffer priced implausibly large")
	}
}
