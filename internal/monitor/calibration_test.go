package monitor

// Calibration regression guards: the workload parameters in
// internal/workload were tuned so the simulated suite reproduces the
// paper's Table 3/4 and Figure 9 shapes (see EXPERIMENTS.md). These
// tests pin those shapes so future edits to the OS model or workloads
// cannot silently break the reproduction.

import (
	"testing"

	"onchip/internal/area"
	"onchip/internal/cache"
	"onchip/internal/machine"
	"onchip/internal/osmodel"
	"onchip/internal/trace"
	"onchip/internal/vm"
	"onchip/internal/workload"
)

const calRefs = 400_000

func suiteRows(t *testing.T, v osmodel.Variant) map[string]Row {
	t.Helper()
	rows := map[string]Row{}
	for _, r := range MeasureSuite(v, workload.All(), calRefs, machine.DECstation3100()) {
		rows[r.Workload] = r
	}
	return rows
}

// Table 4's headline shapes, per workload and on average.
func TestTable4Shapes(t *testing.T) {
	ult := suiteRows(t, osmodel.Ultrix)
	mach := suiteRows(t, osmodel.Mach)

	for _, w := range workload.Names() {
		u, m := ult[w], mach[w]
		if m.Breakdown.CPI <= u.Breakdown.CPI {
			t.Errorf("%s: Mach CPI %.2f <= Ultrix %.2f", w, m.Breakdown.CPI, u.Breakdown.CPI)
		}
		if m.Breakdown.Comp[machine.CompICache] <= u.Breakdown.Comp[machine.CompICache] {
			t.Errorf("%s: Mach I$ CPI not above Ultrix", w)
		}
		if m.Breakdown.Comp[machine.CompTLB] <= u.Breakdown.Comp[machine.CompTLB] {
			t.Errorf("%s: Mach TLB CPI not above Ultrix", w)
		}
	}

	uAvg, mAvg := ult["Average"], mach["Average"]
	if r := mAvg.Breakdown.Comp[machine.CompTLB] / uAvg.Breakdown.Comp[machine.CompTLB]; r < 3 {
		t.Errorf("suite TLB CPI ratio Mach/Ultrix = %.1f, want >= 3 (paper ~8)", r)
	}
	if mAvg.Breakdown.Pct(machine.CompDCache) >= uAvg.Breakdown.Pct(machine.CompDCache) {
		t.Error("the D-cache's share of stalls must fall under Mach")
	}
	// Ultrix CPIs in the paper's band (1.3-2.5 across the suite, +50%
	// model headroom).
	if uAvg.Breakdown.CPI < 1.3 || uAvg.Breakdown.CPI > 3.0 {
		t.Errorf("Ultrix average CPI %.2f outside the plausible band", uAvg.Breakdown.CPI)
	}
	// Ultrix barely touches the TLB (paper: 2% of stalls).
	if uAvg.Breakdown.Pct(machine.CompTLB) > 8 {
		t.Errorf("Ultrix TLB stall share %.0f%%, paper says ~2%%", uAvg.Breakdown.Pct(machine.CompTLB))
	}
}

// Figure 9's miss-ratio anchors at the 8-KB 4-word-line point.
func TestFig9Anchors(t *testing.T) {
	measure := func(v osmodel.Variant) float64 {
		var misses, instrs uint64
		for _, spec := range workload.All() {
			c := cache.New(cache.Config{CacheConfig: area.CacheConfig{CapacityBytes: 8 << 10, LineWords: 4, Assoc: 1}})
			osmodel.NewSystem(v, spec).Generate(calRefs/2, trace.SinkFunc(func(r trace.Ref) {
				if r.Kind != trace.IFetch {
					return
				}
				instrs++
				if !c.Access(vm.CacheKey(r.Addr, r.ASID), false) {
					misses++
				}
			}))
		}
		return float64(misses) / float64(instrs)
	}
	ult := measure(osmodel.Ultrix)
	mach := measure(osmodel.Mach)
	if ult < 0.015 || ult > 0.07 {
		t.Errorf("Ultrix 8-KB/4-word I miss ratio %.4f, paper anchor 0.028", ult)
	}
	if mach < 0.045 || mach > 0.13 {
		t.Errorf("Mach 8-KB/4-word I miss ratio %.4f, paper anchor 0.065", mach)
	}
	if mach/ult < 1.4 {
		t.Errorf("Mach/Ultrix I miss ratio %.1fx, paper >2x", mach/ult)
	}
}

// The Mach time split for mpeg_play must stay in the paper's regime:
// the task is no longer the overwhelming majority of execution.
func TestMachTimeSplitRegime(t *testing.T) {
	r := Measure(osmodel.Mach, workload.MPEGPlay(), calRefs, machine.DECstation3100())
	osShare := r.Gen.KernelPct() + r.Gen.BSDPct() + r.Gen.XPct()
	if osShare < 20 {
		t.Errorf("OS contexts get %.0f%% of instructions; the paper measured 60%% of time", osShare)
	}
}
