package monitor

import (
	"testing"

	"onchip/internal/machine"
	"onchip/internal/osmodel"
	"onchip/internal/workload"
)

const testRefs = 400_000

// The paper's central observation (Tables 3/4): Mach's CPI exceeds
// Ultrix's, with large increases in TLB and I-cache stalls, while the
// D-cache's *share* of stalls falls.
func TestMachShiftsStallProfile(t *testing.T) {
	cfg := machine.DECstation3100()
	spec := workload.MPEGPlay()
	ult := Measure(osmodel.Ultrix, spec, testRefs, cfg)
	mach := Measure(osmodel.Mach, spec, testRefs, cfg)

	if mach.Breakdown.CPI <= ult.Breakdown.CPI {
		t.Errorf("CPI: Mach %.2f <= Ultrix %.2f", mach.Breakdown.CPI, ult.Breakdown.CPI)
	}
	if mach.Breakdown.Comp[machine.CompTLB] < 2*ult.Breakdown.Comp[machine.CompTLB] {
		t.Errorf("TLB CPI: Mach %.3f should be >= 2x Ultrix %.3f",
			mach.Breakdown.Comp[machine.CompTLB], ult.Breakdown.Comp[machine.CompTLB])
	}
	if mach.Breakdown.Comp[machine.CompICache] <= ult.Breakdown.Comp[machine.CompICache] {
		t.Errorf("I-cache CPI: Mach %.3f <= Ultrix %.3f",
			mach.Breakdown.Comp[machine.CompICache], ult.Breakdown.Comp[machine.CompICache])
	}
	if mach.Breakdown.Pct(machine.CompDCache) >= ult.Breakdown.Pct(machine.CompDCache) {
		t.Errorf("D-cache share: Mach %.0f%% should fall below Ultrix %.0f%%",
			mach.Breakdown.Pct(machine.CompDCache), ult.Breakdown.Pct(machine.CompDCache))
	}
}

// Row 1 of Table 3: user-only simulation sees a lower CPI than the full
// system and misses the OS-driven stalls.
func TestUserOnlyUnderestimates(t *testing.T) {
	cfg := machine.DECstation3100()
	spec := workload.MPEGPlay()
	none := MeasureUserOnly(spec, testRefs, cfg)
	ult := Measure(osmodel.Ultrix, spec, testRefs, cfg)
	if none.OS != "None" {
		t.Errorf("OS label = %q", none.OS)
	}
	if none.Breakdown.CPI >= ult.Breakdown.CPI {
		t.Errorf("user-only CPI %.2f should be below Ultrix %.2f",
			none.Breakdown.CPI, ult.Breakdown.CPI)
	}
	if none.Breakdown.Comp[machine.CompTLB] >= ult.Breakdown.Comp[machine.CompTLB]+0.05 {
		t.Error("user-only run should not see more TLB stalls than the full system")
	}
}

// The Mach time split must resemble the paper's 40/25/30/5 measurement
// for mpeg_play: the task well under two-thirds, with real kernel, BSD
// and X shares.
func TestMachTimeSplit(t *testing.T) {
	r := Measure(osmodel.Mach, workload.MPEGPlay(), testRefs, machine.DECstation3100())
	if r.Gen.AppPct() > 75 || r.Gen.AppPct() < 25 {
		t.Errorf("app share = %.0f%%, want the paper's regime (~40%%)", r.Gen.AppPct())
	}
	for name, pct := range map[string]float64{
		"kernel": r.Gen.KernelPct(),
		"bsd":    r.Gen.BSDPct(),
		"x":      r.Gen.XPct(),
	} {
		if pct <= 1 {
			t.Errorf("%s share = %.1f%%, want a visible share", name, pct)
		}
	}
}

func TestMeasureSuiteShapes(t *testing.T) {
	rows := MeasureSuite(osmodel.Mach, workload.All(), 100_000, machine.DECstation3100())
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 6 workloads + average", len(rows))
	}
	if rows[6].Workload != "Average" {
		t.Errorf("last row = %q, want Average", rows[6].Workload)
	}
	var sum float64
	for _, r := range rows[:6] {
		sum += r.Breakdown.CPI
		if r.Breakdown.CPI <= 1 {
			t.Errorf("%s: CPI %.2f <= 1", r.Workload, r.Breakdown.CPI)
		}
	}
	if avg := rows[6].Breakdown.CPI; avg < sum/6-0.01 || avg > sum/6+0.01 {
		t.Errorf("average CPI %.3f, want %.3f", avg, sum/6)
	}
}
