// Package monitor is the reproduction's analogue of Monster, the
// DAS 9200 logic-analyzer setup the paper attached to a DECstation 3100:
// it runs a workload on a simulated machine and attributes every stall
// cycle to its cause (TLB, I-cache, D-cache, write buffer, other),
// producing the rows of the paper's Tables 3 and 4.
//
// Monster's defining property is that it observes the machine
// non-invasively at the CPU pins; here the observed "pins" are the
// trace.Ref stream between the OS model and the machine timing model.
package monitor

import (
	"context"

	"onchip/internal/machine"
	"onchip/internal/osmodel"
	"onchip/internal/telemetry"
	"onchip/internal/trace"
)

// Row is one measurement: a workload under one measurement condition.
type Row struct {
	Workload  string
	OS        string
	Breakdown machine.Breakdown
	Gen       osmodel.GenStats
	// Detail is the telemetry snapshot taken after the run when the
	// machine config carried a Metrics registry: the deep-dive numbers
	// behind the Breakdown (per-cache hit/miss counts, TLB refill
	// classes, write-buffer histograms, per-service-class OS activity).
	// Nil when telemetry is off.
	Detail []telemetry.Metric
}

// Measure runs the workload under the OS variant for approximately refs
// references on a machine built from cfg, and returns the stall
// breakdown. The config's OtherCPI and server-ASID predicate are filled
// in from the spec and OS model. When cfg.Metrics is set, the OS model
// is attached to the same registry and the Row carries a full telemetry
// snapshot; when cfg.Tracer is set, the machine's stall events land in
// that ring.
func Measure(v osmodel.Variant, spec osmodel.WorkloadSpec, refs int, cfg machine.Config) Row {
	cfg.OtherCPI = spec.OtherCPI
	cfg.IsServerASID = osmodel.IsServerASID
	m := machine.New(cfg)
	sys := osmodel.NewSystem(v, spec)
	sys.SetMetrics(cfg.Metrics)
	gen := sys.Run(refs, m)
	m.FlushMetrics()
	row := Row{Workload: spec.Name, OS: v.String(), Breakdown: m.Breakdown(), Gen: gen}
	if cfg.Metrics != nil {
		row.Detail = cfg.Metrics.Snapshot()
	}
	return row
}

// MeasureUserOnly reproduces the paper's "None" measurement condition
// (Table 3, row 1): a pixie-style user-only simulation that sees just
// the application task's user-mode references, missing all
// operating-system activity and all interference from other address
// spaces. The workload still runs under Ultrix; the monitor simply
// cannot see beyond the task, exactly like a pixie-generated trace.
func MeasureUserOnly(spec osmodel.WorkloadSpec, refs int, cfg machine.Config) Row {
	cfg.OtherCPI = spec.OtherCPI
	m := machine.New(cfg)
	sys := osmodel.NewSystem(osmodel.Ultrix, spec)
	filter := trace.Filter{
		Keep: func(r trace.Ref) bool {
			return r.Mode == trace.User && !osmodel.IsServerASID(r.ASID)
		},
		Next: m,
	}
	gen := sys.Run(refs, filter)
	m.FlushMetrics()
	row := Row{Workload: spec.Name, OS: "None", Breakdown: m.Breakdown(), Gen: gen}
	if cfg.Metrics != nil {
		row.Detail = cfg.Metrics.Snapshot()
	}
	return row
}

// MeasureSuite runs every workload under the variant and returns the
// rows plus an average row (the paper's Table 4 "Average").
func MeasureSuite(v osmodel.Variant, specs []osmodel.WorkloadSpec, refsEach int, cfg machine.Config) []Row {
	rows, _ := MeasureSuiteContext(context.Background(), v, specs, refsEach, cfg)
	return rows
}

// MeasureSuiteContext is MeasureSuite with cancellation: the context is
// polled between workloads, and on cancellation the rows measured so
// far are returned (no average row -- a partial mean would be
// misleading) together with ctx.Err().
func MeasureSuiteContext(ctx context.Context, v osmodel.Variant, specs []osmodel.WorkloadSpec, refsEach int, cfg machine.Config) ([]Row, error) {
	rows := make([]Row, 0, len(specs)+1)
	var avg machine.Breakdown
	for _, spec := range specs {
		if err := ctx.Err(); err != nil {
			return rows, err
		}
		r := Measure(v, spec, refsEach, cfg)
		rows = append(rows, r)
		avg.CPI += r.Breakdown.CPI
		avg.Instrs += r.Breakdown.Instrs
		for c := range r.Breakdown.Comp {
			avg.Comp[c] += r.Breakdown.Comp[c]
		}
	}
	n := float64(len(specs))
	if n > 0 {
		avg.CPI /= n
		for c := range avg.Comp {
			avg.Comp[c] /= n
		}
		rows = append(rows, Row{Workload: "Average", OS: v.String(), Breakdown: avg})
	}
	return rows, nil
}
