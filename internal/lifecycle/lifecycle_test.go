package lifecycle

import (
	"bytes"
	"context"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestNotifyCancelsOnSignal(t *testing.T) {
	var buf bytes.Buffer
	ctx, stop := Notify(context.Background(), "testbin", &buf)
	defer stop()

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatalf("sending SIGINT to self: %v", err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not cancelled within 5s of SIGINT")
	}
	if !strings.Contains(buf.String(), "testbin") || !strings.Contains(buf.String(), "shutting down gracefully") {
		t.Errorf("shutdown notice = %q", buf.String())
	}
}

func TestNotifyStopReleasesWithoutSignal(t *testing.T) {
	ctx, stop := Notify(context.Background(), "testbin", &bytes.Buffer{})
	if ctx.Err() != nil {
		t.Fatal("context cancelled before any signal")
	}
	stop()
	stop() // idempotent
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("stop should cancel the context")
	}
}

func TestOnShutdownRunsOnceOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := make(chan struct{}, 4)
	trigger := OnShutdown(ctx, "testbin", &bytes.Buffer{}, func() error {
		ran <- struct{}{}
		return nil
	})
	cancel()
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("hook did not run within 5s of cancellation")
	}
	trigger() // already ran: must not run again
	trigger()
	select {
	case <-ran:
		t.Fatal("hook ran more than once")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestOnShutdownManualTriggerAndErrorReporting(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf bytes.Buffer
	runs := 0
	trigger := OnShutdown(ctx, "testbin", &buf, func() error {
		runs++
		return os.ErrClosed
	})
	trigger() // normal exit path: no cancellation yet
	trigger()
	if runs != 1 {
		t.Fatalf("hook ran %d times, want 1", runs)
	}
	if !strings.Contains(buf.String(), "testbin") || !strings.Contains(buf.String(), "shutdown flush") {
		t.Errorf("error report = %q", buf.String())
	}
}

func TestNotifyInheritsParentCancellation(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	ctx, stop := Notify(parent, "testbin", &bytes.Buffer{})
	defer stop()
	cancel()
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("child context should follow the parent")
	}
}
