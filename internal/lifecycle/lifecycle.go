// Package lifecycle implements the shutdown contract shared by every
// binary in this repository: the first SIGINT or SIGTERM cancels the
// run's context so in-flight work stops at the next safe boundary --
// sweeps persist a checkpoint, telemetry is flushed, and partial
// results are written -- and a second signal aborts immediately with
// the conventional 128+signal exit status. See DESIGN.md "Fault
// tolerance".
package lifecycle

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// InterruptExit is the exit status a binary returns after a graceful,
// signal-initiated shutdown (the SIGINT convention, 128+2).
const InterruptExit = 130

// Notify returns a child of parent that is cancelled on the first
// SIGINT or SIGTERM. A line naming the signal and the shutdown contract
// is written to w (stderr when nil) so an operator watching an
// hours-long sweep knows the interrupt registered; a second signal
// os.Exits immediately with 128+signal. The returned stop releases the
// signal handler and its goroutine -- call it (usually deferred) once
// the run is done.
func Notify(parent context.Context, name string, w io.Writer) (ctx context.Context, stop func()) {
	if w == nil {
		w = os.Stderr
	}
	ctx, cancel := context.WithCancel(parent)
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		select {
		case sig := <-sigs:
			fmt.Fprintf(w, "%s: received %v; shutting down gracefully (checkpoint + partial results; signal again to abort)\n", name, sig)
			cancel()
		case <-done:
			return
		}
		select {
		case sig := <-sigs:
			fmt.Fprintf(w, "%s: received second %v; aborting\n", name, sig)
			os.Exit(128 + exitNum(sig))
		case <-done:
		}
	}()
	var once sync.Once
	return ctx, func() {
		once.Do(func() {
			signal.Stop(sigs)
			cancel()
			close(done)
		})
	}
}

// OnShutdown registers fn to run exactly once when ctx (usually the
// Notify context) is cancelled, and returns a trigger that runs it
// immediately if it has not run yet. It is the flush-on-shutdown hook
// durable state needs: the goroutine fires the moment a signal cancels
// the run -- so buffered data (a tsdb appender, say) hits disk even if
// the main path takes a while to unwind -- while the returned trigger,
// deferred in main, covers the normal exit path. Errors from fn are
// reported to w (stderr when nil) prefixed with name.
func OnShutdown(ctx context.Context, name string, w io.Writer, fn func() error) (trigger func()) {
	if w == nil {
		w = os.Stderr
	}
	var once sync.Once
	run := func() {
		once.Do(func() {
			if err := fn(); err != nil {
				fmt.Fprintf(w, "%s: shutdown flush: %v\n", name, err)
			}
		})
	}
	go func() {
		<-ctx.Done()
		run()
	}()
	return run
}

func exitNum(sig os.Signal) int {
	if s, ok := sig.(syscall.Signal); ok {
		return int(s)
	}
	return 1
}
