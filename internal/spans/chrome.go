package spans

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// WriteChromeTrace renders the tracer's spans as Chrome trace-event
// JSON (the "JSON Array Format" with the traceEvents envelope), which
// Perfetto and chrome://tracing load directly. Lanes become threads of
// one process, named and ordered by thread_name/thread_sort_index
// metadata events; completed spans become complete ("X") events with
// microsecond timestamps relative to the tracer epoch; spans still open
// at write time become begin ("B") events so a live download shows
// in-flight work. Event order is deterministic for a deterministic span
// structure: metadata by lane id, then spans by start time and id.
//
// Safe to call while lanes are still recording (the written trace is a
// consistent point-in-time copy). A nil tracer writes an empty trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	var recs []Record
	var lanes []string
	var open []openInfo
	if t != nil {
		t.mu.Lock()
		recs = append(recs, t.recs...)
		for _, l := range t.lanes {
			lanes = append(lanes, l.name)
		}
		for _, s := range t.open {
			open = append(open, openInfo{id: s.id, parent: s.parent, lane: s.lane.id, name: s.name, start: s.start})
		}
		t.mu.Unlock()
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Start != recs[j].Start {
			return recs[i].Start < recs[j].Start
		}
		return recs[i].ID < recs[j].ID
	})
	sort.Slice(open, func(i, j int) bool {
		if open[i].start != open[j].start {
			return open[i].start < open[j].start
		}
		return open[i].id < open[j].id
	})

	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	for id, name := range lanes {
		emit(`{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":%q}}`, id+1, name)
		emit(`{"ph":"M","pid":1,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`, id+1, id)
	}
	for _, r := range recs {
		emit(`{"ph":"X","pid":1,"tid":%d,"name":%q,"cat":"span","ts":%.3f,"dur":%.3f,"args":{"id":%d,"parent":%d}}`,
			r.Lane+1, r.Name, us(r.Start), us(r.Dur), r.ID, r.Parent)
	}
	for _, s := range open {
		emit(`{"ph":"B","pid":1,"tid":%d,"name":%q,"cat":"span","ts":%.3f,"args":{"id":%d,"parent":%d}}`,
			s.lane+1, s.name, us(s.start), s.id, s.parent)
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}

type openInfo struct {
	id, parent uint64
	lane       int
	name       string
	start      time.Duration
}

// us converts a tracer-relative duration to trace-event microseconds.
func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteFile stops any still-running bracketed CPU profile and persists
// the tracer's spans as Chrome trace-event JSON at path -- the -spans
// flag's shutdown drain. A nil tracer writes an empty, valid trace.
func WriteFile(path string, t *Tracer) error {
	t.StopProfile()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SanitizeProfileName maps a span name to a file-name-safe fragment for
// the default -prof-span-out path.
func SanitizeProfileName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '_'
	}, name)
}
