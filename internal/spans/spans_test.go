package spans

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"onchip/internal/telemetry"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	l := tr.Lane("main")
	if l != nil {
		t.Fatalf("nil tracer returned non-nil lane")
	}
	if w := tr.WorkerLane("w"); w != nil {
		t.Fatalf("nil tracer returned non-nil worker lane")
	}
	s := l.Start("work")
	if s != nil {
		t.Fatalf("nil lane returned non-nil span")
	}
	s.End() // must not panic
	tr.SetMetrics(telemetry.NewRegistry())
	tr.ProfileSpan("x", nil)
	tr.StopProfile()
	if got := tr.Records(); got != nil {
		t.Fatalf("nil tracer Records = %v, want nil", got)
	}
	if got := tr.Dropped(); got != 0 {
		t.Fatalf("nil tracer Dropped = %d, want 0", got)
	}
	sum := tr.Summarize()
	if sum.Recorded != 0 || len(sum.Phases) != 0 || len(sum.Lanes) != 0 {
		t.Fatalf("nil tracer summary not zero: %+v", sum)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil tracer WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer trace not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("nil tracer trace has %d events, want 0", len(doc.TraceEvents))
	}
}

func TestNestingRecordsTree(t *testing.T) {
	tr := New(0)
	l := tr.Lane("main")
	outer := l.Start("outer")
	inner := l.Start("inner")
	grand := l.Start("grand")
	grand.End()
	inner.End()
	sib := l.Start("sibling")
	sib.End()
	outer.End()
	top2 := l.Start("top2")
	top2.End()

	recs := tr.Records()
	if len(recs) != 5 {
		t.Fatalf("recorded %d spans, want 5", len(recs))
	}
	parent := make(map[string]uint64)
	id := make(map[string]uint64)
	for _, r := range recs {
		parent[r.Name] = r.Parent
		id[r.Name] = r.ID
		if r.Lane != 0 {
			t.Errorf("span %s on lane %d, want 0", r.Name, r.Lane)
		}
	}
	if parent["outer"] != 0 || parent["top2"] != 0 {
		t.Errorf("top-level spans have parents: outer=%d top2=%d", parent["outer"], parent["top2"])
	}
	if parent["inner"] != id["outer"] {
		t.Errorf("inner.parent = %d, want outer id %d", parent["inner"], id["outer"])
	}
	if parent["grand"] != id["inner"] {
		t.Errorf("grand.parent = %d, want inner id %d", parent["grand"], id["inner"])
	}
	if parent["sibling"] != id["outer"] {
		t.Errorf("sibling.parent = %d, want outer id %d", parent["sibling"], id["outer"])
	}
}

func TestConcurrentLanes(t *testing.T) {
	tr := New(0)
	const lanes, perLane = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < lanes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l := tr.WorkerLane("worker." + string(rune('a'+i)))
			for j := 0; j < perLane; j++ {
				s := l.Start("job")
				c := l.Start("job.child")
				c.End()
				s.End()
			}
		}(i)
	}
	wg.Wait()
	recs := tr.Records()
	if want := lanes * perLane * 2; len(recs) != want {
		t.Fatalf("recorded %d spans, want %d", len(recs), want)
	}
	seen := make(map[uint64]bool)
	for _, r := range recs {
		if seen[r.ID] {
			t.Fatalf("duplicate span id %d", r.ID)
		}
		seen[r.ID] = true
	}
	sum := tr.Summarize()
	if len(sum.Lanes) != lanes {
		t.Fatalf("summary has %d lanes, want %d", len(sum.Lanes), lanes)
	}
	for _, l := range sum.Lanes {
		if !l.Worker {
			t.Errorf("lane %s not marked worker", l.Name)
		}
		if l.Spans != perLane*2 {
			t.Errorf("lane %s spans = %d, want %d", l.Name, l.Spans, perLane*2)
		}
	}
	if sum.WorkerImbalance < 1 {
		t.Errorf("worker imbalance %.3f < 1", sum.WorkerImbalance)
	}
}

func TestDropLimit(t *testing.T) {
	tr := New(3)
	l := tr.Lane("main")
	for i := 0; i < 10; i++ {
		l.Start("s").End()
	}
	if got := len(tr.Records()); got != 3 {
		t.Fatalf("kept %d records, want 3", got)
	}
	if got := tr.Dropped(); got != 7 {
		t.Fatalf("dropped = %d, want 7", got)
	}
	sum := tr.Summarize()
	if sum.Dropped != 7 || sum.Recorded != 3 {
		t.Fatalf("summary recorded/dropped = %d/%d, want 3/7", sum.Recorded, sum.Dropped)
	}
}

func TestSetMetricsFoldsSpans(t *testing.T) {
	tr := New(0)
	reg := telemetry.NewRegistry()
	tr.SetMetrics(reg)
	l := tr.Lane("main")
	s := l.Start("generate.measure")
	time.Sleep(time.Millisecond)
	s.End()
	l.Start("generate.measure").End()

	snap := reg.Snapshot()
	byName := make(map[string]telemetry.Metric)
	for _, m := range snap {
		byName[m.Name] = m
	}
	g, ok := byName["span.generate.measure_seconds"]
	if !ok {
		t.Fatalf("gauge span.generate.measure_seconds missing from snapshot: %+v", snap)
	}
	if g.Value <= 0 {
		t.Errorf("span seconds gauge = %v, want > 0", g.Value)
	}
	if _, ok := byName["span.generate.measure_us"]; !ok {
		t.Fatalf("histogram span.generate.measure_us missing from snapshot")
	}
	if !telemetry.IsWallClock("span.generate.measure_seconds") {
		t.Errorf("span seconds gauge not excluded as wall-clock")
	}
	if !telemetry.IsWallClock("span.generate.measure_us") {
		t.Errorf("span histogram not excluded as wall-clock")
	}
}

func TestSummarySelfTime(t *testing.T) {
	tr := New(0)
	l := tr.Lane("main")
	outer := l.Start("outer")
	inner := l.Start("inner")
	time.Sleep(2 * time.Millisecond)
	inner.End()
	outer.End()

	sum := tr.Summarize()
	stats := make(map[string]PhaseStat)
	for _, p := range sum.Phases {
		stats[p.Name] = p
	}
	o, in := stats["outer"], stats["inner"]
	if o.Count != 1 || in.Count != 1 {
		t.Fatalf("phase counts outer=%d inner=%d, want 1/1", o.Count, in.Count)
	}
	if o.TotalSeconds < in.TotalSeconds {
		t.Errorf("outer total %.6f < inner total %.6f", o.TotalSeconds, in.TotalSeconds)
	}
	// outer's self time excludes inner; it must be (well) below its total.
	if o.SelfSeconds > o.TotalSeconds-in.TotalSeconds+1e-9 {
		t.Errorf("outer self %.6f not reduced by inner %.6f (total %.6f)",
			o.SelfSeconds, in.TotalSeconds, o.TotalSeconds)
	}
	if in.SelfSeconds <= 0 {
		t.Errorf("inner self %.6f, want > 0", in.SelfSeconds)
	}
}

// chromeEvent mirrors the fields the golden/schema checks need.
type chromeEvent struct {
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	TS   *float64       `json:"ts"`
	Dur  *float64       `json:"dur"`
	Args map[string]any `json:"args"`
}

func TestChromeTraceSchema(t *testing.T) {
	tr := New(0)
	l := tr.Lane("main")
	s := l.Start("phase")
	l.Start("phase.child").End()
	s.End()
	w := tr.WorkerLane("worker.0")
	w.Start("job").End()
	openSpan := l.Start("still-open")
	defer openSpan.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		DisplayTimeUnit string        `json:"displayTimeUnit"`
		TraceEvents     []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	var meta, complete, begin int
	for _, ev := range doc.TraceEvents {
		if ev.PID != 1 {
			t.Errorf("event pid = %d, want 1", ev.PID)
		}
		if ev.TID < 1 {
			t.Errorf("event tid = %d, want >= 1", ev.TID)
		}
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.TS == nil || ev.Dur == nil {
				t.Errorf("X event %q missing ts/dur", ev.Name)
			}
			if ev.Cat != "span" {
				t.Errorf("X event %q cat = %q, want span", ev.Name, ev.Cat)
			}
		case "B":
			begin++
			if ev.Name != "still-open" {
				t.Errorf("B event name = %q, want still-open", ev.Name)
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	if meta != 4 { // 2 lanes x (thread_name + thread_sort_index)
		t.Errorf("metadata events = %d, want 4", meta)
	}
	if complete != 3 {
		t.Errorf("complete events = %d, want 3", complete)
	}
	if begin != 1 {
		t.Errorf("begin events = %d, want 1", begin)
	}
}

func TestProfileSpanBracketsCPUProfile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "span.pprof")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := New(0)
	tr.ProfileSpan("hot", f)
	l := tr.Lane("main")
	l.Start("cold").End() // must not trigger the profile
	s := l.Start("hot")
	busy := 0
	deadline := time.Now().Add(20 * time.Millisecond)
	for time.Now().Before(deadline) {
		busy++
	}
	_ = busy
	s.End()
	l.Start("hot").End() // second instance must not re-arm
	tr.StopProfile()     // idempotent after the bracket closed

	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Fatalf("CPU profile is empty")
	}
}

func TestStopProfileClosesInterruptedBracket(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "span.pprof")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := New(0)
	tr.ProfileSpan("hot", f)
	l := tr.Lane("main")
	_ = l.Start("hot") // never ended: simulates an interrupted run
	tr.StopProfile()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Fatalf("interrupted CPU profile is empty")
	}
}

func TestWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	tr := New(0)
	tr.Lane("main").Start("work").End()
	if err := WriteFile(path, tr); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatalf("written trace is not valid JSON:\n%s", data)
	}
	if !strings.Contains(string(data), `"work"`) {
		t.Fatalf("trace missing span name:\n%s", data)
	}
}

func TestSanitizeProfileName(t *testing.T) {
	for in, want := range map[string]string{
		"sweep.job":      "sweep.job",
		"workload/video": "workload_video",
		"a b:c":          "a_b_c",
		"ok_name-1.2":    "ok_name-1.2",
	} {
		if got := SanitizeProfileName(in); got != want {
			t.Errorf("SanitizeProfileName(%q) = %q, want %q", in, got, want)
		}
	}
}
