package spans

import (
	"sort"
	"time"
)

// Summary is the aggregate view of a tracer served by the obs server's
// /spans endpoint: where the wall-clock went per phase (span name) and
// per lane, with pool-worker utilization and shard imbalance.
type Summary struct {
	// ElapsedSeconds is wall-clock since the tracer epoch at
	// summarize time.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	Recorded       int     `json:"recorded"`
	Dropped        uint64  `json:"dropped"`

	// Phases aggregates completed spans by name, sorted by descending
	// total time. SelfSeconds excludes time attributed to recorded
	// child spans, so a phase that merely contains instrumented work
	// does not double-count it.
	Phases []PhaseStat `json:"phases"`

	// Lanes reports per-lane activity. For worker lanes, utilization
	// is busy time over the lane's active window.
	Lanes []LaneStat `json:"lanes"`

	// WorkerImbalance is max/mean busy time across worker lanes (1.0
	// means perfectly balanced shards; 0 when there are no worker
	// lanes). The sweep's shard round-robin should keep this near 1.
	WorkerImbalance float64 `json:"worker_imbalance"`

	// Open lists spans still in flight, outermost first.
	Open []OpenSpan `json:"open"`
}

// PhaseStat aggregates the completed spans sharing one name.
type PhaseStat struct {
	Name         string  `json:"name"`
	Count        int     `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	SelfSeconds  float64 `json:"self_seconds"`
}

// LaneStat is one lane's activity summary.
type LaneStat struct {
	Name   string `json:"name"`
	Worker bool   `json:"worker"`
	Spans  uint64 `json:"spans"`
	// BusySeconds sums the lane's completed top-level spans; WallSeconds
	// spans the lane's first span start to its last span end.
	BusySeconds    float64 `json:"busy_seconds"`
	WallSeconds    float64 `json:"wall_seconds"`
	UtilizationPct float64 `json:"utilization_pct"`
}

// OpenSpan is one still-running span in the live tree.
type OpenSpan struct {
	ID           uint64  `json:"id"`
	Parent       uint64  `json:"parent"`
	Lane         string  `json:"lane"`
	Name         string  `json:"name"`
	StartSeconds float64 `json:"start_seconds"`
	AgeSeconds   float64 `json:"age_seconds"`
}

// Summarize computes the aggregate view of everything recorded so far.
// Safe to call while lanes are recording; a nil tracer returns a zero
// summary.
func (t *Tracer) Summarize() Summary {
	var s Summary
	if t == nil {
		return s
	}
	now := time.Since(t.epoch)
	s.ElapsedSeconds = now.Seconds()

	t.mu.Lock()
	recs := append([]Record(nil), t.recs...)
	s.Recorded = len(recs)
	s.Dropped = t.dropped
	type laneSnap struct {
		name        string
		worker      bool
		spans       uint64
		busy        time.Duration
		first, last time.Duration
		hasFirst    bool
	}
	lanes := make([]laneSnap, 0, len(t.lanes))
	for _, l := range t.lanes {
		lanes = append(lanes, laneSnap{
			name: l.name, worker: l.worker,
			spans: l.spans.Load(), busy: time.Duration(l.busy.Load()),
			first: l.first, last: l.last, hasFirst: l.hasFirst,
		})
	}
	for _, sp := range t.open {
		s.Open = append(s.Open, OpenSpan{
			ID: sp.id, Parent: sp.parent, Lane: sp.lane.name, Name: sp.name,
			StartSeconds: sp.start.Seconds(),
			AgeSeconds:   (now - sp.start).Seconds(),
		})
	}
	t.mu.Unlock()

	sort.Slice(s.Open, func(i, j int) bool {
		if s.Open[i].StartSeconds != s.Open[j].StartSeconds {
			return s.Open[i].StartSeconds < s.Open[j].StartSeconds
		}
		return s.Open[i].ID < s.Open[j].ID
	})

	// Self-time: each recorded span's duration minus its recorded
	// children's durations.
	childSum := make(map[uint64]time.Duration)
	for _, r := range recs {
		if r.Parent != 0 {
			childSum[r.Parent] += r.Dur
		}
	}
	byName := make(map[string]*PhaseStat)
	for _, r := range recs {
		p := byName[r.Name]
		if p == nil {
			p = &PhaseStat{Name: r.Name}
			byName[r.Name] = p
		}
		p.Count++
		p.TotalSeconds += r.Dur.Seconds()
		self := r.Dur - childSum[r.ID]
		if self > 0 {
			p.SelfSeconds += self.Seconds()
		}
	}
	s.Phases = make([]PhaseStat, 0, len(byName))
	for _, p := range byName {
		s.Phases = append(s.Phases, *p)
	}
	sort.Slice(s.Phases, func(i, j int) bool {
		if s.Phases[i].TotalSeconds != s.Phases[j].TotalSeconds {
			return s.Phases[i].TotalSeconds > s.Phases[j].TotalSeconds
		}
		return s.Phases[i].Name < s.Phases[j].Name
	})

	var workerBusy []time.Duration
	for _, l := range lanes {
		st := LaneStat{
			Name: l.name, Worker: l.worker, Spans: l.spans,
			BusySeconds: l.busy.Seconds(),
		}
		if l.hasFirst {
			wall := l.last - l.first
			st.WallSeconds = wall.Seconds()
			if wall > 0 {
				st.UtilizationPct = 100 * float64(l.busy) / float64(wall)
			}
		}
		s.Lanes = append(s.Lanes, st)
		if l.worker {
			workerBusy = append(workerBusy, l.busy)
		}
	}
	if n := len(workerBusy); n > 0 {
		var max, sum time.Duration
		for _, b := range workerBusy {
			sum += b
			if b > max {
				max = b
			}
		}
		if sum > 0 {
			mean := float64(sum) / float64(n)
			s.WorkerImbalance = float64(max) / mean
		}
	}
	return s
}
