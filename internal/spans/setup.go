package spans

import (
	"context"
	"fmt"
	"os"

	"onchip/internal/lifecycle"
)

// Setup is the shared -spans / -prof-span wiring of the binaries: it
// builds the tracer those flags (or a live -serve plane wanting /spans)
// ask for and arms a shutdown drain through the lifecycle package, so
// both a SIGINT and a normal exit stop any bracketed CPU profile and
// persist the Chrome trace.
//
// spansFile, when non-empty, is where the drain writes the trace-event
// JSON. profSpan, when non-empty, names the span that brackets a CPU
// profile into profOut (default "span_<name>.pprof"); if the span never
// runs, the empty profile file is removed at drain time. serve forces a
// tracer even without the file flags, so /spans has something to show.
//
// The returned drain is idempotent and must be deferred by the caller;
// it also runs automatically when ctx is cancelled. With no flag set
// and serve false, the tracer is nil (recording nothing) and the drain
// a no-op.
func Setup(ctx context.Context, name, spansFile, profSpan, profOut string, serve bool) (*Tracer, func(), error) {
	if spansFile == "" && profSpan == "" && !serve {
		return nil, func() {}, nil
	}
	t := New(0)
	if profSpan != "" {
		if profOut == "" {
			profOut = "span_" + SanitizeProfileName(profSpan) + ".pprof"
		}
		f, err := os.Create(profOut)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: -prof-span-out: %w", name, err)
		}
		t.ProfileSpan(profSpan, f)
	}
	drain := lifecycle.OnShutdown(ctx, name+": spans", nil, func() error {
		t.StopProfile()
		if profSpan != "" {
			// A bracket that never triggered leaves a zero-byte profile;
			// remove it rather than hand the user an unloadable file.
			if st, err := os.Stat(profOut); err == nil && st.Size() == 0 {
				os.Remove(profOut)
			}
		}
		if spansFile == "" {
			return nil
		}
		if err := WriteFile(spansFile, t); err != nil {
			return fmt.Errorf("writing %s: %w", spansFile, err)
		}
		return nil
	})
	return t, drain, nil
}
