// Package spans is the execution tracer of the reproduction: a
// low-overhead hierarchical span recorder that answers *where the
// wall-clock went* -- per phase, per workload, per pool worker --
// where the telemetry registry answers *what happened*. A Span brackets
// one unit of work (a generation phase, a search, one group-pool job);
// spans nest through per-goroutine Lanes, so the recorded tree maps
// directly onto the pipeline's concurrency structure.
//
// Like package telemetry, everything is nil-safe: a nil *Tracer hands
// out nil *Lanes, a nil *Lane hands out nil *Spans, and methods on nil
// receivers are no-ops, so instrumented code threads spans
// unconditionally and the disabled path reduces to an inlined nil
// check. With tracing off the simulators' output is byte-identical.
//
// Recorded spans export three ways: WriteChromeTrace renders the run as
// Chrome trace-event JSON (loadable in Perfetto or chrome://tracing),
// Summarize computes per-phase self-time and per-worker-lane
// utilization for the obs server's /spans endpoint, and SetMetrics
// folds every span's duration into telemetry gauges/histograms so the
// durable tsdb path persists them alongside the other run series.
package spans

import (
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"onchip/internal/telemetry"
)

// DefaultLimit bounds the completed-span buffer: enough for the full
// model-building sweep's per-job worker spans with room to spare, small
// enough (~16 MB of records) that an unbounded producer cannot exhaust
// memory. Spans past the limit are dropped and counted.
const DefaultLimit = 256 << 10

// Record is one completed span. Start and Dur are relative to the
// tracer's epoch, so records order and render without wall-clock
// arithmetic.
type Record struct {
	ID     uint64
	Parent uint64 // 0 for a lane's top-level spans
	Lane   int    // index into the tracer's lanes
	Name   string
	Start  time.Duration
	Dur    time.Duration
}

// Tracer collects spans across any number of lanes. The nil *Tracer is
// a valid no-op instrument. Start/End are safe for concurrent use
// across lanes; a single Lane belongs to one goroutine at a time (its
// open-span stack is unsynchronized by design).
type Tracer struct {
	epoch  time.Time
	limit  int
	nextID atomic.Uint64

	mu      sync.Mutex
	lanes   []*Lane
	byName  map[string]*Lane
	recs    []Record
	dropped uint64
	open    map[uint64]*Span
	metrics map[string]spanInstruments
	reg     *telemetry.Registry

	// CPU-profile bracketing (ProfileSpan): profState moves 0 -> 1 when
	// the named span starts the profile, 1 -> 2 when it stops.
	profName  string
	profOut   profileCloser
	profState atomic.Int32
}

// profileCloser is the sink a bracketed CPU profile is written to;
// *os.File satisfies it.
type profileCloser interface {
	Write(p []byte) (int, error)
	Close() error
}

// spanInstruments caches the telemetry instruments one span name folds
// into, so the End path does one map lookup instead of two registry
// lookups.
type spanInstruments struct {
	seconds *telemetry.Gauge
	us      *telemetry.Histogram
}

// New returns a tracer holding up to limit completed spans; limit <= 0
// selects DefaultLimit.
func New(limit int) *Tracer {
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Tracer{
		epoch:  time.Now(),
		limit:  limit,
		byName: make(map[string]*Lane),
		open:   make(map[uint64]*Span),
	}
}

// SetMetrics folds every completed span into reg: the gauge
// "span.<name>_seconds" accumulates total wall-clock per span name and
// the histogram "span.<name>_us" the per-span duration distribution in
// microseconds. Both names satisfy telemetry.IsWallClock, so the
// compare/trend determinism gates exclude them like the other
// wall-clock metrics. Safe to call on a nil tracer.
func (t *Tracer) SetMetrics(reg *telemetry.Registry) {
	if t == nil || reg == nil {
		return
	}
	t.mu.Lock()
	t.reg = reg
	t.metrics = make(map[string]spanInstruments)
	t.mu.Unlock()
}

// ProfileSpan arms CPU-profile bracketing: the first span started with
// the given name starts a CPU profile into out, and that span's End
// stops the profile and closes out. Exactly one profile is captured per
// tracer. Safe to call on a nil tracer (the caller keeps ownership of
// out in that case).
func (t *Tracer) ProfileSpan(name string, out profileCloser) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.profName = name
	t.profOut = out
	t.mu.Unlock()
}

// StopProfile stops a CPU profile still running because its bracketing
// span never ended (an interrupted run); the shutdown drain calls it
// before the spans file is written. Safe on a nil tracer and when no
// profile was armed or it already stopped.
func (t *Tracer) StopProfile() {
	if t == nil {
		return
	}
	t.mu.Lock()
	out := t.profOut
	t.mu.Unlock()
	if t.profState.CompareAndSwap(1, 2) {
		pprof.StopCPUProfile()
		out.Close()
	} else if out != nil && t.profState.CompareAndSwap(0, 2) {
		// Armed but the named span never ran: release the sink so the
		// owner can clean up the empty file.
		out.Close()
	}
}

// Lane returns the lane registered under name, creating it if needed.
// A lane is a virtual thread in the recorded trace: spans started on it
// nest through its open-span stack, so it must be used by one goroutine
// at a time. A nil tracer returns a nil (no-op) lane.
func (t *Tracer) Lane(name string) *Lane { return t.lane(name, false) }

// WorkerLane is Lane for pool workers: the lane is additionally counted
// in the /spans per-worker utilization and shard-imbalance summary.
func (t *Tracer) WorkerLane(name string) *Lane { return t.lane(name, true) }

func (t *Tracer) lane(name string, worker bool) *Lane {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if l, ok := t.byName[name]; ok {
		return l
	}
	l := &Lane{t: t, id: len(t.lanes), name: name, worker: worker}
	t.lanes = append(t.lanes, l)
	t.byName[name] = l
	return l
}

// Dropped returns how many completed spans the bounded buffer has
// discarded.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Records returns a copy of the completed spans recorded so far, in
// completion order.
func (t *Tracer) Records() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Record(nil), t.recs...)
}

// Lane is one virtual thread of the trace. The nil *Lane is a valid
// no-op instrument. A lane's spans must start and end on one goroutine
// at a time (the per-lane stack that gives spans their parents is
// unsynchronized); distinct lanes are independent and concurrent.
type Lane struct {
	t      *Tracer
	id     int
	name   string
	worker bool

	stack []uint64 // open span ids, innermost last (owner goroutine only)

	// busy accumulates the lane's top-level span durations (nanoseconds,
	// atomically): the union of time the lane was doing anything, used
	// for the utilization summary. first/last bound the lane's active
	// window (nanoseconds since the tracer epoch, updated under t.mu).
	busy        atomic.Int64
	spans       atomic.Uint64
	first, last time.Duration
	hasFirst    bool
}

// Name returns the lane's registered name ("" for the nil lane).
func (l *Lane) Name() string {
	if l == nil {
		return ""
	}
	return l.name
}

// Span is one bracketed unit of work, created by Lane.Start and closed
// by End. The nil *Span is a valid no-op.
type Span struct {
	lane    *Lane
	id      uint64
	parent  uint64
	name    string
	start   time.Duration
	profOut profileCloser // non-nil while this span brackets the CPU profile
}

// Start opens a span on the lane. The span's parent is the lane's
// innermost open span, so sequential Start/End pairs on one lane record
// a tree. Returns nil (a no-op span) on the nil lane.
func (l *Lane) Start(name string) *Span {
	if l == nil {
		return nil
	}
	t := l.t
	s := &Span{
		lane:  l,
		id:    t.nextID.Add(1),
		name:  name,
		start: time.Since(t.epoch),
	}
	if n := len(l.stack); n > 0 {
		s.parent = l.stack[n-1]
	}
	l.stack = append(l.stack, s.id)

	t.mu.Lock()
	t.open[s.id] = s
	// CPU-profile bracketing: the first span carrying the armed name
	// starts the profile; its End stops it.
	if t.profName == name && t.profState.CompareAndSwap(0, 1) {
		if err := pprof.StartCPUProfile(t.profOut); err != nil {
			// Another profiler is running; give the bracket up.
			t.profState.Store(2)
			t.profOut.Close()
		} else {
			s.profOut = t.profOut
		}
	}
	t.mu.Unlock()
	return s
}

// End closes the span, recording it and folding its duration into the
// tracer's telemetry instruments when SetMetrics configured them. Ends
// must pair with Starts LIFO per lane. Safe on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	l := s.lane
	t := l.t
	end := time.Since(t.epoch)
	dur := end - s.start

	if s.profOut != nil && t.profState.CompareAndSwap(1, 2) {
		pprof.StopCPUProfile()
		s.profOut.Close()
	}

	// Pop the lane stack (tolerating a missed End below us rather than
	// corrupting later parentage).
	for n := len(l.stack); n > 0; n-- {
		if l.stack[n-1] == s.id {
			l.stack = l.stack[:n-1]
			break
		}
	}
	l.spans.Add(1)
	if s.parent == 0 {
		l.busy.Add(int64(dur))
	}

	t.mu.Lock()
	delete(t.open, s.id)
	if !l.hasFirst || s.start < l.first {
		l.first, l.hasFirst = s.start, true
	}
	if end > l.last {
		l.last = end
	}
	if len(t.recs) < t.limit {
		t.recs = append(t.recs, Record{
			ID: s.id, Parent: s.parent, Lane: l.id, Name: s.name,
			Start: s.start, Dur: dur,
		})
	} else {
		t.dropped++
	}
	reg, metrics := t.reg, t.metrics
	var inst spanInstruments
	if reg != nil {
		var ok bool
		if inst, ok = metrics[s.name]; !ok {
			inst = spanInstruments{
				seconds: reg.Gauge("span."+s.name+"_seconds",
					"total wall-clock seconds spent in "+s.name+" spans"),
				us: reg.Histogram("span."+s.name+"_us",
					"per-span duration of "+s.name+" in microseconds"),
			}
			metrics[s.name] = inst
		}
	}
	t.mu.Unlock()

	// The instrument updates are atomic; do them outside the tracer
	// lock so concurrent lanes do not serialize on the fold.
	inst.seconds.Add(dur.Seconds())
	inst.us.Observe(uint64(dur.Microseconds()))
}
