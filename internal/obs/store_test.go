package obs

import (
	"testing"
	"time"

	"onchip/internal/telemetry"
)

func metricsAt(v float64) []telemetry.Metric {
	return []telemetry.Metric{
		{Name: "b.counter", Type: "counter", Value: v},
		{Name: "a.gauge", Type: "gauge", Value: -v},
	}
}

func TestStoreSeries(t *testing.T) {
	s := NewStore(0)
	if _, ok := s.Series("b.counter"); ok {
		t.Fatal("empty store must report unknown metrics")
	}
	t0 := time.UnixMilli(1000)
	for i := 0; i < 3; i++ {
		s.Observe(t0.Add(time.Duration(i)*time.Second), metricsAt(float64(i)))
	}
	pts, ok := s.Series("b.counter")
	if !ok || len(pts) != 3 {
		t.Fatalf("series = %v (ok=%v), want 3 points", pts, ok)
	}
	if pts[0] != (Point{UnixMs: 1000, Value: 0}) || pts[2] != (Point{UnixMs: 3000, Value: 2}) {
		t.Errorf("points = %+v", pts)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "a.gauge" || names[1] != "b.counter" {
		t.Errorf("Names = %v, want sorted [a.gauge b.counter]", names)
	}
}

// TestStoreWindowEviction fills a small window past capacity and checks
// the ring keeps only the newest samples, oldest first.
func TestStoreWindowEviction(t *testing.T) {
	s := NewStore(4)
	t0 := time.UnixMilli(0)
	for i := 0; i < 10; i++ {
		s.Observe(t0.Add(time.Duration(i)*time.Millisecond), metricsAt(float64(i)))
	}
	pts, _ := s.Series("b.counter")
	if len(pts) != 4 {
		t.Fatalf("len = %d, want 4", len(pts))
	}
	for i, p := range pts {
		if want := float64(6 + i); p.Value != want {
			t.Errorf("point %d = %+v, want value %g", i, p, want)
		}
	}
}

// TestStoreSeriesSince pins the incremental-poll cursor: strictly-newer
// points only, empty (not missing) when the cursor is at the tip.
func TestStoreSeriesSince(t *testing.T) {
	s := NewStore(0)
	t0 := time.UnixMilli(1000)
	for i := 0; i < 5; i++ {
		s.Observe(t0.Add(time.Duration(i)*time.Second), metricsAt(float64(i)))
	}
	if _, ok := s.SeriesSince("nope", 0); ok {
		t.Error("unknown metric must report !ok")
	}
	pts, ok := s.SeriesSince("b.counter", 3000)
	if !ok || len(pts) != 2 || pts[0].UnixMs != 4000 || pts[1].UnixMs != 5000 {
		t.Fatalf("since 3000: %+v (ok=%v), want the 2 newer points", pts, ok)
	}
	if pts, _ := s.SeriesSince("b.counter", 0); len(pts) != 5 {
		t.Errorf("since 0 = %d points, want full window", len(pts))
	}
	if pts, _ := s.SeriesSince("b.counter", 5000); len(pts) != 0 {
		t.Errorf("cursor at tip = %+v, want empty increment", pts)
	}
}

// TestStoreMonotonicTimestamps steps the wall clock backwards between
// samples: stored timestamps must clamp, never go out of order.
func TestStoreMonotonicTimestamps(t *testing.T) {
	s := NewStore(0)
	t0 := time.UnixMilli(10_000)
	s.Observe(t0, metricsAt(0))
	s.Observe(t0.Add(-time.Hour), metricsAt(1)) // wall step backwards
	s.Observe(t0.Add(time.Second), metricsAt(2))
	pts, _ := s.Series("b.counter")
	want := []int64{10_000, 10_000, 11_000}
	for i, p := range pts {
		if p.UnixMs != want[i] {
			t.Fatalf("timestamps = %+v, want %v", pts, want)
		}
	}
}

func TestStoreNilSafe(t *testing.T) {
	var s *Store
	s.Observe(time.Now(), metricsAt(1))
	if _, ok := s.Series("x"); ok {
		t.Error("nil store must have no series")
	}
	if s.Names() != nil {
		t.Error("nil store must have no names")
	}
}
