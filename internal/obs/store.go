// Package obs is the reproduction's live observability plane: an
// embeddable HTTP server that exposes the telemetry layer of a running
// simulation (Prometheus metrics, JSON snapshots, a server-sent-events
// tail of the Monster-style stall-event ring, and design-space sweep
// progress), an in-run time-series store that samples registry
// snapshots into bounded per-metric windows, and a run-history
// comparator that diffs persisted end-of-run snapshots so CI can gate
// on simulator regressions.
//
// Where PR 1's telemetry was one-shot and in-process — capture during
// the run, dump at exit — this package is the serving side: the paper's
// Monster monitor watched the DECstation's pins live through a logic
// analyzer, and `-serve` gives every long-running binary the same
// property over HTTP.
package obs

import (
	"sort"
	"sync"
	"time"

	"onchip/internal/telemetry"
	"onchip/internal/tsdb"
)

// Point is one time-series sample.
type Point struct {
	UnixMs int64   `json:"t"` // sample time, milliseconds since the epoch
	Value  float64 `json:"v"`
}

// ring is a fixed-capacity append-only window of samples: once full,
// each append overwrites the oldest point, so memory stays bounded no
// matter how long the run (the zenodb retention-window idea scaled down
// to a single process).
type ring struct {
	buf   []Point
	start int // index of the oldest point once the ring has wrapped
	n     int // points currently held
}

func (r *ring) push(p Point) {
	if r.n < cap(r.buf) {
		r.buf = append(r.buf, p)
		r.n++
		return
	}
	r.buf[r.start] = p
	r.start = (r.start + 1) % cap(r.buf)
}

func (r *ring) points() []Point {
	out := make([]Point, 0, r.n)
	out = append(out, r.buf[r.start:]...)
	return append(out, r.buf[:r.start]...)
}

// DefaultSeriesDepth is the per-metric window when none is configured:
// at the default 250 ms sampling period it holds about four minutes of
// history, and costs 16 KB per metric.
const DefaultSeriesDepth = 1024

// Store holds one bounded sample window per metric, fed by periodic
// registry snapshots. Safe for concurrent samplers and readers.
//
// Sample timestamps are run-relative monotonic: the first Observe pins
// the wall clock and later ones advance by the monotonic difference
// from it (clamped non-decreasing), so a wall-clock step mid-run cannot
// produce out-of-order Point.UnixMs within a ring.
type Store struct {
	mu    sync.Mutex
	depth int
	clock tsdb.Clock
	rings map[string]*ring
}

// NewStore returns a store keeping the last depth samples per metric;
// depth <= 0 selects DefaultSeriesDepth.
func NewStore(depth int) *Store {
	if depth <= 0 {
		depth = DefaultSeriesDepth
	}
	return &Store{depth: depth, rings: make(map[string]*ring)}
}

// Observe appends one sample per metric at the given instant. Counter
// and gauge samples record the value; histogram samples record the mean
// (the per-bucket detail stays with /metrics and /snapshot).
func (s *Store) Observe(now time.Time, metrics []telemetry.Metric) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ms := s.clock.UnixMs(now)
	for _, m := range metrics {
		r, ok := s.rings[m.Name]
		if !ok {
			r = &ring{buf: make([]Point, 0, s.depth)}
			s.rings[m.Name] = r
		}
		r.push(Point{UnixMs: ms, Value: m.Value})
	}
}

// Series returns the sampled window for one metric, oldest first, and
// whether the metric has been seen at all.
func (s *Store) Series(name string) ([]Point, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.rings[name]
	if !ok {
		return nil, false
	}
	return r.points(), true
}

// SeriesSince returns the window points strictly newer than sinceMs,
// oldest first: the incremental-poll cursor behind /series?since=. A
// poller passes the last UnixMs it has seen and receives only the
// increment instead of the full window each scrape.
func (s *Store) SeriesSince(name string, sinceMs int64) ([]Point, bool) {
	pts, ok := s.Series(name)
	if !ok {
		return nil, false
	}
	// Points are in non-decreasing UnixMs order (the monotonic clock
	// guarantees it): binary search for the first point past the cursor.
	lo, hi := 0, len(pts)
	for lo < hi {
		mid := (lo + hi) / 2
		if pts[mid].UnixMs <= sinceMs {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return pts[lo:], true
}

// Names returns the metrics with at least one sample, sorted.
func (s *Store) Names() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.rings))
	for name := range s.rings {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
