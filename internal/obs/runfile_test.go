package obs

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"onchip/internal/telemetry"
)

func baselineRun() Run {
	return Run{
		Manifest: &telemetry.Manifest{Command: "memalloc history"},
		Metrics: []telemetry.Metric{
			{Name: "machine.cycles", Type: "counter", Value: 1_500_000},
			{Name: "machine.instructions", Type: "counter", Value: 1_000_000},
			{Name: "sweep.depth", Type: "gauge", Value: 2, Max: 8},
			{Name: "tlb.miss_cost", Type: "histogram", Value: 20, Count: 100, Sum: 2000},
		},
	}
}

func TestRunFileRoundTrip(t *testing.T) {
	id := RunID("memalloc", time.Date(2026, 8, 6, 15, 12, 4, 0, time.UTC))
	if id != "20260806T151204Z-memalloc" {
		t.Errorf("RunID = %q", id)
	}
	name := RunFileName(id)
	if name != "BENCH_20260806T151204Z-memalloc.json" {
		t.Errorf("RunFileName = %q", name)
	}
	path := filepath.Join(t.TempDir(), name)
	want := baselineRun()
	if err := WriteRunFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRunFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Manifest.Command != want.Manifest.Command || len(got.Metrics) != len(want.Metrics) {
		t.Fatalf("round trip: got %+v", got)
	}
	if !reflect.DeepEqual(got.Metrics, want.Metrics) {
		t.Errorf("metrics: got %+v, want %+v", got.Metrics, want.Metrics)
	}
	if got.Schema != RunSchemaVersion {
		t.Errorf("Schema = %d, want stamped %d", got.Schema, RunSchemaVersion)
	}
}

// TestRunFileSchemaVersions pins the compatibility contract: the
// current schema round-trips, legacy files without the field still
// load (as schema 0), and files from a newer binary are refused.
func TestRunFileSchemaVersions(t *testing.T) {
	dir := t.TempDir()

	explicit := filepath.Join(dir, "explicit.json")
	r := baselineRun()
	r.Schema = RunSchemaVersion
	if err := WriteRunFile(explicit, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRunFile(explicit)
	if err != nil || got.Schema != RunSchemaVersion {
		t.Fatalf("explicit schema round trip: %+v, %v", got.Schema, err)
	}

	legacy := filepath.Join(dir, "legacy.json")
	body := `{"manifest":{"command":"memalloc history"},"metrics":[{"name":"machine.cycles","type":"counter","value":10}]}`
	if err := os.WriteFile(legacy, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = ReadRunFile(legacy)
	if err != nil || got.Schema != 0 || len(got.Metrics) != 1 {
		t.Fatalf("legacy read: schema=%d metrics=%d err=%v", got.Schema, len(got.Metrics), err)
	}

	future := filepath.Join(dir, "future.json")
	if err := os.WriteFile(future, []byte(`{"schema":99,"metrics":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRunFile(future); err == nil || !strings.Contains(err.Error(), "newer") {
		t.Errorf("future schema error = %v, want refusal naming the version", err)
	}
}

func TestReadRunFileErrors(t *testing.T) {
	if _, err := ReadRunFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file must error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRunFile(bad); err == nil || !strings.Contains(err.Error(), "bad.json") {
		t.Errorf("corrupt file error = %v, want path-prefixed parse error", err)
	}
}

func TestCPI(t *testing.T) {
	r := baselineRun()
	cpi, ok := r.CPI()
	if !ok || cpi != 1.5 {
		t.Errorf("CPI = %g (ok=%v), want 1.5", cpi, ok)
	}
	if _, ok := (Run{}).CPI(); ok {
		t.Error("empty run must have no CPI")
	}
}

func TestCompareIdenticalRunsAgree(t *testing.T) {
	if d := Compare(baselineRun(), baselineRun(), 0.01); len(d) != 0 {
		t.Errorf("identical runs: deltas = %+v, want none", d)
	}
}

// TestCompareFlagsCPIRegression injects a 10% cycle regression and
// checks the comparator flags both the raw counter and the derived CPI.
func TestCompareFlagsCPIRegression(t *testing.T) {
	a, b := baselineRun(), baselineRun()
	b.Metrics[0].Value = 1_650_000 // machine.cycles +10%
	deltas := Compare(a, b, 0.01)
	var sawCycles, sawCPI bool
	for _, d := range deltas {
		switch d.Metric {
		case "machine.cycles":
			sawCycles = true
			if math.Abs(d.Rel-0.10) > 1e-9 {
				t.Errorf("cycles Rel = %g, want 0.10", d.Rel)
			}
		case "cpi (machine.cycles/instructions)":
			sawCPI = true
			if d.A != 1.5 || math.Abs(d.B-1.65) > 1e-9 {
				t.Errorf("cpi delta = %+v", d)
			}
		default:
			t.Errorf("unexpected delta %+v", d)
		}
	}
	if !sawCycles || !sawCPI {
		t.Errorf("deltas = %+v, want machine.cycles and derived CPI", deltas)
	}
	// The same regression is invisible at a 20% threshold.
	if d := Compare(a, b, 0.20); len(d) != 0 {
		t.Errorf("threshold 0.20: deltas = %+v, want none", d)
	}
}

// TestCompareSkipsWallClockMetrics pins the determinism contract: stage
// timing gauges (any metric named *_seconds*) vary run to run by nature
// and must never trip a zero-threshold comparison, in either direction
// and even when present in only one run.
func TestCompareSkipsWallClockMetrics(t *testing.T) {
	a, b := baselineRun(), baselineRun()
	a.Metrics = append(a.Metrics, telemetry.Metric{
		Name: "sweep.stage_seconds.model", Type: "gauge", Value: 4.31, Max: 4.31,
	})
	b.Metrics = append(b.Metrics, telemetry.Metric{
		Name: "sweep.stage_seconds.model", Type: "gauge", Value: 1.07, Max: 1.07,
	})
	a.Metrics = append(a.Metrics, telemetry.Metric{ // present in a only
		Name: "sweep.stage_seconds.search", Type: "gauge", Value: 0.02, Max: 0.02,
	})
	if d := Compare(a, b, 0); len(d) != 0 {
		t.Errorf("wall-clock metrics flagged: %+v", d)
	}
	// A non-timing drift alongside them is still caught (as the raw
	// counter plus the derived CPI), with no timing rows mixed in.
	b.Metrics[0].Value++
	d := Compare(a, b, 0)
	if len(d) != 2 {
		t.Fatalf("deltas = %+v, want machine.cycles and derived CPI only", d)
	}
	for _, delta := range d {
		if strings.Contains(delta.Metric, "_seconds") {
			t.Errorf("wall-clock metric leaked into deltas: %+v", delta)
		}
	}
}

// TestCompareSkipsSearchStrategyMetrics: the pruned search engine's
// arrangement gauges (search.pruned_*, search.bound_*) differ between a
// pruned and an exhaustive run whose rankings are byte-identical, and
// exist only in pruned runs -- neither a value drift nor one-sided
// presence may trip a zero-threshold determinism gate.
func TestCompareSkipsSearchStrategyMetrics(t *testing.T) {
	a, b := baselineRun(), baselineRun()
	a.Metrics = append(a.Metrics,
		telemetry.Metric{Name: "search.pruned_total_triples", Type: "gauge", Value: 240_000, Max: 240_000},
		telemetry.Metric{Name: "search.bound_cpi_triples", Type: "gauge", Value: 80_000, Max: 80_000},
	)
	b.Metrics = append(b.Metrics, // pruned run vs exhaustive run: a-only plus a drifted twin
		telemetry.Metric{Name: "search.pruned_total_triples", Type: "gauge", Value: 120_000, Max: 120_000},
	)
	if d := Compare(a, b, 0); len(d) != 0 {
		t.Errorf("search-strategy metrics flagged: %+v", d)
	}
	// A genuinely deterministic search metric still trips the gate.
	a.Metrics = append(a.Metrics, telemetry.Metric{Name: "search.configs_kept", Type: "counter", Value: 10})
	b.Metrics = append(b.Metrics, telemetry.Metric{Name: "search.configs_kept", Type: "counter", Value: 11})
	d := Compare(a, b, 0)
	if len(d) != 1 || d[0].Metric != "search.configs_kept" {
		t.Errorf("deltas = %+v, want search.configs_kept only", d)
	}
}

func TestComparePresenceAndFields(t *testing.T) {
	a, b := baselineRun(), baselineRun()
	b.Metrics = b.Metrics[:3]                       // drop the histogram
	b.Metrics[2].Max = 16                           // gauge max doubles
	b.Metrics = append(b.Metrics, telemetry.Metric{ // new metric in b only
		Name: "new.counter", Type: "counter", Value: 5,
	})
	deltas := Compare(a, b, 0.5)
	byKey := map[string]Delta{}
	for _, d := range deltas {
		byKey[d.Metric+"/"+d.Field] = d
	}
	if d, ok := byKey["tlb.miss_cost/presence"]; !ok || !math.IsInf(d.Rel, 1) {
		t.Errorf("missing-histogram presence delta = %+v (ok=%v)", d, ok)
	}
	if d, ok := byKey["new.counter/presence"]; !ok || d.B != 5 {
		t.Errorf("new-metric presence delta = %+v (ok=%v)", d, ok)
	}
	if d, ok := byKey["sweep.depth/max"]; !ok || d.Rel != 1 {
		t.Errorf("gauge max delta = %+v (ok=%v)", d, ok)
	}
	// Presence (+Inf) deltas sort before finite ones.
	if len(deltas) < 3 || !math.IsInf(deltas[0].Rel, 1) || !math.IsInf(deltas[1].Rel, 1) {
		t.Errorf("sort order = %+v", deltas)
	}
	if out := FormatDeltas(deltas); !strings.Contains(out, "sweep.depth") || !strings.Contains(out, "presence") {
		t.Errorf("FormatDeltas output missing rows:\n%s", out)
	}
}
