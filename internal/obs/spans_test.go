package obs

import (
	"encoding/json"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"onchip/internal/spans"
	"onchip/internal/telemetry"
)

// TestServerStartCloseNoGoroutineLeak pins the server's shutdown
// contract: repeated Start/Close cycles -- with the sampler ticking, a
// span tracer attached, and real HTTP requests served -- must return
// the process to its baseline goroutine count. Run under -race this
// also exercises the sampler's span recording against concurrent
// /spans summarization.
func TestServerStartCloseNoGoroutineLeak(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := spans.New(0)
	tr.SetMetrics(reg)

	base := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		srv := New(Config{Registry: reg, SampleEvery: time.Millisecond, Spans: tr})
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Get("http://" + addr + "/spans")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /spans: status %d", resp.StatusCode)
		}
		resp.Body.Close()
		time.Sleep(3 * time.Millisecond) // let the sampler record obs.sample spans
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
	}
	http.DefaultClient.CloseIdleConnections()

	// Goroutine teardown is asynchronous (Serve goroutines unwind after
	// Close returns); settle with a deadline instead of asserting
	// immediately. Allow +2 slack for runtime-internal goroutines; a
	// real leak here is >= 2 per cycle, which 3 cycles puts well past it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d at baseline, %d after 3 Start/Close cycles\n%s",
				base, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestHandleSpansNoTracer(t *testing.T) {
	srv, _, _ := testServer(t)
	if rec := get(t, srv.Handler(), "/spans"); rec.Code != http.StatusNotFound {
		t.Errorf("no tracer: code %d, want 404", rec.Code)
	}
}

func TestHandleSpans(t *testing.T) {
	tr := spans.New(0)
	outer := tr.Lane("main").Start("sweep.model")
	outer.End()
	worker := tr.WorkerLane("sweep/test.worker.0")
	job := worker.Start("sweep.job")
	job.End()

	srv := New(Config{Registry: telemetry.NewRegistry(), Spans: tr})
	t.Cleanup(func() { srv.Close() })
	h := srv.Handler()

	rec := get(t, h, "/spans")
	if rec.Code != http.StatusOK {
		t.Fatalf("/spans: code %d", rec.Code)
	}
	var sum spans.Summary
	if err := json.Unmarshal(rec.Body.Bytes(), &sum); err != nil {
		t.Fatalf("summary JSON: %v", err)
	}
	if sum.Recorded != 2 || len(sum.Phases) != 2 || len(sum.Lanes) != 2 {
		t.Errorf("summary: recorded %d, %d phases, %d lanes; want 2, 2, 2",
			sum.Recorded, len(sum.Phases), len(sum.Lanes))
	}
	workers := 0
	for _, l := range sum.Lanes {
		if l.Worker {
			workers++
			if l.UtilizationPct <= 0 && l.BusySeconds > 0 {
				t.Errorf("worker lane %s: busy %v but utilization %v", l.Name, l.BusySeconds, l.UtilizationPct)
			}
		}
	}
	if workers != 1 {
		t.Errorf("worker lanes: %d, want 1", workers)
	}

	rec = get(t, h, "/spans?format=chrome")
	if rec.Code != http.StatusOK {
		t.Fatalf("/spans?format=chrome: code %d", rec.Code)
	}
	if cd := rec.Header().Get("Content-Disposition"); !strings.Contains(cd, "spans.trace.json") {
		t.Errorf("Content-Disposition = %q", cd)
	}
	var trace struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &trace); err != nil {
		t.Fatalf("chrome trace JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Error("chrome trace: no events")
	}

	if rec := get(t, h, "/spans?format=bogus"); rec.Code != http.StatusBadRequest {
		t.Errorf("bogus format: code %d, want 400", rec.Code)
	}
}
