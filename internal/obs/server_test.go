package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"onchip/internal/search"
	"onchip/internal/telemetry"
	"onchip/internal/tsdb"
)

func testServer(t *testing.T) (*Server, *telemetry.Registry, *telemetry.Tracer) {
	t.Helper()
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(8)
	srv := New(Config{
		Registry:    reg,
		Tracer:      tr,
		Manifest:    &telemetry.Manifest{Command: "test", Labels: map[string]string{"suite": "obs"}},
		KindName:    func(k uint8) string { return "kind" },
		CompName:    func(c uint8) string { return "comp" },
		SampleEvery: time.Millisecond,
	})
	t.Cleanup(func() { srv.Close() })
	return srv, reg, tr
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

// NewHTTPServer must apply every hardening limit: a drip-fed or
// never-reading client is bounded by the timeouts, and oversized
// headers/bodies are rejected rather than buffered without limit.
func TestNewHTTPServerHardening(t *testing.T) {
	srv := NewHTTPServer(http.NotFoundHandler())
	if srv.ReadHeaderTimeout != ReadHeaderTimeout || srv.ReadTimeout != ReadTimeout ||
		srv.WriteTimeout != WriteTimeout || srv.IdleTimeout != IdleTimeout {
		t.Errorf("timeouts not applied: %+v", srv)
	}
	if srv.MaxHeaderBytes != MaxHeaderBytes {
		t.Errorf("MaxHeaderBytes = %d, want %d", srv.MaxHeaderBytes, MaxHeaderBytes)
	}

	// The body cap comes from http.MaxBytesHandler: a request body over
	// MaxBodyBytes fails with 413 instead of being read to completion.
	echo := NewHTTPServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := io.Copy(io.Discard, r.Body); err != nil {
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	ts := httptest.NewServer(echo.Handler)
	defer ts.Close()
	big := strings.NewReader(strings.Repeat("x", MaxBodyBytes+1))
	resp, err := http.Post(ts.URL, "application/octet-stream", big)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body got %d, want 413", resp.StatusCode)
	}
	small := strings.NewReader("ok")
	resp, err = http.Post(ts.URL, "application/octet-stream", small)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("small body got %d, want 200", resp.StatusCode)
	}
}

// The SSE stream must survive past WriteTimeout: handleEvents clears
// its write deadline, so a tail open longer than the server-wide limit
// keeps receiving events (here the limit is not actually waited out --
// the test just proves the deadline-clearing path runs end-to-end over
// a real connection).
func TestEventsStreamClearsWriteDeadline(t *testing.T) {
	srv, _, tr := testServer(t)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tr.Record(telemetry.Event{Addr: 1, Cycles: 1})
	resp, err := http.Get("http://" + addr + "/events?n=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "data:") {
		t.Errorf("no SSE data over hardened server: %q", body)
	}
}

func TestHandleIndexAndNotFound(t *testing.T) {
	srv, _, _ := testServer(t)
	h := srv.Handler()
	if rec := get(t, h, "/"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "/metrics") {
		t.Errorf("index: code %d, body %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/nope"); rec.Code != 404 {
		t.Errorf("unknown path: code %d, want 404", rec.Code)
	}
}

func TestHandleMetrics(t *testing.T) {
	srv, reg, _ := testServer(t)
	reg.Counter("machine.cycles", "").Add(42)
	rec := get(t, srv.Handler(), "/metrics")
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "machine_cycles 42\n") {
		t.Errorf("body = %q, want machine_cycles 42", rec.Body.String())
	}
}

func TestHandleSnapshot(t *testing.T) {
	srv, reg, _ := testServer(t)
	reg.Counter("refs", "").Add(7)
	rec := get(t, srv.Handler(), "/snapshot")
	var body struct {
		Manifest *telemetry.Manifest `json:"manifest"`
		Metrics  []telemetry.Metric  `json:"metrics"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Manifest == nil || body.Manifest.Command != "test" {
		t.Errorf("manifest = %+v", body.Manifest)
	}
	if len(body.Metrics) != 1 || body.Metrics[0].Name != "refs" || body.Metrics[0].Value != 7 {
		t.Errorf("metrics = %+v", body.Metrics)
	}
}

func TestHandleSweep(t *testing.T) {
	srv, _, _ := testServer(t)
	h := srv.Handler()
	rec := get(t, h, "/sweep")
	if !strings.Contains(rec.Body.String(), `"sweep": null`) {
		t.Errorf("before any progress: body = %q, want null sweep", rec.Body.String())
	}
	srv.ObserveSweep(search.Progress{Priced: 10, Total: 100, Kept: 4, Elapsed: 2 * time.Second, ETA: 18 * time.Second})
	rec = get(t, h, "/sweep")
	var body struct {
		Sweep *struct {
			Priced, Total, Kept int
			ElapsedSeconds      float64 `json:"elapsed_seconds"`
		} `json:"sweep"`
		UpdatedUnixMs int64 `json:"updated_unix_ms"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Sweep == nil || body.Sweep.Priced != 10 || body.Sweep.Total != 100 ||
		body.Sweep.Kept != 4 || body.Sweep.ElapsedSeconds != 2 || body.UpdatedUnixMs == 0 {
		t.Errorf("sweep body = %+v", body)
	}
}

func TestHandleSeries(t *testing.T) {
	srv, reg, _ := testServer(t)
	reg.Counter("refs", "").Add(3)
	srv.Sample(time.UnixMilli(5000))
	h := srv.Handler()

	rec := get(t, h, "/series")
	var names struct {
		Metrics []string `json:"metrics"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &names); err != nil {
		t.Fatal(err)
	}
	if len(names.Metrics) != 1 || names.Metrics[0] != "refs" {
		t.Errorf("names = %+v", names)
	}

	rec = get(t, h, "/series?metric=refs")
	var body struct {
		Metric string  `json:"metric"`
		Points []Point `json:"points"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Metric != "refs" || len(body.Points) != 1 || body.Points[0] != (Point{UnixMs: 5000, Value: 3}) {
		t.Errorf("series body = %+v", body)
	}

	if rec := get(t, h, "/series?metric=unknown"); rec.Code != 404 {
		t.Errorf("unknown metric: code %d, want 404", rec.Code)
	}
}

func TestHandleSeriesSinceCursor(t *testing.T) {
	srv, reg, _ := testServer(t)
	c := reg.Counter("refs", "")
	for i := 0; i < 3; i++ {
		c.Add(1)
		srv.Sample(time.UnixMilli(int64(1000 * (i + 1))))
	}
	h := srv.Handler()
	var body struct {
		Points []Point `json:"points"`
	}
	rec := get(t, h, "/series?metric=refs&since=1000")
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Points) != 2 || body.Points[0].UnixMs != 2000 {
		t.Fatalf("since cursor points = %+v", body.Points)
	}
	if rec := get(t, h, "/series?metric=refs&since=bogus"); rec.Code != 400 {
		t.Errorf("bad since: code %d, want 400", rec.Code)
	}
}

// TestHandleQuery exercises the durable /query path end to end: a
// server with a live tsdb appender serves its own (flushed-on-demand)
// run and a previously stored historical run from the same root.
func TestHandleQuery(t *testing.T) {
	root := t.TempDir()
	// A finished historical run.
	hist, err := tsdb.Create(root, "20260101T000000Z-old", tsdb.Meta{Command: "old"}, tsdb.Options{FlushEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	hist.Append(time.UnixMilli(500), []telemetry.Metric{{Name: "refs", Type: "counter", Value: 7}})
	if err := hist.Close(); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	live, err := tsdb.Create(root, "20260808T000000Z-live", tsdb.Meta{Command: "live"}, tsdb.Options{FlushEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	srv := New(Config{Registry: reg, TSDB: live, TSDBRoot: root})
	defer srv.Close()
	h := srv.Handler()

	reg.Counter("refs", "").Add(3)
	srv.Sample(time.UnixMilli(1000)) // buffered in the appender, not yet flushed

	// Bare /query lists runs and the live run's metrics.
	var listing struct {
		LiveRun string            `json:"live_run"`
		Runs    []tsdb.Meta       `json:"runs"`
		Metrics []tsdb.MetricInfo `json:"metrics"`
	}
	rec := get(t, h, "/query")
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if listing.LiveRun != "20260808T000000Z-live" || len(listing.Runs) != 2 ||
		len(listing.Metrics) != 1 || listing.Metrics[0].Name != "refs" {
		t.Fatalf("listing = %+v", listing)
	}

	// Live run: flush-on-read makes the buffered sample visible.
	var series tsdb.Series
	rec = get(t, h, "/query?metric=refs")
	if err := json.Unmarshal(rec.Body.Bytes(), &series); err != nil {
		t.Fatal(err)
	}
	if len(series.Points) != 1 || series.Points[0].Sum != 3 || series.Kind != "counter" {
		t.Fatalf("live series = %+v", series)
	}

	// Historical run, explicit selector.
	rec = get(t, h, "/query?metric=refs&run=20260101T000000Z-old")
	series = tsdb.Series{}
	if err := json.Unmarshal(rec.Body.Bytes(), &series); err != nil {
		t.Fatal(err)
	}
	if len(series.Points) != 1 || series.Points[0].Sum != 7 || series.RunID != "20260101T000000Z-old" {
		t.Fatalf("historical series = %+v", series)
	}

	if rec := get(t, h, "/query?metric=nope"); rec.Code != 404 {
		t.Errorf("unknown metric: code %d, want 404", rec.Code)
	}
	if rec := get(t, h, "/query?metric=refs&res=5s"); rec.Code != 400 {
		t.Errorf("bad res: code %d, want 400", rec.Code)
	}
	if rec := get(t, h, "/query?metric=refs&from=x"); rec.Code != 400 {
		t.Errorf("bad from: code %d, want 400", rec.Code)
	}
}

func TestHandleQueryNoTSDB(t *testing.T) {
	srv, _, _ := testServer(t)
	if rec := get(t, srv.Handler(), "/query"); rec.Code != 404 {
		t.Errorf("no tsdb attached: code %d, want 404", rec.Code)
	}
}

// TestHandleEventsSSE runs the server over a real socket (the SSE
// handler needs a streaming ResponseWriter) and tails the event ring.
func TestHandleEventsSSE(t *testing.T) {
	srv, _, tr := testServer(t)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ { // depth 8: seqs 4..11 survive
		tr.Record(telemetry.Event{Addr: uint32(i), Cycles: uint32(i)})
	}
	resp, err := http.Get("http://" + addr + "/events?n=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var ids, datas []string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			ids = append(ids, strings.TrimPrefix(line, "id: "))
		case strings.HasPrefix(line, "data: "):
			datas = append(datas, strings.TrimPrefix(line, "data: "))
		}
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	// ?n=3 closes after three events; the tail starts at the oldest
	// survivor (seq 4), not at the evicted seq 0.
	if len(ids) != 3 || ids[0] != "4" || ids[2] != "6" {
		t.Fatalf("ids = %v, want [4 5 6]", ids)
	}
	var ev struct {
		Type   string `json:"type"`
		Seq    uint64 `json:"seq"`
		Kind   string `json:"kind"`
		Comp   string `json:"comp"`
		Cycles uint32 `json:"cycles"`
	}
	if err := json.Unmarshal([]byte(datas[0]), &ev); err != nil {
		t.Fatalf("data %q: %v", datas[0], err)
	}
	if ev.Type != "event" || ev.Seq != 4 || ev.Kind != "kind" || ev.Comp != "comp" || ev.Cycles != 4 {
		t.Errorf("event = %+v", ev)
	}
}

func TestHandleEventsNoTracer(t *testing.T) {
	srv := New(Config{Registry: telemetry.NewRegistry()})
	defer srv.Close()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("code = %d, want 404", resp.StatusCode)
	}
}
