package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"onchip/internal/report"
	"onchip/internal/telemetry"
)

// RunSchemaVersion is the run-file schema this package writes. Readers
// accept 0 (legacy files predating the field) through the current
// version and reject newer files instead of silently misreading them.
const RunSchemaVersion = 1

// Run is a persisted end-of-run snapshot: the manifest identifying the
// run and every collected metric. `memalloc history` writes one as
// BENCH_<runid>.json; `memalloc compare` diffs two.
type Run struct {
	Schema   int                 `json:"schema,omitempty"`
	Manifest *telemetry.Manifest `json:"manifest,omitempty"`
	Metrics  []telemetry.Metric  `json:"metrics"`
}

// RunID names a run file: UTC timestamp plus the producing command,
// e.g. "20260806T151204Z-memalloc".
func RunID(command string, t time.Time) string {
	return t.UTC().Format("20060102T150405Z") + "-" + command
}

// RunFileName is the conventional file name for a run snapshot.
func RunFileName(runID string) string {
	return "BENCH_" + runID + ".json"
}

// WriteRunFile persists the run as indented JSON, stamping the current
// schema version when the caller left it zero.
func WriteRunFile(path string, r Run) error {
	if r.Schema == 0 {
		r.Schema = RunSchemaVersion
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadRunFile loads a run snapshot written by WriteRunFile. Legacy
// files without a schema field read as schema 0; files written by a
// newer binary are rejected.
func ReadRunFile(path string) (Run, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Run{}, err
	}
	var r Run
	if err := json.Unmarshal(data, &r); err != nil {
		return Run{}, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema > RunSchemaVersion {
		return Run{}, fmt.Errorf("%s: run-file schema %d is newer than this binary supports (%d)",
			path, r.Schema, RunSchemaVersion)
	}
	return r, nil
}

// CPI derives cycles-per-instruction from the machine counters, when
// the run collected them.
func (r Run) CPI() (float64, bool) {
	var cycles, instrs float64
	for _, m := range r.Metrics {
		switch m.Name {
		case "machine.cycles":
			cycles = m.Value
		case "machine.instructions":
			instrs = m.Value
		}
	}
	if instrs == 0 {
		return 0, false
	}
	return cycles / instrs, true
}

// Delta is one metric field that moved between two runs.
type Delta struct {
	Metric string  // metric name, or "cpi (machine.cycles/instructions)" for the derived ratio
	Field  string  // "value", "max", "count", "sum" or "presence"
	A, B   float64 // the two runs' values
	Rel    float64 // |B-A| / |A|; +Inf when A is 0 or the metric is one-sided
}

// Compare diffs two runs and returns every counter, gauge, histogram or
// derived-CPI delta whose relative change exceeds threshold, largest
// first. Metrics present in only one run are always flagged (Field
// "presence"). An empty result means the runs agree to within the
// threshold — the determinism check CI relies on.
//
// Wall-clock metrics (per telemetry.IsWallClock: names containing
// "_seconds" such as sweep.stage_seconds.*, and the span.* duration
// folds) are machine- and load-dependent by nature, so they are
// excluded from the comparison entirely, as are the pruned search
// engine's arrangement counters (per telemetry.IsSearchStrategy:
// search.pruned_*, search.bound_*), which differ between strategies
// that produce byte-identical rankings. Everything else the simulators
// publish is a deterministic function of the inputs; the tsdb trend
// gate applies the same predicates.
func Compare(a, b Run, threshold float64) []Delta {
	am := indexMetrics(a.Metrics)
	bm := indexMetrics(b.Metrics)
	names := make(map[string]bool, len(am)+len(bm))
	for n := range am {
		names[n] = true
	}
	for n := range bm {
		names[n] = true
	}

	var out []Delta
	flag := func(name, field string, va, vb float64) {
		if d := rel(va, vb); d > threshold {
			out = append(out, Delta{Metric: name, Field: field, A: va, B: vb, Rel: d})
		}
	}
	for name := range names {
		if telemetry.IsWallClock(name) || telemetry.IsSearchStrategy(name) {
			continue
		}
		ma, oka := am[name]
		mb, okb := bm[name]
		if !oka || !okb {
			var va, vb float64
			if oka {
				va = ma.Value
			}
			if okb {
				vb = mb.Value
			}
			out = append(out, Delta{Metric: name, Field: "presence", A: va, B: vb, Rel: math.Inf(1)})
			continue
		}
		flag(name, "value", ma.Value, mb.Value)
		if ma.Type == "gauge" {
			flag(name, "max", ma.Max, mb.Max)
		}
		if ma.Type == "histogram" {
			flag(name, "count", float64(ma.Count), float64(mb.Count))
			flag(name, "sum", float64(ma.Sum), float64(mb.Sum))
		}
	}
	if ca, oka := a.CPI(); oka {
		if cb, okb := b.CPI(); okb {
			flag("cpi (machine.cycles/instructions)", "value", ca, cb)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rel != out[j].Rel {
			return out[i].Rel > out[j].Rel
		}
		if out[i].Metric != out[j].Metric {
			return out[i].Metric < out[j].Metric
		}
		return out[i].Field < out[j].Field
	})
	return out
}

func indexMetrics(metrics []telemetry.Metric) map[string]telemetry.Metric {
	m := make(map[string]telemetry.Metric, len(metrics))
	for _, x := range metrics {
		m[x.Name] = x
	}
	return m
}

// rel is the relative change from a to b: 0 when both are 0, +Inf when
// only a is 0.
func rel(a, b float64) float64 {
	if a == b {
		return 0
	}
	if a == 0 {
		return math.Inf(1)
	}
	return math.Abs(b-a) / math.Abs(a)
}

// FormatDeltas renders a comparison as the repo's standard table.
func FormatDeltas(deltas []Delta) string {
	t := report.NewTable("Run comparison: metrics beyond threshold",
		"Metric", "Field", "A", "B", "Delta")
	for _, d := range deltas {
		t.Row(d.Metric, d.Field,
			fmt.Sprintf("%g", d.A), fmt.Sprintf("%g", d.B),
			fmt.Sprintf("%+.2f%%", 100*(d.Rel)*sign(d.B-d.A)))
	}
	return t.String()
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}
