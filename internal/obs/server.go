package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"onchip/internal/search"
	"onchip/internal/spans"
	"onchip/internal/telemetry"
	"onchip/internal/tsdb"
)

// Config assembles a Server around a run's telemetry.
type Config struct {
	// Registry is the run's metric registry; /metrics, /snapshot and
	// the /series sampler read it. Required.
	Registry *telemetry.Registry
	// Tracer, when non-nil, is the stall-event ring tailed by /events.
	Tracer *telemetry.Tracer
	// Manifest, when non-nil, identifies the run in /snapshot output.
	Manifest *telemetry.Manifest
	// KindName and CompName translate event codes for the /events
	// stream (the machine package supplies machine.KindName and
	// machine.CompName); nil funcs emit raw numbers.
	KindName, CompName func(uint8) string
	// SampleEvery is the series sampling period; 0 selects 250 ms.
	SampleEvery time.Duration
	// SeriesDepth is the per-metric sample window; 0 selects
	// DefaultSeriesDepth.
	SeriesDepth int
	// TSDB, when non-nil, receives every series sample the in-memory
	// store does, making the run's series durable; /query serves it
	// live (flush-then-read, so reads observe everything appended).
	// The server does not close it -- its owner does, via the
	// lifecycle flush-on-shutdown hook.
	TSDB *tsdb.Appender
	// TSDBRoot, when non-empty, is the store root /query serves
	// historical runs from (usually the directory TSDB writes under).
	TSDBRoot string
	// Spans, when non-nil, is the run's execution-span tracer: /spans
	// serves its live summary (per-phase self-time, per-worker
	// utilization, shard imbalance, open spans) or, with ?format=chrome,
	// the full Chrome trace-event JSON. The sampler also records each of
	// its own scrapes as an "obs.sample" span on the "obs" lane.
	Spans *spans.Tracer
}

// HTTP hardening limits shared by every embedded server in the
// repository (the observability plane here, and the advisor daemon).
// Without them a slow or malicious client can hold a connection -- and
// the goroutine serving it -- open indefinitely: drip-feeding a request
// header, never reading the response, or posting an unbounded body.
const (
	// ReadHeaderTimeout bounds how long a client may take to send the
	// request headers (the classic slowloris hold).
	ReadHeaderTimeout = 5 * time.Second
	// ReadTimeout bounds reading the entire request, body included.
	ReadTimeout = 30 * time.Second
	// WriteTimeout bounds writing the response. Handlers that
	// legitimately stream longer (the /events SSE tail, a long advisor
	// computation) extend their own deadline via ExtendWriteDeadline.
	WriteTimeout = 30 * time.Second
	// IdleTimeout reaps keep-alive connections with no request in
	// flight.
	IdleTimeout = 120 * time.Second
	// MaxHeaderBytes caps the request header size.
	MaxHeaderBytes = 16 << 10
	// MaxBodyBytes caps any request body; requests past it fail with
	// 413 via http.MaxBytesHandler.
	MaxBodyBytes = 1 << 20
)

// NewHTTPServer returns an *http.Server with the shared hardening
// limits applied around h: header/read/write/idle timeouts and
// header/body size caps. Every listener in the repository goes through
// here so the limits stay in one place.
func NewHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           http.MaxBytesHandler(h, MaxBodyBytes),
		ReadHeaderTimeout: ReadHeaderTimeout,
		ReadTimeout:       ReadTimeout,
		WriteTimeout:      WriteTimeout,
		IdleTimeout:       IdleTimeout,
		MaxHeaderBytes:    MaxHeaderBytes,
	}
}

// ExtendWriteDeadline pushes the connection's write deadline d into
// the future (zero d clears it entirely), letting a handler that
// legitimately outlives WriteTimeout -- an SSE stream, a long advisor
// computation -- keep its connection while every other response stays
// bounded. Unsupported writers (test recorders) are a no-op.
func ExtendWriteDeadline(w http.ResponseWriter, d time.Duration) {
	rc := http.NewResponseController(w)
	var t time.Time
	if d > 0 {
		t = time.Now().Add(d)
	}
	rc.SetWriteDeadline(t) // best effort; ErrNotSupported on recorders
}

// Server is the embeddable observability endpoint. Create one with New,
// mount Handler on any mux or call Start to listen-and-serve, feed
// sweep progress through ObserveSweep, and Close when the run ends.
type Server struct {
	cfg   Config
	store *Store

	mu      sync.Mutex
	sweep   search.Progress
	sweepOK bool
	sweepAt time.Time
	ckpt    checkpointState

	closeOnce sync.Once
	done      chan struct{}
	httpSrv   *http.Server

	sampleMu  sync.Mutex
	sampleBuf []telemetry.Metric // reused across scrapes (SnapshotAppend)
	sampling  bool               // a sampler goroutine is running
}

// New returns a server over the given telemetry. It does not listen
// until Start is called; Handler can instead be mounted on an existing
// mux (the tests do, via httptest).
func New(cfg Config) *Server {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 250 * time.Millisecond
	}
	return &Server{
		cfg:   cfg,
		store: NewStore(cfg.SeriesDepth),
		done:  make(chan struct{}),
	}
}

// Store exposes the time-series store (for tests and direct sampling).
func (s *Server) Store() *Store { return s.store }

// ObserveSweep records the latest design-space enumeration progress for
// /sweep. It matches the experiments.Options.SweepObserver signature.
func (s *Server) ObserveSweep(p search.Progress) {
	s.mu.Lock()
	s.sweep, s.sweepOK, s.sweepAt = p, true, time.Now()
	s.mu.Unlock()
}

// checkpointState is the /sweep view of the latest persisted sweep
// checkpoint: enough to see that fault tolerance is live and how much
// of the enumeration an interrupt would preserve.
type checkpointState struct {
	Label     string `json:"label"`
	SpaceSig  string `json:"space_sig"`
	PairsDone int    `json:"pairs_done"`
	Priced    int    `json:"priced"`
	Kept      int    `json:"kept"`
	Written   uint64 `json:"written"` // checkpoints persisted this run
}

// ObserveCheckpoint records the latest persisted sweep checkpoint for
// /sweep. It matches the experiments.Options.CheckpointObserver
// signature.
func (s *Server) ObserveCheckpoint(cp *search.Checkpoint) {
	s.mu.Lock()
	s.ckpt = checkpointState{
		Label:     cp.Label,
		SpaceSig:  cp.SpaceSig,
		PairsDone: cp.PairsDone,
		Priced:    cp.Priced,
		Kept:      len(cp.Kept),
		Written:   s.ckpt.Written + 1,
	}
	s.mu.Unlock()
}

// Sample takes one immediate series sample from the registry, outside
// the ticker cadence (Start samples once up front so /series answers
// before the first tick). The same scrape feeds the in-memory window
// and, when configured, the durable tsdb appender; the snapshot buffer
// is reused across scrapes, so a steady-state sample allocates little.
func (s *Server) Sample(now time.Time) {
	s.sampleMu.Lock()
	defer s.sampleMu.Unlock()
	s.sampleBuf = s.cfg.Registry.SnapshotAppend(s.sampleBuf[:0])
	s.store.Observe(now, s.sampleBuf)
	s.cfg.TSDB.Append(now, s.sampleBuf)
}

// Start listens on addr (":6060", "localhost:0", ...), serves the
// observability endpoints, and starts the series sampler. It returns
// the bound address, which differs from addr when a kernel-assigned
// port was requested.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.httpSrv = NewHTTPServer(s.Handler())
	go s.httpSrv.Serve(ln)
	s.StartSampler()
	return ln.Addr().String(), nil
}

// StartSampler starts the periodic series sampler without serving
// HTTP: what a run with -tsdb but no -serve uses to persist its series.
// Safe to call once; Start calls it itself.
func (s *Server) StartSampler() {
	s.sampleMu.Lock()
	already := s.sampling
	s.sampling = true
	s.sampleMu.Unlock()
	if already {
		return
	}
	s.Sample(time.Now())
	go s.sampleLoop()
}

// Close stops the sampler and the HTTP server, severing any open event
// streams. One final sample is taken first, so the series (and the
// tsdb appender, when attached) capture the end-of-run totals that
// land after the last tick -- machine.FlushMetrics runs at run end.
// Safe to call more than once. Close does not close the tsdb appender;
// its owner drains it afterwards via the lifecycle shutdown hook.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		s.Sample(time.Now())
		close(s.done)
		if s.httpSrv != nil {
			err = s.httpSrv.Close()
		}
	})
	return err
}

func (s *Server) sampleLoop() {
	lane := s.cfg.Spans.Lane("obs")
	tick := time.NewTicker(s.cfg.SampleEvery)
	defer tick.Stop()
	for {
		select {
		case <-s.done:
			return
		case now := <-tick.C:
			span := lane.Start("obs.sample")
			s.Sample(now)
			span.End()
		}
	}
}

// Handler returns the observability mux:
//
//	GET /          endpoint index
//	GET /metrics   Prometheus text exposition of the registry
//	GET /snapshot  manifest + full metric snapshot as JSON
//	GET /events    server-sent-events tail of the stall-event ring
//	GET /sweep     latest design-space enumeration progress
//	GET /series    sampled time series (?metric=NAME&since=MS; bare lists names)
//	GET /query     durable tsdb series, live and historical
//	               (?metric=NAME&res=raw|10s|1m&from=MS&to=MS&run=ID)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/sweep", s.handleSweep)
	mux.HandleFunc("/series", s.handleSeries)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/spans", s.handleSpans)
	return mux
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `onchip observability plane
  /metrics   Prometheus text exposition
  /snapshot  run manifest + metric snapshot (JSON)
  /events    stall-event ring tail (SSE; ?since=SEQ, ?n=MAX)
  /sweep     design-space enumeration progress (JSON)
  /series    sampled time series (?metric=NAME, ?since=UNIX_MS cursor; bare lists names)
  /query     durable tsdb series, live + historical runs
             (?metric=NAME, ?res=raw|10s|1m, ?from=MS, ?to=MS, ?run=ID; bare lists runs)
  /spans     execution-span summary: phase self-time, worker utilization,
             shard imbalance, open spans (?format=chrome downloads the trace)
`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	telemetry.WritePrometheus(w, s.cfg.Registry.Snapshot())
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, struct {
		Manifest *telemetry.Manifest `json:"manifest,omitempty"`
		Metrics  []telemetry.Metric  `json:"metrics"`
	}{s.cfg.Manifest, s.cfg.Registry.Snapshot()})
}

func (s *Server) handleSweep(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	p, ok, at := s.sweep, s.sweepOK, s.sweepAt
	ckpt := s.ckpt
	s.mu.Unlock()
	var body struct {
		Sweep         *search.Progress `json:"sweep"`
		UpdatedUnixMs int64            `json:"updated_unix_ms,omitempty"`
		Checkpoint    *checkpointState `json:"checkpoint,omitempty"`
	}
	if ok {
		body.Sweep, body.UpdatedUnixMs = &p, at.UnixMilli()
	}
	if ckpt.Written > 0 {
		body.Checkpoint = &ckpt
	}
	writeJSON(w, body)
}

func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	name := q.Get("metric")
	if name == "" {
		writeJSON(w, struct {
			Metrics []string `json:"metrics"`
		}{s.store.Names()})
		return
	}
	var since int64
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
			return
		}
		since = n
	}
	// The since cursor turns polling incremental: a scraper passes the
	// last Point.UnixMs it saw and receives only newer samples instead
	// of the full window every time.
	points, ok := s.store.SeriesSince(name, since)
	if !ok {
		http.Error(w, fmt.Sprintf("no samples for metric %q", name), http.StatusNotFound)
		return
	}
	writeJSON(w, struct {
		Metric string  `json:"metric"`
		Points []Point `json:"points"`
	}{name, points})
}

// handleQuery serves the durable time-series store: any run persisted
// under the tsdb root, including the live one (whose buffered samples
// are flushed first so the response is current to the last scrape).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.cfg.TSDB == nil && s.cfg.TSDBRoot == "" {
		http.Error(w, "no tsdb attached to this run (start with -tsdb DIR)", http.StatusNotFound)
		return
	}
	root := s.cfg.TSDBRoot
	liveRun := ""
	if s.cfg.TSDB != nil {
		liveRun = filepath.Base(s.cfg.TSDB.Dir())
		if root == "" {
			root = filepath.Dir(s.cfg.TSDB.Dir())
		}
	}
	db := tsdb.Open(root)
	q := r.URL.Query()
	metric := q.Get("metric")
	runID := q.Get("run")
	if runID == "" {
		runID = liveRun
	}
	if metric == "" {
		// Bare /query lists what is queryable: every stored run, plus
		// the selected run's metrics when one is resolvable.
		runs, err := db.Runs()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		var metrics []tsdb.MetricInfo
		if runID != "" {
			s.flushLive(runID, liveRun)
			metrics, _ = db.Metrics(runID)
		}
		writeJSON(w, struct {
			LiveRun string            `json:"live_run,omitempty"`
			Runs    []tsdb.Meta       `json:"runs"`
			Metrics []tsdb.MetricInfo `json:"metrics,omitempty"`
		}{liveRun, runs, metrics})
		return
	}
	if runID == "" {
		http.Error(w, "no run selected and no live tsdb run (pass ?run=ID)", http.StatusBadRequest)
		return
	}
	res := tsdb.Raw
	if v := q.Get("res"); v != "" {
		var err error
		if res, err = tsdb.ParseRes(v); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	var fromMs, toMs int64
	for _, p := range []struct {
		key string
		dst *int64
	}{{"from", &fromMs}, {"to", &toMs}} {
		if v := q.Get(p.key); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				http.Error(w, "bad "+p.key+": "+err.Error(), http.StatusBadRequest)
				return
			}
			*p.dst = n
		}
	}
	s.flushLive(runID, liveRun)
	series, err := db.Query(runID, metric, res, fromMs, toMs)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, tsdb.ErrNoSeries) {
			code = http.StatusNotFound
		}
		http.Error(w, err.Error(), code)
		return
	}
	writeJSON(w, series)
}

// handleSpans serves the execution-span tracer: the default JSON body
// is the live Summary (per-phase total/self time, per-lane utilization
// with the group pool's worker lanes, shard-imbalance ratio, and the
// open-span tree); ?format=chrome streams the full Chrome trace-event
// JSON for Perfetto, current to the moment of the request.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Spans == nil {
		http.Error(w, "no span tracer attached to this run (start with -spans FILE or -serve)", http.StatusNotFound)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "summary":
		writeJSON(w, s.cfg.Spans.Summarize())
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="spans.trace.json"`)
		s.cfg.Spans.WriteChromeTrace(w)
	default:
		http.Error(w, fmt.Sprintf("unknown format %q (want summary or chrome)", format), http.StatusBadRequest)
	}
}

// flushLive pushes the live appender's buffer to disk before a read of
// the live run, so /query reflects everything sampled so far.
func (s *Server) flushLive(runID, liveRun string) {
	if s.cfg.TSDB != nil && runID == liveRun {
		s.cfg.TSDB.Flush()
	}
}

// handleEvents streams the stall-event ring as server-sent events: each
// event is one `data:` line of the same JSON WriteJSONL emits, with the
// event sequence number as the SSE id. ?since=SEQ starts the tail at a
// sequence number (default 0 replays the captured window first);
// ?n=MAX closes the stream after MAX events, for curl-friendly peeks.
// A slow consumer skips evicted events rather than stalling the
// simulator.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	if s.cfg.Tracer == nil {
		http.Error(w, "no event ring attached to this run", http.StatusNotFound)
		return
	}
	var since uint64
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
			return
		}
		since = n
	}
	max := -1
	if v := r.URL.Query().Get("n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		max = n
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	// The stream outlives the server's WriteTimeout by design; clear
	// the deadline for this connection only. The client's departure
	// still ends the handler via r.Context().
	ExtendWriteDeadline(w, 0)
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	poll := time.NewTicker(s.cfg.SampleEvery)
	defer poll.Stop()
	var line []byte
	sent := 0
	for {
		evs, next := s.cfg.Tracer.EventsSince(since)
		since = next
		for _, ev := range evs {
			line = append(line[:0], "id: "...)
			line = strconv.AppendUint(line, ev.Seq, 10)
			line = append(line, "\ndata: "...)
			line = ev.AppendJSON(line, s.cfg.KindName, s.cfg.CompName)
			line = append(line, '\n', '\n')
			if _, err := w.Write(line); err != nil {
				return
			}
			sent++
			if max >= 0 && sent >= max {
				flusher.Flush()
				return
			}
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		case <-poll.C:
		}
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
