// Package experiments reproduces every table and figure of the paper's
// evaluation: each experiment is a named harness that runs the required
// models and simulations and renders the same rows or series the paper
// reports. See DESIGN.md section 4 for the experiment index and
// EXPERIMENTS.md for paper-versus-measured results.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"onchip/internal/faultinject"
	"onchip/internal/search"
	"onchip/internal/spans"
	"onchip/internal/telemetry"
	"onchip/internal/tracecache"
)

// Options controls experiment scale and observability.
type Options struct {
	// Refs is the number of references to simulate per workload/OS
	// run. Zero selects the experiment's default (a few million).
	Refs int
	// Metrics, when non-nil, receives run metrics from instrumented
	// experiments: machine stall counters and component stats from
	// monitor-based runs, sweep and enumeration counters from the
	// design-space searches. Nil (the default) keeps every experiment
	// byte-identical to the uninstrumented output.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, captures the machine stall-event window of
	// experiments that run a timing machine (the Monster capture
	// window).
	Tracer *telemetry.Tracer
	// Spans, when non-nil, records hierarchical execution spans across
	// the pipeline: per-workload generation phases, per-worker group-pool
	// jobs, search enumeration, and checkpoint writes. Nil (the default)
	// records nothing and keeps the hot paths untouched.
	Spans *spans.Tracer
	// Progress, when non-nil, receives live progress lines (one per
	// write, newline-terminated): suite measurements as they finish and
	// design-space sweep/enumeration progress with ETA.
	Progress io.Writer
	// SweepObserver, when non-nil, receives structured design-space
	// enumeration progress (the same snapshots Progress renders as
	// text). The observability server installs itself here so a sweep
	// in flight can be watched over GET /sweep.
	SweepObserver func(search.Progress)
	// Context, when non-nil, makes long-running experiments
	// cancellable: sweep workers stop at the next stage boundary, the
	// enumeration loop stops between pricing steps (persisting a
	// checkpoint when CheckpointPath is set), and Run returns the
	// context's error. Nil means run to completion.
	Context context.Context
	// CheckpointPath, when non-empty, makes the allocation experiments
	// (table6/table7) persist enumeration state there periodically and
	// on cancellation; see search.WithCheckpoint.
	CheckpointPath string
	// ResumePath, when non-empty, seeds the allocation experiments from
	// a checkpoint previously written to CheckpointPath (or any
	// compatible file): completed work is skipped and the final ranking
	// is identical to an uninterrupted run.
	ResumePath string
	// CheckpointObserver, when non-nil, is invoked after every
	// checkpoint write (the observability server installs itself here).
	CheckpointObserver func(*search.Checkpoint)
	// FaultInjector, when non-nil, injects worker panics into the
	// model-building sweeps (deterministically, per its seed) so the
	// recovery paths are exercised; see internal/faultinject.
	FaultInjector *faultinject.Injector
	// FaultRetries is the number of times a panicked workload sweep is
	// retried before it is marked failed and excluded from the model.
	// Zero means no retries.
	FaultRetries int
	// TraceCache, when non-nil, short-circuits workload reference
	// generation in the model-building sweeps: a warm run replays the
	// compressed on-disk stream (byte-identical to a live generation, so
	// the tables do not change), a cold run records it. Corrupt entries
	// fall back to regeneration.
	TraceCache *tracecache.Cache
	// Shards forces the sweep engine's per-group set-shard count
	// (rounded down to a power of two; each simulator group additionally
	// clamps to its set count). Zero picks an automatic count from the
	// worker-pool width. Sharding never changes results, only how the
	// simulation parallelizes.
	Shards int
	// SearchStrategy selects how the allocation experiments (table6,
	// table7) enumerate the design space: "exhaustive" (or empty, the
	// default) prices every triple; "pruned" runs the Pareto /
	// branch-and-bound engine, which returns a byte-identical top-10
	// while pricing a small fraction of the space. Pruned search does
	// not compose with CheckpointPath/ResumePath.
	SearchStrategy string
	// SpacePreset selects the design space the allocation experiments
	// search: "table5" (or empty, the default) is the paper's grid;
	// "big" is the >=1M-triple production space (search.Big()). The
	// simulators still sweep only the Table 5 grid -- off-grid
	// configurations are priced by the missmodel power-law extension of
	// the measured model.
	SpacePreset string
}

// ctx returns the experiment context, never nil.
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

func (o Options) refs(def int) int {
	if o.Refs > 0 {
		return o.Refs
	}
	return def
}

// searchPruned resolves the SearchStrategy field.
func (o Options) searchPruned() (bool, error) {
	switch o.SearchStrategy {
	case "", "exhaustive":
		return false, nil
	case "pruned":
		return true, nil
	}
	return false, fmt.Errorf("unknown search strategy %q (want exhaustive or pruned)", o.SearchStrategy)
}

// bigSpace resolves the SpacePreset field.
func (o Options) bigSpace() (bool, error) {
	switch o.SpacePreset {
	case "", "table5":
		return false, nil
	case "big":
		return true, nil
	}
	return false, fmt.Errorf("unknown space preset %q (want table5 or big)", o.SpacePreset)
}

// progressf emits one progress line when a Progress sink is installed.
func (o Options) progressf(format string, args ...any) {
	if o.Progress == nil {
		return
	}
	fmt.Fprintf(o.Progress, format+"\n", args...)
}

// Result is a rendered experiment.
type Result struct {
	ID    string
	Title string
	// Text is the rendered tables/charts.
	Text string
	// Notes record observations, including paper-vs-measured remarks.
	Notes []string
}

// runner produces a result for the given options.
type runner struct {
	title string
	run   func(Options) (Result, error)
}

var registry = map[string]runner{}

func register(id, title string, run func(Options) (Result, error)) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = runner{title: title, run: run}
}

// IDs returns the registered experiment identifiers, sorted.
func IDs() []string {
	var ids []string
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns the experiment's one-line description.
func Title(id string) string {
	if r, ok := registry[id]; ok {
		return r.title
	}
	return ""
}

// Run executes the experiment with the given options.
func Run(id string, opt Options) (Result, error) {
	r, ok := registry[id]
	if !ok {
		return Result{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	if err := opt.ctx().Err(); err != nil {
		return Result{}, fmt.Errorf("experiments: %s: %w", id, err)
	}
	res, err := r.run(opt)
	if err != nil {
		return Result{}, fmt.Errorf("experiments: %s: %w", id, err)
	}
	res.ID = id
	res.Title = r.title
	return res, nil
}
