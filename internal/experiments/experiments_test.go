package experiments

import (
	"strings"
	"testing"
)

// small keeps test runtimes down; the default sizes are for cmd/memalloc
// and the benchmarks.
var small = Options{Refs: 120_000}

func TestRegistryComplete(t *testing.T) {
	want := []string{"ext-atime", "ext-l2", "ext-multi", "ext-multiapi", "ext-ool", "ext-prefetch", "ext-servers", "ext-unified", "ext-wbuf", "ext-wpolicy",
		"fig10", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig9d",
		"paths", "sampling", "table1", "table3", "table4", "table6", "table7"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	for _, id := range got {
		if Title(id) == "" {
			t.Errorf("%s has no title", id)
		}
	}
	if Title("nope") != "" {
		t.Error("unknown id has a title")
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", small); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestCostExperiments(t *testing.T) {
	for _, id := range []string{"fig4", "fig5", "fig6", "table1", "paths"} {
		res, err := Run(id, small)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.ID != id || res.Text == "" {
			t.Errorf("%s: empty result", id)
		}
	}
}

func TestFig4ShowsCrossover(t *testing.T) {
	res, err := Run("fig4", small)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "fully-assoc") {
		t.Error("fig4 missing the fully-associative series")
	}
}

func TestTable1ListsAllProcessors(t *testing.T) {
	res, err := Run("table1", small)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Intel i486DX", "MIPS R4000", "PowerPC 601", "MicroSPARC"} {
		if !strings.Contains(res.Text, name) {
			t.Errorf("table1 missing %s", name)
		}
	}
	if len(Survey()) != 13 {
		t.Errorf("survey has %d rows, want 13 (Table 1)", len(Survey()))
	}
}

func TestTable3Shape(t *testing.T) {
	res, err := Run("table3", small)
	if err != nil {
		t.Fatal(err)
	}
	for _, os := range []string{"None", "Ultrix", "Mach"} {
		if !strings.Contains(res.Text, os) {
			t.Errorf("table3 missing the %s row", os)
		}
	}
}

func TestFig7Monotone(t *testing.T) {
	res, err := Run("fig7", small)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "512") || !strings.Contains(res.Text, "Other") {
		t.Errorf("fig7 output incomplete:\n%s", res.Text)
	}
}

func TestFig8HasAssociativitySeries(t *testing.T) {
	res, err := Run("fig8", small)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"1-way", "2-way", "4-way", "8-way"} {
		if !strings.Contains(res.Text, s) {
			t.Errorf("fig8 missing %s series", s)
		}
	}
}

func TestFig9BothOSes(t *testing.T) {
	res, err := Run("fig9", Options{Refs: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "Ultrix") || !strings.Contains(res.Text, "Mach") {
		t.Error("fig9 must cover both operating systems")
	}
}

// The headline experiments are exercised end-to-end at reduced scale in
// TestTable6Headline (slow) and by the benchmarks at full scale.
func TestTable6Headline(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: full design-space sweep")
	}
	res, err := Run("table6", Options{Refs: 150_000})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "512-entry") {
		t.Errorf("table6 top allocations lack a 512-entry TLB:\n%s", res.Text)
	}
}

func TestSamplingExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: full-trace reference runs")
	}
	res, err := Run("sampling", Options{Refs: 1_200_000})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "mpeg_play") {
		t.Error("sampling experiment missing workloads")
	}
}

// Experiments are seeded and must be bit-for-bit deterministic.
func TestExperimentsDeterministic(t *testing.T) {
	for _, id := range []string{"table3", "fig8"} {
		a, err := Run(id, Options{Refs: 80_000})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(id, Options{Refs: 80_000})
		if err != nil {
			t.Fatal(err)
		}
		if a.Text != b.Text {
			t.Errorf("%s: two runs differ", id)
		}
	}
}
