package experiments

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"onchip/internal/area"
	"onchip/internal/osmodel"
	"onchip/internal/search"
	"onchip/internal/search/missmodel"
	"onchip/internal/workload"
)

// TestSearchCrossValidation is the gating oracle of the pruned search
// (make crossval-search, run in CI): on the paper's Table 5 grid with a
// MEASURED model -- real stack-simulation sweeps, both the Table 6
// (unrestricted) and Table 7 (assoc <= 2) settings -- the pruned
// strategy's top-10 must be byte-identical to the exhaustive ranking.
func TestSearchCrossValidation(t *testing.T) {
	const refs = 150_000
	for _, tc := range []struct {
		name     string
		maxAssoc int
	}{
		{"table6", 0},
		{"table7", 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			space := search.Table5()
			space.MaxCacheAssoc = tc.maxAssoc
			model, failed, err := buildMeasuredModel(osmodel.Mach, workload.All(), space, refs, Options{})
			if err != nil {
				t.Fatalf("model-building sweep: %v", err)
			}
			if len(failed) > 0 {
				t.Fatalf("degraded model: %v", failed)
			}
			ex, err := search.EnumerateE(space, area.Default(), area.BudgetRBE, model)
			if err != nil {
				t.Fatal(err)
			}
			var st search.PruneStats
			pr, err := search.EnumerateE(space, area.Default(), area.BudgetRBE, model,
				search.WithPruning(allocTableDepth), search.WithPruneStats(&st))
			if err != nil {
				t.Fatal(err)
			}
			want := search.Top(ex, allocTableDepth)
			if len(pr) != len(want) {
				t.Fatalf("pruned returned %d rows, exhaustive top-%d has %d", len(pr), allocTableDepth, len(want))
			}
			for i := range want {
				if pr[i] != want[i] {
					t.Errorf("rank %d differs:\npruned:     %v\nexhaustive: %v", i+1, pr[i], want[i])
				}
			}
			t.Logf("%s: %d composed triples, %d priced (%.2f%%), frontier %dx%dx%d",
				tc.name, st.Composed, st.Priced, 100*float64(st.Priced)/float64(st.Composed),
				st.FrontierTLB, st.FrontierIC, st.FrontierDC)
		})
	}
}

// TestBigSpaceCrossValidation runs the same oracle over the big preset
// with the missmodel power-law extension of a measured grid: the
// production configuration (-space big -search pruned) against an
// exhaustive scan of the identical space and model.
func TestBigSpaceCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("big-space exhaustive scan is minutes of pricing; run without -short")
	}
	const refs = 60_000
	grid := search.Table5()
	measured, failed, err := buildMeasuredModel(osmodel.Mach, workload.All(), grid, refs, Options{})
	if err != nil {
		t.Fatalf("model-building sweep: %v", err)
	}
	if len(failed) > 0 {
		t.Fatalf("degraded model: %v", failed)
	}
	model := missmodel.FromMeasured(measured)
	space := search.Big()
	ex, err := search.EnumerateE(space, area.Default(), area.BudgetRBE, model)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := search.EnumerateE(space, area.Default(), area.BudgetRBE, model,
		search.WithPruning(allocTableDepth))
	if err != nil {
		t.Fatal(err)
	}
	want := search.Top(ex, allocTableDepth)
	if len(pr) != len(want) {
		t.Fatalf("pruned returned %d rows, want %d", len(pr), len(want))
	}
	for i := range want {
		if pr[i] != want[i] {
			t.Errorf("rank %d differs:\npruned:     %v\nexhaustive: %v", i+1, pr[i], want[i])
		}
	}
}

// searchBenchStats is the schema of BENCH_search.json.
type searchBenchStats struct {
	Space           string `json:"space"`
	ComposedTriples int    `json:"composed_triples"`
	TopK            int    `json:"top_k"`

	ExhaustiveSeconds       float64 `json:"exhaustive_seconds"`
	ExhaustiveConfigsPerSec float64 `json:"exhaustive_configs_per_sec"`

	PrunedSeconds       float64 `json:"pruned_seconds"`
	PrunedConfigsPerSec float64 `json:"pruned_configs_per_sec"`
	PrunedPriced        int     `json:"pruned_priced"`
	PrunedFrontier      int     `json:"pruned_frontier"`
	PrunedBudget        int     `json:"pruned_budget"`
	PrunedBound         int     `json:"pruned_bound"`
	FrontierTLB         int     `json:"frontier_tlb"`
	FrontierIC          int     `json:"frontier_ic"`
	FrontierDC          int     `json:"frontier_dc"`

	Speedup float64 `json:"speedup"`
}

// TestSearchBenchArtifact times exhaustive-vs-pruned pricing of the
// >=1M-triple big preset and writes configs/sec for both strategies to
// $BENCH_SEARCH_JSON (make bench-search sets it). Correctness is
// asserted (the top-10s must be byte-identical -- a fast wrong ranking
// is worthless); the speedup itself is recorded, not asserted: CI
// machines vary, and the acceptance floor (>= 10x) is judged from the
// artifact.
func TestSearchBenchArtifact(t *testing.T) {
	path := os.Getenv("BENCH_SEARCH_JSON")
	if path == "" {
		t.Skip("set BENCH_SEARCH_JSON=<path> to run the search benchmark and write the artifact")
	}
	space := search.Big()
	model := search.MachLike()
	composed := space.Triples()

	exStart := time.Now()
	ex, err := search.EnumerateE(space, area.Default(), area.BudgetRBE, model)
	if err != nil {
		t.Fatal(err)
	}
	exSec := time.Since(exStart).Seconds()

	var st search.PruneStats
	prStart := time.Now()
	pr, err := search.EnumerateE(space, area.Default(), area.BudgetRBE, model,
		search.WithPruning(allocTableDepth), search.WithPruneStats(&st))
	if err != nil {
		t.Fatal(err)
	}
	prSec := time.Since(prStart).Seconds()

	want := search.Top(ex, allocTableDepth)
	if len(pr) != len(want) {
		t.Fatalf("pruned returned %d rows, want %d; the timing is meaningless", len(pr), len(want))
	}
	for i := range want {
		if pr[i] != want[i] {
			t.Fatalf("rank %d differs (timings meaningless):\npruned:     %v\nexhaustive: %v", i+1, pr[i], want[i])
		}
	}

	// configs/sec is space coverage per second: both strategies settle
	// the same composed space, the pruned one by dismissing most of it
	// analytically.
	stats := searchBenchStats{
		Space:           "big",
		ComposedTriples: composed,
		TopK:            allocTableDepth,

		ExhaustiveSeconds:       exSec,
		ExhaustiveConfigsPerSec: float64(composed) / exSec,

		PrunedSeconds:       prSec,
		PrunedConfigsPerSec: float64(composed) / prSec,
		PrunedPriced:        st.Priced,
		PrunedFrontier:      st.PrunedFrontier,
		PrunedBudget:        st.PrunedBudget,
		PrunedBound:         st.PrunedBound,
		FrontierTLB:         st.FrontierTLB,
		FrontierIC:          st.FrontierIC,
		FrontierDC:          st.FrontierDC,

		Speedup: exSec / prSec,
	}
	data, err := json.MarshalIndent(stats, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if stats.Speedup < 10 {
		t.Logf("WARNING: pruned speedup %.1fx below the 10x acceptance floor", stats.Speedup)
	}
	t.Logf("big space (%d triples, top-%d): exhaustive %.2fs (%.0f configs/s), pruned %.3fs (%.0f configs/s, %d priced), %.0fx -> %s",
		composed, allocTableDepth, exSec, stats.ExhaustiveConfigsPerSec,
		prSec, stats.PrunedConfigsPerSec, st.Priced, stats.Speedup, path)
}
