package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"onchip/internal/area"
	"onchip/internal/cache"
	"onchip/internal/faultinject"
	"onchip/internal/osmodel"
	"onchip/internal/report"
	"onchip/internal/search"
	"onchip/internal/tapeworm"
	"onchip/internal/telemetry"
	"onchip/internal/tlb"
	"onchip/internal/trace"
	"onchip/internal/workload"
)

func init() {
	register("table6", "Table 6: the ten best area allocations under 250,000 rbes (Mach)", table6)
	register("table7", "Table 7: best allocations with caches restricted to 1-/2-way associativity", table7)
}

// buildMeasuredModel sweeps the Table 5 design space under Mach with the
// simulators and assembles the measured performance model the search
// ranks with: Cheetah-style single-pass sweeps for the I-stream, direct
// simulation for the D-stream, Tapeworm for the TLBs, and a
// DECstation-style run for the configuration-independent base CPI
// (1.0 plus write-buffer and other stalls).
func buildMeasuredModel(space search.Space, refsEach int, opt Options) (*search.Measured, []string, error) {
	cacheCfgs := space.CacheConfigs()
	tlbCfgs := space.TLBConfigs()
	var tlbConfigs []tlb.Config
	for _, c := range tlbCfgs {
		tlbConfigs = append(tlbConfigs, tlb.Config{TLBConfig: c})
	}

	specs := workload.All()
	opt.progressf("sweep: %d workloads x (%d cache + %d TLB) configs, %d refs each",
		len(specs), len(cacheCfgs), len(tlbCfgs), refsEach)

	iMiss := make(map[area.CacheConfig]uint64)
	dMiss := make(map[area.CacheConfig]uint64)
	tlbCycles := make(map[area.TLBConfig]uint64)
	var instrs uint64
	var workloadsDone int
	var failed []string

	// Register the sweep's instruments up front so a live /metrics
	// scrape sees the series (at zero) from the first second of the
	// model-building phase, not only after the first workload lands.
	opt.Metrics.GaugeFunc("sweep.workloads_total", "workloads in the model-building sweep",
		func() float64 { return float64(len(specs)) })
	wlDone := opt.Metrics.Counter("sweep.workloads_done", "workload sweeps completed")
	wlFailed := opt.Metrics.Counter("sweep.workloads_failed", "workload sweeps abandoned after panics")
	wlRetried := opt.Metrics.Counter("sweep.workloads_retried", "workload sweep retries after a panic")
	sweepInstrs := opt.Metrics.Counter("sweep.instructions", "instructions simulated by the I-stream sweeps")
	refsStreamed := opt.Metrics.Counter("sweep.references", "references generated for the cache sweeps so far")

	ctx := opt.ctx()

	// sweepWorkload runs one workload's three sweep stages, reporting
	// any panic (injected or real) as an error so one bad run degrades
	// to a footnote instead of killing the whole sweep.
	sweepWorkload := func(spec osmodel.WorkloadSpec) (isweep *icacheSweep, dsweep *dcacheSweep, results []tapeworm.Result, err error) {
		defer func() {
			if v := recover(); v != nil {
				if site, ok := faultinject.IsInjectedPanic(v); ok {
					err = fmt.Errorf("injected panic at %s", site)
				} else {
					err = fmt.Errorf("panic: %v", v)
				}
			}
		}()
		opt.FaultInjector.MaybePanic("sweep/" + spec.Name)

		// I-stream: single-pass all-associativity sweeps.
		isweep = newICacheSweep(cacheCfgs, 8)
		osmodel.NewSystem(osmodel.Mach, spec).Generate(refsEach, meterRefs(isweep, refsStreamed))
		if ctx.Err() != nil {
			return nil, nil, nil, ctx.Err()
		}

		// D-stream: direct simulation.
		dsweep = newDCacheSweep(cacheCfgs)
		osmodel.NewSystem(osmodel.Mach, spec).Generate(refsEach, meterRefs(dsweep, refsStreamed))
		if ctx.Err() != nil {
			return nil, nil, nil, ctx.Err()
		}

		// TLBs: kernel-based (Tapeworm) simulation.
		results, _ = runTapeworm(osmodel.Mach, spec, refsEach, tlbConfigs)
		return isweep, dsweep, results, nil
	}

	// The per-workload sweeps are independent; run them concurrently
	// and merge the counts under a lock. Each simulator is deterministic
	// and the merged sums are order-independent, so parallel runs give
	// bit-identical models.
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, spec := range specs {
		wg.Add(1)
		go func(spec osmodel.WorkloadSpec) {
			defer wg.Done()
			var isweep *icacheSweep
			var dsweep *dcacheSweep
			var results []tapeworm.Result
			var err error
			for attempt := 0; ; attempt++ {
				if ctx.Err() != nil {
					return
				}
				isweep, dsweep, results, err = sweepWorkload(spec)
				if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					break
				}
				opt.progressf("sweep: %s attempt %d failed: %v", spec.Name, attempt+1, err)
				if attempt >= opt.FaultRetries {
					break
				}
				wlRetried.Inc()
			}
			if ctx.Err() != nil {
				return
			}

			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				failed = append(failed, fmt.Sprintf("%s (%v)", spec.Name, err))
				wlFailed.Inc()
				opt.progressf("sweep: %s FAILED, excluded from the model: %v", spec.Name, err)
				return
			}
			for _, c := range cacheCfgs {
				iMiss[c] += isweep.misses(c)
			}
			instrs += isweep.instrs
			for i, c := range cacheCfgs {
				dMiss[c] += dsweep.caches[i].Stats().ReadMisses
			}
			for i, c := range tlbCfgs {
				s := results[i].Service
				tlbCycles[c] += s.Cycles[tlb.UserMiss] + s.Cycles[tlb.KernelMiss]
			}
			workloadsDone++
			opt.progressf("sweep: %s done (%d/%d workloads)", spec.Name, workloadsDone, len(specs))
			wlDone.Inc()
			sweepInstrs.Add(isweep.instrs)
		}(spec)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, failed, err
	}
	sort.Strings(failed) // deterministic footer regardless of finish order
	if workloadsDone == 0 {
		return nil, failed, fmt.Errorf("every workload sweep failed: %v", failed)
	}

	// The paper's Table 6/7 totals are 1.0 plus the TLB, I-cache and
	// D-cache contributions computed from miss ratios and fixed miss
	// penalties (its best CPI of 1.333 leaves no room for the ~0.3 of
	// write-buffer and interlock stalls of Table 4, so those
	// configuration-independent components are evidently excluded).
	m := search.NewMeasured(1)
	n := float64(instrs)
	for _, c := range cacheCfgs {
		m.IC[c] = float64(iMiss[c]) * float64(cache.MissPenalty(c.LineWords)) / n
		m.DC[c] = float64(dMiss[c]) * float64(cache.MissPenalty(c.LineWords)) / n
	}
	for _, c := range tlbCfgs {
		m.TLB[c] = float64(tlbCycles[c]) / n
	}
	return m, failed, nil
}

// meterRefs threads a sweep sink through a batched reference counter:
// one atomic add per 64K references lands in the shared counter, so a
// live /metrics scrape watches the sweep advance at negligible hot-path
// cost. With metrics off (nil counter) the sink passes through
// untouched.
func meterRefs(next trace.Sink, c *telemetry.Counter) trace.Sink {
	if c == nil {
		return next
	}
	return &refMeter{next: next, c: c}
}

type refMeter struct {
	next trace.Sink
	c    *telemetry.Counter
	n    uint64
}

const refMeterBatch = 1 << 16

func (m *refMeter) Ref(r trace.Ref) {
	m.next.Ref(r)
	if m.n++; m.n%refMeterBatch == 0 {
		m.c.Add(refMeterBatch)
	}
}

func runAllocation(opt Options, space search.Space, id, title string, extraNotes []string) (Result, error) {
	refs := opt.refs(defaultSweepRefs)
	model, failedWorkloads, err := buildMeasuredModel(space, refs, opt)
	if err != nil {
		return Result{}, fmt.Errorf("model-building sweep: %w", err)
	}
	// The checkpoint label binds a checkpoint file to this experiment
	// and scale; the space signature inside search then binds it to the
	// exact model values, so a resume against a different refs count or
	// a differently-degraded model is refused, not silently wrong.
	label := fmt.Sprintf("%s/refs=%d", id, refs)
	searchOpts := []search.Option{search.WithContext(opt.ctx())}
	if opt.Progress != nil || opt.SweepObserver != nil {
		searchOpts = append(searchOpts, search.WithProgress(0, func(p search.Progress) {
			if opt.Progress != nil {
				opt.progressf("search: %s", p)
			}
			if opt.SweepObserver != nil {
				opt.SweepObserver(p)
			}
		}))
	}
	if opt.CheckpointPath != "" {
		searchOpts = append(searchOpts, search.WithCheckpoint(opt.CheckpointPath, label, 0))
		cpWrites := opt.Metrics.Counter("search.checkpoints_written", "sweep checkpoints persisted")
		searchOpts = append(searchOpts, search.WithCheckpointObserver(func(cp *search.Checkpoint) {
			cpWrites.Inc()
			if opt.CheckpointObserver != nil {
				opt.CheckpointObserver(cp)
			}
		}))
	}
	if opt.ResumePath != "" {
		cp, err := search.LoadCheckpoint(opt.ResumePath)
		if err != nil {
			return Result{}, err
		}
		opt.progressf("search: resuming from %s (%d pairs done, %d kept)",
			opt.ResumePath, cp.PairsDone, len(cp.Kept))
		searchOpts = append(searchOpts, search.WithResume(cp))
		opt.Metrics.Counter("search.resumed_pairs", "outer pairs skipped via checkpoint resume").
			Add(uint64(cp.PairsDone))
	}
	allocs, err := search.EnumerateE(space, area.Default(), area.BudgetRBE, model, searchOpts...)
	if err != nil {
		return Result{}, fmt.Errorf("enumeration: %w", err)
	}
	nc := len(space.CacheConfigs())
	opt.Metrics.Counter("search.configs_priced", "TLB x I-cache x D-cache combinations priced").
		Add(uint64(len(space.TLBConfigs()) * nc * nc))
	opt.Metrics.Counter("search.configs_kept", "allocations within the area budget").Add(uint64(len(allocs)))
	t := report.NewTable(title,
		"Rank", "TLB", "I-cache", "D-cache", "Total rbe", "Total CPI")
	for i, a := range search.Top(allocs, 10) {
		allocRow(t, i+1, a)
	}
	// Like the paper's Table 7, show how far behind a poorly chosen
	// configuration falls (its example was rank 1529 of the restricted
	// space).
	if len(allocs) > 100 {
		tail := len(allocs) * 3 / 4
		allocRow(t, tail+1, allocs[tail])
	}
	notes := append([]string{
		fmt.Sprintf("%d feasible allocations under the %d-rbe budget", len(allocs), area.BudgetRBE),
	}, extraNotes...)
	if len(failedWorkloads) > 0 {
		notes = append(notes, fmt.Sprintf(
			"DEGRADED: %d workload sweep(s) failed and are excluded from the model: %s",
			len(failedWorkloads), strings.Join(failedWorkloads, "; ")))
	}
	return Result{Text: t.String(), Notes: notes}, nil
}

func allocRow(t *report.Table, rank int, a search.Allocation) {
	t.Row(rank, a.TLB.String(), a.ICache.String(), a.DCache.String(),
		fmt.Sprintf("%.0f", a.AreaRBE), fmt.Sprintf("%.3f", a.CPI))
}

func table6(opt Options) (Result, error) {
	return runAllocation(opt, search.Table5(), "table6",
		"Ten best area allocations under 250,000 rbes (Mach measurements)",
		[]string{
			"paper: every top-10 configuration uses a 512-entry TLB; the best uses only ~163k rbes",
			"shape to check: large set-associative TLBs dominate, and the I-cache gets 2-4x the D-cache's capacity",
		})
}

func table7(opt Options) (Result, error) {
	space := search.Table5()
	space.MaxCacheAssoc = 2
	return runAllocation(opt, space, "table7",
		"Best allocations with caches restricted to 1- or 2-way associativity",
		[]string{
			"paper: the restriction raises the best CPI from 1.333 to 1.428; TLBs stay large and I-caches 2-4x the D-cache",
		})
}
