package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"onchip/internal/area"
	"onchip/internal/cache"
	"onchip/internal/cheetah"
	"onchip/internal/faultinject"
	"onchip/internal/osmodel"
	"onchip/internal/report"
	"onchip/internal/search"
	"onchip/internal/search/missmodel"
	"onchip/internal/spans"
	"onchip/internal/tapeworm"
	"onchip/internal/telemetry"
	"onchip/internal/tlb"
	"onchip/internal/trace"
	"onchip/internal/tracecache"
	"onchip/internal/workload"
)

func init() {
	register("table6", "Table 6: the ten best area allocations under 250,000 rbes (Mach)", table6)
	register("table7", "Table 7: best allocations with caches restricted to 1-/2-way associativity", table7)
}

// buildMeasuredModel sweeps the design space under the given OS
// variant and workload suite with the simulators and assembles the
// measured performance model the search ranks with: single-pass
// stack-simulation sweeps for both cache streams (Cheetah-style for
// the I-stream, the write-policy-aware generalization for the
// D-stream) and Tapeworm for the TLBs, all fed by ONE generation of
// each workload's reference stream through a fused sweep engine (see
// sweepengine.go) instead of the original generate-three-times,
// simulate-each-config-directly arrangement. The miss counts -- and
// therefore the tables -- are bit-identical to the multi-pass form;
// only the work to produce them shrank. Tables 6/7 pass Mach and the
// full Table 2 suite; the advisor service passes whatever (OS,
// workload-mix) a request names.
func buildMeasuredModel(v osmodel.Variant, specs []osmodel.WorkloadSpec, space search.Space, refsEach int, opt Options) (*search.Measured, []string, error) {
	cacheCfgs := space.CacheConfigs()
	tlbCfgs := space.TLBConfigs()
	var tlbConfigs []tlb.Config
	for _, c := range tlbCfgs {
		tlbConfigs = append(tlbConfigs, tlb.Config{TLBConfig: c})
	}
	opt.progressf("sweep: %d workloads x (%d cache + %d TLB) configs, %d refs each",
		len(specs), len(cacheCfgs), len(tlbCfgs), refsEach)

	iMiss := make(map[area.CacheConfig]uint64)
	dMiss := make(map[area.CacheConfig]uint64)
	tlbCycles := make(map[area.TLBConfig]uint64)
	var instrs uint64
	var workloadsDone int
	var failed []string

	// Register the sweep's instruments up front so a live /metrics
	// scrape sees the series (at zero) from the first second of the
	// model-building phase, not only after the first workload lands.
	opt.Metrics.GaugeFunc("sweep.workloads_total", "workloads in the model-building sweep",
		func() float64 { return float64(len(specs)) })
	wlDone := opt.Metrics.Counter("sweep.workloads_done", "workload sweeps completed")
	wlFailed := opt.Metrics.Counter("sweep.workloads_failed", "workload sweeps abandoned after panics")
	wlRetried := opt.Metrics.Counter("sweep.workloads_retried", "workload sweep retries after a panic")
	sweepInstrs := opt.Metrics.Counter("sweep.instructions", "instructions simulated by the I-stream sweeps")
	refsStreamed := opt.Metrics.Counter("sweep.references", "references generated for the model-building sweeps so far")
	stageModel := opt.Metrics.Gauge("sweep.stage_seconds.model",
		"wall-clock seconds generating references and running the fused cache sweeps, summed across workloads")
	stageTapeworm := tapewormStageGauge(opt)

	ctx := opt.ctx()
	// One pool serves every workload sweep. Each engine spreads its
	// (group, set-shard) units across all of the pool's workers, so when
	// most workloads have finished the stragglers absorb the freed
	// workers instead of stranding cores on a per-workload allowance --
	// the old NumCPU/len(specs) split idled most of the machine through
	// the tail of the sweep.
	groups := 2 * cheetah.GroupCount(cacheCfgs)
	workers := sweepWorkers(0)
	shards := opt.Shards
	if shards <= 0 {
		shards = autoShards(workers, groups)
	}
	opt.Metrics.Gauge("sweep.workers",
		"simulation workers in the shared sweep pool").Set(float64(workers))
	opt.Metrics.Gauge("sweep.shards",
		"set shards per simulator group (each group clamps to its set count)").Set(float64(shards))
	pool := newGroupPool(workers, opt.Spans, "sweep")
	defer pool.close()

	// sweepWorkload runs one workload's sweep, reporting any panic
	// (injected or real) as an error so one bad run degrades to a
	// footnote instead of killing the whole sweep.
	//
	// One generation feeds every simulator. The standalone sweeps each
	// consumed a window of the same deterministic stream (the system's
	// RNG never sees the sinks): the cache sweeps saw [0, E) where E is
	// the first iteration boundary at or past refsEach, and tapeworm
	// warmed up on [0, E1) (E1 the first boundary at or past refsEach/3)
	// then measured [E1, E2) (E2 the first boundary at or past
	// E1+refsEach). Since Generate always stops at the first boundary at
	// or past its cumulative target, three phased calls reproduce all
	// three windows from a single stream: phase 1 runs to E1 with both
	// sinks attached, the TLB service counters reset there, phase 2 runs
	// to E with both sinks, and phase 3 runs the tapeworm-only tail to
	// E2. Every simulator sees byte-for-byte the stream it saw before.
	// A warm trace cache short-circuits all of that generation: the
	// recorded stream carries the two phase boundaries as segment marks,
	// so a replay reproduces the exact three windows without running the
	// OS model at all. A corrupt entry is discarded mid-replay -- the
	// simulators have then seen a partial stream, so the whole attempt
	// (fresh engine included) falls back to live generation, which also
	// re-records the entry.
	sweepWorkload := func(spec osmodel.WorkloadSpec) (engine *sweepEngine, results []tapeworm.Result, modelSec, tailSec float64, err error) {
		defer func() {
			if v := recover(); v != nil {
				if site, ok := faultinject.IsInjectedPanic(v); ok {
					err = fmt.Errorf("injected panic at %s", site)
				} else {
					err = fmt.Errorf("panic: %v", v)
				}
			}
		}()
		opt.FaultInjector.MaybePanic("sweep/" + spec.Name)

		// The workload's generation phases record on one lane per
		// workload; the enclosing span also re-levels the lane stack if a
		// panic below leaves phase spans open, so a retry starts clean.
		lane := opt.Spans.Lane("workload/" + spec.Name)
		wl := lane.Start("sweep.workload")
		defer wl.End()

		attempt := func(entry *tracecache.Entry, rec *tracecache.Writer) (engine *sweepEngine, results []tapeworm.Result, modelSec, tailSec float64, err error) {
			engine = newSweepEngine(cacheCfgs, 8, enginePar{pool: pool, shards: shards})
			defer engine.close()
			hw := tlb.NewManaged(tlb.R2000(), tlb.DefaultCosts())
			tw := tapeworm.Attach(hw, tlbConfigs...)
			tsink := &tlbOnly{hw: hw}
			both := meterRefs(trace.Tee{engine, tsink}, refsStreamed)
			tail := meterRefs(trace.Sink(tsink), refsStreamed)
			reset := func() {
				hw.ResetService()
				tw.ResetServices()
				tsink.instrs = 0
			}
			if entry != nil {
				modelSec, tailSec, err = replayPhases(ctx, entry, both, tail, reset, lane)
			} else {
				sys := osmodel.NewSystem(v, spec)
				modelSec, tailSec, err = generatePhases(ctx, sys, refsEach, both, tail, reset, rec, lane)
			}
			flushMeter(both)
			flushMeter(tail)
			stageModel.Add(modelSec)
			stageTapeworm.Add(tailSec)
			if err != nil {
				return nil, nil, modelSec, tailSec, err
			}
			return engine, tw.Results(), modelSec, tailSec, nil
		}

		if opt.TraceCache == nil {
			return attempt(nil, nil)
		}
		key := sweepTraceKey(v, spec, refsEach)
		if entry := opt.TraceCache.OpenEntry(key); entry != nil {
			engine, results, modelSec, tailSec, err = attempt(entry, nil)
			entry.Close()
			if err == nil || !errors.Is(err, tracecache.ErrCorrupt) {
				return
			}
			opt.progressf("sweep: %s cached trace unusable, regenerating: %v", spec.Name, err)
			// Drop the bad entry now (logged with its content address)
			// so no concurrent run trips over it before the
			// regeneration below re-records it.
			opt.TraceCache.Evict(key)
		}
		rec, werr := opt.TraceCache.NewWriter(key)
		if werr != nil {
			opt.progressf("sweep: %s trace recording disabled: %v", spec.Name, werr)
			return attempt(nil, nil)
		}
		defer rec.Abort() // no-op once committed
		engine, results, modelSec, tailSec, err = attempt(nil, rec)
		if err == nil {
			if cerr := rec.Commit(); cerr != nil {
				opt.progressf("sweep: %s trace not cached: %v", spec.Name, cerr)
			}
		}
		return
	}

	// The per-workload sweeps are independent; run them concurrently
	// and merge the counts under a lock. Each simulator is deterministic
	// and the merged sums are order-independent, so parallel runs give
	// bit-identical models.
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, spec := range specs {
		wg.Add(1)
		go func(spec osmodel.WorkloadSpec) {
			defer wg.Done()
			var engine *sweepEngine
			var results []tapeworm.Result
			var modelSec, tailSec float64
			var err error
			for attempt := 0; ; attempt++ {
				if ctx.Err() != nil {
					return
				}
				engine, results, modelSec, tailSec, err = sweepWorkload(spec)
				if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					break
				}
				opt.progressf("sweep: %s attempt %d failed: %v", spec.Name, attempt+1, err)
				if attempt >= opt.FaultRetries {
					break
				}
				wlRetried.Inc()
			}
			if ctx.Err() != nil {
				return
			}

			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				failed = append(failed, fmt.Sprintf("%s (%v)", spec.Name, err))
				wlFailed.Inc()
				opt.progressf("sweep: %s FAILED, excluded from the model: %v", spec.Name, err)
				return
			}
			for _, c := range cacheCfgs {
				iMiss[c] += engine.iMisses(c)
				dMiss[c] += engine.dReadMisses(c)
			}
			instrs += engine.instrs
			for i, c := range tlbCfgs {
				s := results[i].Service
				tlbCycles[c] += s.Cycles[tlb.UserMiss] + s.Cycles[tlb.KernelMiss]
			}
			workloadsDone++
			opt.progressf("sweep: %s done (%d/%d workloads) [model %.2fs, tapeworm tail %.2fs]",
				spec.Name, workloadsDone, len(specs), modelSec, tailSec)
			wlDone.Inc()
			sweepInstrs.Add(engine.instrs)
		}(spec)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, failed, err
	}
	sort.Strings(failed) // deterministic footer regardless of finish order
	if workloadsDone == 0 {
		return nil, failed, fmt.Errorf("every workload sweep failed: %v", failed)
	}

	// The paper's Table 6/7 totals are 1.0 plus the TLB, I-cache and
	// D-cache contributions computed from miss ratios and fixed miss
	// penalties (its best CPI of 1.333 leaves no room for the ~0.3 of
	// write-buffer and interlock stalls of Table 4, so those
	// configuration-independent components are evidently excluded).
	m := search.NewMeasured(1)
	n := float64(instrs)
	for _, c := range cacheCfgs {
		m.IC[c] = float64(iMiss[c]) * float64(cache.MissPenalty(c.LineWords)) / n
		m.DC[c] = float64(dMiss[c]) * float64(cache.MissPenalty(c.LineWords)) / n
	}
	for _, c := range tlbCfgs {
		m.TLB[c] = float64(tlbCycles[c]) / n
	}
	return m, failed, nil
}

// sweepTraceKey content-addresses one workload's generated stream for
// the trace cache. The Model fingerprint folds in every spec
// parameter, so tuning a workload mix re-keys its entries even at an
// unchanged seed.
func sweepTraceKey(v osmodel.Variant, spec osmodel.WorkloadSpec, refs int) tracecache.Key {
	return tracecache.Key{
		Workload: spec.Name,
		OS:       v.String(),
		Seed:     spec.Seed,
		Refs:     refs,
		Model:    fmt.Sprintf("%+v", spec),
	}
}

// generatePhases drives the three-phase generation plan (see the
// window-reproduction comment in buildMeasuredModel) into the sweep
// sinks: phases 1-2 feed both (cache engine + TLB), phase 3 feeds only
// tail. reset runs at the warm-up boundary E1. A non-nil rec records
// the stream with the two phase boundaries as segment marks, so
// replayPhases can reproduce the exact windows later.
func generatePhases(ctx context.Context, sys *osmodel.System, refsEach int, both, tail trace.Sink, reset func(), rec *tracecache.Writer, lane *spans.Lane) (modelSec, tailSec float64, err error) {
	if rec != nil {
		both = trace.Tee{both, rec}
		tail = trace.Tee{tail, rec}
	}
	start := time.Now()
	// Phase 1: to the tapeworm warm-up boundary E1.
	warm := lane.Start("generate.warmup")
	e1 := sys.Generate(refsEach/3, both)
	warm.End()
	if ctx.Err() != nil {
		return time.Since(start).Seconds(), 0, ctx.Err()
	}
	if rec != nil {
		rec.EndSegment()
	}
	reset()
	// Phase 2: to the cache sweeps' boundary E (e1 can already be past
	// it when iterations are long; Generate must only be asked for a
	// positive count).
	measure := lane.Start("generate.measure")
	total := e1
	if refsEach > total {
		total += sys.Generate(refsEach-total, both)
	}
	measure.End()
	if ctx.Err() != nil {
		return time.Since(start).Seconds(), 0, ctx.Err()
	}
	if rec != nil {
		rec.EndSegment()
	}
	modelSec = time.Since(start).Seconds()

	// Phase 3: tapeworm-only tail to its measurement boundary E2.
	start = time.Now()
	tw3 := lane.Start("tapeworm.tail")
	if n := e1 + refsEach - total; n > 0 {
		sys.Generate(n, tail)
	}
	tw3.End()
	return modelSec, time.Since(start).Seconds(), ctx.Err()
}

// replayPhases reproduces the three-phase plan from a cached trace
// entry: one recorded segment per phase, reset at the first boundary.
// Any error matching tracecache.ErrCorrupt means the sinks saw a
// partial stream and the caller must regenerate from scratch.
func replayPhases(ctx context.Context, entry *tracecache.Entry, both, tail trace.Sink, reset func(), lane *spans.Lane) (modelSec, tailSec float64, err error) {
	segment := func(name string, sink trace.Sink, wantLast bool) error {
		span := lane.Start(name)
		_, last, err := entry.ReplaySegment(ctx, sink)
		span.End()
		if err != nil {
			return err
		}
		if last != wantLast {
			return fmt.Errorf("%w: segment layout does not match the sweep's phase plan", tracecache.ErrCorrupt)
		}
		return nil
	}
	start := time.Now()
	if err := segment("replay.warmup", both, false); err != nil {
		return time.Since(start).Seconds(), 0, err
	}
	reset()
	if err := segment("replay.measure", both, false); err != nil {
		return time.Since(start).Seconds(), 0, err
	}
	modelSec = time.Since(start).Seconds()
	start = time.Now()
	err = segment("replay.tail", tail, true)
	return modelSec, time.Since(start).Seconds(), err
}

// meterRefs threads a sweep sink through a batched reference counter:
// roughly one atomic add per 64K references lands in the shared
// counter, so a live /metrics scrape watches the sweep advance at
// negligible hot-path cost. Callers flush (flushMeter) when the stream
// ends so the final partial batch is published too. With metrics off
// (nil counter) the sink passes through untouched.
func meterRefs(next trace.Sink, c *telemetry.Counter) trace.Sink {
	if c == nil {
		return next
	}
	return &refMeter{next: next, batch: trace.Batched(next), c: c}
}

type refMeter struct {
	next  trace.Sink
	batch trace.BatchSink
	c     *telemetry.Counter
	n     uint64 // references seen but not yet published
}

const refMeterBatch = 1 << 16

// Ref implements trace.Sink.
func (m *refMeter) Ref(r trace.Ref) {
	m.next.Ref(r)
	m.bump(1)
}

// Refs implements trace.BatchSink, preserving the generator's batching
// through the meter.
func (m *refMeter) Refs(refs []trace.Ref) {
	m.batch.Refs(refs)
	m.bump(uint64(len(refs)))
}

func (m *refMeter) bump(n uint64) {
	if m.n += n; m.n >= refMeterBatch {
		m.c.Add(m.n)
		m.n = 0
	}
}

// Flush publishes the pending partial batch. Without it the counter
// permanently undercounted by up to refMeterBatch-1 references per
// stream (the batching always held back the tail).
func (m *refMeter) Flush() {
	if m.n > 0 {
		m.c.Add(m.n)
		m.n = 0
	}
}

// flushMeter flushes s when it is a metered sink (with metrics off,
// meterRefs hands the sink back unwrapped and there is nothing to do).
func flushMeter(s trace.Sink) {
	if m, ok := s.(*refMeter); ok {
		m.Flush()
	}
}

// allocTableDepth is how many ranked rows the allocation tables report
// (the paper's Table 6/7 depth). It is also the pruned strategy's
// top-K: the engine only guarantees byte-identity for the first K rows,
// so K and the table depth must agree.
const allocTableDepth = 10

func runAllocation(opt Options, space search.Space, id, title string, extraNotes []string) (Result, error) {
	pruned, err := opt.searchPruned()
	if err != nil {
		return Result{}, err
	}
	big, err := opt.bigSpace()
	if err != nil {
		return Result{}, err
	}
	if pruned && (opt.CheckpointPath != "" || opt.ResumePath != "") {
		// EnumerateE would refuse this too, but only after the sweep;
		// fail before hours of simulation are sunk into it.
		return Result{}, fmt.Errorf("pruned search does not support checkpoint/resume (use -search exhaustive for resumable sweeps)")
	}
	refs := opt.refs(defaultSweepRefs)
	// The simulators always sweep the grid the experiment defines
	// (Table 5 shaped); under the big preset the search space is wider
	// and off-grid configurations are priced by the power-law extension
	// of the measured model.
	grid := space
	if big {
		space = search.Big()
		space.MaxCacheAssoc = grid.MaxCacheAssoc
	}
	// Experiments run on the caller's goroutine, so the phase spans
	// share its lane and nest under whatever span the caller has open
	// (the binaries open "experiment.<id>").
	lane := opt.Spans.Lane("main")
	modelSpan := lane.Start("sweep.model")
	measured, failedWorkloads, err := buildMeasuredModel(osmodel.Mach, workload.All(), grid, refs, opt)
	modelSpan.End()
	if err != nil {
		return Result{}, fmt.Errorf("model-building sweep: %w", err)
	}
	var model search.PerfModel = measured
	var extended *missmodel.Extended
	if big {
		extended = missmodel.FromMeasured(measured)
		model = extended
		opt.progressf("search: big preset, %d of %d triples on the measured grid; off-grid priced by the power-law fit",
			grid.Triples(), space.Triples())
	}
	// The checkpoint label binds a checkpoint file to this experiment
	// and scale; the space signature inside search then binds it to the
	// exact model values, so a resume against a different refs count or
	// a differently-degraded model is refused, not silently wrong.
	label := fmt.Sprintf("%s/refs=%d", id, refs)
	searchOpts := []search.Option{search.WithContext(opt.ctx()), search.WithSpans(lane)}
	var pstats search.PruneStats
	if pruned {
		searchOpts = append(searchOpts,
			search.WithPruning(allocTableDepth), search.WithPruneStats(&pstats))
	}
	if opt.Progress != nil || opt.SweepObserver != nil {
		searchOpts = append(searchOpts, search.WithProgress(0, func(p search.Progress) {
			if opt.Progress != nil {
				opt.progressf("search: %s", p)
			}
			if opt.SweepObserver != nil {
				opt.SweepObserver(p)
			}
		}))
	}
	if opt.CheckpointPath != "" {
		searchOpts = append(searchOpts, search.WithCheckpoint(opt.CheckpointPath, label, 0))
		cpWrites := opt.Metrics.Counter("search.checkpoints_written", "sweep checkpoints persisted")
		searchOpts = append(searchOpts, search.WithCheckpointObserver(func(cp *search.Checkpoint) {
			cpWrites.Inc()
			if opt.CheckpointObserver != nil {
				opt.CheckpointObserver(cp)
			}
		}))
	}
	if opt.ResumePath != "" {
		cp, err := search.LoadCheckpoint(opt.ResumePath)
		if err != nil {
			return Result{}, err
		}
		opt.progressf("search: resuming from %s (%d pairs done, %d kept)",
			opt.ResumePath, cp.PairsDone, len(cp.Kept))
		searchOpts = append(searchOpts, search.WithResume(cp))
		opt.Metrics.Counter("search.resumed_pairs", "outer pairs skipped via checkpoint resume").
			Add(uint64(cp.PairsDone))
	}
	searchStart := time.Now()
	searchSpan := lane.Start("search.enumerate")
	allocs, err := search.EnumerateE(space, area.Default(), area.BudgetRBE, model, searchOpts...)
	searchSpan.End()
	opt.Metrics.Gauge("sweep.stage_seconds.search",
		"wall-clock seconds enumerating and pricing allocations").Add(time.Since(searchStart).Seconds())
	if err != nil {
		return Result{}, fmt.Errorf("enumeration: %w", err)
	}
	priced := opt.Metrics.Counter("search.configs_priced", "TLB x I-cache x D-cache combinations priced")
	if pruned {
		priced.Add(uint64(pstats.Priced))
		opt.Metrics.Gauge("search.pruned_frontier_triples",
			"triples removed by the per-axis Pareto-K frontier reduction").Set(float64(pstats.PrunedFrontier))
		opt.Metrics.Gauge("search.pruned_total_triples",
			"triples dismissed without pricing (frontier + budget + CPI bound)").Set(float64(pstats.Pruned()))
		opt.Metrics.Gauge("search.bound_budget_triples",
			"triples skipped by the monotone area budget bound").Set(float64(pstats.PrunedBudget))
		opt.Metrics.Gauge("search.bound_cpi_triples",
			"triples skipped by the optimistic CPI lower bound").Set(float64(pstats.PrunedBound))
	} else {
		priced.Add(uint64(space.Triples()))
	}
	opt.Metrics.Counter("search.configs_kept", "allocations within the area budget").Add(uint64(len(allocs)))
	t := report.NewTable(title,
		"Rank", "TLB", "I-cache", "D-cache", "Total rbe", "Total CPI")
	top := search.Top(allocs, allocTableDepth)
	for i, a := range top {
		allocRow(t, i+1, a)
	}
	// Like the paper's Table 7, show how far behind a poorly chosen
	// configuration falls (its example was rank 1529 of the restricted
	// space). The pruned strategy only materializes the top of the
	// ranking, so the tail row is exhaustive-only.
	if len(allocs) > 100 {
		tail := len(allocs) * 3 / 4
		allocRow(t, tail+1, allocs[tail])
	}
	var notes []string
	if pruned {
		notes = append(notes, fmt.Sprintf(
			"pruned search: top %d of %d composed triples; %d priced, %d pruned (%d frontier, %d budget, %d CPI bound)",
			len(allocs), pstats.Composed, pstats.Priced,
			pstats.Pruned(), pstats.PrunedFrontier, pstats.PrunedBudget, pstats.PrunedBound))
	} else {
		notes = append(notes, fmt.Sprintf(
			"%d feasible allocations under the %d-rbe budget", len(allocs), area.BudgetRBE))
	}
	if extended != nil {
		onGrid := 0
		for _, a := range top {
			if extended.Measured(a.TLB, a.ICache, a.DCache) {
				onGrid++
			}
		}
		notes = append(notes, fmt.Sprintf(
			"big preset: %d of the %d reported rows lie on the measured Table 5 grid; the rest are power-law modeled",
			onGrid, len(top)))
	}
	notes = append(notes, extraNotes...)
	if len(failedWorkloads) > 0 {
		notes = append(notes, fmt.Sprintf(
			"DEGRADED: %d workload sweep(s) failed and are excluded from the model: %s",
			len(failedWorkloads), strings.Join(failedWorkloads, "; ")))
	}
	return Result{Text: t.String(), Notes: notes}, nil
}

func allocRow(t *report.Table, rank int, a search.Allocation) {
	t.Row(rank, a.TLB.String(), a.ICache.String(), a.DCache.String(),
		fmt.Sprintf("%.0f", a.AreaRBE), fmt.Sprintf("%.3f", a.CPI))
}

func table6(opt Options) (Result, error) {
	return runAllocation(opt, search.Table5(), "table6",
		"Ten best area allocations under 250,000 rbes (Mach measurements)",
		[]string{
			"paper: every top-10 configuration uses a 512-entry TLB; the best uses only ~163k rbes",
			"shape to check: large set-associative TLBs dominate, and the I-cache gets 2-4x the D-cache's capacity",
		})
}

func table7(opt Options) (Result, error) {
	space := search.Table5()
	space.MaxCacheAssoc = 2
	return runAllocation(opt, space, "table7",
		"Best allocations with caches restricted to 1- or 2-way associativity",
		[]string{
			"paper: the restriction raises the best CPI from 1.333 to 1.428; TLBs stay large and I-caches 2-4x the D-cache",
		})
}
