package experiments

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"onchip/internal/faultinject"
	"onchip/internal/search"
	"onchip/internal/telemetry"
	"onchip/internal/workload"
)

func TestRunHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run("table3", Options{Refs: 60_000, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Run with a cancelled context returned %v, want context.Canceled", err)
	}
}

// With every sweep attempt panicking, every workload must be retried the
// configured number of times, then excluded -- and with nothing left to
// measure, the experiment fails loudly instead of ranking garbage.
func TestSweepAllWorkloadsFail(t *testing.T) {
	reg := telemetry.NewRegistry()
	opt := Options{
		Refs:          60_000,
		Metrics:       reg,
		FaultInjector: faultinject.New(faultinject.Config{Seed: 1, PanicProb: 1}),
		FaultRetries:  1,
	}
	opt.FaultInjector.Describe(reg, "faults")
	_, err := Run("table6", opt)
	if err == nil {
		t.Fatal("table6 with every workload panicking should fail")
	}
	if !strings.Contains(err.Error(), "injected panic") {
		t.Errorf("error should name the injected panics: %v", err)
	}
	n := uint64(len(workload.All()))
	counts := map[string]float64{}
	for _, m := range reg.Snapshot() {
		counts[m.Name] = m.Value
	}
	if got := counts["sweep.workloads_failed"]; got != float64(n) {
		t.Errorf("sweep.workloads_failed = %v, want %d", got, n)
	}
	if got := counts["sweep.workloads_retried"]; got != float64(n) {
		t.Errorf("sweep.workloads_retried = %v, want %d (one retry each)", got, n)
	}
	if got := counts["faults.panics"]; got != float64(2*n) {
		t.Errorf("faults.panics = %v, want %d (initial attempt + one retry each)", got, 2*n)
	}
}

// The acceptance scenario's panic half: heavy panic injection with
// enough retries still completes, with the full model intact.
func TestSweepSurvivesPanicsWithRetries(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: full design-space sweep under fault injection")
	}
	reg := telemetry.NewRegistry()
	opt := Options{
		Refs:    60_000,
		Metrics: reg,
		// Half of all attempts panic; 20 retries make a workload's
		// permanent failure (21 consecutive panics) vanishingly unlikely.
		FaultInjector: faultinject.New(faultinject.Config{Seed: 7, PanicProb: 0.5}),
		FaultRetries:  20,
	}
	opt.FaultInjector.Describe(reg, "faults")
	res, err := Run("table6", opt)
	if err != nil {
		t.Fatalf("table6 under 50%% panic injection with retries: %v", err)
	}
	if res.Text == "" {
		t.Fatal("empty ranking")
	}
	for _, n := range res.Notes {
		if strings.Contains(n, "DEGRADED") {
			t.Errorf("no workload should be permanently lost with 20 retries: %s", n)
		}
	}
	var failed, retried, panics float64
	for _, m := range reg.Snapshot() {
		switch m.Name {
		case "sweep.workloads_failed":
			failed = m.Value
		case "sweep.workloads_retried":
			retried = m.Value
		case "faults.panics":
			panics = m.Value
		}
	}
	if failed != 0 {
		t.Errorf("sweep.workloads_failed = %v, want 0", failed)
	}
	if panics == 0 || retried != panics {
		t.Errorf("faults.panics = %v, sweep.workloads_retried = %v: every injected panic should be retried", panics, retried)
	}
}

// Interrupt a table6 run mid-enumeration, then resume from the
// checkpoint: the final report must be byte-identical to an
// uninterrupted run (the -resume acceptance criterion).
func TestExperimentCheckpointResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: three model-building sweeps")
	}
	const refs = 60_000
	baseline, err := Run("table6", Options{Refs: refs})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "table6.ockp")
	ctx, cancel := context.WithCancel(context.Background())
	cancelOnce := false
	opt := Options{
		Refs:           refs,
		Context:        ctx,
		CheckpointPath: path,
		// The first periodic checkpoint lands well before the sweep
		// finishes; cancelling there models an operator's Ctrl-C.
		CheckpointObserver: func(cp *search.Checkpoint) {
			if !cancelOnce {
				cancelOnce = true
				cancel()
			}
		},
	}
	_, err = Run("table6", opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}

	resumed, err := Run("table6", Options{Refs: refs, CheckpointPath: path, ResumePath: path})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if resumed.Text != baseline.Text {
		t.Errorf("resumed report differs from the uninterrupted run:\n--- baseline ---\n%s\n--- resumed ---\n%s",
			baseline.Text, resumed.Text)
	}
}
