package experiments

import (
	"fmt"

	"onchip/internal/area"
	"onchip/internal/cache"
	"onchip/internal/machine"
	"onchip/internal/osmodel"
	"onchip/internal/report"
	"onchip/internal/workload"
)

func init() {
	register("ext-wpolicy", "Extension: write-through vs write-back D-cache (the write-policy axis the paper's tools restricted)", extWPolicy)
	register("fig9d", "Section 5.3 (text): D-cache miss ratios vs size and line size (Ultrix and Mach)", figure9D)
}

// extWPolicy compares a write-through D-cache (with write buffer) against
// a write-back D-cache of the same geometry on the store-heavy workloads.
// The paper notes its kernel-based simulator "restricts selection of
// line sizes and write policies" (Section 3); this trade-off is the one
// the restriction hid.
func extWPolicy(opt Options) (Result, error) {
	refs := opt.refs(defaultStallRefs)
	t := report.NewTable("Write policy for an 8-KB 4-word-line 2-way D-cache (Mach)",
		"Workload", "Policy", "CPI", "D-cache CPI", "WriteBuf CPI", "Mem writes/1k instrs")
	dcCfg := area.CacheConfig{CapacityBytes: 8 << 10, LineWords: 4, Assoc: 2}
	for _, spec := range []osmodel.WorkloadSpec{workload.IOzone(), workload.VideoPlay()} {
		for _, writeBack := range []bool{false, true} {
			cfg := machine.DECstation3100()
			cfg.DCache = cache.Config{CacheConfig: dcCfg, WriteBack: writeBack}
			cfg.OtherCPI = spec.OtherCPI
			cfg.IsServerASID = osmodel.IsServerASID
			m := machine.New(cfg)
			osmodel.NewSystem(osmodel.Mach, spec).Generate(refs, m)
			b := m.Breakdown()
			label := "write-through"
			memWrites := m.DCache().Stats().Writes // every store reaches memory
			if writeBack {
				label = "write-back"
				memWrites = m.DCache().Stats().Writebacks * uint64(dcCfg.LineWords)
			}
			t.Row(spec.Name, label, fmt.Sprintf("%.2f", b.CPI),
				fmt.Sprintf("%.3f", b.Comp[machine.CompDCache]),
				fmt.Sprintf("%.3f", b.Comp[machine.CompWB]),
				fmt.Sprintf("%.1f", 1000*float64(memWrites)/float64(b.Instrs)))
		}
	}
	return Result{
		Text: t.String(),
		Notes: []string{
			"for these streaming, write-once store patterns write-back loses: fetch-on-write fills",
			"raise the D-cache CPI and whole-line evictions write back more words than were stored;",
			"write-through + write buffer wins, consistent with the DECstation's actual design --",
			"the pay-off for write-back needs store locality, which is why the axis is worth exposing",
		},
	}, nil
}

// figure9D produces the D-cache counterpart of Figure 9 that the paper
// describes in text but does not plot ("for small caches, Mach's D-cache
// miss ratios are also higher than those of Ultrix ... line sizes
// greater than 8 words begin to result in D-cache pollution under both
// operating systems", section 5.3).
func figure9D(opt Options) (Result, error) {
	refs := opt.refs(defaultSweepRefs)
	sizes := []int{2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10}
	lines := []int{1, 2, 4, 8, 16, 32}
	var configs []area.CacheConfig
	for _, size := range sizes {
		for _, l := range lines {
			configs = append(configs, area.CacheConfig{CapacityBytes: size, LineWords: l, Assoc: 1})
		}
	}

	out := ""
	for _, v := range []osmodel.Variant{osmodel.Ultrix, osmodel.Mach} {
		miss := make(map[area.CacheConfig]uint64)
		var loads uint64
		for _, spec := range workload.All() {
			sweep := newDCacheSweep(configs)
			osmodel.NewSystem(v, spec).Generate(refs, sweep)
			for _, c := range configs {
				miss[c] += sweep.readMisses(c)
			}
			loads += sweep.loads()
		}
		var series []report.Series
		for _, l := range lines {
			s := report.Series{Label: fmt.Sprintf("%d-word line", l)}
			for _, size := range sizes {
				c := area.CacheConfig{CapacityBytes: size, LineWords: l, Assoc: 1}
				s.Points = append(s.Points, report.Point{
					X: fmt.Sprintf("%dK", size>>10),
					Y: float64(miss[c]) / float64(loads),
				})
			}
			series = append(series, s)
		}
		out += report.Chart(fmt.Sprintf("%s: D-cache load miss ratio (direct-mapped)", v), "miss ratio", series...)
		out += "\n"
	}
	return Result{
		Text: out,
		Notes: []string{
			"section 5.3: D-caches gain less from long lines than I-caches, and lines beyond 8 words",
			"pollute under both systems; the paper's best D-caches use 4-16 word lines at 8 KB",
		},
	}, nil
}
