package experiments

import (
	"testing"

	"onchip/internal/area"
	"onchip/internal/cache"
	"onchip/internal/osmodel"
	"onchip/internal/search"
	"onchip/internal/tapeworm"
	"onchip/internal/telemetry"
	"onchip/internal/tlb"
	"onchip/internal/trace"
	"onchip/internal/vm"
	"onchip/internal/workload"
)

// directDCacheSweep is the retired hot-path D-stream sweep, kept as the
// cross-validation oracle: one write-through, no-write-allocate LRU
// cache simulated directly per configuration.
type directDCacheSweep struct {
	configs []area.CacheConfig
	caches  []*cache.Cache
}

func newDirectDCacheSweep(configs []area.CacheConfig) *directDCacheSweep {
	s := &directDCacheSweep{configs: configs}
	for _, c := range configs {
		s.caches = append(s.caches, cache.New(cache.Config{CacheConfig: c}))
	}
	return s
}

func (s *directDCacheSweep) Ref(r trace.Ref) {
	if r.Kind == trace.IFetch || vm.SegmentOf(r.Addr) == vm.Kseg1 {
		return
	}
	key := vm.CacheKey(r.Addr, r.ASID)
	write := r.Kind == trace.Store
	for _, c := range s.caches {
		c.Access(key, write)
	}
}

// unbatched hides a sink's batch capability, forcing the generator down
// the per-reference delivery path of the original sweep.
type unbatched struct{ s trace.Sink }

func (u unbatched) Ref(r trace.Ref) { u.s.Ref(r) }

// TestFusedSweepMatchesLegacyPasses is the end-to-end equivalence proof
// for the fused engine: one generation through sweepEngine + tlbOnly
// with the phased warm-up/measure plan must reproduce, exactly, what
// the original three independent generations produced -- single-pass
// I-stream sweep, direct per-configuration D-cache simulation, and the
// tapeworm warm-up-then-measure run.
func TestFusedSweepMatchesLegacyPasses(t *testing.T) {
	const refsEach = 90_000
	spec := workload.VideoPlay()
	var cacheCfgs []area.CacheConfig
	for _, size := range []int{2 << 10, 8 << 10, 32 << 10} {
		for _, line := range []int{4, 16} {
			for _, assoc := range []int{1, 2, 8} {
				cacheCfgs = append(cacheCfgs, area.CacheConfig{CapacityBytes: size, LineWords: line, Assoc: assoc})
			}
		}
	}
	tlbConfigs := []tlb.Config{
		{TLBConfig: area.TLBConfig{Entries: 64, Assoc: 2}},
		{TLBConfig: area.TLBConfig{Entries: 128, Assoc: area.FullyAssociative}},
	}

	// Legacy: three generations, per-reference delivery, direct D-sim.
	isweep := newICacheSweep(cacheCfgs, 8)
	osmodel.NewSystem(osmodel.Mach, spec).Generate(refsEach, unbatched{isweep})
	direct := newDirectDCacheSweep(cacheCfgs)
	osmodel.NewSystem(osmodel.Mach, spec).Generate(refsEach, unbatched{direct})
	legacyTW, _ := runTapeworm(osmodel.Mach, spec, refsEach, tlbConfigs, nil)

	// Fused: one generation, batched, parallel simulator groups.
	engine := newSweepEngine(cacheCfgs, 8, enginePar{workers: 4})
	defer engine.close()
	hw := tlb.NewManaged(tlb.R2000(), tlb.DefaultCosts())
	tw := tapeworm.Attach(hw, tlbConfigs...)
	tsink := &tlbOnly{hw: hw}
	sys := osmodel.NewSystem(osmodel.Mach, spec)
	tee := trace.Tee{engine, tsink}
	e1 := sys.Generate(refsEach/3, tee)
	hw.ResetService()
	tw.ResetServices()
	tsink.instrs = 0
	total := e1
	if refsEach > total {
		total += sys.Generate(refsEach-total, tee)
	}
	if n := e1 + refsEach - total; n > 0 {
		sys.Generate(n, tsink)
	}

	if engine.instrs != isweep.instrs {
		t.Errorf("instrs: fused %d, legacy %d", engine.instrs, isweep.instrs)
	}
	for i, c := range cacheCfgs {
		if got, want := engine.iMisses(c), isweep.misses(c); got != want {
			t.Errorf("%v: I-misses fused %d, legacy %d", c, got, want)
		}
		if got, want := engine.dReadMisses(c), direct.caches[i].Stats().ReadMisses; got != want {
			t.Errorf("%v: D-read-misses fused %d, direct %d", c, got, want)
		}
	}
	fusedTW := tw.Results()
	for i := range tlbConfigs {
		a, b := fusedTW[i].Service, legacyTW[i].Service
		if a != b {
			t.Errorf("%v: tapeworm service fused %+v, legacy %+v", tlbConfigs[i].TLBConfig, a, b)
		}
	}
}

// TestSweepEngineParallelMatchesSerial pins the determinism claim of
// the group pool: any worker count, shard count, and pool arrangement
// (private or shared) produces the counts of the serial engine.
func TestSweepEngineParallelMatchesSerial(t *testing.T) {
	cacheCfgs := search.Table5().CacheConfigs()
	shared := newGroupPool(3, nil, "")
	defer shared.close()
	serial := newSweepEngine(cacheCfgs, 8, enginePar{})
	variants := map[string]*sweepEngine{
		"private-6":          newSweepEngine(cacheCfgs, 8, enginePar{workers: 6}),
		"private-4-shards-4": newSweepEngine(cacheCfgs, 8, enginePar{workers: 4, shards: 4}),
		"private-2-shards-8": newSweepEngine(cacheCfgs, 8, enginePar{workers: 2, shards: 8}),
		"shared-3":           newSweepEngine(cacheCfgs, 8, enginePar{pool: shared}),
		"shared-3-shards-2":  newSweepEngine(cacheCfgs, 8, enginePar{pool: shared, shards: 2}),
	}
	sinks := trace.Tee{serial}
	for _, e := range variants {
		sinks = append(sinks, e)
		defer e.close()
	}
	osmodel.NewSystem(osmodel.Mach, workload.MAB()).Generate(60_000, sinks)
	for name, parallel := range variants {
		for _, c := range cacheCfgs {
			if serial.iMisses(c) != parallel.iMisses(c) {
				t.Errorf("%s %v: I-misses serial %d, parallel %d", name, c, serial.iMisses(c), parallel.iMisses(c))
			}
			if serial.dReadMisses(c) != parallel.dReadMisses(c) {
				t.Errorf("%s %v: D-misses serial %d, parallel %d", name, c, serial.dReadMisses(c), parallel.dReadMisses(c))
			}
		}
		if serial.instrs != parallel.instrs {
			t.Errorf("%s: instrs serial %d, parallel %d", name, serial.instrs, parallel.instrs)
		}
	}
}

// TestRefMeterFlush pins the undercount fix: the meter used to publish
// only whole 64K batches, silently dropping the tail of every stream.
func TestRefMeterFlush(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("test.refs", "")
	m := meterRefs(trace.Discard, c)
	const n = 100_000 // 1 full batch + 34,464 trailing refs
	for i := 0; i < n; i++ {
		m.Ref(trace.Ref{})
	}
	flushMeter(m)
	if c.Value() != n {
		t.Errorf("scalar path: counter %d, want %d", c.Value(), n)
	}

	c2 := reg.Counter("test.refs.batch", "")
	mb := meterRefs(trace.Discard, c2).(*refMeter)
	batch := make([]trace.Ref, 1000)
	for i := 0; i < 70; i++ {
		mb.Refs(batch)
	}
	flushMeter(mb)
	if c2.Value() != 70_000 {
		t.Errorf("batch path: counter %d, want 70000", c2.Value())
	}

	// Metrics off: the sink passes through unwrapped, flush is a no-op.
	if _, metered := meterRefs(trace.Discard, nil).(*refMeter); metered {
		t.Error("nil counter: expected the sink back unwrapped")
	}
	flushMeter(trace.Discard)
}
