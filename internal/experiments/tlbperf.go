package experiments

import (
	"fmt"
	"time"

	"onchip/internal/area"
	"onchip/internal/machine"
	"onchip/internal/osmodel"
	"onchip/internal/report"
	"onchip/internal/tapeworm"
	"onchip/internal/telemetry"
	"onchip/internal/tlb"
	"onchip/internal/trace"
	"onchip/internal/workload"
)

func init() {
	register("fig7", "Figure 7: total TLB service time vs fully-associative TLB size (suite under Mach)", figure7)
	register("fig8", "Figure 8: set-associative TLB performance relative to a 256-entry fully-associative TLB (video_play, Mach)", figure8)
}

// tlbOnly is a minimal sink that drives a managed TLB (and through its
// miss hooks, Tapeworm) without cache simulation -- the kernel-based
// method's speed advantage over trace-driven simulation.
type tlbOnly struct {
	hw     *tlb.Managed
	instrs uint64
}

func (s *tlbOnly) Ref(r trace.Ref) {
	if r.Kind == trace.IFetch {
		s.instrs++
	}
	s.hw.Translate(r.Addr, r.ASID)
}

// Refs implements trace.BatchSink: the devirtualized loop lets the
// generator batch its deliveries.
func (s *tlbOnly) Refs(refs []trace.Ref) {
	for _, r := range refs {
		if r.Kind == trace.IFetch {
			s.instrs++
		}
		s.hw.Translate(r.Addr, r.ASID)
	}
}

// tapewormStageGauge is the shared wall-clock instrument for tapeworm
// simulation time; fig7/fig8 and the allocation sweep's tapeworm tail
// all accumulate into it.
func tapewormStageGauge(opt Options) *telemetry.Gauge {
	return opt.Metrics.Gauge("sweep.stage_seconds.tapeworm",
		"wall-clock seconds in tapeworm TLB simulation, summed across workloads")
}

// runTapeworm generates refs references of the workload under the OS
// variant, with the given TLB configurations simulated Tapeworm-style
// from the hardware (R2000) TLB's miss events. It returns per-config
// results and the scale factor to the workload's nominal full run; its
// wall-clock time accumulates into stage (nil-safe).
func runTapeworm(v osmodel.Variant, spec osmodel.WorkloadSpec, refs int, configs []tlb.Config, stage *telemetry.Gauge) ([]tapeworm.Result, float64) {
	start := time.Now()
	defer func() { stage.Add(time.Since(start).Seconds()) }()
	hw := tlb.NewManaged(tlb.R2000(), tlb.DefaultCosts())
	tw := tapeworm.Attach(hw, configs...)
	sink := &tlbOnly{hw: hw}
	sys := osmodel.NewSystem(v, spec)
	// Warm up: run a third of the budget to populate the page
	// first-touch set and the TLBs, then measure steady-state rates
	// (scaling a cold-start transient to the full run would grossly
	// overstate the compulsory/page-fault floor).
	sys.Generate(refs/3, sink)
	hw.ResetService()
	tw.ResetServices()
	sink.instrs = 0
	sys.Generate(refs, sink)
	scale := float64(spec.FullRunInstrs) / float64(sink.instrs)
	return tw.Results(), scale
}

// figure7 sums scaled TLB service time for fully-associative TLBs of
// 32-512 entries across the whole suite under Mach, split into the
// paper's categories.
func figure7(opt Options) (Result, error) {
	refs := opt.refs(defaultStallRefs)
	sizes := []int{32, 64, 128, 256, 512}
	var configs []tlb.Config
	for _, n := range sizes {
		configs = append(configs, tlb.Config{TLBConfig: area.TLBConfig{Entries: n, Assoc: area.FullyAssociative}})
	}

	user := make([]float64, len(sizes))
	kernel := make([]float64, len(sizes))
	other := make([]float64, len(sizes))
	stage := tapewormStageGauge(opt)
	for _, spec := range workload.All() {
		results, scale := runTapeworm(osmodel.Mach, spec, refs, configs, stage)
		for i, r := range results {
			user[i] += float64(r.Service.Cycles[tlb.UserMiss]) * scale / machine.ClockHz
			kernel[i] += float64(r.Service.Cycles[tlb.KernelMiss]) * scale / machine.ClockHz
			other[i] += float64(r.Service.Cycles[tlb.OtherMiss]) * scale / machine.ClockHz
		}
	}

	t := report.NewTable("Total TLB service time (seconds, whole suite under Mach, scaled to full runs)",
		"TLB (fully-assoc)", "User", "Kernel", "Other", "Total")
	total := make([]float64, len(sizes))
	for i, n := range sizes {
		total[i] = user[i] + kernel[i] + other[i]
		t.Row(fmt.Sprintf("%d entries", n), user[i], kernel[i], other[i], total[i])
	}
	s := report.Series{Label: "total TLB service time"}
	for i, n := range sizes {
		s.Points = append(s.Points, report.Point{X: fmt.Sprintf("%d", n), Y: total[i]})
	}
	return Result{
		Text: t.String() + "\n" + report.Chart("TLB service time vs fully-associative TLB size", "seconds", s),
		Notes: []string{
			"paper: 64-entry FA needs >46 s of service; 256/512 entries reduce it to ~10 s, a compulsory-dominated floor",
			"the shape to check: steep drop to 256 entries, flat beyond (remaining misses are page faults and first touches)",
		},
	}, nil
}

// figure8 compares set-associative TLBs to the 256-entry
// fully-associative baseline on video_play under Mach.
func figure8(opt Options) (Result, error) {
	refs := opt.refs(defaultStallRefs)
	sizes := []int{64, 128, 256, 512}
	assocs := []int{1, 2, 4, 8}
	var configs []tlb.Config
	configs = append(configs, tlb.Config{TLBConfig: area.TLBConfig{Entries: 256, Assoc: area.FullyAssociative}})
	for _, a := range assocs {
		for _, n := range sizes {
			configs = append(configs, tlb.Config{TLBConfig: area.TLBConfig{Entries: n, Assoc: a}})
		}
	}

	results, _ := runTapeworm(osmodel.Mach, workload.VideoPlay(), refs, configs, tapewormStageGauge(opt))
	baseline := float64(results[0].Service.TotalCycles())
	var series []report.Series
	idx := 1
	for _, a := range assocs {
		s := report.Series{Label: fmt.Sprintf("%d-way", a)}
		for _, n := range sizes {
			perf := 0.0
			if c := results[idx].Service.TotalCycles(); c > 0 {
				perf = baseline / float64(c)
			}
			s.Points = append(s.Points, report.Point{X: fmt.Sprintf("%d entries", n), Y: perf})
			idx++
		}
		series = append(series, s)
	}
	return Result{
		Text: report.Chart("TLB performance relative to 256-entry fully-associative (1.0 = equal; video_play under Mach)", "relative perf", series...),
		Notes: []string{
			"paper: for TLBs of 64+ entries, 2-, 4- and 8-way perform alike; 512-entry set-associative matches the 256-entry FA",
			"direct-mapped TLBs perform very poorly (the paper omits them from the plot)",
		},
	}, nil
}
