package experiments

import (
	"fmt"

	"onchip/internal/area"
	"onchip/internal/cache"
	"onchip/internal/osmodel"
	"onchip/internal/report"
	"onchip/internal/sampling"
	"onchip/internal/stats"
	"onchip/internal/trace"
	"onchip/internal/vm"
	"onchip/internal/workload"
)

func init() {
	register("sampling", "Section 3 methodology: trace-sampling accuracy versus full-trace simulation", samplingExperiment)
}

// samplingExperiment repeats the paper's validation of trace sampling:
// estimate the I-cache miss ratio of each workload from 50 sampled
// windows and compare against complete-stream simulation; the paper
// found the error to be under 10%.
func samplingExperiment(opt Options) (Result, error) {
	cfg := cache.Config{CacheConfig: area.CacheConfig{CapacityBytes: 8 << 10, LineWords: 4, Assoc: 1}}
	plan := sampling.Plan{Samples: 50, WindowRefs: 40_000, GapRefs: 80_000, Seed: 0x5a317}
	fullRefs := opt.refs(6_000_000)

	t := report.NewTable("Trace-sampling accuracy, 8-KB direct-mapped I-cache under Mach",
		"Workload", "Sampled miss ratio", "CI95 rel", "Full-trace miss ratio", "Rel error")
	worst := 0.0
	for _, spec := range workload.All() {
		// Sampled estimate.
		c := cache.New(cfg)
		target := &sampling.CacheTarget{Access: func(r trace.Ref) (bool, bool) {
			if r.Kind != trace.IFetch {
				return false, false
			}
			return c.Access(vm.CacheKey(r.Addr, r.ASID), false), true
		}}
		est, err := sampling.Run(plan, osmodel.NewSystem(osmodel.Mach, spec), target)
		if err != nil {
			return Result{}, err
		}

		// Full-trace reference value.
		full := cache.New(cfg)
		var instrs, misses uint64
		osmodel.NewSystem(osmodel.Mach, spec).Generate(fullRefs, trace.SinkFunc(func(r trace.Ref) {
			if r.Kind != trace.IFetch {
				return
			}
			instrs++
			if !full.Access(vm.CacheKey(r.Addr, r.ASID), false) {
				misses++
			}
		}))
		ref := stats.Ratio(misses, instrs)
		relErr := stats.RelativeError(est.Mean, ref)
		if relErr > worst {
			worst = relErr
		}
		t.Row(spec.Name, fmt.Sprintf("%.4f", est.Mean), fmt.Sprintf("%.1f%%", est.RelErr95*100),
			fmt.Sprintf("%.4f", ref), fmt.Sprintf("%.1f%%", relErr*100))
	}
	return Result{
		Text: t.String(),
		Notes: []string{
			fmt.Sprintf("worst-case relative error %.1f%% (paper's validation bound: under 10%%)", worst*100),
			"50 samples per workload, following Laha et al.; windows prime the cache before counting (cold-start handling)",
		},
	}, nil
}
