package experiments

import (
	"strings"
	"testing"
)

func TestExtOOLShiftsTowardTLB(t *testing.T) {
	res, err := Run("ext-ool", small)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "remap all") || !strings.Contains(res.Text, "copy all") {
		t.Errorf("ext-ool missing threshold settings:\n%s", res.Text)
	}
}

func TestExtServersRaisesPressure(t *testing.T) {
	res, err := Run("ext-servers", small)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "monolithic") || !strings.Contains(res.Text, "decomposed") {
		t.Error("ext-servers missing the comparison rows")
	}
}

func TestExtATime(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: full design-space sweep")
	}
	res, err := Run("ext-atime", Options{Refs: 150_000})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "none") || !strings.Contains(res.Text, "10") {
		t.Errorf("ext-atime missing cycle rows:\n%s", res.Text)
	}
}

func TestExtWPolicy(t *testing.T) {
	res, err := Run("ext-wpolicy", small)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "write-through") || !strings.Contains(res.Text, "write-back") {
		t.Error("ext-wpolicy missing policy rows")
	}
}

func TestFig9D(t *testing.T) {
	res, err := Run("fig9d", Options{Refs: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "D-cache load miss ratio") {
		t.Error("fig9d missing chart")
	}
}

func TestExtMulti(t *testing.T) {
	res, err := Run("ext-multi", small)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "alone") || !strings.Contains(res.Text, "time-sliced") {
		t.Error("ext-multi missing comparison rows")
	}
}

func TestExtUnified(t *testing.T) {
	res, err := Run("ext-unified", small)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "split 8+8") || !strings.Contains(res.Text, "unified 16") {
		t.Error("ext-unified missing organization rows")
	}
}

func TestExtL2(t *testing.T) {
	res, err := Run("ext-l2", small)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "no L2") || !strings.Contains(res.Text, "+ L2") {
		t.Error("ext-l2 missing organization rows")
	}
}

func TestExtPrefetch(t *testing.T) {
	res, err := Run("ext-prefetch", small)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "next-line prefetch") {
		t.Error("ext-prefetch missing prefetch row")
	}
}

func TestExtWBuf(t *testing.T) {
	res, err := Run("ext-wbuf", small)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "16") {
		t.Error("ext-wbuf missing depth sweep")
	}
}

func TestExtMultiAPI(t *testing.T) {
	res, err := Run("ext-multiapi", small)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "one shared server") || !strings.Contains(res.Text, "one server per app") {
		t.Error("ext-multiapi missing comparison rows")
	}
}
