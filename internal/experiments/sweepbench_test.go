package experiments

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"onchip/internal/area"
	"onchip/internal/osmodel"
	"onchip/internal/search"
	"onchip/internal/spans"
	"onchip/internal/tapeworm"
	"onchip/internal/telemetry"
	"onchip/internal/tlb"
	"onchip/internal/trace"
	"onchip/internal/tracecache"
	"onchip/internal/workload"
)

// recordStream pre-generates a reference stream once so the benchmarks
// measure simulation cost, not generation.
func recordStream(refs int) []trace.Ref {
	var out []trace.Ref
	osmodel.NewSystem(osmodel.Mach, workload.VideoPlay()).
		Generate(refs, trace.SinkFunc(func(r trace.Ref) { out = append(out, r) }))
	return out
}

func replay(b *testing.B, stream []trace.Ref, sink trace.Sink) {
	b.Helper()
	batch := trace.Batched(sink)
	b.SetBytes(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for lo := 0; lo < len(stream); lo += 1024 {
			hi := lo + 1024
			if hi > len(stream) {
				hi = len(stream)
			}
			batch.Refs(stream[lo:hi])
		}
	}
	b.ReportMetric(float64(len(stream))*float64(b.N)/b.Elapsed().Seconds(), "refs/s")
}

// BenchmarkSweepEngine measures the fused engine (serial groups) over
// the full Table 5 cache space.
func BenchmarkSweepEngine(b *testing.B) {
	stream := recordStream(200_000)
	engine := newSweepEngine(search.Table5().CacheConfigs(), 8, enginePar{})
	replay(b, stream, engine)
}

// BenchmarkSweepEngineParallel is the same engine with its group pool
// and automatic set sharding.
func BenchmarkSweepEngineParallel(b *testing.B) {
	stream := recordStream(200_000)
	engine := newSweepEngine(search.Table5().CacheConfigs(), 8, enginePar{workers: sweepWorkers(0)})
	defer engine.close()
	replay(b, stream, engine)
}

// BenchmarkSweepLegacyDirect measures what the engine replaced on the
// D-stream side alone: direct per-configuration simulation with
// per-reference delivery.
func BenchmarkSweepLegacyDirect(b *testing.B) {
	stream := recordStream(200_000)
	direct := newDirectDCacheSweep(search.Table5().CacheConfigs())
	replay(b, stream, unbatched{direct})
}

// sweepBenchStats is the schema of BENCH_sweep.json.
type sweepBenchStats struct {
	Refs             int     `json:"refs"`
	Workload         string  `json:"workload"`
	CacheConfigs     int     `json:"cache_configs"`
	Workers          int     `json:"workers"`
	Shards           int     `json:"shards"`
	LegacySeconds    float64 `json:"legacy_seconds"`
	EngineSeconds    float64 `json:"engine_seconds"`
	LegacyRefsPerSec float64 `json:"legacy_refs_per_sec"`
	EngineRefsPerSec float64 `json:"engine_refs_per_sec"`
	Speedup          float64 `json:"speedup"`
	LegacyNsPerRef   float64 `json:"legacy_ns_per_ref"`
	EngineNsPerRef   float64 `json:"engine_ns_per_ref"`

	// The workers/shards series: the same fused sweep at one worker
	// (serial engine, no pool) versus the Workers/Shards arrangement
	// above. ParallelSpeedup is Engine1Seconds/EngineSeconds.
	Engine1Seconds  float64 `json:"engine_1worker_seconds"`
	ParallelSpeedup float64 `json:"parallel_speedup"`

	// The trace-cache series: the parallel sweep with a cold cache
	// (generation + recording) and repeated warm (replay, no
	// generation). WarmSpeedup is Engine1Seconds/WarmCacheSeconds --
	// the end-to-end win of a warm repeat run over the previous
	// single-worker engine.
	ColdCacheSeconds float64 `json:"cold_cache_seconds"`
	WarmCacheSeconds float64 `json:"warm_cache_seconds"`
	WarmSpeedup      float64 `json:"warm_speedup"`
	TraceCacheBytes  int64   `json:"trace_cache_bytes"`

	// Span-tracing overhead: the same fused sweep re-run with a live
	// tracer (phase lanes, per-job worker spans, telemetry folding), as
	// -spans wires it. OverheadPct is (spans-on / spans-off - 1) * 100.
	EngineSpansSeconds float64 `json:"engine_spans_seconds"`
	SpansRefsPerSec    float64 `json:"spans_refs_per_sec"`
	SpansOverheadPct   float64 `json:"spans_overhead_pct"`
	SpansRecorded      int     `json:"spans_recorded"`
}

// timeFusedSweep runs one workload's fused model-building sweep (the
// production warm-up/measure plan against the engine + tapeworm tee)
// and returns the engine and the elapsed seconds. A non-nil par.tr
// instruments it exactly the way sweepWorkload does: workload-lane
// phase spans plus the engine's per-job worker-lane spans. A non-nil
// tc engages the trace cache exactly like the production sweep --
// replay on a hit, record-and-commit on a miss.
func timeFusedSweep(t *testing.T, spec osmodel.WorkloadSpec, cacheCfgs []area.CacheConfig, tlbConfigs []tlb.Config, refsEach int, par enginePar, tc *tracecache.Cache) (*sweepEngine, float64) {
	t.Helper()
	start := time.Now()
	lane := par.tr.Lane("workload/" + spec.Name)
	wl := lane.Start("sweep.workload")
	engine := newSweepEngine(cacheCfgs, 8, par)
	hw := tlb.NewManaged(tlb.R2000(), tlb.DefaultCosts())
	tw := tapeworm.Attach(hw, tlbConfigs...)
	tsink := &tlbOnly{hw: hw}
	both := trace.Sink(trace.Tee{engine, tsink})
	tail := trace.Sink(tsink)
	reset := func() {
		hw.ResetService()
		tw.ResetServices()
		tsink.instrs = 0
	}
	ctx := context.Background()
	var err error
	switch {
	case tc == nil:
		_, _, err = generatePhases(ctx, osmodel.NewSystem(osmodel.Mach, spec), refsEach, both, tail, reset, nil, lane)
	default:
		key := sweepTraceKey(osmodel.Mach, spec, refsEach)
		if entry := tc.OpenEntry(key); entry != nil {
			_, _, err = replayPhases(ctx, entry, both, tail, reset, lane)
			entry.Close()
		} else {
			var rec *tracecache.Writer
			if rec, err = tc.NewWriter(key); err == nil {
				_, _, err = generatePhases(ctx, osmodel.NewSystem(osmodel.Mach, spec), refsEach, both, tail, reset, rec, lane)
				if err == nil {
					err = rec.Commit()
				} else {
					rec.Abort()
				}
			}
		}
	}
	if err != nil {
		t.Fatalf("fused sweep of %s failed: %v", spec.Name, err)
	}
	wl.End()
	return engine, time.Since(start).Seconds()
}

// TestSweepBenchArtifact times one workload's complete model-building
// sweep at the default scale -- the original three-generation,
// direct-D-simulation arrangement against the fused engine -- and
// writes the measurements to $BENCH_SWEEP_JSON (make bench sets it).
// It records, not asserts, the speedup: CI machines vary.
func TestSweepBenchArtifact(t *testing.T) {
	path := os.Getenv("BENCH_SWEEP_JSON")
	if path == "" {
		t.Skip("set BENCH_SWEEP_JSON=<path> to run the sweep benchmark and write the artifact")
	}
	const refsEach = defaultSweepRefs
	spec := workload.VideoPlay()
	cacheCfgs := search.Table5().CacheConfigs()
	var tlbConfigs []tlb.Config
	for _, c := range search.Table5().TLBConfigs() {
		tlbConfigs = append(tlbConfigs, tlb.Config{TLBConfig: c})
	}

	// Legacy: three generations, per-reference delivery, direct D-sim.
	legacyStart := time.Now()
	isweep := newICacheSweep(cacheCfgs, 8)
	osmodel.NewSystem(osmodel.Mach, spec).Generate(refsEach, unbatched{isweep})
	direct := newDirectDCacheSweep(cacheCfgs)
	osmodel.NewSystem(osmodel.Mach, spec).Generate(refsEach, unbatched{direct})
	runTapeworm(osmodel.Mach, spec, refsEach, tlbConfigs, nil)
	legacySec := time.Since(legacyStart).Seconds()

	// mustMatchLegacy pins every timed variant to the legacy counts
	// before its timing is allowed to mean anything.
	mustMatchLegacy := func(name string, e *sweepEngine) {
		t.Helper()
		for i, c := range cacheCfgs {
			if e.iMisses(c) != isweep.misses(c) || e.dReadMisses(c) != direct.caches[i].Stats().ReadMisses {
				t.Fatalf("%s %v: fused and legacy sweeps disagree; timings are meaningless", name, c)
			}
		}
	}

	// Fused, serial: one generation, batched, no pool. The baseline of
	// the workers/shards series.
	serial, serialSec := timeFusedSweep(t, spec, cacheCfgs, tlbConfigs, refsEach, enginePar{}, nil)
	serial.close()
	mustMatchLegacy("serial", serial)

	// Fused, parallel: the group pool at full machine width with
	// automatic set sharding (the sweep runs one workload here, so the
	// pool gets the whole machine, as the real sweep's shared pool
	// would once other workloads drain).
	workers := sweepWorkers(0)
	engine, engineSec := timeFusedSweep(t, spec, cacheCfgs, tlbConfigs, refsEach, enginePar{workers: workers}, nil)
	defer engine.close()
	mustMatchLegacy("parallel", engine)

	// Trace cache, cold then warm: the parallel sweep recording its
	// stream, then the repeat run replaying it with generation skipped.
	tc, err := tracecache.Open(filepath.Join(t.TempDir(), "octc"))
	if err != nil {
		t.Fatal(err)
	}
	cold, coldSec := timeFusedSweep(t, spec, cacheCfgs, tlbConfigs, refsEach, enginePar{workers: workers}, tc)
	cold.close()
	mustMatchLegacy("cold-cache", cold)
	warm, warmSec := timeFusedSweep(t, spec, cacheCfgs, tlbConfigs, refsEach, enginePar{workers: workers}, tc)
	warm.close()
	mustMatchLegacy("warm-cache", warm)
	var cacheBytes int64
	entries, err := os.ReadDir(tc.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range entries {
		if filepath.Ext(de.Name()) != ".octc" {
			continue
		}
		info, err := de.Info()
		if err != nil {
			t.Fatal(err)
		}
		cacheBytes += info.Size()
	}
	if cacheBytes == 0 {
		t.Fatal("cold run committed no trace-cache entry; warm timing is meaningless")
	}

	// Spans on: the identical fused sweep under a live tracer with
	// telemetry folding, measuring what -spans costs end to end.
	tracer := spans.New(0)
	tracer.SetMetrics(telemetry.NewRegistry())
	spansEngine, spansSec := timeFusedSweep(t, spec, cacheCfgs, tlbConfigs, refsEach,
		enginePar{workers: workers, tr: tracer, lanePrefix: "sweep/" + spec.Name}, nil)
	spansEngine.close()
	mustMatchLegacy("spans", spansEngine)

	stats := sweepBenchStats{
		Refs:             refsEach,
		Workload:         spec.Name,
		CacheConfigs:     len(cacheCfgs),
		Workers:          workers,
		Shards:           engine.shards,
		LegacySeconds:    legacySec,
		EngineSeconds:    engineSec,
		LegacyRefsPerSec: float64(refsEach) / legacySec,
		EngineRefsPerSec: float64(refsEach) / engineSec,
		Speedup:          legacySec / engineSec,
		LegacyNsPerRef:   legacySec * 1e9 / float64(refsEach),
		EngineNsPerRef:   engineSec * 1e9 / float64(refsEach),

		Engine1Seconds:  serialSec,
		ParallelSpeedup: serialSec / engineSec,

		ColdCacheSeconds: coldSec,
		WarmCacheSeconds: warmSec,
		WarmSpeedup:      serialSec / warmSec,
		TraceCacheBytes:  cacheBytes,

		EngineSpansSeconds: spansSec,
		SpansRefsPerSec:    float64(refsEach) / spansSec,
		SpansOverheadPct:   (spansSec/engineSec - 1) * 100,
		SpansRecorded:      len(tracer.Records()),
	}
	data, err := json.MarshalIndent(stats, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("model-building sweep at %d refs: legacy %.2fs, serial %.2fs, fused %.2fs (%.1fx vs legacy, %d workers x %d shards), cold cache %.2fs, warm %.2fs (%.1fx vs serial, %d B), spans on %.2fs (%+.1f%%, %d spans) -> %s",
		refsEach, legacySec, serialSec, engineSec, stats.Speedup, workers, stats.Shards,
		coldSec, warmSec, stats.WarmSpeedup, cacheBytes, spansSec, stats.SpansOverheadPct, stats.SpansRecorded, path)
}
