package experiments

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"onchip/internal/area"
	"onchip/internal/osmodel"
	"onchip/internal/search"
	"onchip/internal/spans"
	"onchip/internal/tapeworm"
	"onchip/internal/telemetry"
	"onchip/internal/tlb"
	"onchip/internal/trace"
	"onchip/internal/workload"
)

// recordStream pre-generates a reference stream once so the benchmarks
// measure simulation cost, not generation.
func recordStream(refs int) []trace.Ref {
	var out []trace.Ref
	osmodel.NewSystem(osmodel.Mach, workload.VideoPlay()).
		Generate(refs, trace.SinkFunc(func(r trace.Ref) { out = append(out, r) }))
	return out
}

func replay(b *testing.B, stream []trace.Ref, sink trace.Sink) {
	b.Helper()
	batch := trace.Batched(sink)
	b.SetBytes(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for lo := 0; lo < len(stream); lo += 1024 {
			hi := lo + 1024
			if hi > len(stream) {
				hi = len(stream)
			}
			batch.Refs(stream[lo:hi])
		}
	}
	b.ReportMetric(float64(len(stream))*float64(b.N)/b.Elapsed().Seconds(), "refs/s")
}

// BenchmarkSweepEngine measures the fused engine (serial groups) over
// the full Table 5 cache space.
func BenchmarkSweepEngine(b *testing.B) {
	stream := recordStream(200_000)
	engine := newSweepEngine(search.Table5().CacheConfigs(), 8, 1, nil, "")
	replay(b, stream, engine)
}

// BenchmarkSweepEngineParallel is the same engine with its group pool.
func BenchmarkSweepEngineParallel(b *testing.B) {
	stream := recordStream(200_000)
	engine := newSweepEngine(search.Table5().CacheConfigs(), 8, sweepWorkers(1, 0), nil, "")
	defer engine.close()
	replay(b, stream, engine)
}

// BenchmarkSweepLegacyDirect measures what the engine replaced on the
// D-stream side alone: direct per-configuration simulation with
// per-reference delivery.
func BenchmarkSweepLegacyDirect(b *testing.B) {
	stream := recordStream(200_000)
	direct := newDirectDCacheSweep(search.Table5().CacheConfigs())
	replay(b, stream, unbatched{direct})
}

// sweepBenchStats is the schema of BENCH_sweep.json.
type sweepBenchStats struct {
	Refs             int     `json:"refs"`
	Workload         string  `json:"workload"`
	CacheConfigs     int     `json:"cache_configs"`
	Workers          int     `json:"workers"`
	LegacySeconds    float64 `json:"legacy_seconds"`
	EngineSeconds    float64 `json:"engine_seconds"`
	LegacyRefsPerSec float64 `json:"legacy_refs_per_sec"`
	EngineRefsPerSec float64 `json:"engine_refs_per_sec"`
	Speedup          float64 `json:"speedup"`
	LegacyNsPerRef   float64 `json:"legacy_ns_per_ref"`
	EngineNsPerRef   float64 `json:"engine_ns_per_ref"`

	// Span-tracing overhead: the same fused sweep re-run with a live
	// tracer (phase lanes, per-job worker spans, telemetry folding), as
	// -spans wires it. OverheadPct is (spans-on / spans-off - 1) * 100.
	EngineSpansSeconds float64 `json:"engine_spans_seconds"`
	SpansRefsPerSec    float64 `json:"spans_refs_per_sec"`
	SpansOverheadPct   float64 `json:"spans_overhead_pct"`
	SpansRecorded      int     `json:"spans_recorded"`
}

// timeFusedSweep runs one workload's fused model-building sweep (the
// production warm-up/measure plan against the engine + tapeworm tee)
// and returns the engine and the elapsed seconds. A non-nil tracer
// instruments it exactly the way sweepWorkload does: workload-lane
// phase spans plus the engine's per-job worker-lane spans.
func timeFusedSweep(spec osmodel.WorkloadSpec, cacheCfgs []area.CacheConfig, tlbConfigs []tlb.Config, refsEach, workers int, tr *spans.Tracer) (*sweepEngine, float64) {
	start := time.Now()
	lane := tr.Lane("workload/" + spec.Name)
	wl := lane.Start("sweep.workload")
	engine := newSweepEngine(cacheCfgs, 8, workers, tr, "sweep/"+spec.Name)
	hw := tlb.NewManaged(tlb.R2000(), tlb.DefaultCosts())
	tw := tapeworm.Attach(hw, tlbConfigs...)
	tsink := &tlbOnly{hw: hw}
	sys := osmodel.NewSystem(osmodel.Mach, spec)
	tee := trace.Tee{engine, tsink}
	warm := lane.Start("generate.warmup")
	e1 := sys.Generate(refsEach/3, tee)
	warm.End()
	hw.ResetService()
	tw.ResetServices()
	tsink.instrs = 0
	total := e1
	meas := lane.Start("generate.measure")
	if refsEach > total {
		total += sys.Generate(refsEach-total, tee)
	}
	meas.End()
	if n := e1 + refsEach - total; n > 0 {
		tail := lane.Start("tapeworm.tail")
		sys.Generate(n, tsink)
		tail.End()
	}
	wl.End()
	return engine, time.Since(start).Seconds()
}

// TestSweepBenchArtifact times one workload's complete model-building
// sweep at the default scale -- the original three-generation,
// direct-D-simulation arrangement against the fused engine -- and
// writes the measurements to $BENCH_SWEEP_JSON (make bench sets it).
// It records, not asserts, the speedup: CI machines vary.
func TestSweepBenchArtifact(t *testing.T) {
	path := os.Getenv("BENCH_SWEEP_JSON")
	if path == "" {
		t.Skip("set BENCH_SWEEP_JSON=<path> to run the sweep benchmark and write the artifact")
	}
	const refsEach = defaultSweepRefs
	spec := workload.VideoPlay()
	cacheCfgs := search.Table5().CacheConfigs()
	var tlbConfigs []tlb.Config
	for _, c := range search.Table5().TLBConfigs() {
		tlbConfigs = append(tlbConfigs, tlb.Config{TLBConfig: c})
	}

	// Legacy: three generations, per-reference delivery, direct D-sim.
	legacyStart := time.Now()
	isweep := newICacheSweep(cacheCfgs, 8)
	osmodel.NewSystem(osmodel.Mach, spec).Generate(refsEach, unbatched{isweep})
	direct := newDirectDCacheSweep(cacheCfgs)
	osmodel.NewSystem(osmodel.Mach, spec).Generate(refsEach, unbatched{direct})
	runTapeworm(osmodel.Mach, spec, refsEach, tlbConfigs, nil)
	legacySec := time.Since(legacyStart).Seconds()

	// Fused: one generation, batched, parallel groups (the sweep runs
	// one workload here, so the pool gets the whole machine, as it
	// would per-workload share it in the real sweep).
	workers := sweepWorkers(1, 0)
	engine, engineSec := timeFusedSweep(spec, cacheCfgs, tlbConfigs, refsEach, workers, nil)
	defer engine.close()

	// Sanity: the two paths must agree before their timings mean
	// anything.
	for i, c := range cacheCfgs {
		if engine.iMisses(c) != isweep.misses(c) || engine.dReadMisses(c) != direct.caches[i].Stats().ReadMisses {
			t.Fatalf("%v: fused and legacy sweeps disagree; timings are meaningless", c)
		}
	}

	// Spans on: the identical fused sweep under a live tracer with
	// telemetry folding, measuring what -spans costs end to end.
	tracer := spans.New(0)
	tracer.SetMetrics(telemetry.NewRegistry())
	spansEngine, spansSec := timeFusedSweep(spec, cacheCfgs, tlbConfigs, refsEach, workers, tracer)
	spansEngine.close()
	for _, c := range cacheCfgs {
		if spansEngine.iMisses(c) != engine.iMisses(c) || spansEngine.dReadMisses(c) != engine.dReadMisses(c) {
			t.Fatalf("%v: traced and untraced sweeps disagree; overhead is meaningless", c)
		}
	}

	stats := sweepBenchStats{
		Refs:             refsEach,
		Workload:         spec.Name,
		CacheConfigs:     len(cacheCfgs),
		Workers:          workers,
		LegacySeconds:    legacySec,
		EngineSeconds:    engineSec,
		LegacyRefsPerSec: float64(refsEach) / legacySec,
		EngineRefsPerSec: float64(refsEach) / engineSec,
		Speedup:          legacySec / engineSec,
		LegacyNsPerRef:   legacySec * 1e9 / float64(refsEach),
		EngineNsPerRef:   engineSec * 1e9 / float64(refsEach),

		EngineSpansSeconds: spansSec,
		SpansRefsPerSec:    float64(refsEach) / spansSec,
		SpansOverheadPct:   (spansSec/engineSec - 1) * 100,
		SpansRecorded:      len(tracer.Records()),
	}
	data, err := json.MarshalIndent(stats, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("model-building sweep at %d refs: legacy %.2fs, fused %.2fs (%.1fx, %d workers), spans on %.2fs (%+.1f%%, %d spans) -> %s",
		refsEach, legacySec, engineSec, stats.Speedup, workers, spansSec, stats.SpansOverheadPct, stats.SpansRecorded, path)
}
