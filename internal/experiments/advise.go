package experiments

import (
	"fmt"
	"sort"
	"strings"

	"onchip/internal/area"
	"onchip/internal/osmodel"
	"onchip/internal/search"
	"onchip/internal/search/missmodel"
	"onchip/internal/sig"
	"onchip/internal/workload"
)

// adviseVersion participates in every request signature, so any change
// to the advise pipeline's semantics (parameterization, response
// shape) re-keys cached results instead of serving stale ones.
// Version 2 added the Space field (and big-space pruned routing).
const adviseVersion = 2

// AdviseRequest parameterizes one allocation-advice run: the question
// "given this area budget, OS personality and workload mix, which
// on-chip configurations are optimal?" served by the advisor daemon.
// The zero value of each field selects the paper's default, so an
// empty request reproduces the Table 6 arrangement.
type AdviseRequest struct {
	// OS is the personality ("Mach" or "Ultrix", case-insensitive);
	// empty selects Mach, the paper's Table 6/7 subject.
	OS string `json:"os,omitempty"`
	// Workloads names the mix (a subset of the Table 2 suite); empty
	// selects the full suite.
	Workloads []string `json:"workloads,omitempty"`
	// Refs is the simulated references per workload; zero selects the
	// experiments' default sweep scale.
	Refs int `json:"refs,omitempty"`
	// BudgetRBE is the on-chip area budget; zero selects the paper's
	// 250,000 rbes.
	BudgetRBE float64 `json:"budget_rbe,omitempty"`
	// MaxCacheAssoc restricts cache associativity (2 reproduces the
	// Table 7 space); zero leaves the space unrestricted.
	MaxCacheAssoc int `json:"max_cache_assoc,omitempty"`
	// Top is the number of ranked allocations returned; zero selects 10
	// (the tables' depth).
	Top int `json:"top,omitempty"`
	// Space selects the design space: "table5" (empty selects it) is
	// the paper's grid, enumerated exhaustively; "big" is the
	// >=1M-triple production space, routed through the pruned search
	// with the simulators still sweeping only the Table 5 grid and
	// off-grid configurations priced by the power-law miss model.
	Space string `json:"space,omitempty"`
}

// Normalize validates the request and canonicalizes it in place --
// defaults filled, OS case-folded, workloads sorted and deduplicated --
// so that equivalent requests produce identical signatures and
// byte-identical responses. maxRefs caps the per-workload scale a
// single request may demand (0 = no cap); the advisor sets it so one
// request cannot monopolize the daemon.
func (r *AdviseRequest) Normalize(maxRefs int) error {
	if _, err := parseVariant(r.OS); err != nil {
		return err
	}
	v, _ := parseVariant(r.OS)
	r.OS = v.String()
	if len(r.Workloads) == 0 {
		r.Workloads = workload.Names()
		sort.Strings(r.Workloads)
	} else {
		seen := map[string]bool{}
		var ws []string
		for _, name := range r.Workloads {
			spec, err := workload.ByName(name)
			if err != nil {
				return err
			}
			if !seen[spec.Name] {
				seen[spec.Name] = true
				ws = append(ws, spec.Name)
			}
		}
		sort.Strings(ws)
		r.Workloads = ws
	}
	if r.Refs == 0 {
		r.Refs = defaultSweepRefs
	}
	if r.Refs < 1000 {
		return fmt.Errorf("advise: refs %d below the 1000-reference floor", r.Refs)
	}
	if maxRefs > 0 && r.Refs > maxRefs {
		return fmt.Errorf("advise: refs %d over this server's %d cap", r.Refs, maxRefs)
	}
	if r.BudgetRBE == 0 {
		r.BudgetRBE = area.BudgetRBE
	}
	if r.BudgetRBE < 0 {
		return fmt.Errorf("advise: negative budget %v", r.BudgetRBE)
	}
	switch r.MaxCacheAssoc {
	case 0, 1, 2, 4, 8:
	default:
		return fmt.Errorf("advise: max_cache_assoc %d not in {0,1,2,4,8}", r.MaxCacheAssoc)
	}
	if r.Top == 0 {
		r.Top = 10
	}
	if r.Top < 1 || r.Top > 1000 {
		return fmt.Errorf("advise: top %d outside [1, 1000]", r.Top)
	}
	switch strings.ToLower(strings.TrimSpace(r.Space)) {
	case "", "table5":
		r.Space = "table5"
	case "big":
		r.Space = "big"
	default:
		return fmt.Errorf("advise: unknown space %q (want table5 or big)", r.Space)
	}
	return nil
}

// Signature content-addresses the normalized request: the FNV-64a
// signature idiom shared with the search checkpoint's space hash. Two
// requests with equal signatures provably ask for the same sweep, so
// the advisor keys its result cache and singleflight dedup on it.
// Call only after Normalize.
func (r AdviseRequest) Signature() string {
	h := sig.New()
	h.Put("advise", adviseVersion, r.OS, len(r.Workloads))
	for _, w := range r.Workloads {
		h.Put(w)
	}
	h.Put(r.Refs, r.BudgetRBE, r.MaxCacheAssoc, r.Top, r.Space)
	return h.String()
}

// RankedAllocation is one row of the advisor's answer: Table 6/7's
// shape as structured data.
type RankedAllocation struct {
	Rank    int     `json:"rank"`
	TLB     string  `json:"tlb"`
	ICache  string  `json:"icache"`
	DCache  string  `json:"dcache"`
	AreaRBE float64 `json:"area_rbe"`
	CPI     float64 `json:"cpi"`
}

// AdviseResponse is the advisor's answer. Its JSON rendering contains
// no timestamps or run-local state, so identical requests marshal to
// byte-identical bodies -- the property the result cache, singleflight
// dedup, and the chaos harness's correctness oracle all rest on.
type AdviseResponse struct {
	Signature string `json:"signature"`
	// Request echoes the normalized parameters the answer is for.
	Request AdviseRequest `json:"request"`
	// Feasible is the number of allocations within the budget. Under
	// the big-space pruned search it is the number of allocations
	// returned (at most Top): the engine only materializes the top of
	// the ranking, never the full feasible set.
	Feasible int `json:"feasible"`
	// Allocations holds the Top best allocations by ascending CPI.
	Allocations []RankedAllocation `json:"allocations"`
}

// Advise runs the full pipeline for one normalized request: the fused
// model-building sweep over the requested OS and workload mix, then
// the budgeted enumeration, returning the ranked allocations. Unlike
// the table experiments it is strict about degradation: if any
// workload sweep fails (injected faults included) the whole request
// errors rather than silently answering from a partial model -- the
// advisor maps that to a retryable 503, and the chaos harness's
// byte-identity oracle only ever sees non-degraded answers.
func Advise(req AdviseRequest, opt Options) (*AdviseResponse, error) {
	v, err := parseVariant(req.OS)
	if err != nil {
		return nil, err
	}
	var specs []osmodel.WorkloadSpec
	for _, name := range req.Workloads {
		spec, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	// The simulators always sweep the Table 5 grid; a big-space request
	// widens only the search, with off-grid configurations priced by
	// the power-law extension and the space explored pruned (an
	// exhaustive scan of millions of triples per request would let one
	// caller monopolize the daemon).
	grid := search.Table5()
	grid.MaxCacheAssoc = req.MaxCacheAssoc
	space := grid
	big := req.Space == "big"
	if big {
		space = search.Big()
		space.MaxCacheAssoc = req.MaxCacheAssoc
	}

	measured, failed, err := buildMeasuredModel(v, specs, grid, req.Refs, opt)
	if err != nil {
		return nil, fmt.Errorf("advise: model-building sweep: %w", err)
	}
	if len(failed) > 0 {
		return nil, fmt.Errorf("advise: degraded model (%d workload sweep(s) failed: %s)",
			len(failed), strings.Join(failed, "; "))
	}
	var model search.PerfModel = measured
	searchOpts := []search.Option{search.WithContext(opt.ctx())}
	if big {
		model = missmodel.FromMeasured(measured)
		searchOpts = append(searchOpts, search.WithPruning(req.Top))
	}
	allocs, err := search.EnumerateE(space, area.Default(), req.BudgetRBE, model, searchOpts...)
	if err != nil {
		return nil, fmt.Errorf("advise: enumeration: %w", err)
	}
	resp := &AdviseResponse{
		Signature: req.Signature(),
		Request:   req,
		Feasible:  len(allocs),
	}
	for i, a := range search.Top(allocs, req.Top) {
		resp.Allocations = append(resp.Allocations, RankedAllocation{
			Rank:    i + 1,
			TLB:     a.TLB.String(),
			ICache:  a.ICache.String(),
			DCache:  a.DCache.String(),
			AreaRBE: a.AreaRBE,
			CPI:     a.CPI,
		})
	}
	return resp, nil
}

// parseVariant maps a request's OS field to the osmodel variant.
func parseVariant(s string) (osmodel.Variant, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "mach", "mach3.0", "mach3":
		return osmodel.Mach, nil
	case "ultrix":
		return osmodel.Ultrix, nil
	}
	return 0, fmt.Errorf("advise: unknown OS %q (want Mach or Ultrix)", s)
}
