package experiments

import (
	"runtime"
	"strconv"
	"sync"

	"onchip/internal/area"
	"onchip/internal/cheetah"
	"onchip/internal/spans"
	"onchip/internal/trace"
	"onchip/internal/vm"
)

// sweepEngine is the fused fast path of the model-building sweep: one
// pass over a workload's reference stream prices the whole Table 5
// cache design space for both streams at once. Per batch it translates
// the references exactly once -- instruction fetches into I-stream
// cache keys, cached loads and stores into packed D-stream keys -- and
// feeds the shared key slices to the single-pass stack simulators
// (cheetah.Sweep for the I-stream, cheetah.DataSweep for the
// write-policy-aware D-stream). Compared with the original three-pass
// sweep this removes two of the three generation passes, the
// per-reference interface dispatch, and the per-configuration direct
// D-cache simulation, while producing bit-identical miss counts.
//
// In parallel mode the schedulable unit is a (simulator group, set
// shard) pair: each (set count, line size) group is further split into
// deterministic set-index shards (cheetah.AllAssoc.Shards), so a
// single large group no longer bounds parallelism and one workload's
// sweep can use the whole machine. Units are statically round-robined
// across the pool's workers; every unit observes the full stream in
// order, so results stay byte-identical to the serial path.
type sweepEngine struct {
	i      *cheetah.Sweep
	d      *cheetah.DataSweep
	instrs uint64

	ikeys []uint64
	dkeys []uint64
	one   [1]trace.Ref

	pool     *groupPool
	ownsPool bool
	// perWorker[w] is the fixed set of units worker w simulates for
	// every batch; static assignment keeps worker lanes deterministic.
	perWorker [][]shardUnit
	shards    int // set shards requested per group (groups clamp to their set count)

	batch    sync.WaitGroup // per-batch barrier
	panicMu  sync.Mutex
	panicked any // first captured worker panic, re-raised after the barrier
}

// enginePar configures the engine's parallel execution. The zero value
// is the serial engine.
type enginePar struct {
	// pool, when non-nil, is a shared worker pool (the model-building
	// sweep runs one pool for all workloads so cores freed by finished
	// workloads flow to the stragglers). Otherwise workers > 1 starts a
	// private pool that close() stops.
	pool    *groupPool
	workers int
	// shards is the per-group set-shard count (rounded to a power of
	// two; each group additionally clamps to its set count); 0 picks
	// autoShards from the pool width.
	shards int
	// tr/lanePrefix instrument a private pool's workers with lanes
	// named "<lanePrefix>.worker.<N>" (one span per consumed batch,
	// feeding the /spans utilization and imbalance summary).
	tr         *spans.Tracer
	lanePrefix string
}

// sweepWorkers sizes a sweep pool: the whole machine, clamped to the
// number of schedulable units that could keep workers busy (<= 0 means
// unclamped). The model-building sweep shares one pool across every
// concurrent workload, so the tail of a sweep -- when most workloads
// have finished -- no longer strands cores on a divided-up allowance.
func sweepWorkers(units int) int {
	w := runtime.NumCPU()
	if units > 0 && w > units {
		w = units
	}
	if w < 1 {
		w = 1
	}
	return w
}

// autoShards picks the per-group set-shard count: the smallest power
// of two giving at least two work units per pool worker, so the
// per-batch barrier does not serialize on one straggler group, capped
// at 8 -- past that the per-shard filter pass over the shared batch
// outweighs the spare parallelism.
func autoShards(workers, groups int) int {
	s := 1
	for s < 8 && groups*s < 2*workers {
		s <<= 1
	}
	return s
}

// shardUnit is one schedulable piece of the engine: a set shard of one
// I-stream or D-stream simulator group (exactly one field is non-nil).
type shardUnit struct {
	i *cheetah.AllAssocShard
	d *cheetah.AllAssocDataShard
}

// newSweepEngine builds the fused engine over the configurations.
// Callers must close() the engine when done with it (a no-op for the
// serial engine or a shared pool).
func newSweepEngine(configs []area.CacheConfig, maxAssoc int, par enginePar) *sweepEngine {
	e := &sweepEngine{
		i: cheetah.NewSweep(configs, maxAssoc),
		d: cheetah.NewDataSweep(configs),
	}
	if par.pool == nil && par.workers <= 1 {
		e.shards = 1
		return e
	}
	width := par.workers
	if par.pool != nil {
		width = par.pool.workers()
	}
	groups := e.i.Simulators() + e.d.Simulators()
	e.shards = par.shards
	if e.shards <= 0 {
		e.shards = autoShards(width, groups)
	}
	var units []shardUnit
	for _, g := range e.i.Groups() {
		for _, s := range g.Shards(e.shards) {
			units = append(units, shardUnit{i: s})
		}
	}
	for _, g := range e.d.Groups() {
		for _, s := range g.Shards(e.shards) {
			units = append(units, shardUnit{d: s})
		}
	}
	e.pool = par.pool
	if e.pool == nil {
		if width > len(units) {
			width = len(units)
		}
		e.pool = newGroupPool(width, par.tr, par.lanePrefix)
		e.ownsPool = true
	}
	e.perWorker = make([][]shardUnit, e.pool.workers())
	for idx, u := range units {
		w := idx % len(e.perWorker)
		e.perWorker[w] = append(e.perWorker[w], u)
	}
	return e
}

// Refs implements trace.BatchSink: the sweep's hot path.
func (e *sweepEngine) Refs(refs []trace.Ref) {
	e.ikeys = e.ikeys[:0]
	e.dkeys = e.dkeys[:0]
	for _, r := range refs {
		if r.Kind == trace.IFetch {
			e.ikeys = append(e.ikeys, vm.CacheKey(r.Addr, r.ASID))
		} else if vm.SegmentOf(r.Addr) != vm.Kseg1 { // uncached
			e.dkeys = append(e.dkeys, cheetah.PackRef(vm.CacheKey(r.Addr, r.ASID), r.Kind == trace.Store))
		}
	}
	e.instrs += uint64(len(e.ikeys))
	if e.pool != nil {
		e.runBatch()
		return
	}
	e.i.AccessKeys(e.ikeys)
	e.d.AccessPacked(e.dkeys)
}

// runBatch fans the translated batch out to the pool and waits for
// every unit to consume it before the shared key slices are reused.
func (e *sweepEngine) runBatch() {
	n := 0
	for _, units := range e.perWorker {
		if len(units) > 0 {
			n++
		}
	}
	e.batch.Add(n)
	for w, units := range e.perWorker {
		if len(units) == 0 {
			continue
		}
		e.pool.chans[w] <- groupJob{units: units, ikeys: e.ikeys, dkeys: e.dkeys, e: e}
	}
	e.batch.Wait()
	if v := e.panicked; v != nil {
		e.panicked = nil
		panic(v)
	}
}

// Ref implements trace.Sink for producers that do not batch.
func (e *sweepEngine) Ref(r trace.Ref) {
	e.one[0] = r
	e.Refs(e.one[:])
}

// iMisses returns the I-stream miss count for one configuration.
func (e *sweepEngine) iMisses(c area.CacheConfig) uint64 { return e.i.Misses(c) }

// dReadMisses returns the D-stream read (load) miss count for one
// configuration under the write-through, no-write-allocate policy.
func (e *sweepEngine) dReadMisses(c area.CacheConfig) uint64 { return e.d.ReadMisses(c) }

// close stops the engine's private pool, if any; shared pools belong
// to their creator. The miss counts remain readable.
func (e *sweepEngine) close() {
	if e.ownsPool {
		e.pool.close()
		e.ownsPool = false
	}
	e.pool = nil
}

// groupPool is a set of simulation workers, each owning one job
// channel. Engines assign their (group, shard) units statically across
// the workers and submit every batch as one job per worker; the
// per-engine barrier means a unit never sees two batches out of order
// even when several engines share the pool. Determinism is free: units
// touch disjoint simulator state, and each unit sees the full stream
// in order on a single worker.
type groupPool struct {
	chans  []chan groupJob
	exited sync.WaitGroup
}

// groupJob is one engine's batch for one worker's units.
type groupJob struct {
	units        []shardUnit
	ikeys, dkeys []uint64
	e            *sweepEngine
}

// newGroupPool starts `workers` simulation workers. A non-nil tracer
// gives each worker a lane named "<lanePrefix>.worker.<N>" recording
// one span per consumed job, which feeds the /spans per-worker
// utilization and shard-imbalance summary; a nil tracer records
// nothing.
func newGroupPool(workers int, tr *spans.Tracer, lanePrefix string) *groupPool {
	p := &groupPool{}
	for w := 0; w < workers; w++ {
		ch := make(chan groupJob, 1)
		p.chans = append(p.chans, ch)
		p.exited.Add(1)
		lane := tr.WorkerLane(lanePrefix + ".worker." + strconv.Itoa(w))
		go p.worker(lane, ch)
	}
	return p
}

// workers returns the pool width.
func (p *groupPool) workers() int { return len(p.chans) }

func (p *groupPool) worker(lane *spans.Lane, ch chan groupJob) {
	defer p.exited.Done()
	for job := range ch {
		job.run(lane)
	}
}

// run consumes one job, capturing a panic into the owning engine so
// runBatch can re-raise it on the submitting goroutine (where the
// sweep's fault recovery can see it) instead of crashing the process.
func (j groupJob) run(lane *spans.Lane) {
	span := lane.Start("sweep.job")
	defer func() {
		if v := recover(); v != nil {
			j.e.panicMu.Lock()
			if j.e.panicked == nil {
				j.e.panicked = v
			}
			j.e.panicMu.Unlock()
		}
		span.End()
		j.e.batch.Done()
	}()
	for _, u := range j.units {
		if u.i != nil {
			u.i.AccessKeys(j.ikeys)
		} else {
			u.d.AccessPacked(j.dkeys)
		}
	}
}

// close shuts the workers down and waits for them to exit.
func (p *groupPool) close() {
	for _, ch := range p.chans {
		close(ch)
	}
	p.exited.Wait()
}
