package experiments

import (
	"runtime"
	"strconv"
	"sync"

	"onchip/internal/area"
	"onchip/internal/cheetah"
	"onchip/internal/spans"
	"onchip/internal/trace"
	"onchip/internal/vm"
)

// sweepEngine is the fused fast path of the model-building sweep: one
// pass over a workload's reference stream prices the whole Table 5
// cache design space for both streams at once. Per batch it translates
// the references exactly once -- instruction fetches into I-stream
// cache keys, cached loads and stores into packed D-stream keys -- and
// feeds the shared key slices to the single-pass stack simulators
// (cheetah.Sweep for the I-stream, cheetah.DataSweep for the
// write-policy-aware D-stream). Compared with the original three-pass
// sweep this removes two of the three generation passes, the
// per-reference interface dispatch, and the per-configuration direct
// D-cache simulation, while producing bit-identical miss counts.
//
// With workers > 1 the (set count, line size) simulator groups are
// partitioned across a private worker pool; each group still observes
// the full stream in order, so results stay deterministic and
// identical to the serial path.
type sweepEngine struct {
	i      *cheetah.Sweep
	d      *cheetah.DataSweep
	instrs uint64

	ikeys []uint64
	dkeys []uint64
	one   [1]trace.Ref
	pool  *groupPool
}

// sweepWorkers sizes the per-workload group pool: the model-building
// sweep already runs `concurrent` workloads in parallel, so each
// workload gets its share of the machine and parallelism inside a
// workload only helps when cores would otherwise idle. The result is
// additionally clamped to `groups`, the number of independent simulator
// shards the pool could hand out (per cheetah.GroupCount, I- plus
// D-stream), so tiny sweeps don't spin workers that would only ever
// block on the batch barrier.
func sweepWorkers(concurrent, groups int) int {
	if concurrent < 1 {
		concurrent = 1
	}
	w := runtime.NumCPU() / concurrent
	if w < 1 {
		w = 1
	}
	if groups > 0 && w > groups {
		w = groups
	}
	return w
}

// newSweepEngine builds the fused engine over the configurations. With
// workers > 1 it starts a group pool; callers must close() the engine
// when done with it. A non-nil tracer gives each pool worker a lane
// named "<lanePrefix>.worker.<N>" recording one span per consumed
// batch, which feeds the /spans per-worker utilization and
// shard-imbalance summary; a nil tracer records nothing.
func newSweepEngine(configs []area.CacheConfig, maxAssoc, workers int, tr *spans.Tracer, lanePrefix string) *sweepEngine {
	e := &sweepEngine{
		i: cheetah.NewSweep(configs, maxAssoc),
		d: cheetah.NewDataSweep(configs),
	}
	if groups := e.i.Simulators() + e.d.Simulators(); workers > groups {
		workers = groups
	}
	if workers > 1 {
		e.pool = newGroupPool(e.i.Groups(), e.d.Groups(), workers, tr, lanePrefix)
	}
	return e
}

// Refs implements trace.BatchSink: the sweep's hot path.
func (e *sweepEngine) Refs(refs []trace.Ref) {
	e.ikeys = e.ikeys[:0]
	e.dkeys = e.dkeys[:0]
	for _, r := range refs {
		if r.Kind == trace.IFetch {
			e.ikeys = append(e.ikeys, vm.CacheKey(r.Addr, r.ASID))
		} else if vm.SegmentOf(r.Addr) != vm.Kseg1 { // uncached
			e.dkeys = append(e.dkeys, cheetah.PackRef(vm.CacheKey(r.Addr, r.ASID), r.Kind == trace.Store))
		}
	}
	e.instrs += uint64(len(e.ikeys))
	if e.pool != nil {
		e.pool.run(e.ikeys, e.dkeys)
		return
	}
	e.i.AccessKeys(e.ikeys)
	e.d.AccessPacked(e.dkeys)
}

// Ref implements trace.Sink for producers that do not batch.
func (e *sweepEngine) Ref(r trace.Ref) {
	e.one[0] = r
	e.Refs(e.one[:])
}

// iMisses returns the I-stream miss count for one configuration.
func (e *sweepEngine) iMisses(c area.CacheConfig) uint64 { return e.i.Misses(c) }

// dReadMisses returns the D-stream read (load) miss count for one
// configuration under the write-through, no-write-allocate policy.
func (e *sweepEngine) dReadMisses(c area.CacheConfig) uint64 { return e.d.ReadMisses(c) }

// close stops the group pool, if any. The miss counts remain readable.
func (e *sweepEngine) close() {
	if e.pool != nil {
		e.pool.close()
		e.pool = nil
	}
}

// groupPool fans one batch of translated keys out to workers that each
// own a disjoint subset of the simulator groups. Determinism is free:
// the groups are independent, and the per-batch barrier means every
// group has consumed the batch before the shared key slices are
// reused.
type groupPool struct {
	chans  []chan groupJob
	batch  sync.WaitGroup // per-batch barrier
	exited sync.WaitGroup // worker shutdown
	panics []any          // one slot per worker, read after the barrier
}

type groupJob struct {
	ikeys, dkeys []uint64
}

type groupShard struct {
	i []*cheetah.AllAssoc
	d []*cheetah.AllAssocData
}

func newGroupPool(igroups []*cheetah.AllAssoc, dgroups []*cheetah.AllAssocData, workers int, tr *spans.Tracer, lanePrefix string) *groupPool {
	// Round-robin the groups across shards, continuing the rotation from
	// the I-groups into the D-groups so no shard collects a systematic
	// excess of either kind.
	shards := make([]groupShard, workers)
	for idx, g := range igroups {
		shards[idx%workers].i = append(shards[idx%workers].i, g)
	}
	for idx, g := range dgroups {
		w := (idx + len(igroups)) % workers
		shards[w].d = append(shards[w].d, g)
	}
	p := &groupPool{panics: make([]any, workers)}
	for w := range shards {
		ch := make(chan groupJob)
		p.chans = append(p.chans, ch)
		p.exited.Add(1)
		ws := workerState{w: w, shard: shards[w],
			lane: tr.WorkerLane(lanePrefix + ".worker." + strconv.Itoa(w))}
		go p.worker(ws, ch)
	}
	return p
}

// workerState pairs a worker's shard with its span lane (nil when
// untraced).
type workerState struct {
	w     int
	shard groupShard
	lane  *spans.Lane
}

func (p *groupPool) worker(ws workerState, ch chan groupJob) {
	defer p.exited.Done()
	for job := range ch {
		p.consume(ws, job)
	}
}

// consume runs one job, capturing a panic into the worker's slot so run
// can re-raise it on the calling goroutine (where the sweep's fault
// recovery can see it) instead of crashing the process. Each job is one
// top-level span on the worker's lane, so lane busy time sums to the
// worker's real simulation time.
func (p *groupPool) consume(ws workerState, job groupJob) {
	span := ws.lane.Start("sweep.job")
	defer func() {
		if v := recover(); v != nil {
			p.panics[ws.w] = v
		}
		span.End()
		p.batch.Done()
	}()
	for _, g := range ws.shard.i {
		g.AccessKeys(job.ikeys)
	}
	for _, g := range ws.shard.d {
		g.AccessPacked(job.dkeys)
	}
}

// run distributes one batch and waits for every worker to finish it.
func (p *groupPool) run(ikeys, dkeys []uint64) {
	p.batch.Add(len(p.chans))
	job := groupJob{ikeys: ikeys, dkeys: dkeys}
	for _, ch := range p.chans {
		ch <- job
	}
	p.batch.Wait()
	for _, v := range p.panics {
		if v != nil {
			panic(v)
		}
	}
}

// close shuts the workers down and waits for them to exit.
func (p *groupPool) close() {
	for _, ch := range p.chans {
		close(ch)
	}
	p.exited.Wait()
}
