package experiments

import (
	"strconv"

	"onchip/internal/area"
	"onchip/internal/report"
)

func init() {
	register("table1", "Table 1: on-chip memory in current-generation (1992-93) microprocessors, priced with the area model", table1)
}

// Processor is one row of the paper's Table 1 survey.
type Processor struct {
	Name      string
	DieMM2    int // 0 = not reported
	ICache    area.CacheConfig
	DCache    area.CacheConfig // zero CapacityBytes = unified (ICache holds it)
	TLB       area.TLBConfig
	SecondTLB area.TLBConfig // split I/D TLBs (Pentium, Alpha, HARP-1)
	Unified   bool
}

// Survey returns the paper's Table 1 processors. Line sizes are in
// 4-byte words as in the paper; a few entries the paper leaves blank are
// zero here. The MicroSPARC's 32-entry TLB and similar small structures
// price with the same model as the design space.
func Survey() []Processor {
	c := func(kb, line, assoc int) area.CacheConfig {
		return area.CacheConfig{CapacityBytes: kb << 10, LineWords: line, Assoc: assoc}
	}
	t := func(entries, assoc int) area.TLBConfig {
		return area.TLBConfig{Entries: entries, Assoc: assoc}
	}
	fa := area.FullyAssociative
	return []Processor{
		{Name: "Intel i486DX", DieMM2: 81, ICache: c(8, 4, 4), Unified: true, TLB: t(32, 4)},
		{Name: "Cyrix 486DX", DieMM2: 148, ICache: c(8, 4, 4), Unified: true, TLB: t(32, 4)},
		{Name: "Intel Pentium", DieMM2: 296, ICache: c(8, 8, 2), DCache: c(8, 8, 2), TLB: t(32, 4), SecondTLB: t(64, 4)},
		{Name: "DEC 21064 (Alpha)", DieMM2: 234, ICache: c(8, 8, 1), DCache: c(8, 8, 1), TLB: t(32, fa), SecondTLB: t(12, fa)},
		{Name: "Hitachi HARP-1 (PA-RISC)", DieMM2: 264, ICache: c(8, 8, 1), DCache: c(16, 8, 1), TLB: t(128, 1), SecondTLB: t(128, 1)},
		{Name: "PowerPC 601", DieMM2: 121, ICache: c(32, 16, 8), Unified: true, TLB: t(256, 2)},
		{Name: "MIPS R4000", DieMM2: 184, ICache: c(8, 8, 1), DCache: c(8, 8, 1), TLB: t(96, fa)},
		{Name: "MIPS R4200", DieMM2: 81, ICache: c(16, 8, 1), DCache: c(8, 4, 1), TLB: t(64, fa)},
		{Name: "MIPS R4400", DieMM2: 184, ICache: c(16, 8, 1), DCache: c(16, 8, 1), TLB: t(96, fa)},
		{Name: "MIPS TFP", DieMM2: 298, ICache: c(16, 8, 1), DCache: c(16, 8, 1), TLB: t(384, 3)},
		{Name: "SuperSPARC (Viking)", ICache: c(20, 16, 5), DCache: c(16, 8, 4), TLB: t(64, fa)},
		{Name: "MicroSPARC", DieMM2: 225, ICache: c(4, 8, 1), DCache: c(2, 4, 1), TLB: t(32, fa)},
		{Name: "TeraSPARC", ICache: c(4, 8, 1), DCache: c(4, 8, 1)},
	}
}

// OnChipMemoryRBE prices a survey row's memory structures with the area
// model; the result is the quantity the paper's 250,000-rbe budget was
// derived from.
func OnChipMemoryRBE(m area.Model, p Processor) float64 {
	total := m.CacheArea(p.ICache)
	if !p.Unified && p.DCache.CapacityBytes > 0 {
		total += m.CacheArea(p.DCache)
	}
	if p.TLB.Entries > 0 {
		total += m.TLBArea(p.TLB)
	}
	if p.SecondTLB.Entries > 0 {
		total += m.TLBArea(p.SecondTLB)
	}
	return total
}

func table1(Options) (Result, error) {
	m := area.Default()
	t := report.NewTable("On-chip memory in 1992-93 microprocessors, priced in rbe",
		"Processor", "Die mm2", "I-cache", "D-cache", "TLB", "Total rbe")
	maxRBE := 0.0
	for _, p := range Survey() {
		dc := "(unified)"
		if !p.Unified && p.DCache.CapacityBytes > 0 {
			dc = p.DCache.String()
		}
		tl := "-"
		if p.TLB.Entries > 0 {
			tl = p.TLB.String()
			if p.SecondTLB.Entries > 0 {
				tl += " + " + p.SecondTLB.String()
			}
		}
		die := "-"
		if p.DieMM2 > 0 {
			die = strconv.Itoa(p.DieMM2)
		}
		rbe := OnChipMemoryRBE(m, p)
		if rbe > maxRBE {
			maxRBE = rbe
		}
		t.Row(p.Name, die, p.ICache.String(), dc, tl, rbe)
	}
	return Result{
		Text: t.String(),
		Notes: []string{
			"the paper derives its 250,000-rbe budget from this survey: most shipping parts price below it",
		},
	}, nil
}
