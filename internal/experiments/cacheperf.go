package experiments

import (
	"fmt"
	"strings"

	"onchip/internal/area"
	"onchip/internal/cache"
	"onchip/internal/cheetah"
	"onchip/internal/osmodel"
	"onchip/internal/report"
	"onchip/internal/trace"
	"onchip/internal/vm"
	"onchip/internal/workload"
)

func init() {
	register("fig9", "Figure 9: I-cache miss ratio and CPI contribution vs size and line size (Ultrix and Mach)", figure9)
	register("fig10", "Figure 10: set-associative I-cache performance, 4-word lines (Ultrix and Mach)", figure10)
}

const defaultSweepRefs = 1_000_000

// icacheSweep measures instruction-stream miss counts for a family of
// set-associative configurations via cheetah.Sweep: configurations
// sharing a (set count, line size) pair share one single-pass
// all-associativity simulator.
type icacheSweep struct {
	sweep  *cheetah.Sweep
	instrs uint64
	keys   []uint64 // per-batch key buffer, reused
}

func newICacheSweep(configs []area.CacheConfig, maxAssoc int) *icacheSweep {
	return &icacheSweep{sweep: cheetah.NewSweep(configs, maxAssoc)}
}

// Ref implements trace.Sink: only instruction fetches touch the I-cache.
func (s *icacheSweep) Ref(r trace.Ref) {
	if r.Kind != trace.IFetch {
		return
	}
	s.instrs++
	s.sweep.Access(vm.CacheKey(r.Addr, r.ASID))
}

// Refs implements trace.BatchSink: the cache keys are computed once
// into a shared buffer, then each simulator group runs a tight loop
// over it.
func (s *icacheSweep) Refs(refs []trace.Ref) {
	s.keys = s.keys[:0]
	for _, r := range refs {
		if r.Kind == trace.IFetch {
			s.keys = append(s.keys, vm.CacheKey(r.Addr, r.ASID))
		}
	}
	s.instrs += uint64(len(s.keys))
	s.sweep.AccessKeys(s.keys)
}

// misses returns the exact miss count for one configuration.
func (s *icacheSweep) misses(c area.CacheConfig) uint64 {
	return s.sweep.Misses(c)
}

// dcacheSweep measures data-stream behaviour with the write-policy-aware
// single-pass stack simulator (cheetah.DataSweep): the no-write-allocate
// store policy is carried down the stack Thompson-Smith style, so one
// simulator per (set count, line size) pair replaces the direct
// simulation of every configuration that this sweep originally ran.
// Direct simulation survives in the tests as the cross-validation
// oracle (the two agree bit-for-bit).
type dcacheSweep struct {
	sweep  *cheetah.DataSweep
	instrs uint64
	keys   []uint64 // per-batch packed-reference buffer, reused
}

func newDCacheSweep(configs []area.CacheConfig) *dcacheSweep {
	return &dcacheSweep{sweep: cheetah.NewDataSweep(configs)}
}

// Ref implements trace.Sink.
func (s *dcacheSweep) Ref(r trace.Ref) {
	switch r.Kind {
	case trace.IFetch:
		s.instrs++
	case trace.Load, trace.Store:
		if vm.SegmentOf(r.Addr) == vm.Kseg1 {
			return // uncached
		}
		s.sweep.Access(vm.CacheKey(r.Addr, r.ASID), r.Kind == trace.Store)
	}
}

// Refs implements trace.BatchSink.
func (s *dcacheSweep) Refs(refs []trace.Ref) {
	s.keys = s.keys[:0]
	for _, r := range refs {
		if r.Kind == trace.IFetch {
			s.instrs++
		} else if vm.SegmentOf(r.Addr) != vm.Kseg1 {
			s.keys = append(s.keys, cheetah.PackRef(vm.CacheKey(r.Addr, r.ASID), r.Kind == trace.Store))
		}
	}
	s.sweep.AccessPacked(s.keys)
}

// readMisses returns the exact load miss count for one configuration.
func (s *dcacheSweep) readMisses(c area.CacheConfig) uint64 {
	return s.sweep.ReadMisses(c)
}

// loads returns the number of cached (non-Kseg1) loads seen.
func (s *dcacheSweep) loads() uint64 { return s.sweep.Reads() }

// sweepSuiteI runs the whole suite under the OS variant and returns
// aggregate I-stream miss ratios and CPI contributions per config.
func sweepSuiteI(v osmodel.Variant, configs []area.CacheConfig, refsEach, maxAssoc int) (ratio, cpi map[area.CacheConfig]float64) {
	missTotal := make(map[area.CacheConfig]uint64)
	var instrs uint64
	for _, spec := range workload.All() {
		sweep := newICacheSweep(configs, maxAssoc)
		osmodel.NewSystem(v, spec).Generate(refsEach, sweep)
		for _, c := range configs {
			missTotal[c] += sweep.misses(c)
		}
		instrs += sweep.instrs
	}
	ratio = make(map[area.CacheConfig]float64, len(configs))
	cpi = make(map[area.CacheConfig]float64, len(configs))
	for _, c := range configs {
		ratio[c] = float64(missTotal[c]) / float64(instrs)
		cpi[c] = float64(missTotal[c]) * float64(cache.MissPenalty(c.LineWords)) / float64(instrs)
	}
	return ratio, cpi
}

// figure9 sweeps direct-mapped I-caches over size x line size for both
// operating systems, reporting miss ratio and CPI contribution.
func figure9(opt Options) (Result, error) {
	refs := opt.refs(defaultSweepRefs)
	sizes := []int{2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10}
	lines := []int{1, 2, 4, 8, 16, 32}
	var configs []area.CacheConfig
	for _, size := range sizes {
		for _, l := range lines {
			configs = append(configs, area.CacheConfig{CapacityBytes: size, LineWords: l, Assoc: 1})
		}
	}

	var b strings.Builder
	notes := []string{
		"paper anchors: Ultrix 8-KB/4-word miss ratio ~0.028, 32-KB/4-word ~0.013; Mach 8-KB/4-word ~0.065 (>2x Ultrix)",
		"shape to check: under Mach, doubling line size beats doubling cache size, with no pollution through 32-word lines;",
		"under Ultrix large lines pollute small caches; CPI turns up at 16-word lines for the 6+1-per-word penalty",
	}
	for _, v := range []osmodel.Variant{osmodel.Ultrix, osmodel.Mach} {
		ratio, cpi := sweepSuiteI(v, configs, refs, 1)
		var rSeries, cSeries []report.Series
		for _, l := range lines {
			rs := report.Series{Label: fmt.Sprintf("%d-word line", l)}
			cs := report.Series{Label: fmt.Sprintf("%d-word line", l)}
			for _, size := range sizes {
				c := area.CacheConfig{CapacityBytes: size, LineWords: l, Assoc: 1}
				x := fmt.Sprintf("%dK", size>>10)
				rs.Points = append(rs.Points, report.Point{X: x, Y: ratio[c]})
				cs.Points = append(cs.Points, report.Point{X: x, Y: cpi[c]})
			}
			rSeries = append(rSeries, rs)
			cSeries = append(cSeries, cs)
		}
		b.WriteString(report.Chart(fmt.Sprintf("%s: I-cache miss ratio (direct-mapped)", v), "miss ratio", rSeries...))
		b.WriteString(report.Chart(fmt.Sprintf("%s: I-cache contribution to CPI", v), "CPI", cSeries...))
		b.WriteByte('\n')
	}
	return Result{Text: b.String(), Notes: notes}, nil
}

// figure10 sweeps associativity at a fixed 4-word line for both
// operating systems.
func figure10(opt Options) (Result, error) {
	refs := opt.refs(defaultSweepRefs)
	sizes := []int{4 << 10, 8 << 10, 16 << 10, 32 << 10}
	assocs := []int{1, 2, 4, 8}
	var configs []area.CacheConfig
	for _, size := range sizes {
		for _, a := range assocs {
			configs = append(configs, area.CacheConfig{CapacityBytes: size, LineWords: 4, Assoc: a})
		}
	}

	var b strings.Builder
	for _, v := range []osmodel.Variant{osmodel.Ultrix, osmodel.Mach} {
		ratio, cpi := sweepSuiteI(v, configs, refs, 8)
		var rSeries, cSeries []report.Series
		for _, a := range assocs {
			rs := report.Series{Label: fmt.Sprintf("%d-way", a)}
			cs := report.Series{Label: fmt.Sprintf("%d-way", a)}
			for _, size := range sizes {
				c := area.CacheConfig{CapacityBytes: size, LineWords: 4, Assoc: a}
				x := fmt.Sprintf("%dK", size>>10)
				rs.Points = append(rs.Points, report.Point{X: x, Y: ratio[c]})
				cs.Points = append(cs.Points, report.Point{X: x, Y: cpi[c]})
			}
			rSeries = append(rSeries, rs)
			cSeries = append(cSeries, cs)
		}
		b.WriteString(report.Chart(fmt.Sprintf("%s: I-cache miss ratio (4-word lines)", v), "miss ratio", rSeries...))
		b.WriteString(report.Chart(fmt.Sprintf("%s: I-cache contribution to CPI (4-word lines)", v), "CPI", cSeries...))
		b.WriteByte('\n')
	}
	return Result{
		Text: b.String(),
		Notes: []string{
			"paper: associativity benefits Mach over a broader range of configurations than Ultrix",
			"(Ultrix gains mainly on small caches going direct-mapped to 2-way); a Mach 4-KB 8-way cache still misses >0.03",
		},
	}, nil
}
