package experiments

import (
	"fmt"

	"onchip/internal/machine"
	"onchip/internal/osmodel"
	"onchip/internal/report"
	"onchip/internal/workload"
)

func init() {
	register("ext-multiapi", "Extension: one shared API server vs one API server per application (the title's scenario)", extMultiAPI)
}

// extMultiAPI measures the configuration the paper's title names but its
// single-API-server testbed could not: several applications each served
// by their own API server (Figure 1's BSD, DOS, MacOS, VMS servers).
// Both conditions run the same two workloads time-sliced under Mach; the
// only difference is whether their system calls land in one shared
// server address space or in one per application.
func extMultiAPI(opt Options) (Result, error) {
	refs := opt.refs(defaultStallRefs)
	specs := []osmodel.WorkloadSpec{workload.MPEGPlay(), workload.MAB()}

	t := report.NewTable("Shared vs per-application API servers (mpeg_play + mab, Mach, time-sliced)",
		"API servers", "CPI", "TLB CPI", "I-cache CPI", "D-cache CPI")
	run := func(label string, multi *osmodel.Multi) {
		cfg := machine.DECstation3100()
		cfg.IsServerASID = osmodel.IsServerASID
		m := machine.New(cfg)
		multi.Generate(2*refs, m)
		b := m.Breakdown()
		t.Row(label, fmt.Sprintf("%.2f", b.CPI),
			fmt.Sprintf("%.3f", b.Comp[machine.CompTLB]),
			fmt.Sprintf("%.3f", b.Comp[machine.CompICache]),
			fmt.Sprintf("%.3f", b.Comp[machine.CompDCache]))
	}
	run("one shared server", osmodel.NewMulti(osmodel.Mach, specs[0], specs[1]))
	run("one server per app", osmodel.NewMultiAPI(osmodel.Mach, specs[0], specs[1]))

	return Result{
		Text: t.String(),
		Notes: []string{
			"with per-application servers the same service code exists in two address spaces: the",
			"shared server's warm code and TLB entries are lost, raising I-cache and TLB pressure --",
			"the direction the paper predicts for systems that actually host several APIs at once",
		},
	}, nil
}
