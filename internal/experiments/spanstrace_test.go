package experiments

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"

	"onchip/internal/area"
	"onchip/internal/osmodel"
	"onchip/internal/spans"
	"onchip/internal/workload"
)

// chromeEvent mirrors the Chrome trace-event schema that Perfetto and
// chrome://tracing load; the golden test decodes the written trace back
// through it.
type chromeEvent struct {
	Ph   string  `json:"ph"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Args struct {
		Name   string `json:"name"`
		ID     uint64 `json:"id"`
		Parent uint64 `json:"parent"`
	} `json:"args"`
}

// TestSweepChromeTraceGolden runs a fixed two-workload sweep through
// the traced engine and pins the exported Chrome trace: valid JSON in
// the trace-event schema, no dangling open spans, the exact expected
// set of (lane, span-name) pairs, and correct parentage (phases nest
// under their workload span; worker jobs are top-level on their lane).
// Durations and counts vary run to run; the structure must not.
func TestSweepChromeTraceGolden(t *testing.T) {
	tr := spans.New(0)
	// Four distinct (sets, line-size) groups per stream, so the engine
	// keeps all four requested workers and every worker lane appears.
	cacheCfgs := []area.CacheConfig{
		{CapacityBytes: 2 << 10, LineWords: 4, Assoc: 1},
		{CapacityBytes: 2 << 10, LineWords: 16, Assoc: 2},
		{CapacityBytes: 8 << 10, LineWords: 4, Assoc: 2},
		{CapacityBytes: 8 << 10, LineWords: 16, Assoc: 1},
	}
	for _, spec := range []osmodel.WorkloadSpec{workload.MPEGPlay(), workload.MAB()} {
		lane := tr.Lane("workload/" + spec.Name)
		wl := lane.Start("sweep.workload")
		engine := newSweepEngine(cacheCfgs, 8, enginePar{workers: 4, tr: tr, lanePrefix: "sweep/" + spec.Name})
		sys := osmodel.NewSystem(osmodel.Mach, spec)
		warm := lane.Start("generate.warmup")
		sys.Generate(5_000, engine)
		warm.End()
		meas := lane.Start("generate.measure")
		sys.Generate(15_000, engine)
		meas.End()
		engine.close()
		wl.End()
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		DisplayTimeUnit string        `json:"displayTimeUnit"`
		TraceEvents     []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", trace.DisplayTimeUnit)
	}

	laneName := map[int]string{}
	for _, e := range trace.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			laneName[e.Tid] = e.Args.Name
		}
	}

	pairSet := map[string]bool{}
	type spanInfo struct {
		name   string
		tid    int
		parent uint64
	}
	byID := map[uint64]spanInfo{}
	for _, e := range trace.TraceEvents {
		switch e.Ph {
		case "M":
		case "X":
			if e.Pid != 1 || e.Cat != "span" || e.Ts < 0 || e.Dur < 0 || e.Args.ID == 0 {
				t.Errorf("malformed X event: %+v", e)
			}
			if laneName[e.Tid] == "" {
				t.Errorf("span %q on tid %d with no thread_name metadata", e.Name, e.Tid)
			}
			pairSet[laneName[e.Tid]+"|"+e.Name] = true
			byID[e.Args.ID] = spanInfo{name: e.Name, tid: e.Tid, parent: e.Args.Parent}
		case "B":
			t.Errorf("open span left in completed trace: %+v", e)
		default:
			t.Errorf("unknown event phase %q: %+v", e.Ph, e)
		}
	}

	var pairs []string
	for p := range pairSet {
		pairs = append(pairs, p)
	}
	sort.Strings(pairs)
	golden := []string{
		"sweep/mab.worker.0|sweep.job",
		"sweep/mab.worker.1|sweep.job",
		"sweep/mab.worker.2|sweep.job",
		"sweep/mab.worker.3|sweep.job",
		"sweep/mpeg_play.worker.0|sweep.job",
		"sweep/mpeg_play.worker.1|sweep.job",
		"sweep/mpeg_play.worker.2|sweep.job",
		"sweep/mpeg_play.worker.3|sweep.job",
		"workload/mab|generate.measure",
		"workload/mab|generate.warmup",
		"workload/mab|sweep.workload",
		"workload/mpeg_play|generate.measure",
		"workload/mpeg_play|generate.warmup",
		"workload/mpeg_play|sweep.workload",
	}
	if len(pairs) != len(golden) {
		t.Fatalf("lane|span pairs:\n got %v\nwant %v", pairs, golden)
	}
	for i := range golden {
		if pairs[i] != golden[i] {
			t.Fatalf("lane|span pairs:\n got %v\nwant %v", pairs, golden)
		}
	}

	// Parentage: generation phases nest under their lane's
	// sweep.workload span; workload and worker-job spans are top-level.
	for id, s := range byID {
		switch s.name {
		case "generate.warmup", "generate.measure":
			p, ok := byID[s.parent]
			if !ok || p.name != "sweep.workload" || p.tid != s.tid {
				t.Errorf("span %d (%s): parent %+v, want sweep.workload on same lane", id, s.name, p)
			}
		case "sweep.workload", "sweep.job":
			if s.parent != 0 {
				t.Errorf("span %d (%s): parent %d, want top-level", id, s.name, s.parent)
			}
		}
	}
}
