package experiments

// The paper's second proposed extension (Section 6): "model the die-area
// cost and performance benefits of other architectural structures, such
// as write buffers, pre-fetching units, streaming buffers" and, from
// Section 5.4, second-level caches. Three experiments take it up.

import (
	"fmt"

	"onchip/internal/area"
	"onchip/internal/cache"
	"onchip/internal/machine"
	"onchip/internal/monitor"
	"onchip/internal/osmodel"
	"onchip/internal/report"
	"onchip/internal/wbuf"
	"onchip/internal/workload"
)

func init() {
	register("ext-l2", "Extension: small primary caches + off-chip L2 vs large primaries (section 5.4 remark)", extL2)
	register("ext-prefetch", "Extension: next-line I-prefetch vs longer lines (section 6 structures)", extPrefetch)
	register("ext-wbuf", "Extension: write-buffer depth, priced with the area model (section 6 structures)", extWBuf)
}

// extL2 compares spending the budget on large primaries against small
// fast primaries backed by an off-chip second-level cache.
func extL2(opt Options) (Result, error) {
	refs := opt.refs(defaultStallRefs)
	t := report.NewTable("Primary caches vs primary + off-chip 256-KB L2 (suite average, Mach)",
		"Organization", "CPI", "I-cache CPI", "D-cache CPI", "On-chip rbe")
	am := area.Default()

	type org struct {
		name   string
		i, d   area.CacheConfig
		withL2 bool
	}
	big := org{"32+8 KB primaries, no L2",
		area.CacheConfig{CapacityBytes: 32 << 10, LineWords: 8, Assoc: 2},
		area.CacheConfig{CapacityBytes: 8 << 10, LineWords: 8, Assoc: 2}, false}
	small := org{"8+8 KB primaries + L2",
		area.CacheConfig{CapacityBytes: 8 << 10, LineWords: 8, Assoc: 2},
		area.CacheConfig{CapacityBytes: 8 << 10, LineWords: 8, Assoc: 2}, true}

	for _, o := range []org{big, small} {
		var avg machine.Breakdown
		for _, spec := range workload.All() {
			cfg := machine.DECstation3100()
			cfg.ICache = cache.Config{CacheConfig: o.i}
			cfg.DCache = cache.Config{CacheConfig: o.d}
			cfg.OtherCPI = spec.OtherCPI
			cfg.IsServerASID = osmodel.IsServerASID
			if o.withL2 {
				cfg.L2 = &cache.Config{CacheConfig: area.CacheConfig{
					CapacityBytes: 256 << 10, LineWords: 8, Assoc: 4}, WriteAllocate: true}
				cfg.L2HitCycles = 5
			}
			m := machine.New(cfg)
			osmodel.NewSystem(osmodel.Mach, spec).Generate(refs, m)
			b := m.Breakdown()
			avg.CPI += b.CPI
			for c := range b.Comp {
				avg.Comp[c] += b.Comp[c]
			}
		}
		n := float64(len(workload.All()))
		onchip := am.CacheArea(o.i) + am.CacheArea(o.d)
		t.Row(o.name, fmt.Sprintf("%.2f", avg.CPI/n),
			fmt.Sprintf("%.3f", avg.Comp[machine.CompICache]/n),
			fmt.Sprintf("%.3f", avg.Comp[machine.CompDCache]/n),
			fmt.Sprintf("%.0f", onchip))
	}
	return Result{
		Text: t.String(),
		Notes: []string{
			"section 5.4: high-end parts will put extra memory in an L2 because primary access times",
			"cannot grow; the L2 softens every primary miss (5 cycles vs 13 to memory), letting small",
			"fast primaries compete with large ones at a fraction of the on-chip area",
		},
	}, nil
}

// extPrefetch pits next-line prefetch against longer lines for the Mach
// I-stream.
func extPrefetch(opt Options) (Result, error) {
	refs := opt.refs(defaultStallRefs)
	t := report.NewTable("Next-line I-prefetch vs longer lines, 8-KB direct-mapped I-cache (suite average, Mach)",
		"Organization", "I-cache CPI", "I-cache rbe")
	am := area.Default()
	type org struct {
		name     string
		line     int
		prefetch bool
	}
	for _, o := range []org{
		{"4-word lines", 4, false},
		{"4-word lines + next-line prefetch", 4, true},
		{"8-word lines", 8, false},
		{"16-word lines", 16, false},
	} {
		icfg := area.CacheConfig{CapacityBytes: 8 << 10, LineWords: o.line, Assoc: 1}
		var icpi float64
		for _, spec := range workload.All() {
			cfg := machine.DECstation3100()
			cfg.ICache = cache.Config{CacheConfig: icfg}
			cfg.IPrefetchNextLine = o.prefetch
			cfg.OtherCPI = spec.OtherCPI
			cfg.IsServerASID = osmodel.IsServerASID
			m := machine.New(cfg)
			osmodel.NewSystem(osmodel.Mach, spec).Generate(refs, m)
			icpi += m.Breakdown().Comp[machine.CompICache]
		}
		t.Row(o.name, fmt.Sprintf("%.3f", icpi/float64(len(workload.All()))),
			fmt.Sprintf("%.0f", am.CacheArea(icfg)))
	}
	return Result{
		Text: t.String(),
		Notes: []string{
			"Mach's long one-touch service paths are exactly what sequential prefetch exploits:",
			"prefetching a 4-word-line cache approaches the miss behaviour of doubled lines while",
			"keeping the shorter line's refill latency and the smaller tag-array cost",
		},
	}, nil
}

// extWBuf sweeps write-buffer depth and prices each point with the area
// model.
func extWBuf(opt Options) (Result, error) {
	refs := opt.refs(defaultStallRefs)
	am := area.Default()
	t := report.NewTable("Write-buffer depth: stall cycles vs area (IOzone + video_play under Mach)",
		"Entries", "WB CPI", "Area (rbe)", "CPI saved per 1k rbe vs previous")
	prevCPI, prevArea := 0.0, 0.0
	for i, entries := range []int{1, 2, 4, 8, 16} {
		var wbCPI float64
		for _, spec := range []osmodel.WorkloadSpec{workload.IOzone(), workload.VideoPlay()} {
			cfg := machine.DECstation3100()
			cfg.WB = wbuf.Config{Entries: entries, WriteCycles: 5}
			r := monitor.Measure(osmodel.Mach, spec, refs, cfg)
			wbCPI += r.Breakdown.Comp[machine.CompWB]
		}
		wbCPI /= 2
		a := am.WriteBufferArea(entries)
		marginal := "-"
		if i > 0 && a > prevArea {
			marginal = fmt.Sprintf("%.3f", (prevCPI-wbCPI)/((a-prevArea)/1000))
		}
		t.Row(entries, fmt.Sprintf("%.3f", wbCPI), fmt.Sprintf("%.0f", a), marginal)
		prevCPI, prevArea = wbCPI, a
	}
	return Result{
		Text: t.String(),
		Notes: []string{
			"write buffers are tiny next to caches (hundreds of rbe per entry), so buying depth",
			"until the stall curve flattens is nearly free -- the section 6 structure-costing",
			"exercise confirms the era's choice of 4-8 entries",
		},
	}, nil
}
