package experiments

import (
	"fmt"

	"onchip/internal/area"
	"onchip/internal/cache"
	"onchip/internal/machine"
	"onchip/internal/osmodel"
	"onchip/internal/report"
	"onchip/internal/workload"
)

func init() {
	register("ext-unified", "Extension: split vs unified caches at equal capacity (the Table 1 design split)", extUnified)
}

// extUnified compares the two cache styles of the paper's Table 1 survey
// -- split I/D (MIPS, Alpha, Pentium) versus unified (i486, PowerPC 601)
// -- at equal total capacity and cost, under both operating systems.
func extUnified(opt Options) (Result, error) {
	refs := opt.refs(defaultStallRefs)
	am := area.Default()
	split := area.CacheConfig{CapacityBytes: 8 << 10, LineWords: 4, Assoc: 2}
	unified := area.CacheConfig{CapacityBytes: 16 << 10, LineWords: 4, Assoc: 2}

	t := report.NewTable("Split 8+8 KB vs unified 16 KB (4-word lines, 2-way), mpeg_play",
		"OS", "Organization", "CPI", "I-cache CPI", "D-cache CPI", "Area (rbe)")
	spec := workload.MPEGPlay()
	for _, v := range []osmodel.Variant{osmodel.Ultrix, osmodel.Mach} {
		for _, uni := range []bool{false, true} {
			cfg := machine.DECstation3100()
			cfg.OtherCPI = spec.OtherCPI
			cfg.IsServerASID = osmodel.IsServerASID
			var areaRBE float64
			if uni {
				cfg.ICache = cache.Config{CacheConfig: unified}
				cfg.Unified = true
				areaRBE = am.CacheArea(unified)
			} else {
				cfg.ICache = cache.Config{CacheConfig: split}
				cfg.DCache = cache.Config{CacheConfig: split}
				areaRBE = 2 * am.CacheArea(split)
			}
			m := machine.New(cfg)
			osmodel.NewSystem(v, spec).Generate(refs, m)
			b := m.Breakdown()
			label := "split 8+8"
			if uni {
				label = "unified 16"
			}
			t.Row(v.String(), label, fmt.Sprintf("%.2f", b.CPI),
				fmt.Sprintf("%.3f", b.Comp[machine.CompICache]),
				fmt.Sprintf("%.3f", b.Comp[machine.CompDCache]),
				fmt.Sprintf("%.0f", areaRBE))
		}
	}
	return Result{
		Text: t.String(),
		Notes: []string{
			"the unified array is slightly cheaper (one tag array) and adapts its I/D split to the",
			"workload, but instruction and data streams displace each other; Table 1 shows 1992-93",
			"designs took both positions -- this experiment lets the workload decide",
		},
	}, nil
}
