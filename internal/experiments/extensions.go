package experiments

// The paper's Section 6 names two extensions it did not pursue, and
// Section 4 describes OS restructuring trends it could not yet measure.
// These experiments implement them on top of the reproduction:
//
//   - ext-atime: add the Wada-style access-time model as a cycle-time
//     constraint on the Table 6 search ("an accurate access-time model
//     ... could be used to add another dimension to this style of
//     cost/benefit analysis").
//   - ext-ool: vary Mach's out-of-line transfer threshold ("avoiding
//     RPCs through more aggressive virtual memory sharing, however, is
//     likely to shift misses from the I-cache to the TLB", Section 4.3).
//   - ext-servers: decompose the monolithic BSD server into
//     small-granularity servers ("each of these restructuring trends
//     spreads-out system code and further increases instruction path
//     lengths", Section 4.1, after Black et al.).

import (
	"fmt"

	"onchip/internal/area"
	"onchip/internal/atime"
	"onchip/internal/machine"
	"onchip/internal/osmodel"
	"onchip/internal/report"
	"onchip/internal/search"
	"onchip/internal/workload"
)

func init() {
	register("ext-atime", "Extension: Table 6 search under Wada-style access-time (cycle-time) constraints", extATime)
	register("ext-ool", "Extension: out-of-line transfer threshold sweep (I-cache vs TLB miss shift, section 4.3)", extOOL)
	register("ext-servers", "Extension: small-granularity server decomposition (section 4.1 trend)", extServers)
}

// extATime reruns the budgeted search with progressively tighter cycle
// times. As the clock tightens, high associativity and large capacities
// become unbuildable and the optimizer retreats to smaller, lower-way
// structures -- the dimension the paper proposed adding.
func extATime(opt Options) (Result, error) {
	refs := opt.refs(defaultSweepRefs)
	space := search.Table5()
	model, _, err := buildMeasuredModel(osmodel.Mach, workload.All(), space, refs, opt)
	if err != nil {
		return Result{}, fmt.Errorf("model-building sweep: %w", err)
	}
	am := area.Default()
	tm := atime.Default()

	t := report.NewTable("Best allocation under 250,000 rbe and a cycle-time ceiling",
		"Cycle (ns)", "TLB", "I-cache", "D-cache", "Access (ns)", "CPI")
	for _, cycle := range []float64{0, 15, 12, 10} {
		var best []search.Allocation
		if cycle == 0 {
			best = search.Enumerate(space, am, area.BudgetRBE, model)
		} else {
			c := cycle
			best = search.EnumerateFiltered(space, am, area.BudgetRBE, model,
				func(tlbCfg area.TLBConfig, ic, dc area.CacheConfig) bool {
					return tm.FitsCycle(c, tlbCfg, ic, dc)
				})
		}
		if len(best) == 0 {
			t.Row(fmt.Sprintf("%.0f", cycle), "-", "-", "-", "-", "infeasible")
			continue
		}
		a := best[0]
		worst := tm.CacheAccessNS(a.ICache)
		if d := tm.CacheAccessNS(a.DCache); d > worst {
			worst = d
		}
		if d := tm.TLBAccessNS(a.TLB); d > worst {
			worst = d
		}
		label := "none"
		if cycle > 0 {
			label = fmt.Sprintf("%.0f", cycle)
		}
		t.Row(label, a.TLB.String(), a.ICache.String(), a.DCache.String(),
			fmt.Sprintf("%.1f", worst), fmt.Sprintf("%.3f", a.CPI))
	}
	return Result{
		Text: t.String(),
		Notes: []string{
			"implements the paper's first proposed extension (section 6): a Wada-style access-time model",
			"constrains the search; tighter clocks push the optimum toward lower associativity and capacity",
		},
	}, nil
}

// extOOL measures mpeg_play and video_play under Mach with the
// out-of-line threshold at three settings: copies-only (threshold above
// every payload), the default 8 KB, and remap-everything (threshold 0).
func extOOL(opt Options) (Result, error) {
	refs := opt.refs(defaultStallRefs)
	t := report.NewTable("Mach out-of-line transfer threshold vs stall profile",
		"Workload", "OOL threshold", "CPI", "TLB CPI", "I-cache CPI", "D-cache CPI", "Instrs/call")
	type setting struct {
		name  string
		bytes int
	}
	settings := []setting{
		{"never (copy all)", 1 << 30},
		{"8 KB (default)", 8 * 1024},
		{"always (remap all)", 0},
	}
	var firstTLB, lastTLB, firstI, lastI float64
	for _, spec := range []osmodel.WorkloadSpec{workload.MPEGPlay(), workload.VideoPlay()} {
		for i, st := range settings {
			cfg := machine.DECstation3100()
			cfg.OtherCPI = spec.OtherCPI
			cfg.IsServerASID = osmodel.IsServerASID
			m := machine.New(cfg)
			sys := osmodel.NewSystem(osmodel.Mach, spec)
			sys.SetOOLThreshold(st.bytes)
			gen := sys.Run(refs, m)
			b := m.Breakdown()
			t.Row(spec.Name, st.name, fmt.Sprintf("%.2f", b.CPI),
				fmt.Sprintf("%.3f", b.Comp[machine.CompTLB]),
				fmt.Sprintf("%.3f", b.Comp[machine.CompICache]),
				fmt.Sprintf("%.3f", b.Comp[machine.CompDCache]),
				fmt.Sprintf("%.0f", float64(gen.Instrs)/float64(gen.Calls)))
			if spec.Name == "video_play" {
				if i == 0 {
					firstTLB, firstI = b.Comp[machine.CompTLB], b.Comp[machine.CompICache]
				}
				if i == len(settings)-1 {
					lastTLB, lastI = b.Comp[machine.CompTLB], b.Comp[machine.CompICache]
				}
			}
		}
	}
	return Result{
		Text: t.String(),
		Notes: []string{
			fmt.Sprintf("video_play, copy-all -> remap-all: TLB CPI %.3f -> %.3f (the section 4.3 shift toward the TLB)",
				firstTLB, lastTLB),
			fmt.Sprintf("per-instruction I-cache CPI also moves (%.3f -> %.3f) because remapping removes the copies'", firstI, lastI),
			"cheap cache-resident loop instructions from the stream; each remaining instruction carries more misses",
		},
	}, nil
}

// extServers compares the monolithic BSD server against the
// decomposed-server restructuring on the syscall-heavy workloads.
func extServers(opt Options) (Result, error) {
	refs := opt.refs(defaultStallRefs)
	t := report.NewTable("Monolithic vs small-granularity servers (Mach)",
		"Workload", "Servers", "CPI", "TLB CPI", "I-cache CPI")
	for _, spec := range []osmodel.WorkloadSpec{workload.MAB(), workload.Ousterhout()} {
		for _, decomposed := range []bool{false, true} {
			cfg := machine.DECstation3100()
			cfg.OtherCPI = spec.OtherCPI
			cfg.IsServerASID = osmodel.IsServerASID
			m := machine.New(cfg)
			sys := osmodel.NewSystem(osmodel.Mach, spec)
			label := "monolithic"
			if decomposed {
				sys.EnableDecomposedServers()
				label = "decomposed"
			}
			sys.Generate(refs, m)
			b := m.Breakdown()
			t.Row(spec.Name, label, fmt.Sprintf("%.2f", b.CPI),
				fmt.Sprintf("%.3f", b.Comp[machine.CompTLB]),
				fmt.Sprintf("%.3f", b.Comp[machine.CompICache]))
		}
	}
	return Result{
		Text: t.String(),
		Notes: []string{
			"section 4.1 (after Black et al.): decomposing servers spreads system code across more",
			"address spaces, lengthening paths and raising TLB and I-cache pressure further",
		},
	}, nil
}
