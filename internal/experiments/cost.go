package experiments

import (
	"fmt"

	"onchip/internal/area"
	"onchip/internal/report"
)

func init() {
	register("fig4", "Figure 4: area cost for TLBs of different sizes and associativities", figure4)
	register("fig5", "Figure 5: set-associative TLB area relative to fully-associative", figure5)
	register("fig6", "Figure 6: area cost for caches of different capacity and line size", figure6)
}

var tlbSizes = []int{16, 32, 64, 128, 256, 512}

// figure4 prices TLBs of 16-512 entries at every associativity.
func figure4(Options) (Result, error) {
	m := area.Default()
	var series []report.Series
	for _, assoc := range []int{1, 2, 4, 8, area.FullyAssociative} {
		label := fmt.Sprintf("%d-way", assoc)
		if assoc == area.FullyAssociative {
			label = "fully-assoc"
		}
		s := report.Series{Label: label}
		for _, entries := range tlbSizes {
			cfg := area.TLBConfig{Entries: entries, Assoc: assoc}
			if cfg.Validate() != nil {
				continue
			}
			s.Points = append(s.Points, report.Point{
				X: fmt.Sprintf("%d entries", entries),
				Y: m.TLBArea(cfg),
			})
		}
		series = append(series, s)
	}
	return Result{
		Text: report.Chart("TLB area (rbe) vs size and associativity", "rbe", series...),
		Notes: []string{
			"fully-associative TLBs cost less than 4-/8-way below 64 entries, about 2x above",
			"for large TLBs associativity has little area impact",
		},
	}, nil
}

// figure5 plots set-associative cost relative to fully-associative at
// the same entry count.
func figure5(Options) (Result, error) {
	m := area.Default()
	var series []report.Series
	for _, assoc := range []int{1, 4, 8} {
		s := report.Series{Label: fmt.Sprintf("%d-way / fully-assoc", assoc)}
		for _, entries := range tlbSizes {
			sa := area.TLBConfig{Entries: entries, Assoc: assoc}
			if sa.Validate() != nil {
				continue
			}
			fa := m.TLBArea(area.TLBConfig{Entries: entries, Assoc: area.FullyAssociative})
			s.Points = append(s.Points, report.Point{
				X: fmt.Sprintf("%d entries", entries),
				Y: m.TLBArea(sa) / fa,
			})
		}
		series = append(series, s)
	}
	return Result{
		Text: report.Chart("Set-associative TLB area relative to fully-associative (1.0 = equal)", "ratio", series...),
		Notes: []string{
			"direct-mapped is always cheapest; 4-/8-way crosses below 1.0 at 64 entries",
			"by 512 entries set-associative costs about half the fully-associative area",
		},
	}, nil
}

// figure6 prices caches of 2-64 KB with 1- to 8-word lines
// (direct-mapped, as in the paper's plot).
func figure6(Options) (Result, error) {
	m := area.Default()
	var series []report.Series
	for _, line := range []int{1, 2, 4, 8} {
		s := report.Series{Label: fmt.Sprintf("%d-word line", line)}
		for _, capKB := range []int{2, 4, 8, 16, 32, 64} {
			cfg := area.CacheConfig{CapacityBytes: capKB << 10, LineWords: line, Assoc: 1}
			s.Points = append(s.Points, report.Point{
				X: fmt.Sprintf("%d KB", capKB),
				Y: m.CacheArea(cfg),
			})
		}
		series = append(series, s)
	}
	one := m.CacheArea(area.CacheConfig{CapacityBytes: 32 << 10, LineWords: 1, Assoc: 1})
	eight := m.CacheArea(area.CacheConfig{CapacityBytes: 32 << 10, LineWords: 8, Assoc: 1})
	return Result{
		Text: report.Chart("Cache area (rbe) vs capacity and line size (direct-mapped)", "rbe", series...),
		Notes: []string{
			fmt.Sprintf("8-word lines save %.0f%% over 1-word lines at 32 KB (tag amortization)", 100*(1-eight/one)),
		},
	}, nil
}
