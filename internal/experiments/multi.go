package experiments

import (
	"fmt"

	"onchip/internal/machine"
	"onchip/internal/osmodel"
	"onchip/internal/report"
	"onchip/internal/workload"
)

func init() {
	register("ext-multi", "Extension: multiprogramming interference (the effect user-only simulation misses, section 4)", extMulti)
}

// extMulti quantifies inter-process interference: mpeg_play alone versus
// mpeg_play time-sliced with mab on the same machine. Table 3's point is
// that pixie-style user-only simulation misses both OS references *and*
// "interference effects between the different processes that participate
// in the workload"; this experiment isolates the second effect.
func extMulti(opt Options) (Result, error) {
	refs := opt.refs(defaultStallRefs)
	t := report.NewTable("Multiprogramming interference, DECstation 3100 parameters (Mach)",
		"Condition", "CPI", "TLB CPI", "I-cache CPI", "D-cache CPI")

	// Alone.
	alone := machine.New(suiteMachineCfg(workload.MPEGPlay()))
	osmodel.NewSystem(osmodel.Mach, workload.MPEGPlay()).Generate(refs, alone)
	ab := alone.Breakdown()
	t.Row("mpeg_play alone", fmt.Sprintf("%.2f", ab.CPI),
		fmt.Sprintf("%.3f", ab.Comp[machine.CompTLB]),
		fmt.Sprintf("%.3f", ab.Comp[machine.CompICache]),
		fmt.Sprintf("%.3f", ab.Comp[machine.CompDCache]))

	// Time-sliced with mab.
	shared := machine.New(suiteMachineCfg(workload.MPEGPlay()))
	osmodel.NewMulti(osmodel.Mach, workload.MPEGPlay(), workload.MAB()).Generate(2*refs, shared)
	sb := shared.Breakdown()
	t.Row("mpeg_play + mab (time-sliced)", fmt.Sprintf("%.2f", sb.CPI),
		fmt.Sprintf("%.3f", sb.Comp[machine.CompTLB]),
		fmt.Sprintf("%.3f", sb.Comp[machine.CompICache]),
		fmt.Sprintf("%.3f", sb.Comp[machine.CompDCache]))

	return Result{
		Text: t.String(),
		Notes: []string{
			"the second workload's footprint displaces cache lines and TLB entries across every",
			"quantum boundary; this interference is invisible to single-process, user-only simulation",
			"(the combined row mixes both workloads' instructions, so compare stall components, not CPI alone)",
		},
	}, nil
}

// suiteMachineCfg builds the DECstation configuration with the
// workload's interlock density.
func suiteMachineCfg(spec osmodel.WorkloadSpec) machine.Config {
	cfg := machine.DECstation3100()
	cfg.OtherCPI = spec.OtherCPI
	cfg.IsServerASID = osmodel.IsServerASID
	return cfg
}
