package experiments

import (
	"fmt"
	"strings"

	"onchip/internal/machine"
	"onchip/internal/monitor"
	"onchip/internal/osmodel"
	"onchip/internal/report"
	"onchip/internal/workload"
)

func init() {
	register("table3", "Table 3: effect of the operating system on CPU stall behavior (mpeg_play)", table3)
	register("table4", "Table 4: CPI stall components for all workloads under Ultrix and Mach", table4)
	register("fig3", "Figure 3: components of CPI above 1.0 (chart form of Table 4)", figure3)
	register("paths", "Section 4.1: service invocation path lengths under Ultrix and Mach", paths)
}

const defaultStallRefs = 2_000_000

func breakdownRow(t *report.Table, name, os string, b machine.Breakdown) {
	cpi := func(c machine.Component) string {
		return fmt.Sprintf("%.2f (%.0f%%)", b.Comp[c], b.Pct(c))
	}
	t.Row(name, os, fmt.Sprintf("%.2f", b.CPI),
		cpi(machine.CompTLB), cpi(machine.CompICache), cpi(machine.CompDCache),
		cpi(machine.CompWB), cpi(machine.CompOther))
}

// table3 reproduces the three measurement conditions for mpeg_play: a
// user-only (pixie-style) simulation, then Monster-style monitoring
// under Ultrix and under Mach, all on DECstation 3100 memory parameters.
func table3(opt Options) (Result, error) {
	refs := opt.refs(defaultStallRefs)
	cfg := machine.DECstation3100()
	cfg.Metrics = opt.Metrics
	cfg.Tracer = opt.Tracer
	spec := workload.MPEGPlay()

	t := report.NewTable("CPU stall components, mpeg_play on DECstation 3100 parameters",
		"Workload", "OS", "CPI", "TLB", "I-cache", "D-cache", "WriteBuf", "Other")
	none := monitor.MeasureUserOnly(spec, refs, cfg)
	breakdownRow(t, spec.Name, "None", none.Breakdown)
	opt.progressf("measure: %s/None done (CPI %.2f)", spec.Name, none.Breakdown.CPI)
	ult := monitor.Measure(osmodel.Ultrix, spec, refs, cfg)
	breakdownRow(t, spec.Name, "Ultrix", ult.Breakdown)
	opt.progressf("measure: %s/Ultrix done (CPI %.2f)", spec.Name, ult.Breakdown.CPI)
	mach := monitor.Measure(osmodel.Mach, spec, refs, cfg)
	breakdownRow(t, spec.Name, "Mach", mach.Breakdown)
	opt.progressf("measure: %s/Mach done (CPI %.2f)", spec.Name, mach.Breakdown.CPI)

	return Result{
		Text: t.String(),
		Notes: []string{
			"paper: CPI 1.43 (None) / 1.66 (Ultrix) / 2.06 (Mach); user-only simulation misattributes stalls",
			fmt.Sprintf("Mach time split: task %.0f%%, kernel %.0f%%, BSD server %.0f%%, X server %.0f%% (paper: 40/25/30/5)",
				mach.Gen.AppPct(), mach.Gen.KernelPct(), mach.Gen.BSDPct(), mach.Gen.XPct()),
		},
	}, nil
}

// table4 runs the whole suite under both operating systems.
func table4(opt Options) (Result, error) {
	refs := opt.refs(defaultStallRefs)
	cfg := machine.DECstation3100()
	cfg.Metrics = opt.Metrics
	cfg.Tracer = opt.Tracer
	t := report.NewTable("CPI stall components for all workloads (DECstation 3100 parameters)",
		"Workload", "OS", "CPI", "TLB", "I-cache", "D-cache", "WriteBuf", "Other")
	for _, v := range []osmodel.Variant{osmodel.Ultrix, osmodel.Mach} {
		for _, row := range monitor.MeasureSuite(v, workload.All(), refs, cfg) {
			breakdownRow(t, row.Workload, v.String(), row.Breakdown)
			opt.progressf("measure: %s/%s done (CPI %.2f)", row.Workload, v, row.Breakdown.CPI)
		}
	}
	return Result{
		Text: t.String(),
		Notes: []string{
			"paper averages: Ultrix CPI 1.94 (TLB 2%, I$ 15%, D$ 55%, WB 19%), Mach CPI 2.12 (TLB 14%, I$ 32%, D$ 28%, WB 21%)",
			"the shape to check: Mach raises CPI everywhere and shifts stalls from the D-cache to the TLB and I-cache",
		},
	}, nil
}

// figure3 is Table 4 rendered as stacked components.
func figure3(opt Options) (Result, error) {
	refs := opt.refs(defaultStallRefs)
	cfg := machine.DECstation3100()
	cfg.Metrics = opt.Metrics
	cfg.Tracer = opt.Tracer
	var b strings.Builder
	for _, v := range []osmodel.Variant{osmodel.Ultrix, osmodel.Mach} {
		var series []report.Series
		for c := machine.CompTLB; c <= machine.CompOther; c++ {
			series = append(series, report.Series{Label: c.String()})
		}
		rows := monitor.MeasureSuite(v, workload.All(), refs, cfg)
		opt.progressf("measure: %s suite done (%d rows)", v, len(rows))
		for _, row := range rows {
			for c := machine.CompTLB; c <= machine.CompOther; c++ {
				series[c].Points = append(series[c].Points, report.Point{
					X: row.Workload, Y: row.Breakdown.Comp[c],
				})
			}
		}
		b.WriteString(report.Chart(fmt.Sprintf("Components of CPI above 1.0 under %s", v), "CPI", series...))
		b.WriteByte('\n')
	}
	return Result{Text: b.String()}, nil
}

// paths reports the modeled service-invocation path lengths, the
// Section 4.1 numbers that explain the I-cache results.
func paths(Options) (Result, error) {
	t := report.NewTable("Service invocation path lengths (instructions, excluding the service body)",
		"OS", "Call path", "Return path", "Code touched")
	t.Row("Ultrix", osmodel.UltrixInvocationInstrs/2+5, osmodel.UltrixInvocationInstrs/2-5,
		fmt.Sprintf("~%d bytes", osmodel.UltrixInvocationInstrs*4))
	t.Row("Mach", osmodel.MachCallPathInstrs, osmodel.MachReturnPathInstrs,
		fmt.Sprintf("~%d KB call + ~%d KB return", osmodel.MachCallPathInstrs*4/1024, osmodel.MachReturnPathInstrs*4/1024))
	return Result{
		Text: t.String(),
		Notes: []string{
			"paper: Ultrix round trip < 100 instructions; Mach call ~1000, return ~850 (~4 KB + ~3 KB of instruction memory)",
			"a single Mach system call overruns a 4-KB on-chip I-cache on the way to the BSD server",
		},
	}, nil
}
