// Write-policy-aware single-pass simulation for the data stream.
//
// The classic stack algorithm covers read-only (or write-allocate)
// streams, where every access touches every cache and the inclusion
// property falls out of pure LRU. The DECstation D-cache is
// write-through with no write-allocate: a store hit refreshes the
// line's recency but a store miss leaves the set untouched. Whether a
// store hits depends on the associativity, so caches of different
// associativity update their recency differently and a single LRU
// stack no longer describes all of them at once.
//
// Thompson & Smith ("Efficient (stack) algorithms for analysis of
// write-back and sector memories", ACM TOCS 1989) showed that stack
// simulation generalizes to write policies by carrying per-entry
// policy state down the stack. The no-write-allocate variant used here
// rests on two provable invariants (see DESIGN.md section 10):
//
//  1. Inclusion still holds: at a fixed set count, the content of the
//     a-way cache is a subset of the (a+1)-way cache's content.
//  2. Recency is consistent: the (a+1)-way cache's LRU order,
//     restricted to the blocks the a-way cache holds, IS the a-way
//     cache's LRU order.
//
// So one recency list per set (that of the widest tracked cache)
// plus one small integer per resident block -- its minimum resident
// associativity m(b) = min{a : b in the a-way cache} -- captures every
// associativity exactly. A load to a block with m(b) = d hits in all
// caches with a >= d and misses in the rest, which is the same
// "hit depth" bookkeeping as the read-only algorithm; the extra work
// is relabeling m when the per-level LRU victims diverge.
package cheetah

import (
	"fmt"

	"onchip/internal/area"
)

// AllAssocData computes, in one pass over a load/store stream, exact
// read (load) miss counts for write-through, no-write-allocate,
// true-LRU caches with a fixed set count and line size and every
// associativity 1..maxAssoc. It is the D-stream counterpart of
// AllAssoc and agrees bit-for-bit with direct simulation
// (cache.Cache with WriteAllocate and WriteBack off).
type AllAssocData struct {
	sets       int
	maxAssoc   int
	offsetBits uint
	setMask    uint64

	// Per set: up to maxAssoc resident blocks in the recency order of
	// the maxAssoc-way cache (most recent first), flattened as
	// blocks[set*maxAssoc : set*maxAssoc+len[set]], with m[i] the
	// block's minimum resident associativity. m is always a bijection
	// onto 1..len[set].
	blocks []uint64
	m      []uint8
	len    []uint8

	// The serial counters. Shard views carry their own dataCounters;
	// read-side accessors merge the two.
	dataCounters

	// shards, when non-nil, are the concurrent set-partition views
	// handed out by Shards.
	shards []*AllAssocDataShard
}

// dataCounters is the per-consumer bookkeeping of an AllAssocData: the
// serial simulator owns one and each shard view owns another, so
// concurrent shards never share a cache line of counter state.
type dataCounters struct {
	// hits[d] counts loads that hit with minimum resident
	// associativity d+1 (a hit in every cache with assoc >= d+1).
	hits   []uint64
	reads  uint64
	writes uint64

	// last memoizes a block known to sit at the front of its set's
	// recency list with m = 1 (it is resident in every tracked cache,
	// at the MRU spot of each). A repeated load is then a depth-1 hit
	// and a repeated store a store hit at the front -- both provably
	// leave the set state unchanged, so the scan and relabel walk can
	// be skipped. Sequential code runs through cache lines, making this
	// the hottest case. Initialized to an impossible block; accessSet
	// keeps it exact by invalidating it when a store-hit promote
	// displaces the memoized front block.
	last uint64
}

// NewAllAssocData builds a D-stream simulator for the given set count
// (a power of two), line size in words, and maximum associativity of
// interest (at most 255, the relabeling bookkeeping's width).
func NewAllAssocData(sets, lineWords, maxAssoc int) *AllAssocData {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("cheetah: set count must be a positive power of two")
	}
	if lineWords <= 0 || lineWords&(lineWords-1) != 0 {
		panic("cheetah: line words must be a positive power of two")
	}
	if maxAssoc <= 0 || maxAssoc > 255 {
		panic("cheetah: max associativity must be in 1..255")
	}
	return &AllAssocData{
		sets:       sets,
		maxAssoc:   maxAssoc,
		offsetBits: uint(log2(lineWords * area.WordBytes)),
		setMask:    uint64(sets - 1),
		blocks:     make([]uint64, sets*maxAssoc),
		m:          make([]uint8, sets*maxAssoc),
		len:        make([]uint8, sets),
		dataCounters: dataCounters{
			hits: make([]uint64, maxAssoc),
			last: ^uint64(0),
		},
	}
}

// Access processes one data reference to the byte-addressable key.
func (d *AllAssocData) Access(key uint64, write bool) {
	block := key >> d.offsetBits
	if block == d.last {
		if write {
			d.writes++
		} else {
			d.reads++
			d.hits[0]++
		}
		return
	}
	d.accessSet(int(block&d.setMask), block, write, &d.dataCounters)
}

// accessSet runs the full stack-update bookkeeping for one reference
// known to have missed the owner's depth-1 memo, crediting counters to
// c and keeping c.last exact: it becomes block when the access leaves
// block at the MRU spot of every tracked cache (m = 1 at the list
// front), is invalidated when a store-hit promote displaces the set's
// memoizable front block, and is otherwise left alone (a store miss
// touches nothing).
func (d *AllAssocData) accessSet(set int, block uint64, write bool, c *dataCounters) {
	base := set * d.maxAssoc
	k := int(d.len[set])

	p := -1
	for i, b := range d.blocks[base : base+k] {
		if b == block {
			p = i
			break
		}
	}

	if write {
		c.writes++
		if p < 0 {
			return // store miss: no allocation, no recency change
		}
		// Store hit in every cache with assoc >= m(block): refresh
		// recency there (front of the list; the restriction to each
		// containing cache puts the block at its MRU spot). m is
		// unchanged -- the narrower caches missed and stay untouched.
		mv := d.m[base+p]
		if p == 1 {
			d.blocks[base+1] = d.blocks[base]
			d.m[base+1] = d.m[base]
			d.blocks[base] = block
			d.m[base] = mv
		} else if p > 1 {
			copy(d.blocks[base+1:base+p+1], d.blocks[base:base+p])
			copy(d.m[base+1:base+p+1], d.m[base:base+p])
			d.blocks[base] = block
			d.m[base] = mv
		}
		if mv == 1 {
			// block now fronts every tracked cache's recency order.
			c.last = block
		} else if c.last&d.setMask == uint64(set) {
			// The promote displaced this set's old front block -- the
			// only block the memo could have been holding.
			c.last = ^uint64(0)
		}
		return
	}

	c.reads++
	var evictLimit int
	if p >= 0 {
		depth := int(d.m[base+p])
		c.hits[depth-1]++
		if depth == 1 {
			// Fast path for the common case: a hit in even the 1-way
			// cache evicts nowhere, so no relabeling -- just promote.
			if p == 1 {
				d.blocks[base+1] = d.blocks[base]
				d.m[base+1] = d.m[base]
			} else if p > 1 {
				copy(d.blocks[base+1:base+p+1], d.blocks[base:base+p])
				copy(d.m[base+1:base+p+1], d.m[base:base+p])
			}
			d.blocks[base] = block
			d.m[base] = 1
			c.last = block
			return
		}
		evictLimit = depth - 1 // caches 1..depth-1 miss and evict
	} else {
		evictLimit = k // full caches 1..k evict; wider ones fill a free way
	}

	// Relabel the per-level LRU victims. Walking from the bottom of the
	// recency list, an entry x is the victim of exactly the levels
	// [m(x), min(minBelow, evictLimit+1)-1], where minBelow is the
	// smallest m strictly below x (a deeper block with a smaller m
	// shields x at that level and beyond). Its new minimum residency is
	// the first level that did not evict it; past maxAssoc it has left
	// every tracked cache and drops off the list.
	minBelow := 256
	drop := -1
	for i := k - 1; i >= 0; i-- {
		if i == p {
			continue
		}
		mi := int(d.m[base+i])
		if mi <= evictLimit && mi < minBelow {
			nm := minBelow
			if evictLimit+1 < nm {
				nm = evictLimit + 1
			}
			if nm > d.maxAssoc {
				drop = i
			} else {
				d.m[base+i] = uint8(nm)
			}
		}
		if mi < minBelow {
			if mi == 1 {
				// No entry above can have m < 1, so no further victim
				// candidates exist; the walk is done.
				break
			}
			minBelow = mi
		}
	}

	// Insert the loaded block at the front with m=1 (it now sits at the
	// MRU spot of every cache), shifting everything above the vacated
	// position down one.
	shift := p
	if p < 0 {
		if drop >= 0 {
			shift = drop
		} else {
			shift = k
			d.len[set]++
		}
	}
	copy(d.blocks[base+1:base+shift+1], d.blocks[base:base+shift])
	copy(d.m[base+1:base+shift+1], d.m[base:base+shift])
	d.blocks[base] = block
	d.m[base] = 1
	c.last = block
}

// AllAssocDataShard is a deterministic set-partition view of an
// AllAssocData, the D-stream counterpart of AllAssocShard: shard i of
// n owns the sets congruent to i mod n and carries private counters
// and a private depth-1 memo, so n shards fed the same packed stream
// touch disjoint state and may run concurrently; merged counters are
// byte-identical to the serial pass.
type AllAssocDataShard struct {
	parent    *AllAssocData
	shard     uint64
	shardMask uint64
	dataCounters
}

// Shards partitions the simulator for n-way concurrent access and
// returns the shard views. n is rounded down to a power of two and
// clamped to the set count. Shards must be called at most once, before
// any access, and serial Access/AccessPacked on the parent must not be
// mixed with shard access afterwards.
func (d *AllAssocData) Shards(n int) []*AllAssocDataShard {
	if d.shards != nil {
		panic("cheetah: simulator already sharded")
	}
	if d.reads != 0 || d.writes != 0 {
		panic("cheetah: Shards called after serial access")
	}
	n = shardCount(n, d.sets)
	d.shards = make([]*AllAssocDataShard, n)
	for i := range d.shards {
		d.shards[i] = &AllAssocDataShard{
			parent:    d,
			shard:     uint64(i),
			shardMask: uint64(n - 1),
			dataCounters: dataCounters{
				hits: make([]uint64, d.maxAssoc),
				last: ^uint64(0),
			},
		}
	}
	return d.shards
}

// AccessPacked processes a batch of packed references (see PackRef),
// simulating only the sets this shard owns. Every shard of one parent
// must see the same stream in the same order.
func (s *AllAssocDataShard) AccessPacked(batch []uint64) {
	d := s.parent
	for _, kv := range batch {
		block := kv >> 1 >> d.offsetBits
		if block == s.last {
			if kv&1 != 0 {
				s.writes++
			} else {
				s.reads++
				s.hits[0]++
			}
			continue
		}
		set := block & d.setMask
		if set&s.shardMask != s.shard {
			continue
		}
		d.accessSet(int(set), block, kv&1 != 0, &s.dataCounters)
	}
}

// AccessPacked processes a batch of data references, each packed as
// key<<1|write (see PackRef). The devirtualized inner loop is the
// sweep engine's hot path.
func (d *AllAssocData) AccessPacked(batch []uint64) {
	for _, kv := range batch {
		d.Access(kv>>1, kv&1 != 0)
	}
}

// PackRef packs a cache key and write flag for AccessPacked. Cache
// keys are at most 45 bits (see vm.CacheKey), so the shift is safe.
func PackRef(key uint64, write bool) uint64 {
	kv := key << 1
	if write {
		kv |= 1
	}
	return kv
}

// Reads returns the number of load references processed (for a
// sharded simulator, summed over the shards' disjoint set partitions).
func (d *AllAssocData) Reads() uint64 {
	n := d.reads
	for _, s := range d.shards {
		n += s.reads
	}
	return n
}

// Writes returns the number of store references processed.
func (d *AllAssocData) Writes() uint64 {
	n := d.writes
	for _, s := range d.shards {
		n += s.writes
	}
	return n
}

// ReadMisses returns the exact load miss count for associativity assoc
// (1 <= assoc <= maxAssoc) under the write-through, no-write-allocate
// policy.
func (d *AllAssocData) ReadMisses(assoc int) uint64 {
	if assoc < 1 || assoc > d.maxAssoc {
		panic("cheetah: associativity out of tracked range")
	}
	var hits uint64
	for i := 0; i < assoc; i++ {
		hits += d.hits[i]
	}
	for _, s := range d.shards {
		for i := 0; i < assoc; i++ {
			hits += s.hits[i]
		}
	}
	return d.Reads() - hits
}

// DataSweep prices an arbitrary set of cache configurations for the
// no-write-allocate data stream: configurations sharing a (set count,
// line size) pair share one AllAssocData simulator tracking the widest
// associativity any of them needs, so the Table 5 design space of ~120
// configurations runs on ~48 stack simulators instead of 120 direct
// ones -- and each access costs a bounded stack scan rather than a
// full LRU simulation per configuration.
type DataSweep struct {
	sims    map[[2]int]*AllAssocData // key: {sets, lineWords}; lookup only
	simList []*AllAssocData          // dense iteration order for the hot path
	reads   uint64
}

// NewDataSweep builds a sweep covering every configuration. It panics
// on invalid configurations or effective associativities above 255.
func NewDataSweep(configs []area.CacheConfig) *DataSweep {
	s := &DataSweep{sims: make(map[[2]int]*AllAssocData)}
	want := make(map[[2]int]int)
	var order [][2]int
	for _, c := range configs {
		if err := c.Validate(); err != nil {
			panic(err)
		}
		assoc := c.Assoc
		if assoc == area.FullyAssociative {
			assoc = c.Lines()
		}
		key := [2]int{c.Sets(), c.LineWords}
		if _, ok := want[key]; !ok {
			order = append(order, key)
		}
		if assoc > want[key] {
			want[key] = assoc
		}
	}
	for _, key := range order {
		sim := NewAllAssocData(key[0], key[1], want[key])
		s.sims[key] = sim
		s.simList = append(s.simList, sim)
	}
	return s
}

// Access processes one data reference for every simulator.
func (s *DataSweep) Access(key uint64, write bool) {
	if !write {
		s.reads++
	}
	for _, sim := range s.simList {
		sim.Access(key, write)
	}
}

// AccessPacked processes a batch of packed references (see PackRef)
// for every simulator, one simulator at a time so each inner loop
// stays tight over the shared batch.
func (s *DataSweep) AccessPacked(batch []uint64) {
	for _, kv := range batch {
		if kv&1 == 0 {
			s.reads++
		}
	}
	for _, sim := range s.simList {
		sim.AccessPacked(batch)
	}
}

// Reads returns the number of load references processed.
func (s *DataSweep) Reads() uint64 { return s.reads }

// ReadMisses returns the exact load miss count for one of the swept
// configurations. It panics if the configuration was not covered by
// NewDataSweep.
func (s *DataSweep) ReadMisses(c area.CacheConfig) uint64 {
	assoc := c.Assoc
	if assoc == area.FullyAssociative {
		assoc = c.Lines()
	}
	sim, ok := s.sims[[2]int{c.Sets(), c.LineWords}]
	if !ok {
		panic(fmt.Sprintf("cheetah: config %v was not swept", c))
	}
	return sim.ReadMisses(assoc)
}

// Simulators reports how many distinct stack simulators the sweep runs.
func (s *DataSweep) Simulators() int { return len(s.simList) }

// Groups hands out the underlying simulators for callers that
// parallelize across them (each simulator is independent and
// deterministic, so concurrent groups give bit-identical results as
// long as every group sees the full stream in order).
func (s *DataSweep) Groups() []*AllAssocData { return s.simList }
