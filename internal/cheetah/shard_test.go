package cheetah

import (
	"math/rand"
	"sync"
	"testing"
)

// shardStream builds a reference stream that exercises every hot path:
// sequential runs through cache lines (the depth-1 memo), re-touches of
// recent blocks (shallow promotes), and random jumps over a footprint
// larger than any tracked cache (misses and relabel walks).
func shardStream(rng *rand.Rand, refs int) []uint64 {
	keys := make([]uint64, 0, refs)
	addr := uint64(rng.Intn(1 << 20))
	for len(keys) < refs {
		switch rng.Intn(4) {
		case 0: // sequential run
			n := 1 + rng.Intn(64)
			for i := 0; i < n && len(keys) < refs; i++ {
				keys = append(keys, addr)
				addr += 4
			}
		case 1: // re-touch something recent
			if len(keys) > 0 {
				keys = append(keys, keys[len(keys)-1-rng.Intn(min(len(keys), 256))])
			}
		default: // jump
			addr = uint64(rng.Intn(1 << 20))
			keys = append(keys, addr)
		}
	}
	return keys
}

// feedShards drives every shard over the same batched stream. With
// concurrent set, each shard runs on its own goroutine per batch --
// under -race this doubles as a data-race check on the disjoint-state
// claim.
func feedShards[S any](shards []S, keys []uint64, batch int, concurrent bool, access func(S, []uint64)) {
	for lo := 0; lo < len(keys); lo += batch {
		hi := min(lo+batch, len(keys))
		if !concurrent {
			for _, s := range shards {
				access(s, keys[lo:hi])
			}
			continue
		}
		var wg sync.WaitGroup
		for _, s := range shards {
			wg.Add(1)
			go func() {
				defer wg.Done()
				access(s, keys[lo:hi])
			}()
		}
		wg.Wait()
	}
}

// TestShardedCrossValidatesUnsharded checks that a sharded AllAssoc
// produces byte-identical access and miss counts to the serial
// simulator for every requested shard count 1..8 (non-powers of two
// round down), over randomized streams and several geometries.
func TestShardedCrossValidatesUnsharded(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, geom := range [][3]int{{64, 4, 8}, {16, 16, 4}, {1, 8, 16}, {256, 4, 2}} {
		sets, lineWords, maxAssoc := geom[0], geom[1], geom[2]
		keys := shardStream(rng, 60_000)
		ref := NewAllAssoc(sets, lineWords, maxAssoc)
		ref.AccessKeys(keys)
		for n := 1; n <= 8; n++ {
			for _, concurrent := range []bool{false, true} {
				sim := NewAllAssoc(sets, lineWords, maxAssoc)
				shards := sim.Shards(n)
				feedShards(shards, keys, 1024, concurrent,
					(*AllAssocShard).AccessKeys)
				if got, want := sim.Accesses(), ref.Accesses(); got != want {
					t.Fatalf("sets=%d shards=%d concurrent=%v: accesses %d, want %d", sets, n, concurrent, got, want)
				}
				for a := 1; a <= maxAssoc; a++ {
					if got, want := sim.Misses(a), ref.Misses(a); got != want {
						t.Fatalf("sets=%d shards=%d concurrent=%v assoc=%d: misses %d, want %d", sets, n, concurrent, a, got, want)
					}
				}
			}
		}
	}
}

// TestShardedDataCrossValidatesUnsharded is the AllAssocData
// counterpart: read/write totals and read-miss counts must match the
// serial simulator exactly for shard counts 1..8, with the write
// policy's memo-invalidation paths exercised by a randomized store mix.
func TestShardedDataCrossValidatesUnsharded(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, geom := range [][3]int{{64, 4, 8}, {16, 16, 4}, {1, 8, 16}, {256, 4, 2}} {
		sets, lineWords, maxAssoc := geom[0], geom[1], geom[2]
		keys := shardStream(rng, 60_000)
		batch := make([]uint64, len(keys))
		for i, k := range keys {
			batch[i] = PackRef(k, rng.Intn(3) == 0)
		}
		ref := NewAllAssocData(sets, lineWords, maxAssoc)
		ref.AccessPacked(batch)
		for n := 1; n <= 8; n++ {
			for _, concurrent := range []bool{false, true} {
				sim := NewAllAssocData(sets, lineWords, maxAssoc)
				shards := sim.Shards(n)
				feedShards(shards, batch, 1024, concurrent,
					(*AllAssocDataShard).AccessPacked)
				if sim.Reads() != ref.Reads() || sim.Writes() != ref.Writes() {
					t.Fatalf("sets=%d shards=%d concurrent=%v: reads/writes %d/%d, want %d/%d",
						sets, n, concurrent, sim.Reads(), sim.Writes(), ref.Reads(), ref.Writes())
				}
				for a := 1; a <= maxAssoc; a++ {
					if got, want := sim.ReadMisses(a), ref.ReadMisses(a); got != want {
						t.Fatalf("sets=%d shards=%d concurrent=%v assoc=%d: read misses %d, want %d", sets, n, concurrent, a, got, want)
					}
				}
			}
		}
	}
}

// TestShardCountRounding pins the power-of-two rounding and set-count
// clamp.
func TestShardCountRounding(t *testing.T) {
	cases := []struct{ n, sets, want int }{
		{1, 64, 1}, {2, 64, 2}, {3, 64, 2}, {5, 64, 4}, {8, 64, 8},
		{7, 4, 4}, {16, 2, 2}, {16, 1, 1}, {0, 64, 1},
	}
	for _, c := range cases {
		if got := shardCount(c.n, c.sets); got != c.want {
			t.Errorf("shardCount(%d, %d) = %d, want %d", c.n, c.sets, got, c.want)
		}
	}
	if got := len(NewAllAssoc(4, 4, 2).Shards(7)); got != 4 {
		t.Errorf("Shards(7) on 4 sets: %d shards, want 4", got)
	}
}

// TestShardsMisuse pins the guard rails: re-sharding and sharding after
// serial access both panic.
func TestShardsMisuse(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	a := NewAllAssoc(4, 4, 2)
	a.Shards(2)
	mustPanic("AllAssoc re-shard", func() { a.Shards(2) })
	b := NewAllAssoc(4, 4, 2)
	b.Access(0)
	mustPanic("AllAssoc shard after access", func() { b.Shards(2) })
	d := NewAllAssocData(4, 4, 2)
	d.Shards(2)
	mustPanic("AllAssocData re-shard", func() { d.Shards(2) })
	e := NewAllAssocData(4, 4, 2)
	e.Access(0, true)
	mustPanic("AllAssocData shard after access", func() { e.Shards(2) })
}
