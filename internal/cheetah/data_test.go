package cheetah

import (
	"math/rand"
	"testing"
	"testing/quick"

	"onchip/internal/area"
	"onchip/internal/cache"
)

// directNWA builds the direct-simulation oracle: a write-through,
// no-write-allocate LRU cache (the cache package's default policy).
func directNWA(c area.CacheConfig) *cache.Cache {
	return cache.New(cache.Config{CacheConfig: c})
}

// randomDataTrace drives both simulators with a mixed load/store stream
// combining sequential runs, hot-set reuse and random traffic -- the
// shapes that expose recency divergence between associativities.
func randomDataTrace(rng *rand.Rand, n int, addrSpace int, storePct int, access func(addr uint64, write bool)) {
	var seqAddr uint64
	seqRun := 0
	for i := 0; i < n; i++ {
		var addr uint64
		switch {
		case seqRun > 0:
			seqRun--
			seqAddr += 4
			addr = seqAddr
		case i%7 == 0:
			seqRun = 3 + rng.Intn(12)
			seqAddr = uint64(rng.Intn(addrSpace)) &^ 3
			addr = seqAddr
		case i%3 == 0:
			addr = uint64(rng.Intn(addrSpace / 8)) // hot subset
		default:
			addr = uint64(rng.Intn(addrSpace))
		}
		access(addr, rng.Intn(100) < storePct)
	}
}

// Cross-validation: the write-policy-aware stack simulator must produce
// exactly the same read-miss counts as direct no-write-allocate LRU
// simulation for every associativity.
func TestDataCrossValidatesWithDirectSimulator(t *testing.T) {
	const (
		sets      = 16
		lineWords = 4
		maxAssoc  = 8
	)
	rng := rand.New(rand.NewSource(11))
	ad := NewAllAssocData(sets, lineWords, maxAssoc)
	direct := make([]*cache.Cache, maxAssoc)
	for a := 1; a <= maxAssoc; a++ {
		direct[a-1] = directNWA(area.CacheConfig{
			CapacityBytes: sets * a * lineWords * area.WordBytes,
			LineWords:     lineWords,
			Assoc:         a,
		})
	}
	randomDataTrace(rng, 60000, 1<<13, 35, func(addr uint64, write bool) {
		ad.Access(addr, write)
		for _, c := range direct {
			c.Access(addr, write)
		}
	})
	for a := 1; a <= maxAssoc; a++ {
		want := direct[a-1].Stats().ReadMisses
		if got := ad.ReadMisses(a); got != want {
			t.Errorf("assoc %d: stack read misses %d, direct %d", a, got, want)
		}
	}
	if ad.Reads()+ad.Writes() != 60000 {
		t.Errorf("reads+writes = %d, want 60000", ad.Reads()+ad.Writes())
	}
}

// The store-free stream must reduce exactly to the read-only stack
// algorithm.
func TestDataMatchesAllAssocOnLoads(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ad := NewAllAssocData(8, 2, 4)
	aa := NewAllAssoc(8, 2, 4)
	for i := 0; i < 30000; i++ {
		addr := uint64(rng.Intn(1 << 12))
		ad.Access(addr, false)
		aa.Access(addr)
	}
	for a := 1; a <= 4; a++ {
		if got, want := ad.ReadMisses(a), aa.Misses(a); got != want {
			t.Errorf("assoc %d: data %d, all-assoc %d", a, got, want)
		}
	}
}

// Inclusion survives the no-write-allocate policy: read misses are
// non-increasing in associativity.
func TestDataMissesMonotoneInAssoc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ad := NewAllAssocData(32, 2, 8)
	randomDataTrace(rng, 50000, 1<<14, 40, ad.Access)
	for a := 2; a <= 8; a++ {
		if ad.ReadMisses(a) > ad.ReadMisses(a-1) {
			t.Errorf("readMisses(%d)=%d > readMisses(%d)=%d",
				a, ad.ReadMisses(a), a-1, ad.ReadMisses(a-1))
		}
	}
}

// Property check: agreement with the direct simulator holds across
// random seeds, store densities and geometries.
func TestDataQuickAgreement(t *testing.T) {
	f := func(seed int64, assocExp, storeExp uint8) bool {
		assoc := 1 << (assocExp % 3) // 1, 2, 4
		storePct := int(storeExp % 60)
		const sets, line = 8, 2
		rng := rand.New(rand.NewSource(seed))
		ad := NewAllAssocData(sets, line, 4)
		d := directNWA(area.CacheConfig{
			CapacityBytes: sets * assoc * line * area.WordBytes,
			LineWords:     line,
			Assoc:         assoc,
		})
		randomDataTrace(rng, 4000, 1<<11, storePct, func(addr uint64, write bool) {
			ad.Access(addr, write)
			d.Access(addr, write)
		})
		return ad.ReadMisses(assoc) == d.Stats().ReadMisses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The packed batch entry point must agree with per-reference access.
func TestDataPackedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := NewAllAssocData(16, 4, 8)
	b := NewAllAssocData(16, 4, 8)
	var packed []uint64
	randomDataTrace(rng, 20000, 1<<13, 30, func(addr uint64, write bool) {
		a.Access(addr, write)
		packed = append(packed, PackRef(addr, write))
	})
	for len(packed) > 0 {
		n := 777
		if n > len(packed) {
			n = len(packed)
		}
		b.AccessPacked(packed[:n])
		packed = packed[n:]
	}
	for assoc := 1; assoc <= 8; assoc++ {
		if a.ReadMisses(assoc) != b.ReadMisses(assoc) {
			t.Errorf("assoc %d: scalar %d, packed %d", assoc, a.ReadMisses(assoc), b.ReadMisses(assoc))
		}
	}
}

// DataSweep cross-validation over every (size, assoc, line) of the
// Table 5 design space, mirroring TestAgreesWithDirectSimulator.
func TestDataSweepCrossValidatesTable5(t *testing.T) {
	var configs []area.CacheConfig
	for _, size := range []int{2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10} {
		for _, assoc := range []int{1, 2, 4, 8} {
			for _, line := range []int{1, 2, 4, 8, 16, 32} {
				c := area.CacheConfig{CapacityBytes: size, LineWords: line, Assoc: assoc}
				if c.Validate() != nil {
					continue
				}
				configs = append(configs, c)
			}
		}
	}
	sw := NewDataSweep(configs)
	if sw.Simulators() >= len(configs) {
		t.Fatalf("no pass sharing: %d simulators for %d configs", sw.Simulators(), len(configs))
	}
	direct := make([]*cache.Cache, len(configs))
	for i, c := range configs {
		direct[i] = directNWA(c)
	}
	rng := rand.New(rand.NewSource(23))
	randomDataTrace(rng, 40000, 1<<16, 35, func(addr uint64, write bool) {
		sw.Access(addr, write)
		for _, d := range direct {
			d.Access(addr, write)
		}
	})
	for i, c := range configs {
		if got, want := sw.ReadMisses(c), direct[i].Stats().ReadMisses; got != want {
			t.Errorf("%v: sweep %d, direct %d", c, got, want)
		}
	}
}

func TestDataSweepPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"invalid": func() {
			NewDataSweep([]area.CacheConfig{{CapacityBytes: 3000, LineWords: 4, Assoc: 1}})
		},
		"unswept": func() {
			sw := NewDataSweep([]area.CacheConfig{{CapacityBytes: 8 << 10, LineWords: 4, Assoc: 1}})
			sw.ReadMisses(area.CacheConfig{CapacityBytes: 4 << 10, LineWords: 8, Assoc: 1})
		},
		"badParams": func() { NewAllAssocData(3, 4, 2) },
		"badRange":  func() { NewAllAssocData(4, 4, 2).ReadMisses(3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
