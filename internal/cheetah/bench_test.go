package cheetah

import (
	"math/rand"
	"testing"
)

// benchKeys is a mixed stream sized so the working set spills the
// tracked caches: sequential runs exercise the depth-1 memo and the
// depth-2 swap, jumps exercise the promote and relabel paths.
func benchKeys(n int) []uint64 {
	return shardStream(rand.New(rand.NewSource(42)), n)
}

// BenchmarkAllAssocAccess guards the I-stream hot loop: the depth-1
// memo and the swap-instead-of-copy promote for depth-2 hits.
func BenchmarkAllAssocAccess(b *testing.B) {
	keys := benchKeys(1 << 16)
	a := NewAllAssoc(64, 4, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.AccessKeys(keys)
	}
	b.ReportMetric(float64(len(keys))*float64(b.N)/b.Elapsed().Seconds(), "refs/s")
}

// BenchmarkAllAssocDataAccess is the D-stream counterpart, with a
// store mix driving the write-policy paths.
func BenchmarkAllAssocDataAccess(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	keys := benchKeys(1 << 16)
	batch := make([]uint64, len(keys))
	for i, k := range keys {
		batch[i] = PackRef(k, rng.Intn(3) == 0)
	}
	d := NewAllAssocData(64, 4, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.AccessPacked(batch)
	}
	b.ReportMetric(float64(len(batch))*float64(b.N)/b.Elapsed().Seconds(), "refs/s")
}
