package cheetah

import (
	"math/rand"
	"testing"
	"testing/quick"

	"onchip/internal/area"
	"onchip/internal/cache"
)

// Cross-validation: the single-pass all-associativity simulator must
// produce exactly the same miss counts as the direct LRU simulator for
// every associativity.
func TestAgreesWithDirectSimulator(t *testing.T) {
	const (
		sets      = 16
		lineWords = 4
		maxAssoc  = 8
	)
	rng := rand.New(rand.NewSource(7))
	aa := NewAllAssoc(sets, lineWords, maxAssoc)
	direct := make([]*cache.Cache, maxAssoc)
	for a := 1; a <= maxAssoc; a++ {
		direct[a-1] = cache.New(cache.Config{CacheConfig: area.CacheConfig{
			CapacityBytes: sets * a * lineWords * area.WordBytes,
			LineWords:     lineWords,
			Assoc:         a,
		}})
	}
	for i := 0; i < 50000; i++ {
		// Mix of sequential and random accesses to exercise both
		// spatial and temporal locality.
		var addr uint64
		if i%3 == 0 {
			addr = uint64(i * 4 % (1 << 13))
		} else {
			addr = uint64(rng.Intn(1 << 13))
		}
		aa.Access(addr)
		for _, c := range direct {
			c.Access(addr, false)
		}
	}
	for a := 1; a <= maxAssoc; a++ {
		want := direct[a-1].Stats().ReadMisses
		if got := aa.Misses(a); got != want {
			t.Errorf("assoc %d: cheetah misses %d, direct %d", a, got, want)
		}
	}
}

// Inclusion: miss counts are non-increasing in associativity.
func TestMissesMonotoneInAssoc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	aa := NewAllAssoc(32, 2, 8)
	for i := 0; i < 30000; i++ {
		aa.Access(uint64(rng.Intn(1 << 14)))
	}
	for a := 2; a <= 8; a++ {
		if aa.Misses(a) > aa.Misses(a-1) {
			t.Errorf("misses(%d)=%d > misses(%d)=%d", a, aa.Misses(a), a-1, aa.Misses(a-1))
		}
	}
}

func TestStackDistFullyAssociative(t *testing.T) {
	sd := NewStackDist(4, 64)
	fa := cache.New(cache.Config{CacheConfig: area.CacheConfig{
		CapacityBytes: 16 * 16, // 16 lines of 16 bytes
		LineWords:     4,
		Assoc:         area.FullyAssociative,
	}})
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20000; i++ {
		addr := uint64(rng.Intn(1 << 10))
		sd.Access(addr)
		fa.Access(addr, false)
	}
	if got, want := sd.Misses(16), fa.Stats().ReadMisses; got != want {
		t.Errorf("stack-distance misses(16 lines) = %d, direct FA = %d", got, want)
	}
}

func TestAccessesCount(t *testing.T) {
	aa := NewAllAssoc(4, 1, 2)
	for i := 0; i < 10; i++ {
		aa.Access(uint64(i * 4))
	}
	if aa.Accesses() != 10 {
		t.Errorf("Accesses = %d", aa.Accesses())
	}
	if aa.MissRatio(1) != 1.0 {
		t.Errorf("all-distinct stream should miss everywhere, ratio=%g", aa.MissRatio(1))
	}
}

func TestPanicsOnBadParams(t *testing.T) {
	for name, f := range map[string]func(){
		"sets":  func() { NewAllAssoc(3, 4, 2) },
		"line":  func() { NewAllAssoc(4, 3, 2) },
		"assoc": func() { NewAllAssoc(4, 4, 0) },
		"range": func() { NewAllAssoc(4, 4, 2).Misses(3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: for random traces, cheetah and the direct simulator agree at
// a randomly chosen associativity.
func TestQuickAgreement(t *testing.T) {
	f := func(seed int64, assocExp uint8) bool {
		assoc := 1 << (assocExp % 3) // 1, 2, 4
		const sets, line = 8, 2
		rng := rand.New(rand.NewSource(seed))
		aa := NewAllAssoc(sets, line, 4)
		d := cache.New(cache.Config{CacheConfig: area.CacheConfig{
			CapacityBytes: sets * assoc * line * area.WordBytes,
			LineWords:     line,
			Assoc:         assoc,
		}})
		for i := 0; i < 3000; i++ {
			addr := uint64(rng.Intn(1 << 11))
			aa.Access(addr)
			d.Access(addr, false)
		}
		return aa.Misses(assoc) == d.Stats().ReadMisses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSweepSharesSimulators(t *testing.T) {
	configs := []area.CacheConfig{
		{CapacityBytes: 4 << 10, LineWords: 4, Assoc: 1},
		{CapacityBytes: 8 << 10, LineWords: 4, Assoc: 2}, // same 256 sets
		{CapacityBytes: 16 << 10, LineWords: 4, Assoc: 4},
		{CapacityBytes: 8 << 10, LineWords: 8, Assoc: 1}, // different line
	}
	sw := NewSweep(configs, 8)
	if sw.Simulators() != 2 {
		t.Errorf("simulators = %d, want 2 (three configs share 256 sets x 4 words)", sw.Simulators())
	}
	rng := rand.New(rand.NewSource(21))
	direct := make([]*cache.Cache, len(configs))
	for i, c := range configs {
		direct[i] = cache.New(cache.Config{CacheConfig: c})
	}
	for i := 0; i < 30000; i++ {
		key := uint64(rng.Intn(1 << 15))
		sw.Access(key)
		for _, d := range direct {
			d.Access(key, false)
		}
	}
	for i, c := range configs {
		if got, want := sw.Misses(c), direct[i].Stats().ReadMisses; got != want {
			t.Errorf("%v: sweep %d, direct %d", c, got, want)
		}
	}
	if sw.Accesses() != 30000 {
		t.Errorf("accesses = %d", sw.Accesses())
	}
}

func TestSweepPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"invalid": func() {
			NewSweep([]area.CacheConfig{{CapacityBytes: 3000, LineWords: 4, Assoc: 1}}, 8)
		},
		"overAssoc": func() {
			NewSweep([]area.CacheConfig{{CapacityBytes: 8 << 10, LineWords: 4, Assoc: 16}}, 8)
		},
		"unswept": func() {
			sw := NewSweep([]area.CacheConfig{{CapacityBytes: 8 << 10, LineWords: 4, Assoc: 1}}, 8)
			sw.Misses(area.CacheConfig{CapacityBytes: 4 << 10, LineWords: 8, Assoc: 1})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
