package cheetah

import (
	"fmt"

	"onchip/internal/area"
)

// Sweep measures miss counts for an arbitrary set of cache
// configurations in as few passes as single-pass all-associativity
// simulation allows: configurations sharing a (set count, line size)
// pair share one AllAssoc simulator, so a Table 5-style design space of
// 120 configurations typically needs ~40 simulators instead of 120.
type Sweep struct {
	sims     map[[2]int]*AllAssoc // key: {sets, lineWords}; lookup only
	simList  []*AllAssoc          // dense iteration order for the hot path
	accesses uint64
}

// NewSweep builds a sweep covering every configuration. Configurations
// must be set-associative (the stack algorithm covers any associativity
// up to maxAssoc); it panics on invalid or fully-associative configs
// beyond maxAssoc.
func NewSweep(configs []area.CacheConfig, maxAssoc int) *Sweep {
	s := &Sweep{sims: make(map[[2]int]*AllAssoc)}
	for _, c := range configs {
		if err := c.Validate(); err != nil {
			panic(err)
		}
		assoc := c.Assoc
		if assoc == area.FullyAssociative {
			assoc = c.Lines()
		}
		if assoc > maxAssoc {
			panic(fmt.Sprintf("cheetah: config %v exceeds sweep associativity %d", c, maxAssoc))
		}
		key := [2]int{c.Sets(), c.LineWords}
		if _, ok := s.sims[key]; !ok {
			sim := NewAllAssoc(c.Sets(), c.LineWords, maxAssoc)
			s.sims[key] = sim
			s.simList = append(s.simList, sim)
		}
	}
	return s
}

// Access processes one reference for every simulator. Iteration runs
// over a pre-built slice: ranging the map here would cost per
// reference and visit simulators in random order.
func (s *Sweep) Access(key uint64) {
	s.accesses++
	for _, sim := range s.simList {
		sim.Access(key)
	}
}

// AccessKeys processes a batch of references for every simulator, one
// simulator at a time so each inner loop stays tight over the shared
// batch.
func (s *Sweep) AccessKeys(keys []uint64) {
	s.accesses += uint64(len(keys))
	for _, sim := range s.simList {
		for _, key := range keys {
			sim.Access(key)
		}
	}
}

// Accesses returns the number of references processed.
func (s *Sweep) Accesses() uint64 { return s.accesses }

// Misses returns the exact LRU miss count for one of the swept
// configurations. It panics if the configuration was not covered by
// NewSweep.
func (s *Sweep) Misses(c area.CacheConfig) uint64 {
	assoc := c.Assoc
	if assoc == area.FullyAssociative {
		assoc = c.Lines()
	}
	sim, ok := s.sims[[2]int{c.Sets(), c.LineWords}]
	if !ok {
		panic(fmt.Sprintf("cheetah: config %v was not swept", c))
	}
	return sim.Misses(assoc)
}

// Simulators reports how many distinct stack simulators the sweep runs
// (the pass-sharing the package exists for).
func (s *Sweep) Simulators() int { return len(s.simList) }

// Groups hands out the underlying simulators for callers that
// parallelize across them (each simulator is independent and
// deterministic, so concurrent groups give bit-identical results as
// long as every group sees the full stream in order).
func (s *Sweep) Groups() []*AllAssoc { return s.simList }

// GroupCount reports how many distinct (set count, line size) simulator
// groups the configurations collapse into -- the per-stream group count
// a Sweep or DataSweep over the same configurations will run, available
// without building the simulators. Callers sizing a worker pool use it
// to avoid spinning workers that could never receive a group.
func GroupCount(configs []area.CacheConfig) int {
	seen := make(map[[2]int]struct{}, len(configs))
	for _, c := range configs {
		seen[[2]int{c.Sets(), c.LineWords}] = struct{}{}
	}
	return len(seen)
}
