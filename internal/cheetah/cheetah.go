// Package cheetah implements single-pass, multi-configuration cache
// simulation using LRU stack distances, after the Cheetah simulator of
// Sugumar (cited in the paper's methodology). One pass over a trace
// yields exact LRU miss counts for every associativity from 1 to a
// configured maximum at a fixed set count and line size -- the property
// that makes design-space sweeps affordable.
//
// The inclusion property of LRU makes this exact: with the set count
// fixed, an access that hits way-depth d in the per-set LRU stack hits
// in every cache of associativity >= d and misses in all smaller ones.
package cheetah

import "onchip/internal/area"

// AllAssoc computes, in one pass, miss counts for set-associative LRU
// caches with a fixed set count and line size and every associativity
// 1..MaxAssoc.
type AllAssoc struct {
	sets       int
	maxAssoc   int
	offsetBits uint
	setMask    uint64
	// stacks[s] is set s's LRU stack, most recent first, truncated to
	// maxAssoc entries (deeper blocks miss at every tracked
	// associativity, so their order is irrelevant).
	stacks [][]uint64
	// hits[d] counts accesses that hit at stack depth d+1.
	hits     []uint64
	accesses uint64
	// last is the block of the previous access (always at the front of
	// its set's stack afterwards), memoized because reference streams
	// run through cache lines sequentially: a repeat is a depth-1 hit
	// that provably leaves the stack unchanged, so the scan and the
	// promote can be skipped. Initialized to an impossible block.
	last uint64
	// shards, when non-nil, are the concurrent set-partition views
	// handed out by Shards; their private counters merge into every
	// read-side accessor.
	shards []*AllAssocShard
}

// NewAllAssoc builds a simulator for the given set count (a power of
// two), line size in words, and maximum associativity of interest.
func NewAllAssoc(sets, lineWords, maxAssoc int) *AllAssoc {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("cheetah: set count must be a positive power of two")
	}
	if lineWords <= 0 || lineWords&(lineWords-1) != 0 {
		panic("cheetah: line words must be a positive power of two")
	}
	if maxAssoc <= 0 {
		panic("cheetah: max associativity must be positive")
	}
	stacks := make([][]uint64, sets)
	for i := range stacks {
		stacks[i] = make([]uint64, 0, maxAssoc)
	}
	return &AllAssoc{
		sets:       sets,
		maxAssoc:   maxAssoc,
		offsetBits: uint(log2(lineWords * area.WordBytes)),
		setMask:    uint64(sets - 1),
		stacks:     stacks,
		hits:       make([]uint64, maxAssoc),
		last:       ^uint64(0),
	}
}

// Access processes one reference to the byte-addressable key.
func (a *AllAssoc) Access(key uint64) {
	a.accesses++
	block := key >> a.offsetBits
	if block == a.last {
		a.hits[0]++
		return
	}
	a.last = block
	a.accessStack(int(block&a.setMask), block, a.hits)
}

// accessStack scans and updates set's LRU stack for block, crediting
// the hit depth to hits. The caller has already ruled out its depth-1
// memo, but block can still sit at the front: the memo only covers the
// globally (or shard-locally) most recent access.
func (a *AllAssoc) accessStack(set int, block uint64, hits []uint64) {
	stack := a.stacks[set]
	for i, b := range stack {
		if b == block {
			hits[i]++
			// Promote to the front. Depth 1 needs nothing and depth 2 is
			// a single displaced element -- handle both without the copy
			// machinery; deeper hits shift a real window.
			if i == 1 {
				stack[1] = stack[0]
				stack[0] = block
			} else if i > 1 {
				copy(stack[1:i+1], stack[:i])
				stack[0] = block
			}
			return
		}
	}
	// Miss at every tracked associativity; push, truncating the stack.
	if len(stack) < a.maxAssoc {
		stack = append(stack, 0)
	}
	copy(stack[1:], stack[:len(stack)-1])
	stack[0] = block
	a.stacks[set] = stack
}

// AccessKeys processes a batch of references; the devirtualized inner
// loop is the sweep engine's hot path.
func (a *AllAssoc) AccessKeys(keys []uint64) {
	for _, key := range keys {
		a.Access(key)
	}
}

// AllAssocShard is a deterministic set-partition view of an AllAssoc:
// shard i of n owns the sets whose index is congruent to i mod n (n a
// power of two, so the filter is a mask) and carries private hit and
// access counters plus its own depth-1 memo. Per-set LRU stacks are
// independent, so n shards fed the same key stream -- each skipping
// the sets it does not own -- touch disjoint state and may run on
// separate goroutines; the parent merges shard counters at read time
// and the combined result is byte-identical to the serial pass.
//
// The per-shard memo stays exact: a memo hit means no access since the
// last one touched this shard's copy of that set, so the block is
// still at the MRU spot and a depth-1 hit leaves the stack unchanged.
type AllAssocShard struct {
	parent    *AllAssoc
	shard     uint64
	shardMask uint64
	hits      []uint64
	accesses  uint64
	last      uint64
}

// Shards partitions the simulator for n-way concurrent access and
// returns the shard views. n is rounded down to a power of two and
// clamped to the set count, so the result may be shorter than
// requested; it always holds at least one shard. Shards must be called
// at most once, before any access, and serial Access/AccessKeys on the
// parent must not be mixed with shard access afterwards (the parent's
// memo cannot see shard updates).
func (a *AllAssoc) Shards(n int) []*AllAssocShard {
	if a.shards != nil {
		panic("cheetah: simulator already sharded")
	}
	if a.accesses != 0 {
		panic("cheetah: Shards called after serial access")
	}
	n = shardCount(n, a.sets)
	a.shards = make([]*AllAssocShard, n)
	for i := range a.shards {
		a.shards[i] = &AllAssocShard{
			parent:    a,
			shard:     uint64(i),
			shardMask: uint64(n - 1),
			hits:      make([]uint64, a.maxAssoc),
			last:      ^uint64(0),
		}
	}
	return a.shards
}

// shardCount rounds n down to a power of two clamped to [1, sets].
func shardCount(n, sets int) int {
	if n > sets {
		n = sets
	}
	s := 1
	for s*2 <= n {
		s *= 2
	}
	return s
}

// AccessKeys processes a batch of references, simulating only the sets
// this shard owns. Every shard of one parent must see the same stream
// in the same order.
func (s *AllAssocShard) AccessKeys(keys []uint64) {
	a := s.parent
	for _, key := range keys {
		block := key >> a.offsetBits
		if block == s.last {
			s.hits[0]++
			s.accesses++
			continue
		}
		set := block & a.setMask
		if set&s.shardMask != s.shard {
			continue
		}
		s.accesses++
		s.last = block
		a.accessStack(int(set), block, s.hits)
	}
}

// Accesses returns the number of references processed (for a sharded
// simulator, summed over the shards' disjoint set partitions).
func (a *AllAssoc) Accesses() uint64 {
	n := a.accesses
	for _, s := range a.shards {
		n += s.accesses
	}
	return n
}

// hitsThrough sums hit counts at depths 1..assoc across the serial
// counters and every shard.
func (a *AllAssoc) hitsThrough(assoc int) uint64 {
	var h uint64
	for d := 0; d < assoc; d++ {
		h += a.hits[d]
	}
	for _, s := range a.shards {
		for d := 0; d < assoc; d++ {
			h += s.hits[d]
		}
	}
	return h
}

// Misses returns the exact LRU miss count for associativity assoc
// (1 <= assoc <= MaxAssoc).
func (a *AllAssoc) Misses(assoc int) uint64 {
	if assoc < 1 || assoc > a.maxAssoc {
		panic("cheetah: associativity out of tracked range")
	}
	return a.Accesses() - a.hitsThrough(assoc)
}

// MissRatio returns Misses(assoc)/Accesses().
func (a *AllAssoc) MissRatio(assoc int) float64 {
	n := a.Accesses()
	if n == 0 {
		return 0
	}
	return float64(a.Misses(assoc)) / float64(n)
}

// StackDist computes, in one pass, miss counts for fully-associative LRU
// caches of every size, via the classic Mattson stack algorithm with a
// bounded stack. Distances beyond the bound are lumped as misses for all
// tracked sizes.
type StackDist struct {
	inner *AllAssoc
}

// NewStackDist tracks fully-associative caches of up to maxLines lines
// with the given line size.
func NewStackDist(lineWords, maxLines int) *StackDist {
	return &StackDist{inner: NewAllAssoc(1, lineWords, maxLines)}
}

// Access processes one reference.
func (s *StackDist) Access(key uint64) { s.inner.Access(key) }

// Misses returns the miss count for a fully-associative cache of `lines`
// lines.
func (s *StackDist) Misses(lines int) uint64 { return s.inner.Misses(lines) }

// Accesses returns the number of references processed.
func (s *StackDist) Accesses() uint64 { return s.inner.Accesses() }

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}
