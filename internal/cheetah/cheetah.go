// Package cheetah implements single-pass, multi-configuration cache
// simulation using LRU stack distances, after the Cheetah simulator of
// Sugumar (cited in the paper's methodology). One pass over a trace
// yields exact LRU miss counts for every associativity from 1 to a
// configured maximum at a fixed set count and line size -- the property
// that makes design-space sweeps affordable.
//
// The inclusion property of LRU makes this exact: with the set count
// fixed, an access that hits way-depth d in the per-set LRU stack hits
// in every cache of associativity >= d and misses in all smaller ones.
package cheetah

import "onchip/internal/area"

// AllAssoc computes, in one pass, miss counts for set-associative LRU
// caches with a fixed set count and line size and every associativity
// 1..MaxAssoc.
type AllAssoc struct {
	sets       int
	maxAssoc   int
	offsetBits uint
	setMask    uint64
	// stacks[s] is set s's LRU stack, most recent first, truncated to
	// maxAssoc entries (deeper blocks miss at every tracked
	// associativity, so their order is irrelevant).
	stacks [][]uint64
	// hits[d] counts accesses that hit at stack depth d+1.
	hits     []uint64
	accesses uint64
	// last is the block of the previous access (always at the front of
	// its set's stack afterwards), memoized because reference streams
	// run through cache lines sequentially: a repeat is a depth-1 hit
	// that provably leaves the stack unchanged, so the scan and the
	// promote can be skipped. Initialized to an impossible block.
	last uint64
}

// NewAllAssoc builds a simulator for the given set count (a power of
// two), line size in words, and maximum associativity of interest.
func NewAllAssoc(sets, lineWords, maxAssoc int) *AllAssoc {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("cheetah: set count must be a positive power of two")
	}
	if lineWords <= 0 || lineWords&(lineWords-1) != 0 {
		panic("cheetah: line words must be a positive power of two")
	}
	if maxAssoc <= 0 {
		panic("cheetah: max associativity must be positive")
	}
	stacks := make([][]uint64, sets)
	for i := range stacks {
		stacks[i] = make([]uint64, 0, maxAssoc)
	}
	return &AllAssoc{
		sets:       sets,
		maxAssoc:   maxAssoc,
		offsetBits: uint(log2(lineWords * area.WordBytes)),
		setMask:    uint64(sets - 1),
		stacks:     stacks,
		hits:       make([]uint64, maxAssoc),
		last:       ^uint64(0),
	}
}

// Access processes one reference to the byte-addressable key.
func (a *AllAssoc) Access(key uint64) {
	a.accesses++
	block := key >> a.offsetBits
	if block == a.last {
		a.hits[0]++
		return
	}
	a.last = block
	set := int(block & a.setMask)
	stack := a.stacks[set]
	for i, b := range stack {
		if b == block {
			a.hits[i]++
			copy(stack[1:i+1], stack[:i])
			stack[0] = block
			return
		}
	}
	// Miss at every tracked associativity; push, truncating the stack.
	if len(stack) < a.maxAssoc {
		stack = append(stack, 0)
	}
	copy(stack[1:], stack[:len(stack)-1])
	stack[0] = block
	a.stacks[set] = stack
}

// AccessKeys processes a batch of references; the devirtualized inner
// loop is the sweep engine's hot path.
func (a *AllAssoc) AccessKeys(keys []uint64) {
	for _, key := range keys {
		a.Access(key)
	}
}

// Accesses returns the number of references processed.
func (a *AllAssoc) Accesses() uint64 { return a.accesses }

// Misses returns the exact LRU miss count for associativity assoc
// (1 <= assoc <= MaxAssoc).
func (a *AllAssoc) Misses(assoc int) uint64 {
	if assoc < 1 || assoc > a.maxAssoc {
		panic("cheetah: associativity out of tracked range")
	}
	var hits uint64
	for d := 0; d < assoc; d++ {
		hits += a.hits[d]
	}
	return a.accesses - hits
}

// MissRatio returns Misses(assoc)/Accesses().
func (a *AllAssoc) MissRatio(assoc int) float64 {
	if a.accesses == 0 {
		return 0
	}
	return float64(a.Misses(assoc)) / float64(a.accesses)
}

// StackDist computes, in one pass, miss counts for fully-associative LRU
// caches of every size, via the classic Mattson stack algorithm with a
// bounded stack. Distances beyond the bound are lumped as misses for all
// tracked sizes.
type StackDist struct {
	inner *AllAssoc
}

// NewStackDist tracks fully-associative caches of up to maxLines lines
// with the given line size.
func NewStackDist(lineWords, maxLines int) *StackDist {
	return &StackDist{inner: NewAllAssoc(1, lineWords, maxLines)}
}

// Access processes one reference.
func (s *StackDist) Access(key uint64) { s.inner.Access(key) }

// Misses returns the miss count for a fully-associative cache of `lines`
// lines.
func (s *StackDist) Misses(lines int) uint64 { return s.inner.Misses(lines) }

// Accesses returns the number of references processed.
func (s *StackDist) Accesses() uint64 { return s.inner.Accesses() }

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}
