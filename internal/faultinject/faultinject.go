// Package faultinject provides a deterministic, seedable fault
// injector for exercising the resilience paths of the simulators: it
// can corrupt or truncate a trace byte stream, fail reads with
// transient I/O errors, delay reads, and panic inside sweep workers --
// the failure modes an hours-long batch run over real trace files must
// survive. A retry-with-backoff wrapper absorbs the transient class.
//
// Everything is driven by a single seeded PRNG, so a given (seed,
// probabilities) pair replays the exact same fault schedule: a run that
// failed under injection can be reproduced bit-for-bit.
//
// The zero Injector pointer is a valid no-op, so call sites can thread
// an *Injector unconditionally and pay nothing when injection is off.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"onchip/internal/telemetry"
)

// ErrInjected is the transient I/O error produced by injected read
// failures. Retry treats it (and anything wrapping it) as retryable.
var ErrInjected = errors.New("faultinject: injected transient I/O error")

// Config sets the fault probabilities. All probabilities are per
// injection site visit (per Read call for the reader faults) and may be
// zero; a Config with every probability zero injects nothing.
type Config struct {
	// Seed seeds the fault schedule; the same seed and probabilities
	// reproduce the same faults.
	Seed int64
	// IOErrProb is the probability a Read call fails with ErrInjected
	// (transient: a retry of the same call proceeds normally).
	IOErrProb float64
	// CorruptProb is the probability a Read call flips one byte of the
	// data it returns.
	CorruptProb float64
	// TruncateProb is the probability a Read call truncates the stream:
	// the call and every later one return io.EOF.
	TruncateProb float64
	// DelayProb and Delay inject latency: with probability DelayProb a
	// Read call sleeps for Delay before proceeding.
	DelayProb float64
	Delay     time.Duration
	// PanicProb is the probability a MaybePanic site panics with an
	// injectedPanic value.
	PanicProb float64
}

// Enabled reports whether any fault has a non-zero probability.
func (c Config) Enabled() bool {
	return c.IOErrProb > 0 || c.CorruptProb > 0 || c.TruncateProb > 0 ||
		(c.DelayProb > 0 && c.Delay > 0) || c.PanicProb > 0
}

// Injector draws from a seeded PRNG to decide when each configured
// fault fires. It is safe for concurrent use; a nil *Injector is a
// no-op at every method.
type Injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	ioErrs      telemetry.Counter
	corruptions telemetry.Counter
	truncations telemetry.Counter
	delays      telemetry.Counter
	panics      telemetry.Counter
}

// New returns an Injector for cfg. It returns nil (the no-op injector)
// when cfg injects nothing, so callers can gate wiring on i != nil.
func New(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Describe publishes the injector's fault counters with the registry
// under prefix (e.g. "faults"). Safe on a nil injector or registry.
func (i *Injector) Describe(reg *telemetry.Registry, prefix string) {
	if i == nil || reg == nil {
		return
	}
	reg.CounterFunc(prefix+".io_errors", "injected transient I/O errors",
		func() uint64 { return i.ioErrs.Value() })
	reg.CounterFunc(prefix+".corruptions", "injected byte corruptions",
		func() uint64 { return i.corruptions.Value() })
	reg.CounterFunc(prefix+".truncations", "injected stream truncations",
		func() uint64 { return i.truncations.Value() })
	reg.CounterFunc(prefix+".delays", "injected read delays",
		func() uint64 { return i.delays.Value() })
	reg.CounterFunc(prefix+".panics", "injected worker panics",
		func() uint64 { return i.panics.Value() })
}

// roll returns true with probability p, consuming one PRNG draw (so the
// schedule is stable regardless of which faults are enabled).
func (i *Injector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	return i.rng.Float64() < p
}

// injectedPanic is the value thrown by MaybePanic.
type injectedPanic struct{ site string }

func (p injectedPanic) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s", p.site)
}

// MaybePanic panics with an injected fault value with probability
// PanicProb. Call it at the top of recoverable worker bodies. No-op on
// a nil injector.
func (i *Injector) MaybePanic(site string) {
	if i == nil || i.cfg.PanicProb <= 0 {
		return
	}
	i.mu.Lock()
	fire := i.roll(i.cfg.PanicProb)
	i.mu.Unlock()
	if fire {
		i.panics.Inc()
		panic(injectedPanic{site: site})
	}
}

// IsInjectedPanic reports whether a recovered panic value came from
// MaybePanic, returning the site that threw it.
func IsInjectedPanic(v any) (site string, ok bool) {
	p, ok := v.(injectedPanic)
	return p.site, ok
}

// Reader wraps r with the injector's read faults: transient errors,
// one-byte corruptions, truncation, and delays. A nil injector returns
// r unchanged.
func (i *Injector) Reader(r io.Reader) io.Reader {
	return i.ReaderContext(context.Background(), r)
}

// ReaderContext is Reader with a context bounding the injected delays:
// a cancellation interrupts a pending delay sleep promptly and the Read
// returns ctx's error, instead of holding the caller for the full
// injected latency. Request-scoped consumers (the advisor's sweep
// workers) use this form so a deadline can cut through a fault burst.
func (i *Injector) ReaderContext(ctx context.Context, r io.Reader) io.Reader {
	if i == nil {
		return r
	}
	return &faultyReader{r: r, ctx: ctx, inj: i}
}

type faultyReader struct {
	r         io.Reader
	ctx       context.Context
	inj       *Injector
	truncated bool
}

func (f *faultyReader) Read(p []byte) (int, error) {
	if f.truncated {
		return 0, io.EOF
	}
	i := f.inj
	i.mu.Lock()
	delay := i.roll(i.cfg.DelayProb)
	ioErr := i.roll(i.cfg.IOErrProb)
	trunc := i.roll(i.cfg.TruncateProb)
	corrupt := i.roll(i.cfg.CorruptProb)
	// Draw the corruption position now so the PRNG consumption per call
	// is fixed and the schedule deterministic.
	pos := i.rng.Int63()
	i.mu.Unlock()

	if delay {
		i.delays.Inc()
		if err := sleepCtx(f.ctx, i.cfg.Delay); err != nil {
			return 0, err
		}
	}
	if ioErr {
		// Fail before consuming anything from the underlying reader, so
		// a retry of this call sees the stream exactly where it was.
		i.ioErrs.Inc()
		return 0, ErrInjected
	}
	if trunc {
		i.truncations.Inc()
		f.truncated = true
		return 0, io.EOF
	}
	n, err := f.r.Read(p)
	if corrupt && n > 0 {
		i.corruptions.Inc()
		p[pos%int64(n)] ^= 0xff
	}
	return n, err
}

// RetryPolicy shapes Retry's backoff: up to Attempts tries, sleeping
// BaseDelay after the first failure and doubling up to MaxDelay.
type RetryPolicy struct {
	Attempts  int
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter spreads each backoff sleep uniformly over
	// [delay*(1-Jitter), delay*(1+Jitter)], so a fleet of retriers that
	// failed together does not wake and retry in lockstep (the
	// thundering-herd shape a shared-disk fault burst produces). Zero
	// keeps the exact exponential delays.
	Jitter float64
	// JitterSeed seeds the jitter PRNG, keeping the full fault-plus-
	// retry schedule reproducible. Zero selects a fixed default seed.
	JitterSeed int64
}

// DefaultRetryPolicy retries transient I/O up to 5 times with
// 1ms..16ms exponential backoff -- enough to ride out injected fault
// bursts at a few percent error probability without stretching runs.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Attempts: 5, BaseDelay: time.Millisecond, MaxDelay: 16 * time.Millisecond}
}

// Jittered returns the default policy with half-width jitter on a
// deterministic seed: what concurrent request-serving paths (the
// advisor's workers) use so simultaneous retriers decorrelate while
// the schedule stays replayable.
func Jittered(seed int64) RetryPolicy {
	p := DefaultRetryPolicy()
	p.Jitter = 0.5
	p.JitterSeed = seed
	return p
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first,
// returning ctx's error on interruption. A nil ctx sleeps unconditionally.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Transient reports whether err is worth retrying: an injected
// transient error, or any error implementing `Transient() bool`
// truthfully.
func Transient(err error) bool {
	if errors.Is(err, ErrInjected) {
		return true
	}
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// Retry runs fn until it succeeds, returns a non-transient error, the
// attempts are exhausted, or ctx is cancelled. A cancellation that
// lands mid-backoff interrupts the pending sleep promptly (the timer
// is raced against ctx.Done, not slept through). The last error is
// returned on failure.
func Retry(ctx context.Context, p RetryPolicy, fn func() error) error {
	if p.Attempts <= 0 {
		p.Attempts = 1
	}
	var jitter *rand.Rand
	if p.Jitter > 0 {
		seed := p.JitterSeed
		if seed == 0 {
			seed = 1
		}
		jitter = rand.New(rand.NewSource(seed))
	}
	delay := p.BaseDelay
	var err error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if attempt > 0 {
			d := delay
			if jitter != nil {
				// Uniform over [d*(1-J), d*(1+J)], never negative.
				d = time.Duration(float64(d) * (1 - p.Jitter + 2*p.Jitter*jitter.Float64()))
				if d < 0 {
					d = 0
				}
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(d):
			}
			if delay *= 2; p.MaxDelay > 0 && delay > p.MaxDelay {
				delay = p.MaxDelay
			}
		}
		if err = fn(); err == nil || !Transient(err) {
			return err
		}
	}
	return fmt.Errorf("faultinject: %d attempts exhausted: %w", p.Attempts, err)
}

// RetryReader wraps r so that transient read errors are retried in
// place with the policy's backoff; the stream position is unchanged
// across retried calls (transient failures consume nothing), so the
// consumer above never observes them. Non-transient errors pass
// through. The retries are unbounded in time; request-scoped readers
// should use RetryReaderContext so a deadline or cancellation cuts a
// pending backoff short.
func RetryReader(r io.Reader, p RetryPolicy) io.Reader {
	return RetryReaderContext(context.Background(), r, p)
}

// RetryReaderContext is RetryReader bound to a context: a cancellation
// interrupts any pending backoff sleep promptly and the Read returns
// ctx's error.
func RetryReaderContext(ctx context.Context, r io.Reader, p RetryPolicy) io.Reader {
	return &retryReader{r: r, ctx: ctx, p: p}
}

type retryReader struct {
	r   io.Reader
	ctx context.Context
	p   RetryPolicy
}

func (rr *retryReader) Read(p []byte) (int, error) {
	var n int
	var rerr error
	err := Retry(rr.ctx, rr.p, func() error {
		n, rerr = rr.r.Read(p)
		if n > 0 {
			// Data was consumed; stop retrying and deliver it (with the
			// error, per the io.Reader contract) so no position is lost.
			return nil
		}
		return rerr
	})
	if n > 0 {
		return n, rerr
	}
	return n, err
}
