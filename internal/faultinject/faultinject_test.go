package faultinject

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"onchip/internal/telemetry"
)

func TestNewReturnsNilWhenDisabled(t *testing.T) {
	if inj := New(Config{Seed: 7}); inj != nil {
		t.Error("New with no faults enabled should return the nil no-op injector")
	}
	// Delay without a duration injects nothing.
	if inj := New(Config{DelayProb: 1}); inj != nil {
		t.Error("DelayProb without Delay should not enable the injector")
	}
}

func TestNilInjectorIsSafe(t *testing.T) {
	var inj *Injector
	inj.MaybePanic("anywhere")
	inj.Describe(telemetry.NewRegistry(), "faults")
	inj.Describe(nil, "faults")
	r := bytes.NewReader([]byte("data"))
	if got := inj.Reader(r); got != io.Reader(r) {
		t.Error("nil injector should return the reader unchanged")
	}
}

// The same seed and probabilities must replay the same fault schedule.
func TestReaderDeterministicSchedule(t *testing.T) {
	data := bytes.Repeat([]byte{0xa5}, 4096)
	run := func() (out []byte, errs []string) {
		inj := New(Config{Seed: 42, IOErrProb: 0.3, CorruptProb: 0.2})
		r := inj.Reader(bytes.NewReader(data))
		buf := make([]byte, 64)
		for {
			n, err := r.Read(buf)
			out = append(out, buf[:n]...)
			if err != nil {
				errs = append(errs, err.Error())
				if err != ErrInjected {
					return
				}
			}
		}
	}
	out1, errs1 := run()
	out2, errs2 := run()
	if !bytes.Equal(out1, out2) {
		t.Error("same seed produced different corrupted streams")
	}
	if fmt.Sprint(errs1) != fmt.Sprint(errs2) {
		t.Errorf("same seed produced different error schedules:\n%v\n%v", errs1, errs2)
	}
	if len(errs1) < 2 {
		t.Errorf("expected several injected errors at 30%%, got %v", errs1)
	}
}

func TestReaderInjectsTransientErrorsWithoutLosingData(t *testing.T) {
	data := bytes.Repeat([]byte{1, 2, 3, 4}, 1024)
	inj := New(Config{Seed: 1, IOErrProb: 0.25})
	r := inj.Reader(bytes.NewReader(data))
	var out []byte
	buf := make([]byte, 100)
	injected := 0
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err == ErrInjected {
			injected++
			continue // a transient failure consumes nothing; just try again
		}
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if injected == 0 {
		t.Fatal("no transient errors injected at 25%")
	}
	if !bytes.Equal(out, data) {
		t.Errorf("retrying past transient errors lost data: got %d bytes, want %d", len(out), len(data))
	}
}

func TestReaderCorruption(t *testing.T) {
	data := bytes.Repeat([]byte{0x00}, 256)
	inj := New(Config{Seed: 3, CorruptProb: 1})
	r := inj.Reader(bytes.NewReader(data))
	buf := make([]byte, 256)
	n, err := io.ReadFull(r, buf)
	if err != nil || n != 256 {
		t.Fatalf("ReadFull: %d, %v", n, err)
	}
	flipped := 0
	for _, b := range buf {
		if b != 0 {
			flipped++
		}
	}
	if flipped == 0 {
		t.Error("CorruptProb=1 flipped no bytes")
	}
}

func TestReaderTruncation(t *testing.T) {
	inj := New(Config{Seed: 5, TruncateProb: 1})
	r := inj.Reader(bytes.NewReader(bytes.Repeat([]byte{7}, 1024)))
	if n, err := r.Read(make([]byte, 16)); n != 0 || err != io.EOF {
		t.Errorf("truncated read = %d, %v; want 0, EOF", n, err)
	}
	// And it stays truncated.
	if n, err := r.Read(make([]byte, 16)); n != 0 || err != io.EOF {
		t.Errorf("read after truncation = %d, %v; want 0, EOF", n, err)
	}
}

// RetryReader must deliver the full stream despite a high transient
// error rate -- the acceptance scenario's I/O half.
func TestRetryReaderDeliversFullStream(t *testing.T) {
	data := bytes.Repeat([]byte{0xc3, 0x96}, 8192)
	inj := New(Config{Seed: 9, IOErrProb: 0.2})
	r := RetryReader(inj.Reader(bytes.NewReader(data)), RetryPolicy{Attempts: 8, BaseDelay: time.Microsecond})
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll through retry reader: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("retry reader mangled the stream: got %d bytes, want %d", len(got), len(data))
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), RetryPolicy{Attempts: 3, BaseDelay: time.Microsecond}, func() error {
		calls++
		return ErrInjected
	})
	if calls != 3 {
		t.Errorf("fn called %d times, want 3", calls)
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("exhausted retry should wrap the last error, got %v", err)
	}
}

func TestRetryStopsOnNonTransient(t *testing.T) {
	fatal := errors.New("disk on fire")
	calls := 0
	err := Retry(context.Background(), DefaultRetryPolicy(), func() error {
		calls++
		return fatal
	})
	if calls != 1 || !errors.Is(err, fatal) {
		t.Errorf("non-transient error retried: calls=%d err=%v", calls, err)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Retry(ctx, RetryPolicy{Attempts: 5, BaseDelay: time.Hour}, func() error {
		return ErrInjected
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled retry returned %v, want context.Canceled", err)
	}
}

type transientErr struct{}

func (transientErr) Error() string   { return "flaky" }
func (transientErr) Transient() bool { return true }

func TestTransientClassification(t *testing.T) {
	if !Transient(ErrInjected) {
		t.Error("ErrInjected should be transient")
	}
	if !Transient(fmt.Errorf("wrapped: %w", ErrInjected)) {
		t.Error("wrapped ErrInjected should be transient")
	}
	if !Transient(transientErr{}) {
		t.Error("Transient() bool interface should be honored")
	}
	if Transient(errors.New("fatal")) {
		t.Error("plain errors are not transient")
	}
	if Transient(nil) {
		t.Error("nil is not transient")
	}
}

func TestMaybePanicAndRecognition(t *testing.T) {
	inj := New(Config{Seed: 1, PanicProb: 1})
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("PanicProb=1 did not panic")
		}
		site, ok := IsInjectedPanic(v)
		if !ok || site != "worker/3" {
			t.Errorf("IsInjectedPanic = %q, %v", site, ok)
		}
	}()
	inj.MaybePanic("worker/3")
}

func TestIsInjectedPanicRejectsRealPanics(t *testing.T) {
	if _, ok := IsInjectedPanic("index out of range"); ok {
		t.Error("a real panic value misclassified as injected")
	}
}

func TestDescribePublishesCounters(t *testing.T) {
	inj := New(Config{Seed: 2, TruncateProb: 1})
	reg := telemetry.NewRegistry()
	inj.Describe(reg, "faults")
	inj.Reader(bytes.NewReader([]byte{1, 2, 3})).Read(make([]byte, 3))
	found := false
	for _, m := range reg.Snapshot() {
		if m.Name == "faults.truncations" && m.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Error("faults.truncations counter not published or not incremented")
	}
}
