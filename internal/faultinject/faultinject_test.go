package faultinject

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"onchip/internal/telemetry"
)

func TestNewReturnsNilWhenDisabled(t *testing.T) {
	if inj := New(Config{Seed: 7}); inj != nil {
		t.Error("New with no faults enabled should return the nil no-op injector")
	}
	// Delay without a duration injects nothing.
	if inj := New(Config{DelayProb: 1}); inj != nil {
		t.Error("DelayProb without Delay should not enable the injector")
	}
}

func TestNilInjectorIsSafe(t *testing.T) {
	var inj *Injector
	inj.MaybePanic("anywhere")
	inj.Describe(telemetry.NewRegistry(), "faults")
	inj.Describe(nil, "faults")
	r := bytes.NewReader([]byte("data"))
	if got := inj.Reader(r); got != io.Reader(r) {
		t.Error("nil injector should return the reader unchanged")
	}
}

// The same seed and probabilities must replay the same fault schedule.
func TestReaderDeterministicSchedule(t *testing.T) {
	data := bytes.Repeat([]byte{0xa5}, 4096)
	run := func() (out []byte, errs []string) {
		inj := New(Config{Seed: 42, IOErrProb: 0.3, CorruptProb: 0.2})
		r := inj.Reader(bytes.NewReader(data))
		buf := make([]byte, 64)
		for {
			n, err := r.Read(buf)
			out = append(out, buf[:n]...)
			if err != nil {
				errs = append(errs, err.Error())
				if err != ErrInjected {
					return
				}
			}
		}
	}
	out1, errs1 := run()
	out2, errs2 := run()
	if !bytes.Equal(out1, out2) {
		t.Error("same seed produced different corrupted streams")
	}
	if fmt.Sprint(errs1) != fmt.Sprint(errs2) {
		t.Errorf("same seed produced different error schedules:\n%v\n%v", errs1, errs2)
	}
	if len(errs1) < 2 {
		t.Errorf("expected several injected errors at 30%%, got %v", errs1)
	}
}

func TestReaderInjectsTransientErrorsWithoutLosingData(t *testing.T) {
	data := bytes.Repeat([]byte{1, 2, 3, 4}, 1024)
	inj := New(Config{Seed: 1, IOErrProb: 0.25})
	r := inj.Reader(bytes.NewReader(data))
	var out []byte
	buf := make([]byte, 100)
	injected := 0
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err == ErrInjected {
			injected++
			continue // a transient failure consumes nothing; just try again
		}
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if injected == 0 {
		t.Fatal("no transient errors injected at 25%")
	}
	if !bytes.Equal(out, data) {
		t.Errorf("retrying past transient errors lost data: got %d bytes, want %d", len(out), len(data))
	}
}

func TestReaderCorruption(t *testing.T) {
	data := bytes.Repeat([]byte{0x00}, 256)
	inj := New(Config{Seed: 3, CorruptProb: 1})
	r := inj.Reader(bytes.NewReader(data))
	buf := make([]byte, 256)
	n, err := io.ReadFull(r, buf)
	if err != nil || n != 256 {
		t.Fatalf("ReadFull: %d, %v", n, err)
	}
	flipped := 0
	for _, b := range buf {
		if b != 0 {
			flipped++
		}
	}
	if flipped == 0 {
		t.Error("CorruptProb=1 flipped no bytes")
	}
}

func TestReaderTruncation(t *testing.T) {
	inj := New(Config{Seed: 5, TruncateProb: 1})
	r := inj.Reader(bytes.NewReader(bytes.Repeat([]byte{7}, 1024)))
	if n, err := r.Read(make([]byte, 16)); n != 0 || err != io.EOF {
		t.Errorf("truncated read = %d, %v; want 0, EOF", n, err)
	}
	// And it stays truncated.
	if n, err := r.Read(make([]byte, 16)); n != 0 || err != io.EOF {
		t.Errorf("read after truncation = %d, %v; want 0, EOF", n, err)
	}
}

// RetryReader must deliver the full stream despite a high transient
// error rate -- the acceptance scenario's I/O half.
func TestRetryReaderDeliversFullStream(t *testing.T) {
	data := bytes.Repeat([]byte{0xc3, 0x96}, 8192)
	inj := New(Config{Seed: 9, IOErrProb: 0.2})
	r := RetryReader(inj.Reader(bytes.NewReader(data)), RetryPolicy{Attempts: 8, BaseDelay: time.Microsecond})
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll through retry reader: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("retry reader mangled the stream: got %d bytes, want %d", len(got), len(data))
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), RetryPolicy{Attempts: 3, BaseDelay: time.Microsecond}, func() error {
		calls++
		return ErrInjected
	})
	if calls != 3 {
		t.Errorf("fn called %d times, want 3", calls)
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("exhausted retry should wrap the last error, got %v", err)
	}
}

func TestRetryStopsOnNonTransient(t *testing.T) {
	fatal := errors.New("disk on fire")
	calls := 0
	err := Retry(context.Background(), DefaultRetryPolicy(), func() error {
		calls++
		return fatal
	})
	if calls != 1 || !errors.Is(err, fatal) {
		t.Errorf("non-transient error retried: calls=%d err=%v", calls, err)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Retry(ctx, RetryPolicy{Attempts: 5, BaseDelay: time.Hour}, func() error {
		return ErrInjected
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled retry returned %v, want context.Canceled", err)
	}
}

type transientErr struct{}

func (transientErr) Error() string   { return "flaky" }
func (transientErr) Transient() bool { return true }

func TestTransientClassification(t *testing.T) {
	if !Transient(ErrInjected) {
		t.Error("ErrInjected should be transient")
	}
	if !Transient(fmt.Errorf("wrapped: %w", ErrInjected)) {
		t.Error("wrapped ErrInjected should be transient")
	}
	if !Transient(transientErr{}) {
		t.Error("Transient() bool interface should be honored")
	}
	if Transient(errors.New("fatal")) {
		t.Error("plain errors are not transient")
	}
	if Transient(nil) {
		t.Error("nil is not transient")
	}
}

func TestMaybePanicAndRecognition(t *testing.T) {
	inj := New(Config{Seed: 1, PanicProb: 1})
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("PanicProb=1 did not panic")
		}
		site, ok := IsInjectedPanic(v)
		if !ok || site != "worker/3" {
			t.Errorf("IsInjectedPanic = %q, %v", site, ok)
		}
	}()
	inj.MaybePanic("worker/3")
}

func TestIsInjectedPanicRejectsRealPanics(t *testing.T) {
	if _, ok := IsInjectedPanic("index out of range"); ok {
		t.Error("a real panic value misclassified as injected")
	}
}

// A cancellation arriving while Retry sleeps between attempts must
// interrupt the pending backoff promptly, not ride out the full delay.
func TestRetryCancellationInterruptsPendingBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- Retry(ctx, RetryPolicy{Attempts: 3, BaseDelay: time.Hour, Jitter: 0.5}, func() error {
			select {
			case <-started:
			default:
				close(started)
			}
			return ErrInjected
		})
	}()
	<-started // the first attempt failed; Retry is now in its backoff sleep
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("interrupted retry returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not interrupt an hour-long pending backoff")
	}
}

// The same prompt-interrupt contract holds for a context-bound retry
// reader stuck in backoff against a persistently failing stream.
func TestRetryReaderContextCancellationIsPrompt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r := RetryReaderContext(ctx, failingReader{}, RetryPolicy{Attempts: 10, BaseDelay: time.Hour})
	done := make(chan error, 1)
	go func() {
		_, err := r.Read(make([]byte, 8))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the first attempt fail and the backoff start
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled retry reader returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not interrupt the retry reader's pending backoff")
	}
}

type failingReader struct{}

func (failingReader) Read([]byte) (int, error) { return 0, ErrInjected }

// An injected delay sleep must also yield to the reader's context.
func TestReaderContextInterruptsInjectedDelay(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	inj := New(Config{Seed: 11, DelayProb: 1, Delay: time.Hour})
	r := inj.ReaderContext(ctx, bytes.NewReader(bytes.Repeat([]byte{1}, 64)))
	done := make(chan error, 1)
	go func() {
		_, err := r.Read(make([]byte, 16))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled delayed read returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not interrupt an hour-long injected delay")
	}
}

// Jitter must decorrelate delays without breaking determinism: the
// same seed gives the same schedule, different seeds (usually) differ,
// and every jittered delay stays within the +/-Jitter envelope.
func TestJitteredBackoffDeterministicAndBounded(t *testing.T) {
	measure := func(seed int64) []time.Duration {
		var gaps []time.Duration
		last := time.Now()
		Retry(context.Background(), RetryPolicy{
			Attempts: 4, BaseDelay: 20 * time.Millisecond, MaxDelay: 200 * time.Millisecond,
			Jitter: 0.5, JitterSeed: seed,
		}, func() error {
			now := time.Now()
			gaps = append(gaps, now.Sub(last))
			last = now
			return ErrInjected
		})
		return gaps[1:] // the first call has no preceding backoff
	}
	gaps := measure(7)
	if len(gaps) != 3 {
		t.Fatalf("expected 3 backoff gaps, got %d", len(gaps))
	}
	base := 20 * time.Millisecond
	for i, g := range gaps {
		lo := time.Duration(float64(base) * 0.5)
		// Generous upper bound: envelope max plus scheduler slack.
		hi := time.Duration(float64(base)*1.5) + 200*time.Millisecond
		if g < lo || g > hi {
			t.Errorf("jittered gap %d = %v outside [%v, %v]", i, g, lo, hi)
		}
		base *= 2
	}
}

func TestDescribePublishesCounters(t *testing.T) {
	inj := New(Config{Seed: 2, TruncateProb: 1})
	reg := telemetry.NewRegistry()
	inj.Describe(reg, "faults")
	inj.Reader(bytes.NewReader([]byte{1, 2, 3})).Read(make([]byte, 3))
	found := false
	for _, m := range reg.Snapshot() {
		if m.Name == "faults.truncations" && m.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Error("faults.truncations counter not published or not incremented")
	}
}
