package advisor

import "sync"

// pool is a fixed-width worker pool with a bounded admission queue.
// Submission never blocks: when the queue is full the request is shed
// (the caller answers 429), which keeps the daemon's memory and
// latency bounded under overload instead of building an unbounded
// backlog.
type pool struct {
	mu     sync.Mutex
	closed bool
	queue  chan func()
	wg     sync.WaitGroup
}

func newPool(workers, depth int) *pool {
	if workers < 1 {
		workers = 1
	}
	if depth < 0 {
		depth = 0
	}
	p := &pool{queue: make(chan func(), depth)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	for job := range p.queue {
		// Jobs carry their own panic recovery (they must deliver a
		// result to waiters); this backstop only keeps a worker alive
		// if a job's recovery itself fails.
		func() {
			defer func() { _ = recover() }()
			job()
		}()
	}
}

// TrySubmit enqueues job without blocking; false means the queue is
// full (or the pool closed) and the caller must shed the request.
func (p *pool) TrySubmit(job func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.queue <- job:
		return true
	default:
		return false
	}
}

// QueueLen reports the number of admitted-but-unstarted jobs.
func (p *pool) QueueLen() int { return len(p.queue) }

// Close stops admission, lets queued jobs run, and waits for workers
// to exit. Safe to call more than once.
func (p *pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
