package advisor

import "sync"

// flightResult is the rendered outcome of one advise job, delivered
// identically to the leader and every deduplicated waiter: the same
// status and the exact same body bytes.
type flightResult struct {
	status     int
	body       []byte
	retryAfter int // seconds; 0 suppresses the Retry-After header
}

// flightCall is one in-flight computation. done is closed exactly
// once, after res is set; waiters observe res only through the close
// (the happens-before edge that makes the unguarded field safe).
type flightCall struct {
	done chan struct{}
	res  flightResult
}

// flightGroup is the singleflight layer: concurrent requests with the
// same signature collapse onto one computation. Unlike the classic
// shape, registration is fused with admission -- the admit callback
// runs under the group lock, so exactly one leader attempts to claim
// a pool slot and a full queue sheds the request before any flight
// state exists.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// Join returns the call for key. If one is already in flight the
// caller becomes a waiter (joined=true). Otherwise admit(c) is invoked
// under the lock to claim resources for a new leader; if it reports
// false nothing is registered and Join returns (nil, false, false) --
// the shed path.
func (g *flightGroup) Join(key string, admit func(*flightCall) bool) (c *flightCall, joined, admitted bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c, true, true
	}
	c = &flightCall{done: make(chan struct{})}
	if !admit(c) {
		return nil, false, false
	}
	g.calls[key] = c
	return c, false, true
}

// finish publishes the result to every waiter and retires the key so
// later requests start fresh (or hit the response cache).
func (g *flightGroup) finish(key string, c *flightCall, res flightResult) {
	g.mu.Lock()
	if g.calls[key] == c {
		delete(g.calls, key)
	}
	g.mu.Unlock()
	c.res = res
	close(c.done)
}

// Len reports the number of in-flight computations.
func (g *flightGroup) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls)
}
