package advisor

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"onchip/internal/experiments"
	"onchip/internal/tracecache"
)

func openTestCache(t *testing.T, dir string) *tracecache.Cache {
	t.Helper()
	tc, err := tracecache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return tc
}

func postAdvise(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/advise", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /advise: %v", err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp, b
}

// fakeResponse builds a deterministic response for a request so fake
// runners produce stable, signature-dependent bodies.
func fakeResponse(req experiments.AdviseRequest) *experiments.AdviseResponse {
	return &experiments.AdviseResponse{
		Signature: req.Signature(),
		Request:   req,
		Feasible:  1,
		Allocations: []experiments.RankedAllocation{
			{Rank: 1, TLB: "fake", ICache: "fake", DCache: "fake", AreaRBE: req.BudgetRBE, CPI: 2.0},
		},
	}
}

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(3, 10*time.Second)
	b.setClock(func() time.Time { return now })

	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("new breaker should be closed and allowing")
	}
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("2 failures below threshold should stay closed, got %v", b.State())
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("3rd consecutive failure should open, got %v", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker within cooldown should refuse")
	}
	now = now.Add(11 * time.Second)
	if !b.Allow() {
		t.Fatal("after cooldown one probe should be admitted")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("probe should move to half-open, got %v", b.State())
	}
	if b.Allow() {
		t.Fatal("second caller during a probe should be refused")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("failed probe should reopen, got %v", b.State())
	}
	now = now.Add(11 * time.Second)
	if !b.Allow() {
		t.Fatal("second probe after second cooldown")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("successful probe should close the breaker")
	}
	// Success resets the failure streak: two failures, a success, two
	// more failures must not trip a threshold-3 breaker.
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("success should reset the consecutive-failure count")
	}
}

func TestLRUBoundsAndRecency(t *testing.T) {
	c := newLRU(2)
	c.Add("a", []byte("A"))
	c.Add("b", []byte("B"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should be cached")
	}
	c.Add("c", []byte("C")) // evicts b (a was refreshed)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as least recently used")
	}
	if got, ok := c.Get("a"); !ok || string(got) != "A" {
		t.Fatalf("a should survive, got %q ok=%v", got, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

// TestSingleflightIdenticalBytes is the satellite-4 dedup contract:
// concurrent identical requests run the pipeline once and every
// waiter receives byte-identical 200 bodies.
func TestSingleflightIdenticalBytes(t *testing.T) {
	var mu sync.Mutex
	runs := 0
	gate := make(chan struct{})
	srv := New(Config{
		Workers: 4,
		Run: func(ctx context.Context, req experiments.AdviseRequest, useCache bool) (*experiments.AdviseResponse, error) {
			mu.Lock()
			runs++
			mu.Unlock()
			<-gate // hold every arrival in flight until all waiters joined
			return fakeResponse(req), nil
		},
	})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const waiters = 8
	bodies := make([][]byte, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, b := postAdvise(t, ts.URL, `{"workloads":["mab"],"refs":2000}`)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("waiter %d: status %d body %s", i, resp.StatusCode, b)
			}
			bodies[i] = b
		}(i)
	}
	// Wait until all eight requests registered (1 leader + 7 dedups),
	// then release the single computation.
	deadline := time.Now().Add(5 * time.Second)
	for srv.mDedup.Value() < waiters-1 {
		if time.Now().After(deadline) {
			t.Fatalf("dedup waiters = %d, want %d", srv.mDedup.Value(), waiters-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	for i := 1; i < waiters; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("waiter %d body differs from waiter 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	if runs != 1 {
		t.Fatalf("pipeline ran %d times for %d identical requests, want 1", runs, waiters)
	}
	if srv.mDedup.Value() != waiters-1 {
		t.Fatalf("dedup counter = %d, want %d", srv.mDedup.Value(), waiters-1)
	}
}

func TestCacheHitIsByteIdentical(t *testing.T) {
	srv := New(Config{
		Workers: 1,
		Run: func(ctx context.Context, req experiments.AdviseRequest, useCache bool) (*experiments.AdviseResponse, error) {
			return fakeResponse(req), nil
		},
	})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, first := postAdvise(t, ts.URL, `{"workloads":["mab"],"refs":2000}`)
	resp, second := postAdvise(t, ts.URL, `{"workloads":["mab"],"refs":2000}`)
	if resp.Header.Get("X-Advisor-Source") != "cache" {
		t.Fatalf("second request source = %q, want cache", resp.Header.Get("X-Advisor-Source"))
	}
	if !bytes.Equal(first, second) {
		t.Fatal("cache hit body differs from the run that populated it")
	}
	if srv.mCacheHits.Value() != 1 {
		t.Fatalf("cache_hits = %d, want 1", srv.mCacheHits.Value())
	}
}

func TestOverloadShedsWith429(t *testing.T) {
	gate := make(chan struct{})
	srv := New(Config{
		Workers:    1,
		QueueDepth: 1,
		Run: func(ctx context.Context, req experiments.AdviseRequest, useCache bool) (*experiments.AdviseResponse, error) {
			<-gate
			return fakeResponse(req), nil
		},
	})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Distinct signatures so nothing dedups: 1 running + 1 queued
	// admitted, the third must shed.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			postAdvise(t, ts.URL, fmt.Sprintf(`{"workloads":["mab"],"refs":%d}`, 2000+i))
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for int(srv.mInflight.Value()) < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("inflight = %v, want 2", srv.mInflight.Value())
		}
		time.Sleep(time.Millisecond)
	}
	resp, body := postAdvise(t, ts.URL, `{"workloads":["mab"],"refs":9000}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d body %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	if srv.mShed.Value() != 1 {
		t.Fatalf("shed = %d, want 1", srv.mShed.Value())
	}
	close(gate)
	wg.Wait()
}

func TestRequestDeadlineAnswers504(t *testing.T) {
	srv := New(Config{
		Workers:        1,
		RequestTimeout: 30 * time.Millisecond,
		Run: func(ctx context.Context, req experiments.AdviseRequest, useCache bool) (*experiments.AdviseResponse, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postAdvise(t, ts.URL, `{"workloads":["mab"],"refs":2000}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d body %s, want 504", resp.StatusCode, body)
	}
	if srv.mTimeouts.Value() != 1 {
		t.Fatalf("timeouts = %d, want 1", srv.mTimeouts.Value())
	}
}

func TestWorkerPanicIsIsolated(t *testing.T) {
	calls := 0
	var mu sync.Mutex
	srv := New(Config{
		Workers: 1,
		Run: func(ctx context.Context, req experiments.AdviseRequest, useCache bool) (*experiments.AdviseResponse, error) {
			mu.Lock()
			calls++
			first := calls == 1
			mu.Unlock()
			if first {
				panic("chaos: injected worker panic")
			}
			return fakeResponse(req), nil
		},
	})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postAdvise(t, ts.URL, `{"workloads":["mab"],"refs":2000}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking job: status = %d body %s, want 500", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("panic")) {
		t.Fatalf("500 body should mention the panic, got %s", body)
	}
	// The daemon survives: a different request succeeds on the same worker.
	resp, body = postAdvise(t, ts.URL, `{"workloads":["mab"],"refs":3000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-panic status = %d body %s, want 200", resp.StatusCode, body)
	}
	if srv.mPanics.Value() != 1 {
		t.Fatalf("panics = %d, want 1", srv.mPanics.Value())
	}
}

func TestBadRequestsAnswer400(t *testing.T) {
	srv := New(Config{Workers: 1, MaxRefs: 10_000, Run: func(ctx context.Context, req experiments.AdviseRequest, useCache bool) (*experiments.AdviseResponse, error) {
		return fakeResponse(req), nil
	}})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, body := range []string{
		`{"os":"plan9"}`,
		`{"workloads":["no_such_workload"]}`,
		`{"refs":50}`,
		`{"refs":1000000}`, // over MaxRefs
		`{"max_cache_assoc":3}`,
		`{"top":-1}`,
		`{"unknown_field":1}`,
		`{not json`,
	} {
		resp, b := postAdvise(t, ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status = %d (%s), want 400", body, resp.StatusCode, b)
		}
	}
	if got := srv.mOK.Value(); got != 0 {
		t.Fatalf("ok = %d, want 0", got)
	}
}

func TestGracefulDrainFinishesInFlight(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "drain.json")
	release := make(chan struct{})
	srv := New(Config{
		Workers:        2,
		DrainTimeout:   5 * time.Second,
		CheckpointPath: ckpt,
		Run: func(ctx context.Context, req experiments.AdviseRequest, useCache bool) (*experiments.AdviseResponse, error) {
			<-release
			return fakeResponse(req), nil
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	type result struct {
		status int
		body   []byte
	}
	got := make(chan result, 1)
	go func() {
		resp, b := postAdvise(t, ts.URL, `{"workloads":["mab"],"refs":2000}`)
		got <- result{resp.StatusCode, b}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for int(srv.mInflight.Value()) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain() }()
	// New work is refused while draining...
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}
	resp, _ := postAdvise(t, ts.URL, `{"workloads":["mab"],"refs":3000}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("during drain: status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain 503 must carry Retry-After")
	}
	// ...but the in-flight request completes with its real answer.
	close(release)
	r := <-got
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request during drain: status = %d body %s, want 200", r.status, r.body)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n := len(srv.Pending()); n != 0 {
		t.Fatalf("pending after clean drain = %d, want 0", n)
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Fatalf("clean drain should leave no checkpoint, stat err = %v", err)
	}
	// Readiness reflects the drained state.
	readyResp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	readyResp.Body.Close()
	if readyResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain = %d, want 503", readyResp.StatusCode)
	}
}

func TestDrainDeadlineAbortsAndCheckpoints(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "drain.json")
	srv := New(Config{
		Workers:        1,
		DrainTimeout:   50 * time.Millisecond,
		CheckpointPath: ckpt,
		Run: func(ctx context.Context, req experiments.AdviseRequest, useCache bool) (*experiments.AdviseResponse, error) {
			<-ctx.Done() // only the drain abort ends this job
			return nil, ctx.Err()
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	got := make(chan int, 1)
	go func() {
		resp, _ := postAdvise(t, ts.URL, `{"workloads":["mab"],"refs":2000}`)
		got <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for int(srv.mInflight.Value()) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if status := <-got; status != http.StatusServiceUnavailable {
		t.Fatalf("aborted request status = %d, want 503", status)
	}

	// The aborted request is checkpointed for replay after restart.
	b, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatalf("reading drain checkpoint: %v", err)
	}
	var cp DrainCheckpoint
	if err := json.Unmarshal(b, &cp); err != nil {
		t.Fatalf("parsing drain checkpoint: %v", err)
	}
	if len(cp.Pending) != 1 {
		t.Fatalf("checkpointed %d requests, want 1: %s", len(cp.Pending), b)
	}
	want := experiments.AdviseRequest{Workloads: []string{"mab"}, Refs: 2000}
	if err := want.Normalize(0); err != nil {
		t.Fatal(err)
	}
	if cp.Pending[0].Signature != want.Signature() {
		t.Fatalf("checkpoint signature %s, want %s", cp.Pending[0].Signature, want.Signature())
	}
	if cp.Pending[0].Request.Refs != 2000 {
		t.Fatalf("checkpoint request refs = %d, want 2000", cp.Pending[0].Request.Refs)
	}
}

func TestBreakerRoutesAroundTraceCache(t *testing.T) {
	dir := t.TempDir()
	tc := openTestCache(t, dir)
	var sawUseCache []bool
	var mu sync.Mutex
	srv := New(Config{
		Workers:          1,
		TraceCache:       tc,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
		Run: func(ctx context.Context, req experiments.AdviseRequest, useCache bool) (*experiments.AdviseResponse, error) {
			mu.Lock()
			sawUseCache = append(sawUseCache, useCache)
			mu.Unlock()
			return fakeResponse(req), nil
		},
	})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postAdvise(t, ts.URL, `{"workloads":["mab"],"refs":2000}`)
	// Trip the breaker the way production does: corrupt-entry events
	// from the trace cache fire the OnCorrupt hook New installed.
	srv.Breaker().Failure()
	srv.Breaker().Failure()
	if srv.Breaker().State() != BreakerOpen {
		t.Fatalf("breaker = %v, want open", srv.Breaker().State())
	}
	postAdvise(t, ts.URL, `{"workloads":["mab"],"refs":3000}`)

	mu.Lock()
	defer mu.Unlock()
	if len(sawUseCache) != 2 || sawUseCache[0] != true || sawUseCache[1] != false {
		t.Fatalf("useCache sequence = %v, want [true false]", sawUseCache)
	}
	if srv.mLiveRegen.Value() != 1 {
		t.Fatalf("live_regen = %d, want 1", srv.mLiveRegen.Value())
	}
}

func TestHealthEndpoints(t *testing.T) {
	srv := New(Config{Workers: 1, Run: func(ctx context.Context, req experiments.AdviseRequest, useCache bool) (*experiments.AdviseResponse, error) {
		return fakeResponse(req), nil
	}})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(b, []byte(`"ready":true`)) {
		t.Fatalf("readyz = %d %s, want 200 ready", resp.StatusCode, b)
	}
}
