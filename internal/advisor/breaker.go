package advisor

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed passes traffic through the protected dependency.
	BreakerClosed BreakerState = iota
	// BreakerOpen routes around the dependency until the cooldown ends.
	BreakerOpen
	// BreakerHalfOpen lets exactly one probe through; its outcome
	// decides between Closed and another Open period.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	}
	return "half-open"
}

// Breaker is a consecutive-failure circuit breaker guarding an
// optional dependency -- here the trace cache's disk I/O. While open,
// Allow reports false and the advisor runs live regeneration instead
// of touching the failing store; after Cooldown one probe request is
// allowed through, and its outcome either closes the breaker or opens
// it for another cooldown. All methods are safe for concurrent use.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
}

// NewBreaker returns a closed breaker that opens after threshold
// consecutive failures and probes again after cooldown. A threshold
// below 1 is raised to 1.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// setClock installs a test clock.
func (b *Breaker) setClock(now func() time.Time) { b.now = now }

// Allow reports whether the caller may use the protected dependency.
// In the open state it returns false until the cooldown has elapsed,
// then admits a single probe (transitioning to half-open); concurrent
// callers during a probe are refused so one request at a time decides
// the breaker's fate.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a successful use of the dependency: it resets the
// failure streak and, after a half-open probe, closes the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.probing = false
	b.state = BreakerClosed
}

// Failure records a failed use. While closed it counts toward the
// consecutive-failure threshold; a failed half-open probe reopens the
// breaker for a fresh cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.trip()
		}
	case BreakerHalfOpen:
		b.trip()
	case BreakerOpen:
		// Late failure from a request that started before the trip.
	}
}

// trip opens the breaker; callers hold b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.fails = 0
	b.probing = false
}

// State returns the breaker's current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
