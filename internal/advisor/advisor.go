// Package advisor implements the cache-advisor daemon: an HTTP
// service that answers "given this area budget, OS personality and
// workload mix, which on-chip memory configurations are optimal?"
// with ranked Table 6/7-style allocations, computed by the
// experiments pipeline.
//
// The package is the repository's request-lifecycle hardening layer
// (DESIGN.md section 14). Every request runs under a deadline; a
// bounded worker pool with a bounded admission queue sheds overload
// with 429 + Retry-After instead of queueing without bound;
// identical concurrent requests collapse onto one computation
// (singleflight keyed by the FNV-64a request signature) and a bounded
// LRU serves repeats byte-identically; a circuit breaker around the
// trace-cache store trips to live regeneration when the disk
// misbehaves; panicking workers answer 500 without taking the daemon
// down; and graceful drain stops admission, finishes in-flight work
// up to a deadline, and checkpoints whatever had to be aborted.
package advisor

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"onchip/internal/experiments"
	"onchip/internal/faultinject"
	"onchip/internal/obs"
	"onchip/internal/telemetry"
	"onchip/internal/tracecache"
)

// RunFunc computes the answer for one normalized request. useCache
// reports whether the trace-cache store may be consulted (false while
// the circuit breaker is open). The default implementation runs
// experiments.Advise; tests substitute deterministic fakes.
type RunFunc func(ctx context.Context, req experiments.AdviseRequest, useCache bool) (*experiments.AdviseResponse, error)

// Config assembles a Server. The zero value of every field selects a
// production default.
type Config struct {
	// Run overrides the experiments-backed runner (tests).
	Run RunFunc
	// Workers is the sweep worker count; 0 selects 2.
	Workers int
	// QueueDepth bounds the admission queue beyond the workers; a full
	// queue sheds with 429. 0 selects 2x workers.
	QueueDepth int
	// RequestTimeout bounds each computation; 0 selects 2 minutes.
	RequestTimeout time.Duration
	// DrainTimeout bounds the graceful-drain wait for in-flight work;
	// 0 selects 30 seconds.
	DrainTimeout time.Duration
	// CacheEntries bounds the LRU of rendered responses; 0 selects 64.
	CacheEntries int
	// MaxRefs caps the per-workload reference count one request may
	// demand; 0 selects 50,000,000.
	MaxRefs int
	// BreakerThreshold is the consecutive trace-cache failures that
	// open the breaker; 0 selects 3.
	BreakerThreshold int
	// BreakerCooldown is the open period before a probe; 0 selects 30s.
	BreakerCooldown time.Duration
	// TraceCache, when non-nil, short-circuits reference generation on
	// warm runs. The server installs itself as the cache's corrupt-event
	// hook to drive the breaker.
	TraceCache *tracecache.Cache
	// FaultInjector and FaultRetries thread through to the experiments
	// pipeline (chaos testing).
	FaultInjector *faultinject.Injector
	FaultRetries  int
	// CheckpointPath, when non-empty, receives a JSON checkpoint of the
	// requests that were admitted but aborted by the drain deadline.
	CheckpointPath string
	// Metrics receives the advisor's counters and gauges; nil creates a
	// private registry (see Server.Metrics).
	Metrics *telemetry.Registry
	// Logw receives operational log lines; nil discards them.
	Logw io.Writer
	// BaseContext parents every job context; nil selects Background.
	// Cancelling it aborts all in-flight work.
	BaseContext context.Context
}

// Server is the advisor daemon's request-processing core. Mount
// Handler on an obs-hardened HTTP server (obs.NewHTTPServer) and call
// Drain on shutdown.
type Server struct {
	cfg        Config
	reg        *telemetry.Registry
	run        RunFunc
	pool       *pool
	flights    *flightGroup
	cache      *lruCache
	breaker    *Breaker
	baseCtx    context.Context
	baseCancel context.CancelFunc
	draining   atomic.Bool
	inflight   sync.WaitGroup
	drainOnce  sync.Once
	drainErr   error

	pendMu  sync.Mutex
	pending map[string]experiments.AdviseRequest

	mRequests, mOK, mShed, mCacheHits, mDedup   *telemetry.Counter
	mPanics, mTimeouts, mErrors, mDrainRejected *telemetry.Counter
	mLiveRegen                                  *telemetry.Counter
	mLatency                                    *telemetry.Histogram
	mInflight                                   *telemetry.Gauge
}

// Retry-After values (seconds) for the two backpressure answers: shed
// requests can retry as soon as a queue slot frees; a draining server
// will not come back, so steer clients away longer.
const (
	shedRetryAfter  = 1
	drainRetryAfter = 30
)

// New returns a Server ready to serve. It does not listen; the caller
// mounts Handler.
func New(cfg Config) *Server {
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 2 * time.Minute
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 64
	}
	if cfg.MaxRefs == 0 {
		cfg.MaxRefs = 50_000_000
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = 30 * time.Second
	}
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.NewRegistry()
	}
	if cfg.Logw == nil {
		cfg.Logw = io.Discard
	}
	if cfg.BaseContext == nil {
		cfg.BaseContext = context.Background()
	}
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Metrics,
		pool:    newPool(cfg.Workers, cfg.QueueDepth),
		flights: newFlightGroup(),
		cache:   newLRU(cfg.CacheEntries),
		breaker: NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		pending: make(map[string]experiments.AdviseRequest),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(cfg.BaseContext)
	s.run = cfg.Run
	if s.run == nil {
		s.run = s.defaultRun
	}
	if cfg.TraceCache != nil {
		cfg.TraceCache.OnCorrupt(func(addr string, err error) {
			s.breaker.Failure()
			s.logf("advisor: trace-cache corruption at %s: %v (breaker %s)", addr, err, s.breaker.State())
		})
	}
	r := s.reg
	s.mRequests = r.Counter("advisor.requests", "advise requests received")
	s.mOK = r.Counter("advisor.ok", "200 responses delivered")
	s.mShed = r.Counter("advisor.shed", "requests shed with 429 (admission queue full)")
	s.mCacheHits = r.Counter("advisor.cache_hits", "responses served from the LRU result cache")
	s.mDedup = r.Counter("advisor.dedup", "requests collapsed onto an in-flight computation")
	s.mPanics = r.Counter("advisor.panics", "worker panics isolated and answered with 500")
	s.mTimeouts = r.Counter("advisor.timeouts", "jobs that hit the per-request deadline (504)")
	s.mErrors = r.Counter("advisor.errors", "jobs that failed (503)")
	s.mDrainRejected = r.Counter("advisor.drain_rejected", "requests refused because the server is draining")
	s.mLiveRegen = r.Counter("advisor.live_regen", "jobs routed around the trace cache by the open breaker")
	s.mLatency = r.Histogram("advisor.latency_us", "job latency, microseconds")
	s.mInflight = r.Gauge("advisor.inflight", "admitted jobs not yet finished")
	r.GaugeFunc("advisor.queue_depth", "admitted-but-unstarted jobs", func() float64 {
		return float64(s.pool.QueueLen())
	})
	r.GaugeFunc("advisor.breaker_state", "trace-cache breaker: 0 closed, 1 open, 2 half-open", func() float64 {
		return float64(s.breaker.State())
	})
	r.GaugeFunc("advisor.flights", "in-flight deduplicated computations", func() float64 {
		return float64(s.flights.Len())
	})
	return s
}

// Metrics returns the registry the server's counters live in.
func (s *Server) Metrics() *telemetry.Registry { return s.reg }

// Breaker returns the trace-cache circuit breaker (tests, readyz).
func (s *Server) Breaker() *Breaker { return s.breaker }

func (s *Server) logf(format string, args ...any) {
	fmt.Fprintf(s.cfg.Logw, format+"\n", args...)
}

// defaultRun is the experiments-backed runner.
func (s *Server) defaultRun(ctx context.Context, req experiments.AdviseRequest, useCache bool) (*experiments.AdviseResponse, error) {
	opt := experiments.Options{
		Context:       ctx,
		FaultInjector: s.cfg.FaultInjector,
		FaultRetries:  s.cfg.FaultRetries,
	}
	if useCache {
		opt.TraceCache = s.cfg.TraceCache
	}
	return experiments.Advise(req, opt)
}

// Handler returns the advisor's routes: POST /advise, GET /healthz,
// GET /readyz. Mount on obs.NewHTTPServer for the hardened timeouts
// and body limits.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /advise", s.handleAdvise)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.Header().Set("Retry-After", fmt.Sprint(drainRetryAfter))
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "{\"ready\":false,\"reason\":\"draining\"}\n")
		return
	}
	fmt.Fprintf(w, "{\"ready\":true,\"queue\":%d,\"breaker\":%q}\n",
		s.pool.QueueLen(), s.breaker.State())
}

func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	s.mRequests.Inc()
	// The obs-hardened server already caps bodies; cap again here so a
	// bare Handler mount (tests) is safe too.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, obs.MaxBodyBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err), 0)
		return
	}
	var req experiments.AdviseRequest
	if len(bytes.TrimSpace(body)) > 0 {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Sprintf("parsing request: %v", err), 0)
			return
		}
	}
	if err := req.Normalize(s.cfg.MaxRefs); err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	key := req.Signature()

	if s.draining.Load() {
		s.mDrainRejected.Inc()
		s.writeError(w, http.StatusServiceUnavailable, "server is draining", drainRetryAfter)
		return
	}
	if cached, ok := s.cache.Get(key); ok {
		s.mCacheHits.Inc()
		s.writeResult(w, flightResult{status: http.StatusOK, body: cached}, key, "cache")
		return
	}

	admit := func(c *flightCall) bool {
		s.inflight.Add(1)
		s.addPending(key, req)
		if !s.pool.TrySubmit(func() { s.runJob(key, req, c) }) {
			s.removePending(key)
			s.inflight.Done()
			return false
		}
		s.mInflight.Add(1)
		return true
	}
	c, joined, admitted := s.flights.Join(key, admit)
	if !admitted {
		s.mShed.Inc()
		s.writeError(w, http.StatusTooManyRequests, "admission queue full", shedRetryAfter)
		return
	}
	source := "run"
	if joined {
		s.mDedup.Inc()
		source = "dedup"
	}
	select {
	case <-c.done:
		s.writeResult(w, c.res, key, source)
	case <-r.Context().Done():
		// Client gone; the job keeps running for other waiters and the
		// result cache.
	}
}

// runJob executes one admitted request on a pool worker and publishes
// the result to every flight waiter. It recovers its own panics so a
// crashing computation answers 500 instead of killing the daemon.
func (s *Server) runJob(key string, req experiments.AdviseRequest, c *flightCall) {
	start := time.Now()
	res := flightResult{status: http.StatusInternalServerError, body: errBody("internal error")}
	aborted := false
	defer func() {
		if r := recover(); r != nil {
			s.mPanics.Inc()
			s.logf("advisor: worker panic on %s: %v", key, r)
			res = flightResult{status: http.StatusInternalServerError, body: errBody("internal error: worker panic")}
			aborted = false
		}
		if !aborted {
			s.removePending(key)
		}
		s.flights.finish(key, c, res)
		s.mLatency.Observe(uint64(time.Since(start).Microseconds()))
		s.mInflight.Add(-1)
		s.inflight.Done()
	}()

	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.RequestTimeout)
	defer cancel()
	useCache := s.cfg.TraceCache != nil && s.breaker.Allow()
	if s.cfg.TraceCache != nil && !useCache {
		s.mLiveRegen.Inc()
	}
	resp, err := s.run(ctx, req, useCache)
	switch {
	case err == nil:
		b, merr := json.Marshal(resp)
		if merr != nil {
			s.mErrors.Inc()
			res = flightResult{status: http.StatusInternalServerError, body: errBody(merr.Error())}
			return
		}
		b = append(b, '\n')
		s.cache.Add(key, b)
		res = flightResult{status: http.StatusOK, body: b}
		if useCache {
			s.breaker.Success()
		}
	case s.baseCtx.Err() != nil:
		// Drain (or final shutdown) aborted the job: answer retryable
		// and leave the request in the pending set for the checkpoint.
		aborted = true
		res = flightResult{status: http.StatusServiceUnavailable, body: errBody("server is shutting down"), retryAfter: drainRetryAfter}
	case errors.Is(err, context.DeadlineExceeded):
		s.mTimeouts.Inc()
		res = flightResult{status: http.StatusGatewayTimeout, body: errBody(fmt.Sprintf("deadline exceeded after %v", s.cfg.RequestTimeout))}
	default:
		s.mErrors.Inc()
		s.logf("advisor: job %s failed: %v", key, err)
		res = flightResult{status: http.StatusServiceUnavailable, body: errBody(err.Error()), retryAfter: 2}
	}
}

func (s *Server) writeResult(w http.ResponseWriter, res flightResult, key, source string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Advisor-Signature", key)
	w.Header().Set("X-Advisor-Source", source)
	if res.retryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprint(res.retryAfter))
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
	if res.status == http.StatusOK {
		s.mOK.Inc()
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string, retryAfter int) {
	w.Header().Set("Content-Type", "application/json")
	if retryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprint(retryAfter))
	}
	w.WriteHeader(status)
	w.Write(errBody(msg))
}

func errBody(msg string) []byte {
	b, _ := json.Marshal(map[string]string{"error": msg})
	return append(b, '\n')
}

func (s *Server) addPending(key string, req experiments.AdviseRequest) {
	s.pendMu.Lock()
	s.pending[key] = req
	s.pendMu.Unlock()
}

func (s *Server) removePending(key string) {
	s.pendMu.Lock()
	delete(s.pending, key)
	s.pendMu.Unlock()
}

// Pending snapshots the admitted-but-unfinished requests (after a
// drain: the ones the deadline aborted), sorted by signature.
func (s *Server) Pending() []PendingRequest {
	s.pendMu.Lock()
	defer s.pendMu.Unlock()
	var ps []PendingRequest
	for k, r := range s.pending {
		ps = append(ps, PendingRequest{Signature: k, Request: r})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Signature < ps[j].Signature })
	return ps
}

// PendingRequest is one checkpointed request a drain could not finish.
type PendingRequest struct {
	Signature string                    `json:"signature"`
	Request   experiments.AdviseRequest `json:"request"`
}

// DrainCheckpoint is the JSON written to Config.CheckpointPath when
// the drain deadline aborts work: enough to re-issue the lost
// requests after restart.
type DrainCheckpoint struct {
	Pending []PendingRequest `json:"pending"`
}

// Draining reports whether admission has stopped.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain performs the graceful-shutdown contract: stop admitting new
// requests, wait for in-flight work up to DrainTimeout, then abort
// the remainder (they answer 503) and checkpoint their requests to
// CheckpointPath. Idempotent; the first call's error is returned to
// all callers.
func (s *Server) Drain() error {
	s.drainOnce.Do(func() { s.drainErr = s.drain() })
	return s.drainErr
}

func (s *Server) drain() error {
	s.draining.Store(true)
	s.logf("advisor: draining (in-flight %d, queue %d, deadline %v)",
		int(s.mInflight.Value()), s.pool.QueueLen(), s.cfg.DrainTimeout)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	timer := time.NewTimer(s.cfg.DrainTimeout)
	defer timer.Stop()
	select {
	case <-done:
		s.logf("advisor: drain complete; all in-flight work finished")
	case <-timer.C:
		s.logf("advisor: drain deadline exceeded; aborting in-flight work")
		s.baseCancel()
		<-done
	}
	s.pool.Close()
	s.baseCancel()
	return s.writeDrainCheckpoint()
}

func (s *Server) writeDrainCheckpoint() error {
	pending := s.Pending()
	if s.cfg.CheckpointPath == "" {
		if len(pending) > 0 {
			s.logf("advisor: %d aborted request(s) lost (no checkpoint path)", len(pending))
		}
		return nil
	}
	if len(pending) == 0 {
		// Nothing aborted: remove any stale checkpoint so a clean drain
		// leaves no work to replay.
		if err := os.Remove(s.cfg.CheckpointPath); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("advisor: clearing checkpoint: %w", err)
		}
		return nil
	}
	b, err := json.MarshalIndent(DrainCheckpoint{Pending: pending}, "", "  ")
	if err != nil {
		return fmt.Errorf("advisor: marshal checkpoint: %w", err)
	}
	if err := os.WriteFile(s.cfg.CheckpointPath, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("advisor: write checkpoint: %w", err)
	}
	s.logf("advisor: checkpointed %d aborted request(s) to %s", len(pending), s.cfg.CheckpointPath)
	return nil
}
