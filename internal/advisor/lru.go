package advisor

import (
	"container/list"
	"sync"
)

// lruCache is a bounded, mutex-guarded LRU of rendered response
// bodies keyed by request signature. Bodies are stored as the exact
// bytes written to clients, so a hit is byte-identical to the run
// that populated it.
type lruCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key  string
	body []byte
}

func newLRU(max int) *lruCache {
	if max < 1 {
		max = 1
	}
	return &lruCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached body and refreshes its recency.
func (c *lruCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).body, true
}

// Add inserts or refreshes a body, evicting the least recently used
// entry when over capacity.
func (c *lruCache) Add(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).body = body
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, body: body})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*lruEntry).key)
	}
}

// Len returns the number of cached bodies.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
