package advisor

// Subprocess tests for the signal contract the advisor shares with
// every binary in the repo (internal/lifecycle): the first
// SIGINT/SIGTERM begins a graceful drain -- admission stops,
// in-flight requests finish -- and the process exits 130; a second
// signal aborts immediately with 128+signal. os.Exit and real signal
// delivery require a child process, so TestMain re-execs the test
// binary as a miniature advisor daemon when ADVISOR_SIGNAL_CHILD is
// set.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"onchip/internal/experiments"
	"onchip/internal/lifecycle"
	"onchip/internal/obs"
)

func TestMain(m *testing.M) {
	if os.Getenv("ADVISOR_SIGNAL_CHILD") == "1" {
		os.Exit(signalChildMain())
	}
	os.Exit(m.Run())
}

// signalChildMain is the child: a one-worker advisor whose runner
// sleeps ADVISOR_CHILD_SLEEP per request, wired into the production
// signal contract exactly like cmd/advisor.
func signalChildMain() int {
	sleep, err := time.ParseDuration(os.Getenv("ADVISOR_CHILD_SLEEP"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "child: bad ADVISOR_CHILD_SLEEP:", err)
		return 3
	}
	ctx, stop := lifecycle.Notify(context.Background(), "advisor-child", os.Stderr)
	defer stop()
	srv := New(Config{
		Workers:      1,
		DrainTimeout: 20 * time.Second,
		Logw:         os.Stderr,
		Run: func(ctx context.Context, req experiments.AdviseRequest, useCache bool) (*experiments.AdviseResponse, error) {
			select {
			case <-time.After(sleep):
				return fakeResponse(req), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		return 3
	}
	httpSrv := obs.NewHTTPServer(srv.Handler())
	go httpSrv.Serve(ln)
	fmt.Printf("ADDR=%s\n", ln.Addr())

	<-ctx.Done() // first signal
	if err := srv.Drain(); err != nil {
		fmt.Fprintln(os.Stderr, "child: drain:", err)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	httpSrv.Shutdown(shutCtx)
	return lifecycle.InterruptExit
}

// startSignalChild launches the re-exec'd child and returns its
// command handle and base URL.
func startSignalChild(t *testing.T, sleep time.Duration) (*exec.Cmd, string) {
	t.Helper()
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal test")
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"ADVISOR_SIGNAL_CHILD=1",
		"ADVISOR_CHILD_SLEEP="+sleep.String(),
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "ADDR="); ok {
			go io.Copy(io.Discard, stdout) // keep the pipe drained
			return cmd, "http://" + addr
		}
	}
	t.Fatalf("child exited before printing its address: %v", sc.Err())
	return nil, ""
}

// exitCode waits for the child and returns its exit status.
func exitCode(t *testing.T, cmd *exec.Cmd) int {
	t.Helper()
	err := cmd.Wait()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if !asExitError(err, &ee) {
		t.Fatalf("child wait: %v", err)
	}
	return ee.ExitCode()
}

func asExitError(err error, target **exec.ExitError) bool {
	ee, ok := err.(*exec.ExitError)
	if ok {
		*target = ee
	}
	return ok
}

// TestFirstSignalDrainsInFlightRequest: SIGTERM while a request is in
// flight must let that request finish with its real 200 answer and
// exit with the graceful-shutdown status 130.
func TestFirstSignalDrainsInFlightRequest(t *testing.T) {
	cmd, url := startSignalChild(t, 1500*time.Millisecond)

	type result struct {
		status int
		body   []byte
		err    error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Post(url+"/advise", "application/json",
			strings.NewReader(`{"workloads":["mab"],"refs":2000}`))
		if err != nil {
			got <- result{err: err}
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		got <- result{status: resp.StatusCode, body: b}
	}()
	time.Sleep(400 * time.Millisecond) // request admitted, runner sleeping
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	r := <-got
	if r.err != nil {
		t.Fatalf("in-flight request dropped during drain: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d body %s, want 200", r.status, r.body)
	}
	if code := exitCode(t, cmd); code != lifecycle.InterruptExit {
		t.Fatalf("graceful drain exit code = %d, want %d", code, lifecycle.InterruptExit)
	}
}

// TestSecondSignalAbortsImmediately: with a request that would hold
// the drain for 30s, a second signal must end the process right away
// with 128+signal (SIGINT -> 130), not wait out the drain.
func TestSecondSignalAbortsImmediately(t *testing.T) {
	cmd, url := startSignalChild(t, 30*time.Second)

	go func() {
		resp, err := http.Post(url+"/advise", "application/json",
			strings.NewReader(`{"workloads":["mab"],"refs":2000}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(400 * time.Millisecond)
	start := time.Now()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // drain is now waiting on the 30s job
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	code := exitCode(t, cmd)
	elapsed := time.Since(start)
	if code != 130 {
		t.Fatalf("second-signal abort exit code = %d, want 130", code)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("abort took %v; the second signal must not wait out the drain", elapsed)
	}
}
