// Package tapeworm implements kernel-based TLB simulation after Uhlig et
// al.'s Tapeworm (CSE-TR-185-93, cited in the paper's methodology):
// instead of processing a full address trace, the simulator is driven by
// the *miss events* of the machine's managed TLB, and simulates any
// number of alternative TLB configurations simultaneously.
//
// Correctness rests on the subset invariant: the hardware TLB's contents
// are kept a subset of every simulated TLB's contents, so any reference
// that would miss in a simulated TLB must also miss in the hardware TLB
// and therefore generates a visible event. The invariant is maintained
// actively: when a simulated TLB evicts an entry, that entry is
// invalidated from the hardware TLB. Replacement in the simulated TLBs
// is FIFO, because only miss events (not hit recency) are visible --
// matching the original tool and close to the R2000's hardware random
// replacement.
//
// This is what makes the paper's Figure 7 and Figure 8 sweeps cheap: one
// workload run prices every TLB size and associativity at once.
package tapeworm

import (
	"fmt"

	"onchip/internal/tlb"
	"onchip/internal/vm"
)

// Result holds the simulated service statistics for one configuration.
type Result struct {
	Config  tlb.Config
	Service tlb.Service
}

// Seconds returns total simulated TLB service time at clockHz.
func (r Result) Seconds(clockHz float64) float64 { return r.Service.Seconds(clockHz) }

func (r Result) String() string {
	return fmt.Sprintf("%v: misses=%d cycles=%d", r.Config.TLBConfig, r.Service.TotalMisses(), r.Service.TotalCycles())
}

// sim is one simulated TLB configuration.
type sim struct {
	tlb     *tlb.TLB
	costs   tlb.CostModel
	service tlb.Service
}

// Tapeworm drives a set of simulated TLB configurations from the miss
// events of a hardware (machine) TLB.
type Tapeworm struct {
	hw   *tlb.Managed
	sims []*sim
}

// Attach hooks a Tapeworm onto the machine's managed TLB and registers
// the configurations to simulate. Each simulated TLB uses FIFO
// replacement regardless of the configured policy (see package comment).
func Attach(hw *tlb.Managed, configs ...tlb.Config) *Tapeworm {
	tw := &Tapeworm{hw: hw}
	for _, cfg := range configs {
		cfg.Policy = tlb.FIFO
		tw.sims = append(tw.sims, &sim{tlb: tlb.New(cfg), costs: hw.Costs()})
	}
	hw.OnMiss(tw.onMiss)
	return tw
}

// onMiss processes one hardware miss event: configurations that also
// miss record the event's service cost and insert the translation,
// invalidating any victim from the hardware TLB to preserve the subset
// invariant.
func (tw *Tapeworm) onMiss(ev tlb.MissEvent) {
	for _, s := range tw.sims {
		if s.tlb.Contains(ev.Key) {
			continue
		}
		s.record(ev)
		if victim, evicted := s.tlb.Insert(ev.Key); evicted {
			tw.hw.TLB().Invalidate(victim)
		}
	}
}

func (s *sim) record(ev tlb.MissEvent) {
	s.service.Count[ev.Class]++
	switch ev.Class {
	case tlb.UserMiss:
		s.service.Cycles[ev.Class] += s.costs.UserMissCycles
	case tlb.KernelMiss:
		s.service.Cycles[ev.Class] += s.costs.KernelMissCycles
	}
	if ev.FirstTouch {
		s.service.Count[tlb.OtherMiss]++
		s.service.Cycles[tlb.OtherMiss] += s.costs.OtherCycles
	}
}

// ResetServices zeroes every simulated configuration's service counters
// while keeping TLB contents: used to discard warm-up transients.
func (tw *Tapeworm) ResetServices() {
	for _, s := range tw.sims {
		s.service = tlb.Service{}
	}
}

// Results returns the per-configuration service statistics, in the order
// the configurations were registered.
func (tw *Tapeworm) Results() []Result {
	rs := make([]Result, len(tw.sims))
	for i, s := range tw.sims {
		rs[i] = Result{Config: s.tlb.Config(), Service: s.service}
	}
	return rs
}

// Invariant verifies the hardware-subset property; it is exercised by
// tests and available for debugging assertions.
func (tw *Tapeworm) Invariant() error {
	for _, s := range tw.sims {
		for _, key := range tw.hwKeys() {
			if !s.tlb.Contains(key) {
				return fmt.Errorf("tapeworm: hardware entry %+v missing from simulated %v", key, s.tlb.Config().TLBConfig)
			}
		}
	}
	return nil
}

// hwKeys snapshots the hardware TLB's current keys.
func (tw *Tapeworm) hwKeys() []vm.TransKey {
	return tw.hw.TLB().Keys()
}
