package tapeworm

import (
	"math/rand"
	"testing"

	"onchip/internal/area"
	"onchip/internal/tlb"
	"onchip/internal/vm"
)

func faCfg(n int) tlb.Config {
	return tlb.Config{TLBConfig: area.TLBConfig{Entries: n, Assoc: area.FullyAssociative}}
}

func saCfg(n, a int) tlb.Config {
	return tlb.Config{TLBConfig: area.TLBConfig{Entries: n, Assoc: a}}
}

// drive pushes a page-reference sequence through a managed hardware TLB.
func drive(hw *tlb.Managed, vpns []uint32) {
	for _, v := range vpns {
		hw.Translate(vm.UserTextBase+v*vm.PageSize, 1)
	}
}

// randomVPNs generates a reference string with locality.
func randomVPNs(seed int64, n, pages int) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint32, n)
	for i := range out {
		if rng.Intn(100) < 70 {
			out[i] = uint32(rng.Intn(pages / 4))
		} else {
			out[i] = uint32(rng.Intn(pages))
		}
	}
	return out
}

// Cross-validation against direct (trace-driven) simulation, as the
// paper did to gain confidence in the kernel-based method. Counts are
// not bit-exact: the software-managed-TLB model inserts page-table
// translations during miss handling, and those nested probes occur on
// the hardware TLB's miss occasions rather than the simulated
// configuration's, so the two methods diverge slightly. The paper's own
// cross-validation bound was ~10%.
func TestMatchesDirectSimulation(t *testing.T) {
	refs := randomVPNs(11, 60_000, 400)
	for _, cfg := range []tlb.Config{faCfg(16), faCfg(128), saCfg(64, 4), saCfg(32, 2), saCfg(256, 8)} {
		// Tapeworm run: hardware is the 64-entry R2000 TLB.
		hw := tlb.NewManaged(tlb.R2000(), tlb.DefaultCosts())
		tw := Attach(hw, cfg)
		drive(hw, refs)
		got := tw.Results()[0].Service

		// Direct run: the config itself is the hardware TLB.
		direct := tlb.NewManaged(tlb.Config{TLBConfig: cfg.TLBConfig, Policy: tlb.FIFO}, tlb.DefaultCosts())
		drive(direct, refs)
		want := direct.Service()

		gm, wm := float64(got.TotalMisses()), float64(want.TotalMisses())
		if rel := abs(gm-wm) / wm; rel > 0.10 {
			t.Errorf("%v: tapeworm misses %.0f vs direct %.0f (%.1f%% apart)",
				cfg.TLBConfig, gm, wm, rel*100)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Multiple simultaneous configurations must each match their own direct
// simulation (the one-pass-many-configs property that makes Figure 7
// cheap).
func TestSimultaneousConfigs(t *testing.T) {
	refs := randomVPNs(13, 40_000, 300)
	configs := []tlb.Config{faCfg(32), faCfg(64), faCfg(128), faCfg(256), saCfg(128, 4)}

	hw := tlb.NewManaged(tlb.R2000(), tlb.DefaultCosts())
	tw := Attach(hw, configs...)
	drive(hw, refs)
	results := tw.Results()

	for i, cfg := range configs {
		direct := tlb.NewManaged(tlb.Config{TLBConfig: cfg.TLBConfig, Policy: tlb.FIFO}, tlb.DefaultCosts())
		drive(direct, refs)
		got, want := float64(results[i].Service.TotalMisses()), float64(direct.Service().TotalMisses())
		if rel := abs(got-want) / want; rel > 0.10 {
			t.Errorf("config %v: misses %.0f vs direct %.0f (%.1f%% apart)", cfg.TLBConfig, got, want, rel*100)
		}
	}
}

// Inclusion across simulated sizes: a bigger fully-associative TLB never
// misses more.
func TestMonotoneAcrossSizes(t *testing.T) {
	refs := randomVPNs(7, 50_000, 500)
	hw := tlb.NewManaged(tlb.R2000(), tlb.DefaultCosts())
	tw := Attach(hw, faCfg(32), faCfg(64), faCfg(128), faCfg(256), faCfg(512))
	drive(hw, refs)
	rs := tw.Results()
	for i := 1; i < len(rs); i++ {
		if rs[i].Service.TotalMisses() > rs[i-1].Service.TotalMisses() {
			t.Errorf("%v misses %d > smaller %v misses %d",
				rs[i].Config.TLBConfig, rs[i].Service.TotalMisses(),
				rs[i-1].Config.TLBConfig, rs[i-1].Service.TotalMisses())
		}
	}
}

// The subset invariant must hold at every point; spot-check after a run.
func TestSubsetInvariant(t *testing.T) {
	hw := tlb.NewManaged(tlb.R2000(), tlb.DefaultCosts())
	tw := Attach(hw, faCfg(16), saCfg(32, 2), faCfg(256))
	drive(hw, randomVPNs(5, 30_000, 300))
	if err := tw.Invariant(); err != nil {
		t.Fatal(err)
	}
}

func TestResetServices(t *testing.T) {
	hw := tlb.NewManaged(tlb.R2000(), tlb.DefaultCosts())
	tw := Attach(hw, faCfg(32))
	drive(hw, randomVPNs(3, 10_000, 200))
	if tw.Results()[0].Service.TotalMisses() == 0 {
		t.Fatal("expected misses before reset")
	}
	tw.ResetServices()
	if tw.Results()[0].Service.TotalMisses() != 0 {
		t.Error("ResetServices left counters")
	}
	// Contents kept: an immediately repeated reference string generates
	// far fewer misses than a cold TLB would.
	refs := randomVPNs(3, 10_000, 200)
	drive(hw, refs)
	warm := tw.Results()[0].Service.TotalMisses()
	hw2 := tlb.NewManaged(tlb.R2000(), tlb.DefaultCosts())
	tw2 := Attach(hw2, faCfg(32))
	drive(hw2, refs)
	cold := tw2.Results()[0].Service.TotalMisses()
	if warm > cold {
		t.Errorf("warm restart missed more (%d) than cold (%d)", warm, cold)
	}
}

func TestFirstTouchCounting(t *testing.T) {
	hw := tlb.NewManaged(tlb.R2000(), tlb.DefaultCosts())
	tw := Attach(hw, faCfg(8))
	// Touch 20 distinct pages twice; first touches = 20 pages + their
	// page-table page(s).
	var refs []uint32
	for round := 0; round < 2; round++ {
		for v := uint32(0); v < 20; v++ {
			refs = append(refs, v)
		}
	}
	drive(hw, refs)
	s := tw.Results()[0].Service
	if s.Count[tlb.OtherMiss] != 21 { // 20 user pages + 1 PTE page
		t.Errorf("first touches = %d, want 21", s.Count[tlb.OtherMiss])
	}
}

func TestResultString(t *testing.T) {
	hw := tlb.NewManaged(tlb.R2000(), tlb.DefaultCosts())
	tw := Attach(hw, faCfg(8))
	drive(hw, []uint32{1, 2, 3})
	if tw.Results()[0].String() == "" {
		t.Error("empty Result string")
	}
	if tw.Results()[0].Seconds(1e6) <= 0 {
		t.Error("Seconds should be positive after misses")
	}
}
