package cache

import (
	"math/rand"
	"testing"

	"onchip/internal/area"
)

func benchCache(b *testing.B, capBytes, lineWords, assoc int) {
	c := New(Config{CacheConfig: area.CacheConfig{CapacityBytes: capBytes, LineWords: lineWords, Assoc: assoc}})
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&(len(addrs)-1)], i&7 == 0)
	}
}

func BenchmarkAccessDirectMapped(b *testing.B) { benchCache(b, 8<<10, 4, 1) }
func Benchmark2Way(b *testing.B)               { benchCache(b, 8<<10, 4, 2) }
func Benchmark8Way(b *testing.B)               { benchCache(b, 8<<10, 4, 8) }
func BenchmarkFullyAssociative(b *testing.B)   { benchCache(b, 4<<10, 4, area.FullyAssociative) }
