package cache

import (
	"math/rand"
	"testing"

	"onchip/internal/area"
)

func wbCfg(capBytes, lineWords, assoc int) Config {
	return Config{
		CacheConfig: area.CacheConfig{CapacityBytes: capBytes, LineWords: lineWords, Assoc: assoc},
		WriteBack:   true,
	}
}

func TestWriteBackStoreAllocatesAndDirties(t *testing.T) {
	c := New(wbCfg(1024, 4, 1))
	if hit, wb := c.AccessWB(0x100, true); hit || wb {
		t.Error("cold store should miss without writeback")
	}
	// The line was allocated by the store (fetch-on-write).
	if !c.Access(0x100, false) {
		t.Error("write-back store miss must allocate the line")
	}
	// Evicting the dirty line produces a writeback.
	if _, wb := c.AccessWB(0x100+1024, false); !wb {
		t.Error("evicting a dirty line must report a writeback")
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestWriteBackCleanEvictionSilent(t *testing.T) {
	c := New(wbCfg(1024, 4, 1))
	c.Access(0x100, false) // clean fill
	if _, wb := c.AccessWB(0x100+1024, false); wb {
		t.Error("evicting a clean line must not write back")
	}
}

func TestWriteBackDirtyBitFollowsLRUMoves(t *testing.T) {
	c := New(wbCfg(64, 4, 4)) // one set, 4 ways
	c.Access(0, true)         // dirty
	c.Access(16, false)
	c.Access(32, false)
	c.Access(0, false) // touch dirty line: moves to MRU, stays dirty
	c.Access(48, false)
	// Fill two more: evicts 16 then 32 (clean), then 0 must still be
	// dirty when finally evicted.
	var wbs int
	for _, a := range []uint64{64, 80, 96, 112} {
		if _, wb := c.AccessWB(a, false); wb {
			wbs++
		}
	}
	if wbs != 1 {
		t.Errorf("dirty evictions = %d, want exactly 1 (block 0)", wbs)
	}
}

func TestWriteBackHitGeneratesNoTraffic(t *testing.T) {
	c := New(wbCfg(1024, 4, 1))
	c.Access(0x200, true)
	for i := 0; i < 100; i++ {
		if hit, wb := c.AccessWB(0x200, true); !hit || wb {
			t.Fatal("repeated write-back store hits must stay in the cache")
		}
	}
}

// Property: a write-back cache never reports more writebacks than fills,
// and write-through caches never report any.
func TestWriteBackInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	wb := New(wbCfg(512, 2, 2))
	wt := New(Config{CacheConfig: area.CacheConfig{CapacityBytes: 512, LineWords: 2, Assoc: 2}})
	for i := 0; i < 50000; i++ {
		key := uint64(rng.Intn(1 << 12))
		write := rng.Intn(3) == 0
		wb.Access(key, write)
		wt.Access(key, write)
	}
	if wb.Stats().Writebacks == 0 {
		t.Error("write-back cache under store pressure must write back")
	}
	if wb.Stats().Writebacks > wb.Stats().Fills {
		t.Error("more writebacks than fills")
	}
	if wt.Stats().Writebacks != 0 {
		t.Error("write-through cache reported writebacks")
	}
}

// A write-back cache filters store traffic: its memory writes (writebacks
// x line words) are far fewer than the write-through store count when
// stores have locality.
func TestWriteBackFiltersTraffic(t *testing.T) {
	c := New(wbCfg(4096, 4, 2))
	stores := 0
	for round := 0; round < 100; round++ {
		for a := uint64(0); a < 1024; a += 4 {
			c.Access(a, true)
			stores++
		}
	}
	traffic := c.Stats().Writebacks * 4
	if traffic*10 > uint64(stores) {
		t.Errorf("write-back traffic %d words vs %d stores: no filtering", traffic, stores)
	}
}
