// Package cache implements a trace-driven set-associative cache
// simulator with true-LRU replacement, the equivalent of the cache2000
// and Cheetah tools used in the paper's trace-driven methodology.
//
// The simulator operates on 64-bit block-addressable keys (see
// vm.CacheKey), so it can model physically-distinct placement for
// distinct address spaces. It follows the DECstation 3100 memory-system
// style: write-through with no write-allocate by default, so store
// misses do not fill the cache (stores cost write-buffer time, which is
// modeled separately in package wbuf), while load and fetch misses fill a
// whole line. Write-allocate can be enabled per configuration.
package cache

import (
	"fmt"

	"onchip/internal/area"
	"onchip/internal/telemetry"
)

// Config describes the cache to simulate. It embeds the area model's
// geometry description so a single value can be both priced and
// simulated.
type Config struct {
	area.CacheConfig
	// WriteAllocate selects whether store misses allocate a line.
	WriteAllocate bool
	// WriteBack selects a write-back policy: stores allocate and dirty
	// their line instead of writing through, and evicting a dirty line
	// produces a writeback. WriteBack implies WriteAllocate. The
	// DECstation and the paper's design space are write-through; this
	// is the write-policy axis the paper's kernel-based simulator could
	// not explore ("our kernel-based cache simulator design restricts
	// selection of line sizes and write policies", section 3).
	WriteBack bool
}

// Stats holds simulation counters.
type Stats struct {
	Reads       uint64 // loads + instruction fetches
	ReadMisses  uint64
	Writes      uint64
	WriteMisses uint64 // store misses (no line fill unless WriteAllocate)
	Fills       uint64 // line fills performed
	Writebacks  uint64 // dirty lines evicted (write-back policy only)
	Compulsory  uint64 // read misses to never-before-seen blocks
}

// Accesses returns the total number of accesses.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// Misses returns total misses (read + write).
func (s Stats) Misses() uint64 { return s.ReadMisses + s.WriteMisses }

// MissRatio returns misses/accesses, the figure the paper plots.
func (s Stats) MissRatio() float64 {
	if a := s.Accesses(); a > 0 {
		return float64(s.Misses()) / float64(a)
	}
	return 0
}

// ReadMissRatio returns read misses per read access.
func (s Stats) ReadMissRatio() float64 {
	if s.Reads > 0 {
		return float64(s.ReadMisses) / float64(s.Reads)
	}
	return 0
}

func (s Stats) String() string {
	return fmt.Sprintf("accesses=%d misses=%d ratio=%.4f", s.Accesses(), s.Misses(), s.MissRatio())
}

// Cache is a set-associative LRU cache simulator.
type Cache struct {
	cfg        Config
	offsetBits uint
	setMask    uint64
	assoc      int
	// sets is laid out as sets[set*assoc : (set+1)*assoc], most recently
	// used first. Each entry packs (block+1)<<1 | dirty, so zero marks
	// an empty way and recency moves carry the dirty bit along.
	sets  []uint64
	stats Stats
	seen  map[uint64]struct{} // blocks ever filled, for compulsory-miss classification
}

// New builds a simulator for cfg. It panics on an invalid configuration;
// callers holding untrusted configurations (design-space sweeps, flag
// parsing) should use NewE and degrade gracefully instead.
func New(cfg Config) *Cache {
	c, err := NewE(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// NewE builds a simulator for cfg, returning an error on an invalid
// configuration instead of panicking.
func NewE(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("cache: invalid config %v: %w", cfg.CacheConfig, err)
	}
	if cfg.Assoc == area.FullyAssociative {
		// Simulate full associativity as a single set spanning all lines.
		cfg.Assoc = cfg.Lines()
	}
	sets := cfg.Lines() / cfg.Assoc
	return &Cache{
		cfg:        cfg,
		offsetBits: uint(log2(cfg.LineWords * area.WordBytes)),
		setMask:    uint64(sets - 1),
		assoc:      cfg.Assoc,
		sets:       make([]uint64, cfg.Lines()),
		seen:       make(map[uint64]struct{}),
	}, nil
}

// Config returns the simulated configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the counters accumulated so far.
func (c *Cache) Stats() Stats { return c.stats }

// Reset clears cache contents and counters.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i] = 0
	}
	c.stats = Stats{}
	c.seen = make(map[uint64]struct{})
}

// ResetStats clears counters but keeps cache contents; used after warmup
// to remove cold-start bias.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Access simulates one access to the byte address key (see vm.CacheKey)
// and reports whether it hit. For write-back caches, use AccessWB when
// the caller needs to know about dirty evictions.
func (c *Cache) Access(key uint64, write bool) bool {
	hit, _ := c.AccessWB(key, write)
	return hit
}

// AccessWB simulates one access and additionally reports whether the
// access evicted a dirty line (write-back policy only; always false for
// write-through configurations).
func (c *Cache) AccessWB(key uint64, write bool) (hit, writeback bool) {
	block := key >> c.offsetBits
	set := int(block & c.setMask)
	tag := (block + 1) << 1 // 0 marks an empty way; low bit is dirty
	ways := c.sets[set*c.assoc : (set+1)*c.assoc]

	if write {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}

	for i, w := range ways {
		if w&^1 == tag {
			// Hit: move to MRU position, dirtying on write-back
			// stores.
			e := w
			if write && c.cfg.WriteBack {
				e |= 1
			}
			copy(ways[1:i+1], ways[:i])
			ways[0] = e
			return true, false
		}
	}

	// Miss.
	if write {
		c.stats.WriteMisses++
		if !c.cfg.WriteAllocate && !c.cfg.WriteBack {
			return false, false
		}
	} else {
		c.stats.ReadMisses++
		if _, ok := c.seen[block]; !ok {
			c.seen[block] = struct{}{}
			c.stats.Compulsory++
		}
	}
	c.stats.Fills++
	victim := ways[len(ways)-1]
	if victim&1 != 0 {
		c.stats.Writebacks++
		writeback = true
	}
	e := tag
	if write && c.cfg.WriteBack {
		e |= 1
	}
	copy(ways[1:], ways[:len(ways)-1])
	ways[0] = e
	return false, writeback
}

// Describe publishes the cache's counters with the registry under
// prefix (e.g. "machine.icache"). The metrics are pull-style: they read
// the Stats the simulator already keeps, so the access hot path is
// untouched and several caches (one per concurrent sweep, say) can
// publish under one prefix and have their counts summed at snapshot
// time. Safe to call with a nil registry.
func (c *Cache) Describe(reg *telemetry.Registry, prefix string) {
	reg.CounterFunc(prefix+".reads", "load + fetch accesses", func() uint64 { return c.stats.Reads })
	reg.CounterFunc(prefix+".read_misses", "load + fetch misses", func() uint64 { return c.stats.ReadMisses })
	reg.CounterFunc(prefix+".writes", "store accesses", func() uint64 { return c.stats.Writes })
	reg.CounterFunc(prefix+".write_misses", "store misses", func() uint64 { return c.stats.WriteMisses })
	reg.CounterFunc(prefix+".fills", "line fills performed", func() uint64 { return c.stats.Fills })
	reg.CounterFunc(prefix+".writebacks", "dirty lines evicted", func() uint64 { return c.stats.Writebacks })
	reg.CounterFunc(prefix+".compulsory", "read misses to never-seen blocks", func() uint64 { return c.stats.Compulsory })
}

// MissPenalty is the paper's on-chip miss cost model: "6 cycles for the
// first word in a line and 1 cycle for each additional word".
func MissPenalty(lineWords int) int { return 6 + (lineWords - 1) }

// CPIContribution converts a fill count into cycles-per-instruction
// stall contribution given the instruction count, using MissPenalty.
// Only fills stall the machine (write-through store misses without
// allocation are absorbed by the write buffer).
func CPIContribution(fills uint64, lineWords int, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(fills) * float64(MissPenalty(lineWords)) / float64(instructions)
}

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}
