package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"onchip/internal/area"
)

func cfg(capBytes, lineWords, assoc int) Config {
	return Config{CacheConfig: area.CacheConfig{CapacityBytes: capBytes, LineWords: lineWords, Assoc: assoc}}
}

func TestBasicHitMiss(t *testing.T) {
	c := New(cfg(1024, 4, 1)) // 64 lines of 16 bytes
	if c.Access(0x100, false) {
		t.Error("first access must miss")
	}
	if !c.Access(0x100, false) {
		t.Error("second access must hit")
	}
	if !c.Access(0x10f, false) {
		t.Error("same-line access must hit")
	}
	if c.Access(0x110, false) {
		t.Error("next-line access must miss")
	}
	s := c.Stats()
	if s.Reads != 4 || s.ReadMisses != 2 || s.Compulsory != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := New(cfg(1024, 4, 1)) // 64 sets; addresses 1024 apart conflict
	c.Access(0x0, false)
	c.Access(1024, false) // evicts block 0
	if c.Access(0x0, false) {
		t.Error("conflicting block must have been evicted")
	}
}

func TestTwoWayAvoidsConflict(t *testing.T) {
	c := New(cfg(1024, 4, 2))
	c.Access(0x0, false)
	c.Access(512, false) // same set (32 sets x 16B), second way
	if !c.Access(0x0, false) || !c.Access(512, false) {
		t.Error("2-way cache must hold both conflicting blocks")
	}
}

func TestLRUOrder(t *testing.T) {
	c := New(cfg(64, 4, 4)) // one set of 4 ways, 16-byte lines
	for _, a := range []uint64{0, 16, 32, 48} {
		c.Access(a, false)
	}
	c.Access(0, false)  // touch block 0: MRU
	c.Access(64, false) // evicts LRU = block at 16
	if c.Access(16, false) {
		t.Error("block 16 should have been the LRU victim")
	}
	if !c.Access(0, false) {
		t.Error("recently touched block 0 must survive")
	}
}

func TestWriteNoAllocate(t *testing.T) {
	c := New(cfg(1024, 4, 1))
	if c.Access(0x200, true) {
		t.Error("store to cold cache must miss")
	}
	if c.Access(0x200, false) {
		t.Error("no-write-allocate: store miss must not fill the line")
	}
	s := c.Stats()
	if s.Writes != 1 || s.WriteMisses != 1 || s.Fills != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestWriteAllocate(t *testing.T) {
	conf := cfg(1024, 4, 1)
	conf.WriteAllocate = true
	c := New(conf)
	c.Access(0x200, true)
	if !c.Access(0x200, false) {
		t.Error("write-allocate: store miss must fill the line")
	}
}

func TestWriteHitKeepsLine(t *testing.T) {
	c := New(cfg(1024, 4, 1))
	c.Access(0x300, false)
	if !c.Access(0x300, true) {
		t.Error("store to resident line must hit")
	}
}

func TestFullyAssociative(t *testing.T) {
	c := New(cfg(256, 4, area.FullyAssociative)) // 16 lines, one set
	// Fill 16 distinct conflicting-by-index blocks; FA holds them all.
	for i := uint64(0); i < 16; i++ {
		c.Access(i*256*1024, false)
	}
	for i := uint64(0); i < 16; i++ {
		if !c.Access(i*256*1024, false) {
			t.Errorf("FA cache must retain block %d", i)
		}
	}
}

func TestResetAndResetStats(t *testing.T) {
	c := New(cfg(1024, 4, 1))
	c.Access(0x0, false)
	c.ResetStats()
	if !c.Access(0x0, false) {
		t.Error("ResetStats must keep contents")
	}
	if c.Stats().Reads != 1 || c.Stats().ReadMisses != 0 {
		t.Errorf("stats after ResetStats = %+v", c.Stats())
	}
	c.Reset()
	if c.Access(0x0, false) {
		t.Error("Reset must clear contents")
	}
}

func TestMissPenalty(t *testing.T) {
	// "6 cycles for the first word in a line and 1 cycle for each
	// additional word."
	cases := map[int]int{1: 6, 2: 7, 4: 9, 8: 13, 16: 21, 32: 37}
	for line, want := range cases {
		if got := MissPenalty(line); got != want {
			t.Errorf("MissPenalty(%d) = %d, want %d", line, got, want)
		}
	}
}

func TestCPIContribution(t *testing.T) {
	if got := CPIContribution(100, 4, 1000); got != 0.9 {
		t.Errorf("CPIContribution = %g, want 0.9", got)
	}
	if got := CPIContribution(5, 4, 0); got != 0 {
		t.Errorf("CPIContribution with no instructions = %g", got)
	}
}

func TestMissRatioHelpers(t *testing.T) {
	s := Stats{Reads: 80, ReadMisses: 8, Writes: 20, WriteMisses: 2}
	if got := s.MissRatio(); got != 0.1 {
		t.Errorf("MissRatio = %g", got)
	}
	if got := s.ReadMissRatio(); got != 0.1 {
		t.Errorf("ReadMissRatio = %g", got)
	}
	if (Stats{}).MissRatio() != 0 || (Stats{}).ReadMissRatio() != 0 {
		t.Error("empty stats must be 0")
	}
}

// Inclusion property: under LRU, a larger-associativity cache with the
// same set count never misses more than a smaller one on any trace.
func TestAssociativityInclusion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c2 := New(cfg(2048, 4, 2))
	c4 := New(cfg(4096, 4, 4)) // same 32 sets, double the ways
	for i := 0; i < 20000; i++ {
		addr := uint64(rng.Intn(1 << 14))
		c2.Access(addr, false)
		c4.Access(addr, false)
	}
	if c4.Stats().ReadMisses > c2.Stats().ReadMisses {
		t.Errorf("inclusion violated: 4-way misses %d > 2-way misses %d",
			c4.Stats().ReadMisses, c2.Stats().ReadMisses)
	}
}

// Property: miss count never exceeds access count, and compulsory misses
// never exceed total read misses.
func TestQuickCounterSanity(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(cfg(512, 2, 2))
		for i := 0; i < int(n); i++ {
			c.Access(uint64(rng.Intn(1<<12)), rng.Intn(4) == 0)
		}
		s := c.Stats()
		return s.Misses() <= s.Accesses() &&
			s.Compulsory <= s.ReadMisses &&
			s.Reads+s.Writes == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: a cache big enough to hold the whole footprint only takes
// compulsory misses.
func TestQuickOnlyCompulsoryWhenFits(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(cfg(64*1024, 4, area.FullyAssociative))
		for i := 0; i < 5000; i++ {
			c.Access(uint64(rng.Intn(32*1024)), false)
		}
		s := c.Stats()
		return s.ReadMisses == s.Compulsory
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config must panic")
		}
	}()
	New(cfg(1000, 4, 1))
}
