package trace

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

// corruptible builds a valid trace of n records and returns its bytes.
func corruptible(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		w.Ref(Ref{Addr: uint32(0x1000 + 4*i), ASID: uint8(i), Kind: Kind(i % 3), Mode: Mode(i % 2)})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCorruptRecordStrict(t *testing.T) {
	data := corruptible(t, 3)
	data[headerSize+recordSize+5] = 0xee // record 1's kind byte

	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err != nil {
		t.Fatalf("record 0 should be fine: %v", err)
	}
	_, err = r.Read()
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("corrupt record returned %v, want *CorruptError", err)
	}
	if ce.Record != 1 || ce.Offset != headerSize+recordSize {
		t.Errorf("CorruptError = record %d offset %d, want record 1 offset %d",
			ce.Record, ce.Offset, headerSize+recordSize)
	}
	if !strings.Contains(ce.Reason, "invalid kind") {
		t.Errorf("Reason = %q", ce.Reason)
	}
	if !errors.Is(err, ErrBadFormat) {
		t.Error("CorruptError should unwrap to ErrBadFormat")
	}
}

func TestCorruptRecordSkipped(t *testing.T) {
	data := corruptible(t, 4)
	data[headerSize+recordSize+5] = 0xee // record 1: bad kind
	data[headerSize+2*recordSize+6] = 9  // record 2: bad mode

	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	r.SkipCorrupt = true
	var observed []string
	r.OnCorrupt = func(e *CorruptError) { observed = append(observed, e.Reason) }

	var c Counter
	n, err := r.Drain(&c)
	if err != nil {
		t.Fatalf("Drain in skip mode: %v", err)
	}
	if n != 2 {
		t.Errorf("delivered %d records, want the 2 intact ones", n)
	}
	if r.Corrupt() != 2 {
		t.Errorf("Corrupt() = %d, want 2", r.Corrupt())
	}
	if len(observed) != 2 ||
		!strings.Contains(observed[0], "invalid kind") ||
		!strings.Contains(observed[1], "invalid mode") {
		t.Errorf("OnCorrupt observed %v", observed)
	}
}

func TestTruncatedTail(t *testing.T) {
	data := corruptible(t, 3)
	data = data[:len(data)-3] // tear the last record

	// Strict: the tear is an error.
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var c Counter
	_, err = r.Drain(&c)
	var ce *CorruptError
	if !errors.As(err, &ce) || !strings.Contains(ce.Reason, "truncated") {
		t.Errorf("torn tail returned %v, want a truncated-record CorruptError", err)
	}

	// Skip mode: the intact prefix is delivered and the tear counted.
	r, err = NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	r.SkipCorrupt = true
	n, err := r.Drain(&Counter{})
	if err != nil || n != 2 {
		t.Errorf("skip mode: %d records, %v; want 2, nil", n, err)
	}
	if r.Corrupt() != 1 {
		t.Errorf("Corrupt() = %d, want 1", r.Corrupt())
	}
}

func TestDrainContextCancellation(t *testing.T) {
	// Enough records to cross the drain's cancellation-poll boundary.
	data := corruptible(t, drainCheckEvery+100)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n, err := r.DrainContext(ctx, &Counter{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled drain returned %v, want context.Canceled", err)
	}
	if n != drainCheckEvery {
		t.Errorf("cancelled drain delivered %d records, want to stop at the %d-record poll", n, drainCheckEvery)
	}
}

// FuzzTrace drives the skip-corrupt drain path with arbitrary bytes: it
// must never panic, never loop forever, and the records delivered plus
// corruptions counted must stay consistent with the input size.
func FuzzTrace(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 8; i++ {
		w.Ref(Ref{Addr: uint32(i), ASID: uint8(i), Kind: Kind(i % 3), Mode: Mode(i % 2)})
	}
	_ = w.Flush()
	valid := buf.Bytes()
	f.Add(valid, true)
	f.Add(valid, false)
	f.Add(valid[:len(valid)-5], true)
	torn := append([]byte(nil), valid...)
	torn[headerSize+5] = 0x7f
	f.Add(torn, true)
	f.Add([]byte("OCTR\x01\x00\x00\x00"), false)

	f.Fuzz(func(t *testing.T, data []byte, skip bool) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		r.SkipCorrupt = skip
		var c Counter
		n, err := r.Drain(&c)
		if skip && err != nil {
			var ce *CorruptError
			if errors.As(err, &ce) {
				t.Fatalf("skip mode still surfaced a CorruptError: %v", err)
			}
		}
		if payload := len(data) - headerSize; payload >= 0 {
			if max := uint64(payload / recordSize); n+r.Corrupt() > max+1 {
				t.Fatalf("delivered %d + corrupt %d exceeds the %d records the input can hold",
					n, r.Corrupt(), max)
			}
		}
	})
}
