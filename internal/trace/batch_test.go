package trace

import (
	"reflect"
	"testing"
)

// recorder captures every reference it sees, via whichever entry point
// the producer picked.
type recorder struct {
	refs    []Ref
	batches int
}

func (r *recorder) Ref(x Ref) { r.refs = append(r.refs, x) }

// batchRecorder additionally implements BatchSink.
type batchRecorder struct{ recorder }

func (r *batchRecorder) Refs(refs []Ref) {
	r.refs = append(r.refs, refs...)
	r.batches++
}

func testStream(n int) []Ref {
	out := make([]Ref, n)
	for i := range out {
		out[i] = Ref{
			Addr: uint32(i * 4),
			ASID: uint8(i % 7),
			Kind: Kind(i % 3),
			Mode: Mode(i % 2),
		}
	}
	return out
}

// Every sink behind a Tee -- batch-capable or not -- must see the
// identical reference sequence the producer emitted.
func TestTeeSinksSeeIdenticalSequence(t *testing.T) {
	stream := testStream(1000)
	plain1 := &recorder{}
	plain2 := &recorder{}
	batch := &batchRecorder{}
	tee := Tee{plain1, batch, plain2}

	// Deliver as a mix of per-reference and batched calls, like a
	// generator switching between slices of work.
	for _, r := range stream[:100] {
		tee.Ref(r)
	}
	tee.Refs(stream[100:600])
	tee.Refs(stream[600:600]) // empty batch is a no-op
	for _, r := range stream[600:650] {
		tee.Ref(r)
	}
	tee.Refs(stream[650:])

	for name, got := range map[string][]Ref{
		"plain1": plain1.refs, "plain2": plain2.refs, "batch": batch.refs,
	} {
		if !reflect.DeepEqual(got, stream) {
			t.Errorf("%s: sink did not see the generated sequence (%d refs, want %d)",
				name, len(got), len(stream))
		}
	}
	if batch.batches != 3 {
		t.Errorf("batch-capable sink got %d batch deliveries, want 3", batch.batches)
	}
}

// Batched must return the sink itself when it already implements
// BatchSink, and a sequence-preserving shim otherwise.
func TestBatchedShim(t *testing.T) {
	b := &batchRecorder{}
	if Batched(b) != BatchSink(b) {
		t.Error("Batched wrapped a sink that was already batch-capable")
	}
	stream := testStream(257)
	p := &recorder{}
	Batched(p).Refs(stream)
	if !reflect.DeepEqual(p.refs, stream) {
		t.Errorf("shim delivered %d refs, want %d in order", len(p.refs), len(stream))
	}
}

// Counter's batch path must agree with its per-reference path.
func TestCounterBatchMatchesScalar(t *testing.T) {
	stream := testStream(999)
	var a, b Counter
	for _, r := range stream {
		a.Ref(r)
	}
	b.Refs(stream[:500])
	b.Refs(stream[500:])
	if a != b {
		t.Errorf("batch counter %+v != scalar counter %+v", b, a)
	}
}
