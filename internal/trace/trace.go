// Package trace defines the memory-reference record that flows between
// the OS/workload models and the architectural simulators, together with
// streaming combinators and a compact binary file format.
//
// A reference is a virtual address plus the context needed by the
// simulators: the kind of access (instruction fetch, load, store), the
// address-space identifier, and the processor mode. This mirrors what the
// paper's Monster logic analyzer captured at the CPU pins of a DECstation
// 3100 (all memory references, including operating-system activity).
package trace

import "fmt"

// Kind identifies the type of a memory reference.
type Kind uint8

const (
	// IFetch is an instruction fetch.
	IFetch Kind = iota
	// Load is a data read.
	Load
	// Store is a data write.
	Store
)

func (k Kind) String() string {
	switch k {
	case IFetch:
		return "ifetch"
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Mode is the processor privilege mode of a reference.
type Mode uint8

const (
	// User mode: the reference was issued by user-level code (including
	// user-level OS servers under Mach).
	User Mode = iota
	// Kernel mode: the reference was issued by kernel code.
	Kernel
)

func (m Mode) String() string {
	if m == Kernel {
		return "kernel"
	}
	return "user"
}

// Ref is one memory reference.
type Ref struct {
	// Addr is the 32-bit virtual address.
	Addr uint32
	// ASID identifies the address space (process) issuing the
	// reference. Kernel-segment addresses are global and ignore ASID.
	ASID uint8
	// Kind is the access type.
	Kind Kind
	// Mode is the privilege mode at the time of the reference.
	Mode Mode
}

// Data reports whether the reference is a data access (load or store).
func (r Ref) Data() bool { return r.Kind != IFetch }

func (r Ref) String() string {
	return fmt.Sprintf("%s %s asid=%d %08x", r.Mode, r.Kind, r.ASID, r.Addr)
}

// Sink consumes a stream of references. Simulators, trace writers, and
// statistics collectors implement Sink.
type Sink interface {
	// Ref delivers one reference.
	Ref(Ref)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Ref)

// Ref implements Sink.
func (f SinkFunc) Ref(r Ref) { f(r) }

// BatchSink is the high-throughput variant of Sink: whole slices of
// references are delivered at once, amortizing the per-reference
// interface dispatch that dominates tight simulator loops. Generators
// that detect a BatchSink (see osmodel's emitter) buffer internally
// and deliver in batches; the reference sequence is identical either
// way. The batch slice is only valid for the duration of the call --
// implementations must not retain it.
type BatchSink interface {
	// Refs delivers a batch of references in stream order.
	Refs([]Ref)
}

// sinkShim adapts a plain Sink to BatchSink by looping.
type sinkShim struct{ s Sink }

func (b sinkShim) Refs(refs []Ref) {
	for _, r := range refs {
		b.s.Ref(r)
	}
}

// Batched returns s's batch entry point: s itself when it implements
// BatchSink, otherwise a shim that unrolls each batch into per-
// reference Ref calls. Either way the sink observes the exact same
// reference sequence.
func Batched(s Sink) BatchSink {
	if b, ok := s.(BatchSink); ok {
		return b
	}
	return sinkShim{s}
}

// Generator produces a reference stream into a sink. The OS/workload
// models implement Generator.
type Generator interface {
	// Generate emits approximately n references into sink. It returns
	// the number actually emitted (generators round to whole units of
	// internal work, so the count may exceed n slightly).
	Generate(n int, sink Sink) int
}

// Tee fans a stream out to several sinks in order: every sink sees the
// identical reference sequence, so one generation pass can feed
// several independent simulators (the I-stream, D-stream and TLB
// sweeps of the model-building phase) at once.
type Tee []Sink

// Ref implements Sink.
func (t Tee) Ref(r Ref) {
	for _, s := range t {
		s.Ref(r)
	}
}

// Refs implements BatchSink: batch-capable sinks receive the whole
// batch in one call, plain sinks get the per-reference unroll. Each
// sink still observes the identical sequence.
func (t Tee) Refs(refs []Ref) {
	for _, s := range t {
		if b, ok := s.(BatchSink); ok {
			b.Refs(refs)
		} else {
			for _, r := range refs {
				s.Ref(r)
			}
		}
	}
}

// Counter counts references by kind and mode.
type Counter struct {
	ByKind [3]uint64
	ByMode [2]uint64
	Total  uint64
}

// Ref implements Sink.
func (c *Counter) Ref(r Ref) {
	c.ByKind[r.Kind]++
	c.ByMode[r.Mode]++
	c.Total++
}

// Refs implements BatchSink.
func (c *Counter) Refs(refs []Ref) {
	for _, r := range refs {
		c.ByKind[r.Kind]++
		c.ByMode[r.Mode]++
	}
	c.Total += uint64(len(refs))
}

// Instructions returns the number of instruction fetches seen.
func (c *Counter) Instructions() uint64 { return c.ByKind[IFetch] }

// Filter forwards only references for which Keep returns true.
type Filter struct {
	Keep func(Ref) bool
	Next Sink
}

// Ref implements Sink.
func (f Filter) Ref(r Ref) {
	if f.Keep(r) {
		f.Next.Ref(r)
	}
}

// Discard is a Sink that drops everything.
var Discard Sink = SinkFunc(func(Ref) {})
