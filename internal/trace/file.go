package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The binary trace format is a fixed 16-byte header followed by 8-byte
// little-endian records:
//
//	header:  magic "OCTR" | version u16 | reserved u16 | count u64
//	record:  addr u32 | asid u8 | kind u8 | mode u8 | reserved u8
//
// count may be zero when the writer did not know the record count in
// advance (streaming); readers then read until EOF.

const (
	fileMagic   = "OCTR"
	fileVersion = 1
	headerSize  = 16
	recordSize  = 8
)

// ErrBadFormat is returned when a trace file header or record is
// malformed.
var ErrBadFormat = errors.New("trace: bad file format")

// Writer streams references to an io.Writer in the binary trace format.
type Writer struct {
	w     *bufio.Writer
	count uint64
	err   error
}

// NewWriter writes a trace header and returns a Writer. Call Flush when
// done.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [headerSize]byte
	copy(hdr[:4], fileMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], fileVersion)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Ref implements Sink. Write errors are sticky and reported by Flush.
func (w *Writer) Ref(r Ref) {
	if w.err != nil {
		return
	}
	var rec [recordSize]byte
	binary.LittleEndian.PutUint32(rec[0:4], r.Addr)
	rec[4] = r.ASID
	rec[5] = byte(r.Kind)
	rec[6] = byte(r.Mode)
	if _, err := w.w.Write(rec[:]); err != nil {
		w.err = err
		return
	}
	w.count++
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.count }

// Flush flushes buffered records and returns the first error encountered
// while writing.
func (w *Writer) Flush() error {
	if w.err != nil {
		return fmt.Errorf("trace: write failed: %w", w.err)
	}
	return w.w.Flush()
}

// Reader reads references from a binary trace stream.
type Reader struct {
	r    *bufio.Reader
	read uint64
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[:4]) != fileMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != fileVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	return &Reader{r: br}, nil
}

// Read returns the next reference, or io.EOF at end of stream.
func (r *Reader) Read() (Ref, error) {
	var rec [recordSize]byte
	if _, err := io.ReadFull(r.r, rec[:]); err != nil {
		if err == io.EOF {
			return Ref{}, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Ref{}, fmt.Errorf("%w: truncated record after %d records", ErrBadFormat, r.read)
		}
		return Ref{}, fmt.Errorf("trace: reading record: %w", err)
	}
	r.read++
	if k := Kind(rec[5]); k > Store {
		return Ref{}, fmt.Errorf("%w: invalid kind %d in record %d", ErrBadFormat, rec[5], r.read)
	}
	if m := Mode(rec[6]); m > Kernel {
		return Ref{}, fmt.Errorf("%w: invalid mode %d in record %d", ErrBadFormat, rec[6], r.read)
	}
	return Ref{
		Addr: binary.LittleEndian.Uint32(rec[0:4]),
		ASID: rec[4],
		Kind: Kind(rec[5]),
		Mode: Mode(rec[6]),
	}, nil
}

// Drain feeds every remaining reference to sink and returns the number
// delivered.
func (r *Reader) Drain(sink Sink) (uint64, error) {
	var n uint64
	for {
		ref, err := r.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		sink.Ref(ref)
		n++
	}
}
