package trace

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The binary trace format is a fixed 16-byte header followed by 8-byte
// little-endian records:
//
//	header:  magic "OCTR" | version u16 | reserved u16 | count u64
//	record:  addr u32 | asid u8 | kind u8 | mode u8 | reserved u8
//
// count may be zero when the writer did not know the record count in
// advance (streaming); readers then read until EOF.

const (
	fileMagic   = "OCTR"
	fileVersion = 1
	headerSize  = 16
	recordSize  = 8
)

// ErrBadFormat is returned when a trace file header or record is
// malformed.
var ErrBadFormat = errors.New("trace: bad file format")

// CorruptError reports a malformed record in an otherwise readable
// trace stream: a truncated tail or a record with garbage field values.
// It unwraps to ErrBadFormat, so existing errors.Is checks keep working,
// and carries enough structure for callers to log, skip, or abort.
type CorruptError struct {
	// Offset is the byte offset of the corrupt record in the stream.
	Offset int64
	// Record is the index of the corrupt record (0-based).
	Record uint64
	// Reason describes the corruption ("truncated record",
	// "invalid kind 7", ...).
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("trace: corrupt record %d at offset %d: %s", e.Record, e.Offset, e.Reason)
}

// Unwrap makes errors.Is(err, ErrBadFormat) hold for corrupt records.
func (e *CorruptError) Unwrap() error { return ErrBadFormat }

// Writer streams references to an io.Writer in the binary trace format.
type Writer struct {
	w     *bufio.Writer
	count uint64
	err   error
}

// NewWriter writes a trace header and returns a Writer. Call Flush when
// done.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [headerSize]byte
	copy(hdr[:4], fileMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], fileVersion)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Ref implements Sink. Write errors are sticky and reported by Flush.
func (w *Writer) Ref(r Ref) {
	if w.err != nil {
		return
	}
	var rec [recordSize]byte
	binary.LittleEndian.PutUint32(rec[0:4], r.Addr)
	rec[4] = r.ASID
	rec[5] = byte(r.Kind)
	rec[6] = byte(r.Mode)
	if _, err := w.w.Write(rec[:]); err != nil {
		w.err = err
		return
	}
	w.count++
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.count }

// Flush flushes buffered records and returns the first error encountered
// while writing.
func (w *Writer) Flush() error {
	if w.err != nil {
		return fmt.Errorf("trace: write failed: %w", w.err)
	}
	return w.w.Flush()
}

// Reader reads references from a binary trace stream.
type Reader struct {
	r    *bufio.Reader
	read uint64
	// SkipCorrupt makes Read step over corrupt records instead of
	// returning a *CorruptError: a record with garbage field values is
	// skipped (the format is fixed-width, so the stream stays aligned)
	// and a truncated tail ends the stream as a clean EOF. Every
	// corruption is counted and reported to OnCorrupt.
	SkipCorrupt bool
	// OnCorrupt, when non-nil, observes each corrupt record encountered
	// (in both modes), e.g. to feed a telemetry counter.
	OnCorrupt func(*CorruptError)
	corrupt   uint64
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[:4]) != fileMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != fileVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	return &Reader{r: br}, nil
}

// Corrupt returns the number of corrupt records encountered so far.
func (r *Reader) Corrupt() uint64 { return r.corrupt }

// note records one corruption and reports it to OnCorrupt.
func (r *Reader) note(reason string) *CorruptError {
	e := &CorruptError{
		Offset: int64(headerSize + r.read*recordSize),
		Record: r.read,
		Reason: reason,
	}
	r.corrupt++
	if r.OnCorrupt != nil {
		r.OnCorrupt(e)
	}
	return e
}

// Read returns the next reference, or io.EOF at end of stream. A
// malformed record yields a *CorruptError (unwrapping to ErrBadFormat)
// unless SkipCorrupt is set, in which case it is counted and skipped.
func (r *Reader) Read() (Ref, error) {
	for {
		var rec [recordSize]byte
		if _, err := io.ReadFull(r.r, rec[:]); err != nil {
			if err == io.EOF {
				return Ref{}, io.EOF
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				e := r.note("truncated record")
				if r.SkipCorrupt {
					// A partial tail cannot be resynchronized; end the
					// stream cleanly after counting it.
					return Ref{}, io.EOF
				}
				return Ref{}, e
			}
			return Ref{}, fmt.Errorf("trace: reading record: %w", err)
		}
		if k := Kind(rec[5]); k > Store {
			e := r.note(fmt.Sprintf("invalid kind %d", rec[5]))
			r.read++
			if r.SkipCorrupt {
				continue
			}
			return Ref{}, e
		}
		if m := Mode(rec[6]); m > Kernel {
			e := r.note(fmt.Sprintf("invalid mode %d", rec[6]))
			r.read++
			if r.SkipCorrupt {
				continue
			}
			return Ref{}, e
		}
		r.read++
		return Ref{
			Addr: binary.LittleEndian.Uint32(rec[0:4]),
			ASID: rec[4],
			Kind: Kind(rec[5]),
			Mode: Mode(rec[6]),
		}, nil
	}
}

// Drain feeds every remaining reference to sink and returns the number
// delivered.
func (r *Reader) Drain(sink Sink) (uint64, error) {
	return r.DrainContext(context.Background(), sink)
}

// drainCheckEvery is how often DrainContext polls the context, in
// records; a power of two keeps the check to a mask and compare.
const drainCheckEvery = 1 << 16

// DrainContext feeds every remaining reference to sink until end of
// stream, an error, or ctx is cancelled (checked every 64K records; a
// cancelled drain returns the count delivered so far and ctx's error).
func (r *Reader) DrainContext(ctx context.Context, sink Sink) (uint64, error) {
	var n uint64
	done := ctx.Done()
	for {
		ref, err := r.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		sink.Ref(ref)
		n++
		if done != nil && n%drainCheckEvery == 0 {
			select {
			case <-done:
				return n, ctx.Err()
			default:
			}
		}
	}
}
