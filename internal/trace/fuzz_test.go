package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the trace reader: it must never
// panic, and every record it does return must be well-formed.
func FuzzReader(f *testing.F) {
	// Seed with a valid two-record trace and some corruptions of it.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Ref(Ref{Addr: 0x00400000, ASID: 1, Kind: IFetch, Mode: User})
	w.Ref(Ref{Addr: 0xc0000000, ASID: 0, Kind: Store, Mode: Kernel})
	_ = w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("OCTR"))
	f.Add([]byte{})
	corrupt := append([]byte(nil), valid...)
	corrupt[21] = 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			ref, err := r.Read()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			if ref.Kind > Store || ref.Mode > Kernel {
				t.Fatalf("reader returned malformed record: %+v", ref)
			}
		}
	})
}
