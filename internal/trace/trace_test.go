package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestKindAndModeStrings(t *testing.T) {
	if IFetch.String() != "ifetch" || Load.String() != "load" || Store.String() != "store" {
		t.Error("kind strings wrong")
	}
	if User.String() != "user" || Kernel.String() != "kernel" {
		t.Error("mode strings wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Errorf("unknown kind string = %q", Kind(9).String())
	}
}

func TestRefData(t *testing.T) {
	if (Ref{Kind: IFetch}).Data() {
		t.Error("ifetch should not be data")
	}
	if !(Ref{Kind: Load}).Data() || !(Ref{Kind: Store}).Data() {
		t.Error("load/store should be data")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	refs := []Ref{
		{Kind: IFetch, Mode: User},
		{Kind: IFetch, Mode: Kernel},
		{Kind: Load, Mode: User},
		{Kind: Store, Mode: Kernel},
	}
	for _, r := range refs {
		c.Ref(r)
	}
	if c.Total != 4 || c.Instructions() != 2 {
		t.Errorf("total=%d instructions=%d, want 4, 2", c.Total, c.Instructions())
	}
	if c.ByMode[User] != 2 || c.ByMode[Kernel] != 2 {
		t.Errorf("mode counts = %v", c.ByMode)
	}
	if c.ByKind[Load] != 1 || c.ByKind[Store] != 1 {
		t.Errorf("kind counts = %v", c.ByKind)
	}
}

func TestTeeAndFilter(t *testing.T) {
	var a, b Counter
	tee := Tee{&a, Filter{Keep: func(r Ref) bool { return r.Kind == IFetch }, Next: &b}}
	tee.Ref(Ref{Kind: IFetch})
	tee.Ref(Ref{Kind: Load})
	if a.Total != 2 {
		t.Errorf("first sink total = %d, want 2", a.Total)
	}
	if b.Total != 1 || b.ByKind[IFetch] != 1 {
		t.Errorf("filtered sink total = %d, want 1 ifetch", b.Total)
	}
}

func TestFileRoundTrip(t *testing.T) {
	refs := []Ref{
		{Addr: 0x00400000, ASID: 1, Kind: IFetch, Mode: User},
		{Addr: 0x80001234, ASID: 0, Kind: Load, Mode: Kernel},
		{Addr: 0x7fffeff0, ASID: 42, Kind: Store, Mode: User},
		{Addr: 0xffffffff, ASID: 255, Kind: IFetch, Mode: Kernel},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		w.Ref(r)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(refs)) {
		t.Errorf("writer count = %d, want %d", w.Count(), len(refs))
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range refs {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Errorf("record %d = %v, want %v", i, got, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("after last record: err = %v, want io.EOF", err)
	}
}

func TestFileDrain(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 100; i++ {
		w.Ref(Ref{Addr: uint32(i * 4), Kind: IFetch})
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var c Counter
	n, err := r.Drain(&c)
	if err != nil || n != 100 || c.Total != 100 {
		t.Errorf("Drain = (%d, %v), counter %d; want 100", n, err, c.Total)
	}
}

func TestReaderRejectsBadInput(t *testing.T) {
	cases := map[string][]byte{
		"empty":       nil,
		"bad magic":   []byte("NOPE000000000000"),
		"bad version": append([]byte("OCTR\x09\x00"), make([]byte, 10)...),
	}
	for name, data := range cases {
		if _, err := NewReader(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: NewReader succeeded, want error", name)
		}
	}
}

func TestReaderRejectsTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Ref(Ref{Addr: 4})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); !errors.Is(err, ErrBadFormat) {
		t.Errorf("truncated record: err = %v, want ErrBadFormat", err)
	}
}

func TestReaderRejectsBadKindMode(t *testing.T) {
	mk := func(kind, mode byte) []byte {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		w.Ref(Ref{})
		_ = w.Flush()
		data := buf.Bytes()
		data[16+5] = kind
		data[16+6] = mode
		return data
	}
	for _, d := range [][]byte{mk(7, 0), mk(0, 9)} {
		r, err := NewReader(bytes.NewReader(d))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Read(); !errors.Is(err, ErrBadFormat) {
			t.Errorf("corrupt record: err = %v, want ErrBadFormat", err)
		}
	}
}

// Property: any Ref round-trips through the binary format.
func TestFileQuickRoundTrip(t *testing.T) {
	f := func(addr uint32, asid uint8, kindRaw, modeRaw uint8) bool {
		want := Ref{Addr: addr, ASID: asid, Kind: Kind(kindRaw % 3), Mode: Mode(modeRaw % 2)}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		w.Ref(want)
		if w.Flush() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.Read()
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
