package machine

import (
	"math"
	"testing"

	"onchip/internal/area"
	"onchip/internal/cache"
	"onchip/internal/tlb"
	"onchip/internal/trace"
	"onchip/internal/vm"
	"onchip/internal/wbuf"
)

func smallConfig() Config {
	return Config{
		ICache: cache.Config{CacheConfig: area.CacheConfig{CapacityBytes: 4 << 10, LineWords: 4, Assoc: 1}},
		DCache: cache.Config{CacheConfig: area.CacheConfig{CapacityBytes: 4 << 10, LineWords: 4, Assoc: 1}},
		TLB:    tlb.R2000(),
		WB:     wbuf.Config{Entries: 4, WriteCycles: 5},
	}
}

func TestBaseCPIIsOne(t *testing.T) {
	m := New(smallConfig())
	// A tight loop in unmapped kernel space: after warmup, no stalls.
	for i := 0; i < 100; i++ {
		m.Ref(trace.Ref{Addr: 0x80000000, Kind: trace.IFetch, Mode: trace.Kernel})
	}
	b := m.Breakdown()
	if b.Instrs != 100 {
		t.Fatalf("instrs = %d", b.Instrs)
	}
	// One compulsory I-miss only.
	wantCPI := 1 + float64(cache.MissPenalty(4))/100
	if math.Abs(b.CPI-wantCPI) > 1e-9 {
		t.Errorf("CPI = %f, want %f", b.CPI, wantCPI)
	}
}

func TestICacheStallAccounting(t *testing.T) {
	m := New(smallConfig())
	// Every fetch to a new line in kseg0: always misses.
	for i := 0; i < 64; i++ {
		m.Ref(trace.Ref{Addr: 0x80000000 + uint32(i*16), Kind: trace.IFetch, Mode: trace.Kernel})
	}
	b := m.Breakdown()
	if got := b.Comp[CompICache]; got != float64(cache.MissPenalty(4)) {
		t.Errorf("I-cache CPI = %f, want %d", got, cache.MissPenalty(4))
	}
	if b.Pct(CompICache) < 95 {
		t.Errorf("I-cache share = %.0f%%, want ~100%%", b.Pct(CompICache))
	}
}

func TestDCacheLoadStall(t *testing.T) {
	m := New(smallConfig())
	m.Ref(trace.Ref{Addr: 0x80000000, Kind: trace.IFetch, Mode: trace.Kernel})
	m.Ref(trace.Ref{Addr: 0x80005000, Kind: trace.Load, Mode: trace.Kernel})
	b := m.Breakdown()
	if b.Comp[CompDCache] != float64(cache.MissPenalty(4)) {
		t.Errorf("D-cache CPI = %f", b.Comp[CompDCache])
	}
}

func TestTLBStallForMappedRefs(t *testing.T) {
	m := New(smallConfig())
	m.Ref(trace.Ref{Addr: 0x80000000, Kind: trace.IFetch, Mode: trace.Kernel})
	before := m.Breakdown().Comp[CompTLB]
	if before != 0 {
		t.Fatal("unmapped fetch must not stall the TLB")
	}
	// First touch of a user page: uTLB refill + nested PTE miss.
	m.Ref(trace.Ref{Addr: vm.UserTextBase, ASID: 1, Kind: trace.Load, Mode: trace.User})
	costs := m.TLB().Costs()
	want := float64(costs.UserMissCycles + costs.KernelMissCycles)
	if got := m.Breakdown().Comp[CompTLB] * float64(m.Instructions()); math.Abs(got-want) > 1e-9 {
		t.Errorf("TLB stall cycles = %f, want %f", got, want)
	}
}

func TestWriteBufferStall(t *testing.T) {
	m := New(smallConfig())
	m.Ref(trace.Ref{Addr: 0x80000000, Kind: trace.IFetch, Mode: trace.Kernel})
	// Back-to-back stores at the same cycle eventually fill the buffer.
	for i := 0; i < 10; i++ {
		m.Ref(trace.Ref{Addr: 0x80008000 + uint32(i*4), Kind: trace.Store, Mode: trace.Kernel})
	}
	if m.Breakdown().Comp[CompWB] == 0 {
		t.Error("store burst produced no write-buffer stalls")
	}
}

func TestUncachedKseg1(t *testing.T) {
	m := New(smallConfig())
	m.Ref(trace.Ref{Addr: 0x80000000, Kind: trace.IFetch, Mode: trace.Kernel})
	m.Ref(trace.Ref{Addr: vm.Kseg1Base, Kind: trace.Load, Mode: trace.Kernel})
	m.Ref(trace.Ref{Addr: vm.Kseg1Base, Kind: trace.Load, Mode: trace.Kernel})
	// Both loads pay the uncached penalty; neither touches the D-cache.
	if got := m.Breakdown().Comp[CompDCache]; got != 12 {
		t.Errorf("uncached load cycles = %f, want 12", got)
	}
	if m.DCache().Stats().Accesses() != 0 {
		t.Error("kseg1 loads must bypass the D-cache")
	}
}

func TestOtherCPICharging(t *testing.T) {
	cfg := smallConfig()
	cfg.OtherCPI = 0.5
	cfg.IsServerASID = func(asid uint8) bool { return asid == 2 }
	m := New(cfg)
	// App user instruction: charged.
	m.Ref(trace.Ref{Addr: 0x80000000, ASID: 1, Kind: trace.IFetch, Mode: trace.User})
	// Server user instruction: not charged.
	m.Ref(trace.Ref{Addr: 0x80000004, ASID: 2, Kind: trace.IFetch, Mode: trace.User})
	// Kernel instruction: not charged.
	m.Ref(trace.Ref{Addr: 0x80000008, ASID: 1, Kind: trace.IFetch, Mode: trace.Kernel})
	b := m.Breakdown()
	if got := b.Comp[CompOther] * 3; math.Abs(got-0.5) > 1e-9 {
		t.Errorf("other stall cycles = %f, want 0.5", got)
	}
}

func TestBreakdownEmpty(t *testing.T) {
	m := New(smallConfig())
	b := m.Breakdown()
	if b.CPI != 0 || b.Instrs != 0 {
		t.Errorf("empty breakdown = %+v", b)
	}
	if b.Pct(CompTLB) != 0 {
		t.Error("Pct of empty breakdown should be 0")
	}
}

func TestBreakdownSecondsAndString(t *testing.T) {
	b := Breakdown{Instrs: uint64(ClockHz), CPI: 2}
	if got := b.Seconds(); math.Abs(got-2) > 1e-9 {
		t.Errorf("Seconds = %f, want 2", got)
	}
	if b.String() == "" {
		t.Error("empty String()")
	}
}

func TestDECstation3100Config(t *testing.T) {
	cfg := DECstation3100()
	if cfg.ICache.CapacityBytes != 64<<10 || cfg.ICache.LineWords != 1 {
		t.Errorf("I-cache = %+v", cfg.ICache)
	}
	if !cfg.DCache.WriteAllocate {
		t.Error("DECstation D-cache must write-allocate (free with 1-word lines)")
	}
	if cfg.TLB.Entries != 64 {
		t.Errorf("TLB = %+v", cfg.TLB)
	}
	if cfg.Costs() != tlb.DefaultCosts() {
		t.Error("zero TLBCosts must default")
	}
}

func TestComponentString(t *testing.T) {
	names := map[Component]string{CompTLB: "TLB", CompICache: "I-cache", CompDCache: "D-cache", CompWB: "Write Buffer", CompOther: "Other"}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestUnifiedCacheSharesArray(t *testing.T) {
	cfg := smallConfig()
	cfg.Unified = true
	m := New(cfg)
	// A fetched line must be visible to loads (same array).
	m.Ref(trace.Ref{Addr: 0x80002000, Kind: trace.IFetch, Mode: trace.Kernel})
	m.Ref(trace.Ref{Addr: 0x80002004, Kind: trace.Load, Mode: trace.Kernel})
	b := m.Breakdown()
	if b.Comp[CompDCache] != 0 {
		t.Errorf("load after fetch of same line missed in unified cache: D CPI %f", b.Comp[CompDCache])
	}
	if m.ICache() != m.DCache() {
		t.Error("unified machine must expose one cache object")
	}
	// Data fills can displace instructions: a conflicting load evicts
	// the fetched line in the 4-KB direct-mapped unified cache.
	m.Ref(trace.Ref{Addr: 0x80002000 + 4096, Kind: trace.Load, Mode: trace.Kernel})
	before := m.Breakdown().Comp[CompICache]
	m.Ref(trace.Ref{Addr: 0x80002000, Kind: trace.IFetch, Mode: trace.Kernel})
	if m.Breakdown().Comp[CompICache] <= before/2 {
		t.Error("refetch after conflicting data fill should miss")
	}
}

func TestL2SoftensMisses(t *testing.T) {
	mkCfg := func(withL2 bool) Config {
		cfg := smallConfig()
		if withL2 {
			cfg.L2 = &cache.Config{CacheConfig: area.CacheConfig{CapacityBytes: 64 << 10, LineWords: 4, Assoc: 2}, WriteAllocate: true}
			cfg.L2HitCycles = 3
		}
		return cfg
	}
	// Walk 16 KB of code twice. The second pass misses the 4-KB L1
	// but hits the 64-KB L2; measure that pass alone (the cold pass is
	// actually *more* expensive with an L2, since misses probe both
	// levels).
	pass := func(m *Machine) float64 {
		start := m.Breakdown()
		startStall := start.Comp[CompICache] * float64(start.Instrs)
		for a := uint32(0); a < 16<<10; a += 16 {
			m.Ref(trace.Ref{Addr: 0x80000000 + a, Kind: trace.IFetch, Mode: trace.Kernel})
		}
		end := m.Breakdown()
		return end.Comp[CompICache]*float64(end.Instrs) - startStall
	}
	noL2 := New(mkCfg(false))
	withL2 := New(mkCfg(true))
	pass(noL2)
	pass(withL2)
	warmNo, warmWith := pass(noL2), pass(withL2)
	if warmWith >= warmNo {
		t.Errorf("L2 did not soften warm-pass misses: %.0f vs %.0f stall cycles", warmWith, warmNo)
	}
	if withL2.L2Cache() == nil || withL2.L2Cache().Stats().Accesses() == 0 {
		t.Error("L2 never probed")
	}
	if noL2.L2Cache() != nil {
		t.Error("machine without L2 exposes one")
	}
}

func TestNextLinePrefetch(t *testing.T) {
	cfg := smallConfig()
	cfg.IPrefetchNextLine = true
	m := New(cfg)
	// Sequential one-touch walk: with next-line prefetch, roughly every
	// other line's demand fetch hits.
	for a := uint32(0); a < 32<<10; a += 4 {
		m.Ref(trace.Ref{Addr: 0x80000000 + a, Kind: trace.IFetch, Mode: trace.Kernel})
	}
	base := New(smallConfig())
	for a := uint32(0); a < 32<<10; a += 4 {
		base.Ref(trace.Ref{Addr: 0x80000000 + a, Kind: trace.IFetch, Mode: trace.Kernel})
	}
	if m.Breakdown().Comp[CompICache] >= base.Breakdown().Comp[CompICache]*0.7 {
		t.Errorf("prefetch CPI %.3f not well below base %.3f",
			m.Breakdown().Comp[CompICache], base.Breakdown().Comp[CompICache])
	}
}
