package machine

import (
	"testing"

	"onchip/internal/telemetry"
	"onchip/internal/trace"
)

// benchRefs builds a deterministic reference stream with the rough shape
// of a real workload: ~70% fetches walking a few code pages, ~20% loads
// and ~10% stores over a small heap, so every machine component (TLB,
// both caches, write buffer) is exercised.
func benchRefs(n int) []trace.Ref {
	refs := make([]trace.Ref, 0, n)
	var pc, heap uint32 = 0x0040_0000, 0x1000_0000
	for i := 0; len(refs) < n; i++ {
		pc += 4
		if i%512 == 0 {
			pc = 0x0040_0000 + uint32(i%8192)
		}
		refs = append(refs, trace.Ref{Kind: trace.IFetch, Addr: pc, ASID: 1, Mode: trace.User})
		switch i % 10 {
		case 3, 6:
			refs = append(refs, trace.Ref{Kind: trace.Load, Addr: heap + uint32(i%4096)&^3, ASID: 1, Mode: trace.User})
		case 9:
			refs = append(refs, trace.Ref{Kind: trace.Store, Addr: heap + uint32(i%2048)&^3, ASID: 1, Mode: trace.User})
		}
	}
	return refs[:n]
}

func benchMachine(b *testing.B, cfg Config) {
	refs := benchRefs(1 << 16)
	m := New(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Ref(refs[i&(len(refs)-1)])
	}
}

// BenchmarkMachineRefTelemetryOff measures the Ref hot path with no
// telemetry attached (the default); this is the guard benchmark for the
// ~zero-overhead-when-off guarantee.
func BenchmarkMachineRefTelemetryOff(b *testing.B) {
	benchMachine(b, DECstation3100())
}

// BenchmarkMachineRefTelemetryOn measures the same hot path with the
// full instrumentation attached: registry counters and histograms plus
// the Monster-style event ring.
func BenchmarkMachineRefTelemetryOn(b *testing.B) {
	cfg := DECstation3100()
	cfg.Metrics = telemetry.NewRegistry()
	cfg.Tracer = telemetry.NewTracer(telemetry.DefaultTracerDepth)
	benchMachine(b, cfg)
}
