package machine

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"onchip/internal/telemetry"
	"onchip/internal/trace"
)

// Telemetry must observe the machine, never perturb it: the same stream
// with and without instrumentation must produce identical timing, and
// the registry's counters must agree with the machine's own breakdown.
func TestTelemetryIsNonInvasive(t *testing.T) {
	refs := benchRefs(200_000)

	plain := New(DECstation3100())
	cfg := DECstation3100()
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(1024)
	cfg.Metrics = reg
	cfg.Tracer = tr
	instrumented := New(cfg)

	for _, r := range refs {
		plain.Ref(r)
		instrumented.Ref(r)
	}
	// End of the run loop: publish the batched instruction/cycle counts
	// so the snapshot below is exact, as the real run loops do.
	instrumented.FlushMetrics()

	if plain.Cycles() != instrumented.Cycles() || plain.Instructions() != instrumented.Instructions() {
		t.Fatalf("instrumentation changed timing: cycles %d vs %d, instrs %d vs %d",
			plain.Cycles(), instrumented.Cycles(), plain.Instructions(), instrumented.Instructions())
	}
	if pb, ib := plain.Breakdown(), instrumented.Breakdown(); pb != ib {
		t.Fatalf("instrumentation changed the breakdown: %v vs %v", pb, ib)
	}

	snap := map[string]telemetry.Metric{}
	for _, m := range reg.Snapshot() {
		snap[m.Name] = m
	}
	for c, name := range map[Component]string{
		CompTLB:    "machine.stall_cycles.tlb",
		CompICache: "machine.stall_cycles.icache",
		CompDCache: "machine.stall_cycles.dcache",
		CompWB:     "machine.stall_cycles.wbuf",
	} {
		if got := uint64(snap[name].Value); got != instrumented.stalls[c] {
			t.Errorf("%s = %d, want %d", name, got, instrumented.stalls[c])
		}
	}
	if got := uint64(snap["machine.instructions"].Value); got != instrumented.Instructions() {
		t.Errorf("machine.instructions = %d, want %d", got, instrumented.Instructions())
	}
	ics := instrumented.ICache().Stats()
	if got := uint64(snap["machine.icache.read_misses"].Value); got != ics.ReadMisses {
		t.Errorf("machine.icache.read_misses = %d, want %d", got, ics.ReadMisses)
	}
	// Every I-cache read miss shows up in the miss-cost histogram.
	if got := snap["machine.icache.miss_cost_cycles"].Count; got != ics.ReadMisses {
		t.Errorf("icache miss-cost histogram count = %d, want %d", got, ics.ReadMisses)
	}
	if tr.Total() == 0 {
		t.Error("tracer captured no events")
	}
}

func TestWriteTraceJSONL(t *testing.T) {
	cfg := DECstation3100()
	tr := telemetry.NewTracer(256)
	cfg.Tracer = tr
	m := New(cfg)
	for _, r := range benchRefs(50_000) {
		m.Ref(r)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != tr.Len() {
		t.Fatalf("dumped %d lines, tracer holds %d events", len(lines), tr.Len())
	}
	comps := map[string]bool{}
	for i, line := range lines {
		var obj struct {
			Type   string `json:"type"`
			Kind   string `json:"kind"`
			Comp   string `json:"comp"`
			Cycles uint32 `json:"cycles"`
		}
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d invalid JSON: %v", i, err)
		}
		if obj.Type != "event" || obj.Cycles == 0 {
			t.Fatalf("line %d: unexpected event %+v", i, obj)
		}
		switch obj.Kind {
		case trace.IFetch.String(), trace.Load.String(), trace.Store.String():
		default:
			t.Fatalf("line %d: unknown kind %q", i, obj.Kind)
		}
		comps[obj.Comp] = true
	}
	// The window holds only the newest events (TLB misses cluster at
	// cold start and age out), but the steady-state stream keeps
	// missing in the I-cache.
	if !comps["icache"] {
		t.Errorf("expected icache events in the window, got %v", comps)
	}
}
