package machine_test

// Integration tests binding the full stack: OS model -> binary trace
// file -> machine, and live-stream versus recorded-trace equivalence.

import (
	"bytes"
	"testing"

	"onchip/internal/machine"
	"onchip/internal/osmodel"
	"onchip/internal/trace"
	"onchip/internal/workload"
)

// A recorded trace driven through a machine must produce exactly the
// same breakdown as the live stream that produced it: the binary format
// is lossless for everything the simulators consume.
func TestRecordedTraceEquivalence(t *testing.T) {
	spec := workload.MPEGPlay()
	const refs = 150_000

	// Live run.
	live := machine.New(machine.DECstation3100())
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	osmodel.NewSystem(osmodel.Mach, spec).Generate(refs, trace.Tee{live, w})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	// Replay run.
	replay := machine.New(machine.DECstation3100())
	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n, err := r.Drain(replay)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("empty recorded trace")
	}

	lb, rb := live.Breakdown(), replay.Breakdown()
	if lb.Instrs != rb.Instrs {
		t.Fatalf("instrs: live %d, replay %d", lb.Instrs, rb.Instrs)
	}
	for c := machine.CompTLB; c <= machine.CompWB; c++ {
		if lb.Comp[c] != rb.Comp[c] {
			t.Errorf("%v: live %.6f, replay %.6f", c, lb.Comp[c], rb.Comp[c])
		}
	}
}

// Two machines fed the same stream through a Tee must agree exactly
// (simulators are deterministic and share no state).
func TestMachinesAreIndependent(t *testing.T) {
	a := machine.New(machine.DECstation3100())
	b := machine.New(machine.DECstation3100())
	osmodel.NewSystem(osmodel.Ultrix, workload.IOzone()).Generate(80_000, trace.Tee{a, b})
	if a.Breakdown() != b.Breakdown() {
		t.Errorf("teed machines diverged:\n%v\n%v", a.Breakdown(), b.Breakdown())
	}
}

// The whole suite must run end-to-end on the DECstation configuration
// without pathologies: CPI in a sane band, every component non-negative.
func TestSuiteEndToEnd(t *testing.T) {
	for _, spec := range workload.All() {
		for _, v := range []osmodel.Variant{osmodel.Ultrix, osmodel.Mach} {
			cfg := machine.DECstation3100()
			cfg.OtherCPI = spec.OtherCPI
			cfg.IsServerASID = osmodel.IsServerASID
			m := machine.New(cfg)
			osmodel.NewSystem(v, spec).Generate(120_000, m)
			b := m.Breakdown()
			if b.CPI < 1.0 || b.CPI > 6.0 {
				t.Errorf("%s/%v: CPI %.2f out of band", spec.Name, v, b.CPI)
			}
			for c, v2 := range b.Comp {
				if v2 < 0 {
					t.Errorf("%s/%v: component %d negative", spec.Name, v, c)
				}
			}
		}
	}
}
