// Package machine models the timing of a single-issue MIPS R2000-class
// processor (the DECstation 3100 of the paper's measurements): one
// instruction per cycle plus stalls from the I-cache, D-cache,
// software-managed TLB and write buffer, the same five CPI components
// that the paper's Monster hardware monitor attributes (Tables 3 and 4).
//
// The machine consumes a trace.Ref stream (implementing trace.Sink), so
// it can be driven directly by the osmodel behavioral simulator or by a
// recorded trace file.
package machine

import (
	"fmt"

	"io"

	"onchip/internal/area"
	"onchip/internal/cache"
	"onchip/internal/telemetry"
	"onchip/internal/tlb"
	"onchip/internal/trace"
	"onchip/internal/vm"
	"onchip/internal/wbuf"
)

// ClockHz is the DECstation 3100 clock rate (16.67 MHz), used to convert
// cycle counts to seconds.
const ClockHz = 16.67e6

// Component indexes the CPI stall categories.
type Component uint8

const (
	// CompTLB is TLB miss handling time.
	CompTLB Component = iota
	// CompICache is instruction-cache refill time.
	CompICache
	// CompDCache is data-cache refill time (loads; stores are
	// write-through and absorbed by the write buffer).
	CompDCache
	// CompWB is write-buffer-full stall time.
	CompWB
	// CompOther is non-memory stall time (integer and floating-point
	// interlocks), modeled as a per-instruction density supplied by the
	// workload.
	CompOther
	nComponents
)

func (c Component) String() string {
	names := [...]string{"TLB", "I-cache", "D-cache", "Write Buffer", "Other"}
	if int(c) < len(names) {
		return names[c]
	}
	return fmt.Sprintf("Component(%d)", uint8(c))
}

// Config assembles a machine.
type Config struct {
	ICache cache.Config
	DCache cache.Config
	TLB    tlb.Config
	// TLBCosts defaults to tlb.DefaultCosts() when left zero.
	TLBCosts tlb.CostModel
	WB       wbuf.Config
	// OtherCPI is the interlock stall density charged per user-mode
	// application instruction (server and kernel instructions are
	// integer-dominated and charged none).
	OtherCPI float64
	// IsServerASID identifies user-level OS server address spaces
	// (excluded from OtherCPI). Nil means no servers.
	IsServerASID func(asid uint8) bool
	// UncachedLoadCycles is the penalty of a load from the uncached
	// kseg1 segment. Zero selects 6.
	UncachedLoadCycles int
	// Unified selects a single cache for instructions and data (the
	// i486/PowerPC 601 style of Table 1): the ICache configuration
	// describes it and DCache is ignored. Instruction and data misses
	// are still attributed separately.
	Unified bool
	// L2, when non-nil, adds a unified second-level cache behind the
	// on-chip caches (the paper's section 5.4: "high-end systems will
	// provide more on-chip memory, but access times will probably
	// require that this be in a second-level cache"). Primary misses
	// that hit in the L2 pay L2HitCycles plus the line transfer instead
	// of the full memory penalty.
	L2 *cache.Config
	// L2HitCycles is the L2 access latency; zero selects 4.
	L2HitCycles int
	// IPrefetchNextLine enables sequential (next-line) prefetch into
	// the I-cache on a fetch miss -- the "pre-fetching units, streaming
	// buffers" of the paper's section 6, and the natural alternative to
	// the long cache lines Mach favors. The prefetched line fills in
	// the shadow of the demand miss and costs no extra stall.
	IPrefetchNextLine bool
	// Metrics, when non-nil, registers the machine's telemetry: per-
	// component stall counters, per-stream miss-cost histograms, a
	// write-buffer depth gauge, and the cache/TLB/write-buffer counter
	// sets under the "machine." prefix. Nil (the default) costs the hot
	// path nothing beyond inlined nil checks.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, records every stall charge (reference kind,
	// address, component, cycles) into the bounded event ring -- the
	// reproduction of Monster's logic-analyzer capture window.
	Tracer *telemetry.Tracer
}

// Costs returns the effective TLB cost model.
func (c Config) Costs() tlb.CostModel {
	if c.TLBCosts == (tlb.CostModel{}) {
		return tlb.DefaultCosts()
	}
	return c.TLBCosts
}

// DECstation3100 returns the validation configuration of the paper's
// measurement platform: 64-KB direct-mapped off-chip I- and D-caches
// with one-word lines, a 64-entry fully-associative TLB, and a 4-entry
// write buffer.
func DECstation3100() Config {
	// With one-word lines, write allocation is free (a store writes the
	// whole line), and the 3100 allocates on writes.
	return Config{
		ICache: cache.Config{CacheConfig: area.CacheConfig{CapacityBytes: 64 << 10, LineWords: 1, Assoc: 1}},
		DCache: cache.Config{CacheConfig: area.CacheConfig{CapacityBytes: 64 << 10, LineWords: 1, Assoc: 1}, WriteAllocate: true},
		TLB:    tlb.R2000(),
		WB:     wbuf.DECstation3100(),
	}
}

// Machine is the timing simulator.
type Machine struct {
	cfg Config
	ic  *cache.Cache
	dc  *cache.Cache
	tlb *tlb.Managed
	wb  *wbuf.Buffer

	cycles uint64
	instrs uint64
	stalls [nComponents]uint64
	// otherStall accumulates fractional interlock cycles.
	otherStall float64

	uncachedLoad uint64
	l2           *cache.Cache
	l2Hit        uint64

	// Telemetry. All nil (no-op) unless Config.Metrics/Tracer are set.
	stallC     [nComponents]*telemetry.Counter
	instrC     *telemetry.Counter
	cycleC     *telemetry.Counter
	pendInstrs uint64 // counts batched locally, pushed every
	pendCycles uint64 // counterFlushBatch refs (see Ref/FlushMetrics)
	pendRefs   uint32
	iMissHist  *telemetry.Histogram
	dMissHist  *telemetry.Histogram
	wbDepth    *telemetry.Gauge
	tracer     *telemetry.Tracer
	cur        trace.Ref // reference being simulated, for event attribution
}

// New assembles a machine; it panics on invalid component configs.
// Callers holding untrusted configurations (design-space sweeps, flag
// parsing) should use NewE and degrade gracefully instead.
func New(cfg Config) *Machine {
	m, err := NewE(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// NewE assembles a machine, returning an error on an invalid component
// configuration instead of panicking.
func NewE(cfg Config) (*Machine, error) {
	ic, err := cache.NewE(cfg.ICache)
	if err != nil {
		return nil, fmt.Errorf("machine: I-cache: %w", err)
	}
	mtlb, err := tlb.NewManagedE(cfg.TLB, cfg.Costs())
	if err != nil {
		return nil, fmt.Errorf("machine: TLB: %w", err)
	}
	wb, err := wbuf.NewE(cfg.WB)
	if err != nil {
		return nil, fmt.Errorf("machine: write buffer: %w", err)
	}
	m := &Machine{
		cfg: cfg,
		ic:  ic,
		tlb: mtlb,
		wb:  wb,
	}
	if cfg.Unified {
		// One physical array serves both streams; miss penalties for
		// the data side use the same line length.
		m.dc = m.ic
		m.cfg.DCache = cfg.ICache
	} else {
		if m.dc, err = cache.NewE(cfg.DCache); err != nil {
			return nil, fmt.Errorf("machine: D-cache: %w", err)
		}
	}
	if cfg.L2 != nil {
		if m.l2, err = cache.NewE(*cfg.L2); err != nil {
			return nil, fmt.Errorf("machine: L2: %w", err)
		}
		if m.l2Hit = uint64(cfg.L2HitCycles); m.l2Hit == 0 {
			m.l2Hit = 4
		}
	}
	if m.uncachedLoad = uint64(cfg.UncachedLoadCycles); m.uncachedLoad == 0 {
		m.uncachedLoad = 6
	}
	m.tracer = cfg.Tracer
	if reg := cfg.Metrics; reg != nil {
		// Other is a fractional per-instruction density, not whole
		// cycles; publish it pull-style instead of as a counter.
		for c := CompTLB; c < CompOther; c++ {
			m.stallC[c] = reg.Counter("machine.stall_cycles."+c.slug(),
				"stall cycles charged to "+c.String())
		}
		reg.GaugeFunc("machine.stall_cycles.other", "interlock stall cycles (fractional)",
			func() float64 { return m.otherStall })
		m.iMissHist = reg.Histogram("machine.icache.miss_cost_cycles", "per-miss fill cost, instruction stream")
		m.dMissHist = reg.Histogram("machine.dcache.miss_cost_cycles", "per-miss fill cost, data stream")
		m.wbDepth = reg.Gauge("machine.wbuf.depth", "write-buffer entries queued after each store")
		m.ic.Describe(reg, "machine.icache")
		if !cfg.Unified {
			m.dc.Describe(reg, "machine.dcache")
		}
		if m.l2 != nil {
			m.l2.Describe(reg, "machine.l2")
		}
		m.tlb.Describe(reg, "machine.tlb")
		m.wb.Describe(reg, "machine.wbuf")
		// Instructions and cycles are push-style (unlike the component
		// stats above) so a live /metrics scrape mid-run reads them
		// without racing the simulation loop; Ref batches the pushes
		// and FlushMetrics makes the totals exact at run end.
		m.instrC = reg.Counter("machine.instructions", "instructions retired")
		m.cycleC = reg.Counter("machine.cycles", "machine cycles")
	}
	return m, nil
}

// slug returns the component's lower-case metric-name form.
func (c Component) slug() string {
	switch c {
	case CompTLB:
		return "tlb"
	case CompICache:
		return "icache"
	case CompDCache:
		return "dcache"
	case CompWB:
		return "wbuf"
	default:
		return "other"
	}
}

// event records one stall charge into the tracer; a nil tracer makes
// this an inlined nil check.
func (m *Machine) event(c Component, cycles uint64) {
	if m.tracer == nil {
		return
	}
	m.tracer.Record(telemetry.Event{
		Kind:   uint8(m.cur.Kind),
		Addr:   m.cur.Addr,
		ASID:   m.cur.ASID,
		Comp:   uint8(c),
		Cycles: uint32(cycles),
	})
}

// KindName translates a telemetry.Event Kind code into the trace
// package's reference-kind name, for event dumps and live event tails.
func KindName(k uint8) string { return trace.Kind(k).String() }

// CompName translates a telemetry.Event Comp code into the component's
// metric-slug name, for event dumps and live event tails.
func CompName(c uint8) string { return Component(c).slug() }

// WriteTrace dumps a tracer's captured event window as JSONL with this
// package's component names and the trace package's reference kinds.
func WriteTrace(w io.Writer, t *telemetry.Tracer) error {
	return t.WriteJSONL(w, KindName, CompName)
}

// TLB exposes the managed TLB (for Tapeworm hookup).
func (m *Machine) TLB() *tlb.Managed { return m.tlb }

// ICache exposes the instruction cache simulator.
func (m *Machine) ICache() *cache.Cache { return m.ic }

// DCache exposes the data cache simulator.
func (m *Machine) DCache() *cache.Cache { return m.dc }

// Cycles returns total machine cycles (excluding the Other component,
// which is reporting-only and does not advance the clock).
func (m *Machine) Cycles() uint64 { return m.cycles }

// Instructions returns instructions retired.
func (m *Machine) Instructions() uint64 { return m.instrs }

// counterFlushBatch is how many references accumulate locally before
// the instruction/cycle totals are pushed into the shared (atomic)
// telemetry counters: small enough that a live scrape lags the
// simulation by microseconds, large enough that the atomic traffic
// vanishes from the per-reference cost.
const counterFlushBatch = 4096

// Ref implements trace.Sink: simulate one reference.
func (m *Machine) Ref(r trace.Ref) {
	if m.cycleC == nil {
		m.step(r)
		return
	}
	c0, i0 := m.cycles, m.instrs
	m.step(r)
	m.pendCycles += m.cycles - c0
	m.pendInstrs += m.instrs - i0
	if m.pendRefs++; m.pendRefs >= counterFlushBatch {
		m.FlushMetrics()
	}
}

// FlushMetrics publishes the batched instruction/cycle counts into the
// telemetry counters. The run loops that snapshot the registry call it
// after the last reference so end-of-run metrics are exact; it is a
// no-op with metrics off.
func (m *Machine) FlushMetrics() {
	if m.cycleC == nil {
		return
	}
	m.cycleC.Add(m.pendCycles)
	m.instrC.Add(m.pendInstrs)
	m.pendCycles, m.pendInstrs, m.pendRefs = 0, 0, 0
}

// step simulates one reference; Ref wraps it to mirror the cycle and
// instruction counts into the push-style telemetry counters when
// metrics are on.
func (m *Machine) step(r trace.Ref) {
	if m.tracer != nil {
		m.cur = r
	}
	// Address translation applies to every mapped reference.
	if stall := m.tlb.Translate(r.Addr, r.ASID); stall > 0 {
		m.cycles += stall
		m.stalls[CompTLB] += stall
		m.stallC[CompTLB].Add(stall)
		m.event(CompTLB, stall)
	}
	key := vm.CacheKey(r.Addr, r.ASID)
	switch r.Kind {
	case trace.IFetch:
		m.instrs++
		m.cycles++ // base CPI of 1
		if !m.ic.Access(key, false) {
			p := m.missCost(key, m.cfg.ICache.LineWords)
			m.cycles += p
			m.stalls[CompICache] += p
			m.stallC[CompICache].Add(p)
			m.iMissHist.Observe(p)
			m.event(CompICache, p)
			if m.cfg.IPrefetchNextLine {
				// Fill the next sequential line in the shadow of the
				// demand fill.
				next := key + uint64(m.cfg.ICache.LineWords*4)
				if !m.ic.Access(next, false) && m.l2 != nil {
					m.l2.Access(next, false)
				}
			}
		}
		if m.cfg.OtherCPI > 0 && r.Mode == trace.User &&
			(m.cfg.IsServerASID == nil || !m.cfg.IsServerASID(r.ASID)) {
			m.otherStall += m.cfg.OtherCPI
		}
	case trace.Load:
		if vm.SegmentOf(r.Addr) == vm.Kseg1 {
			// Uncached I/O-space load.
			m.cycles += m.uncachedLoad
			m.stalls[CompDCache] += m.uncachedLoad
			m.stallC[CompDCache].Add(m.uncachedLoad)
			m.event(CompDCache, m.uncachedLoad)
			return
		}
		hit, writeback := m.dc.AccessWB(key, false)
		if !hit {
			p := m.missCost(key, m.cfg.DCache.LineWords)
			m.cycles += p
			m.stalls[CompDCache] += p
			m.stallC[CompDCache].Add(p)
			m.dMissHist.Observe(p)
			m.event(CompDCache, p)
		}
		if writeback {
			m.lineWriteback()
		}
	case trace.Store:
		if vm.SegmentOf(r.Addr) == vm.Kseg1 {
			// Uncached store: straight to the write buffer.
			m.wbWrite()
			return
		}
		hit, writeback := m.dc.AccessWB(key, true)
		if m.cfg.DCache.WriteBack {
			// Write-back: a store miss fetches the line
			// (fetch-on-write); memory traffic happens only on dirty
			// evictions.
			if !hit {
				p := m.missCost(key, m.cfg.DCache.LineWords)
				m.cycles += p
				m.stalls[CompDCache] += p
				m.stallC[CompDCache].Add(p)
				m.dMissHist.Observe(p)
				m.event(CompDCache, p)
			}
			if writeback {
				m.lineWriteback()
			}
			return
		}
		// Write-through: every store goes to memory via the buffer.
		m.wbWrite()
	}
}

// missCost returns the stall for a primary miss: the full memory
// penalty, or the L2 latency plus line transfer when a second-level
// cache holds the line.
func (m *Machine) missCost(key uint64, lineWords int) uint64 {
	if m.l2 == nil {
		return uint64(cache.MissPenalty(lineWords))
	}
	if m.l2.Access(key, false) {
		return m.l2Hit + uint64(lineWords-1)
	}
	return uint64(cache.MissPenalty(m.cfg.L2.LineWords)) + uint64(lineWords-1)
}

// L2Cache exposes the second-level cache simulator (nil when absent).
func (m *Machine) L2Cache() *cache.Cache { return m.l2 }

// wbWrite pushes one word at the write buffer, charging any full-buffer
// stall.
func (m *Machine) wbWrite() {
	if stall := m.wb.Write(m.cycles); stall > 0 {
		m.cycles += stall
		m.stalls[CompWB] += stall
		m.stallC[CompWB].Add(stall)
		m.event(CompWB, stall)
	}
	if m.wbDepth != nil {
		m.wbDepth.Set(float64(m.wb.Depth()))
	}
}

// lineWriteback drains an evicted dirty line through the write buffer,
// one word per entry.
func (m *Machine) lineWriteback() {
	for w := 0; w < m.cfg.DCache.LineWords; w++ {
		m.wbWrite()
	}
}

// Breakdown is the Monster-style CPI decomposition: total CPI and the
// contribution of each stall category (Tables 3 and 4 of the paper).
type Breakdown struct {
	Instrs uint64
	CPI    float64
	Comp   [nComponents]float64
}

// Breakdown returns the current decomposition.
func (m *Machine) Breakdown() Breakdown {
	b := Breakdown{Instrs: m.instrs}
	if m.instrs == 0 {
		return b
	}
	n := float64(m.instrs)
	for c := CompTLB; c < CompOther; c++ {
		b.Comp[c] = float64(m.stalls[c]) / n
	}
	b.Comp[CompOther] = m.otherStall / n
	b.CPI = 1
	for _, v := range b.Comp {
		b.CPI += v
	}
	return b
}

// Pct returns component c's share of the CPI above 1.0, in percent.
func (b Breakdown) Pct(c Component) float64 {
	excess := b.CPI - 1
	if excess <= 0 {
		return 0
	}
	return 100 * b.Comp[c] / excess
}

// Seconds converts the stall cycles plus base cycles to seconds at the
// DECstation clock rate.
func (b Breakdown) Seconds() float64 {
	return b.CPI * float64(b.Instrs) / ClockHz
}

func (b Breakdown) String() string {
	return fmt.Sprintf("CPI %.2f  TLB %.2f (%.0f%%)  I$ %.2f (%.0f%%)  D$ %.2f (%.0f%%)  WB %.2f (%.0f%%)  Other %.2f (%.0f%%)",
		b.CPI,
		b.Comp[CompTLB], b.Pct(CompTLB),
		b.Comp[CompICache], b.Pct(CompICache),
		b.Comp[CompDCache], b.Pct(CompDCache),
		b.Comp[CompWB], b.Pct(CompWB),
		b.Comp[CompOther], b.Pct(CompOther))
}
