// Package report renders experiment results as plain-text tables and
// ASCII series, the output format of cmd/memalloc and the examples.
package report

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable starts a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	return s
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// Series is a labeled sequence of (x, y) points, rendered as an aligned
// listing plus an ASCII bar chart -- the textual stand-in for the
// paper's figures.
type Series struct {
	Label  string
	Points []Point
}

// Point is one (x, y) sample.
type Point struct {
	X string
	Y float64
}

// Chart renders one or more series sharing the same X axis.
func Chart(title, yLabel string, series ...Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	maxY := 0.0
	xw := 0
	for _, s := range series {
		for _, p := range s.Points {
			if p.Y > maxY {
				maxY = p.Y
			}
			if len(p.X) > xw {
				xw = len(p.X)
			}
		}
	}
	const barWidth = 46
	for _, s := range series {
		fmt.Fprintf(&b, "  %s (%s)\n", s.Label, yLabel)
		for _, p := range s.Points {
			n := 0
			if maxY > 0 {
				n = int(p.Y / maxY * barWidth)
			}
			fmt.Fprintf(&b, "    %-*s %10.4f |%s\n", xw, p.X, p.Y, strings.Repeat("#", n))
		}
	}
	return b.String()
}
