package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("Title", "Name", "Value")
	tab.Row("alpha", 1.5)
	tab.Row("a-much-longer-name", "x")
	out := tab.String()
	if !strings.Contains(out, "Title") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, separator, 2 rows -> 5? title+header+sep+2 rows = 5
		if len(lines) != 5 {
			t.Fatalf("got %d lines:\n%s", len(lines), out)
		}
	}
	// Columns aligned: the header and first row start "Value" at the
	// same offset.
	hdr := lines[1]
	if !strings.Contains(hdr, "Name") || !strings.Contains(hdr, "Value") {
		t.Errorf("header = %q", hdr)
	}
	col := strings.Index(hdr, "Value")
	row := lines[3]
	if len(row) <= col {
		t.Fatalf("row too short: %q", row)
	}
}

func TestTableFloatsTrimmed(t *testing.T) {
	tab := NewTable("", "v")
	tab.Row(1.23456)
	if !strings.Contains(tab.String(), "1.235") {
		t.Errorf("float not formatted: %s", tab.String())
	}
}

func TestChartRendering(t *testing.T) {
	out := Chart("My Chart", "widgets",
		Series{Label: "a", Points: []Point{{X: "one", Y: 1}, {X: "two", Y: 2}}},
		Series{Label: "b", Points: []Point{{X: "one", Y: 4}}},
	)
	if !strings.Contains(out, "My Chart") || !strings.Contains(out, "a (widgets)") {
		t.Errorf("chart missing labels:\n%s", out)
	}
	// The max point gets the longest bar.
	lines := strings.Split(out, "\n")
	var barFor = func(x string, label string) int {
		inSeries := false
		for _, l := range lines {
			if strings.Contains(l, label+" (") {
				inSeries = true
				continue
			}
			if inSeries && strings.Contains(l, x) {
				return strings.Count(l, "#")
			}
		}
		return -1
	}
	if barFor("one", "b") <= barFor("two", "a") {
		t.Error("largest value should have the longest bar")
	}
}

func TestChartZeroSafe(t *testing.T) {
	out := Chart("empty", "y", Series{Label: "s", Points: []Point{{X: "x", Y: 0}}})
	if !strings.Contains(out, "0.0000") {
		t.Errorf("zero point not rendered: %s", out)
	}
}
