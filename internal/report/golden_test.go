package report_test

import (
	"strings"
	"testing"

	"onchip/internal/telemetry"
)

// The metrics sink feeds the standard table renderer; its output is part
// of the tool surface (users diff runs), so it must be byte-stable. This
// test pins one registry snapshot rendered through telemetry.MetricsTable
// and through the JSONL sink against golden strings.
func goldenRegistry() *telemetry.Registry {
	reg := telemetry.NewRegistry()
	reg.Counter("machine.icache.reads", "load + fetch accesses").Add(123456)
	reg.Counter("machine.icache.read_misses", "load + fetch misses").Add(789)
	g := reg.Gauge("machine.wbuf.depth", "pending write-buffer entries")
	g.Set(3)
	g.Set(2)
	h := reg.Histogram("machine.dcache.miss_cost_cycles", "per-miss fill cost")
	for _, v := range []uint64{6, 6, 14} {
		h.Observe(v)
	}
	return reg
}

const goldenTable = "telemetry snapshot\n" +
	"Metric                           Type       Value   Detail      \n" +
	"-------------------------------  ---------  ------  ------------\n" +
	"machine.dcache.miss_cost_cycles  histogram  26      n=3 mean=8.7\n" +
	"machine.icache.read_misses       counter    789                 \n" +
	"machine.icache.reads             counter    123456              \n" +
	"machine.wbuf.depth               gauge      2       max 3       \n"

func TestMetricsTableGolden(t *testing.T) {
	got := telemetry.MetricsTable("telemetry snapshot", goldenRegistry().Snapshot())
	if got != goldenTable {
		t.Errorf("MetricsTable output drifted from golden:\ngot:\n%q\nwant:\n%q", got, goldenTable)
	}
}

const goldenJSONL = `{"type":"manifest","command":"memalloc","args":["table6"],"start":"1994-04-18T09:00:00Z","go_version":"go0.0"}
{"name":"machine.dcache.miss_cost_cycles","type":"histogram","help":"per-miss fill cost","value":8.666666666666666,"count":3,"sum":26,"buckets":[{"lo":4,"hi":7,"count":2},{"lo":8,"hi":15,"count":1}]}
{"name":"machine.icache.read_misses","type":"counter","help":"load + fetch misses","value":789}
{"name":"machine.icache.reads","type":"counter","help":"load + fetch accesses","value":123456}
{"name":"machine.wbuf.depth","type":"gauge","help":"pending write-buffer entries","value":2,"max":3}
`

func TestWriteJSONLGolden(t *testing.T) {
	// The manifest is pinned (a real run stamps wall time and toolchain),
	// so the whole file is reproducible byte for byte.
	m := &telemetry.Manifest{
		Command:   "memalloc",
		Args:      []string{"table6"},
		Start:     "1994-04-18T09:00:00Z",
		GoVersion: "go0.0",
	}
	var b strings.Builder
	if err := telemetry.WriteJSONL(&b, m, goldenRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if b.String() != goldenJSONL {
		t.Errorf("WriteJSONL output drifted from golden:\ngot:\n%q\nwant:\n%q", b.String(), goldenJSONL)
	}
}
