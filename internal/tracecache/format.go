// Package tracecache caches generated reference streams on disk so a
// repeat sweep never pays for generation twice. Entries are
// content-addressed -- the filename is an FNV-64a hash over the
// workload, OS model, seed, reference count, and format version, in
// the style of search's checkpoint space signature -- so a stale entry
// is simply never looked up, and a changed model re-keys rather than
// corrupts.
//
// The on-disk format ("OCTC") compresses aggressively because traces
// are overwhelmingly sequential: records carry zig-zag varint address
// deltas against two per-block chains (one for instruction fetches,
// one for data accesses), a packed kind/mode flag byte, and an ASID
// byte only when the address space changes. Payloads are framed in
// length-prefixed CRC32 blocks like internal/tsdb, so truncation and
// bit rot are detected per block; a corrupt entry is reported as
// ErrCorrupt and the caller falls back to live generation.
package tracecache

import (
	"encoding/binary"
	"errors"
	"fmt"

	"onchip/internal/trace"
)

// FormatVersion is baked into both the content-address hash and the
// entry header: bumping it orphans (never misreads) old entries.
const FormatVersion = 1

// ErrCorrupt wraps every decode failure: CRC mismatch, truncated
// block, invalid record, or count mismatch. Callers match it with
// errors.Is and regenerate.
var ErrCorrupt = errors.New("tracecache: corrupt entry")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Record flag byte: bits 0-1 kind, bit 2 mode, bit 3 "ASID byte
// follows"; higher bits must be zero.
const (
	flagKindMask = 0x03
	flagKernel   = 0x04
	flagASID     = 0x08
	flagValid    = 0x0f
)

// refCodec holds the per-block delta state. Chains reset at every
// block boundary so blocks decode independently and a corrupt block
// cannot silently skew its successors' addresses.
type refCodec struct {
	// prev[0] chains instruction-fetch addresses (the PC walks
	// sequentially); prev[1] chains data addresses.
	prev     [2]uint32
	prevASID uint8
}

// appendRef encodes r onto buf.
func (c *refCodec) appendRef(buf []byte, r trace.Ref) []byte {
	cls := 0
	if r.Kind != trace.IFetch {
		cls = 1
	}
	flag := byte(r.Kind) & flagKindMask
	if r.Mode == trace.Kernel {
		flag |= flagKernel
	}
	if r.ASID != c.prevASID {
		flag |= flagASID
	}
	buf = append(buf, flag)
	if r.ASID != c.prevASID {
		buf = append(buf, r.ASID)
		c.prevASID = r.ASID
	}
	buf = binary.AppendVarint(buf, int64(int32(r.Addr-c.prev[cls])))
	c.prev[cls] = r.Addr
	return buf
}

// decodeRef decodes one record, returning the remaining payload.
func (c *refCodec) decodeRef(payload []byte) (trace.Ref, []byte, error) {
	if len(payload) == 0 {
		return trace.Ref{}, nil, corruptf("record truncated")
	}
	flag := payload[0]
	payload = payload[1:]
	if flag&^byte(flagValid) != 0 || flag&flagKindMask > byte(trace.Store) {
		return trace.Ref{}, nil, corruptf("invalid record flag %#02x", flag)
	}
	r := trace.Ref{Kind: trace.Kind(flag & flagKindMask), ASID: c.prevASID}
	if flag&flagKernel != 0 {
		r.Mode = trace.Kernel
	}
	if flag&flagASID != 0 {
		if len(payload) == 0 {
			return trace.Ref{}, nil, corruptf("record truncated in ASID")
		}
		r.ASID = payload[0]
		c.prevASID = payload[0]
		payload = payload[1:]
	}
	delta, n := binary.Varint(payload)
	if n <= 0 {
		return trace.Ref{}, nil, corruptf("record truncated in address delta")
	}
	payload = payload[n:]
	cls := 0
	if r.Kind != trace.IFetch {
		cls = 1
	}
	r.Addr = c.prev[cls] + uint32(delta)
	c.prev[cls] = r.Addr
	return r, payload, nil
}

// Control payloads (record count zero) separate and terminate the
// record stream.
const (
	markSegment = 0 // segment boundary: replay pauses here
	markEnd     = 1 // end of entry, followed by total refs and segment count
)

// encodeRecords compresses refs into one block payload: a uvarint
// record count followed by the records, delta chains starting fresh.
func encodeRecords(dst []byte, refs []trace.Ref) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(refs)))
	var c refCodec
	for _, r := range refs {
		dst = c.appendRef(dst, r)
	}
	return dst
}

// control describes a decoded control payload.
type control struct {
	mark     uint64
	total    uint64 // markEnd: refs across all segments
	segments uint64 // markEnd: segment count
}

// decodePayload decodes one block payload into out (appending), or
// returns the control marker for a zero-count payload.
func decodePayload(payload []byte, out []trace.Ref) ([]trace.Ref, *control, error) {
	n, sz := binary.Uvarint(payload)
	if sz <= 0 {
		return out, nil, corruptf("payload truncated in record count")
	}
	payload = payload[sz:]
	if n == 0 {
		ctl := &control{}
		ctl.mark, sz = binary.Uvarint(payload)
		if sz <= 0 {
			return out, nil, corruptf("control payload truncated")
		}
		payload = payload[sz:]
		switch ctl.mark {
		case markSegment:
		case markEnd:
			ctl.total, sz = binary.Uvarint(payload)
			if sz <= 0 {
				return out, nil, corruptf("end marker truncated in total")
			}
			payload = payload[sz:]
			ctl.segments, sz = binary.Uvarint(payload)
			if sz <= 0 {
				return out, nil, corruptf("end marker truncated in segments")
			}
			payload = payload[sz:]
		default:
			return out, nil, corruptf("unknown control marker %d", ctl.mark)
		}
		if len(payload) != 0 {
			return out, nil, corruptf("%d trailing bytes after control", len(payload))
		}
		return out, ctl, nil
	}
	var c refCodec
	for i := uint64(0); i < n; i++ {
		r, rest, err := c.decodeRef(payload)
		if err != nil {
			return out, nil, err
		}
		payload = rest
		out = append(out, r)
	}
	if len(payload) != 0 {
		return out, nil, corruptf("%d trailing bytes after records", len(payload))
	}
	return out, nil, nil
}
