package tracecache

import (
	"context"
	"errors"
	"os"
	"testing"

	"onchip/internal/trace"
)

// FuzzTraceCacheRoundTrip attacks the varint codec from both sides.
// Forward: references derived from the fuzz input must survive an
// encode/decode round trip byte-identically. Backward: the input
// interpreted as a raw entry body must never panic the decoder and
// must either replay cleanly or fail with ErrCorrupt -- wrong data is
// the one unacceptable outcome, and the forward check is what rules it
// out for reachable encodings.
func FuzzTraceCacheRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add([]byte{0, 1, 0, 1})
	f.Add([]byte{3, 0x00, 0x08, 0x04, 0x0b, 7, 0x02, 0x01, 0x06})
	f.Add(encodeRecords(nil, []trace.Ref{
		{Addr: 0x00400000, ASID: 1, Kind: trace.IFetch, Mode: trace.User},
		{Addr: 0x10008000, ASID: 1, Kind: trace.Load, Mode: trace.User},
		{Addr: 0xc0000000, ASID: 0, Kind: trace.Store, Mode: trace.Kernel},
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Forward: shape the input into a reference stream (4 bytes per
		// ref) and round-trip it through the block codec.
		var refs []trace.Ref
		for i := 0; i+4 <= len(data) && len(refs) < 4096; i += 4 {
			refs = append(refs, trace.Ref{
				Addr: uint32(data[i])<<24 | uint32(data[i+1])<<16 | uint32(data[i+2])<<8 | uint32(data[i+3]),
				ASID: data[i+1],
				Kind: trace.Kind(data[i+2] % 3),
				Mode: trace.Mode(data[i+3] % 2),
			})
		}
		// (A zero-count payload is a control block by definition; the
		// writer never frames an empty record block.)
		if len(refs) > 0 {
			payload := encodeRecords(nil, refs)
			got, ctl, err := decodePayload(payload, nil)
			if err != nil || ctl != nil {
				t.Fatalf("round trip of %d refs failed: ctl=%v err=%v", len(refs), ctl, err)
			}
			if len(got) != len(refs) {
				t.Fatalf("round trip: %d refs, want %d", len(got), len(refs))
			}
			for i := range refs {
				if got[i] != refs[i] {
					t.Fatalf("round trip: ref %d = %+v, want %+v", i, got[i], refs[i])
				}
			}
		}

		// Backward: the raw input as a block payload must decode without
		// panicking, and any refs it does yield must be well-formed.
		if out, _, err := decodePayload(data, nil); err == nil {
			for _, r := range out {
				if r.Kind > trace.Store || r.Mode > trace.Kernel {
					t.Fatalf("decoder returned malformed ref: %+v", r)
				}
			}
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("decode error does not match ErrCorrupt: %v", err)
		}

		// And as a whole entry body behind a valid header: replay must
		// terminate with either a clean end or ErrCorrupt.
		dir := t.TempDir()
		c, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		k := Key{Workload: "fuzz", OS: "Mach", Seed: 1, Refs: len(refs), Model: "m"}
		if err := os.WriteFile(c.path(k), append([]byte(c.header(k)), data...), 0o644); err != nil {
			t.Fatal(err)
		}
		e := c.OpenEntry(k)
		if e == nil {
			t.Fatal("entry with valid header missed")
		}
		defer e.Close()
		for seg := 0; seg < 64; seg++ {
			_, last, err := e.ReplaySegment(context.Background(), trace.Discard)
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("replay error does not match ErrCorrupt: %v", err)
				}
				return
			}
			if last {
				return
			}
		}
		t.Fatal("runaway segment loop")
	})
}
