package tracecache

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"onchip/internal/telemetry"
	"onchip/internal/trace"
)

// Key identifies one cached reference stream. Every field participates
// in the content address, so any change to the generating model
// produces a different filename and the stale entry is simply never
// found.
type Key struct {
	// Workload and OS name the generator configuration for the header
	// line; Seed and Refs pin the stream.
	Workload string
	OS       string
	Seed     uint64
	Refs     int
	// Model is a full fingerprint of the generating parameters beyond
	// the seed (e.g. fmt.Sprintf("%+v", spec) for a workload spec):
	// tuning a mix re-keys the entry even at an unchanged seed.
	Model string
}

// hash is the content address: FNV-64a over the format version and
// every key field, NUL-separated (the same signature idiom as search's
// checkpoint space hash).
func (k Key) hash() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "octc/%d\x00%s\x00%s\x00%d\x00%d\x00%s",
		FormatVersion, k.Workload, k.OS, k.Seed, k.Refs, k.Model)
	return h.Sum64()
}

// Cache is a directory of compressed trace entries. The zero value is
// unusable; Open creates the directory. All counters are nil until
// Describe attaches a registry (the nil instruments are no-ops).
type Cache struct {
	dir string

	hits    *telemetry.Counter
	misses  *telemetry.Counter
	corrupt *telemetry.Counter
	bytes   *telemetry.Counter

	// Corrupt-event plumbing: a sliding window of event times backs the
	// corrupt-rate gauge (a counter alone cannot distinguish "one bad
	// entry a week ago" from "the disk is dying right now"), and the
	// hook plus log writer let operators and circuit breakers see each
	// event with the content address it hit.
	corruptMu    sync.Mutex
	corruptTimes []time.Time
	onCorrupt    func(addr string, err error)
	logw         io.Writer

	// readWrap, when non-nil, wraps every entry's file reader --
	// the fault-injection seam the chaos harness uses to exercise the
	// corrupt-fallback and breaker paths against real decode machinery.
	readWrap func(io.Reader) io.Reader
}

// corruptRateWindow is the sliding window the corrupt-rate gauge
// averages over.
const corruptRateWindow = time.Minute

// Open returns a cache rooted at dir, creating it if needed.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tracecache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// Describe registers the cache's telemetry counters, plus the
// corrupt-event rate: events per second averaged over the last minute,
// so a scrape distinguishes an ongoing disk problem from stale history.
func (c *Cache) Describe(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c.hits = reg.Counter("tracecache.hit", "trace cache lookups served from disk")
	c.misses = reg.Counter("tracecache.miss", "trace cache lookups that fell back to generation")
	c.corrupt = reg.Counter("tracecache.corrupt", "trace cache entries rejected as corrupt")
	c.bytes = reg.Counter("tracecache.bytes", "compressed bytes committed to the trace cache")
	reg.GaugeFunc("tracecache.corrupt_rate",
		"corrupt-entry events per second over the last minute",
		func() float64 { return c.CorruptRate(time.Now()) })
}

// CorruptRate reports corrupt-entry events per second over the window
// ending at now.
func (c *Cache) CorruptRate(now time.Time) float64 {
	c.corruptMu.Lock()
	defer c.corruptMu.Unlock()
	c.pruneCorruptLocked(now)
	return float64(len(c.corruptTimes)) / corruptRateWindow.Seconds()
}

// pruneCorruptLocked drops window-expired events; corruptMu held.
func (c *Cache) pruneCorruptLocked(now time.Time) {
	cut := now.Add(-corruptRateWindow)
	i := 0
	for i < len(c.corruptTimes) && c.corruptTimes[i].Before(cut) {
		i++
	}
	c.corruptTimes = c.corruptTimes[i:]
}

// OnCorrupt installs a hook invoked on every corrupt-entry event with
// the entry's content address and the decode error. The advisor's
// circuit breaker installs itself here. Call before serving traffic;
// the hook may fire from any goroutine replaying an entry.
func (c *Cache) OnCorrupt(fn func(addr string, err error)) { c.onCorrupt = fn }

// SetLogWriter directs one operator-facing log line per corrupt-entry
// event (naming the content address, so disk-level errors can be
// correlated) to w. Nil disables logging, the default.
func (c *Cache) SetLogWriter(w io.Writer) { c.logw = w }

// SetReadWrapper wraps every subsequently-opened entry's underlying
// file reader -- the seam deterministic fault injection uses
// (inj.Reader / inj.ReaderContext) to exercise the corrupt-fallback
// path against the real decoder. Production callers leave it unset.
func (c *Cache) SetReadWrapper(wrap func(io.Reader) io.Reader) { c.readWrap = wrap }

// noteCorrupt records one corrupt-entry event against addr: counter,
// rate window, operator log line, and the OnCorrupt hook.
func (c *Cache) noteCorrupt(addr string, err error) {
	c.corrupt.Inc()
	now := time.Now()
	c.corruptMu.Lock()
	c.pruneCorruptLocked(now)
	c.corruptTimes = append(c.corruptTimes, now)
	c.corruptMu.Unlock()
	if c.logw != nil {
		fmt.Fprintf(c.logw, "tracecache: corrupt entry %s: %v\n", addr, err)
	}
	if c.onCorrupt != nil {
		c.onCorrupt(addr, err)
	}
}

// Evict removes k's entry from the cache, logging the content address
// so operators can correlate evictions with disk issues. The fallback
// path calls it after a corrupt replay: regeneration will re-record
// the entry, and in the meantime no other run trips over the bad
// bytes. Missing entries are a no-op.
func (c *Cache) Evict(k Key) {
	addr := fmt.Sprintf("%016x", k.hash())
	if err := os.Remove(c.path(k)); err != nil {
		if !os.IsNotExist(err) && c.logw != nil {
			fmt.Fprintf(c.logw, "tracecache: evicting %s: %v\n", addr, err)
		}
		return
	}
	if c.logw != nil {
		fmt.Fprintf(c.logw, "tracecache: evicted corrupt entry %s (workload %s, %s, seed=%d, refs=%d)\n",
			addr, k.Workload, k.OS, k.Seed, k.Refs)
	}
}

func (c *Cache) path(k Key) string {
	return filepath.Join(c.dir, fmt.Sprintf("%016x.octc", k.hash()))
}

// header returns the entry's one-line header. Only the version and
// hash gate reads; the rest makes entries greppable on disk.
func (c *Cache) header(k Key) string {
	return fmt.Sprintf("OCTC %d %016x %s %s seed=%d refs=%d\n",
		FormatVersion, k.hash(), k.Workload, k.OS, k.Seed, k.Refs)
}

// OpenEntry looks k up, returning nil on a miss. A present-but-corrupt
// header counts as corrupt and reads as a miss; corruption past the
// header surfaces later as ErrCorrupt from ReplaySegment.
func (c *Cache) OpenEntry(k Key) *Entry {
	f, err := os.Open(c.path(k))
	if err != nil {
		c.misses.Inc()
		return nil
	}
	addr := fmt.Sprintf("%016x", k.hash())
	var r io.Reader = f
	if c.readWrap != nil {
		r = c.readWrap(r)
	}
	br := bufio.NewReaderSize(r, 1<<16)
	line, err := br.ReadString('\n')
	if err != nil || line != c.header(k) {
		f.Close()
		c.noteCorrupt(addr, corruptf("bad entry header"))
		c.misses.Inc()
		return nil
	}
	c.hits.Inc()
	return &Entry{c: c, f: f, br: br, addr: addr}
}

// Entry replays one cached stream, segment by segment, in the exact
// order it was recorded.
type Entry struct {
	c    *Cache
	f    *os.File
	br   *bufio.Reader
	addr string // content address, for corrupt-event reporting

	buf       []trace.Ref
	delivered uint64
	segments  uint64
	done      bool
}

// Close releases the entry's file.
func (e *Entry) Close() error { return e.f.Close() }

// ReplaySegment streams the next recorded segment into sink in batched
// stream order, returning the number of references delivered and
// whether the entry is exhausted (the final segment verifies the
// entry's total reference and segment counts). Any decode failure
// returns an error matching ErrCorrupt; the sink may then have seen a
// partial stream, so the caller must discard dependent state and
// regenerate.
func (e *Entry) ReplaySegment(ctx context.Context, sink trace.Sink) (uint64, bool, error) {
	if e.done {
		return 0, true, corruptf("replay past end of entry")
	}
	batched := trace.Batched(sink)
	var n uint64
	for {
		if err := ctx.Err(); err != nil {
			return n, false, err
		}
		payload, err := e.readBlock()
		if err != nil {
			e.c.noteCorrupt(e.addr, err)
			return n, false, err
		}
		refs, ctl, err := decodePayload(payload, e.buf[:0])
		if err != nil {
			e.c.noteCorrupt(e.addr, err)
			return n, false, err
		}
		e.buf = refs // keep the grown buffer for the next block
		if ctl == nil {
			n += uint64(len(refs))
			e.delivered += uint64(len(refs))
			batched.Refs(refs)
			continue
		}
		e.segments++
		if ctl.mark == markSegment {
			return n, false, nil
		}
		e.done = true
		if ctl.total != e.delivered || ctl.segments != e.segments {
			err := corruptf("entry totals %d refs/%d segments, recorded %d/%d",
				e.delivered, e.segments, ctl.total, ctl.segments)
			e.c.noteCorrupt(e.addr, err)
			return n, true, err
		}
		return n, true, nil
	}
}

// readBlock reads one length-prefixed, CRC-checked block payload.
func (e *Entry) readBlock() ([]byte, error) {
	size, err := binary.ReadUvarint(e.br)
	if err != nil {
		return nil, corruptf("block length: %v", err)
	}
	if size == 0 || size > maxBlockBytes {
		return nil, corruptf("implausible block size %d", size)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(e.br, crcBuf[:]); err != nil {
		return nil, corruptf("block checksum truncated")
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(e.br, payload); err != nil {
		return nil, corruptf("block payload truncated")
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crcBuf[:]) {
		return nil, corruptf("block checksum mismatch")
	}
	return payload, nil
}

// Block sizing: flush a block every blockRefs records. maxBlockBytes
// bounds a decoder's allocation for any claimed length (a record is at
// most 7 encoded bytes).
const (
	blockRefs     = 1 << 16
	maxBlockBytes = 8 * blockRefs
)

// Writer records a stream into the cache. It implements trace.Sink and
// trace.BatchSink, so it drops into a trace.Tee next to the simulators
// consuming the live generation. Nothing is visible under the content
// address until Commit's atomic rename; a writer abandoned without
// Commit leaves no entry.
type Writer struct {
	c   *Cache
	key Key

	f       *os.File
	bw      *bufio.Writer
	codec   refCodec
	payload []byte
	pending int // records in payload
	frame   []byte

	total    uint64
	segments uint64
	err      error
}

// NewWriter opens a recording for k, writing to a temporary sibling
// file until Commit.
func (c *Cache) NewWriter(k Key) (*Writer, error) {
	f, err := os.CreateTemp(c.dir, ".octc-*")
	if err != nil {
		return nil, fmt.Errorf("tracecache: %w", err)
	}
	w := &Writer{c: c, key: k, f: f, bw: bufio.NewWriterSize(f, 1<<16)}
	if _, err := w.bw.WriteString(c.header(k)); err != nil {
		w.Abort()
		return nil, fmt.Errorf("tracecache: %w", err)
	}
	return w, nil
}

// Ref implements trace.Sink.
func (w *Writer) Ref(r trace.Ref) {
	if w.pending == 0 {
		w.codec = refCodec{}
		w.payload = w.payload[:0]
	}
	w.payload = w.codec.appendRef(w.payload, r)
	w.pending++
	w.total++
	if w.pending >= blockRefs {
		w.flushBlock()
	}
}

// Refs implements trace.BatchSink.
func (w *Writer) Refs(refs []trace.Ref) {
	for _, r := range refs {
		w.Ref(r)
	}
}

// flushBlock frames and writes the pending payload.
func (w *Writer) flushBlock() {
	if w.pending == 0 {
		return
	}
	w.frame = binary.AppendUvarint(w.frame[:0], uint64(w.pending))
	w.frame = append(w.frame, w.payload...)
	w.writeFramed(w.frame)
	w.pending = 0
	w.payload = w.payload[:0]
}

// writeFramed writes one length-prefixed, CRC-protected block.
func (w *Writer) writeFramed(payload []byte) {
	if w.err != nil {
		return
	}
	var head [binary.MaxVarintLen64 + 4]byte
	n := binary.PutUvarint(head[:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(head[n:], crc32.ChecksumIEEE(payload))
	if _, err := w.bw.Write(head[:n+4]); err == nil {
		_, w.err = w.bw.Write(payload)
	} else {
		w.err = err
	}
}

// EndSegment marks a replay pause point (the sweep's warm-up/measure
// boundary): ReplaySegment returns once per recorded segment.
func (w *Writer) EndSegment() {
	w.flushBlock()
	var ctl [2]byte
	ctl[0] = 0 // record count
	ctl[1] = markSegment
	w.writeFramed(ctl[:])
	w.segments++
}

// Commit seals the final segment with the entry's totals and atomically
// renames the recording into its content address. The writer is spent
// afterwards.
func (w *Writer) Commit() error {
	w.flushBlock()
	ctl := []byte{0, markEnd}
	ctl = binary.AppendUvarint(ctl, w.total)
	ctl = binary.AppendUvarint(ctl, w.segments+1)
	w.writeFramed(ctl)
	if w.err == nil {
		w.err = w.bw.Flush()
	}
	if w.err == nil {
		w.err = w.f.Sync()
	}
	name := w.f.Name()
	if cerr := w.f.Close(); w.err == nil {
		w.err = cerr
	}
	if w.err != nil {
		os.Remove(name)
		return fmt.Errorf("tracecache: record %s: %w", w.key.Workload, w.err)
	}
	if fi, err := os.Stat(name); err == nil {
		w.c.bytes.Add(uint64(fi.Size()))
	}
	if err := os.Rename(name, w.c.path(w.key)); err != nil {
		os.Remove(name)
		return fmt.Errorf("tracecache: %w", err)
	}
	w.err = fmt.Errorf("tracecache: writer already committed")
	return nil
}

// Abort discards the recording, leaving no entry. Safe after Commit
// (it is then a no-op on the already-renamed file).
func (w *Writer) Abort() {
	name := w.f.Name()
	w.f.Close()
	os.Remove(name)
}
