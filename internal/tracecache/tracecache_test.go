package tracecache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"onchip/internal/faultinject"
	"onchip/internal/telemetry"
	"onchip/internal/trace"
)

func randRefs(rng *rand.Rand, n int) []trace.Ref {
	refs := make([]trace.Ref, 0, n)
	addr := uint32(rng.Intn(1 << 24))
	asid := uint8(rng.Intn(4))
	for len(refs) < n {
		switch rng.Intn(5) {
		case 0: // context switch
			asid = uint8(rng.Intn(64))
		case 1: // jump
			addr = uint32(rng.Uint64())
		}
		kind := trace.Kind(rng.Intn(3))
		mode := trace.User
		if rng.Intn(4) == 0 {
			mode = trace.Kernel
		}
		refs = append(refs, trace.Ref{Addr: addr, ASID: asid, Kind: kind, Mode: mode})
		addr += 4
	}
	return refs
}

func record(t *testing.T, c *Cache, k Key, segs [][]trace.Ref) {
	t.Helper()
	w, err := c.NewWriter(k)
	if err != nil {
		t.Fatal(err)
	}
	for i, seg := range segs {
		w.Refs(seg)
		if i < len(segs)-1 {
			w.EndSegment()
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
}

func replayAll(t *testing.T, e *Entry, want int) [][]trace.Ref {
	t.Helper()
	defer e.Close()
	var segs [][]trace.Ref
	for {
		var got []trace.Ref
		sink := trace.SinkFunc(func(r trace.Ref) { got = append(got, r) })
		n, last, err := e.ReplaySegment(context.Background(), sink)
		if err != nil {
			t.Fatalf("segment %d: %v", len(segs), err)
		}
		if n != uint64(len(got)) {
			t.Fatalf("segment %d: reported %d refs, delivered %d", len(segs), n, len(got))
		}
		segs = append(segs, got)
		if last {
			break
		}
	}
	if len(segs) != want {
		t.Fatalf("replayed %d segments, want %d", len(segs), want)
	}
	return segs
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	c.Describe(reg)
	k := Key{Workload: "mpeg_play", OS: "Mach", Seed: 0x9e6, Refs: 300_000, Model: "spec-v1"}

	// Three segments, the middle one spanning several blocks and the
	// last one empty -- the sweep's phase plan can produce all three.
	segs := [][]trace.Ref{randRefs(rng, 1000), randRefs(rng, 3*blockRefs/2), nil}
	record(t, c, k, segs)

	e := c.OpenEntry(k)
	if e == nil {
		t.Fatal("committed entry missed")
	}
	got := replayAll(t, e, len(segs))
	for i := range segs {
		if len(got[i]) != len(segs[i]) {
			t.Fatalf("segment %d: %d refs, want %d", i, len(got[i]), len(segs[i]))
		}
		for j := range segs[i] {
			if got[i][j] != segs[i][j] {
				t.Fatalf("segment %d ref %d: %+v, want %+v", i, j, got[i][j], segs[i][j])
			}
		}
	}
	if h, m := c.hits.Value(), c.misses.Value(); h != 1 || m != 0 {
		t.Errorf("hit/miss = %d/%d, want 1/0", h, m)
	}
	if c.bytes.Value() == 0 {
		t.Error("no bytes counted on commit")
	}
}

func TestMissAndKeySensitivity(t *testing.T) {
	c, _ := Open(t.TempDir())
	reg := telemetry.NewRegistry()
	c.Describe(reg)
	k := Key{Workload: "mab", OS: "Ultrix", Seed: 7, Refs: 10, Model: "m"}
	if c.OpenEntry(k) != nil {
		t.Fatal("hit on empty cache")
	}
	record(t, c, k, [][]trace.Ref{randRefs(rand.New(rand.NewSource(2)), 10)})
	for _, other := range []Key{
		{Workload: "mab2", OS: "Ultrix", Seed: 7, Refs: 10, Model: "m"},
		{Workload: "mab", OS: "Mach", Seed: 7, Refs: 10, Model: "m"},
		{Workload: "mab", OS: "Ultrix", Seed: 8, Refs: 10, Model: "m"},
		{Workload: "mab", OS: "Ultrix", Seed: 7, Refs: 11, Model: "m"},
		{Workload: "mab", OS: "Ultrix", Seed: 7, Refs: 10, Model: "m2"},
	} {
		if e := c.OpenEntry(other); e != nil {
			e.Close()
			t.Errorf("key %+v hit the entry for %+v", other, k)
		}
	}
	if e := c.OpenEntry(k); e == nil {
		t.Error("exact key missed")
	} else {
		e.Close()
	}
}

// TestCorruptFallsBack flips or truncates bytes all over a valid entry
// and demands every mutation either still replays the identical stream
// (bits outside any checked region -- impossible here, but the
// property is what matters) or fails with ErrCorrupt. Wrong data is
// the one unacceptable outcome.
func TestCorruptFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dir := t.TempDir()
	c, _ := Open(dir)
	k := Key{Workload: "w", OS: "Mach", Seed: 1, Refs: 5000, Model: "m"}
	orig := randRefs(rng, 5000)
	record(t, c, k, [][]trace.Ref{orig[:2000], orig[2000:]})
	path := c.path(k)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, mutated []byte) {
		t.Helper()
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		e := c.OpenEntry(k)
		if e == nil {
			return // header-level rejection: a clean miss
		}
		defer e.Close()
		var got []trace.Ref
		sink := trace.SinkFunc(func(r trace.Ref) { got = append(got, r) })
		for seg := 0; ; seg++ {
			_, last, err := e.ReplaySegment(context.Background(), sink)
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Errorf("%s: error does not match ErrCorrupt: %v", name, err)
				}
				return
			}
			if last {
				break
			}
			if seg > 10 {
				t.Errorf("%s: runaway segment loop", name)
				return
			}
		}
		if len(got) != len(orig) {
			t.Errorf("%s: clean replay of %d refs, want %d", name, len(got), len(orig))
			return
		}
		for i := range got {
			if got[i] != orig[i] {
				t.Errorf("%s: replay delivered wrong data at ref %d", name, i)
				return
			}
		}
	}

	for i := 0; i < 200; i++ {
		mutated := append([]byte(nil), data...)
		pos := rng.Intn(len(mutated))
		mutated[pos] ^= byte(1 + rng.Intn(255))
		check("bitflip", mutated)
	}
	for i := 0; i < 50; i++ {
		check("truncate", data[:rng.Intn(len(data))])
	}
	check("empty", nil)
}

func TestAbortLeavesNoEntry(t *testing.T) {
	dir := t.TempDir()
	c, _ := Open(dir)
	k := Key{Workload: "w", OS: "Mach", Seed: 1, Refs: 100, Model: "m"}
	w, err := c.NewWriter(k)
	if err != nil {
		t.Fatal(err)
	}
	w.Refs(randRefs(rand.New(rand.NewSource(4)), 100))
	w.Abort()
	if c.OpenEntry(k) != nil {
		t.Error("aborted recording is visible")
	}
	ents, _ := os.ReadDir(dir)
	for _, ent := range ents {
		t.Errorf("leftover file %s", filepath.Join(dir, ent.Name()))
	}
}

// Corrupt entries must surface as a rate (not just a cumulative
// counter), fire the OnCorrupt hook with the content address, and log
// one operator line naming that address.
func TestCorruptEventsSurfaceRateHookAndLog(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c, _ := Open(t.TempDir())
	reg := telemetry.NewRegistry()
	c.Describe(reg)
	var logbuf bytes.Buffer
	c.SetLogWriter(&logbuf)
	var hookAddrs []string
	c.OnCorrupt(func(addr string, err error) {
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("hook error %v does not match ErrCorrupt", err)
		}
		hookAddrs = append(hookAddrs, addr)
	})

	k := Key{Workload: "w", OS: "Mach", Seed: 1, Refs: 2000, Model: "m"}
	record(t, c, k, [][]trace.Ref{randRefs(rng, 2000)})
	addr := fmt.Sprintf("%016x", k.hash())

	// Flip one byte past the header so replay (not open) hits it.
	path := c.path(k)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	e := c.OpenEntry(k)
	if e == nil {
		t.Fatal("header should still verify")
	}
	for {
		_, last, err := e.ReplaySegment(context.Background(), trace.Discard)
		if err != nil || last {
			break
		}
	}
	e.Close()

	if len(hookAddrs) == 0 || hookAddrs[0] != addr {
		t.Errorf("OnCorrupt hook saw %v, want [%s ...]", hookAddrs, addr)
	}
	if rate := c.CorruptRate(time.Now()); rate <= 0 {
		t.Errorf("CorruptRate = %v after a corrupt event, want > 0", rate)
	}
	// And the window expires: an hour from now the rate is zero again.
	if rate := c.CorruptRate(time.Now().Add(time.Hour)); rate != 0 {
		t.Errorf("CorruptRate an hour later = %v, want 0", rate)
	}
	if !strings.Contains(logbuf.String(), addr) {
		t.Errorf("operator log %q does not name the content address %s", logbuf.String(), addr)
	}
	var found bool
	for _, m := range reg.Snapshot() {
		if m.Name == "tracecache.corrupt_rate" {
			found = true
		}
	}
	if !found {
		t.Error("tracecache.corrupt_rate gauge not registered")
	}
}

func TestEvictRemovesEntryAndLogsAddress(t *testing.T) {
	c, _ := Open(t.TempDir())
	var logbuf bytes.Buffer
	c.SetLogWriter(&logbuf)
	k := Key{Workload: "w", OS: "Mach", Seed: 2, Refs: 100, Model: "m"}
	record(t, c, k, [][]trace.Ref{randRefs(rand.New(rand.NewSource(7)), 100)})
	c.Evict(k)
	if e := c.OpenEntry(k); e != nil {
		e.Close()
		t.Fatal("entry still present after Evict")
	}
	addr := fmt.Sprintf("%016x", k.hash())
	if !strings.Contains(logbuf.String(), addr) {
		t.Errorf("evict log %q does not name the content address %s", logbuf.String(), addr)
	}
	// Evicting an absent entry is a quiet no-op.
	logbuf.Reset()
	c.Evict(k)
	if logbuf.Len() != 0 {
		t.Errorf("evicting a missing entry logged %q", logbuf.String())
	}
}

// The read wrapper is the fault-injection seam: injected transient
// errors and bit flips must surface as ErrCorrupt (with events
// recorded), never as wrong data.
func TestReadWrapperInjectsFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c, _ := Open(t.TempDir())
	k := Key{Workload: "w", OS: "Mach", Seed: 3, Refs: 5000, Model: "m"}
	orig := randRefs(rng, 5000)
	record(t, c, k, [][]trace.Ref{orig})

	inj := faultinject.New(faultinject.Config{Seed: 99, IOErrProb: 0.05, CorruptProb: 0.05})
	c.SetReadWrapper(inj.Reader)
	sawCorrupt := false
	for attempt := 0; attempt < 50 && !sawCorrupt; attempt++ {
		e := c.OpenEntry(k)
		if e == nil {
			sawCorrupt = true // header read faulted: a clean miss
			break
		}
		var got []trace.Ref
		sink := trace.SinkFunc(func(r trace.Ref) { got = append(got, r) })
		_, _, err := e.ReplaySegment(context.Background(), sink)
		e.Close()
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("fault surfaced as %v, not ErrCorrupt", err)
			}
			sawCorrupt = true
			break
		}
		for i := range got {
			if got[i] != orig[i] {
				t.Fatalf("injected fault delivered wrong data at ref %d", i)
			}
		}
	}
	if !sawCorrupt {
		t.Error("50 faulty replays at 10% combined fault rate never surfaced ErrCorrupt")
	}
}

func TestReplayCancellation(t *testing.T) {
	c, _ := Open(t.TempDir())
	k := Key{Workload: "w", OS: "Mach", Seed: 1, Refs: 1000, Model: "m"}
	record(t, c, k, [][]trace.Ref{randRefs(rand.New(rand.NewSource(5)), 1000)})
	e := c.OpenEntry(k)
	if e == nil {
		t.Fatal("miss")
	}
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := e.ReplaySegment(ctx, trace.Discard); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
