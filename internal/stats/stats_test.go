package stats

import (
	"math"
	"testing"
	"testing/quick"

	"onchip/internal/testutil"
)

func TestSampleMoments(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	testutil.WithinAbs(t, "Mean", s.Mean(), 5, 1e-12)
	// Population variance of this classic set is 4; unbiased sample
	// variance is 32/7.
	testutil.WithinAbs(t, "Variance", s.Variance(), 32.0/7.0, 1e-12)
	testutil.WithinAbs(t, "StdErr", s.StdErr(), s.StdDev()/math.Sqrt(8), 1e-12)
}

func TestSampleEmptyAndSingle(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Variance() != 0 || s.CI95() != 0 {
		t.Error("empty sample should be all zeros")
	}
	s.Add(3)
	if s.Mean() != 3 || s.Variance() != 0 {
		t.Error("single observation: mean 3, variance 0")
	}
}

func TestRelErr95(t *testing.T) {
	var s Sample
	for i := 0; i < 100; i++ {
		s.Add(10) // zero variance
	}
	if got := s.RelErr95(); got != 0 {
		t.Errorf("RelErr95 of constant sample = %g, want 0", got)
	}
}

func TestRelativeError(t *testing.T) {
	testutil.WithinAbs(t, "RelativeError(11,10)", RelativeError(11, 10), 0.1, 1e-12)
	if got := RelativeError(0, 0); got != 0 {
		t.Errorf("RelativeError(0,0) = %g", got)
	}
	if got := RelativeError(1, 0); !math.IsInf(got, 1) {
		t.Errorf("RelativeError(1,0) = %g, want +Inf", got)
	}
}

func TestMeanMedian(t *testing.T) {
	if Mean(nil) != 0 || Median(nil) != 0 {
		t.Error("empty slices should give 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %g", got)
	}
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("odd Median = %g", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even Median = %g", got)
	}
	// Median must not mutate its input.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Median mutated its input")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("Ratio with zero denominator should be 0")
	}
	if got := Ratio(3, 4); got != 0.75 {
		t.Errorf("Ratio = %g", got)
	}
}

// Property: streaming mean equals batch mean.
func TestSampleQuickMeanAgreesWithBatch(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		var s Sample
		for _, x := range clean {
			s.Add(x)
		}
		want := Mean(clean)
		scale := math.Max(1, math.Abs(want))
		return math.Abs(s.Mean()-want) < 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: variance is never negative and is zero for constant data.
func TestSampleQuickVarianceNonNegative(t *testing.T) {
	f := func(x float64, n uint8) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		var s Sample
		for i := 0; i < int(n%50)+2; i++ {
			s.Add(x)
		}
		return s.Variance() >= 0 && s.Variance() < 1e-6*math.Max(1, x*x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
