// Package stats provides the small statistical toolkit shared by the
// trace-sampling machinery and the experiment harnesses: streaming
// moments, confidence intervals, and relative error, following the
// sampling methodology of Laha et al. (IEEE ToC 1988) used in the paper.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates streaming mean and variance (Welford's algorithm).
type Sample struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (s *Sample) Add(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance.
func (s *Sample) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Sample) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of the 95% confidence interval for the
// mean, using the normal approximation (the paper's samples are n=50,
// where t and z quantiles differ by under 3%).
func (s *Sample) CI95() float64 { return 1.96 * s.StdErr() }

// RelErr95 returns the 95% confidence half-width relative to the mean,
// the "relative error" criterion of Laha and Martonosi: sampling is
// adequate when this falls under 0.10.
func (s *Sample) RelErr95() float64 {
	if s.mean == 0 {
		return 0
	}
	return math.Abs(s.CI95() / s.mean)
}

func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.5f sd=%.5f ci95=%.5f", s.n, s.Mean(), s.StdDev(), s.CI95())
}

// RelativeError returns |got-want|/want; it is 0 when want is 0 and got
// is 0, and +Inf when want is 0 and got is not.
func RelativeError(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs (0 for empty input). xs is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}

// Ratio returns num/den, or 0 when den is 0. It is the safe miss-ratio
// helper used throughout the simulators.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
