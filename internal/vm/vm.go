// Package vm models the virtual-memory substrate of a MIPS R2000-class
// machine as used by the DECstation 3100: a 32-bit virtual address space
// split into the classic MIPS segments, 4-KB pages, address-space
// identifiers (ASIDs), and linearly-mapped page tables in kseg2.
//
// The segment layout drives the TLB cost model: kuseg references are
// mapped and translated per-ASID, kseg0/kseg1 are unmapped kernel
// segments that bypass the TLB entirely (Ultrix and Mach both run their
// kernels there), and kseg2 holds mapped kernel data -- most importantly
// the page tables themselves, whose TLB misses are the expensive
// kernel-level misses (hundreds of cycles) described in the paper and in
// Nagle et al., "Design tradeoffs for software-managed TLBs" (ISCA 1993).
package vm

import "fmt"

// Page geometry: 4-KB pages as on the R2000.
const (
	PageBits = 12
	PageSize = 1 << PageBits
)

// MIPS R2000 segment boundaries.
const (
	KUsegEnd   = 0x80000000 // [0, KUsegEnd): mapped user space
	Kseg0Base  = 0x80000000 // unmapped, cached kernel
	Kseg1Base  = 0xa0000000 // unmapped, uncached kernel
	Kseg2Base  = 0xc0000000 // mapped kernel
	Kseg0Limit = 0xa0000000
	Kseg1Limit = 0xc0000000
)

// Conventional user address-space layout (matches the MIPS/Ultrix ABI).
const (
	UserTextBase  = 0x00400000
	UserDataBase  = 0x10000000
	UserStackTop  = 0x7fff0000
	EmulatorBase  = 0x70000000 // Mach emulation library mapping
	SharedMapBase = 0x60000000 // shared VM windows (Mach out-of-line data)
)

// Segment classifies a virtual address.
type Segment uint8

const (
	// KUseg is the mapped, per-process user segment.
	KUseg Segment = iota
	// Kseg0 is the unmapped cached kernel segment.
	Kseg0
	// Kseg1 is the unmapped uncached kernel segment.
	Kseg1
	// Kseg2 is the mapped kernel segment.
	Kseg2
)

func (s Segment) String() string {
	switch s {
	case KUseg:
		return "kuseg"
	case Kseg0:
		return "kseg0"
	case Kseg1:
		return "kseg1"
	case Kseg2:
		return "kseg2"
	default:
		return fmt.Sprintf("Segment(%d)", uint8(s))
	}
}

// SegmentOf returns the segment containing addr.
func SegmentOf(addr uint32) Segment {
	switch {
	case addr < KUsegEnd:
		return KUseg
	case addr < Kseg0Limit:
		return Kseg0
	case addr < Kseg1Limit:
		return Kseg1
	default:
		return Kseg2
	}
}

// Mapped reports whether addr is translated through the TLB.
func Mapped(addr uint32) bool {
	s := SegmentOf(addr)
	return s == KUseg || s == Kseg2
}

// KernelAddr reports whether addr lies in any kernel segment.
func KernelAddr(addr uint32) bool { return addr >= KUsegEnd }

// VPN returns the virtual page number of addr.
func VPN(addr uint32) uint32 { return addr >> PageBits }

// PageOffset returns the offset of addr within its page.
func PageOffset(addr uint32) uint32 { return addr & (PageSize - 1) }

// PageBase returns the base address of the page containing addr.
func PageBase(addr uint32) uint32 { return addr &^ (PageSize - 1) }

// Global reports whether a page is shared by all address spaces (kernel
// segments ignore the ASID).
func Global(addr uint32) bool { return KernelAddr(addr) }

// TransKey identifies a translation: the VPN, qualified by ASID for
// non-global pages. It is the lookup key for TLB simulation.
type TransKey struct {
	VPN  uint32
	ASID uint8 // 0 is a valid ASID; Global pages store 0 here
}

// KeyFor builds the translation key for a reference address and ASID.
func KeyFor(addr uint32, asid uint8) TransKey {
	if Global(addr) {
		return TransKey{VPN: VPN(addr)}
	}
	return TransKey{VPN: VPN(addr), ASID: asid}
}

// Page tables are linearly mapped in kseg2, one 4-MB slot per ASID:
// PTE for (asid, vpn) lives at PageTableBase + asid*PageTableSpan + vpn*4.
// A TLB miss on a user page therefore requires a load from kseg2, which
// can itself miss in the TLB -- the "kernel miss" costing hundreds of
// cycles in the R2000 software-managed-TLB cost model.
const (
	PageTableBase = Kseg2Base
	PageTableSpan = 4 << 20 // 2^20 PTEs x 4 bytes
	pteSize       = 4
)

// PTEAddr returns the kseg2 virtual address of the page-table entry that
// maps (asid, vpn).
func PTEAddr(asid uint8, vpn uint32) uint32 {
	return PageTableBase + uint32(asid)*PageTableSpan + vpn*pteSize
}

// CacheKey maps an address and ASID to the 64-bit "physical" address key
// used by the cache simulators. The DECstation's caches are physically
// indexed and tagged, so distinct processes neither alias nor
// pathologically conflict: their pages land on effectively random page
// frames. We model that by hashing (ASID, VPN) into a synthetic page
// frame -- deterministic, so runs are repeatable -- and keeping the page
// offset, which preserves spatial locality within pages (cache lines
// never span pages). Unmapped kseg0/kseg1 addresses translate directly
// to low physical memory, as on the real MIPS.
func CacheKey(addr uint32, asid uint8) uint64 {
	switch SegmentOf(addr) {
	case Kseg0:
		return uint64(addr - Kseg0Base)
	case Kseg1:
		return uint64(addr - Kseg1Base)
	case Kseg2:
		// Mapped kernel pages are shared (ASID-independent) but
		// physically scattered like any mapped page.
		return 1<<44 | framehash(0, VPN(addr))<<PageBits | uint64(PageOffset(addr))
	default:
		return 1<<44 | framehash(uint64(asid), VPN(addr))<<PageBits | uint64(PageOffset(addr))
	}
}

// framehash is a splitmix64-style mix of (asid, vpn) to a synthetic page
// frame number. The low four frame bits are page-colored: Ultrix's (and
// most contemporary) physical allocators picked frames whose low bits
// matched the virtual page, so that virtually-contiguous hot regions
// spread evenly across the cache's page slices instead of colliding at
// random. The color is salted with the ASID so that identical virtual
// layouts in different address spaces (every process's text starts at
// the same base) do not collide pathologically either.
func framehash(asid uint64, vpn uint32) uint64 {
	x := asid<<32 | uint64(vpn)
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	color := (uint64(vpn) + asid*5) & 15
	return (x&^15 | color) & 0xffffffff // 32-bit frame space: 44-bit keys
}
