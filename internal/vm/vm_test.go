package vm

import (
	"testing"
	"testing/quick"
)

func TestSegments(t *testing.T) {
	cases := []struct {
		addr uint32
		want Segment
	}{
		{0x00000000, KUseg},
		{0x00400000, KUseg},
		{0x7fffffff, KUseg},
		{0x80000000, Kseg0},
		{0x9fffffff, Kseg0},
		{0xa0000000, Kseg1},
		{0xbfffffff, Kseg1},
		{0xc0000000, Kseg2},
		{0xffffffff, Kseg2},
	}
	for _, c := range cases {
		if got := SegmentOf(c.addr); got != c.want {
			t.Errorf("SegmentOf(%#x) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestMappedAndKernel(t *testing.T) {
	if !Mapped(0x00400000) || !Mapped(0xc0000100) {
		t.Error("kuseg and kseg2 must be mapped")
	}
	if Mapped(0x80001000) || Mapped(0xa0001000) {
		t.Error("kseg0/kseg1 must be unmapped")
	}
	if KernelAddr(0x7fffffff) || !KernelAddr(0x80000000) {
		t.Error("kernel boundary wrong")
	}
}

func TestPageArithmetic(t *testing.T) {
	addr := uint32(0x00403abc)
	if VPN(addr) != 0x403 {
		t.Errorf("VPN = %#x, want 0x403", VPN(addr))
	}
	if PageOffset(addr) != 0xabc {
		t.Errorf("PageOffset = %#x, want 0xabc", PageOffset(addr))
	}
	if PageBase(addr) != 0x00403000 {
		t.Errorf("PageBase = %#x", PageBase(addr))
	}
}

func TestKeyFor(t *testing.T) {
	// User pages are qualified by ASID.
	k1 := KeyFor(0x00400000, 5)
	k2 := KeyFor(0x00400000, 6)
	if k1 == k2 {
		t.Error("same user page under different ASIDs must differ")
	}
	// Kernel pages are global: ASID is ignored.
	g1 := KeyFor(0xc0000000, 5)
	g2 := KeyFor(0xc0000000, 6)
	if g1 != g2 {
		t.Error("kernel pages must be ASID-independent")
	}
}

func TestPTEAddr(t *testing.T) {
	// PTEs live in kseg2 and are laid out linearly per ASID.
	a := PTEAddr(0, 0)
	if a != PageTableBase {
		t.Errorf("PTEAddr(0,0) = %#x, want %#x", a, PageTableBase)
	}
	if SegmentOf(PTEAddr(3, 0x7ffff)) != Kseg2 {
		t.Error("PTE addresses must be in kseg2")
	}
	// Adjacent VPNs map to PTEs 4 bytes apart; 1024 VPNs share a
	// page-table page (the unit the TLB caches).
	if PTEAddr(1, 1)-PTEAddr(1, 0) != 4 {
		t.Error("PTE stride must be 4 bytes")
	}
	if VPN(PTEAddr(1, 0)) != VPN(PTEAddr(1, 1023)) {
		t.Error("1024 consecutive PTEs must share one page-table page")
	}
	if VPN(PTEAddr(1, 0)) == VPN(PTEAddr(1, 1024)) {
		t.Error("PTE 1024 must be on the next page-table page")
	}
	// Different address spaces use disjoint page-table slots.
	if PTEAddr(1, 0) == PTEAddr(2, 0) {
		t.Error("per-ASID page tables must not overlap")
	}
}

func TestCacheKey(t *testing.T) {
	// User addresses from different spaces must not alias.
	if CacheKey(0x1000, 1) == CacheKey(0x1000, 2) {
		t.Error("user cache keys must be ASID-qualified")
	}
	// Kernel addresses are shared.
	if CacheKey(0x80001000, 1) != CacheKey(0x80001000, 2) {
		t.Error("kernel cache keys must be shared")
	}
	// Within a page, byte adjacency is preserved (spatial locality --
	// cache lines never span pages).
	if CacheKey(0x1001, 1)-CacheKey(0x1000, 1) != 1 {
		t.Error("cache keys must preserve adjacency within a page")
	}
	// The same page is always placed on the same synthetic frame.
	if CacheKey(0x1000, 1) != CacheKey(0x1000, 1) {
		t.Error("cache keys must be deterministic")
	}
	// Unmapped kernel segments translate directly to low physical
	// addresses.
	if CacheKey(0x80001234, 0) != 0x1234 {
		t.Errorf("kseg0 key = %#x, want 0x1234", CacheKey(0x80001234, 0))
	}
	// Mapped pages must not land in the low direct-mapped physical
	// range.
	if CacheKey(0x1000, 1) < 1<<44 {
		t.Error("mapped keys must be disjoint from kseg0 physical range")
	}
}

// Property: every address belongs to exactly one segment classification
// and Mapped is consistent with it.
func TestSegmentQuickConsistency(t *testing.T) {
	f := func(addr uint32) bool {
		s := SegmentOf(addr)
		switch s {
		case KUseg:
			return addr < KUsegEnd && Mapped(addr) && !KernelAddr(addr)
		case Kseg0:
			return addr >= Kseg0Base && addr < Kseg0Limit && !Mapped(addr) && KernelAddr(addr)
		case Kseg1:
			return addr >= Kseg1Base && addr < Kseg1Limit && !Mapped(addr) && KernelAddr(addr)
		case Kseg2:
			return addr >= Kseg2Base && Mapped(addr) && KernelAddr(addr)
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: VPN/PageOffset decompose addresses exactly.
func TestPageQuickDecomposition(t *testing.T) {
	f := func(addr uint32) bool {
		return VPN(addr)<<PageBits|PageOffset(addr) == addr &&
			PageBase(addr)+PageOffset(addr) == addr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
