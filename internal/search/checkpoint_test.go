package search

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"onchip/internal/area"
)

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ockp")
	cp := &Checkpoint{
		Version:   checkpointVersion,
		Label:     "table6/refs=1000",
		SpaceSig:  "00000000deadbeef",
		PairsDone: 42,
		Priced:    4200,
		Kept: []Allocation{{
			TLB:     area.TLBConfig{Entries: 64, Assoc: 2},
			ICache:  area.CacheConfig{CapacityBytes: 8 << 10, LineWords: 4, Assoc: 1},
			DCache:  area.CacheConfig{CapacityBytes: 8 << 10, LineWords: 4, Assoc: 1},
			AreaRBE: 120000,
			CPI:     1.42,
		}},
	}
	if err := cp.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if got.Label != cp.Label || got.SpaceSig != cp.SpaceSig ||
		got.PairsDone != cp.PairsDone || got.Priced != cp.Priced {
		t.Errorf("round trip changed fields: %+v vs %+v", got, cp)
	}
	if len(got.Kept) != 1 || got.Kept[0] != cp.Kept[0] {
		t.Errorf("round trip changed kept allocations: %v", got.Kept)
	}
}

func TestCheckpointRejectsTampering(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ockp")
	cp := &Checkpoint{Version: checkpointVersion, Label: "x", SpaceSig: "sig", PairsDone: 1}
	if err := cp.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the JSON body; the CRC must catch it.
	tampered := append([]byte(nil), data...)
	tampered[len(tampered)-2] ^= 0xff
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Error("LoadCheckpoint accepted a corrupted body")
	}
	// Garbage header.
	if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Error("LoadCheckpoint accepted a garbage header")
	}
	// Unsupported version.
	if err := os.WriteFile(path, []byte("OCKP 999 00000000\n{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Error("LoadCheckpoint accepted an unsupported version")
	}
}

// smallSpace keeps the checkpoint tests fast: checkpoints serialize
// every kept allocation, and the full Table 5 space keeps almost two
// hundred thousand.
func smallSpace() Space {
	return Space{
		TLBEntries:   []int{64, 128},
		TLBAssocs:    []int{2},
		TLBFAEntries: []int{64},
		CacheSizes:   []int{4 << 10, 8 << 10},
		CacheAssocs:  []int{1, 2},
		CacheLines:   []int{4, 8},
	}
}

// The acceptance scenario: cancel an enumeration mid-sweep, resume from
// the checkpoint it wrote, and require the final ranking to be
// element-for-element identical to an uninterrupted run.
func TestEnumerateCancelAndResumeIdentical(t *testing.T) {
	space := smallSpace()
	am := area.Default()
	pm := MachLike()
	baseline := Enumerate(space, am, area.BudgetRBE, pm)
	if len(baseline) == 0 {
		t.Fatal("baseline sweep kept nothing")
	}

	path := filepath.Join(t.TempDir(), "sweep.ockp")
	const label = "test-sweep"

	// Cancel after the second periodic checkpoint lands.
	ctx, cancel := context.WithCancel(context.Background())
	writes := 0
	partial, err := EnumerateE(space, am, area.BudgetRBE, pm,
		WithContext(ctx),
		WithCheckpoint(path, label, 5),
		WithCheckpointObserver(func(*Checkpoint) {
			if writes++; writes == 2 {
				cancel()
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled enumeration returned err = %v, want context.Canceled", err)
	}
	if len(partial) >= len(baseline) {
		t.Fatalf("cancellation kept the whole space (%d of %d): cancelled too late to test resume",
			len(partial), len(baseline))
	}

	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("LoadCheckpoint after cancel: %v", err)
	}
	if cp.Label != label || cp.PairsDone == 0 {
		t.Fatalf("implausible checkpoint after cancel: %+v", cp)
	}

	resumed, err := EnumerateE(space, am, area.BudgetRBE, pm,
		WithCheckpoint(path, label, 5),
		WithResume(cp))
	if err != nil {
		t.Fatalf("resumed enumeration: %v", err)
	}
	if len(resumed) != len(baseline) {
		t.Fatalf("resumed ranking has %d allocations, baseline %d", len(resumed), len(baseline))
	}
	for i := range baseline {
		if resumed[i] != baseline[i] {
			t.Fatalf("resumed ranking diverges at %d: %v vs %v", i, resumed[i], baseline[i])
		}
	}
}

func TestResumeRefusesMismatchedSweep(t *testing.T) {
	space := smallSpace()
	am := area.Default()
	pm := MachLike()
	path := filepath.Join(t.TempDir(), "sweep.ockp")

	// Produce a complete checkpoint for label "a".
	if _, err := EnumerateE(space, am, area.BudgetRBE, pm, WithCheckpoint(path, "a", 0)); err != nil {
		t.Fatalf("checkpointed sweep: %v", err)
	}
	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}

	// Wrong label.
	if _, err := EnumerateE(space, am, area.BudgetRBE, pm,
		WithCheckpoint(path, "b", 0), WithResume(cp)); err == nil {
		t.Error("resume accepted a checkpoint with a different label")
	}
	// Wrong space signature (different budget prices a different space).
	if _, err := EnumerateE(space, am, area.BudgetRBE/2, pm,
		WithCheckpoint(path, "a", 0), WithResume(cp)); err == nil {
		t.Error("resume accepted a checkpoint for a different budget")
	}
}

// Checkpointing alone (no interruption) must not perturb the ranking.
func TestCheckpointingSameResults(t *testing.T) {
	space := smallSpace()
	am := area.Default()
	pm := MachLike()
	plain := Enumerate(space, am, area.BudgetRBE, pm)
	path := filepath.Join(t.TempDir(), "sweep.ockp")
	ckpt, err := EnumerateE(space, am, area.BudgetRBE, pm, WithCheckpoint(path, "x", 7))
	if err != nil {
		t.Fatalf("checkpointed sweep: %v", err)
	}
	if len(plain) != len(ckpt) {
		t.Fatalf("checkpointing changed result count: %d vs %d", len(plain), len(ckpt))
	}
	for i := range plain {
		if plain[i] != ckpt[i] {
			t.Fatalf("allocation %d differs: %v vs %v", i, plain[i], ckpt[i])
		}
	}
	// The final checkpoint covers the whole space.
	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(space.TLBConfigs()) * len(space.CacheConfigs()); cp.PairsDone != want {
		t.Errorf("final checkpoint PairsDone = %d, want %d", cp.PairsDone, want)
	}
	if len(cp.Kept) != len(plain) {
		t.Errorf("final checkpoint kept %d, want %d", len(cp.Kept), len(plain))
	}
}
