package search

import (
	"container/heap"
	"time"
)

// Pruned search: price million-point design spaces without touching
// most of them. Three mechanisms compose, each provably unable to
// change the top-K ranking (DESIGN.md section 15 carries the full
// argument):
//
//  1. K-level Pareto frontier reduction per component axis. A TLB
//     configuration t2 is dropped when at least K distinct
//     configurations t1 "beat" it -- area(t1) <= area(t2) and
//     cpi(t1) <= cpi(t2), strictly better in one, or earlier in the
//     canonical configuration order on a full tie. Every allocation
//     containing t2 is then outranked by >= K feasible allocations
//     (substitute each t1; total area only shrinks, so feasibility is
//     preserved, and the composed allocation strictly precedes t2's in
//     the ranking order), so t2 can never appear in a top-K result.
//     The same reduction applies to the I-cache axis on (area, icpi)
//     and the D-cache axis on (area, dcpi). Note the classical 1-level
//     frontier would NOT be sound for K > 1: a dominated configuration
//     is only guaranteed to be outranked once per dominator.
//
//  2. Branch-and-bound on the monotone area cost. Axes are sorted by
//     ascending area, so once a TLB (or TLB + I-cache prefix) cannot
//     fit the budget even with the cheapest remaining partners, every
//     later subtree is infeasible too and the loop breaks.
//
//  3. Branch-and-bound on optimistic CPI lower bounds. The suffix
//     minima of each axis's CPI contributions give an admissible
//     (never pessimistic) bound on the best total CPI any extension of
//     a partial composition can reach; once the top-K candidate list
//     is full, a subtree whose bound is STRICTLY worse than the
//     current K-th best is skipped. Ties are never cut -- an equal-CPI
//     allocation could still win the deterministic area/configuration
//     tie-break.
//
// The result is byte-identical to Top(exhaustive, K): TestPrunedMatches
// Exhaustive* and the randomized property test pin this, and `make
// crossval-search` gates it on the paper's grid with measured models.

// PruneStats is the pruned strategy's accounting, reported through
// WithPruneStats. Composed = Priced + PrunedFrontier + PrunedBudget +
// PrunedBound when the search runs to completion.
type PruneStats struct {
	// Composed is the full TLB x I-cache x D-cache space size.
	Composed int
	// Priced is the number of triples actually composed and tested.
	Priced int
	// PrunedFrontier is the number of triples removed up front by the
	// per-axis Pareto-K frontier reduction.
	PrunedFrontier int
	// PrunedBudget is the number of triples skipped by the monotone
	// area bound (subtrees that cannot fit the budget).
	PrunedBudget int
	// PrunedBound is the number of triples skipped by the optimistic
	// CPI lower bound (subtrees that cannot beat the K-th best).
	PrunedBound int
	// FrontierTLB/IC/DC are the axis sizes after frontier reduction
	// (out of TLBs/Caches/Caches configurations respectively).
	FrontierTLB, FrontierIC, FrontierDC int
	// TLBs and Caches are the pre-reduction axis sizes.
	TLBs, Caches int
}

// Pruned returns the total number of triples dismissed without pricing.
func (s PruneStats) Pruned() int { return s.PrunedFrontier + s.PrunedBudget + s.PrunedBound }

// axisPoint is one component configuration projected onto the (area,
// cpi) plane the frontier reduction and the bounds operate in. idx
// indexes the original priced slice.
type axisPoint struct {
	area, cpi float64
	idx       int
}

// paretoK returns the points NOT beaten by at least K others, in the
// input order. tie breaks full (area, cpi) ties deterministically and
// must match the allocation ranking order's configuration tie-break --
// it is what guarantees that a dominating substitute's allocation
// strictly precedes the dominated one's even at equal CPI and area.
func paretoK(pts []axisPoint, k int, tie func(i, j int) int) []axisPoint {
	out := make([]axisPoint, 0, len(pts))
	for i, p := range pts {
		beaten := 0
		for j, q := range pts {
			if j == i || q.area > p.area || q.cpi > p.cpi {
				continue
			}
			if q.area < p.area || q.cpi < p.cpi || tie(q.idx, p.idx) < 0 {
				if beaten++; beaten >= k {
					break
				}
			}
		}
		if beaten < k {
			out = append(out, p)
		}
	}
	return out
}

// allocHeap is a max-heap in the canonical ranking order: the root is
// the WORST of the current top-K candidates, the one a better find
// evicts.
type allocHeap []Allocation

func (h allocHeap) Len() int           { return len(h) }
func (h allocHeap) Less(i, j int) bool { return lessAlloc(h[j], h[i]) }
func (h allocHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *allocHeap) Push(x any)        { *h = append(*h, x.(Allocation)) }
func (h *allocHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// enumeratePruned is EnumerateE's pruned strategy. tlbs and caches are
// the priced component lists in canonical construction order.
func enumeratePruned(tlbs []pricedTLB, caches []pricedCache, base, budget float64, o *options) ([]Allocation, error) {
	k := o.pruneTopK
	st := PruneStats{
		Composed: len(tlbs) * len(caches) * len(caches),
		TLBs:     len(tlbs),
		Caches:   len(caches),
	}

	// K-level Pareto frontiers per axis, with the canonical
	// configuration comparison as the tie-break.
	tPts := make([]axisPoint, len(tlbs))
	for i, t := range tlbs {
		tPts[i] = axisPoint{area: t.area, cpi: t.cpi, idx: i}
	}
	iPts := make([]axisPoint, len(caches))
	dPts := make([]axisPoint, len(caches))
	for i, c := range caches {
		iPts[i] = axisPoint{area: c.area, cpi: c.icpi, idx: i}
		dPts[i] = axisPoint{area: c.area, cpi: c.dcpi, idx: i}
	}
	tieTLB := func(i, j int) int { return cmpTLBConfig(tlbs[i].cfg, tlbs[j].cfg) }
	tieCache := func(i, j int) int { return cmpCacheConfig(caches[i].cfg, caches[j].cfg) }
	tf := paretoK(tPts, k, tieTLB)
	icf := paretoK(iPts, k, tieCache)
	dcf := paretoK(dPts, k, tieCache)
	st.FrontierTLB, st.FrontierIC, st.FrontierDC = len(tf), len(icf), len(dcf)
	st.PrunedFrontier = st.Composed - len(tf)*len(icf)*len(dcf)

	// The TLB and I-cache axes are walked outer-to-inner and sorted by
	// ascending area so the budget bound can BREAK (everything later is
	// at least as large); the D-cache axis is innermost and sorted by
	// ascending CPI contribution so the optimistic bound can break
	// (everything later is at least as slow). Area ties sort by the
	// configuration order to stay deterministic.
	sortAxis := func(pts []axisPoint, byCPI bool, tie func(i, j int) int) {
		sortStableBy(pts, func(a, b axisPoint) bool {
			x, y := a.area, b.area
			if byCPI {
				x, y = a.cpi, b.cpi
			}
			if x != y {
				return x < y
			}
			return tie(a.idx, b.idx) < 0
		})
	}
	sortAxis(tf, false, tieTLB)
	sortAxis(icf, false, tieCache)
	sortAxis(dcf, true, tieCache)

	// Optimistic per-axis floors for the bounds. The frontier slices
	// are non-empty whenever the axes are (a frontier never drops every
	// point: the first point in canonical order is unbeaten).
	if len(tf) == 0 || len(icf) == 0 || len(dcf) == 0 {
		if o.pruneStats != nil {
			*o.pruneStats = st
		}
		return nil, nil
	}
	minICcpi, minICarea := icf[0].cpi, icf[0].area
	for _, p := range icf[1:] {
		if p.cpi < minICcpi {
			minICcpi = p.cpi
		}
	}
	minDCcpi := dcf[0].cpi
	minDCarea := dcf[0].area
	for _, p := range dcf[1:] {
		if p.area < minDCarea {
			minDCarea = p.area
		}
	}

	every := o.progressEvery
	if every <= 0 {
		every = 1 << 16
	}
	start := time.Now()
	var top allocHeap
	nextReport := every
	report := func(done bool) {
		if o.progress == nil {
			return
		}
		p := Progress{
			Priced:  st.Priced,
			Pruned:  st.Pruned(),
			Total:   st.Composed,
			Kept:    len(top),
			Elapsed: time.Since(start),
			Done:    done,
		}
		if covered := p.Covered(); !done && covered > 0 {
			p.ETA = time.Duration(float64(p.Elapsed) * float64(p.Total-covered) / float64(covered))
		}
		o.progress(p)
	}

	var done <-chan struct{}
	if o.ctx != nil {
		done = o.ctx.Done()
	}
	finish := func() []Allocation {
		out := []Allocation(top)
		sortAllocations(out)
		if o.pruneStats != nil {
			*o.pruneStats = st
		}
		return out
	}

	for ti, t := range tf {
		if done != nil {
			select {
			case <-done:
				return finish(), o.ctx.Err()
			default:
			}
		}
		if t.area+minICarea+minDCarea > budget {
			// Monotone area: every remaining TLB is at least as large.
			st.PrunedBudget += (len(tf) - ti) * len(icf) * len(dcf)
			break
		}
		tlb := tlbs[t.idx]
		if len(top) == k && base+t.cpi+minICcpi+minDCcpi > top[0].CPI {
			st.PrunedBound += len(icf) * len(dcf)
			continue
		}
		for ici, ic := range icf {
			if t.area+ic.area+minDCarea > budget {
				st.PrunedBudget += (len(icf) - ici) * len(dcf)
				break
			}
			if len(top) == k && base+t.cpi+ic.cpi+minDCcpi > top[0].CPI {
				st.PrunedBound += len(dcf)
				continue
			}
			icache := caches[ic.idx]
			at := t.area + ic.area
			partial := base + t.cpi + ic.cpi
			for di, dc := range dcf {
				if len(top) == k && partial+dc.cpi > top[0].CPI {
					// D-caches are CPI-sorted: everything later is at
					// least as slow. Ties are not cut -- an equal-CPI
					// allocation can still win the tie-break.
					st.PrunedBound += len(dcf) - di
					break
				}
				st.Priced++
				total := at + dc.area
				if total > budget {
					continue
				}
				a := Allocation{
					TLB:     tlb.cfg,
					ICache:  icache.cfg,
					DCache:  caches[dc.idx].cfg,
					AreaRBE: total,
					CPI:     partial + dc.cpi,
				}
				if len(top) < k {
					heap.Push(&top, a)
				} else if lessAlloc(a, top[0]) {
					top[0] = a
					heap.Fix(&top, 0)
				}
			}
			if covered := st.Priced + st.Pruned(); covered >= nextReport {
				report(false)
				nextReport = covered + every
			}
		}
	}
	report(true)
	return finish(), nil
}

// sortStableBy is sort.SliceStable over a typed slice; it keeps the
// axis sorts readable without allocating comparator closures per call
// site.
func sortStableBy(pts []axisPoint, less func(a, b axisPoint) bool) {
	// insertion sort: the axes are a few hundred points at most, and a
	// stable in-place sort avoids reflection overhead on the hot setup
	// path of every pruned search.
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && less(pts[j], pts[j-1]); j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
}
