package search

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"onchip/internal/area"
)

// assertSameRanking fails unless the pruned result equals the first
// len(pruned) entries of the exhaustive ranking element-for-element --
// the byte-identity oracle of ISSUE 10.
func assertSameRanking(t *testing.T, pruned, exhaustive []Allocation, k int) {
	t.Helper()
	want := Top(exhaustive, k)
	if len(pruned) != len(want) {
		t.Fatalf("pruned returned %d allocations, exhaustive top-%d has %d", len(pruned), k, len(want))
	}
	for i := range want {
		if pruned[i] != want[i] {
			t.Fatalf("rank %d differs:\npruned:     %v\nexhaustive: %v", i+1, pruned[i], want[i])
		}
	}
}

// The tentpole oracle: pruned top-K byte-identical to the exhaustive
// ranking on the Table 5 grid for both the Table 6 (unrestricted) and
// Table 7 (assoc <= 2) settings. make crossval-search gates this.
func TestPrunedMatchesExhaustiveTable5(t *testing.T) {
	for _, tc := range []struct {
		name     string
		maxAssoc int
		model    PerfModel
	}{
		{"table6/mach", 0, MachLike()},
		{"table7/mach", 2, MachLike()},
		{"table6/ultrix", 0, UltrixLike()},
		{"table7/ultrix", 2, UltrixLike()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			space := Table5()
			space.MaxCacheAssoc = tc.maxAssoc
			ex := Enumerate(space, area.Default(), area.BudgetRBE, tc.model)
			for _, k := range []int{1, 3, 10, 50} {
				var st PruneStats
				pr, err := EnumerateE(space, area.Default(), area.BudgetRBE, tc.model,
					WithPruning(k), WithPruneStats(&st))
				if err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				assertSameRanking(t, pr, ex, k)
				if st.Priced >= st.Composed {
					t.Errorf("k=%d: pruning priced the whole space (%d of %d)", k, st.Priced, st.Composed)
				}
			}
		})
	}
}

// The pruned accounting must balance: every triple of the composed
// space is either priced or attributed to exactly one prune bucket.
func TestPrunedAccountingInvariant(t *testing.T) {
	space := Table5()
	var st PruneStats
	if _, err := EnumerateE(space, area.Default(), area.BudgetRBE, MachLike(),
		WithPruning(10), WithPruneStats(&st)); err != nil {
		t.Fatal(err)
	}
	if want := space.Triples(); st.Composed != want {
		t.Errorf("Composed = %d, want %d", st.Composed, want)
	}
	if got := st.Priced + st.PrunedFrontier + st.PrunedBudget + st.PrunedBound; got != st.Composed {
		t.Errorf("accounting leak: priced %d + frontier %d + budget %d + bound %d = %d, want Composed %d",
			st.Priced, st.PrunedFrontier, st.PrunedBudget, st.PrunedBound, got, st.Composed)
	}
	if st.FrontierTLB > st.TLBs || st.FrontierIC > st.Caches || st.FrontierDC > st.Caches {
		t.Errorf("frontier larger than its axis: %+v", st)
	}
	if st.PrunedFrontier != st.Composed-st.FrontierTLB*st.FrontierIC*st.FrontierDC {
		t.Errorf("frontier accounting off: %+v", st)
	}
}

// Satellite: Progress under pruning. Total must stay the pre-prune
// composed size (the same space reports the same Total under either
// strategy), Pruned must be reported, and coverage (priced + pruned)
// must converge on Total so progress views don't stall.
func TestPrunedProgress(t *testing.T) {
	space := Table5()
	var reports []Progress
	allocs, err := EnumerateE(space, area.Default(), area.BudgetRBE, MachLike(),
		WithPruning(10),
		WithProgress(1000, func(p Progress) { reports = append(reports, p) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) < 2 {
		t.Fatalf("got %d progress reports, want at least an interim and a final", len(reports))
	}
	final := reports[len(reports)-1]
	if !final.Done {
		t.Error("last report should have Done set")
	}
	if want := space.Triples(); final.Total != want {
		t.Errorf("Total = %d, want pre-prune composed size %d", final.Total, want)
	}
	if final.Covered() != final.Total {
		t.Errorf("final Covered = %d (priced %d + pruned %d), want Total %d",
			final.Covered(), final.Priced, final.Pruned, final.Total)
	}
	if final.Pruned == 0 {
		t.Error("final Pruned = 0, want most of the space dismissed")
	}
	if final.Kept != len(allocs) {
		t.Errorf("final Kept = %d, want %d", final.Kept, len(allocs))
	}
	for i, p := range reports {
		if i > 0 && p.Covered() < reports[i-1].Covered() {
			t.Errorf("coverage went backwards at report %d", i)
		}
		if p.String() == "" {
			t.Error("empty progress string")
		}
		if !p.Done && p.ETA < 0 {
			t.Errorf("negative ETA at report %d", i)
		}
	}
	// The interim reports must show real coverage, not a bar stalled
	// near zero: with pruning, covered quickly dwarfs priced.
	interim := reports[0]
	if interim.Covered() <= interim.Priced {
		t.Errorf("interim coverage %d not ahead of priced %d; Pruned missing from progress",
			interim.Covered(), interim.Priced)
	}
	b, err := final.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"pruned":`, `"priced":`, `"total":`} {
		if s := string(b); !strings.Contains(s, key) {
			t.Errorf("progress JSON missing %s: %s", key, s)
		}
	}
}

// Satellite: equal-CPI equal-area allocations must rank
// deterministically -- and identically -- in both strategies. The model
// below makes (IC=c1, DC=c2) and (IC=c2, DC=c1) tie exactly on both
// keys (same component areas, symmetric CPI contributions), which is
// the case an unstable discovery-order sort would break.
func TestTieBreakDeterministic(t *testing.T) {
	space := Space{
		TLBEntries:  []int{64},
		TLBAssocs:   []int{2},
		CacheSizes:  []int{4 << 10, 8 << 10},
		CacheAssocs: []int{1},
		CacheLines:  []int{4},
	}
	m := NewMeasured(1)
	for _, tc := range space.TLBConfigs() {
		m.TLB[tc] = 0.0625
	}
	ccs := space.CacheConfigs()
	if len(ccs) != 2 {
		t.Fatalf("want exactly 2 cache configs, got %d", len(ccs))
	}
	// Symmetric contributions -- ic(a)+dc(b) == ic(b)+dc(a) -- chosen
	// dyadic so the float sums tie EXACTLY, not just to a printed digit.
	m.IC[ccs[0]], m.DC[ccs[0]] = 0.125, 0.375
	m.IC[ccs[1]], m.DC[ccs[1]] = 0.25, 0.5

	ex := Enumerate(space, area.Default(), area.BudgetRBE, m)
	if len(ex) != 4 {
		t.Fatalf("feasible = %d, want all 4 triples", len(ex))
	}
	// The mixed triples tie on CPI; areas match too (same two caches).
	var mixed []Allocation
	for _, a := range ex {
		if a.ICache != a.DCache {
			mixed = append(mixed, a)
		}
	}
	if len(mixed) != 2 || mixed[0].CPI != mixed[1].CPI || mixed[0].AreaRBE != mixed[1].AreaRBE {
		t.Fatalf("tie not constructed: %v", mixed)
	}
	// The canonical order puts the smaller I-cache first on a full tie.
	if !lessAlloc(mixed[0], mixed[1]) || lessAlloc(mixed[1], mixed[0]) {
		t.Fatalf("lessAlloc is not a strict order on the tied pair: %v", mixed)
	}
	if cmpCacheConfig(mixed[0].ICache, mixed[1].ICache) >= 0 {
		t.Errorf("tie not broken by canonical config order: %v before %v", mixed[0], mixed[1])
	}
	// Both strategies must agree on the full ranking, ties included.
	for _, k := range []int{1, 2, 3, 4} {
		pr, err := EnumerateE(space, area.Default(), area.BudgetRBE, m, WithPruning(k))
		if err != nil {
			t.Fatal(err)
		}
		assertSameRanking(t, pr, ex, k)
	}
	// Repeated runs are bit-stable (sort.SliceStable over a strict
	// total order leaves no room for discovery-order leakage).
	again := Enumerate(space, area.Default(), area.BudgetRBE, m)
	for i := range ex {
		if ex[i] != again[i] {
			t.Fatalf("exhaustive ranking not stable at %d: %v vs %v", i, ex[i], again[i])
		}
	}
}

// randomSpace draws a small design space: a few TLB and cache points,
// sometimes with MaxCacheAssoc restrictions.
func randomSpace(rng *rand.Rand) Space {
	pick := func(pool []int, n int) []int {
		idx := rng.Perm(len(pool))[:n]
		out := make([]int, n)
		for i, j := range idx {
			out[i] = pool[j]
		}
		return out
	}
	s := Space{
		TLBEntries:  pick([]int{16, 32, 64, 128, 256, 512}, 1+rng.Intn(3)),
		TLBAssocs:   pick([]int{1, 2, 4, 8}, 1+rng.Intn(2)),
		CacheSizes:  pick([]int{2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10}, 1+rng.Intn(3)),
		CacheAssocs: pick([]int{1, 2, 4}, 1+rng.Intn(2)),
		CacheLines:  pick([]int{1, 2, 4, 8, 16}, 1+rng.Intn(3)),
	}
	if rng.Intn(4) == 0 {
		s.TLBFAEntries = []int{16, 32}
	}
	if rng.Intn(4) == 0 {
		s.MaxCacheAssoc = 2
	}
	return s
}

// randomModel prices every configuration of the space with values
// ROUNDED to two decimals -- coarse on purpose, so CPI ties across
// distinct configurations are common and the deterministic tie-break
// carries real weight in the equality check.
func randomModel(rng *rand.Rand, s Space) *Measured {
	round := func(v float64) float64 { return math.Round(v*100) / 100 }
	m := NewMeasured(1)
	for _, c := range s.TLBConfigs() {
		m.TLB[c] = round(rng.Float64() * 0.3)
	}
	for _, c := range s.CacheConfigs() {
		m.IC[c] = round(rng.Float64() * 0.5)
		m.DC[c] = round(rng.Float64() * 0.5)
	}
	return m
}

// Satellite: the randomized property test. ~200 random small spaces,
// random coarse models (tie-rich), random budgets (some so tight that
// little or nothing is feasible), random K: pruned top-K must equal
// the exhaustive ranking prefix every single time. make check runs
// this under -race.
func TestPrunedMatchesExhaustiveRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(941))
	for trial := 0; trial < 200; trial++ {
		s := randomSpace(rng)
		m := randomModel(rng, s)
		// Budgets from starve-everything to fit-everything.
		budget := float64(rng.Intn(400_000))
		k := 1 + rng.Intn(20)

		ex := Enumerate(s, area.Default(), budget, m)
		var st PruneStats
		pr, err := EnumerateE(s, area.Default(), budget, m, WithPruning(k), WithPruneStats(&st))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := Top(ex, k)
		if len(pr) != len(want) {
			t.Fatalf("trial %d (space %+v budget %.0f k=%d): pruned %d vs exhaustive %d",
				trial, s, budget, k, len(pr), len(want))
		}
		for i := range want {
			if pr[i] != want[i] {
				t.Fatalf("trial %d (space %+v budget %.0f k=%d) rank %d:\npruned:     %v\nexhaustive: %v",
					trial, s, budget, k, i+1, pr[i], want[i])
			}
		}
		if got := st.Priced + st.PrunedFrontier + st.PrunedBudget + st.PrunedBound; got != st.Composed {
			t.Fatalf("trial %d: accounting leak (%d != %d): %+v", trial, got, st.Composed, st)
		}
	}
}

func TestPrunedRefusesCheckpointAndBadK(t *testing.T) {
	space := Table5()
	if _, err := EnumerateE(space, area.Default(), area.BudgetRBE, MachLike(),
		WithPruning(10), WithCheckpoint(t.TempDir()+"/cp", "x", 0)); err == nil {
		t.Error("pruning + checkpoint did not error")
	}
	if _, err := EnumerateE(space, area.Default(), area.BudgetRBE, MachLike(),
		WithPruning(10), WithResume(&Checkpoint{})); err == nil {
		t.Error("pruning + resume did not error")
	}
	if _, err := EnumerateE(space, area.Default(), area.BudgetRBE, MachLike(),
		WithPruning(-1)); err == nil {
		t.Error("negative top-K did not error")
	}
}

func TestPrunedCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := EnumerateE(Table5(), area.Default(), area.BudgetRBE, MachLike(),
		WithPruning(10), WithContext(ctx))
	if err == nil {
		t.Fatal("cancelled pruned search returned no error")
	}
}

// K beyond the feasible count degrades gracefully: the pruned result is
// the complete feasible ranking, identical to exhaustive.
func TestPrunedTopKBeyondFeasible(t *testing.T) {
	space := Space{
		TLBEntries:  []int{64},
		TLBAssocs:   []int{2},
		CacheSizes:  []int{4 << 10, 8 << 10},
		CacheAssocs: []int{1},
		CacheLines:  []int{4, 8},
	}
	ex := Enumerate(space, area.Default(), area.BudgetRBE, MachLike())
	pr, err := EnumerateE(space, area.Default(), area.BudgetRBE, MachLike(),
		WithPruning(10_000))
	if err != nil {
		t.Fatal(err)
	}
	assertSameRanking(t, pr, ex, 10_000)
}

// The big preset must actually be the million-point space the pruned
// engine exists for.
func TestBigSpaceSize(t *testing.T) {
	if got := Big().Triples(); got < 1_000_000 {
		t.Fatalf("Big space has %d triples, want >= 1,000,000", got)
	}
	for _, c := range Big().CacheConfigs() {
		if err := c.Validate(); err != nil {
			t.Fatalf("invalid cache config in Big space: %v", err)
		}
	}
	for _, c := range Big().TLBConfigs() {
		if err := c.Validate(); err != nil {
			t.Fatalf("invalid TLB config in Big space: %v", err)
		}
	}
}

// paretoK with k=1 is classical dominance; spot-check the beats
// relation and the >=k threshold directly.
func TestParetoK(t *testing.T) {
	pts := []axisPoint{
		{area: 1, cpi: 3, idx: 0},
		{area: 2, cpi: 2, idx: 1},
		{area: 3, cpi: 1, idx: 2},
		{area: 3, cpi: 3, idx: 3}, // dominated by 0, 1, and 2
		{area: 1, cpi: 3, idx: 4}, // full tie with 0: canonical order decides
	}
	tie := func(i, j int) int { return i - j }
	ids := func(out []axisPoint) []int {
		var v []int
		for _, p := range out {
			v = append(v, p.idx)
		}
		return v
	}
	got1 := ids(paretoK(pts, 1, tie))
	// k=1: the frontier keeps 0,1,2; 3 is dominated; 4 loses its tie to 0.
	want1 := []int{0, 1, 2}
	if len(got1) != len(want1) {
		t.Fatalf("paretoK(1) kept %v, want %v", got1, want1)
	}
	for i := range want1 {
		if got1[i] != want1[i] {
			t.Fatalf("paretoK(1) kept %v, want %v", got1, want1)
		}
	}
	// k=3: only 3 is beaten three times (by 0, 1, 2); 4 is beaten once.
	got3 := ids(paretoK(pts, 3, tie))
	want3 := []int{0, 1, 2, 4}
	if len(got3) != len(want3) {
		t.Fatalf("paretoK(3) kept %v, want %v", got3, want3)
	}
	for i := range want3 {
		if got3[i] != want3[i] {
			t.Fatalf("paretoK(3) kept %v, want %v", got3, want3)
		}
	}
}
