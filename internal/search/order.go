package search

import (
	"sort"

	"onchip/internal/area"
)

// Ranking order. Both strategies -- exhaustive enumeration and the
// pruned search -- sort their results with the same STRICT total order,
// which is what makes their top-K rankings byte-identical: two distinct
// allocations never compare equal, so the K best are uniquely
// determined no matter in which order the strategies discover them.
//
// The order is the paper's (ascending CPI, then ascending area)
// extended with a deterministic configuration tie-break. CPI and area
// ties between distinct allocations are real -- swapping the I- and
// D-cache organizations of a triple preserves total area and can
// preserve total CPI -- and an unstable sort without the tie-break
// would rank them by discovery order, which differs between strategies.

// lessAlloc is the canonical ranking order.
func lessAlloc(a, b Allocation) bool {
	if a.CPI != b.CPI {
		return a.CPI < b.CPI
	}
	if a.AreaRBE != b.AreaRBE {
		return a.AreaRBE < b.AreaRBE
	}
	if c := cmpTLBConfig(a.TLB, b.TLB); c != 0 {
		return c < 0
	}
	if c := cmpCacheConfig(a.ICache, b.ICache); c != 0 {
		return c < 0
	}
	return cmpCacheConfig(a.DCache, b.DCache) < 0
}

// sortAllocations sorts into the canonical ranking order. The sort is
// stable on top of a strict total order over distinct configurations,
// so equal-CPI equal-area allocations still rank deterministically.
func sortAllocations(out []Allocation) {
	sort.SliceStable(out, func(i, j int) bool { return lessAlloc(out[i], out[j]) })
}

// cmpTLBConfig orders TLB configurations by every field that
// distinguishes them, so any two distinct configurations compare
// unequal. FullyAssociative (0) deliberately sorts before any set
// associativity; the order only needs to be deterministic, not
// meaningful.
func cmpTLBConfig(a, b area.TLBConfig) int {
	if c := cmpInt(a.Entries, b.Entries); c != 0 {
		return c
	}
	if c := cmpInt(a.Assoc, b.Assoc); c != 0 {
		return c
	}
	if c := cmpInt(a.VABits, b.VABits); c != 0 {
		return c
	}
	if c := cmpInt(a.PageBits, b.PageBits); c != 0 {
		return c
	}
	if c := cmpInt(a.ASIDBits, b.ASIDBits); c != 0 {
		return c
	}
	return cmpInt(a.DataBits, b.DataBits)
}

// cmpCacheConfig is cmpTLBConfig for cache configurations.
func cmpCacheConfig(a, b area.CacheConfig) int {
	if c := cmpInt(a.CapacityBytes, b.CapacityBytes); c != 0 {
		return c
	}
	if c := cmpInt(a.LineWords, b.LineWords); c != 0 {
		return c
	}
	if c := cmpInt(a.Assoc, b.Assoc); c != 0 {
		return c
	}
	if c := cmpInt(a.AddressBits, b.AddressBits); c != 0 {
		return c
	}
	return cmpInt(a.StatusBits, b.StatusBits)
}

func cmpInt(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}
