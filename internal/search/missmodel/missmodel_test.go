package missmodel

import (
	"math"
	"testing"

	"onchip/internal/area"
	"onchip/internal/search"
)

func TestFitRecoversExactPowerLaw(t *testing.T) {
	// y = 3.5 * x^-0.62 exactly; the log-space least squares must
	// recover both coefficients to floating-point accuracy.
	xs := []float64{1024, 2048, 4096, 8192, 16384}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3.5 * math.Pow(x, -0.62)
	}
	law := Fit(xs, ys)
	if math.Abs(law.A-3.5) > 1e-9 || math.Abs(law.B-0.62) > 1e-9 {
		t.Fatalf("Fit = %v, want A=3.5 B=0.62", law)
	}
	if law.N != len(xs) {
		t.Fatalf("Fit used %d points, want %d", law.N, len(xs))
	}
}

func TestFitDegenerateCases(t *testing.T) {
	if law := Fit(nil, nil); law.A != 0 || law.B != 0 || law.N != 0 {
		t.Fatalf("empty fit = %v, want zero curve", law)
	}
	// Non-positive samples are skipped entirely.
	if law := Fit([]float64{100, 200}, []float64{0, -1}); law.N != 0 {
		t.Fatalf("all-non-positive fit used %d points, want 0", law.N)
	}
	// A single usable point (or a single distinct x) fits flat.
	law := Fit([]float64{100}, []float64{0.25})
	if law.B != 0 || math.Abs(law.A-0.25) > 1e-12 {
		t.Fatalf("single-point fit = %v, want flat 0.25", law)
	}
	law = Fit([]float64{100, 100}, []float64{0.1, 0.4})
	if law.B != 0 || math.Abs(law.Eval(100)-0.2) > 1e-12 {
		t.Fatalf("single-x fit = %v, Eval(100)=%g, want geometric mean 0.2", law, law.Eval(100))
	}
}

// gridModel builds a measured model over a small grid from the analytic
// curves, the same way the sweep harness records stack-simulation
// output.
func gridModel(t *testing.T) (*search.Measured, search.Space) {
	t.Helper()
	space := search.Table5()
	an := search.MachLike()
	m := search.NewMeasured(an.BaseCPI())
	for _, cfg := range space.TLBConfigs() {
		m.TLB[cfg] = an.TLBCPI(cfg)
	}
	for _, cfg := range space.CacheConfigs() {
		m.IC[cfg] = an.ICacheCPI(cfg)
		m.DC[cfg] = an.DCacheCPI(cfg)
	}
	return m, space
}

func TestExtendedMatchesMeasuredOnGrid(t *testing.T) {
	m, space := gridModel(t)
	e := FromMeasured(m)
	if e.BaseCPI() != m.Base {
		t.Fatalf("BaseCPI = %g, want %g", e.BaseCPI(), m.Base)
	}
	for _, cfg := range space.TLBConfigs() {
		if got, want := e.TLBCPI(cfg), m.TLB[cfg]; got != want {
			t.Fatalf("TLBCPI(%v) = %g, want exact measured %g", cfg, got, want)
		}
	}
	for _, cfg := range space.CacheConfigs() {
		if got, want := e.ICacheCPI(cfg), m.IC[cfg]; got != want {
			t.Fatalf("ICacheCPI(%v) = %g, want exact measured %g", cfg, got, want)
		}
		if got, want := e.DCacheCPI(cfg), m.DC[cfg]; got != want {
			t.Fatalf("DCacheCPI(%v) = %g, want exact measured %g", cfg, got, want)
		}
		if !e.Measured(area.TLBConfig{Entries: 64, Assoc: 1}, cfg, cfg) {
			t.Fatalf("Measured(%v) = false for an on-grid triple", cfg)
		}
	}
}

func TestExtendedPricesOffGrid(t *testing.T) {
	m, _ := gridModel(t)
	e := FromMeasured(m)

	// A 64-KB cache is outside Table 5; the class fit must price it
	// finitely and positively, below the measured 32-KB point of the
	// same class (misses fall with capacity).
	small := area.CacheConfig{CapacityBytes: 32 << 10, LineWords: 4, Assoc: 2}
	large := area.CacheConfig{CapacityBytes: 64 << 10, LineWords: 4, Assoc: 2}
	got := e.ICacheCPI(large)
	if !(got > 0) || math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("off-grid ICacheCPI = %g, want finite positive", got)
	}
	if got >= e.ICacheCPI(small) {
		t.Fatalf("off-grid 64KB CPI %g not below measured 32KB CPI %g", got, e.ICacheCPI(small))
	}

	// An unmeasured class (16-way) must fall back to the nearest
	// measured class rather than returning zero.
	odd := area.CacheConfig{CapacityBytes: 8 << 10, LineWords: 4, Assoc: 16}
	if got := e.DCacheCPI(odd); !(got > 0) {
		t.Fatalf("nearest-class DCacheCPI = %g, want positive", got)
	}

	// Same for TLBs: a 1024-entry 4-way TLB is off-grid.
	tlb := area.TLBConfig{Entries: 1024, Assoc: 4}
	if got := e.TLBCPI(tlb); !(got > 0) || math.IsNaN(got) {
		t.Fatalf("off-grid TLBCPI = %g, want finite positive", got)
	}
	if e.Measured(tlb, small, small) {
		t.Fatal("Measured reported true for an off-grid TLB")
	}
}

func TestBoundAdmissible(t *testing.T) {
	m, space := gridModel(t)
	e := FromMeasured(m)
	b := e.Bound()

	// On the measured grid the bound answers exactly (never above the
	// actual value by construction: exact lookup).
	for _, cfg := range space.TLBConfigs() {
		if got, want := b.TLBCPI(cfg), m.TLB[cfg]; got != want {
			t.Fatalf("bound TLBCPI(%v) = %g, want exact %g", cfg, got, want)
		}
	}
	for _, cfg := range space.CacheConfigs() {
		if got, want := b.ICacheCPI(cfg), m.IC[cfg]; got != want {
			t.Fatalf("bound ICacheCPI(%v) = %g, want exact %g", cfg, got, want)
		}
		if got, want := b.DCacheCPI(cfg), m.DC[cfg]; got != want {
			t.Fatalf("bound DCacheCPI(%v) = %g, want exact %g", cfg, got, want)
		}
	}

	// The slack factors guarantee fitted-path predictions never exceed
	// any measured point the fit covered: prediction*slack <= actual on
	// the whole grid. Verify directly against the fitted path.
	icS, dcS, tlbS := e.Slack()
	if icS > 1 || dcS > 1 || tlbS > 1 || icS <= 0 || dcS <= 0 || tlbS <= 0 {
		t.Fatalf("slack factors (%g, %g, %g) outside (0, 1]", icS, dcS, tlbS)
	}
	for cfg, actual := range m.IC {
		if pred := e.ic.predict(cfg) * icS; pred > actual+1e-12 {
			t.Fatalf("IC bound %g exceeds measured %g at %v", pred, actual, cfg)
		}
	}
	for cfg, actual := range m.DC {
		if pred := e.dc.predict(cfg) * dcS; pred > actual+1e-12 {
			t.Fatalf("DC bound %g exceeds measured %g at %v", pred, actual, cfg)
		}
	}
	for cfg, actual := range m.TLB {
		if pred := e.tlb.predict(cfg) * tlbS; pred > actual+1e-12 {
			t.Fatalf("TLB bound %g exceeds measured %g at %v", pred, actual, cfg)
		}
	}

	// Off the grid, the bound is optimistic relative to the extended
	// model's own prediction (slack <= 1).
	off := area.CacheConfig{CapacityBytes: 64 << 10, LineWords: 4, Assoc: 2}
	if b.ICacheCPI(off) > e.ICacheCPI(off) {
		t.Fatalf("off-grid bound %g exceeds extended prediction %g", b.ICacheCPI(off), e.ICacheCPI(off))
	}
	if b.BaseCPI() != e.BaseCPI() {
		t.Fatalf("bound BaseCPI %g != extended %g", b.BaseCPI(), e.BaseCPI())
	}
}

// The extended model must be usable where it matters: driving both
// search strategies over a space larger than the measured grid and
// producing identical top-K rankings.
func TestExtendedDrivesBothStrategiesIdentically(t *testing.T) {
	m, _ := gridModel(t)
	e := FromMeasured(m)

	// A modest super-space of Table 5: some off-grid sizes and TLBs.
	space := search.Table5()
	space.CacheSizes = append(space.CacheSizes, 64<<10)
	space.TLBEntries = append(space.TLBEntries, 1024)

	const k = 10
	ex := search.Enumerate(space, area.Default(), area.BudgetRBE, e)
	pr, err := search.EnumerateE(space, area.Default(), area.BudgetRBE, e, search.WithPruning(k))
	if err != nil {
		t.Fatalf("pruned: %v", err)
	}
	want := search.Top(ex, k)
	if len(pr) != len(want) {
		t.Fatalf("pruned returned %d allocations, want %d", len(pr), len(want))
	}
	for i := range want {
		if pr[i] != want[i] {
			t.Fatalf("rank %d differs:\npruned:     %v\nexhaustive: %v", i+1, pr[i], want[i])
		}
	}
}
