// Package missmodel fits analytical miss-rate curves to the measured
// sweep output and extends the measured performance model beyond the
// simulated grid, in the spirit of Yavits et al.'s convex
// cache-hierarchy optimization (PAPERS.md): within one associativity /
// line-size class, cache miss traffic follows a power law in capacity
// (miss CPI ~ a * size^-b), so a least-squares fit in log space over
// the Cheetah sweep's exact measurements prices configurations the
// sweep never simulated.
//
// Two uses:
//
//   - Extended is a search.PerfModel for production-scale spaces
//     (search.Big()): configurations on the measured grid keep their
//     exact stack-simulation values bit-for-bit; configurations outside
//     it are priced by the fitted class curve. Both search strategies
//     consult the same model, so pruned-vs-exhaustive byte-identity is
//     preserved off the grid too.
//
//   - Bound is the admissible optimistic variant: every prediction is
//     scaled by the class's minimum observed actual/fitted ratio, so on
//     the measured grid the bound NEVER exceeds the exact value
//     (TestBoundAdmissible pins this). A branch-and-bound search that
//     prices subtrees with Bound and only discards those whose
//     optimistic CPI cannot beat the incumbent therefore never prunes a
//     configuration that exact simulation would have ranked -- the
//     admissibility argument DESIGN.md section 15 spells out.
package missmodel

import (
	"fmt"
	"math"
	"sort"

	"onchip/internal/area"
	"onchip/internal/search"
)

// PowerLaw is one fitted curve: Eval(x) = A * x^-B.
type PowerLaw struct {
	A, B float64
	// N is the number of points the fit used.
	N int
}

// Eval evaluates the curve at x (> 0).
func (p PowerLaw) Eval(x float64) float64 { return p.A * math.Pow(x, -p.B) }

func (p PowerLaw) String() string { return fmt.Sprintf("%.4g*x^-%.3f (n=%d)", p.A, p.B, p.N) }

// Fit least-squares fits y = A * x^-B in log space. Non-positive
// samples are skipped (log undefined); with fewer than two usable
// distinct x values the fit degenerates to the flat mean of the usable
// ys (B = 0), and with no usable points at all to the zero curve.
func Fit(xs, ys []float64) PowerLaw {
	var sx, sy, sxx, sxy float64
	var n int
	minX, maxX := math.Inf(1), math.Inf(-1)
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			continue
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
		n++
		minX, maxX = math.Min(minX, xs[i]), math.Max(maxX, xs[i])
	}
	if n == 0 {
		return PowerLaw{}
	}
	if n == 1 || minX == maxX {
		return PowerLaw{A: math.Exp(sy / float64(n)), B: 0, N: n}
	}
	den := float64(n)*sxx - sx*sx
	slope := (float64(n)*sxy - sx*sy) / den
	inter := (sy - slope*sx) / float64(n)
	return PowerLaw{A: math.Exp(inter), B: -slope, N: n}
}

// class groups cache measurements that share a miss-curve shape: one
// power law per (associativity, line size) pair, fit across capacities.
type class struct {
	assoc, line int
}

// fitted is one stream's (I or D) fitted family plus its admissibility
// slack: the minimum over the measured grid of actual/fitted, so
// prediction*slack never exceeds any measured value the fit saw.
type fitted struct {
	curves map[class]PowerLaw
	slack  float64
}

// predict prices cfg: the class curve when the class was measured,
// otherwise the nearest measured class (by associativity distance, then
// line-size distance in log space, deterministic tie toward the
// smaller), evaluated at cfg's capacity.
func (f fitted) predict(cfg area.CacheConfig) float64 {
	want := class{assoc: cfg.Assoc, line: cfg.LineWords}
	if law, ok := f.curves[want]; ok {
		return law.Eval(float64(cfg.CapacityBytes))
	}
	best, ok := f.nearest(want)
	if !ok {
		return 0
	}
	return f.curves[best].Eval(float64(cfg.CapacityBytes))
}

// nearest finds the measured class closest to want. Associativity
// distance dominates (a fully-associative class, Assoc 0, is treated as
// 16-way for distance purposes so it lands near the highest measured
// associativities), then line size; ties resolve toward the smaller
// class so the choice is deterministic.
func (f fitted) nearest(want class) (class, bool) {
	keys := make([]class, 0, len(f.curves))
	for c := range f.curves {
		keys = append(keys, c)
	}
	if len(keys) == 0 {
		return class{}, false
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].assoc != keys[j].assoc {
			return keys[i].assoc < keys[j].assoc
		}
		return keys[i].line < keys[j].line
	})
	rank := func(assoc int) float64 {
		if assoc == area.FullyAssociative {
			return math.Log2(16)
		}
		return math.Log2(float64(assoc))
	}
	dist := func(c class) (float64, float64) {
		return math.Abs(rank(c.assoc) - rank(want.assoc)),
			math.Abs(math.Log2(float64(c.line)) - math.Log2(float64(want.line)))
	}
	best := keys[0]
	ba, bl := dist(best)
	for _, c := range keys[1:] {
		da, dl := dist(c)
		if da < ba || (da == ba && dl < bl) {
			best, ba, bl = c, da, dl
		}
	}
	return best, true
}

// tlbFitted is the TLB analog: one power law per associativity class,
// fit across entry counts.
type tlbFitted struct {
	curves map[int]PowerLaw
	slack  float64
}

func (f tlbFitted) predict(cfg area.TLBConfig) float64 {
	if law, ok := f.curves[cfg.Assoc]; ok {
		return law.Eval(float64(cfg.Entries))
	}
	// Nearest measured associativity class, FullyAssociative ranked
	// above 8-way, ties toward the smaller class.
	keys := make([]int, 0, len(f.curves))
	for a := range f.curves {
		keys = append(keys, a)
	}
	if len(keys) == 0 {
		return 0
	}
	sort.Ints(keys)
	rank := func(a int) float64 {
		if a == area.FullyAssociative {
			return math.Log2(16)
		}
		return math.Log2(float64(a))
	}
	best, bd := keys[0], math.Abs(rank(keys[0])-rank(cfg.Assoc))
	for _, a := range keys[1:] {
		if d := math.Abs(rank(a) - rank(cfg.Assoc)); d < bd {
			best, bd = a, d
		}
	}
	return f.curves[best].Eval(float64(cfg.Entries))
}

// Extended is a search.PerfModel that answers exactly from the measured
// grid and from the fitted power-law families everywhere else.
type Extended struct {
	measured *search.Measured
	ic, dc   fitted
	tlb      tlbFitted
}

// FromMeasured fits the power-law families to a measured model built by
// the sweep harness and returns the extended model.
func FromMeasured(m *search.Measured) *Extended {
	e := &Extended{measured: m}
	e.ic = fitCacheFamily(m.IC)
	e.dc = fitCacheFamily(m.DC)
	e.tlb = fitTLBFamily(m.TLB)
	return e
}

func fitCacheFamily(samples map[area.CacheConfig]float64) fitted {
	byClass := map[class][][2]float64{}
	for cfg, v := range samples {
		c := class{assoc: cfg.Assoc, line: cfg.LineWords}
		byClass[c] = append(byClass[c], [2]float64{float64(cfg.CapacityBytes), v})
	}
	f := fitted{curves: make(map[class]PowerLaw, len(byClass)), slack: 1}
	for c, pts := range byClass {
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, p := range pts {
			xs[i], ys[i] = p[0], p[1]
		}
		f.curves[c] = Fit(xs, ys)
	}
	// Admissibility slack over every measured point the family covers.
	for cfg, actual := range samples {
		pred := f.predict(cfg)
		if pred <= 0 {
			continue
		}
		if r := actual / pred; r < f.slack {
			f.slack = r
		}
	}
	return f
}

func fitTLBFamily(samples map[area.TLBConfig]float64) tlbFitted {
	byAssoc := map[int][][2]float64{}
	for cfg, v := range samples {
		byAssoc[cfg.Assoc] = append(byAssoc[cfg.Assoc], [2]float64{float64(cfg.Entries), v})
	}
	f := tlbFitted{curves: make(map[int]PowerLaw, len(byAssoc)), slack: 1}
	for a, pts := range byAssoc {
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, p := range pts {
			xs[i], ys[i] = p[0], p[1]
		}
		f.curves[a] = Fit(xs, ys)
	}
	for cfg, actual := range samples {
		pred := f.predict(cfg)
		if pred <= 0 {
			continue
		}
		if r := actual / pred; r < f.slack {
			f.slack = r
		}
	}
	return f
}

// ICacheCPI implements search.PerfModel: exact on the grid, fitted off
// it.
func (e *Extended) ICacheCPI(cfg area.CacheConfig) float64 {
	if v, ok := e.measured.IC[cfg]; ok {
		return v
	}
	return e.ic.predict(cfg)
}

// DCacheCPI implements search.PerfModel.
func (e *Extended) DCacheCPI(cfg area.CacheConfig) float64 {
	if v, ok := e.measured.DC[cfg]; ok {
		return v
	}
	return e.dc.predict(cfg)
}

// TLBCPI implements search.PerfModel.
func (e *Extended) TLBCPI(cfg area.TLBConfig) float64 {
	if v, ok := e.measured.TLB[cfg]; ok {
		return v
	}
	return e.tlb.predict(cfg)
}

// BaseCPI implements search.PerfModel.
func (e *Extended) BaseCPI() float64 { return e.measured.Base }

// Measured reports whether the configuration triple lies entirely on
// the simulated grid (every component carries an exact value rather
// than a fitted prediction). Report layers use it to flag modeled rows.
func (e *Extended) Measured(tlb area.TLBConfig, icache, dcache area.CacheConfig) bool {
	_, t := e.measured.TLB[tlb]
	_, i := e.measured.IC[icache]
	_, d := e.measured.DC[dcache]
	return t && i && d
}

// Bound returns the admissible optimistic companion model: every
// fitted prediction scaled by its family's slack (min actual/fitted
// over the measured grid), and every on-grid lookup answered exactly.
// For all measured configurations, Bound's value <= the exact value,
// which is what makes a bound-driven prune safe: a subtree whose
// optimistic CPI cannot beat the incumbent cannot contain a true
// winner.
func (e *Extended) Bound() search.PerfModel { return boundModel{e} }

// Slack reports the per-family admissibility factors (I-cache, D-cache,
// TLB): the minimum observed actual/fitted ratio each family scales its
// optimistic predictions by.
func (e *Extended) Slack() (ic, dc, tlb float64) { return e.ic.slack, e.dc.slack, e.tlb.slack }

type boundModel struct{ e *Extended }

func (b boundModel) ICacheCPI(cfg area.CacheConfig) float64 {
	if v, ok := b.e.measured.IC[cfg]; ok {
		return v
	}
	return b.e.ic.predict(cfg) * b.e.ic.slack
}

func (b boundModel) DCacheCPI(cfg area.CacheConfig) float64 {
	if v, ok := b.e.measured.DC[cfg]; ok {
		return v
	}
	return b.e.dc.predict(cfg) * b.e.dc.slack
}

func (b boundModel) TLBCPI(cfg area.TLBConfig) float64 {
	if v, ok := b.e.measured.TLB[cfg]; ok {
		return v
	}
	return b.e.tlb.predict(cfg) * b.e.tlb.slack
}

func (b boundModel) BaseCPI() float64 { return b.e.measured.Base }
