package search

import (
	"fmt"
	"math"

	"onchip/internal/area"
)

// Measured is a PerfModel backed by simulation results: the experiment
// harness sweeps the design space with the cache and TLB simulators and
// records each configuration's CPI contribution here. Lookup of an
// unmeasured configuration panics -- the sweep and the search must
// enumerate the same space.
type Measured struct {
	TLB  map[area.TLBConfig]float64
	IC   map[area.CacheConfig]float64
	DC   map[area.CacheConfig]float64
	Base float64
}

// NewMeasured returns an empty measured model with the given base CPI
// (1.0 plus the configuration-independent write-buffer and other
// stalls).
func NewMeasured(base float64) *Measured {
	return &Measured{
		TLB:  make(map[area.TLBConfig]float64),
		IC:   make(map[area.CacheConfig]float64),
		DC:   make(map[area.CacheConfig]float64),
		Base: base,
	}
}

// TLBCPI implements PerfModel.
func (m *Measured) TLBCPI(cfg area.TLBConfig) float64 {
	v, ok := m.TLB[cfg]
	if !ok {
		panic(fmt.Sprintf("search: TLB config %v was not measured", cfg))
	}
	return v
}

// ICacheCPI implements PerfModel.
func (m *Measured) ICacheCPI(cfg area.CacheConfig) float64 {
	v, ok := m.IC[cfg]
	if !ok {
		panic(fmt.Sprintf("search: I-cache config %v was not measured", cfg))
	}
	return v
}

// DCacheCPI implements PerfModel.
func (m *Measured) DCacheCPI(cfg area.CacheConfig) float64 {
	v, ok := m.DC[cfg]
	if !ok {
		panic(fmt.Sprintf("search: D-cache config %v was not measured", cfg))
	}
	return v
}

// BaseCPI implements PerfModel.
func (m *Measured) BaseCPI() float64 { return m.Base }

// Analytic is a closed-form PerfModel with power-law miss curves. It is
// not a substitute for simulation -- the experiments use Measured -- but
// it gives tests and examples a fast, monotone, qualitatively correct
// benefit model: misses fall with capacity and associativity, large
// lines help the I-stream more than the D-stream, and TLB service time
// flattens once the page working set fits.
type Analytic struct {
	// PageWorkingSet is the number of pages the workload cycles
	// through (drives the TLB curve).
	PageWorkingSet int
	// IMissAt8K and DMissAt8K anchor the miss-ratio curves for a
	// direct-mapped 4-word-line 8-KB cache.
	IMissAt8K float64
	DMissAt8K float64
	// IFrac and DFrac are references per instruction for each stream.
	IFrac, DFrac float64
	// Base is the configuration-independent CPI floor.
	Base float64
}

// MachLike returns an analytic model tuned to the paper's Mach
// measurements: high I-miss ratios with strong line-size response and a
// page working set that defeats small TLBs.
func MachLike() Analytic {
	return Analytic{
		PageWorkingSet: 280,
		IMissAt8K:      0.065,
		DMissAt8K:      0.030,
		IFrac:          1.0,
		DFrac:          0.35,
		Base:           1.0 + 0.23 + 0.06, // write buffer + other, Table 4 averages
	}
}

// UltrixLike returns an analytic model tuned to the paper's Ultrix
// measurements.
func UltrixLike() Analytic {
	return Analytic{
		PageWorkingSet: 90,
		IMissAt8K:      0.028,
		DMissAt8K:      0.035,
		IFrac:          1.0,
		DFrac:          0.35,
		Base:           1.0 + 0.18 + 0.08,
	}
}

// assocFactor reduces misses with associativity, saturating at 8-way.
func assocFactor(assoc int) float64 {
	if assoc == area.FullyAssociative {
		return 0.62
	}
	switch {
	case assoc >= 8:
		return 0.64
	case assoc >= 4:
		return 0.68
	case assoc >= 2:
		return 0.75
	default:
		return 1.0
	}
}

// missRatio is the analytic cache miss-ratio curve: power law in
// capacity, line-size amortization with a pollution upturn, and an
// associativity factor.
func (a Analytic) missRatio(anchor float64, cfg area.CacheConfig, lineExp float64, polluteAt int) float64 {
	size := float64(cfg.CapacityBytes) / (8 << 10)
	line := float64(cfg.LineWords) / 4
	m := anchor * math.Pow(size, -0.55) * math.Pow(line, -lineExp) * assocFactor(cfg.Assoc)
	if cfg.LineWords > polluteAt {
		// Cache pollution: beyond the pollution point, larger lines
		// displace live data.
		m *= float64(cfg.LineWords) / float64(polluteAt)
	}
	return m
}

// ICacheCPI implements PerfModel.
func (a Analytic) ICacheCPI(cfg area.CacheConfig) float64 {
	m := a.missRatio(a.IMissAt8K, cfg, 0.85, 16)
	return a.IFrac * m * float64(missPenalty(cfg.LineWords))
}

// DCacheCPI implements PerfModel.
func (a Analytic) DCacheCPI(cfg area.CacheConfig) float64 {
	m := a.missRatio(a.DMissAt8K, cfg, 0.55, 8)
	return a.DFrac * m * float64(missPenalty(cfg.LineWords))
}

// TLBCPI implements PerfModel: misses fall steeply until the TLB covers
// the page working set, then hit the compulsory floor.
func (a Analytic) TLBCPI(cfg area.TLBConfig) float64 {
	eff := float64(cfg.Entries) * tlbAssocFactor(cfg)
	coverage := eff / float64(a.PageWorkingSet)
	const floor = 0.01
	if coverage >= 1.4 {
		return floor
	}
	miss := 0.25 * math.Pow(coverage, -1.6) // misses per 100 instructions scale
	return floor + miss*0.02
}

func tlbAssocFactor(cfg area.TLBConfig) float64 {
	if cfg.Assoc == area.FullyAssociative {
		return 1.0
	}
	switch {
	case cfg.Assoc >= 8:
		return 0.97
	case cfg.Assoc >= 4:
		return 0.95
	case cfg.Assoc >= 2:
		return 0.90
	default:
		return 0.70 // direct-mapped TLBs perform very poorly (Figure 8)
	}
}

// BaseCPI implements PerfModel.
func (a Analytic) BaseCPI() float64 { return a.Base }

// missPenalty mirrors cache.MissPenalty without importing the simulator.
func missPenalty(lineWords int) int { return 6 + (lineWords - 1) }
