// Package search implements the paper's Section 5.4 cost/benefit
// analysis: enumerate every TLB / I-cache / D-cache configuration in the
// Table 5 design space, price each with the MQF area model, keep the
// combinations that fit the 250,000-rbe on-chip memory budget, attach
// the CPI contribution of each component from measured performance data,
// and rank by total CPI -- producing Tables 6 and 7.
package search

import (
	"fmt"
	"sort"
	"time"

	"onchip/internal/area"
)

// Space is the configuration space to enumerate (the paper's Table 5).
type Space struct {
	TLBEntries    []int
	TLBAssocs     []int // set associativities; FullyAssociative entries listed in TLBFAEntries
	TLBFAEntries  []int // entry counts offered fully-associative
	CacheSizes    []int // bytes, applied to both I- and D-caches
	CacheAssocs   []int
	CacheLines    []int // words
	MaxCacheAssoc int   // 0 = no restriction; 2 reproduces Table 7
}

// Table5 returns the paper's design space: TLBs from 64 to 512 entries,
// 1- to 8-way set-associative plus fully-associative up to 64 entries;
// caches from 2 to 32 KB, 1- to 8-way, with 1- to 32-word lines.
func Table5() Space {
	return Space{
		TLBEntries:   []int{64, 128, 256, 512},
		TLBAssocs:    []int{1, 2, 4, 8},
		TLBFAEntries: []int{64},
		CacheSizes:   []int{2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10},
		CacheAssocs:  []int{1, 2, 4, 8},
		CacheLines:   []int{1, 2, 4, 8, 16, 32},
	}
}

// TLBConfigs expands the space's TLB configurations.
func (s Space) TLBConfigs() []area.TLBConfig {
	var out []area.TLBConfig
	for _, e := range s.TLBEntries {
		for _, a := range s.TLBAssocs {
			if a > e {
				continue
			}
			out = append(out, area.TLBConfig{Entries: e, Assoc: a})
		}
	}
	for _, e := range s.TLBFAEntries {
		out = append(out, area.TLBConfig{Entries: e, Assoc: area.FullyAssociative})
	}
	return out
}

// CacheConfigs expands the space's cache configurations, honoring
// MaxCacheAssoc.
func (s Space) CacheConfigs() []area.CacheConfig {
	var out []area.CacheConfig
	for _, size := range s.CacheSizes {
		for _, a := range s.CacheAssocs {
			if s.MaxCacheAssoc > 0 && a > s.MaxCacheAssoc {
				continue
			}
			for _, l := range s.CacheLines {
				c := area.CacheConfig{CapacityBytes: size, LineWords: l, Assoc: a}
				if c.Validate() != nil {
					continue
				}
				out = append(out, c)
			}
		}
	}
	return out
}

// PerfModel supplies the benefit side: CPI contributions of each
// structure under the workload of interest (the paper uses Mach
// measurements), plus the configuration-independent base (1.0 plus write
// buffer and other stalls).
type PerfModel interface {
	TLBCPI(cfg area.TLBConfig) float64
	ICacheCPI(cfg area.CacheConfig) float64
	DCacheCPI(cfg area.CacheConfig) float64
	BaseCPI() float64
}

// Allocation is one complete on-chip memory configuration with its cost
// and performance.
type Allocation struct {
	TLB     area.TLBConfig
	ICache  area.CacheConfig
	DCache  area.CacheConfig
	AreaRBE float64
	CPI     float64
}

func (a Allocation) String() string {
	return fmt.Sprintf("%v | I: %v | D: %v | %.0f rbes | CPI %.3f",
		a.TLB, a.ICache, a.DCache, a.AreaRBE, a.CPI)
}

// Progress is a snapshot of a running enumeration, delivered to the
// callback installed with WithProgress.
type Progress struct {
	// Priced is the number of TLB x I-cache x D-cache combinations
	// considered so far; Total the size of the whole space.
	Priced, Total int
	// Kept is the number of combinations within the area budget so far.
	Kept int
	// Elapsed is the wall time since enumeration began; ETA the
	// estimated remaining time, extrapolated from the pricing rate.
	Elapsed, ETA time.Duration
	// Done marks the final report (Priced == Total).
	Done bool
}

// MarshalJSON emits the snapshot with durations in seconds, the shape
// served by the observability plane's /sweep endpoint.
func (p Progress) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf(
		`{"priced":%d,"total":%d,"kept":%d,"elapsed_seconds":%.3f,"eta_seconds":%.3f,"done":%v}`,
		p.Priced, p.Total, p.Kept, p.Elapsed.Seconds(), p.ETA.Seconds(), p.Done)), nil
}

func (p Progress) String() string {
	if p.Done {
		return fmt.Sprintf("priced %d/%d configs, %d within budget, %.2fs",
			p.Priced, p.Total, p.Kept, p.Elapsed.Seconds())
	}
	return fmt.Sprintf("priced %d/%d configs (%.0f%%), %d within budget, ETA %.1fs",
		p.Priced, p.Total, 100*float64(p.Priced)/float64(p.Total), p.Kept, p.ETA.Seconds())
}

// Option configures an enumeration.
type Option func(*options)

type options struct {
	progress      func(Progress)
	progressEvery int
}

// WithProgress installs a callback that receives sweep progress roughly
// every `every` combinations (0 selects a default granularity) and once
// more with Done set when enumeration completes.
func WithProgress(every int, f func(Progress)) Option {
	return func(o *options) {
		o.progress = f
		o.progressEvery = every
	}
}

// Enumerate prices every combination in the space, filters to the area
// budget, computes total CPI with the performance model, and returns the
// allocations sorted by ascending CPI (ties by ascending area). Component
// areas and CPIs are computed once per distinct configuration, so the
// full Table 5 space (about a quarter-million combinations) enumerates
// in milliseconds.
func Enumerate(space Space, am area.Model, budget float64, pm PerfModel, opts ...Option) []Allocation {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	type pricedTLB struct {
		cfg       area.TLBConfig
		area, cpi float64
	}
	type pricedCache struct {
		cfg  area.CacheConfig
		area float64
		icpi float64
		dcpi float64
	}
	var tlbs []pricedTLB
	for _, t := range space.TLBConfigs() {
		tlbs = append(tlbs, pricedTLB{t, am.TLBArea(t), pm.TLBCPI(t)})
	}
	var caches []pricedCache
	for _, c := range space.CacheConfigs() {
		caches = append(caches, pricedCache{c, am.CacheArea(c), pm.ICacheCPI(c), pm.DCacheCPI(c)})
	}

	base := pm.BaseCPI()
	var out []Allocation

	// Progress accounting: a (TLB, I-cache) pair over budget prunes all
	// |caches| D-cache combinations at once; count them as priced so
	// Priced converges on Total.
	spaceSize := len(tlbs) * len(caches) * len(caches)
	every := o.progressEvery
	if every <= 0 {
		every = 1 << 16
	}
	priced, nextReport := 0, every
	start := time.Now()
	report := func(done bool) {
		if o.progress == nil {
			return
		}
		p := Progress{Priced: priced, Total: spaceSize, Kept: len(out), Elapsed: time.Since(start), Done: done}
		if !done && priced > 0 {
			p.ETA = time.Duration(float64(p.Elapsed) * float64(spaceSize-priced) / float64(priced))
		}
		o.progress(p)
	}

	for _, t := range tlbs {
		for _, ic := range caches {
			at := t.area + ic.area
			if at > budget {
				priced += len(caches)
			} else {
				for _, dc := range caches {
					total := at + dc.area
					if total <= budget {
						out = append(out, Allocation{
							TLB:     t.cfg,
							ICache:  ic.cfg,
							DCache:  dc.cfg,
							AreaRBE: total,
							CPI:     base + t.cpi + ic.icpi + dc.dcpi,
						})
					}
				}
				priced += len(caches)
			}
			if priced >= nextReport {
				report(false)
				nextReport = priced + every
			}
		}
	}
	report(true)
	sort.Slice(out, func(i, j int) bool {
		if out[i].CPI != out[j].CPI {
			return out[i].CPI < out[j].CPI
		}
		return out[i].AreaRBE < out[j].AreaRBE
	})
	return out
}

// EnumerateFiltered is Enumerate with an extra feasibility predicate --
// used to impose the access-time (cycle-time) constraint of the paper's
// proposed extension, or any other designer rule.
func EnumerateFiltered(space Space, am area.Model, budget float64, pm PerfModel,
	keep func(tlb area.TLBConfig, icache, dcache area.CacheConfig) bool, opts ...Option) []Allocation {
	all := Enumerate(space, am, budget, pm, opts...)
	out := all[:0]
	for _, a := range all {
		if keep(a.TLB, a.ICache, a.DCache) {
			out = append(out, a)
		}
	}
	return out
}

// Top returns the first n allocations (or fewer).
func Top(allocs []Allocation, n int) []Allocation {
	if len(allocs) < n {
		n = len(allocs)
	}
	return allocs[:n]
}
