// Package search implements the paper's Section 5.4 cost/benefit
// analysis: enumerate every TLB / I-cache / D-cache configuration in the
// Table 5 design space, price each with the MQF area model, keep the
// combinations that fit the 250,000-rbe on-chip memory budget, attach
// the CPI contribution of each component from measured performance data,
// and rank by total CPI -- producing Tables 6 and 7.
package search

import (
	"context"
	"fmt"
	"time"

	"onchip/internal/area"
	"onchip/internal/spans"
)

// Space is the configuration space to enumerate (the paper's Table 5).
type Space struct {
	TLBEntries    []int
	TLBAssocs     []int // set associativities; FullyAssociative entries listed in TLBFAEntries
	TLBFAEntries  []int // entry counts offered fully-associative
	CacheSizes    []int // bytes, applied to both I- and D-caches
	CacheAssocs   []int
	CacheLines    []int // words
	MaxCacheAssoc int   // 0 = no restriction; 2 reproduces Table 7
}

// Table5 returns the paper's design space: TLBs from 64 to 512 entries,
// 1- to 8-way set-associative plus fully-associative up to 64 entries;
// caches from 2 to 32 KB, 1- to 8-way, with 1- to 32-word lines.
func Table5() Space {
	return Space{
		TLBEntries:   []int{64, 128, 256, 512},
		TLBAssocs:    []int{1, 2, 4, 8},
		TLBFAEntries: []int{64},
		CacheSizes:   []int{2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10},
		CacheAssocs:  []int{1, 2, 4, 8},
		CacheLines:   []int{1, 2, 4, 8, 16, 32},
	}
}

// Big returns the production-scale design space of ROADMAP item 2: the
// Table 5 axes extended to finer and larger organizations -- TLBs from
// 16 to 2048 entries with up to 16-way and more fully-associative
// points, caches from 1 to 256 KB with lines up to 64 words and up to
// 16-way associativity. The composed TLB x I-cache x D-cache space
// exceeds a million triples (TestBigSpaceSize pins the floor), which is
// what the pruned search exists to price; exhaustive enumeration still
// works, just slowly.
func Big() Space {
	return Space{
		TLBEntries:   []int{16, 32, 64, 128, 256, 512, 1024, 2048},
		TLBAssocs:    []int{1, 2, 4, 8, 16},
		TLBFAEntries: []int{16, 32, 64, 128},
		CacheSizes: []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10,
			32 << 10, 64 << 10, 128 << 10, 256 << 10},
		CacheAssocs: []int{1, 2, 4, 8, 16},
		CacheLines:  []int{1, 2, 4, 8, 16, 32, 64},
	}
}

// Triples returns the size of the composed TLB x I-cache x D-cache
// space: the denominator of every progress report and the "configs"
// in configs/sec throughput numbers.
func (s Space) Triples() int {
	nc := len(s.CacheConfigs())
	return len(s.TLBConfigs()) * nc * nc
}

// TLBConfigs expands the space's TLB configurations.
func (s Space) TLBConfigs() []area.TLBConfig {
	var out []area.TLBConfig
	for _, e := range s.TLBEntries {
		for _, a := range s.TLBAssocs {
			if a > e {
				continue
			}
			out = append(out, area.TLBConfig{Entries: e, Assoc: a})
		}
	}
	for _, e := range s.TLBFAEntries {
		out = append(out, area.TLBConfig{Entries: e, Assoc: area.FullyAssociative})
	}
	return out
}

// CacheConfigs expands the space's cache configurations, honoring
// MaxCacheAssoc.
func (s Space) CacheConfigs() []area.CacheConfig {
	var out []area.CacheConfig
	for _, size := range s.CacheSizes {
		for _, a := range s.CacheAssocs {
			if s.MaxCacheAssoc > 0 && a > s.MaxCacheAssoc {
				continue
			}
			for _, l := range s.CacheLines {
				c := area.CacheConfig{CapacityBytes: size, LineWords: l, Assoc: a}
				if c.Validate() != nil {
					continue
				}
				out = append(out, c)
			}
		}
	}
	return out
}

// PerfModel supplies the benefit side: CPI contributions of each
// structure under the workload of interest (the paper uses Mach
// measurements), plus the configuration-independent base (1.0 plus write
// buffer and other stalls).
type PerfModel interface {
	TLBCPI(cfg area.TLBConfig) float64
	ICacheCPI(cfg area.CacheConfig) float64
	DCacheCPI(cfg area.CacheConfig) float64
	BaseCPI() float64
}

// Allocation is one complete on-chip memory configuration with its cost
// and performance.
type Allocation struct {
	TLB     area.TLBConfig
	ICache  area.CacheConfig
	DCache  area.CacheConfig
	AreaRBE float64
	CPI     float64
}

func (a Allocation) String() string {
	return fmt.Sprintf("%v | I: %v | D: %v | %.0f rbes | CPI %.3f",
		a.TLB, a.ICache, a.DCache, a.AreaRBE, a.CPI)
}

// Progress is a snapshot of a running enumeration, delivered to the
// callback installed with WithProgress.
type Progress struct {
	// Priced is the number of TLB x I-cache x D-cache combinations
	// actually considered so far; Total is the size of the whole
	// composed space (pre-pruning, so the same space reports the same
	// Total under either strategy).
	Priced, Total int
	// Pruned is the number of combinations dismissed without pricing:
	// zero under exhaustive enumeration; under the pruned strategy, the
	// triples removed by the Pareto frontier reduction plus the
	// subtrees skipped by the branch-and-bound cuts. Priced+Pruned
	// converges on Total, so progress views stay live even when almost
	// nothing is individually priced.
	Pruned int
	// Kept is the number of combinations within the area budget so far
	// (under pruning, the current top-K candidate count).
	Kept int
	// Elapsed is the wall time since enumeration began; ETA the
	// estimated remaining time, extrapolated from the coverage rate
	// (priced plus pruned, not priced alone).
	Elapsed, ETA time.Duration
	// Done marks the final report (Priced+Pruned == Total).
	Done bool
}

// Covered is the portion of the composed space accounted for so far,
// priced or pruned. It is the numerator of every rate and percentage
// Progress reports; using Priced alone would show a pruned search
// stalled at a fraction of a percent while it is in fact nearly done.
func (p Progress) Covered() int { return p.Priced + p.Pruned }

// MarshalJSON emits the snapshot with durations in seconds, the shape
// served by the observability plane's /sweep endpoint.
func (p Progress) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf(
		`{"priced":%d,"pruned":%d,"total":%d,"kept":%d,"elapsed_seconds":%.3f,"eta_seconds":%.3f,"done":%v}`,
		p.Priced, p.Pruned, p.Total, p.Kept, p.Elapsed.Seconds(), p.ETA.Seconds(), p.Done)), nil
}

func (p Progress) String() string {
	if p.Pruned > 0 {
		if p.Done {
			return fmt.Sprintf("priced %d + pruned %d of %d configs, %d kept, %.2fs",
				p.Priced, p.Pruned, p.Total, p.Kept, p.Elapsed.Seconds())
		}
		return fmt.Sprintf("priced %d + pruned %d of %d configs (%.0f%%), %d kept, ETA %.1fs",
			p.Priced, p.Pruned, p.Total, 100*float64(p.Covered())/float64(p.Total), p.Kept, p.ETA.Seconds())
	}
	if p.Done {
		return fmt.Sprintf("priced %d/%d configs, %d within budget, %.2fs",
			p.Priced, p.Total, p.Kept, p.Elapsed.Seconds())
	}
	return fmt.Sprintf("priced %d/%d configs (%.0f%%), %d within budget, ETA %.1fs",
		p.Priced, p.Total, 100*float64(p.Priced)/float64(p.Total), p.Kept, p.ETA.Seconds())
}

// Option configures an enumeration.
type Option func(*options)

type options struct {
	progress      func(Progress)
	progressEvery int
	ctx           context.Context
	cpPath        string
	cpLabel       string
	cpEvery       int
	onCheckpoint  func(*Checkpoint)
	resume        *Checkpoint
	lane          *spans.Lane
	pruneTopK     int
	pruneStats    *PruneStats
}

// WithPruning switches the enumeration to the pruned strategy: each
// component axis is reduced to its K-level area/CPI Pareto frontier,
// and the composed space is explored with branch-and-bound under the
// monotone area cost and optimistic CPI lower bounds. Only the topK
// best allocations are returned, but they are byte-identical to
// Top(exhaustive ranking, topK) at equal inputs -- the frontier
// reduction only drops a component configuration when at least topK
// provably better substitutes exist for every composition it appears
// in, and a bound only cuts a subtree when its best possible CPI is
// strictly worse than the current K-th best. topK must be positive.
//
// Pruning composes with WithProgress and WithContext but not with
// WithCheckpoint/WithResume: a pruned search re-prices in milliseconds,
// so EnumerateE refuses the combination instead of persisting state.
func WithPruning(topK int) Option {
	return func(o *options) { o.pruneTopK = topK }
}

// WithPruneStats records the pruned strategy's accounting -- frontier
// sizes and per-cut prune counts -- into st when the enumeration
// completes. Exhaustive runs leave st untouched.
func WithPruneStats(st *PruneStats) Option {
	return func(o *options) { o.pruneStats = st }
}

// WithProgress installs a callback that receives sweep progress roughly
// every `every` combinations (0 selects a default granularity) and once
// more with Done set when enumeration completes.
func WithProgress(every int, f func(Progress)) Option {
	return func(o *options) {
		o.progress = f
		o.progressEvery = every
	}
}

// WithContext makes the enumeration cancellable: the loop polls ctx
// between outer (TLB, I-cache) pairs and, once cancelled, stops pricing,
// writes a final checkpoint (when WithCheckpoint is configured), and
// returns the partial ranking together with ctx's error.
func WithContext(ctx context.Context) Option {
	return func(o *options) { o.ctx = ctx }
}

// WithCheckpoint persists the enumeration state to path every `every`
// outer (TLB, I-cache) pairs (0 selects a default cadence) and once
// more on completion or cancellation. label tags the sweep; a resume
// requires the same label. Files are checksummed and atomically
// renamed, so a crash mid-write cannot corrupt an existing checkpoint.
func WithCheckpoint(path, label string, every int) Option {
	return func(o *options) {
		o.cpPath = path
		o.cpLabel = label
		o.cpEvery = every
	}
}

// WithCheckpointObserver installs a callback invoked after each
// successful checkpoint write (telemetry hooks install themselves
// here).
func WithCheckpointObserver(f func(*Checkpoint)) Option {
	return func(o *options) { o.onCheckpoint = f }
}

// WithSpans records checkpoint writes as "checkpoint.write" spans on
// the given lane (the caller's lane, since EnumerateE runs and
// checkpoints on the calling goroutine). A nil lane records nothing.
func WithSpans(lane *spans.Lane) Option {
	return func(o *options) { o.lane = lane }
}

// WithResume seeds the enumeration from a previously-saved checkpoint:
// already-priced outer pairs are skipped and the kept allocations are
// restored, so finishing the sweep yields the same ranking as an
// uninterrupted run. EnumerateE fails if the checkpoint's label or
// space signature does not match this sweep.
func WithResume(cp *Checkpoint) Option {
	return func(o *options) { o.resume = cp }
}

// pricedTLB and pricedCache carry a configuration with its
// once-computed area and CPI contributions through the enumeration (and
// into the checkpoint space signature).
type pricedTLB struct {
	cfg       area.TLBConfig
	area, cpi float64
}

type pricedCache struct {
	cfg  area.CacheConfig
	area float64
	icpi float64
	dcpi float64
}

// Enumerate prices every combination in the space, filters to the area
// budget, computes total CPI with the performance model, and returns the
// allocations in ranking order (ascending CPI, then ascending area, then
// a deterministic configuration tie-break; see lessAlloc). Component
// areas and CPIs are computed once per distinct configuration, so the
// full Table 5 space (about a quarter-million combinations) enumerates
// in milliseconds.
//
// Enumerate cannot fail without the context, checkpoint, or resume
// options; callers using those should call EnumerateE for the error.
func Enumerate(space Space, am area.Model, budget float64, pm PerfModel, opts ...Option) []Allocation {
	out, _ := EnumerateE(space, am, budget, pm, opts...)
	return out
}

// defaultCheckpointEvery is the checkpoint cadence in outer (TLB,
// I-cache) pairs. A checkpoint serializes every kept allocation --
// hundreds of thousands late in a Table 5 sweep -- so the cadence is
// coarse: the full space (about two thousand pairs) persists a handful
// of times per sweep, keeping checkpoint I/O well under the cost of the
// enumeration it protects.
const defaultCheckpointEvery = 512

// EnumerateE is Enumerate with an error return for the fallible paths:
// cancellation via WithContext (the partial, sorted ranking is returned
// alongside ctx's error), checkpoint write failures, and resume
// mismatches.
func EnumerateE(space Space, am area.Model, budget float64, pm PerfModel, opts ...Option) ([]Allocation, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	var tlbs []pricedTLB
	for _, t := range space.TLBConfigs() {
		tlbs = append(tlbs, pricedTLB{t, am.TLBArea(t), pm.TLBCPI(t)})
	}
	var caches []pricedCache
	for _, c := range space.CacheConfigs() {
		caches = append(caches, pricedCache{c, am.CacheArea(c), pm.ICacheCPI(c), pm.DCacheCPI(c)})
	}

	base := pm.BaseCPI()

	if o.pruneTopK < 0 {
		return nil, fmt.Errorf("search: WithPruning top-K %d is negative", o.pruneTopK)
	}
	if o.pruneTopK > 0 {
		if o.cpPath != "" || o.resume != nil {
			return nil, fmt.Errorf("search: pruned search does not support checkpoint/resume (a pruned sweep re-prices from scratch faster than a checkpoint loads; use the exhaustive strategy for resumable sweeps)")
		}
		return enumeratePruned(tlbs, caches, base, budget, &o)
	}

	var out []Allocation

	// Progress accounting: a (TLB, I-cache) pair over budget prunes all
	// |caches| D-cache combinations at once; count them as priced so
	// Priced converges on Total.
	spaceSize := len(tlbs) * len(caches) * len(caches)
	every := o.progressEvery
	if every <= 0 {
		every = 1 << 16
	}
	priced, nextReport := 0, every
	start := time.Now()
	report := func(done bool) {
		if o.progress == nil {
			return
		}
		p := Progress{Priced: priced, Total: spaceSize, Kept: len(out), Elapsed: time.Since(start), Done: done}
		if !done && priced > 0 {
			p.ETA = time.Duration(float64(p.Elapsed) * float64(spaceSize-priced) / float64(priced))
		}
		o.progress(p)
	}

	// Checkpoint/resume state. The space signature ties a checkpoint to
	// the exact priced lists and budget, so a resume against different
	// inputs is refused rather than silently producing a wrong ranking.
	var sig string
	if o.cpPath != "" || o.resume != nil {
		sig = spaceSignature(tlbs, caches, budget)
	}
	pairsDone := 0
	if cp := o.resume; cp != nil {
		if cp.Label != o.cpLabel {
			return nil, fmt.Errorf("search: checkpoint label %q does not match this sweep (%q)", cp.Label, o.cpLabel)
		}
		if cp.SpaceSig != sig {
			return nil, fmt.Errorf("search: checkpoint space signature %s does not match this sweep (%s): different space, budget, or model", cp.SpaceSig, sig)
		}
		if max := len(tlbs) * len(caches); cp.PairsDone > max {
			return nil, fmt.Errorf("search: checkpoint claims %d pairs done, space has only %d", cp.PairsDone, max)
		}
		pairsDone = cp.PairsDone
		priced = cp.Priced
		out = append(out, cp.Kept...)
	}
	cpEvery := o.cpEvery
	if cpEvery <= 0 {
		cpEvery = defaultCheckpointEvery
	}
	saveCheckpoint := func(pairs int) error {
		if o.cpPath == "" {
			return nil
		}
		cp := &Checkpoint{
			Version:   checkpointVersion,
			Label:     o.cpLabel,
			SpaceSig:  sig,
			PairsDone: pairs,
			Priced:    priced,
			Kept:      out,
		}
		span := o.lane.Start("checkpoint.write")
		err := cp.Save(o.cpPath)
		span.End()
		if err != nil {
			return err
		}
		if o.onCheckpoint != nil {
			o.onCheckpoint(cp)
		}
		return nil
	}

	var done <-chan struct{}
	if o.ctx != nil {
		done = o.ctx.Done()
	}
	sortOut := func() { sortAllocations(out) }

	pair := 0
	for _, t := range tlbs {
		for _, ic := range caches {
			if pair++; pair <= pairsDone {
				// Resumed: this pair's results are already in out.
				continue
			}
			if done != nil {
				select {
				case <-done:
					// Cancelled: persist everything priced so far, then
					// hand back the partial ranking with the cause.
					if err := saveCheckpoint(pair - 1); err != nil {
						return nil, err
					}
					sortOut()
					return out, o.ctx.Err()
				default:
				}
			}
			at := t.area + ic.area
			if at > budget {
				priced += len(caches)
			} else {
				for _, dc := range caches {
					total := at + dc.area
					if total <= budget {
						out = append(out, Allocation{
							TLB:     t.cfg,
							ICache:  ic.cfg,
							DCache:  dc.cfg,
							AreaRBE: total,
							CPI:     base + t.cpi + ic.icpi + dc.dcpi,
						})
					}
				}
				priced += len(caches)
			}
			if priced >= nextReport {
				report(false)
				nextReport = priced + every
			}
			if o.cpPath != "" && (pair-pairsDone)%cpEvery == 0 {
				if err := saveCheckpoint(pair); err != nil {
					return nil, err
				}
			}
		}
	}
	report(true)
	if err := saveCheckpoint(pair); err != nil {
		return nil, err
	}
	sortOut()
	return out, nil
}

// EnumerateFiltered is Enumerate with an extra feasibility predicate --
// used to impose the access-time (cycle-time) constraint of the paper's
// proposed extension, or any other designer rule.
func EnumerateFiltered(space Space, am area.Model, budget float64, pm PerfModel,
	keep func(tlb area.TLBConfig, icache, dcache area.CacheConfig) bool, opts ...Option) []Allocation {
	all := Enumerate(space, am, budget, pm, opts...)
	out := all[:0]
	for _, a := range all {
		if keep(a.TLB, a.ICache, a.DCache) {
			out = append(out, a)
		}
	}
	return out
}

// Top returns the first n allocations (or fewer).
func Top(allocs []Allocation, n int) []Allocation {
	if len(allocs) < n {
		n = len(allocs)
	}
	return allocs[:n]
}
