package search

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"onchip/internal/sig"
)

// The checkpoint file is a one-line header followed by a JSON body:
//
//	header: "OCKP <version> <crc32-of-body-hex>\n"
//	body:   the Checkpoint, JSON-encoded
//
// Files are written to a temporary sibling and atomically renamed into
// place, so an interrupted write never leaves a half-checkpoint where a
// resume would find it; the checksum rejects torn or hand-edited files.

const checkpointVersion = 1

// Checkpoint is the persisted state of a partially-completed
// design-space enumeration: which outer (TLB, I-cache) pairs have been
// fully priced, and every allocation kept so far. Resuming from it and
// letting the sweep finish provably reproduces the uninterrupted
// ranking: SpaceSig fingerprints the priced configuration lists --
// geometry, area, and model CPI of every TLB and cache configuration,
// plus the budget -- so a checkpoint only resumes a sweep whose inputs
// are bit-identical, and the surviving append order matches the
// uninterrupted run's.
type Checkpoint struct {
	Version int `json:"version"`
	// Label tags the sweep (experiment id and scale, e.g.
	// "table6/refs=2000000"); resume requires an exact match.
	Label string `json:"label"`
	// SpaceSig fingerprints the priced design space and performance
	// model; see the type comment.
	SpaceSig string `json:"space_sig"`
	// PairsDone is the number of outer (TLB, I-cache) pairs fully
	// priced; enumeration resumes at the next pair.
	PairsDone int `json:"pairs_done"`
	// Priced is the number of TLB x I-cache x D-cache combinations
	// considered so far (the Progress.Priced counter).
	Priced int `json:"priced"`
	// Kept holds every allocation within budget so far, in discovery
	// order.
	Kept []Allocation `json:"kept"`
}

// Save writes the checkpoint to path atomically: the body goes to a
// temporary file in the same directory, is checksummed, and is renamed
// over path only once fully written.
func (cp *Checkpoint) Save(path string) error {
	body, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("search: encoding checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ockp-*")
	if err != nil {
		return fmt.Errorf("search: writing checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	hdr := fmt.Sprintf("OCKP %d %08x\n", checkpointVersion, crc32.ChecksumIEEE(body))
	if _, err := tmp.WriteString(hdr); err == nil {
		_, err = tmp.Write(body)
	}
	if err != nil {
		tmp.Close()
		return fmt.Errorf("search: writing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("search: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("search: writing checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads and verifies a checkpoint written by Save.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("search: reading checkpoint: %w", err)
	}
	var version int
	var sum uint32
	n, err := fmt.Sscanf(string(data), "OCKP %d %08x\n", &version, &sum)
	if err != nil || n != 2 {
		return nil, fmt.Errorf("search: %s: not a checkpoint file (bad header)", path)
	}
	if version != checkpointVersion {
		return nil, fmt.Errorf("search: %s: unsupported checkpoint version %d (want %d)",
			path, version, checkpointVersion)
	}
	i := 0
	for i < len(data) && data[i] != '\n' {
		i++
	}
	body := data[i+1:]
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("search: %s: checkpoint checksum mismatch (file corrupt or torn write)", path)
	}
	var cp Checkpoint
	if err := json.Unmarshal(body, &cp); err != nil {
		return nil, fmt.Errorf("search: %s: decoding checkpoint: %w", path, err)
	}
	return &cp, nil
}

// spaceSignature fingerprints everything the enumeration's output
// depends on: the geometry, area, and CPI contribution of every priced
// TLB and cache configuration, and the budget. Two sweeps with the same
// signature produce identical rankings. The hash is the shared sig
// idiom (FNV-64a over "%v|" renderings), so signatures written by the
// pre-sig implementation keep verifying.
func spaceSignature(tlbs []pricedTLB, caches []pricedCache, budget float64) string {
	h := sig.New()
	h.Put("budget", budget, len(tlbs), len(caches))
	for _, t := range tlbs {
		h.Put(t.cfg, t.area, t.cpi)
	}
	for _, c := range caches {
		h.Put(c.cfg, c.area, c.icpi, c.dcpi)
	}
	return h.String()
}
