package search

import (
	"testing"

	"onchip/internal/area"
)

func TestTable5Space(t *testing.T) {
	s := Table5()
	tlbs := s.TLBConfigs()
	// 4 sizes x 4 associativities + one fully-associative entry.
	if len(tlbs) != 17 {
		t.Errorf("TLB configs = %d, want 17", len(tlbs))
	}
	caches := s.CacheConfigs()
	// 5 sizes x 4 assoc x 6 lines, minus combinations with fewer lines
	// than ways.
	if len(caches) == 0 || len(caches) > 120 {
		t.Errorf("cache configs = %d", len(caches))
	}
	for _, c := range caches {
		if err := c.Validate(); err != nil {
			t.Errorf("invalid cache config in space: %v", err)
		}
	}
	for _, c := range tlbs {
		if err := c.Validate(); err != nil {
			t.Errorf("invalid TLB config in space: %v", err)
		}
	}
}

func TestMaxCacheAssocRestriction(t *testing.T) {
	s := Table5()
	s.MaxCacheAssoc = 2
	for _, c := range s.CacheConfigs() {
		if c.Assoc > 2 {
			t.Fatalf("restricted space contains %v", c)
		}
	}
}

func TestEnumerateRespectsBudget(t *testing.T) {
	allocs := Enumerate(Table5(), area.Default(), area.BudgetRBE, MachLike())
	if len(allocs) == 0 {
		t.Fatal("no feasible allocations")
	}
	for _, a := range allocs {
		if a.AreaRBE > area.BudgetRBE {
			t.Fatalf("allocation over budget: %v", a)
		}
	}
	// Sorted by CPI ascending.
	for i := 1; i < len(allocs); i++ {
		if allocs[i].CPI < allocs[i-1].CPI {
			t.Fatalf("not sorted at %d: %.4f < %.4f", i, allocs[i].CPI, allocs[i-1].CPI)
		}
	}
}

// The paper's headline: with Mach measurements, the best allocations use
// the largest TLB and an I-cache at least as large as the D-cache.
func TestMachLikeFavorsTLBAndICache(t *testing.T) {
	allocs := Enumerate(Table5(), area.Default(), area.BudgetRBE, MachLike())
	top := Top(allocs, 10)
	if len(top) != 10 {
		t.Fatalf("top = %d", len(top))
	}
	for i, a := range top {
		if a.TLB.Entries < 256 {
			t.Errorf("rank %d uses a small TLB: %v", i+1, a.TLB)
		}
		if a.ICache.CapacityBytes < a.DCache.CapacityBytes {
			t.Errorf("rank %d gives the D-cache more capacity: %v", i+1, a)
		}
	}
}

// Restricting associativity must not improve the best achievable CPI.
func TestRestrictionNeverImproves(t *testing.T) {
	free := Enumerate(Table5(), area.Default(), area.BudgetRBE, MachLike())
	restricted := Table5()
	restricted.MaxCacheAssoc = 2
	r := Enumerate(restricted, area.Default(), area.BudgetRBE, MachLike())
	if r[0].CPI < free[0].CPI {
		t.Errorf("restricted best %.4f beats unrestricted %.4f", r[0].CPI, free[0].CPI)
	}
}

func TestTopClamps(t *testing.T) {
	allocs := []Allocation{{CPI: 1}, {CPI: 2}}
	if got := Top(allocs, 10); len(got) != 2 {
		t.Errorf("Top returned %d", len(got))
	}
}

func TestMeasuredModel(t *testing.T) {
	m := NewMeasured(1.3)
	tc := area.TLBConfig{Entries: 64, Assoc: 2}
	cc := area.CacheConfig{CapacityBytes: 8 << 10, LineWords: 4, Assoc: 1}
	m.TLB[tc] = 0.1
	m.IC[cc] = 0.2
	m.DC[cc] = 0.3
	if m.BaseCPI() != 1.3 || m.TLBCPI(tc) != 0.1 || m.ICacheCPI(cc) != 0.2 || m.DCacheCPI(cc) != 0.3 {
		t.Error("measured lookups wrong")
	}
	for name, f := range map[string]func(){
		"tlb": func() { m.TLBCPI(area.TLBConfig{Entries: 128, Assoc: 2}) },
		"ic":  func() { m.ICacheCPI(area.CacheConfig{CapacityBytes: 4 << 10, LineWords: 4, Assoc: 1}) },
		"dc":  func() { m.DCacheCPI(area.CacheConfig{CapacityBytes: 4 << 10, LineWords: 4, Assoc: 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: unmeasured lookup did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAnalyticModelShape(t *testing.T) {
	for _, m := range []Analytic{MachLike(), UltrixLike()} {
		// Miss CPI falls with capacity.
		small := m.ICacheCPI(area.CacheConfig{CapacityBytes: 4 << 10, LineWords: 4, Assoc: 1})
		big := m.ICacheCPI(area.CacheConfig{CapacityBytes: 32 << 10, LineWords: 4, Assoc: 1})
		if big >= small {
			t.Error("I-cache CPI not falling with capacity")
		}
		// TLB flattens once coverage is reached.
		t64 := m.TLBCPI(area.TLBConfig{Entries: 64, Assoc: area.FullyAssociative})
		t512 := m.TLBCPI(area.TLBConfig{Entries: 512, Assoc: 8})
		if t512 >= t64 {
			t.Error("TLB CPI not falling with size")
		}
		// Direct-mapped TLBs perform very poorly (Figure 8).
		dm := m.TLBCPI(area.TLBConfig{Entries: 128, Assoc: 1})
		sa := m.TLBCPI(area.TLBConfig{Entries: 128, Assoc: 2})
		if dm <= sa {
			t.Error("direct-mapped TLB should be worse than 2-way")
		}
	}
	// Mach responds to I-line size more strongly than Ultrix at 8 KB.
	mach, ult := MachLike(), UltrixLike()
	gainM := mach.ICacheCPI(cfg8(1)) - mach.ICacheCPI(cfg8(8))
	gainU := ult.ICacheCPI(cfg8(1)) - ult.ICacheCPI(cfg8(8))
	if gainM <= gainU {
		t.Errorf("line-size gain: Mach %.3f <= Ultrix %.3f", gainM, gainU)
	}
}

func cfg8(line int) area.CacheConfig {
	return area.CacheConfig{CapacityBytes: 8 << 10, LineWords: line, Assoc: 1}
}

func TestAllocationString(t *testing.T) {
	a := Allocation{
		TLB:     area.TLBConfig{Entries: 512, Assoc: 8},
		ICache:  area.CacheConfig{CapacityBytes: 16 << 10, LineWords: 8, Assoc: 8},
		DCache:  area.CacheConfig{CapacityBytes: 8 << 10, LineWords: 8, Assoc: 8},
		AreaRBE: 163438,
		CPI:     1.333,
	}
	if a.String() == "" {
		t.Error("empty allocation string")
	}
}

func TestEnumerateProgress(t *testing.T) {
	var reports []Progress
	allocs := Enumerate(Table5(), area.Default(), area.BudgetRBE, MachLike(),
		WithProgress(50_000, func(p Progress) { reports = append(reports, p) }))
	if len(reports) < 2 {
		t.Fatalf("got %d progress reports, want at least an interim and a final", len(reports))
	}
	final := reports[len(reports)-1]
	if !final.Done {
		t.Error("last report should have Done set")
	}
	if final.Priced != final.Total {
		t.Errorf("final Priced = %d, want Total = %d", final.Priced, final.Total)
	}
	if final.Kept != len(allocs) {
		t.Errorf("final Kept = %d, want %d feasible allocations", final.Kept, len(allocs))
	}
	s := Table5()
	wantTotal := len(s.TLBConfigs()) * len(s.CacheConfigs()) * len(s.CacheConfigs())
	if final.Total != wantTotal {
		t.Errorf("Total = %d, want %d", final.Total, wantTotal)
	}
	for i, p := range reports {
		if i > 0 && p.Priced < reports[i-1].Priced {
			t.Errorf("Priced went backwards at report %d", i)
		}
		if p.String() == "" {
			t.Error("empty progress string")
		}
	}
}

// Progress instrumentation must not perturb enumeration results.
func TestEnumerateProgressSameResults(t *testing.T) {
	plain := Enumerate(Table5(), area.Default(), area.BudgetRBE, MachLike())
	traced := Enumerate(Table5(), area.Default(), area.BudgetRBE, MachLike(),
		WithProgress(10_000, func(Progress) {}))
	if len(plain) != len(traced) {
		t.Fatalf("progress changed result count: %d vs %d", len(plain), len(traced))
	}
	for i := range plain {
		if plain[i] != traced[i] {
			t.Fatalf("allocation %d differs: %v vs %v", i, plain[i], traced[i])
		}
	}
}
