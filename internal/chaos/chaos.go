// Package chaos is the advisor's deterministic load-and-fault
// harness: seeded concurrent clients fire request storms at a running
// advisor while (optionally) the fault-injection layer corrupts the
// trace cache and panics sweep workers underneath it, and the harness
// checks the hardening contract from the outside:
//
//   - correctness: every 2xx body must be byte-identical to a direct,
//     fault-free run of the same request (the oracle) -- degraded or
//     stale answers are violations, not noise
//   - bounded behavior: overload resolves as clean 429/503 sheds with
//     Retry-After, never as hung connections or transport errors
//   - lifecycle: a drain in the middle of a storm must not drop
//     admitted work
//
// Everything is seeded, so a failing storm replays exactly.
package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"onchip/internal/experiments"
)

// Config describes one storm.
type Config struct {
	// URL is the advisor's base URL (the harness POSTs to URL+"/advise").
	URL string
	// Clients is the number of concurrent clients; 0 selects 4.
	Clients int
	// RequestsPerClient is each client's request count; 0 selects 8.
	RequestsPerClient int
	// Seed drives every random choice (request selection, think time);
	// the same seed replays the same storm shape.
	Seed int64
	// Requests is the pool clients sample from. Each is normalized by
	// Run before use; invalid entries fail Run up front.
	Requests []experiments.AdviseRequest
	// Direct computes the oracle answer for one request: the exact
	// bytes a 2xx response must carry. It runs at most once per
	// distinct signature. Nil disables byte-identity checking.
	Direct func(req experiments.AdviseRequest) ([]byte, error)
	// ThinkTime is the mean per-client pause between requests (jittered
	// by the seeded PRNG); 0 means fire back to back.
	ThinkTime time.Duration
	// Client overrides the HTTP client (tests shorten timeouts).
	Client *http.Client
}

// Report aggregates one storm's outcomes.
type Report struct {
	Total           int `json:"total"`
	OK              int `json:"ok"`               // 200
	Shed            int `json:"shed"`             // 429
	Unavailable     int `json:"unavailable"`      // 503 (drain, degraded)
	Timeouts        int `json:"timeouts"`         // 504
	ServerErrors    int `json:"server_errors"`    // 500
	BadRequests     int `json:"bad_requests"`     // 4xx other than 429
	OtherStatus     int `json:"other_status"`     // anything else
	TransportErrors int `json:"transport_errors"` // connection-level failures
	CacheHits       int `json:"cache_hits"`       // X-Advisor-Source: cache
	Dedups          int `json:"dedups"`           // X-Advisor-Source: dedup
	MissingRetry    int `json:"missing_retry"`    // 429/503 without Retry-After

	// Mismatches are correctness violations: 2xx bodies that differ
	// from the oracle, described one per entry.
	Mismatches []string `json:"mismatches,omitempty"`

	ElapsedSec   float64 `json:"elapsed_sec"`
	P50Micros    int64   `json:"p50_us"`
	P99Micros    int64   `json:"p99_us"`
	ReqPerSec    float64 `json:"req_per_sec"`
	ShedRate     float64 `json:"shed_rate"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// Violations reports whether the storm observed any correctness or
// transport-level failure (the chaos CI gate).
func (r *Report) Violations() []string {
	var v []string
	for _, m := range r.Mismatches {
		v = append(v, "byte mismatch: "+m)
	}
	if r.TransportErrors > 0 {
		v = append(v, fmt.Sprintf("%d transport error(s): admitted work dropped or connections broken", r.TransportErrors))
	}
	if r.MissingRetry > 0 {
		v = append(v, fmt.Sprintf("%d backpressure response(s) without Retry-After", r.MissingRetry))
	}
	if r.OtherStatus > 0 {
		v = append(v, fmt.Sprintf("%d response(s) with unexpected status", r.OtherStatus))
	}
	return v
}

// WriteJSON persists the report (the BENCH_advisor.json artifact).
func (r *Report) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// oracle memoizes Direct per signature so concurrent clients agree on
// (and only compute once) each expected body.
type oracle struct {
	direct func(experiments.AdviseRequest) ([]byte, error)
	mu     sync.Mutex
	cells  map[string]*oracleCell
}

type oracleCell struct {
	once sync.Once
	body []byte
	err  error
}

func (o *oracle) expect(key string, req experiments.AdviseRequest) ([]byte, error) {
	o.mu.Lock()
	c, ok := o.cells[key]
	if !ok {
		c = &oracleCell{}
		o.cells[key] = c
	}
	o.mu.Unlock()
	c.once.Do(func() { c.body, c.err = o.direct(req) })
	return c.body, c.err
}

// Run fires the storm and aggregates the report. The only error
// return is a malformed Config (bad requests, no URL); everything
// observed during the storm itself lands in the Report.
func Run(cfg Config) (*Report, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("chaos: Config.URL required")
	}
	if len(cfg.Requests) == 0 {
		return nil, fmt.Errorf("chaos: Config.Requests required")
	}
	if cfg.Clients == 0 {
		cfg.Clients = 4
	}
	if cfg.RequestsPerClient == 0 {
		cfg.RequestsPerClient = 8
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Minute}
	}
	// Normalize the pool once: signatures and request bytes are then
	// stable for the whole storm.
	type pooled struct {
		key  string
		req  experiments.AdviseRequest
		body []byte
	}
	pool := make([]pooled, len(cfg.Requests))
	for i := range cfg.Requests {
		req := cfg.Requests[i]
		if err := req.Normalize(0); err != nil {
			return nil, fmt.Errorf("chaos: request %d: %w", i, err)
		}
		b, err := json.Marshal(req)
		if err != nil {
			return nil, fmt.Errorf("chaos: request %d: %w", i, err)
		}
		pool[i] = pooled{key: req.Signature(), req: req, body: b}
	}
	var orc *oracle
	if cfg.Direct != nil {
		orc = &oracle{direct: cfg.Direct, cells: make(map[string]*oracleCell)}
	}

	perClient := make([]*Report, cfg.Clients)
	latencies := make([][]time.Duration, cfg.Clients)
	start := time.Now()
	var wg sync.WaitGroup
	for ci := 0; ci < cfg.Clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			rep := &Report{}
			perClient[ci] = rep
			rng := rand.New(rand.NewSource(cfg.Seed + int64(ci)))
			for n := 0; n < cfg.RequestsPerClient; n++ {
				if cfg.ThinkTime > 0 {
					time.Sleep(time.Duration(rng.Int63n(int64(2 * cfg.ThinkTime))))
				}
				p := pool[rng.Intn(len(pool))]
				rep.Total++
				t0 := time.Now()
				resp, err := cfg.Client.Post(cfg.URL+"/advise", "application/json", bytes.NewReader(p.body))
				if err != nil {
					rep.TransportErrors++
					continue
				}
				body, rerr := readAll(resp)
				latencies[ci] = append(latencies[ci], time.Since(t0))
				if rerr != nil {
					rep.TransportErrors++
					continue
				}
				switch src := resp.Header.Get("X-Advisor-Source"); src {
				case "cache":
					rep.CacheHits++
				case "dedup":
					rep.Dedups++
				}
				switch resp.StatusCode {
				case http.StatusOK:
					rep.OK++
					if orc != nil {
						want, werr := orc.expect(p.key, p.req)
						if werr != nil {
							rep.Mismatches = append(rep.Mismatches,
								fmt.Sprintf("%s: oracle failed: %v", p.key, werr))
						} else if !bytes.Equal(body, want) {
							rep.Mismatches = append(rep.Mismatches,
								fmt.Sprintf("%s: 200 body differs from direct run (%d vs %d bytes)", p.key, len(body), len(want)))
						}
					}
				case http.StatusTooManyRequests:
					rep.Shed++
					if resp.Header.Get("Retry-After") == "" {
						rep.MissingRetry++
					}
				case http.StatusServiceUnavailable:
					rep.Unavailable++
					if resp.Header.Get("Retry-After") == "" {
						rep.MissingRetry++
					}
				case http.StatusGatewayTimeout:
					rep.Timeouts++
				case http.StatusInternalServerError:
					rep.ServerErrors++
				default:
					if resp.StatusCode >= 400 && resp.StatusCode < 500 {
						rep.BadRequests++
					} else {
						rep.OtherStatus++
					}
				}
			}
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := &Report{ElapsedSec: elapsed.Seconds()}
	var all []time.Duration
	for ci, rep := range perClient {
		total.Total += rep.Total
		total.OK += rep.OK
		total.Shed += rep.Shed
		total.Unavailable += rep.Unavailable
		total.Timeouts += rep.Timeouts
		total.ServerErrors += rep.ServerErrors
		total.BadRequests += rep.BadRequests
		total.OtherStatus += rep.OtherStatus
		total.TransportErrors += rep.TransportErrors
		total.CacheHits += rep.CacheHits
		total.Dedups += rep.Dedups
		total.MissingRetry += rep.MissingRetry
		total.Mismatches = append(total.Mismatches, rep.Mismatches...)
		all = append(all, latencies[ci]...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > 0 {
		total.P50Micros = all[len(all)*50/100].Microseconds()
		p99 := len(all) * 99 / 100
		if p99 >= len(all) {
			p99 = len(all) - 1
		}
		total.P99Micros = all[p99].Microseconds()
	}
	if elapsed > 0 {
		total.ReqPerSec = float64(total.Total) / elapsed.Seconds()
	}
	if total.Total > 0 {
		total.ShedRate = float64(total.Shed) / float64(total.Total)
		total.CacheHitRate = float64(total.CacheHits) / float64(total.Total)
	}
	return total, nil
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}
